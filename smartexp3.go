package smartexp3

import (
	"math/rand"

	"smartexp3/internal/core"
	"smartexp3/internal/criteria"
	"smartexp3/internal/dist"
	"smartexp3/internal/experiment"
	"smartexp3/internal/game"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/report"
	"smartexp3/internal/rngutil"
	"smartexp3/internal/sim"
	"smartexp3/internal/testbed"
	"smartexp3/internal/trace"
	"smartexp3/internal/wild"
)

// Policy layer (the paper's contribution and its baselines).
type (
	// Policy is a per-device network selection strategy; see NewPolicy.
	Policy = core.Policy
	// Algorithm names one of the paper's selection policies.
	Algorithm = core.Algorithm
	// PolicyConfig carries Smart EXP3's Section V tunables.
	PolicyConfig = core.Config
	// Features toggles Smart EXP3's individual mechanisms (for ablations).
	Features = core.Features
	// ProbabilityReporter exposes a policy's selection distribution.
	ProbabilityReporter = core.ProbabilityReporter
)

// The algorithms of Tables II and III.
const (
	AlgEXP3             = core.AlgEXP3
	AlgBlockEXP3        = core.AlgBlockEXP3
	AlgHybridBlockEXP3  = core.AlgHybridBlockEXP3
	AlgSmartEXP3NoReset = core.AlgSmartEXP3NoReset
	AlgSmartEXP3        = core.AlgSmartEXP3
	AlgGreedy           = core.AlgGreedy
	AlgFullInformation  = core.AlgFullInformation
	AlgFixedRandom      = core.AlgFixedRandom
	AlgCentralized      = core.AlgCentralized
)

// Algorithms lists every algorithm in presentation order.
func Algorithms() []Algorithm { return core.Algorithms() }

// DefaultPolicyConfig returns the parameter values of Section V
// (β=0.1, γ(b)=b^{-1/3}, reset thresholds 0.75/40, drop rule 15%/4 slots).
func DefaultPolicyConfig() PolicyConfig { return core.DefaultConfig() }

// NewRNG returns a deterministic generator for the given seed, the
// sanctioned way to build the *rand.Rand a policy consumes. It is backed
// by the repo's stream-identical rand.Source replica, so every stream is
// a pure function of its seed — the determinism contract repolint's
// seedpurity check enforces across the tree.
func NewRNG(seed int64) *rand.Rand { return rngutil.New(seed) }

// ChildSeed deterministically derives an independent seed for the
// sub-stream identified by ids (for example run index, then device
// index). Deriving per-device seeds this way keeps streams independent:
// adding a device never perturbs the draws of the existing ones.
func ChildSeed(seed int64, ids ...int64) int64 { return rngutil.ChildSeed(seed, ids...) }

// NewPolicy constructs the given algorithm's policy over the available
// network ids with default parameters. Gains passed to Observe must be bit
// rates scaled into [0,1].
func NewPolicy(a Algorithm, available []int, rng *rand.Rand) (Policy, error) {
	return core.New(a, available, core.DefaultConfig(), rng)
}

// NewPolicyWithConfig is NewPolicy with explicit Section V parameters.
func NewPolicyWithConfig(a Algorithm, available []int, cfg PolicyConfig, rng *rand.Rand) (Policy, error) {
	return core.New(a, available, cfg, rng)
}

// NewCustomSmartEXP3 builds Smart EXP3 with an explicit feature subset, the
// ablation entry point.
func NewCustomSmartEXP3(name string, feat Features, available []int, cfg PolicyConfig, rng *rand.Rand) Policy {
	return core.NewSmartEXP3(name, feat, available, cfg, rng)
}

// Network model.
type (
	// Network is one selectable wireless network.
	Network = netmodel.Network
	// Topology is a set of networks scoped by service areas.
	Topology = netmodel.Topology
)

// Network technology types.
const (
	WiFi     = netmodel.WiFi
	Cellular = netmodel.Cellular
)

// Standard topologies of the evaluation.
var (
	// Setting1 returns the 4/7/22 Mbps static setting.
	Setting1 = netmodel.Setting1
	// Setting2 returns the uniform 11/11/11 Mbps static setting.
	Setting2 = netmodel.Setting2
	// FoodCourt returns the Figure 1 mobility topology.
	FoodCourt = netmodel.FoodCourt
	// UniformTopology returns k identical WiFi networks.
	UniformTopology = netmodel.Uniform
	// GenerateTopology builds a synthetic metropolitan topology from a spec.
	GenerateTopology = netmodel.Generate
	// LargeTopology returns the standard 204-network, 40-area preset.
	LargeTopology = netmodel.Large
	// LargeTopologySpec is the spec behind LargeTopology.
	LargeTopologySpec = netmodel.LargeSpec
)

// TopologySpec parameterizes GenerateTopology.
type TopologySpec = netmodel.GenSpec

// Simulation layer.
type (
	// SimConfig parameterizes a slotted-time simulation run.
	SimConfig = sim.Config
	// SimResult is a run's outcome.
	SimResult = sim.Result
	// DeviceSpec describes one simulated device.
	DeviceSpec = sim.DeviceSpec
	// AreaStay is one leg of a device trajectory.
	AreaStay = sim.AreaStay
	// CollectOptions selects per-slot observables to record.
	CollectOptions = sim.CollectOptions
	// DeviceResult aggregates one device's run.
	DeviceResult = sim.DeviceResult
	// SimEngine is the compiled, immutable form of a SimConfig; compile once
	// with NewSimEngine and run many seeded replications against it.
	SimEngine = sim.Engine
	// SimWorkspace holds one replication's reusable mutable state; a worker
	// owns one workspace for its whole batch.
	SimWorkspace = sim.Workspace
)

// Simulate executes one simulation run.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// NewSimEngine validates and compiles a simulation configuration for
// repeated replication. Engine.Run(ws, seed) is a pure function of
// (engine, seed) for any workspace of that engine, fresh or reused.
func NewSimEngine(cfg SimConfig) (*SimEngine, error) { return sim.NewEngine(cfg) }

// UniformDevices builds n devices that all run the same algorithm.
func UniformDevices(n int, a Algorithm) []DeviceSpec { return sim.UniformDevices(n, a) }

// SpreadDevices builds n devices running the same algorithm, distributed
// round-robin over the first areas service areas.
func SpreadDevices(n int, a Algorithm, areas int) []DeviceSpec {
	return sim.SpreadDevices(n, a, areas)
}

// MbToGB converts megabits to decimal gigabytes (Table V's unit).
func MbToGB(mb float64) float64 { return sim.MbToGB(mb) }

// MbToMB converts megabits to decimal megabytes (Table VI's unit).
func MbToMB(mb float64) float64 { return sim.MbToMB(mb) }

// Multi-criteria selection (the paper's future-work criteria: energy and
// monetary cost folded into the gain; see internal/criteria).
type (
	// CriteriaProfile weighs throughput against energy and money.
	CriteriaProfile = criteria.Profile
	// NetworkCosts are one network's non-throughput characteristics.
	NetworkCosts = criteria.Costs
)

// Standard criteria profiles.
var (
	// ThroughputOnlyCriteria reproduces the paper's main setting.
	ThroughputOnlyCriteria = criteria.ThroughputOnly
	// BalancedCriteria weighs throughput against energy and price.
	BalancedCriteria = criteria.Balanced
	// DefaultNetworkCosts returns per-technology default costs.
	DefaultNetworkCosts = criteria.DefaultCosts
)

// Delay models.
type DelaySampler = dist.Sampler

// Default switching-delay models (Johnson S_U for WiFi, Student's t for
// cellular), truncated below the 15 s slot.
var (
	DefaultWiFiDelay     = dist.DefaultWiFiDelay
	DefaultCellularDelay = dist.DefaultCellularDelay
)

// Trace-driven simulation (Section VI-B).
type (
	// TracePair couples simultaneous WiFi and cellular bit-rate traces.
	TracePair = trace.Pair
	// TraceRunConfig parameterizes a single-device trace-driven run.
	TraceRunConfig = trace.RunConfig
	// TraceRunResult is its outcome.
	TraceRunResult = trace.RunResult
	// TraceStyle selects one of the paper's four trace-pair structures.
	TraceStyle = trace.Style
)

// GenerateTracePair synthesizes a trace pair of the given style.
func GenerateTracePair(style TraceStyle, slots int, seed int64) TracePair {
	return trace.Generate(style, slots, seed)
}

// PaperTracePairs returns synthetic equivalents of the paper's four pairs.
func PaperTracePairs(seed int64) []TracePair { return trace.PaperPairs(seed) }

// RunTrace executes one trace-driven selection run.
func RunTrace(cfg TraceRunConfig) (*TraceRunResult, error) { return trace.Run(cfg) }

// Controlled testbed (Section VII-A).
type (
	// TestbedConfig parameterizes a real-TCP controlled experiment.
	TestbedConfig = testbed.Config
	// TestbedResult is its outcome.
	TestbedResult = testbed.Result
	// TestbedDeviceSpec describes one testbed device.
	TestbedDeviceSpec = testbed.DeviceSpec
)

// RunTestbed executes one controlled experiment over real TCP sockets.
func RunTestbed(cfg TestbedConfig) (*TestbedResult, error) { return testbed.Run(cfg) }

// In-the-wild emulation (Section VII-B).
type (
	// WildConfig parameterizes one 500 MB-style download.
	WildConfig = wild.Config
	// WildResult is its outcome.
	WildResult = wild.Result
)

// RunWild performs one in-the-wild download.
func RunWild(cfg WildConfig) (*WildResult, error) { return wild.Run(cfg) }

// Game-theoretic helpers (Definitions 2–4).
var (
	// NashCounts computes a pure NE allocation for homogeneous availability.
	NashCounts = game.NashCounts
	// DistanceToNash is the Definition 3 metric.
	DistanceToNash = game.DistanceToNash
	// DistanceFromAverageBitRate is the Definition 4 metric.
	DistanceFromAverageBitRate = game.DistanceFromAverageBitRate
)

// Experiment harness (one experiment per paper table/figure).
type (
	// Experiment is one reproducible paper artifact.
	Experiment = experiment.Definition
	// ExperimentOptions scales the experiment suite.
	ExperimentOptions = experiment.Options
	// ExperimentReport is a rendered result.
	ExperimentReport = report.Report
)

// Experiments returns every experiment in paper order.
func Experiments() []Experiment { return experiment.All() }

// ExperimentByID returns the experiment with the given id (fig2, tab5, ...).
func ExperimentByID(id string) (Experiment, bool) { return experiment.ByID(id) }

// DefaultExperimentOptions returns full-harness options; QuickExperimentOptions
// returns options sized for tests and benchmarks.
var (
	DefaultExperimentOptions = experiment.Default
	QuickExperimentOptions   = experiment.Quick
)
