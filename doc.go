// Package smartexp3 is a from-scratch Go implementation of Smart EXP3, the
// bandit-style decentralized wireless network selection algorithm of
// "Shrewd Selection Speeds Surfing: Use Smart EXP3!" (Appavoo, Gilbert, Tan;
// ICDCS 2018), together with every baseline and evaluation substrate the
// paper depends on.
//
// # What is here
//
//   - The Smart EXP3 policy and its ablation family (EXP3, Block EXP3,
//     Hybrid Block EXP3, Smart EXP3 w/o Reset) plus the Greedy, Full
//     Information, Fixed Random and Centralized baselines.
//   - A slotted-time multi-device wireless simulation engine with service
//     areas, mobility, device churn, switching-delay models (Johnson S_U /
//     Student's t) and congestion-game metrics (Nash equilibria, distance to
//     NE, stability, fairness).
//   - A trace-driven simulator with a synthetic WiFi/cellular trace
//     generator, a real-TCP controlled testbed, and an in-the-wild download
//     emulation.
//   - One runnable experiment per table and figure of the paper's
//     evaluation (run `reproduce -list` under cmd/reproduce for the
//     catalog), executed over a deterministic parallel Monte Carlo
//     runner (internal/runner).
//
// # Quick start
//
// Select among three networks with Smart EXP3, observing gains in [0,1]:
//
//	rng := smartexp3.NewRNG(1)
//	policy, err := smartexp3.NewPolicy(smartexp3.AlgSmartEXP3, []int{0, 1, 2}, rng)
//	if err != nil { ... }
//	for t := 0; t < horizon; t++ {
//		network := policy.Select()
//		gain := observeBitRate(network) / maxBitRate
//		policy.Observe(gain)
//	}
//
// Or simulate a whole population:
//
//	res, err := smartexp3.Simulate(smartexp3.SimConfig{
//		Topology: smartexp3.Setting1(),
//		Devices:  smartexp3.UniformDevices(20, smartexp3.AlgSmartEXP3),
//		Slots:    1200,
//		Seed:     1,
//	})
//
// For Monte Carlo batches, compile the configuration once and run many
// seeded replications against it — the engine is immutable and shared, each
// worker reuses one workspace, and warm replications allocate nothing
// beyond their results:
//
//	eng, err := smartexp3.NewSimEngine(cfg)
//	if err != nil { ... }
//	ws := eng.NewWorkspace()
//	for run := 0; run < runs; run++ {
//		res, err := eng.Run(ws, seeds[run])
//		...
//	}
//
// Large generated topologies (hundreds of networks across tens of service
// areas) come from GenerateTopology / LargeTopology with SpreadDevices;
// see examples/largetopology.
//
// # Architecture
//
// The execution stack is six layers, each adding one scaling axis on top
// of the one below while preserving a single determinism contract:
//
//   - Engine (internal/sim): the compiled, immutable form of a simulation
//     configuration — validated, defaulted, deep-copied, with cost tables
//     and the epoch schedule precomputed. Engines are shared read-only
//     across any number of goroutines.
//   - Workspace (internal/sim): every piece of state one replication
//     mutates, reset and reused run after run. Warm replications allocate
//     exactly the Result they return: policies reinitialize in place, RNG
//     streams reseed in lockstep (internal/rngutil), the Nash-equilibrium
//     cache re-solves into pooled buffers (game.PrepareInto).
//   - Runner (internal/runner): fans seeded replications across a bounded
//     goroutine pool — one workspace per worker — and merges results in
//     ascending run order from a single goroutine, so aggregates are
//     bit-identical for every worker count.
//   - Cluster (internal/cluster, cmd/shardd): shards a batch's run-index
//     space across processes and machines over TCP/gob. The coordinator
//     side is a persistent Session: each worker is dialed once, the stream
//     stays alive across batches (keepalive pings under the frame-timeout
//     discipline, with deadlines cleared while nothing is owed), and any
//     number of jobs multiplex over it with session-unique ids — many
//     small batches pipeline without a dial or handshake between them.
//     Workers cache compiled engines by config across a session's jobs;
//     the coordinator reassigns the ranges of failed connections
//     (reconnecting where possible) and merges each job through the same
//     single-goroutine ordered merge.
//   - Serve (internal/serve, cmd/served): the online decision service —
//     the same policies answering live Select/Feedback traffic instead of
//     simulated slots. Where the Engine/Workspace split separates compiled
//     configuration from one replication's mutable state, the serve layer
//     separates it from per-device policy state: a sharded device store
//     (GOMAXPROCS-scaled shards, one mutex each) holds one Smart EXP3
//     instance plus one seeded RNG stream per device, pooled and
//     reinitialized in place so device churn is allocation-free warm.
//     Requests travel over the cluster layer's framed-gob transport
//     (cluster.FrameWriter/FrameReader) with batched fire-and-forget
//     feedback. The store is a pure function of (algorithm, config, seed)
//     and the request history: devices draw from independent
//     rngutil.ChildSeed streams, snapshots serialize devices in sorted id
//     order with exact policy and RNG-cursor state, and a
//     snapshot/restart/replay is byte-identical to an uninterrupted run —
//     the daemon checkpoints on SIGTERM (and optionally on a timer) and
//     resumes mid-stream without losing learned weights. The layer is
//     self-healing end to end: selections carry slot ids so the store
//     deduplicates replayed requests, the client redials with capped
//     exponential backoff and resends unconfirmed feedback (transparent to
//     callers, optionally degrading to a local fallback store), and the
//     daemon evicts idle device sessions on a TTL without bending
//     determinism — an evicted device re-joins from its per-device seed.
//     internal/chaos pins all of it: a deterministic, seeded
//     fault-injection net.Conn wrapper and in-process TCP proxy (latency,
//     bit flips, mid-frame cuts, stalls at replayable byte offsets) under
//     which a serve session must be decision- and state-identical to a
//     clean one.
//   - Fleet (internal/fleet, cmd/fleetd): scales the decision service past
//     one process by partitioning the device-id space across served-style
//     peers under a versioned partition table — rendezvous hashing assigns
//     each of 2^k key-space stripes to a peer, and every change is a new
//     epoch. Peers enforce ownership on the hot path (one atomic view load
//     per request; 0 allocs/op, same CI gate) and answer for foreign
//     devices with a NotOwner redirect carrying the epoch and owner, so
//     stale clients heal themselves: the fleet client routes locally,
//     follows redirects, re-fetches the table, and replays bounced
//     feedback to the new owner, where slot-id dedup makes the replay
//     exactly-once. Rebalancing is a live snapshot handoff driven by a
//     coordinator over a second control listener: quiesce a stripe on the
//     old owner (an ownership flip under the shard locks makes the cut an
//     exact write barrier), ship the per-range snapshot over the framed
//     wire, stage it on the gaining peer, and commit the bumped epoch
//     fleet-wide — in-flight traffic redirects mid-handoff and no decision
//     is lost or doubled. A coordinator that dies mid-handoff leaves
//     nothing stranded: staged state dies with its connection, and an
//     orphaned drain resolves by asking the gaining peer whether the
//     epoch committed. The acceptance property mirrors serve's: a
//     three-peer fleet through a mid-run rebalance and a chaos-killed
//     peer is decision- and merged-snapshot-identical to one
//     uninterrupted store.
//
// Every layer is observable through internal/obsv, a stdlib-only metrics
// layer built for the hot paths above: atomic counters and gauges, fixed
// 4KB log-bucketed latency histograms (mergeable, concurrent-writer-safe,
// p50/p99/p999 at scrape time), and a registry that serves Prometheus text
// on /metrics, a JSON snapshot on /varz, and net/http/pprof — all on an
// opt-in debug listener (-debug-addr on served, shardd and simulate), with
// an optional periodic log/slog delta record for log-scraping fleets. The
// contract is zero cost when disabled and observation-only when enabled:
// metrics never feed back into decisions, so instrumented and bare runs of
// the same seed are byte-identical, and recording on the warm
// Select+Feedback path is a few plain increments under an already-held
// shard lock plus a 1-in-64 sampled latency probe — the path measures 0
// allocs/op with instrumentation attached, enforced by the same CI gate
// that guards the engine's allocation budget.
//
// The two contracts above — determinism and zero-allocation hot paths —
// are enforced at the source level by a custom static analyzer suite
// (internal/analysis, run as cmd/repolint in CI): pure-path packages must
// not read clocks, ambient RNG state, or map iteration order; functions
// marked //repolint:allocfree must avoid allocation constructs and each
// marker must be pinned by a testing.AllocsPerRun gate (a reconciliation
// test keeps markers and gates in lockstep); every wire write must arm a
// deadline; and RNG state may only be built from rngutil seeds. Findings
// are suppressed only by //repolint:ignore waivers that carry a written
// reason, and malformed waivers are findings themselves.
//
// The determinism contract ties the layers together: per-run seeds are a
// pure function of (base seed, stream ids, run index) via
// rngutil.ChildSeed; Engine.Run(ws, seed) is a pure function of (engine,
// seed); and each job's results always merge in ascending run order.
// Consequently the same root seed yields byte-identical aggregates in one
// goroutine, across any worker count, across any shard count, and across
// any session shape — whether batches run one per dial or pipelined over a
// warm session, and even when a worker dies mid-batch (or mid-session) and
// its ranges are re-executed elsewhere. Both CLIs expose the cluster layer
// (`simulate -shards`; `reproduce -cluster` holds one session for the
// whole suite, and with -parexp assigns whole experiments to workers via
// placement affinity); CI holds the equality as an invariant.
//
// The examples directory contains runnable programs exercising the public
// API end to end.
package smartexp3
