module smartexp3

go 1.24
