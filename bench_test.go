// Benchmarks regenerating every table and figure of the paper's evaluation
// at reduced replication counts (one benchmark per experiment id; run
// `reproduce -list` for the catalog), plus micro-benchmarks of the hot
// paths. Seeds vary per iteration so the experiment caches cannot
// short-circuit the work.
//
// Run with: go test -bench=. -benchmem
package smartexp3_test

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"smartexp3"
	"smartexp3/internal/cluster"
	"smartexp3/internal/core"
	"smartexp3/internal/experiment"
	"smartexp3/internal/fleet"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/obsv"
	"smartexp3/internal/runner"
	"smartexp3/internal/serve"
	"smartexp3/internal/sim"
)

// benchOptions are Quick()-scale options with a seed namespaced per
// experiment id: iteration seeds never collide across benchmarks, so the
// shared experiment caches cannot make another benchmark's iterations look
// free (which would let testing.B ramp b.N into hours of fresh work).
func benchOptions(id string, iteration int) experiment.Options {
	o := experiment.Quick()
	var h int64
	for _, c := range id {
		h = h*131 + int64(c)
	}
	o.Seed = h*1_000_003 + int64(iteration) + 1
	return o
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	def, ok := experiment.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := def.Run(benchOptions(id, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Section VI-A: static synthetic settings.

func BenchmarkFig2Switches(b *testing.B)         { benchExperiment(b, "fig2") }
func BenchmarkFig3Stability(b *testing.B)        { benchExperiment(b, "fig3") }
func BenchmarkTable4TimeToStable(b *testing.B)   { benchExperiment(b, "tab4") }
func BenchmarkFig4Distance(b *testing.B)         { benchExperiment(b, "fig4") }
func BenchmarkTable5Download(b *testing.B)       { benchExperiment(b, "tab5") }
func BenchmarkUnutilized(b *testing.B)           { benchExperiment(b, "unutil") }
func BenchmarkFig5Fairness(b *testing.B)         { benchExperiment(b, "fig5") }
func BenchmarkFig6Scalability(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig7Join(b *testing.B)             { benchExperiment(b, "fig7") }
func BenchmarkFig8Leave(b *testing.B)            { benchExperiment(b, "fig8") }
func BenchmarkFig9Mobility(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10SwitchesDynamic(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11Robustness(b *testing.B)      { benchExperiment(b, "fig11") }

// Section VI-B: trace-driven simulation.

func BenchmarkTable6Traces(b *testing.B)     { benchExperiment(b, "tab6") }
func BenchmarkFig12TraceSeries(b *testing.B) { benchExperiment(b, "fig12") }

// Section VII-A: controlled experiments over real TCP (wall-clock bound).

func BenchmarkTable7Testbed(b *testing.B)       { benchExperiment(b, "tab7") }
func BenchmarkFig13TestbedStatic(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14TestbedDynamic(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15TestbedMixed(b *testing.B)   { benchExperiment(b, "fig15") }

// Section VII-B and analysis.

func BenchmarkWildDownload(b *testing.B)   { benchExperiment(b, "wild") }
func BenchmarkTheorem2Bound(b *testing.B)  { benchExperiment(b, "thm2") }
func BenchmarkTheorem3Regret(b *testing.B) { benchExperiment(b, "thm3") }
func BenchmarkAblation(b *testing.B)       { benchExperiment(b, "ablate") }

// Micro-benchmarks of the hot paths.

// BenchmarkPolicySlot measures one Select+Observe cycle of Smart EXP3.
func BenchmarkPolicySlot(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pol, err := smartexp3.NewPolicy(smartexp3.AlgSmartEXP3, []int{0, 1, 2}, rng)
	if err != nil {
		b.Fatal(err)
	}
	gains := []float64{0.2, 0.4, 0.9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Observe(gains[pol.Select()])
	}
}

// BenchmarkSmartEXP3Draw isolates the per-slot selection draw — the Fast
// EXP3 hot path: incremental weight maintenance plus the O(log k)
// weight-proportional sample — across arm counts. EXP3 features (every
// block a single slot) maximize draw frequency so the benchmark measures
// the draw itself, not block bookkeeping.
func BenchmarkSmartEXP3Draw(b *testing.B) {
	for _, k := range []int{3, 16, 128} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			available := make([]int, k)
			gains := make([]float64, k)
			for i := range available {
				available[i] = i
				gains[i] = float64(i%10) / 10
			}
			pol := core.NewSmartEXP3("bench", core.FeaturesFor(core.AlgEXP3),
				available, core.DefaultConfig(), rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pol.Observe(gains[pol.Select()])
			}
		})
	}
}

// BenchmarkRunnerReplications measures the parallel experiment runner end
// to end: fanning seeded replications of a small Setting 1 simulation over
// the worker pool and merging results in deterministic run order. The
// config is compiled into a sim.Engine once per batch and each worker owns
// one pooled workspace — the standard batch shape since the zero-allocation
// engine; the per-op work (8 seeded replications of a 5-device, 120-slot
// Setting 1 run) is unchanged from the pre-engine baseline in
// BENCH_runner.json, so ns/op and allocs/op are directly comparable.
func BenchmarkRunnerReplications(b *testing.B) {
	for _, workers := range []int{1, 4, 0} { // 0 = GOMAXPROCS
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				batch := runner.Replications{
					Runs:    8,
					Workers: workers,
					Seed:    int64(i + 1),
					Stream:  []int64{42},
				}
				var downloads float64
				err := sim.Replicate(batch,
					sim.Config{
						Topology: netmodel.Setting1(),
						Devices:  sim.UniformDevices(5, core.AlgSmartEXP3),
						Slots:    120,
					},
					func(_ int, res *sim.Result) error {
						for d := range res.Devices {
							downloads += res.Devices[d].DownloadMb
						}
						return nil
					})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterDispatch measures the cluster coordinator end to end
// against one loopback shardd worker: per op it dials, handshakes, ships
// the job descriptor, dispatches ranges and merges the gob-decoded result
// stream — the same 8-replication Setting 1 batch as
// BenchmarkRunnerReplications/workers=1, so the difference between the two
// rows is the per-batch cost of going through the cluster layer instead of
// the in-process pool.
func BenchmarkClusterDispatch(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go cluster.Serve(ln, cluster.WorkerOptions{Workers: 1})
	addr := ln.Addr().String()

	cfg := sim.Config{
		Topology: netmodel.Setting1(),
		Devices:  sim.UniformDevices(5, core.AlgSmartEXP3),
		Slots:    120,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := runner.Replications{Runs: 8, Seed: int64(i + 1), Stream: []int64{42}}
		job, err := cluster.NewJob(batch, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var downloads float64
		err = cluster.Run(job, []string{addr}, cluster.Options{}, func(_ int, res *sim.Result) error {
			for d := range res.Devices {
				downloads += res.Devices[d].DownloadMb
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterSession measures the per-batch cost on a warm persistent
// session: the worker was dialed, handshaken and connected once before the
// timer started, so each op pays only the session-multiplexed dispatch — a
// job descriptor, its range frames and the gob-decoded result stream for
// the same 8-replication Setting 1 batch as BenchmarkClusterDispatch. The
// delta between the two rows is the dial + handshake + teardown the session
// amortizes away, which is the whole point of the layer: the experiment
// suite's many small batches pay it once instead of per batch.
func BenchmarkClusterSession(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go cluster.Serve(ln, cluster.WorkerOptions{Workers: 1})

	cfg := sim.Config{
		Topology: netmodel.Setting1(),
		Devices:  sim.UniformDevices(5, core.AlgSmartEXP3),
		Slots:    120,
	}
	sess := cluster.NewSession([]string{ln.Addr().String()}, cluster.Options{})
	defer sess.Close()
	runBatch := func(seed int64) error {
		batch := runner.Replications{Runs: 8, Seed: seed, Stream: []int64{42}}
		job, err := cluster.NewJob(batch, cfg)
		if err != nil {
			return err
		}
		var downloads float64
		return sess.Run(job, func(_ int, res *sim.Result) error {
			for d := range res.Devices {
				downloads += res.Devices[d].DownloadMb
			}
			return nil
		})
	}
	if err := runBatch(1); err != nil { // warm the session and the worker's engine pool
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runBatch(int64(i + 2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimReplication measures one warm replication through a pooled
// workspace across population scales: 10 devices on Setting 1, and 100/500
// devices spread over generated multi-area metropolitan topologies (the
// 500-device case runs on the 204-network `large` preset). Steady-state
// allocs/op must stay flat — a handful of objects for the returned Result
// plus epoch bookkeeping, regardless of scale or replication count.
func BenchmarkSimReplication(b *testing.B) {
	cases := []struct {
		devices int
		topo    netmodel.Topology
	}{
		{10, netmodel.Setting1()},
		{100, netmodel.Generate(netmodel.GenSpec{Areas: 10, APsPerArea: 3, Cells: 2, Overlap: 1})},
		{500, netmodel.Large()},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("devices=%d", c.devices), func(b *testing.B) {
			devs := sim.SpreadDevices(c.devices, core.AlgSmartEXP3, len(c.topo.Areas))
			eng, err := sim.NewEngine(sim.Config{
				Topology: c.topo,
				Devices:  devs,
				Slots:    200,
			})
			if err != nil {
				b.Fatal(err)
			}
			ws := eng.NewWorkspace()
			if _, err := eng.Run(ws, 1); err != nil { // warm the workspace
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(ws, int64(i+2)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeSelect measures the decision service's hot path in
// process: one warm Select+Feedback cycle against the sharded device store
// (shard routing, device lookup, pending-slot bookkeeping and the Fast
// EXP3 draw). The device is warm — past explore-first, availability
// unchanged — which is the steady state a long-lived daemon serves, and
// the path the BENCH_runner.json gate holds to ≤ 1 alloc/op (it measures
// 0). The reported decisions/s is single-goroutine; see
// BenchmarkServeSelectParallel for the sharded fan-out.
func BenchmarkServeSelect(b *testing.B) {
	store, err := serve.NewStore(serve.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	arms := []int{0, 1, 2, 3}
	gains := []float64{0.2, 0.4, 0.9, 0.5}
	for i := 0; i < 300; i++ { // warm: past explore-first and pool growth
		arm, slot, err := store.Select(7, arms)
		if err != nil {
			b.Fatal(err)
		}
		store.Feedback(7, arm, slot, gains[arm])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arm, slot, err := store.Select(7, arms)
		if err != nil {
			b.Fatal(err)
		}
		store.Feedback(7, arm, slot, gains[arm])
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "decisions/s")
	}
}

// BenchmarkServeSelectInstrumented is BenchmarkServeSelect with the obsv
// registry attached — the observability layer's perf contract: the warm
// path must stay at 0 allocs/op and within a few percent of the bare rate
// (per-shard counters are plain increments under the already-held lock; the
// latency probe samples 1 in 64 requests).
func BenchmarkServeSelectInstrumented(b *testing.B) {
	store, err := serve.NewStore(serve.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	store.Instrument(obsv.NewRegistry())
	arms := []int{0, 1, 2, 3}
	gains := []float64{0.2, 0.4, 0.9, 0.5}
	for i := 0; i < 300; i++ { // warm: past explore-first and pool growth
		arm, slot, err := store.Select(7, arms)
		if err != nil {
			b.Fatal(err)
		}
		store.Feedback(7, arm, slot, gains[arm])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arm, slot, err := store.Select(7, arms)
		if err != nil {
			b.Fatal(err)
		}
		store.Feedback(7, arm, slot, gains[arm])
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "decisions/s")
	}
}

// BenchmarkFleetSelect is BenchmarkServeSelect with a fleet peer wrapped
// around the store: the partition-table ownership check (one atomic view
// load plus a rendezvous-free stripe index per request) now guards every
// Select and Feedback. This is the owning-peer steady state of a sharded
// fleet, and the BENCH_runner.json gate holds it to 0 allocs/op — joining
// a fleet must not cost the daemon its allocation-free hot path.
func BenchmarkFleetSelect(b *testing.B) {
	store, err := serve.NewStore(serve.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	peer, err := fleet.NewPeer(store, fleet.PeerOptions{ID: "a"})
	if err != nil {
		b.Fatal(err)
	}
	tab, err := fleet.NewTable(fleet.DefaultStripeBits, []fleet.PeerInfo{{ID: "a", Addr: "a:1", Control: "a:2"}})
	if err != nil {
		b.Fatal(err)
	}
	if err := peer.InstallTable(tab); err != nil {
		b.Fatal(err)
	}
	arms := []int{0, 1, 2, 3}
	gains := []float64{0.2, 0.4, 0.9, 0.5}
	for i := 0; i < 300; i++ { // warm: past explore-first and pool growth
		arm, slot, err := store.Select(7, arms)
		if err != nil {
			b.Fatal(err)
		}
		store.Feedback(7, arm, slot, gains[arm])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arm, slot, err := store.Select(7, arms)
		if err != nil {
			b.Fatal(err)
		}
		store.Feedback(7, arm, slot, gains[arm])
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "decisions/s")
	}
}

// BenchmarkServeSelectParallel drives the store from GOMAXPROCS goroutines
// over disjoint warm devices — the daemon's saturated shape. The headline
// metric is decisions/s/core: per-shard mutexes mean it should hold near
// the serial rate instead of collapsing onto one lock.
func BenchmarkServeSelectParallel(b *testing.B) {
	store, err := serve.NewStore(serve.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	arms := []int{0, 1, 2, 3}
	gains := []float64{0.2, 0.4, 0.9, 0.5}
	procs := runtime.GOMAXPROCS(0)
	for dev := uint64(0); dev < uint64(procs); dev++ { // warm every goroutine's device
		for i := 0; i < 300; i++ {
			arm, slot, err := store.Select(dev, arms)
			if err != nil {
				b.Fatal(err)
			}
			store.Feedback(dev, arm, slot, gains[arm])
		}
	}
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		dev := (next.Add(1) - 1) % uint64(procs)
		for pb.Next() {
			arm, slot, err := store.Select(dev, arms)
			if err != nil {
				b.Error(err)
				return
			}
			store.Feedback(dev, arm, slot, gains[arm])
		}
	})
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs/float64(procs), "decisions/s/core")
	}
}

// BenchmarkServeWire measures one Select+Feedback decision round trip
// through the full stack — client batching, framed gob both ways, the
// server's connection loop, the store — over loopback TCP, and reports the
// p99 per-decision latency alongside the mean. Like the cluster wire rows,
// allocs/op is recorded ungated (gob internals dominate); the row's
// presence is still enforced.
func BenchmarkServeWire(b *testing.B) {
	store, err := serve.NewStore(serve.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	srv := serve.NewServer(store, serve.ServerOptions{})
	go srv.Serve(ln)
	defer srv.Close()
	c, err := serve.Dial(ln.Addr().String(), serve.ClientOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	arms := []int{0, 1, 2, 3}
	gains := []float64{0.2, 0.4, 0.9, 0.5}
	for i := 0; i < 300; i++ { // warm device, codec type descriptors, buffers
		arm, err := c.Select(7, arms)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Feedback(7, arm, gains[arm]); err != nil {
			b.Fatal(err)
		}
	}
	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		arm, err := c.Select(7, arms)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Feedback(7, arm, gains[arm]); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns/op")
	}
}

// BenchmarkEXP3Slot measures the classic EXP3 per-slot cost for comparison.
func BenchmarkEXP3Slot(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pol, err := smartexp3.NewPolicy(smartexp3.AlgEXP3, []int{0, 1, 2}, rng)
	if err != nil {
		b.Fatal(err)
	}
	gains := []float64{0.2, 0.4, 0.9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Observe(gains[pol.Select()])
	}
}

// BenchmarkSimulationRun measures a full 20-device, 1200-slot Setting 1 run
// with metric collection — the unit of work behind every Section VI figure.
func BenchmarkSimulationRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := smartexp3.Simulate(smartexp3.SimConfig{
			Topology: smartexp3.Setting1(),
			Devices:  smartexp3.UniformDevices(20, smartexp3.AlgSmartEXP3),
			Slots:    1200,
			Seed:     int64(i + 1),
			Collect:  smartexp3.CollectOptions{Distance: true, Probabilities: true},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNashSolver measures the congestion-game solver on the Figure 1
// heterogeneous-availability instance.
func BenchmarkNashSolver(b *testing.B) {
	top := smartexp3.FoodCourt()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		smartexp3.NashCounts(top.Bandwidths(), 20)
	}
}

// BenchmarkTraceRun measures one 100-slot trace-driven selection run.
func BenchmarkTraceRun(b *testing.B) {
	pair := smartexp3.PaperTracePairs(1)[2]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := smartexp3.RunTrace(smartexp3.TraceRunConfig{
			Pair:      pair,
			Algorithm: smartexp3.AlgSmartEXP3,
			Seed:      int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWildRun measures one in-the-wild download emulation.
func BenchmarkWildRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := smartexp3.RunWild(smartexp3.WildConfig{
			FileMB:    100,
			Algorithm: smartexp3.AlgSmartEXP3,
			Seed:      int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTestbedSlot measures testbed wall-clock throughput (slots/sec) at
// a tiny scale; it is dominated by real socket time by design.
func BenchmarkTestbedSlot(b *testing.B) {
	if testing.Short() {
		b.Skip("testbed uses wall-clock time")
	}
	for i := 0; i < b.N; i++ {
		_, err := smartexp3.RunTestbed(smartexp3.TestbedConfig{
			APs: []smartexp3.Network{
				{Name: "a", Type: smartexp3.WiFi, Bandwidth: 4},
				{Name: "b", Type: smartexp3.WiFi, Bandwidth: 12},
			},
			Devices: []smartexp3.TestbedDeviceSpec{
				{Algorithm: smartexp3.AlgSmartEXP3},
				{Algorithm: smartexp3.AlgSmartEXP3},
				{Algorithm: smartexp3.AlgGreedy},
			},
			Slots:        10,
			SlotDuration: 20 * time.Millisecond,
			Seed:         int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
