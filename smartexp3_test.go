package smartexp3_test

import (
	"math/rand"
	"testing"

	"smartexp3"
)

func TestFacadePolicyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pol, err := smartexp3.NewPolicy(smartexp3.AlgSmartEXP3, []int{0, 1, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for i := 0; i < 400; i++ {
		net := pol.Select()
		counts[net]++
		gain := 0.1
		if net == 2 {
			gain = 0.9
		}
		pol.Observe(gain)
	}
	if counts[2] < 200 {
		t.Fatalf("facade policy did not learn: %v", counts)
	}
}

func TestFacadeAlgorithmsAndConfig(t *testing.T) {
	if len(smartexp3.Algorithms()) != 9 {
		t.Fatalf("Algorithms() = %d entries", len(smartexp3.Algorithms()))
	}
	cfg := smartexp3.DefaultPolicyConfig()
	if cfg.Beta != 0.1 {
		t.Fatalf("default beta %v", cfg.Beta)
	}
	rng := rand.New(rand.NewSource(2))
	pol, err := smartexp3.NewPolicyWithConfig(smartexp3.AlgBlockEXP3, []int{0, 1}, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "Block EXP3" {
		t.Fatalf("Name = %q", pol.Name())
	}
}

func TestFacadeCustomSmartEXP3(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	feat := smartexp3.Features{Blocking: true}
	pol := smartexp3.NewCustomSmartEXP3("ablated", feat, []int{0, 1}, smartexp3.DefaultPolicyConfig(), rng)
	if pol.Name() != "ablated" {
		t.Fatalf("Name = %q", pol.Name())
	}
	pol.Select()
	pol.Observe(0.5)
}

func TestFacadeSimulate(t *testing.T) {
	res, err := smartexp3.Simulate(smartexp3.SimConfig{
		Topology: smartexp3.Setting1(),
		Devices:  smartexp3.UniformDevices(6, smartexp3.AlgSmartEXP3),
		Slots:    150,
		Seed:     1,
		Collect:  smartexp3.CollectOptions{Distance: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Devices) != 6 || len(res.Distance) != 150 {
		t.Fatalf("unexpected result shape: %d devices, %d slots", len(res.Devices), len(res.Distance))
	}
	if smartexp3.MbToGB(8000) != 1 {
		t.Fatal("MbToGB broken")
	}
}

func TestFacadeTraces(t *testing.T) {
	pairs := smartexp3.PaperTracePairs(1)
	if len(pairs) != 4 {
		t.Fatalf("PaperTracePairs = %d", len(pairs))
	}
	res, err := smartexp3.RunTrace(smartexp3.TraceRunConfig{
		Pair:      pairs[0],
		Algorithm: smartexp3.AlgGreedy,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DownloadMB <= 0 {
		t.Fatal("no download")
	}
}

func TestFacadeGameHelpers(t *testing.T) {
	counts := smartexp3.NashCounts([]float64{4, 7, 22}, 20)
	if counts[0] != 2 || counts[1] != 4 || counts[2] != 14 {
		t.Fatalf("NashCounts = %v", counts)
	}
	d := smartexp3.DistanceToNash([]float64{1, 1, 4}, []float64{2, 2, 2})
	if d != 100 {
		t.Fatalf("DistanceToNash = %v", d)
	}
	if smartexp3.DistanceFromAverageBitRate(33, []float64{11, 11, 11}) != 0 {
		t.Fatal("DistanceFromAverageBitRate broken")
	}
}

func TestFacadeWild(t *testing.T) {
	res, err := smartexp3.RunWild(smartexp3.WildConfig{
		FileMB:    20,
		Algorithm: smartexp3.AlgSmartEXP3,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("download incomplete")
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	if len(smartexp3.Experiments()) != 23 {
		t.Fatalf("Experiments() = %d", len(smartexp3.Experiments()))
	}
	if _, ok := smartexp3.ExperimentByID("fig2"); !ok {
		t.Fatal("fig2 missing from facade registry")
	}
	q := smartexp3.QuickExperimentOptions()
	d := smartexp3.DefaultExperimentOptions()
	if q.Runs >= d.Runs {
		t.Fatal("quick options not smaller than defaults")
	}
}

func TestFacadeDelaySamplers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	wifi := smartexp3.DefaultWiFiDelay()
	cell := smartexp3.DefaultCellularDelay()
	for i := 0; i < 100; i++ {
		if d := wifi.Sample(rng); d <= 0 || d >= 15 {
			t.Fatalf("wifi delay %v", d)
		}
		if d := cell.Sample(rng); d <= 0 || d >= 15 {
			t.Fatalf("cellular delay %v", d)
		}
	}
}
