// The tracedriven example replays Section VI-B: a single device chooses
// between a public WiFi network and a cellular network whose bit rates come
// from (synthetic) traces, comparing Smart EXP3 against Greedy on the
// crossover trace where no network is always best, and rendering the
// Figure 12-style selection series as an ASCII chart.
package main

import (
	"fmt"
	"os"

	"smartexp3"
	"smartexp3/internal/report"
	"smartexp3/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracedriven:", err)
		os.Exit(1)
	}
}

func run() error {
	pair := smartexp3.GenerateTracePair(trace.StyleCrossover, 100, 1)
	fmt.Printf("trace pair %q: %d slots of 15 s\n\n", pair.Name, pair.Slots())

	var smartRes *smartexp3.TraceRunResult
	for _, alg := range []smartexp3.Algorithm{smartexp3.AlgSmartEXP3, smartexp3.AlgGreedy} {
		res, err := smartexp3.RunTrace(smartexp3.TraceRunConfig{
			Pair:      pair,
			Algorithm: alg,
			Seed:      11,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-12s downloaded %6.1f MB, lost %5.1f MB to %d switches\n",
			alg, res.DownloadMB, res.SwitchCostMB, res.Switches)
		if alg == smartexp3.AlgSmartEXP3 {
			smartRes = res
		}
	}

	chart := report.Chart{
		Title:  "bit rate over time (Mbps): the traces and what Smart EXP3 observed",
		XLabel: "slot",
	}
	chart.Add("WiFi", pair.WiFi.Rates)
	chart.Add("Cellular", pair.Cellular.Rates)
	chart.Add("Smart EXP3", smartRes.RateMbps)
	fmt.Println()
	fmt.Print(chart.String())
	return nil
}
