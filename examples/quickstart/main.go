// The quickstart example shows the two entry points of the library:
//
//  1. driving a single Smart EXP3 policy by hand (the bandit API), and
//  2. simulating a 20-device population and comparing Smart EXP3 with the
//     conventional Greedy strategy.
package main

import (
	"fmt"
	"os"

	"smartexp3"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := singleDevice(); err != nil {
		return err
	}
	return population()
}

// singleDevice drives one policy manually: three networks whose quality the
// device can only learn by using them.
func singleDevice() error {
	fmt.Println("-- single device, three networks (true rates 4, 7, 22 Mbps) --")
	rates := []float64{4, 7, 22}
	rng := smartexp3.NewRNG(7)

	policy, err := smartexp3.NewPolicy(smartexp3.AlgSmartEXP3, []int{0, 1, 2}, rng)
	if err != nil {
		return err
	}
	counts := make([]int, len(rates))
	for t := 0; t < 300; t++ {
		network := policy.Select()
		counts[network]++
		// Observed bit rate with noise, scaled into [0,1] by the best rate.
		observed := rates[network] * (0.9 + 0.2*rng.Float64())
		policy.Observe(observed / 22)
	}
	for i, c := range counts {
		fmt.Printf("network %d (%2.0f Mbps): selected in %3d of 300 slots\n", i, rates[i], c)
	}
	fmt.Println()
	return nil
}

// population simulates the paper's Setting 1 and compares Smart EXP3 with
// Greedy on download, fairness and switching.
func population() error {
	fmt.Println("-- 20 devices sharing 4+7+22 Mbps for 1200 slots (5 simulated hours) --")
	for _, alg := range []smartexp3.Algorithm{smartexp3.AlgSmartEXP3, smartexp3.AlgGreedy} {
		res, err := smartexp3.Simulate(smartexp3.SimConfig{
			Topology: smartexp3.Setting1(),
			Devices:  smartexp3.UniformDevices(20, alg),
			Slots:    1200,
			Seed:     1,
			Collect:  smartexp3.CollectOptions{Distance: true},
		})
		if err != nil {
			return err
		}
		var totalGB, minGB, maxGB float64
		var switches int
		for d := range res.Devices {
			gb := smartexp3.MbToGB(res.Devices[d].DownloadMb)
			totalGB += gb
			if d == 0 || gb < minGB {
				minGB = gb
			}
			if gb > maxGB {
				maxGB = gb
			}
			switches += res.Devices[d].Switches
		}
		fmt.Printf("%-12s total %6.2f GB  per-device [%4.2f, %4.2f] GB  switches %4d  time at NE %4.1f%%\n",
			alg, totalGB, minGB, maxGB, switches, 100*res.FracAtNE)
	}
	return nil
}
