// The adversarial example reproduces the robustness study of Figure 11:
// populations mixing Smart EXP3 devices with "greedy" devices that always
// chase the highest observed average. It shows that Smart EXP3 holds its own
// in every mix while Greedy collapses once greedy devices dominate.
package main

import (
	"fmt"
	"os"

	"smartexp3"
	"smartexp3/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adversarial:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		devices = 20
		slots   = 1200
	)
	for _, mix := range []struct {
		name  string
		smart int
	}{
		{"scenario 1: 19 Smart EXP3 vs 1 Greedy", 19},
		{"scenario 2: 10 Smart EXP3 vs 10 Greedy", 10},
		{"scenario 3: 1 Smart EXP3 vs 19 Greedy", 1},
	} {
		specs := make([]smartexp3.DeviceSpec, devices)
		var smartGroup, greedyGroup []int
		for d := range specs {
			if d < mix.smart {
				specs[d].Algorithm = smartexp3.AlgSmartEXP3
				smartGroup = append(smartGroup, d)
			} else {
				specs[d].Algorithm = smartexp3.AlgGreedy
				greedyGroup = append(greedyGroup, d)
			}
		}
		res, err := smartexp3.Simulate(smartexp3.SimConfig{
			Topology:     smartexp3.Setting1(),
			Devices:      specs,
			Slots:        slots,
			Seed:         5,
			DeviceGroups: [][]int{smartGroup, greedyGroup},
			Collect:      smartexp3.CollectOptions{Distance: true},
		})
		if err != nil {
			return err
		}
		late := slots * 3 / 4
		fmt.Println(mix.name)
		fmt.Printf("  late distance to NE:  Smart EXP3 %6.2f%%   Greedy %6.2f%%\n",
			stats.Mean(res.GroupDistance[0][late:]),
			stats.Mean(res.GroupDistance[1][late:]))
		fmt.Printf("  mean download:        Smart EXP3 %6.2f GB  Greedy %6.2f GB\n",
			meanDownloadGB(res, smartGroup), meanDownloadGB(res, greedyGroup))
	}
	return nil
}

func meanDownloadGB(res *smartexp3.SimResult, group []int) float64 {
	var xs []float64
	for _, d := range group {
		xs = append(xs, smartexp3.MbToGB(res.Devices[d].DownloadMb))
	}
	return stats.Mean(xs)
}
