// The channelselect example applies Smart EXP3 to the *other* resource
// selection problem the paper names in its future work: WiFi channel
// selection, where switching also has a non-negligible cost. Ten access
// points each pick one of three non-overlapping 2.4 GHz channels (1, 6, 11);
// a channel's usable capacity is shared by the APs on it and degraded by
// time-varying external interference the APs cannot observe directly.
//
// The example drives the raw bandit API (Select/Observe) rather than the
// wireless simulator, showing that the policy layer is problem-agnostic.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"smartexp3"
)

const (
	numAPs      = 10
	numChannels = 3
	slots       = 800
)

// interference is the hidden per-channel external load in [0,1): a slowly
// mean-reverting process (microwave ovens, neighboring networks, ...).
type interference struct {
	level []float64
}

func (in *interference) step(rng *rand.Rand) {
	for c := range in.level {
		in.level[c] += 0.25*(0.3-in.level[c]) + 0.08*rng.NormFloat64()
		if in.level[c] < 0 {
			in.level[c] = 0
		}
		if in.level[c] > 0.8 {
			in.level[c] = 0.8
		}
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "channelselect:", err)
		os.Exit(1)
	}
}

func run() error {
	envRng := smartexp3.NewRNG(smartexp3.ChildSeed(99, -1))
	channels := []int{0, 1, 2}
	capacity := 30.0 // Mbps of airtime per channel

	policies := make([]smartexp3.Policy, numAPs)
	for ap := range policies {
		pol, err := smartexp3.NewPolicy(smartexp3.AlgSmartEXP3, channels,
			smartexp3.NewRNG(smartexp3.ChildSeed(99, int64(ap))))
		if err != nil {
			return err
		}
		policies[ap] = pol
	}

	inter := interference{level: make([]float64, numChannels)}
	choices := make([]int, numAPs)
	counts := make([]int, numChannels)
	switches := 0
	last := make([]int, numAPs)
	for ap := range last {
		last[ap] = -1
	}

	var lateDistance float64
	lateSlots := 0
	for t := 0; t < slots; t++ {
		inter.step(envRng)
		for c := range counts {
			counts[c] = 0
		}
		for ap, pol := range policies {
			choices[ap] = pol.Select()
			counts[choices[ap]]++
			if last[ap] >= 0 && choices[ap] != last[ap] {
				switches++
			}
			last[ap] = choices[ap]
		}
		// Effective capacities under current interference, and what each AP
		// observed.
		effective := make([]float64, numChannels)
		gains := make([]float64, numAPs)
		for c := range effective {
			effective[c] = capacity * (1 - inter.level[c])
		}
		for ap := range policies {
			c := choices[ap]
			throughput := effective[c] / float64(counts[c])
			gains[ap] = throughput
			policies[ap].Observe(throughput / capacity)
		}
		// Distance to the NE of the *current* interference state, over the
		// last quarter of the run.
		if t >= slots*3/4 {
			ne := smartexp3.NashCounts(effective, numAPs)
			var neShares []float64
			for c, n := range ne {
				for i := 0; i < n; i++ {
					neShares = append(neShares, effective[c]/float64(n))
				}
			}
			lateDistance += smartexp3.DistanceToNash(gains, neShares)
			lateSlots++
		}
	}

	fmt.Printf("10 APs balancing across channels 1/6/11 for %d slots\n\n", slots)
	fmt.Printf("final allocation:      %v APs per channel (balanced is ~[3 3 4])\n", counts)
	fmt.Printf("total channel switches %d (%.1f per AP)\n", switches, float64(switches)/numAPs)
	fmt.Printf("late distance to NE:   %.1f%% (0%% = interference-aware equilibrium)\n",
		lateDistance/float64(lateSlots))
	return nil
}
