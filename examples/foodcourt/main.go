// The foodcourt example reproduces the paper's motivating scenario
// (Figure 1): twenty devices spread over a food court, a study area and a
// bus stop, with eight of them walking from the food court to the bus stop
// during the run. Each service area sees a different subset of the five
// networks; the cellular network is visible everywhere and couples the
// areas' congestion games.
package main

import (
	"fmt"
	"os"

	"smartexp3"
	"smartexp3/internal/stats"
)

const (
	areaFoodCourt = 0
	areaStudyArea = 1
	areaBusStop   = 2
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "foodcourt:", err)
		os.Exit(1)
	}
}

func run() error {
	const slots = 1200
	devices := make([]smartexp3.DeviceSpec, 20)
	groups := [][]int{{}, {}, {}, {}}
	for d := range devices {
		devices[d] = smartexp3.DeviceSpec{Algorithm: smartexp3.AlgSmartEXP3}
		switch {
		case d < 8: // commuters: food court -> study area -> bus stop
			devices[d].Trajectory = []smartexp3.AreaStay{
				{FromSlot: 0, Area: areaFoodCourt},
				{FromSlot: 400, Area: areaStudyArea},
				{FromSlot: 800, Area: areaBusStop},
			}
			groups[0] = append(groups[0], d)
		case d < 10:
			devices[d].Trajectory = []smartexp3.AreaStay{{Area: areaFoodCourt}}
			groups[1] = append(groups[1], d)
		case d < 15:
			devices[d].Trajectory = []smartexp3.AreaStay{{Area: areaStudyArea}}
			groups[2] = append(groups[2], d)
		default:
			devices[d].Trajectory = []smartexp3.AreaStay{{Area: areaBusStop}}
			groups[3] = append(groups[3], d)
		}
	}

	res, err := smartexp3.Simulate(smartexp3.SimConfig{
		Topology:     smartexp3.FoodCourt(),
		Devices:      devices,
		Slots:        slots,
		Seed:         3,
		DeviceGroups: groups,
		Collect:      smartexp3.CollectOptions{Distance: true},
	})
	if err != nil {
		return err
	}

	names := []string{
		"commuters (devices 1-8)",
		"food court (devices 9-10)",
		"study area (devices 11-15)",
		"bus stop (devices 16-20)",
	}
	fmt.Println("mean distance to Nash equilibrium (% higher gain available), by phase:")
	fmt.Printf("%-28s %8s %8s %8s\n", "group", "phase1", "phase2", "phase3")
	for g, name := range names {
		series := res.GroupDistance[g]
		p1 := stats.Mean(series[100:400])
		p2 := stats.Mean(series[500:800])
		p3 := stats.Mean(series[900:])
		fmt.Printf("%-28s %8.2f %8.2f %8.2f\n", name, p1, p2, p3)
	}

	var totalSwitches, totalResets int
	for d := range res.Devices {
		totalSwitches += res.Devices[d].Switches
		totalResets += res.Devices[d].Resets
	}
	fmt.Printf("\ntotal switches %d, total resets %d over %d slots\n", totalSwitches, totalResets, slots)
	fmt.Printf("commuter switches: mean %.1f (discovering new networks forces resets)\n",
		meanSwitches(res, groups[0]))
	return nil
}

func meanSwitches(res *smartexp3.SimResult, group []int) float64 {
	var xs []float64
	for _, d := range group {
		xs = append(xs, float64(res.Devices[d].Switches))
	}
	return stats.Mean(xs)
}
