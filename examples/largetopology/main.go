// The largetopology example exercises the metropolitan scale the engine
// opened up: a generated 204-network topology spanning 40 service areas,
// 400 devices spread across it, and a Monte Carlo batch run through one
// compiled engine with a single reused workspace — the zero-allocation
// replication shape.
package main

import (
	"fmt"
	"os"
	"time"

	"smartexp3"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "largetopology:", err)
		os.Exit(1)
	}
}

func run() error {
	top := smartexp3.LargeTopology()
	spec := smartexp3.LargeTopologySpec()
	fmt.Printf("-- generated metro topology: %d networks, %d areas, %.0f Mbps aggregate --\n",
		len(top.Networks), len(top.Areas), top.AggregateBandwidth())

	const (
		devices = 400
		slots   = 120 // half an hour of 15 s slots
		runs    = 4
	)

	// Compile once; the engine is immutable. One workspace serves the whole
	// batch: after the first replication the slot loop reuses every buffer.
	eng, err := smartexp3.NewSimEngine(smartexp3.SimConfig{
		Topology: top,
		Devices:  smartexp3.SpreadDevices(devices, smartexp3.AlgSmartEXP3, len(top.Areas)),
		Slots:    slots,
	})
	if err != nil {
		return err
	}
	ws := eng.NewWorkspace()

	fmt.Printf("-- %d devices x %d slots, %d replications through one pooled workspace --\n",
		devices, slots, runs)
	var totalGB, totalSwitches float64
	start := time.Now()
	for run := 0; run < runs; run++ {
		res, err := eng.Run(ws, int64(run+1))
		if err != nil {
			return err
		}
		var gb, switches float64
		for d := range res.Devices {
			gb += smartexp3.MbToGB(res.Devices[d].DownloadMb)
			switches += float64(res.Devices[d].Switches)
		}
		totalGB += gb
		totalSwitches += switches
		fmt.Printf("run %d: %7.1f GB downloaded, %5.1f switches/device\n",
			run+1, gb, switches/devices)
	}
	elapsed := time.Since(start)

	fmt.Printf("mean over runs: %.1f GB, %.1f switches/device\n",
		totalGB/runs, totalSwitches/runs/devices)
	fmt.Printf("simulated %d device-slots in %v (%.2f Mslots/s)\n",
		runs*devices*slots, elapsed.Round(time.Millisecond),
		float64(runs*devices*slots)/elapsed.Seconds()/1e6)

	// Per-area utilization sanity: every area hosts devices (SpreadDevices
	// is round-robin), so each APs cluster should see traffic. With one AP
	// shared across each boundary (the overlap), devices at area edges can
	// offload to a neighbor's access point.
	fmt.Printf("spec: %d areas x %d APs + %d cells, overlap %d\n",
		spec.Areas, spec.APsPerArea, spec.Cells, spec.Overlap)
	return nil
}
