package cluster

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"smartexp3/internal/runner"
	"smartexp3/internal/sim"
)

// WorkerOptions configures a worker daemon.
type WorkerOptions struct {
	// Workers bounds the parallelism each coordinator connection fans a
	// range across; 0 or less means GOMAXPROCS. Parallelism is a local
	// choice and never affects results (runner's determinism contract).
	Workers int
	// WriteTimeout bounds each outbound frame write (result streaming,
	// acks, pongs); 0 means 2 minutes (the coordinator's frame-timeout
	// default), negative disables. It is the worker-side mirror of the
	// coordinator's per-frame write deadline: a coordinator that dies — or
	// stalls — without closing the connection stops draining, the TCP
	// buffer fills, and without a deadline the serving goroutine would park
	// on that write forever, pinning the session's compiled engines and
	// workspace pools with it.
	WriteTimeout time.Duration
	// Logf, when non-nil, receives connection-level progress and failure
	// lines.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, counts worker activity (sessions, jobs,
	// ranges, runs, wire traffic) — a NewWorkerMetrics set registered on
	// an obsv.Registry, shared by every session the daemon serves.
	Metrics *WorkerMetrics
}

func (o WorkerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

func (o WorkerOptions) writeTimeout() time.Duration {
	if o.WriteTimeout < 0 {
		return 0
	}
	if o.WriteTimeout == 0 {
		return 2 * time.Minute
	}
	return o.WriteTimeout
}

// maxIdleEngines bounds how many compiled engines with no live job a worker
// session keeps warm. The experiment suite's dominant pattern is many
// consecutive batches of the same few configs, each batch released before
// the next arrives — retention across the ref-count's zero crossings is
// what turns the compile into a once-per-config cost.
const maxIdleEngines = 8

// Serve accepts coordinator connections on ln until the listener is closed,
// handling each connection on its own goroutine. It returns nil when ln
// closes. This is the body of cmd/shardd; tests drive it directly on
// loopback listeners.
func Serve(ln net.Listener, opts WorkerOptions) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("cluster: accept: %w", err)
		}
		go func() {
			defer conn.Close()
			opts.logf("cluster: session from %s", conn.RemoteAddr())
			if err := serveConn(conn, opts); err != nil {
				opts.logf("cluster: connection from %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// workerJob is one job held by a session. A job whose descriptor failed to
// compile is kept with its error so pipelined ranges that were already on
// the wire when the rejection went out are answered with a deterministic
// range error instead of a protocol violation.
type workerJob struct {
	exec       *rangeExec
	compileErr string
}

// workerSession is the per-connection state: the live jobs and the engine
// cache they draw from. Engines (and their workspace pools) are shared by
// every job whose wire config gob-encodes identically, and survive brief
// idle spells between jobs (maxIdleEngines), so a session streaming batches
// of the same scenario compiles it exactly once.
type workerSession struct {
	workers int
	jobs    map[uint64]*workerJob
	engines map[string]*enginePool
	jobKeys map[uint64]string
	idle    []string // keys whose refs hit zero, oldest first (lazily pruned)
}

// addJob compiles (or reuses) the engine for one job descriptor and
// registers it. It returns the compile error to acknowledge, if any.
func (ws *workerSession) addJob(id uint64, spec JobSpec) string {
	wj := &workerJob{}
	key, keyErr := configKey(spec.Config)
	var shared *enginePool
	if keyErr == nil {
		shared = ws.engines[key]
	}
	exec, err := newRangeExec(spec, ws.workers, shared)
	switch {
	case err != nil:
		wj.compileErr = err.Error()
	case keyErr == nil:
		ws.engines[key] = exec.shared
		exec.shared.refs++
		ws.jobKeys[id] = key
	}
	if err == nil {
		wj.exec = exec
	}
	ws.jobs[id] = wj
	return wj.compileErr
}

// releaseJob drops a job id. Its engine stays cached while other jobs use
// it, and lingers in the idle list afterwards until capacity evicts it.
func (ws *workerSession) releaseJob(id uint64) {
	if key, ok := ws.jobKeys[id]; ok {
		delete(ws.jobKeys, id)
		if ep := ws.engines[key]; ep != nil {
			if ep.refs--; ep.refs <= 0 {
				ws.noteIdle(key)
			}
		}
	}
	delete(ws.jobs, id)
}

// noteIdle records that key's engine has no live job and evicts the oldest
// idle engines beyond the retention cap. The list holds distinct,
// genuinely idle keys (oldest first): a key is de-duplicated on every
// re-idle and entries re-adopted since they were logged are dropped, so a
// single hot engine released once per batch occupies exactly one retention
// slot forever instead of accumulating phantom entries that would evict it.
func (ws *workerSession) noteIdle(key string) {
	kept := ws.idle[:0]
	for _, k := range ws.idle {
		if ep := ws.engines[k]; k != key && ep != nil && ep.refs <= 0 {
			kept = append(kept, k)
		}
	}
	ws.idle = append(kept, key)
	for len(ws.idle) > maxIdleEngines {
		delete(ws.engines, ws.idle[0])
		ws.idle = ws.idle[1:]
	}
}

// configKey fingerprints a wire config: two configs with the same key
// compile to interchangeable engines (the encoding is the same gob the wire
// uses, so key equality is exactly "the worker would receive identical
// descriptors").
func configKey(wc WireConfig) (string, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wc); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// serveConn speaks one coordinator session: handshake, then a frame loop
// multiplexing any number of jobs (by id) and their ranges until the
// coordinator closes the connection. Ranges execute strictly in arrival
// order — the ordering contract the coordinator's in-flight attribution
// relies on. Keepalive pings are answered in the same loop: while a range is
// executing the coordinator sees progress through the result stream instead.
func serveConn(conn net.Conn, opts WorkerOptions) error {
	bw := bufio.NewWriter(conn)
	fw := newFrameWriter(bw)
	fr := newFrameReader(bufio.NewReader(conn))
	m := opts.Metrics
	if m != nil {
		m.Sessions.Inc()
		fr.Instrument(m.FramesRead, m.BytesRead)
		fw.Instrument(m.FramesWritten, m.BytesWritten)
	}
	wt := opts.writeTimeout()
	flush := func(env *envelope) error {
		// Per-frame write deadline, like the coordinator's epoch.write: a
		// peer that stopped draining surfaces within the timeout instead of
		// parking this goroutine on a full TCP buffer for good.
		if wt > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(wt)); err != nil {
				return err
			}
		}
		if err := fw.write(env); err != nil {
			return err
		}
		return bw.Flush()
	}

	env, err := fr.read()
	if err != nil {
		return fmt.Errorf("reading hello: %w", err)
	}
	if env.Hello == nil {
		return errors.New("protocol: expected hello")
	}
	ack := helloAckMsg{Version: protocolVersion}
	if env.Hello.Version != protocolVersion {
		ack.Err = fmt.Sprintf("protocol version %d, worker speaks %d", env.Hello.Version, protocolVersion)
	}
	if err := flush(&envelope{HelloAck: &ack}); err != nil {
		return err
	}
	if ack.Err != "" {
		return errors.New(ack.Err)
	}

	ws := &workerSession{
		workers: opts.Workers,
		jobs:    make(map[uint64]*workerJob),
		engines: make(map[string]*enginePool),
		jobKeys: make(map[uint64]string),
	}
	for {
		env, err := fr.read()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // coordinator finished and closed the session
			}
			return err
		}
		switch {
		case env.Ping != nil:
			if err := flush(&envelope{Pong: &pongMsg{Seq: env.Ping.Seq}}); err != nil {
				return err
			}
			if m != nil {
				m.Pongs.Inc()
			}

		case env.Job != nil:
			id := env.Job.ID
			if _, dup := ws.jobs[id]; dup {
				return fmt.Errorf("protocol: duplicate job id %d", id)
			}
			compileErr := ws.addJob(id, env.Job.Spec)
			if m != nil {
				if compileErr == "" {
					m.Jobs.Inc()
				} else {
					m.JobsRejected.Inc()
				}
			}
			if err := flush(&envelope{JobAck: &jobAckMsg{ID: id, Err: compileErr}}); err != nil {
				return err
			}
			if compileErr == "" {
				opts.logf("cluster: %s: job %d accepted (%d devices, %d slots, %d runs)",
					conn.RemoteAddr(), id, len(env.Job.Spec.Config.Devices), env.Job.Spec.Config.Slots, env.Job.Spec.Runs)
			}

		case env.JobRelease != nil:
			ws.releaseJob(env.JobRelease.ID)

		case env.Range != nil:
			r := env.Range
			wj, ok := ws.jobs[r.Job]
			if !ok {
				return fmt.Errorf("protocol: range for unknown job %d", r.Job)
			}
			if wj.compileErr != "" {
				// The job never compiled; the coordinator learned that from
				// the job ack, but ranges pipelined before the ack arrived
				// still deserve a deterministic answer.
				if err := flush(&envelope{RangeDone: &rangeDoneMsg{Job: r.Job, First: r.First, Err: wj.compileErr}}); err != nil {
					return err
				}
				continue
			}
			// Overflow-safe bounds check: First+Count could wrap for a corrupt
			// frame with First near MaxInt, so compare against the remaining
			// headroom instead of the sum.
			if r.First < 0 || r.Count <= 0 || r.First > wj.exec.job.Runs || r.Count > wj.exec.job.Runs-r.First {
				return fmt.Errorf("protocol: range [first=%d, count=%d) outside batch of %d runs", r.First, r.Count, wj.exec.job.Runs)
			}
			var rangeStart time.Time
			if m != nil {
				m.Ranges.Inc()
				rangeStart = time.Now()
			}
			runErr := wj.exec.run(r.First, r.Count, func(run int, res *sim.Result) error {
				if m != nil {
					m.Runs.Inc()
				}
				// Flush per result, not per range: the coordinator's
				// FrameTimeout is a progress timeout, so every finished run
				// must reach the wire promptly — a slow chunk buffered until
				// RangeDone would look like a stalled worker.
				return flush(&envelope{RunResult: &runResultMsg{Job: r.Job, Run: run, Res: res}})
			})
			if m != nil {
				m.RangeLatency.Observe(time.Since(rangeStart).Nanoseconds())
			}
			done := rangeDoneMsg{Job: r.Job, First: r.First}
			if runErr != nil {
				// Distinguish simulation errors (report to the coordinator, keep
				// serving) from transport errors (the connection is gone).
				var wErr *writeError
				if errors.As(runErr, &wErr) {
					return wErr.err
				}
				done.Err = runErr.Error()
			}
			if err := flush(&envelope{RangeDone: &done}); err != nil {
				return err
			}

		default:
			return errors.New("protocol: unexpected frame")
		}
	}
}

// writeError marks emit failures so rangeExec.run callers can tell "the
// simulation failed" from "the connection failed".
type writeError struct{ err error }

func (w *writeError) Error() string { return w.err.Error() }
func (w *writeError) Unwrap() error { return w.err }

// enginePool is one compiled engine plus its reusable workspaces — the
// config-dependent, seed-independent state that jobs of the same wire
// config share.
type enginePool struct {
	eng    *sim.Engine
	refs   int // live jobs drawing from this pool (session loop only)
	poolMu sync.Mutex
	pool   []*sim.Workspace // idle workspaces, reused across ranges and jobs
}

// rangeExec executes contiguous run ranges of one job: per-job seeding
// (batch) over a possibly shared enginePool. It is the execution core
// shared by the worker daemon and the coordinator's in-process fallback.
type rangeExec struct {
	job     JobSpec
	batch   runner.Replications
	workers int
	shared  *enginePool
}

// newRangeExec builds the executor for one job, compiling the config only
// when no shared pool is supplied.
func newRangeExec(job JobSpec, workers int, shared *enginePool) (*rangeExec, error) {
	if shared == nil {
		eng, err := sim.NewEngine(job.Config.SimConfig())
		if err != nil {
			return nil, err
		}
		shared = &enginePool{eng: eng}
	}
	return &rangeExec{
		job:     job,
		batch:   job.batch(),
		workers: runner.Workers(workers),
		shared:  shared,
	}, nil
}

// run executes the global run indices [first, first+count), calling emit in
// ascending run order from this goroutine (runner.MergeOrderedPooled's
// single-merger guarantee). Workspaces are drawn from the shared pool and
// returned afterwards, so steady-state ranges allocate no simulation state.
// An emit failure is returned wrapped in *writeError.
func (x *rangeExec) run(first, count int, emit func(run int, res *sim.Result) error) error {
	// Lend pooled workspaces to the worker goroutines. MergeOrderedPooled
	// joins every worker before returning, so the pool is quiescent again
	// afterwards; lent tracks how many were taken to support concurrent
	// newState calls without double-handing a workspace.
	ep := x.shared
	var lent int
	newState := func() *sim.Workspace {
		ep.poolMu.Lock()
		defer ep.poolMu.Unlock()
		if lent < len(ep.pool) {
			ws := ep.pool[lent]
			lent++
			return ws
		}
		ws := ep.eng.NewWorkspace()
		ep.pool = append(ep.pool, ws)
		lent++
		return ws
	}
	return runner.MergeOrderedPooled(x.workers, count, newState,
		func(ws *sim.Workspace, i int) (*sim.Result, error) {
			run := first + i
			return ep.eng.Run(ws, x.batch.SeedFor(run))
		},
		func(i int, res *sim.Result) error {
			if err := emit(first+i, res); err != nil {
				return &writeError{err: err}
			}
			return nil
		})
}
