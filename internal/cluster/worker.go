package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"smartexp3/internal/runner"
	"smartexp3/internal/sim"
)

// WorkerOptions configures a worker daemon.
type WorkerOptions struct {
	// Workers bounds the parallelism each coordinator connection fans a
	// range across; 0 or less means GOMAXPROCS. Parallelism is a local
	// choice and never affects results (runner's determinism contract).
	Workers int
	// Logf, when non-nil, receives connection-level progress and failure
	// lines.
	Logf func(format string, args ...any)
}

func (o WorkerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Serve accepts coordinator connections on ln until the listener is closed,
// handling each connection on its own goroutine. It returns nil when ln
// closes. This is the body of cmd/shardd; tests drive it directly on
// loopback listeners.
func Serve(ln net.Listener, opts WorkerOptions) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("cluster: accept: %w", err)
		}
		go func() {
			defer conn.Close()
			if err := serveConn(conn, opts); err != nil {
				opts.logf("cluster: connection from %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// serveConn speaks one coordinator session: handshake, one job, then a
// range loop until the coordinator closes the connection.
func serveConn(conn net.Conn, opts WorkerOptions) error {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	env, err := readFrame(br)
	if err != nil {
		return fmt.Errorf("reading hello: %w", err)
	}
	if env.Hello == nil {
		return errors.New("protocol: expected hello")
	}
	ack := helloAckMsg{Version: protocolVersion}
	if env.Hello.Version != protocolVersion {
		ack.Err = fmt.Sprintf("protocol version %d, worker speaks %d", env.Hello.Version, protocolVersion)
	}
	if err := writeFrame(bw, &envelope{HelloAck: &ack}); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if ack.Err != "" {
		return errors.New(ack.Err)
	}

	env, err = readFrame(br)
	if err != nil {
		return fmt.Errorf("reading job: %w", err)
	}
	if env.Job == nil {
		return errors.New("protocol: expected job")
	}
	exec, err := newRangeExec(env.Job.Spec, opts.Workers)
	var jobAck jobAckMsg
	if err != nil {
		jobAck.Err = err.Error()
	}
	if err := writeFrame(bw, &envelope{JobAck: &jobAck}); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if jobAck.Err != "" {
		return errors.New(jobAck.Err)
	}
	opts.logf("cluster: %s: job accepted (%d devices, %d slots, %d runs)",
		conn.RemoteAddr(), len(env.Job.Spec.Config.Devices), env.Job.Spec.Config.Slots, env.Job.Spec.Runs)

	for {
		env, err := readFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // coordinator finished and closed the session
			}
			return err
		}
		r := env.Range
		if r == nil {
			return errors.New("protocol: expected range")
		}
		// Overflow-safe bounds check: First+Count could wrap for a corrupt
		// frame with First near MaxInt, so compare against the remaining
		// headroom instead of the sum.
		if r.First < 0 || r.Count <= 0 || r.First > exec.job.Runs || r.Count > exec.job.Runs-r.First {
			return fmt.Errorf("protocol: range [first=%d, count=%d) outside batch of %d runs", r.First, r.Count, exec.job.Runs)
		}
		runErr := exec.run(r.First, r.Count, func(run int, res *sim.Result) error {
			// Flush per result, not per range: the coordinator's
			// FrameTimeout is a progress timeout, so every finished run
			// must reach the wire promptly — a slow chunk buffered until
			// RangeDone would look like a stalled worker.
			if err := writeFrame(bw, &envelope{RunResult: &runResultMsg{Run: run, Res: res}}); err != nil {
				return err
			}
			return bw.Flush()
		})
		done := rangeDoneMsg{First: r.First}
		if runErr != nil {
			// Distinguish simulation errors (report to the coordinator, keep
			// serving) from transport errors (the connection is gone).
			var wErr *writeError
			if errors.As(runErr, &wErr) {
				return wErr.err
			}
			done.Err = runErr.Error()
		}
		if err := writeFrame(bw, &envelope{RangeDone: &done}); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// writeError marks emit failures so rangeExec.run callers can tell "the
// simulation failed" from "the connection failed".
type writeError struct{ err error }

func (w *writeError) Error() string { return w.err.Error() }
func (w *writeError) Unwrap() error { return w.err }

// rangeExec executes contiguous run ranges of one job against one compiled
// engine, reusing a pool of workspaces across ranges. It is the execution
// core shared by the worker daemon and the coordinator's in-process
// fallback.
type rangeExec struct {
	job     JobSpec
	eng     *sim.Engine
	batch   runner.Replications
	workers int
	poolMu  sync.Mutex
	pool    []*sim.Workspace // idle workspaces, reused across ranges
}

// newRangeExec compiles the job's config once.
func newRangeExec(job JobSpec, workers int) (*rangeExec, error) {
	eng, err := sim.NewEngine(job.Config.SimConfig())
	if err != nil {
		return nil, err
	}
	return &rangeExec{
		job:     job,
		eng:     eng,
		batch:   job.batch(),
		workers: runner.Workers(workers),
	}, nil
}

// run executes the global run indices [first, first+count), calling emit in
// ascending run order from this goroutine (runner.MergeOrderedPooled's
// single-merger guarantee). Workspaces are drawn from the exec's pool and
// returned afterwards, so steady-state ranges allocate no simulation state.
// An emit failure is returned wrapped in *writeError.
func (x *rangeExec) run(first, count int, emit func(run int, res *sim.Result) error) error {
	// Lend pooled workspaces to the worker goroutines. MergeOrderedPooled
	// joins every worker before returning, so the pool is quiescent again
	// afterwards; lent tracks how many were taken to support concurrent
	// newState calls without double-handing a workspace.
	var lent int
	newState := func() *sim.Workspace {
		x.poolMu.Lock()
		defer x.poolMu.Unlock()
		if lent < len(x.pool) {
			ws := x.pool[lent]
			lent++
			return ws
		}
		ws := x.eng.NewWorkspace()
		x.pool = append(x.pool, ws)
		lent++
		return ws
	}
	return runner.MergeOrderedPooled(x.workers, count, newState,
		func(ws *sim.Workspace, i int) (*sim.Result, error) {
			run := first + i
			return x.eng.Run(ws, x.batch.SeedFor(run))
		},
		func(i int, res *sim.Result) error {
			if err := emit(first+i, res); err != nil {
				return &writeError{err: err}
			}
			return nil
		})
}
