package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"smartexp3/internal/sim"
)

const (
	// pipelineDepth bounds how many ranges may be on the wire to one worker
	// at once. Depth ≥ 2 removes the request/response round trip from the
	// worker's critical path (the next range is already queued when the
	// current one finishes); more buys little and enlarges the forfeit when
	// a connection dies.
	pipelineDepth = 2
	// maxShardStrikes is how many consecutive connection failures without a
	// single delivered chunk retire a shard for the rest of the session. Any
	// delivered chunk resets the count, so a flaky-but-progressing worker is
	// kept (every reconnect still moves the batch forward), while a dead or
	// pathologically cut one stops burning redials.
	maxShardStrikes = 3
	// redialBackoff spaces reconnect attempts to a failed shard.
	redialBackoff = 100 * time.Millisecond
)

// errSessionClosed fails jobs still active when Close is called.
var errSessionClosed = errors.New("cluster: session closed")

// Session is a persistent coordinator: it dials each shard once, keeps the
// gob streams alive across batches (keepalive pings under the frame-timeout
// discipline), and multiplexes any number of jobs over them with
// session-unique job ids. Run may be called concurrently — pipelined jobs
// interleave on the same connections without redials — and each Run merges
// its own job in ascending global run order from the calling goroutine, so
// the per-job determinism contract is exactly cluster.Run's.
//
// Worker failure is handled as in the one-shot coordinator, plus recovery:
// in-flight chunks of a lost connection are requeued, the shard is redialed
// (bounded by consecutive no-progress strikes), and if every shard retires
// the remaining chunks of every active job run in-process. Aggregates are
// byte-identical through all of it.
type Session struct {
	opts Options

	// mu guards the job list and all per-job claim/merge bookkeeping; cond
	// wakes shard writers (new work, reopened windows, requeues, releases)
	// and local rescuers. Lock order: Session.mu may be taken before an
	// epoch's mu, never after.
	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []*jobRun // active jobs in submission order
	nextID uint64
	live   int // shards not yet retired
	closed bool

	shards []*shard
	wg     sync.WaitGroup
}

// shard is one worker address and its current connection (if any).
type shard struct {
	addr  string
	index int

	mu   sync.Mutex
	conn net.Conn // live connection, closed by Session.Close to interrupt
}

func (sh *shard) setConn(c net.Conn) {
	sh.mu.Lock()
	sh.conn = c
	sh.mu.Unlock()
}

func (sh *shard) closeConn() {
	sh.mu.Lock()
	if sh.conn != nil {
		sh.conn.Close()
	}
	sh.mu.Unlock()
}

// NewSession starts a persistent coordinator over the given shard
// addresses. Dialing happens in the background: a session is usable
// immediately, and shards that cannot be reached retire after their strike
// budget exactly like mid-session failures. With no addresses (or after
// every shard retires) jobs run in-process, byte-identical.
func NewSession(shards []string, opts Options) *Session {
	s := &Session{opts: opts, live: len(shards)}
	s.cond = sync.NewCond(&s.mu)
	for i, addr := range shards {
		s.shards = append(s.shards, &shard{addr: addr, index: i})
	}
	// Spawn only after the shard slice is complete: shard writers read it
	// (affinity arithmetic) without holding any per-slice lock.
	for _, sh := range s.shards {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.shardLoop(sh)
			s.shardRetired(sh)
		}()
	}
	return s
}

// Close retires the session: it fails any still-active jobs, tears down the
// worker connections and waits for every shard goroutine to exit. Close is
// idempotent. Jobs submitted after Close run in-process.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	jobs := append([]*jobRun(nil), s.jobs...)
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, j := range jobs {
		s.failJob(j, errSessionClosed)
	}
	for _, sh := range s.shards {
		sh.closeConn()
	}
	s.wg.Wait()
	return nil
}

func (s *Session) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Session) wake() {
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// jobRun is the coordinator-side state of one pipelined job: the chunk
// queue, the claim window and the delivery channel its merger drains. All
// claim/merge fields are guarded by Session.mu.
type jobRun struct {
	id   uint64
	spec JobSpec

	chunk   int
	nChunks int
	window  int

	// resCh carries completed chunks to the job's merger. Its capacity is
	// the claim window — the bound on claimed-but-unmerged chunks — so
	// deliveries never block a shard reader, even after the merger stopped
	// consuming (job failure).
	resCh chan chunkResult
	// failCh closes when the job fails, releasing the merger.
	failCh chan struct{}

	retry       []int // failed chunk indices, dispatched before fresh ones
	next        int   // next fresh chunk index
	frontier    int   // chunks fully merged
	failed      bool
	ended       bool // merger returned; claims, deliveries and requeues stop
	firstErr    error
	localActive bool
}

func (j *jobRun) bounds(idx int) (first, count int) {
	first = idx * j.chunk
	count = j.chunk
	if first+count > j.spec.Runs {
		count = j.spec.Runs - first
	}
	return first, count
}

// tryClaimLocked hands out the next chunk index: reassigned chunks first,
// then fresh ones while the merge frontier is within the window (capping the
// reorder buffer, the same memory argument as runner.MergeOrdered's window).
// Callers hold Session.mu.
func (j *jobRun) tryClaimLocked() (int, bool) {
	if j.failed || j.ended {
		return 0, false
	}
	if n := len(j.retry); n > 0 {
		idx := j.retry[n-1]
		j.retry = j.retry[:n-1]
		return idx, true
	}
	if j.next < j.nChunks && j.next-j.frontier < j.window {
		idx := j.next
		j.next++
		return idx, true
	}
	return 0, false
}

// Run executes one job over the session and folds every result through
// merge in ascending global run order, from this goroutine. It is safe to
// call concurrently with other Runs — that is the pipelining path: many
// small batches stream over the same worker connections without a dial or
// handshake between them.
func (s *Session) Run(job JobSpec, merge func(run int, res *sim.Result) error) error {
	if job.Runs <= 0 {
		return nil
	}
	j := s.register(job)
	defer s.unregister(j)

	// Single-goroutine ordered merger: chunks are folded in ascending chunk
	// index, runs in ascending order within each chunk — the exact order a
	// serial loop would produce.
	pending := make(map[int][]*sim.Result)
	mergeNext := 0
	for mergeNext < j.nChunks {
		var cr chunkResult
		select {
		case cr = <-j.resCh:
		case <-j.failCh:
			return s.jobErr(j)
		}
		pending[cr.idx] = cr.results
		for {
			results, ok := pending[mergeNext]
			if !ok {
				break
			}
			delete(pending, mergeNext)
			first := mergeNext * j.chunk
			for i, res := range results {
				if err := merge(first+i, res); err != nil {
					s.failJob(j, fmt.Errorf("cluster: merge run %d: %w", first+i, err))
					return s.jobErr(j)
				}
			}
			mergeNext++
			s.advance(j)
		}
	}
	return nil
}

func (s *Session) register(job JobSpec) *jobRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	nShards := len(s.shards)
	if nShards == 0 {
		nShards = 1
	}
	chunk := chunkSize(s.opts.ChunkSize, job.Runs, nShards)
	j := &jobRun{
		id:      s.nextID,
		spec:    job,
		chunk:   chunk,
		nChunks: (job.Runs + chunk - 1) / chunk,
		window:  4 * nShards,
		failCh:  make(chan struct{}),
	}
	j.resCh = make(chan chunkResult, j.window)
	if m := s.opts.Metrics; m != nil {
		m.Jobs.Inc()
	}
	s.jobs = append(s.jobs, j)
	if s.live == 0 || s.closed {
		s.startLocalLocked(j)
	}
	s.cond.Broadcast()
	return j
}

func (s *Session) unregister(j *jobRun) {
	s.mu.Lock()
	j.ended = true
	for i, other := range s.jobs {
		if other == j {
			s.jobs = append(s.jobs[:i], s.jobs[i+1:]...)
			break
		}
	}
	s.cond.Broadcast() // writers: the job's id is now releasable
	s.mu.Unlock()
}

func (s *Session) failJob(j *jobRun, err error) {
	s.mu.Lock()
	s.failJobLocked(j, err)
	s.mu.Unlock()
}

// failJobLocked is failJob for callers already holding Session.mu.
func (s *Session) failJobLocked(j *jobRun, err error) {
	if !j.failed {
		j.failed = true
		j.firstErr = err
		close(j.failCh)
		if m := s.opts.Metrics; m != nil {
			m.JobsFailed.Inc()
		}
	}
	s.cond.Broadcast()
}

func (s *Session) jobErr(j *jobRun) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.firstErr
}

// advance moves the job's merge frontier (called by its merger only).
func (s *Session) advance(j *jobRun) {
	s.mu.Lock()
	j.frontier++
	s.cond.Broadcast()
	s.mu.Unlock()
}

// requeue returns a chunk whose connection died before delivering it.
func (s *Session) requeue(j *jobRun, idx int) {
	s.mu.Lock()
	if !j.ended && !j.failed {
		j.retry = append(j.retry, idx)
		if m := s.opts.Metrics; m != nil {
			m.ChunksReassigned.Inc()
		}
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// deliver hands one completed chunk to the job's merger. The channel's
// capacity equals the claim window, which bounds undelivered claimed chunks,
// so the send never blocks a shard reader.
func (s *Session) deliver(j *jobRun, cr chunkResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Wake writers regardless of the drop below: popping the last in-flight
	// range of an ended job is what makes its id releasable.
	s.cond.Broadcast()
	if j.ended || j.failed {
		return
	}
	select {
	case j.resCh <- cr:
		if m := s.opts.Metrics; m != nil {
			m.Chunks.Inc()
		}
	default:
		// Unreachable while the claim-window invariant holds; failing loudly
		// beats silently hanging the merger on a lost chunk.
		s.failJobLocked(j, fmt.Errorf("cluster: internal: chunk %d overflowed the delivery window", cr.idx))
	}
}

// tryClaimShardLocked finds a chunk for the shard at index, preferring jobs
// whose Affinity maps to it (whole experiments stick to "their" worker when
// reproduce -parexp pipelines several at once) and stealing from any other
// job otherwise, so no shard idles while work exists.
func (s *Session) tryClaimShardLocked(shardIdx int) (*jobRun, int, bool) {
	n := len(s.shards)
	for pass := 0; pass < 2; pass++ {
		for _, j := range s.jobs {
			if pass == 0 && (j.spec.Affinity <= 0 || (j.spec.Affinity-1)%n != shardIdx) {
				continue
			}
			if idx, ok := j.tryClaimLocked(); ok {
				return j, idx, true
			}
		}
	}
	return nil, 0, false
}

// startLocalLocked spawns the in-process rescuer for one job. Callers hold
// Session.mu. The rescuer is deliberately not tracked by s.wg: it can be
// spawned from Run after Close has begun waiting, and Add-from-zero
// concurrent with Wait is a WaitGroup contract violation. It needs no
// waiting either — it touches only its job's state and exits as soon as
// the job ends or fails (claimLocal), both of which Close forces.
func (s *Session) startLocalLocked(j *jobRun) {
	if j.localActive || j.failed || j.ended {
		return
	}
	j.localActive = true
	go s.runLocal(j)
}

// shardRetired accounts for a shard goroutine ending. When the last one
// goes, in-process rescuers take over every active job so the session always
// completes its work: losing every worker degrades throughput, not
// correctness.
func (s *Session) shardRetired(sh *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.live--
	if s.live > 0 || s.closed {
		return
	}
	if len(s.jobs) > 0 {
		s.opts.logf("cluster: all shards gone, finishing the remaining runs in-process")
	}
	for _, j := range s.jobs {
		s.startLocalLocked(j)
	}
}

// runLocal drains one job's chunk queue in-process.
func (s *Session) runLocal(j *jobRun) {
	exec, err := newRangeExec(j.spec, s.opts.LocalWorkers, nil)
	if err != nil {
		s.failJob(j, err)
		return
	}
	for {
		idx, ok := s.claimLocal(j)
		if !ok {
			return
		}
		first, count := j.bounds(idx)
		results := make([]*sim.Result, 0, count)
		err := exec.run(first, count, func(run int, res *sim.Result) error {
			results = append(results, res)
			return nil
		})
		if err != nil {
			s.failJob(j, err)
			return
		}
		s.deliver(j, chunkResult{idx: idx, results: results})
	}
}

// claimLocal blocks until the job has a claimable chunk, is fully merged, or
// fails.
func (s *Session) claimLocal(j *jobRun) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if j.failed || j.ended {
			return 0, false
		}
		if idx, ok := j.tryClaimLocked(); ok {
			return idx, true
		}
		if j.frontier >= j.nChunks {
			return 0, false
		}
		s.cond.Wait()
	}
}

// shardLoop owns one worker address for the session's lifetime: dial, run a
// connection epoch until it fails, then redial. Consecutive failures without
// a delivered chunk retire the shard; any progress resets the count. A
// shard that never answered a dial at all retires on the first failure —
// redialing an address that was unreachable from the start mostly delays
// the fallback (the one-shot Run's in-process rescue in particular), while
// an established worker that drops out earns the reconnect attempts.
func (s *Session) shardLoop(sh *shard) {
	strikes := 0
	everConnected := false
	for {
		if s.isClosed() {
			return
		}
		conn, err := net.DialTimeout("tcp", sh.addr, s.opts.dialTimeout())
		if err != nil {
			s.opts.logf("cluster: shard %s: dial: %v", sh.addr, err)
			if !everConnected {
				return
			}
			if strikes++; strikes >= maxShardStrikes {
				return
			}
			time.Sleep(redialBackoff)
			continue
		}
		if everConnected {
			if m := s.opts.Metrics; m != nil {
				m.Reconnects.Inc()
			}
		}
		everConnected = true
		sh.setConn(conn)
		progressed, permanent, err := s.runConn(sh, conn)
		// Single close point for every connection this session dials: no
		// early-return path below runConn can leak the socket.
		conn.Close()
		sh.setConn(nil)
		if s.isClosed() || err == nil {
			return
		}
		if permanent {
			// A deterministic refusal (version mismatch, protocol breach at
			// handshake): redialing the same binary cannot end differently.
			s.opts.logf("cluster: shard %s: retired: %v", sh.addr, err)
			return
		}
		s.opts.logf("cluster: shard %s: connection lost: %v", sh.addr, err)
		if progressed {
			strikes = 0
		}
		if strikes++; strikes >= maxShardStrikes {
			return
		}
		time.Sleep(redialBackoff)
	}
}

// inflightChunk is one range on the wire, awaiting its result stream.
type inflightChunk struct {
	j      *jobRun
	idx    int
	first  int
	count  int
	sentAt time.Time // dispatch instant, set only when the session is instrumented
}

// epoch is one connection's lifetime within a session: a writer (the shard
// goroutine) claiming and dispatching chunks, a reader attributing the
// result stream to the in-flight FIFO, and a keepalive ticker pinging
// through idle gaps. Workers execute ranges strictly in arrival order, so
// the FIFO head is always the range currently streaming back.
type epoch struct {
	s  *Session
	sh *shard

	conn net.Conn
	bw   *bufio.Writer
	fw   *FrameWriter // persistent gob state; guarded by wmu with bw
	fr   *FrameReader // reader goroutine only (handshake happens before it starts)
	wmu  sync.Mutex   // serializes writer-loop and keepalive writes

	dead atomic.Bool

	mu         sync.Mutex // guards the fields below; see Session.mu for order
	err        error
	inflight   []inflightChunk
	shipped    map[uint64]*jobRun // job specs shipped on this connection
	pings      int                // pings awaiting a pong
	lastWrite  time.Time
	progressed bool // at least one chunk delivered this epoch
}

// write sends one frame under a fresh write deadline. Deadlines are per
// frame: a stalled peer surfaces within the frame timeout instead of
// blocking the session on a full TCP buffer.
func (e *epoch) write(env *envelope) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if err := e.conn.SetWriteDeadline(time.Now().Add(e.s.opts.frameTimeout())); err != nil {
		return err
	}
	if err := e.fw.write(env); err != nil {
		return err
	}
	if err := e.bw.Flush(); err != nil {
		return err
	}
	e.mu.Lock()
	e.lastWrite = time.Now()
	e.mu.Unlock()
	return nil
}

// refreshReadDeadlineLocked arms the progress timeout while a reply is owed
// (in-flight ranges or outstanding pings) and clears it otherwise. The
// clearing half is load-bearing: a deadline left armed on the shared
// connection would expire during an idle gap between batches, and the
// blocked reader would misattribute the next job's first frame — or a
// reassigned worker's — as a stall, killing a healthy connection. Callers
// hold e.mu, so the expectation check and the deadline write are atomic
// against concurrent dispatch.
func (e *epoch) refreshReadDeadlineLocked() {
	if len(e.inflight) > 0 || e.pings > 0 {
		e.conn.SetReadDeadline(time.Now().Add(e.s.opts.frameTimeout()))
	} else {
		e.conn.SetReadDeadline(time.Time{})
	}
}

// kill marks the epoch dead, closes the connection (unblocking both loops)
// and wakes the writer if it is parked on the session's work queue.
func (e *epoch) kill(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
	e.dead.Store(true)
	e.conn.Close()
	e.s.wake()
}

// runConn speaks one connection epoch: handshake, then writer/reader/
// keepalive until the connection dies or the session closes. It reports
// whether any chunk was delivered (progress resets the strike count) and
// whether the failure is permanent for this shard.
func (s *Session) runConn(sh *shard, conn net.Conn) (progressed, permanent bool, err error) {
	e := &epoch{
		s:       s,
		sh:      sh,
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		fr:      newFrameReader(bufio.NewReader(conn)),
		shipped: make(map[uint64]*jobRun),
	}
	e.fw = newFrameWriter(e.bw)
	if m := s.opts.Metrics; m != nil {
		e.fr.Instrument(m.FramesRead, m.BytesRead)
		e.fw.Instrument(m.FramesWritten, m.BytesWritten)
	}

	// Handshake under the frame timeout.
	if err := e.write(&envelope{Hello: &helloMsg{Version: protocolVersion}}); err != nil {
		return false, false, err
	}
	conn.SetReadDeadline(time.Now().Add(s.opts.frameTimeout()))
	env, err := e.fr.read()
	if err != nil {
		return false, false, err
	}
	if env.HelloAck == nil {
		return false, true, errors.New("protocol: expected hello ack")
	}
	if env.HelloAck.Err != "" {
		return false, true, fmt.Errorf("rejected: %s", env.HelloAck.Err)
	}
	// Idle until the first dispatch or ping arms the deadline again — the
	// session may sit between batches far longer than the frame timeout.
	conn.SetReadDeadline(time.Time{})

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); e.readerLoop() }()
	go func() { defer wg.Done(); e.keepaliveLoop(done) }()
	e.writerLoop()
	close(done)
	conn.Close() // writer exited: release the reader whatever it is blocked on
	wg.Wait()

	// Reassign everything this connection still owed. Requeue happens after
	// both loops exit, so no late delivery can race a re-execution.
	e.mu.Lock()
	inflight := e.inflight
	e.inflight = nil
	connErr := e.err
	prog := e.progressed
	e.mu.Unlock()
	for _, c := range inflight {
		s.requeue(c.j, c.idx)
	}
	if connErr == nil {
		connErr = errSessionClosed
		if !s.isClosed() {
			connErr = errors.New("connection closed")
		}
	}
	if s.isClosed() {
		return prog, false, nil
	}
	return prog, false, connErr
}

// writerAction is what the shard writer should do next.
type writerAction int

const (
	actExit writerAction = iota
	actChunk
	actSweep
)

// writerWait parks the shard until it has something to do: a claimable
// chunk, a finished job to release, epoch death or session close.
func (e *epoch) writerWait() (*jobRun, int, writerAction) {
	s := e.s
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed || e.dead.Load() {
			return nil, 0, actExit
		}
		if len(e.releasable()) > 0 {
			return nil, 0, actSweep
		}
		if j, idx, ok := s.tryClaimShardLocked(e.sh.index); ok {
			return j, idx, actChunk
		}
		s.cond.Wait()
	}
}

// releasable lists shipped job ids that have ended and have nothing left in
// flight on this connection — safe to release on the worker. Callers hold
// Session.mu (for the ended flags); e.mu nests inside.
func (e *epoch) releasable() []uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	var ids []uint64
	for id, j := range e.shipped {
		if !j.ended {
			continue
		}
		busy := false
		for _, c := range e.inflight {
			if c.j == j {
				busy = true
				break
			}
		}
		if !busy {
			ids = append(ids, id)
		}
	}
	return ids
}

// writerLoop claims chunks and dispatches them, shipping each job's spec the
// first time the connection sees it and releasing ids the session is done
// with. Ranges are pipelined up to pipelineDepth: the worker always has the
// next range queued while streaming the current one.
func (e *epoch) writerLoop() {
	for {
		// Respect the pipeline depth before claiming more work.
		e.mu.Lock()
		full := len(e.inflight) >= pipelineDepth
		e.mu.Unlock()
		if full {
			if !e.waitInflightBelow(pipelineDepth) {
				return
			}
		}
		j, idx, act := e.writerWait()
		switch act {
		case actExit:
			return
		case actSweep:
			e.s.mu.Lock()
			ids := e.releasable()
			e.s.mu.Unlock()
			for _, id := range ids {
				e.mu.Lock()
				delete(e.shipped, id)
				e.mu.Unlock()
				if err := e.write(&envelope{JobRelease: &jobReleaseMsg{ID: id}}); err != nil {
					e.kill(err)
					return
				}
			}
		case actChunk:
			first, count := j.bounds(idx)
			e.mu.Lock()
			_, sent := e.shipped[j.id]
			if !sent {
				e.shipped[j.id] = j
			}
			// Enter the FIFO before writing: if the write fails the chunk is
			// requeued by the epoch cleanup like any other in-flight range.
			c := inflightChunk{j: j, idx: idx, first: first, count: count}
			if e.s.opts.Metrics != nil {
				c.sentAt = time.Now()
			}
			e.inflight = append(e.inflight, c)
			e.refreshReadDeadlineLocked()
			e.mu.Unlock()
			if !sent {
				if err := e.write(&envelope{Job: &jobMsg{ID: j.id, Spec: j.spec}}); err != nil {
					e.kill(err)
					return
				}
			}
			if err := e.write(&envelope{Range: &rangeMsg{Job: j.id, First: first, Count: count}}); err != nil {
				e.kill(err)
				return
			}
		}
	}
}

// waitInflightBelow parks the writer until the in-flight FIFO drops under n,
// the epoch dies or the session closes. Reader pops broadcast the session
// cond (via deliver/failJob), so no extra signal is needed.
func (e *epoch) waitInflightBelow(n int) bool {
	s := e.s
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed || e.dead.Load() {
			return false
		}
		e.mu.Lock()
		below := len(e.inflight) < n
		e.mu.Unlock()
		if below {
			return true
		}
		s.cond.Wait()
	}
}

// keepaliveLoop pings through idle stretches so a silently dead connection
// (half-open partition, rebooted worker) is noticed between batches rather
// than at the next dispatch. Pings are only sent while nothing is in flight:
// during a range the result stream itself is the liveness signal.
func (e *epoch) keepaliveLoop(done chan struct{}) {
	interval := e.s.opts.keepalive()
	t := time.NewTicker(interval)
	defer t.Stop()
	var seq uint64
	for {
		select {
		case <-done:
			return
		case <-t.C:
		}
		e.mu.Lock()
		idle := len(e.inflight) == 0 && e.pings == 0 && time.Since(e.lastWrite) >= interval
		if idle {
			e.pings++
			e.refreshReadDeadlineLocked()
		}
		e.mu.Unlock()
		if !idle {
			continue
		}
		seq++
		if err := e.write(&envelope{Ping: &pingMsg{Seq: seq}}); err != nil {
			e.kill(err)
			return
		}
		if m := e.s.opts.Metrics; m != nil {
			m.Pings.Inc()
		}
	}
}

// readerLoop attributes the connection's inbound stream: results and range
// acknowledgements belong to the FIFO head (workers execute ranges in
// arrival order), job acks resolve through the shipped map, pongs settle
// keepalives. Any protocol breach kills the epoch — reassignment handles the
// rest.
func (e *epoch) readerLoop() {
	var cur []*sim.Result // results of the FIFO-head range
	for {
		env, err := e.fr.read()
		if err != nil {
			e.kill(err)
			return
		}
		switch {
		case env.Pong != nil:
			e.mu.Lock()
			if e.pings > 0 {
				e.pings--
			}
			e.refreshReadDeadlineLocked()
			e.mu.Unlock()

		case env.JobAck != nil:
			e.mu.Lock()
			j := e.shipped[env.JobAck.ID]
			e.refreshReadDeadlineLocked()
			e.mu.Unlock()
			if j == nil {
				e.kill(fmt.Errorf("protocol: ack for unknown job %d", env.JobAck.ID))
				return
			}
			if env.JobAck.Err != "" {
				// The worker validated the same descriptor every other worker
				// would see; the rejection is a property of the job, not the
				// connection, so the job fails and the session lives on.
				e.s.failJob(j, fmt.Errorf("cluster: shard %s: job rejected: %s", e.sh.addr, env.JobAck.Err))
			}

		case env.RunResult != nil:
			e.mu.Lock()
			if len(e.inflight) == 0 {
				e.mu.Unlock()
				e.kill(errors.New("protocol: result with no range in flight"))
				return
			}
			head := e.inflight[0]
			e.refreshReadDeadlineLocked()
			e.mu.Unlock()
			want := head.first + len(cur)
			if env.RunResult.Job != head.j.id || env.RunResult.Run != want ||
				env.RunResult.Res == nil || len(cur) >= head.count {
				e.kill(fmt.Errorf("protocol: unexpected result for job %d run %d (want job %d run %d of %d)",
					env.RunResult.Job, env.RunResult.Run, head.j.id, want, head.count))
				return
			}
			cur = append(cur, env.RunResult.Res)

		case env.RangeDone != nil:
			e.mu.Lock()
			if len(e.inflight) == 0 {
				e.mu.Unlock()
				e.kill(errors.New("protocol: range done with no range in flight"))
				return
			}
			head := e.inflight[0]
			if env.RangeDone.Job != head.j.id || env.RangeDone.First != head.first {
				e.mu.Unlock()
				e.kill(fmt.Errorf("protocol: range done for job %d first %d (want job %d first %d)",
					env.RangeDone.Job, env.RangeDone.First, head.j.id, head.first))
				return
			}
			e.inflight = e.inflight[1:]
			e.refreshReadDeadlineLocked()
			e.mu.Unlock()
			if env.RangeDone.Err != "" {
				// Deterministic simulation failure: retrying elsewhere cannot
				// help, but the connection is healthy.
				e.s.failJob(head.j, fmt.Errorf("cluster: shard %s: run range [%d,%d): %s",
					e.sh.addr, head.first, head.first+head.count, env.RangeDone.Err))
				e.s.wake()
				cur = nil
				continue
			}
			if len(cur) != head.count {
				e.kill(fmt.Errorf("protocol: range done for %d with %d/%d results",
					head.first, len(cur), head.count))
				return
			}
			e.mu.Lock()
			e.progressed = true
			e.mu.Unlock()
			if m := e.s.opts.Metrics; m != nil && !head.sentAt.IsZero() {
				m.DispatchLatency.Observe(time.Since(head.sentAt).Nanoseconds())
			}
			e.s.deliver(head.j, chunkResult{idx: head.idx, results: cur})
			cur = nil

		default:
			e.kill(errors.New("protocol: unexpected frame in session stream"))
			return
		}
	}
}
