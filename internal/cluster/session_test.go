package cluster

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smartexp3/internal/runner"
)

// startCountingWorker is startWorkers for one daemon, with an accept
// counter: session tests assert connection reuse (count stays 1) or
// reconnection (count grows) — the observable difference between a
// persistent session and the old dial-per-batch coordinator.
func startCountingWorker(t *testing.T, opts WorkerOptions) (string, *atomic.Int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var accepts atomic.Int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			go func() {
				defer conn.Close()
				serveConn(conn, opts)
			}()
		}
	}()
	return ln.Addr().String(), &accepts
}

// sessionJob builds one batch of the shared test scenario on its own RNG
// stream, so multi-batch tests exercise genuinely distinct work.
func sessionJob(t *testing.T, runs int, stream int64) JobSpec {
	t.Helper()
	job, err := NewJob(runner.Replications{Runs: runs, Seed: 11, Stream: []int64{stream}}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// inProcessWant fingerprints a job run entirely in-process — the reference
// every session path must reproduce bit for bit.
func inProcessWant(t *testing.T, job JobSpec) string {
	t.Helper()
	merge, want := fingerprint()
	if err := Run(job, nil, Options{LocalWorkers: 1}, merge); err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("in-process run produced no results")
	}
	return want.String()
}

// TestSessionReuseAcrossBatches is the tentpole's acceptance test: N batches
// back-to-back over one session produce byte-identical aggregates to
// in-process runs, over a single worker connection — no redial between
// batches.
func TestSessionReuseAcrossBatches(t *testing.T) {
	addr, accepts := startCountingWorker(t, WorkerOptions{Workers: 2})
	s := NewSession([]string{addr}, Options{ChunkSize: 2, Logf: t.Logf})
	defer s.Close()

	for batch := 0; batch < 3; batch++ {
		job := sessionJob(t, 12, int64(batch))
		want := inProcessWant(t, job)
		merge, got := fingerprint()
		if err := s.Run(job, merge); err != nil {
			t.Fatal(err)
		}
		if got.String() != want {
			t.Fatalf("batch %d over a warm session differs from the in-process aggregate", batch)
		}
	}
	if n := accepts.Load(); n != 1 {
		t.Fatalf("3 batches used %d connections, want 1 (persistent session)", n)
	}
}

// TestSessionPipelinesConcurrentJobs multiplexes three jobs over one
// two-worker session at once — the reproduce -parexp shape, including the
// per-job affinity hints — and checks each merged stream against its
// in-process twin.
func TestSessionPipelinesConcurrentJobs(t *testing.T) {
	addrs := startWorkers(t, 2, WorkerOptions{Workers: 1})
	s := NewSession(addrs, Options{ChunkSize: 2, Logf: t.Logf})
	defer s.Close()

	jobs := make([]JobSpec, 3)
	wants := make([]string, 3)
	for i := range jobs {
		jobs[i] = sessionJob(t, 10, int64(100+i))
		jobs[i].Affinity = i + 1
		wants[i] = inProcessWant(t, jobs[i])
	}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	gots := make([]string, 3)
	for i := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			merge, got := fingerprint()
			errs[i] = s.Run(jobs[i], merge)
			gots[i] = got.String()
		}()
	}
	wg.Wait()
	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if gots[i] != wants[i] {
			t.Fatalf("pipelined job %d differs from its in-process aggregate", i)
		}
	}
}

// killProxy forwards TCP connections to backend and can sever every active
// one on demand — a worker restarting between batches, as far as the
// session can tell.
type killProxy struct {
	addr string
	mu   sync.Mutex
	live []net.Conn
}

func newKillProxy(t *testing.T, backend string) *killProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	p := &killProxy{addr: ln.Addr().String()}
	go func() {
		for {
			up, err := ln.Accept()
			if err != nil {
				return
			}
			down, err := net.Dial("tcp", backend)
			if err != nil {
				up.Close()
				continue
			}
			p.mu.Lock()
			p.live = append(p.live, up, down)
			p.mu.Unlock()
			go func() {
				defer up.Close()
				defer down.Close()
				io.Copy(down, up)
			}()
			go func() {
				defer up.Close()
				defer down.Close()
				io.Copy(up, down)
			}()
		}
	}()
	return p
}

func (p *killProxy) killActive() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.live {
		c.Close()
	}
	p.live = nil
}

// TestSessionReconnectsAfterWorkerKilledBetweenJobs severs the worker
// connection between two batches: the session must redial and the second
// batch must still match its in-process aggregate — the mid-session
// reconnect half of the determinism contract.
func TestSessionReconnectsAfterWorkerKilledBetweenJobs(t *testing.T) {
	addr, accepts := startCountingWorker(t, WorkerOptions{Workers: 1})
	proxy := newKillProxy(t, addr)
	s := NewSession([]string{proxy.addr}, Options{ChunkSize: 2, Logf: t.Logf})
	defer s.Close()

	first := sessionJob(t, 8, 1)
	wantFirst := inProcessWant(t, first)
	merge, got := fingerprint()
	if err := s.Run(first, merge); err != nil {
		t.Fatal(err)
	}
	if got.String() != wantFirst {
		t.Fatal("first batch differs from the in-process aggregate")
	}

	proxy.killActive()

	second := sessionJob(t, 8, 2)
	wantSecond := inProcessWant(t, second)
	merge2, got2 := fingerprint()
	if err := s.Run(second, merge2); err != nil {
		t.Fatal(err)
	}
	if got2.String() != wantSecond {
		t.Fatal("batch after a mid-session worker kill differs from the in-process aggregate")
	}
	if n := accepts.Load(); n < 2 {
		t.Fatalf("worker saw %d connections, want ≥ 2 (the kill must have forced a reconnect)", n)
	}
}

// TestSessionSurvivesWorkerKilledDuringPipelinedJobs runs two jobs
// concurrently over a session whose first worker dies mid result stream
// (and keeps dying on every reconnect): undelivered ranges reassign across
// reconnects and to the healthy worker, and both merged streams stay
// byte-identical.
func TestSessionSurvivesWorkerKilledDuringPipelinedJobs(t *testing.T) {
	addrs := startWorkers(t, 2, WorkerOptions{Workers: 1})
	flaky := cutProxy(t, addrs[0], 16384)
	s := NewSession([]string{flaky, addrs[1]}, Options{ChunkSize: 2, Logf: t.Logf})
	defer s.Close()

	jobs := []JobSpec{sessionJob(t, 12, 7), sessionJob(t, 12, 8)}
	wants := []string{inProcessWant(t, jobs[0]), inProcessWant(t, jobs[1])}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	gots := make([]string, 2)
	for i := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			merge, got := fingerprint()
			errs[i] = s.Run(jobs[i], merge)
			gots[i] = got.String()
		}()
	}
	wg.Wait()
	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if gots[i] != wants[i] {
			t.Fatalf("job %d after mid-stream worker kills differs from its in-process aggregate", i)
		}
	}
}

// TestSessionIdleGapDoesNotTripFrameTimeout pins the deadline-clearing fix:
// with keepalives effectively disabled, a session idling longer than the
// frame timeout between batches must NOT time out — a deadline left armed
// from the previous batch would expire in the gap and the next batch's
// first frame would be misattributed as a stall, forcing a spurious
// reconnect (observable as a second accept).
func TestSessionIdleGapDoesNotTripFrameTimeout(t *testing.T) {
	addr, accepts := startCountingWorker(t, WorkerOptions{Workers: 1})
	s := NewSession([]string{addr}, Options{
		ChunkSize:    2,
		FrameTimeout: 250 * time.Millisecond,
		Keepalive:    time.Hour,
		Logf:         t.Logf,
	})
	defer s.Close()

	for batch := 0; batch < 2; batch++ {
		job := sessionJob(t, 6, int64(batch))
		want := inProcessWant(t, job)
		merge, got := fingerprint()
		if err := s.Run(job, merge); err != nil {
			t.Fatal(err)
		}
		if got.String() != want {
			t.Fatalf("batch %d differs from the in-process aggregate", batch)
		}
		if batch == 0 {
			time.Sleep(3 * 250 * time.Millisecond) // idle well past the frame timeout
		}
	}
	if n := accepts.Load(); n != 1 {
		t.Fatalf("idle gap forced %d connections, want 1 (stale deadline tripped?)", n)
	}
}

// TestSessionKeepalivePings pins the other half of the idle discipline: an
// idle session pings its workers (and reads the pongs under the frame
// timeout), so a silently dead connection is noticed between batches.
func TestSessionKeepalivePings(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var pings atomic.Int32
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fw, fr := newFrameWriter(conn), newFrameReader(conn)
		env, err := fr.read()
		if err != nil || env.Hello == nil {
			return
		}
		if err := fw.write(&envelope{HelloAck: &helloAckMsg{Version: protocolVersion}}); err != nil {
			return
		}
		for {
			env, err := fr.read()
			if err != nil {
				return
			}
			if env.Ping != nil {
				pings.Add(1)
				if err := fw.write(&envelope{Pong: &pongMsg{Seq: env.Ping.Seq}}); err != nil {
					return
				}
			}
		}
	}()

	s := NewSession([]string{ln.Addr().String()}, Options{
		FrameTimeout: 200 * time.Millisecond, // keepalive defaults to a quarter of this
		Logf:         t.Logf,
	})
	defer s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for pings.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if pings.Load() == 0 {
		t.Fatal("idle session never pinged its worker")
	}
}

// TestHandshakeRejectionClosesConnection pins the connection-lifecycle fix:
// when the post-dial handshake fails, the coordinator must close the socket
// instead of leaking it on the early-return path. The fake worker rejects
// the session and then watches for the EOF only a closed coordinator end
// produces.
func TestHandshakeRejectionClosesConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	sawClose := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			sawClose <- err
			return
		}
		defer conn.Close()
		fw, fr := newFrameWriter(conn), newFrameReader(conn)
		if _, err := fr.read(); err != nil {
			sawClose <- err
			return
		}
		if err := fw.write(&envelope{HelloAck: &helloAckMsg{Version: protocolVersion, Err: "no capacity"}}); err != nil {
			sawClose <- err
			return
		}
		// A leaked coordinator conn blocks this read until the deadline; the
		// fixed path closes promptly and it returns io.EOF.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		_, err = fr.read()
		sawClose <- err
	}()

	job := testJob(t, 6)
	merge, got := fingerprint()
	// The rejected shard retires; the batch completes in-process.
	if err := Run(job, []string{ln.Addr().String()}, Options{LocalWorkers: 1, Logf: t.Logf}, merge); err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 {
		t.Fatal("batch did not complete after the handshake rejection")
	}
	if err := <-sawClose; !errors.Is(err, io.EOF) {
		t.Fatalf("worker saw %v, want io.EOF from the coordinator closing the rejected conn", err)
	}
}

// TestSessionJobRejectionKeepsSessionAlive ships a job that cannot compile
// and then a healthy one over the same session: the rejection must fail
// only its own job — the connection (and the ranges pipelined behind the
// rejection) stay orderly, and no redial happens.
func TestSessionJobRejectionKeepsSessionAlive(t *testing.T) {
	addr, accepts := startCountingWorker(t, WorkerOptions{Workers: 1})
	s := NewSession([]string{addr}, Options{ChunkSize: 2, Logf: t.Logf})
	defer s.Close()

	bad := sessionJob(t, 6, 1)
	bad.Config.Slots = 0
	merge, _ := fingerprint()
	err := s.Run(bad, merge)
	if err == nil || !strings.Contains(err.Error(), "job rejected") {
		t.Fatalf("want a job rejection error, got %v", err)
	}

	good := sessionJob(t, 8, 2)
	want := inProcessWant(t, good)
	merge2, got := fingerprint()
	if err := s.Run(good, merge2); err != nil {
		t.Fatal(err)
	}
	if got.String() != want {
		t.Fatal("batch after a job rejection differs from the in-process aggregate")
	}
	if n := accepts.Load(); n != 1 {
		t.Fatalf("job rejection forced %d connections, want 1", n)
	}
}

// TestWorkerEngineCacheSurvivesReleaseCycles pins the worker-side engine
// cache against the suite's dominant pattern: batch after batch of the
// same config, each job released before the next arrives. The compiled
// engine must be the same object across every cycle — a regression here
// (e.g. phantom idle-list entries evicting the one hot engine) silently
// reintroduces a per-batch compile.
func TestWorkerEngineCacheSurvivesReleaseCycles(t *testing.T) {
	spec := testJob(t, 4)
	ws := &workerSession{
		workers: 1,
		jobs:    make(map[uint64]*workerJob),
		engines: make(map[string]*enginePool),
		jobKeys: make(map[uint64]string),
	}
	if msg := ws.addJob(1, spec); msg != "" {
		t.Fatal(msg)
	}
	ep := ws.jobs[1].exec.shared
	ws.releaseJob(1)
	for id := uint64(2); id <= 4*maxIdleEngines; id++ {
		if msg := ws.addJob(id, spec); msg != "" {
			t.Fatal(msg)
		}
		if ws.jobs[id].exec.shared != ep {
			t.Fatalf("cycle %d recompiled the engine instead of reusing the cache", id)
		}
		ws.releaseJob(id)
	}
	if len(ws.idle) != 1 {
		t.Fatalf("idle list holds %d entries for one engine, want 1", len(ws.idle))
	}
}

// TestSessionRunAfterCloseRunsInProcess pins the degenerate lifecycle: a
// closed session still completes work, in-process, with unchanged bits.
func TestSessionRunAfterCloseRunsInProcess(t *testing.T) {
	addr, _ := startCountingWorker(t, WorkerOptions{Workers: 1})
	s := NewSession([]string{addr}, Options{LocalWorkers: 1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	job := sessionJob(t, 6, 3)
	want := inProcessWant(t, job)
	merge, got := fingerprint()
	if err := s.Run(job, merge); err != nil {
		t.Fatal(err)
	}
	if got.String() != want {
		t.Fatal("run after close differs from the in-process aggregate")
	}
}
