// Package cluster shards Monte Carlo replication batches across processes
// and machines while preserving the runner's determinism contract: for a
// fixed root seed, the merged aggregate is byte-identical whether a batch
// runs in-process, on one shard, or on many — and whether or not a worker
// dies mid-batch.
//
// # Roles
//
// A worker (Serve, wrapped by cmd/shardd) is a daemon holding compiled
// sim.Engines + pooled Workspaces per coordinator session: each job
// descriptor (JobSpec) it receives is compiled once under a session-unique
// id, then seed ranges carrying that id execute against it, streaming
// per-run results back, until the coordinator releases the id or the
// connection closes. The coordinator side is the Session: it dials each
// worker once, keeps the gob stream alive across batches (keepalive pings
// under the frame-timeout discipline), multiplexes pipelined jobs over it,
// partitions each job's global run index space into contiguous ranges,
// reassigns ranges whose connection failed before delivering them
// (reconnecting to the worker where possible), and folds every result
// through a per-job single-goroutine ordered merge in ascending global run
// order. Run is the one-shot convenience: one session, one job.
//
// # Determinism contract
//
// Three properties make shard count (and worker failure) unobservable in
// the output:
//
//   - Seeds are a pure function of (base seed, stream ids, global run
//     index) via rngutil.ChildSeed — identical on every worker and in
//     process, regardless of which shard executes the run.
//   - sim.Engine.Run(ws, seed) is a pure function of (engine, seed), so
//     re-running a reassigned range on another worker reproduces the same
//     bits the dead worker would have produced.
//   - The coordinator merges each job strictly in ascending global run
//     order from a single goroutine, exactly like runner.MergeOrdered, so
//     non-commutative folds see runs in the serial order.
//
// Because every property is per job, pipelining changes nothing: jobs
// multiplexed over one session merge independently, and a mid-session
// reconnect (the worker died between or during jobs) only re-executes
// undelivered ranges — the same bits, wherever they run.
//
// # Transport
//
// The wire protocol is deliberately boring: length-prefixed frames of
// stdlib gob over stdlib TCP (see wire.go). There is no discovery and no
// TLS — shardd is meant to run inside a trusted cluster network behind the
// operator's own orchestration, and a dead or unreachable worker is handled
// by the two mechanisms that matter for correctness: range reassignment and
// bounded reconnects.
package cluster

import (
	"errors"
	"fmt"
	"strings"

	"smartexp3/internal/criteria"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/runner"
	"smartexp3/internal/sim"
)

// WireConfig is the serializable subset of sim.Config: everything except
// the process-local fields (delay Samplers, the Gamma schedule and the
// PolicyFactory are functions or interfaces and cannot cross the wire).
// Workers apply the same deterministic defaults sim.NewEngine applies, so a
// WireConfig names the same compiled engine in every process.
type WireConfig struct {
	Topology       netmodel.Topology
	Devices        []sim.DeviceSpec
	Slots          int
	SlotSeconds    float64
	GainScale      float64
	NoiseStdDev    float64
	EpsilonPercent float64
	DeviceGroups   [][]int
	Collect        sim.CollectOptions
	Criteria       *criteria.Profile
	NetworkCosts   []criteria.Costs
}

// Shardable reports whether cfg can be expressed as a WireConfig: it
// returns nil exactly when FromSimConfig would succeed. Configurations
// using custom delay samplers, a custom core schedule or a PolicyFactory
// are process-local and must run in-process (sim.Replicate).
func Shardable(cfg sim.Config) error {
	if cfg.WiFiDelay != nil || cfg.CellularDelay != nil {
		return errors.New("cluster: custom delay samplers cannot be serialized; workers apply the internal/dist defaults")
	}
	if cfg.Core.Gamma != nil {
		return errors.New("cluster: a custom core.Config cannot be serialized; workers apply core.DefaultConfig")
	}
	if cfg.PolicyFactory != nil {
		return errors.New("cluster: a PolicyFactory is process-local and cannot be serialized")
	}
	// gob encodes a zero-length slice field identically to an absent one, so
	// a worker would decode nil and sim's defaulting would diverge from the
	// in-process run (an explicitly empty DeviceGroups means "no groups",
	// nil means "one group of everyone"). Refuse the ambiguous forms rather
	// than silently changing the configuration in flight.
	if cfg.DeviceGroups != nil && len(cfg.DeviceGroups) == 0 {
		return errors.New("cluster: empty non-nil DeviceGroups does not survive serialization; use nil for the default grouping or list explicit groups")
	}
	if cfg.NetworkCosts != nil && len(cfg.NetworkCosts) == 0 {
		return errors.New("cluster: empty non-nil NetworkCosts does not survive serialization; use nil for per-technology defaults")
	}
	return nil
}

// FromSimConfig converts a shardable sim.Config into its wire form. The
// config's Seed is deliberately not carried: batch seeding belongs to the
// JobSpec (see NewJob).
func FromSimConfig(cfg sim.Config) (WireConfig, error) {
	if err := Shardable(cfg); err != nil {
		return WireConfig{}, err
	}
	return WireConfig{
		Topology:       cfg.Topology,
		Devices:        cfg.Devices,
		Slots:          cfg.Slots,
		SlotSeconds:    cfg.SlotSeconds,
		GainScale:      cfg.GainScale,
		NoiseStdDev:    cfg.NoiseStdDev,
		EpsilonPercent: cfg.EpsilonPercent,
		DeviceGroups:   cfg.DeviceGroups,
		Collect:        cfg.Collect,
		Criteria:       cfg.Criteria,
		NetworkCosts:   cfg.NetworkCosts,
	}, nil
}

// SimConfig converts the wire form back into a runnable configuration.
// Fields absent from the wire (samplers, core schedule) stay zero and take
// sim.NewEngine's deterministic defaults.
func (w WireConfig) SimConfig() sim.Config {
	return sim.Config{
		Topology:       w.Topology,
		Devices:        w.Devices,
		Slots:          w.Slots,
		SlotSeconds:    w.SlotSeconds,
		GainScale:      w.GainScale,
		NoiseStdDev:    w.NoiseStdDev,
		EpsilonPercent: w.EpsilonPercent,
		DeviceGroups:   w.DeviceGroups,
		Collect:        w.Collect,
		Criteria:       w.Criteria,
		NetworkCosts:   w.NetworkCosts,
	}
}

// JobSpec is the complete description of one replication batch: a wire
// config plus the runner.Replications seeding parameters. Any process
// holding a JobSpec derives exactly the same per-run seeds.
type JobSpec struct {
	Config WireConfig
	// Runs is the total number of replications across all shards.
	Runs int
	// Seed is the batch's base seed; per-run seeds derive from it exactly
	// as runner.Replications.SeedFor does.
	Seed int64
	// Stream namespaces the batch (see runner.Replications.Stream).
	Stream []int64
	// Affinity optionally biases placement when several jobs are pipelined
	// over one Session: chunks of a job with Affinity a (1-based) are
	// offered to shard (a-1) mod nShards first, and stolen by idle shards
	// otherwise. reproduce -parexp uses it to keep each experiment's
	// batches on "its" worker. It is a hint only — aggregates are
	// byte-identical for any placement — and 0 means no preference.
	Affinity int
}

// NewJob builds the wire descriptor for running batch over cfg on a
// cluster. It fails when cfg is not shardable (see Shardable).
func NewJob(batch runner.Replications, cfg sim.Config) (JobSpec, error) {
	wc, err := FromSimConfig(cfg)
	if err != nil {
		return JobSpec{}, err
	}
	if batch.Runs < 0 {
		return JobSpec{}, fmt.Errorf("cluster: negative run count %d", batch.Runs)
	}
	return JobSpec{Config: wc, Runs: batch.Runs, Seed: batch.Seed, Stream: batch.Stream}, nil
}

// batch reconstructs the runner batch the job describes. Workers is left to
// the executing side: parallelism is a local choice, seeds are not.
func (j JobSpec) batch() runner.Replications {
	return runner.Replications{Runs: j.Runs, Seed: j.Seed, Stream: j.Stream}
}

// ParseShards parses a comma-separated shardd address list (the CLIs'
// -shards / -cluster flag value): whitespace is trimmed, empty entries are
// dropped, and an empty or all-empty value yields nil (meaning in-process).
func ParseShards(flagValue string) []string {
	var out []string
	for _, addr := range strings.Split(flagValue, ",") {
		if addr = strings.TrimSpace(addr); addr != "" {
			out = append(out, addr)
		}
	}
	return out
}
