package cluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"smartexp3/internal/chaos"
	"smartexp3/internal/sim"
)

// TestRunSurvivesChaosProxiedWorker threads one of two workers through the
// seeded chaos proxy — latency, corrupted bytes (which the frame CRC must
// turn into connection errors, never silently different results) and
// mid-stream cuts — and asserts the merged aggregate stays byte-identical
// to the in-process run through all of it.
func TestRunSurvivesChaosProxiedWorker(t *testing.T) {
	job := testJob(t, 24)
	merge, want := fingerprint()
	if err := Run(job, nil, Options{LocalWorkers: 1}, merge); err != nil {
		t.Fatal(err)
	}

	addrs := startWorkers(t, 2, WorkerOptions{Workers: 1})
	proxy, err := chaos.NewProxy(addrs[0], chaos.Faults{
		Seed:   29,
		MinGap: 1024, MaxGap: 8192,
		Delay: 2, Corrupt: 2, Cut: 1,
		MaxDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	merge2, got := fingerprint()
	err = Run(job, []string{proxy.Addr(), addrs[1]},
		Options{ChunkSize: 2, LocalWorkers: 2, Logf: t.Logf}, merge2)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatal("aggregate through the chaos proxy differs from the in-process aggregate")
	}
	if proxy.Conns() == 0 {
		t.Fatal("the chaos proxy never saw a connection; the test proved nothing")
	}
}

// chaosFrameStream renders the canonical session prefix FuzzChaosFrame
// mangles — several frames on one persistent gob codec, long enough for
// tight schedules to land many faults — and the byte offset where each
// frame ends, so the harness knows which frames precede the first fault.
func chaosFrameStream(tb testing.TB) (stream []byte, frameEnds []int) {
	tb.Helper()
	res := &envelope{RunResult: &runResultMsg{Job: 1, Run: 3, Res: &sim.Result{
		Slots:    4,
		Distance: []float64{0.5, 0.25, 0.125, 0},
	}}}
	// bulk stands in for the fleet migration stream: its snapshot frames
	// ride this same codec at kilobyte scale, so the firewall must hold
	// when a fault lands deep inside one large frame, not just between
	// the small chatty ones.
	bulkDistance := make([]float64, 2048)
	for i := range bulkDistance {
		bulkDistance[i] = 1 / float64(i+1)
	}
	bulk := &envelope{RunResult: &runResultMsg{Job: 2, Run: 1, Res: &sim.Result{
		Slots:    len(bulkDistance),
		Distance: bulkDistance,
	}}}
	frames := []*envelope{
		{Hello: &helloMsg{Version: protocolVersion}},
		{HelloAck: &helloAckMsg{Version: protocolVersion}},
		{Range: &rangeMsg{Job: 1, First: 0, Count: 8}},
		res, res, bulk, res,
		{RangeDone: &rangeDoneMsg{Job: 1, First: 0}},
		{Ping: &pingMsg{Seq: 7}},
		{Pong: &pongMsg{Seq: 7}},
	}
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	for _, env := range frames {
		if err := fw.write(env); err != nil {
			tb.Fatal(err)
		}
		frameEnds = append(frameEnds, buf.Len())
	}
	return buf.Bytes(), frameEnds
}

// chaosFrameSeeds is the checked-in corpus for FuzzChaosFrame: chaos
// parameters from "no fault lands" through "a fault on every byte".
func chaosFrameSeeds() [][5]uint64 {
	return [][5]uint64{
		// seed, minGap, maxGap, corrupt, cut
		{7, 64, 512, 3, 1},
		{1, 0, 0, 1, 0},       // default gaps, corruption only
		{2, 16, 64, 0, 1},     // early cuts
		{3, 1, 1, 1, 1},       // a fault on every byte past the first
		{4, 4096, 8192, 7, 7}, // gaps wider than the stream: clean decode
	}
}

// FuzzChaosFrame feeds chaos-mangled frame streams to the frame reader.
// The invariant is the CRC firewall's contract: every frame wholly before
// the first fault decodes exactly as it did clean, the frame containing
// the fault surfaces an error (corruption must never gob-decode into
// different values), and the stream stays dead after it.
func FuzzChaosFrame(f *testing.F) {
	for _, s := range chaosFrameSeeds() {
		f.Add(int64(s[0]), s[1], s[2], s[3], s[4])
	}
	clean, frameEnds := chaosFrameStream(f)
	want := make([]*envelope, 0, len(frameEnds))
	ref := newFrameReader(bytes.NewReader(clean))
	for range frameEnds {
		env, err := ref.read()
		if err != nil {
			f.Fatal(err)
		}
		want = append(want, env)
	}

	f.Fuzz(func(t *testing.T, seed int64, minGap, maxGap, corrupt, cut uint64) {
		faults := chaos.Faults{
			Seed:   seed,
			MinGap: int(minGap % 4096), MaxGap: int(maxGap % 8192),
			Corrupt: int(corrupt % 8), Cut: int(cut % 8),
		}
		mangled, first := chaos.Mangle(clean, faults)
		intact := 0
		for _, end := range frameEnds {
			if end > first {
				break
			}
			intact++
		}
		fr := newFrameReader(bytes.NewReader(mangled))
		for i := 0; i < intact; i++ {
			got, err := fr.read()
			if err != nil {
				t.Fatalf("frame %d ends before the first fault at %d but failed: %v", i, first, err)
			}
			if !reflect.DeepEqual(got, want[i]) {
				t.Fatalf("frame %d ends before the first fault at %d but decoded differently", i, first)
			}
		}
		// Everything after the last intact frame must error — at the fault
		// (CRC mismatch, truncation) or at end of stream — and the reader
		// must stay latched rather than resynchronize on garbage.
		for i := 0; i < 32; i++ {
			if _, err := fr.read(); err == nil {
				t.Fatalf("read %d past the first fault at %d succeeded", intact+i, first)
			}
		}
	})
}

// TestWriteFuzzChaosFrameCorpus regenerates the checked-in seed corpus
// under testdata/fuzz/FuzzChaosFrame when UPDATE_FUZZ_CORPUS=1.
func TestWriteFuzzChaosFrameCorpus(t *testing.T) {
	if os.Getenv("UPDATE_FUZZ_CORPUS") == "" {
		t.Skip("set UPDATE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzChaosFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range chaosFrameSeeds() {
		body := fmt.Sprintf("go test fuzz v1\nint64(%d)\nuint64(%d)\nuint64(%d)\nuint64(%d)\nuint64(%d)\n",
			int64(s[0]), s[1], s[2], s[3], s[4])
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
