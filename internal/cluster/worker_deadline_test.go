package cluster

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

// TestWorkerWriteDeadlineUnsticksStalledCoordinator pins the PR-4 follow-on:
// a coordinator that stops draining its connection without closing it (died
// under SIGSTOP, half-open partition, wedged reader) must not park the
// worker's serving goroutine forever on a full send buffer. The stalled
// reader is played by a synchronous pipe: the test consumes the handshake,
// the job ack and the first result frame, then stops reading entirely, so
// the worker's next result write can only complete via its write deadline.
func TestWorkerWriteDeadlineUnsticksStalledCoordinator(t *testing.T) {
	coord, worker := net.Pipe()
	defer coord.Close()

	errCh := make(chan error, 1)
	go func() {
		defer worker.Close()
		errCh <- serveConn(worker, WorkerOptions{WriteTimeout: 200 * time.Millisecond})
	}()

	fw := newFrameWriter(coord)
	fr := newFrameReader(coord)
	if err := fw.write(&envelope{Hello: &helloMsg{Version: protocolVersion}}); err != nil {
		t.Fatal(err)
	}
	if env, err := fr.read(); err != nil || env.HelloAck == nil || env.HelloAck.Err != "" {
		t.Fatalf("handshake failed: %+v, %v", env, err)
	}
	if err := fw.write(&envelope{Job: &jobMsg{ID: 1, Spec: testJob(t, 8)}}); err != nil {
		t.Fatal(err)
	}
	if env, err := fr.read(); err != nil || env.JobAck == nil || env.JobAck.Err != "" {
		t.Fatalf("job rejected: %+v, %v", env, err)
	}
	if err := fw.write(&envelope{Range: &rangeMsg{Job: 1, First: 0, Count: 8}}); err != nil {
		t.Fatal(err)
	}
	// Prove the range is executing, then stall: no more reads, connection
	// deliberately left open.
	if env, err := fr.read(); err != nil || env.RunResult == nil {
		t.Fatalf("want the first streamed result, got %+v, %v", env, err)
	}

	start := time.Now()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("serveConn returned nil against a stalled coordinator")
		}
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("want a deadline error, got %v", err)
		}
		// Generous bound: the deadline is 200ms, anything near the test
		// timeout would mean the deadline never armed.
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("worker took %v to notice the stalled coordinator", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker goroutine is still parked on the stalled connection")
	}
}

// TestWorkerWriteTimeoutDefaultsAndDisable pins the option semantics: zero
// means the 2-minute default, negative disables.
func TestWorkerWriteTimeoutDefaultsAndDisable(t *testing.T) {
	if got := (WorkerOptions{}).writeTimeout(); got != 2*time.Minute {
		t.Fatalf("zero WriteTimeout resolves to %v, want 2m", got)
	}
	if got := (WorkerOptions{WriteTimeout: -1}).writeTimeout(); got != 0 {
		t.Fatalf("negative WriteTimeout resolves to %v, want disabled", got)
	}
	if got := (WorkerOptions{WriteTimeout: time.Second}).writeTimeout(); got != time.Second {
		t.Fatalf("explicit WriteTimeout resolves to %v", got)
	}
}
