package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"smartexp3/internal/obsv"
	"smartexp3/internal/sim"
)

// protocolVersion is bumped whenever the frame layout or message set changes
// incompatibly. Coordinator and worker refuse to pair across versions, so a
// stale shardd binary fails loudly at handshake instead of corrupting a
// batch. Version 2 introduced persistent sessions: job multiplexing by id,
// keepalive ping/pong, and job release. Version 3 added the per-frame
// CRC-32C to the frame header: gob detects most stream corruption but not
// all of it (a flipped byte inside a float payload can decode cleanly to a
// different value), and the chaos layer's determinism guarantee — a faulted
// session decides exactly like a clean one — needs corruption to surface as
// a connection error every time, never as silently different numbers.
const protocolVersion = 3

// maxFrameBytes bounds a single frame. A per-run Result frame is dominated
// by the optional per-slot series (Distance, GroupDistance, Selections,
// Bitrates), which stay well under this for any configuration the
// experiments run; the cap exists so a corrupt or hostile length prefix
// cannot make a peer allocate unbounded memory.
const maxFrameBytes = 64 << 20

// envelope is the one-of union every frame carries: exactly one field is
// non-nil. gob encodes nil pointers as absent, so the frame overhead of the
// union is negligible, and a single stream can carry every message type
// without out-of-band tagging.
type envelope struct {
	Hello      *helloMsg
	HelloAck   *helloAckMsg
	Job        *jobMsg
	JobAck     *jobAckMsg
	Range      *rangeMsg
	RunResult  *runResultMsg
	RangeDone  *rangeDoneMsg
	Ping       *pingMsg
	Pong       *pongMsg
	JobRelease *jobReleaseMsg
}

// helloMsg opens a coordinator → worker session. One session carries any
// number of jobs over its lifetime.
type helloMsg struct {
	Version int
}

// helloAckMsg accepts or rejects the session.
type helloAckMsg struct {
	Version int
	Err     string
}

// jobMsg ships one batch descriptor under a session-unique id: the worker
// compiles it into a sim.Engine once and serves every subsequent range
// carrying the same id against it. A session may hold several compiled jobs
// at once — that is what lets pipelined batches interleave on one stream.
type jobMsg struct {
	ID   uint64
	Spec JobSpec
}

// jobAckMsg reports whether the descriptor compiled. A non-empty Err is a
// property of the job, not the worker (every worker validates the same
// descriptor), so the coordinator fails the job without retiring the
// session.
type jobAckMsg struct {
	ID  uint64
	Err string
}

// rangeMsg assigns the global run indices [First, First+Count) of job Job
// to the worker. Workers execute ranges strictly in arrival order, which is
// what lets the coordinator attribute the result stream to its in-flight
// ranges without per-result routing state.
type rangeMsg struct {
	Job   uint64
	First int
	Count int
}

// runResultMsg streams one replication's result back. Workers emit results
// in ascending run order within a range. sim.Result is plain exported data
// (no interfaces, no functions), so it crosses the wire as-is; gob encodes
// float64 bits exactly, which is what keeps remote aggregates byte-identical
// to in-process ones.
type runResultMsg struct {
	Job uint64
	Run int
	Res *sim.Result
}

// rangeDoneMsg acknowledges a completed range. A non-empty Err means the
// simulation itself failed — a deterministic job error the coordinator must
// surface, not a transport failure it may retry.
type rangeDoneMsg struct {
	Job   uint64
	First int
	Err   string
}

// pingMsg is the coordinator's keepalive probe, sent only while a session is
// idle (no range in flight): it elicits a pong under the frame timeout, so a
// silently dead connection is discovered between batches instead of at the
// next dispatch.
type pingMsg struct {
	Seq uint64
}

// pongMsg answers a ping.
type pongMsg struct {
	Seq uint64
}

// jobReleaseMsg retires a job id the coordinator has finished with, freeing
// the worker's compiled engine and pooled workspaces for it. There is no
// reply; ids are session-unique and never reused.
type jobReleaseMsg struct {
	ID uint64
}

// frameHeaderSize is the fixed per-frame header: a 4-byte big-endian payload
// length followed by the payload's CRC-32C. The checksum is the transport's
// corruption firewall: a frame whose bytes were damaged in flight fails the
// CRC before the gob decoder ever sees them, so corruption is always a
// (retryable) connection error and never a silently different value.
const frameHeaderSize = 8

// castagnoli is the CRC-32C table, computed once; crc32.Checksum with a
// prepared table is allocation-free and hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// retainFrameBytes is the high-water mark above which the persistent codec
// buffers are released after an outsized frame instead of staying pinned
// for the connection's (potentially very long) lifetime. One multi-MB
// result frame early in a session must not hold that memory through
// hundreds of small batches on every connection end.
const retainFrameBytes = 1 << 20

// FrameWriter emits length-prefixed frames through one persistent gob
// encoder. Codec state is per connection, not per frame: gob sends each
// type descriptor once per stream, so a session's thousandth result frame
// carries only values — re-encoding descriptors per frame used to dominate
// the per-batch dispatch cost (gob compileDec/sendActualType in profiles).
// A reconnect builds a fresh writer on both sides, so reassigned ranges
// still replay cleanly with no shared state to reconstruct.
//
// The codec is message-type agnostic (Encode takes any value gob accepts),
// so other framed-gob daemons — internal/serve's decision service — reuse
// it with their own envelope types instead of reimplementing the framing
// and its length/trailing-bytes hygiene.
//
// Not safe for concurrent use; callers serialize writes per connection.
type FrameWriter struct {
	w      io.Writer
	buf    frameBuf // one frame under construction: 4-byte prefix + gob bytes
	enc    *gob.Encoder
	frames *obsv.Counter // optional; see Instrument
	bytes  *obsv.Counter
}

// Instrument counts every successfully written frame and its wire bytes
// (header included) on the given counters. Call it before the writer
// carries traffic; both counters must be non-nil together.
func (fw *FrameWriter) Instrument(frames, bytes *obsv.Counter) {
	fw.frames, fw.bytes = frames, bytes
}

// frameBuf is the io.Writer the gob encoder targets: it appends into a
// reusable slice. An indirection rather than a bytes.Buffer so the backing
// array can be dropped after an outsized frame without disturbing the
// encoder's stream state, and so FrameWriter exposes no public Write.
type frameBuf struct{ b []byte }

func (fb *frameBuf) Write(p []byte) (int, error) {
	fb.b = append(fb.b, p...)
	return len(p), nil
}

// NewFrameWriter returns a frame writer whose codec state lives for the
// whole connection. Pair it with a NewFrameReader on the receiving side.
func NewFrameWriter(w io.Writer) *FrameWriter {
	fw := &FrameWriter{w: w}
	fw.enc = gob.NewEncoder(&fw.buf)
	return fw
}

// newFrameWriter is the package-internal spelling.
func newFrameWriter(w io.Writer) *FrameWriter { return NewFrameWriter(w) }

// Encode writes msg as one frame: a 4-byte big-endian length prefix, the
// payload's CRC-32C, and the gob bytes of exactly one Encode call (which may
// bundle type descriptors ahead of the value — the matching Decode consumes
// them all).
func (fw *FrameWriter) Encode(msg any) error {
	fw.buf.b = append(fw.buf.b[:0], 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	if err := fw.enc.Encode(msg); err != nil {
		return fmt.Errorf("cluster: encode frame: %w", err)
	}
	b := fw.buf.b
	payload := len(b) - frameHeaderSize
	if payload > maxFrameBytes {
		return fmt.Errorf("cluster: frame of %d bytes exceeds the %d byte cap", payload, maxFrameBytes)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(payload))
	binary.BigEndian.PutUint32(b[4:8], crc32.Checksum(b[frameHeaderSize:], castagnoli))
	if cap(fw.buf.b) > retainFrameBytes {
		fw.buf.b = nil // release the outsized backing array after this frame
	}
	if _, err := fw.w.Write(b); err != nil {
		return fmt.Errorf("cluster: write frame: %w", err)
	}
	if fw.frames != nil {
		fw.frames.Inc()
		fw.bytes.Add(uint64(len(b)))
	}
	return nil
}

// write encodes one cluster envelope (the package's own protocol).
//
//repolint:ignore wiredeadline transport-agnostic codec: every caller arms a per-frame deadline (epoch.write, the worker flush closure, serve writeFrame), pinned by the coordinator/worker deadline regression tests
func (fw *FrameWriter) write(env *envelope) error { return fw.Encode(env) }

// FrameReader reads length-prefixed, checksummed frames through one
// persistent gob decoder (the receive half of FrameWriter's contract). The
// length prefix is read and bounds-checked before any allocation, preserving
// the maxFrameBytes guarantee; the payload's CRC-32C is verified before the
// decoder sees a byte; the payload buffer is reused across frames (gob
// copies decoded values out, nothing aliases it).
//
// Errors latch: a framed gob stream has no resynchronization point, so once
// any Decode fails — framing, checksum or gob — every later Decode returns
// the same error rather than risking misattributed frames.
//
// Not safe for concurrent use; one goroutine reads per connection.
type FrameReader struct {
	r       io.Reader
	payload []byte
	cur     bytes.Reader
	dec     *gob.Decoder
	err     error         // first failure; the stream is dead after one
	frames  *obsv.Counter // optional; see Instrument
	nbytes  *obsv.Counter
}

// Instrument counts every fully read frame and its wire bytes (header
// included) on the given counters. Call it before the reader carries
// traffic; both counters must be non-nil together.
func (fr *FrameReader) Instrument(frames, bytes *obsv.Counter) {
	fr.frames, fr.nbytes = frames, bytes
}

// NewFrameReader returns a frame reader for one connection's inbound
// stream. See NewFrameWriter.
func NewFrameReader(r io.Reader) *FrameReader {
	fr := &FrameReader{r: r}
	// bytes.Reader implements io.ByteReader, so gob adds no buffering of
	// its own and each Decode consumes exactly the bytes we hand it.
	fr.dec = gob.NewDecoder(&fr.cur)
	return fr
}

// newFrameReader is the package-internal spelling.
func newFrameReader(r io.Reader) *FrameReader { return NewFrameReader(r) }

// Decode reads one frame and decodes it into msg (a pointer, as for
// gob.Decoder.Decode). A clean connection close between frames surfaces as
// io.EOF exactly. Any failure is latched: the stream is unusable afterwards.
func (fr *FrameReader) Decode(msg any) error {
	if fr.err != nil {
		return fr.err
	}
	if err := fr.decode(msg); err != nil {
		fr.err = err
		return err
	}
	return nil
}

func (fr *FrameReader) decode(msg any) error {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return err // io.EOF signals a clean close between frames
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	sum := binary.BigEndian.Uint32(hdr[4:8])
	if n == 0 || n > maxFrameBytes {
		return fmt.Errorf("cluster: frame length %d outside (0, %d]", n, maxFrameBytes)
	}
	if uint32(cap(fr.payload)) < n {
		fr.payload = make([]byte, n)
	}
	fr.payload = fr.payload[:n]
	if _, err := io.ReadFull(fr.r, fr.payload); err != nil {
		return fmt.Errorf("cluster: read frame body: %w", err)
	}
	if fr.frames != nil {
		fr.frames.Inc()
		fr.nbytes.Add(uint64(frameHeaderSize) + uint64(n))
	}
	if got := crc32.Checksum(fr.payload, castagnoli); got != sum {
		return fmt.Errorf("cluster: frame checksum %08x, want %08x (corrupt stream)", got, sum)
	}
	fr.cur.Reset(fr.payload)
	if cap(fr.payload) > retainFrameBytes {
		fr.payload = nil // release the outsized backing array after this frame
	}
	if err := fr.dec.Decode(msg); err != nil {
		return fmt.Errorf("cluster: decode frame: %w", err)
	}
	if fr.cur.Len() != 0 {
		return fmt.Errorf("cluster: frame has %d trailing bytes after its message", fr.cur.Len())
	}
	if fr.payload == nil {
		fr.cur.Reset(nil) // drop the last reference to the outsized array now
	}
	return nil
}

// read reads and decodes one cluster envelope (the package's own protocol).
func (fr *FrameReader) read() (*envelope, error) {
	var env envelope
	if err := fr.Decode(&env); err != nil {
		return nil, err
	}
	return &env, nil
}
