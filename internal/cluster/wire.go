package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"smartexp3/internal/sim"
)

// protocolVersion is bumped whenever the frame layout or message set changes
// incompatibly. Coordinator and worker refuse to pair across versions, so a
// stale shardd binary fails loudly at handshake instead of corrupting a
// batch.
const protocolVersion = 1

// maxFrameBytes bounds a single frame. A per-run Result frame is dominated
// by the optional per-slot series (Distance, GroupDistance, Selections,
// Bitrates), which stay well under this for any configuration the
// experiments run; the cap exists so a corrupt or hostile length prefix
// cannot make a peer allocate unbounded memory.
const maxFrameBytes = 64 << 20

// envelope is the one-of union every frame carries: exactly one field is
// non-nil. gob encodes nil pointers as absent, so the frame overhead of the
// union is negligible, and a single stream can carry every message type
// without out-of-band tagging.
type envelope struct {
	Hello     *helloMsg
	HelloAck  *helloAckMsg
	Job       *jobMsg
	JobAck    *jobAckMsg
	Range     *rangeMsg
	RunResult *runResultMsg
	RangeDone *rangeDoneMsg
}

// helloMsg opens a coordinator → worker session.
type helloMsg struct {
	Version int
}

// helloAckMsg accepts or rejects the session.
type helloAckMsg struct {
	Version int
	Err     string
}

// jobMsg ships the batch descriptor: the worker compiles it into a
// sim.Engine once and serves every subsequent range against it.
type jobMsg struct {
	Spec JobSpec
}

// jobAckMsg reports whether the descriptor compiled.
type jobAckMsg struct {
	Err string
}

// rangeMsg assigns the global run indices [First, First+Count) to the
// worker.
type rangeMsg struct {
	First int
	Count int
}

// runResultMsg streams one replication's result back. Workers emit results
// in ascending run order within a range. sim.Result is plain exported data
// (no interfaces, no functions), so it crosses the wire as-is; gob encodes
// float64 bits exactly, which is what keeps remote aggregates byte-identical
// to in-process ones.
type runResultMsg struct {
	Run int
	Res *sim.Result
}

// rangeDoneMsg acknowledges a completed range. A non-empty Err means the
// simulation itself failed — a deterministic job error the coordinator must
// surface, not a transport failure it may retry.
type rangeDoneMsg struct {
	First int
	Err   string
}

// writeFrame gob-encodes env and writes it as one length-prefixed frame.
// Each frame is encoded by a fresh encoder, so frames are self-contained:
// a reassigned range replays cleanly on a new connection with no shared
// encoder state to reconstruct.
func writeFrame(w io.Writer, env *envelope) error {
	var buf bytes.Buffer
	buf.Write(make([]byte, 4)) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return fmt.Errorf("cluster: encode frame: %w", err)
	}
	b := buf.Bytes()
	payload := len(b) - 4
	if payload > maxFrameBytes {
		return fmt.Errorf("cluster: frame of %d bytes exceeds the %d byte cap", payload, maxFrameBytes)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(payload))
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("cluster: write frame: %w", err)
	}
	return nil
}

// readFrame reads one length-prefixed frame and decodes its envelope.
func readFrame(r io.Reader) (*envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF signals a clean close between frames
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameBytes {
		return nil, fmt.Errorf("cluster: frame length %d outside (0, %d]", n, maxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("cluster: read frame body: %w", err)
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&env); err != nil {
		return nil, fmt.Errorf("cluster: decode frame: %w", err)
	}
	return &env, nil
}
