package cluster

import "smartexp3/internal/obsv"

// SessionMetrics are the coordinator side's counters, shared by every
// worker connection a Session holds. All records sit on control paths
// (dial, dispatch, requeue, result delivery) — never inside a replication
// — so instrumentation cannot perturb the determinism contract.
type SessionMetrics struct {
	Jobs             *obsv.Counter
	JobsFailed       *obsv.Counter
	Chunks           *obsv.Counter
	ChunksReassigned *obsv.Counter
	Reconnects       *obsv.Counter
	Pings            *obsv.Counter
	FramesRead       *obsv.Counter
	FramesWritten    *obsv.Counter
	BytesRead        *obsv.Counter
	BytesWritten     *obsv.Counter
	// DispatchLatency is the send-to-RangeDone round trip of a chunk, in
	// nanoseconds: queueing at the worker plus the chunk's whole execution,
	// the figure per-batch dispatch overhead is judged by.
	DispatchLatency *obsv.Histogram
}

// NewSessionMetrics registers the coordinator counter set on reg.
func NewSessionMetrics(reg *obsv.Registry) *SessionMetrics {
	return &SessionMetrics{
		Jobs:             reg.Counter("cluster_session_jobs_total", "Jobs registered on the session"),
		JobsFailed:       reg.Counter("cluster_session_jobs_failed_total", "Jobs that ended in an error"),
		Chunks:           reg.Counter("cluster_session_chunks_total", "Seed-range chunks completed (remote and local rescue)"),
		ChunksReassigned: reg.Counter("cluster_session_chunks_reassigned_total", "Chunks requeued after a worker failure"),
		Reconnects:       reg.Counter("cluster_session_reconnects_total", "Worker connections re-established after the first"),
		Pings:            reg.Counter("cluster_session_pings_total", "Keepalive pings sent to idle workers"),
		FramesRead:       reg.Counter("cluster_session_frames_read_total", "Frames decoded from workers"),
		FramesWritten:    reg.Counter("cluster_session_frames_written_total", "Frames encoded to workers"),
		BytesRead:        reg.Counter("cluster_session_bytes_read_total", "Wire bytes read from workers"),
		BytesWritten:     reg.Counter("cluster_session_bytes_written_total", "Wire bytes written to workers"),
		DispatchLatency:  reg.Histogram("cluster_session_dispatch_ns", "Chunk send-to-done round trip in nanoseconds"),
	}
}

// WorkerMetrics are the worker daemon's counters, shared by every session
// a shardd process serves.
type WorkerMetrics struct {
	Sessions      *obsv.Counter
	Jobs          *obsv.Counter
	JobsRejected  *obsv.Counter
	Ranges        *obsv.Counter
	Runs          *obsv.Counter
	Pongs         *obsv.Counter
	FramesRead    *obsv.Counter
	FramesWritten *obsv.Counter
	BytesRead     *obsv.Counter
	BytesWritten  *obsv.Counter
	// RangeLatency is one range's execution time in nanoseconds (compile
	// excluded; engines are cached per job).
	RangeLatency *obsv.Histogram
}

// NewWorkerMetrics registers the worker counter set on reg.
func NewWorkerMetrics(reg *obsv.Registry) *WorkerMetrics {
	return &WorkerMetrics{
		Sessions:      reg.Counter("cluster_worker_sessions_total", "Coordinator sessions accepted"),
		Jobs:          reg.Counter("cluster_worker_jobs_total", "Job descriptors compiled"),
		JobsRejected:  reg.Counter("cluster_worker_jobs_rejected_total", "Job descriptors that failed to compile"),
		Ranges:        reg.Counter("cluster_worker_ranges_total", "Seed ranges executed"),
		Runs:          reg.Counter("cluster_worker_runs_total", "Replications executed"),
		Pongs:         reg.Counter("cluster_worker_pongs_total", "Keepalive pings answered"),
		FramesRead:    reg.Counter("cluster_worker_frames_read_total", "Frames decoded from coordinators"),
		FramesWritten: reg.Counter("cluster_worker_frames_written_total", "Frames encoded to coordinators"),
		BytesRead:     reg.Counter("cluster_worker_bytes_read_total", "Wire bytes read from coordinators"),
		BytesWritten:  reg.Counter("cluster_worker_bytes_written_total", "Wire bytes written to coordinators"),
		RangeLatency:  reg.Histogram("cluster_worker_range_ns", "Range execution time in nanoseconds"),
	}
}
