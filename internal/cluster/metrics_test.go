package cluster

import (
	"encoding/json"
	"strings"
	"testing"

	"smartexp3/internal/obsv"
)

func clusterVarz(t *testing.T, reg *obsv.Registry) map[string]any {
	t.Helper()
	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if err := obsv.CheckPrometheusText(strings.NewReader(prom.String())); err != nil {
		t.Fatalf("malformed metrics: %v\n%s", err, prom.String())
	}
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]any)
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSessionAndWorkerMetrics runs a real loopback session with both ends
// instrumented and checks the counters agree with the work done — and that
// the instrumented aggregate still matches the in-process reference, the
// observation-only contract in action.
func TestSessionAndWorkerMetrics(t *testing.T) {
	reg := obsv.NewRegistry()
	wm := NewWorkerMetrics(reg)
	sm := NewSessionMetrics(reg)

	addr, _ := startCountingWorker(t, WorkerOptions{Workers: 2, Metrics: wm})
	s := NewSession([]string{addr}, Options{ChunkSize: 3, Logf: t.Logf, Metrics: sm})
	defer s.Close()

	const runs = 12
	job := sessionJob(t, runs, 1)
	want := inProcessWant(t, job)
	merge, got := fingerprint()
	if err := s.Run(job, merge); err != nil {
		t.Fatal(err)
	}
	if got.String() != want {
		t.Fatal("instrumented session differs from the in-process aggregate")
	}

	m := clusterVarz(t, reg)
	nChunks := (runs + 2) / 3
	if v := m["cluster_session_jobs_total"].(float64); v != 1 {
		t.Errorf("session jobs = %v, want 1", v)
	}
	if v := m["cluster_session_chunks_total"].(float64); v != float64(nChunks) {
		t.Errorf("session chunks = %v, want %d", v, nChunks)
	}
	if v := m["cluster_session_jobs_failed_total"].(float64); v != 0 {
		t.Errorf("session failed jobs = %v, want 0", v)
	}
	if v := m["cluster_worker_sessions_total"].(float64); v != 1 {
		t.Errorf("worker sessions = %v, want 1", v)
	}
	if v := m["cluster_worker_jobs_total"].(float64); v != 1 {
		t.Errorf("worker jobs = %v, want 1", v)
	}
	if v := m["cluster_worker_runs_total"].(float64); v != runs {
		t.Errorf("worker runs = %v, want %d", v, runs)
	}
	if v := m["cluster_worker_ranges_total"].(float64); v != float64(nChunks) {
		t.Errorf("worker ranges = %v, want %d", v, nChunks)
	}
	// Both directions of the wire saw at least the handshake, the job and
	// every range. (No exact cross-end equality: the job-release frame may
	// still be in flight when this scrape runs.)
	floor := float64(2 + nChunks)
	for _, name := range []string{
		"cluster_session_frames_written_total", "cluster_worker_frames_read_total",
		"cluster_session_frames_read_total", "cluster_worker_frames_written_total",
	} {
		if v := m[name].(float64); v < floor {
			t.Errorf("%s = %v, want >= %v", name, v, floor)
		}
	}
	if m["cluster_session_bytes_read_total"].(float64) <= 0 || m["cluster_worker_bytes_written_total"].(float64) <= 0 {
		t.Error("byte counters empty")
	}
	disp := m["cluster_session_dispatch_ns"].(map[string]any)
	if disp["count"].(float64) != float64(nChunks) {
		t.Errorf("dispatch latency samples = %v, want %d", disp["count"], nChunks)
	}
	rng := m["cluster_worker_range_ns"].(map[string]any)
	if rng["count"].(float64) != float64(nChunks) {
		t.Errorf("range latency samples = %v, want %d", rng["count"], nChunks)
	}
}
