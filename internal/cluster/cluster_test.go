package cluster

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"smartexp3/internal/core"
	"smartexp3/internal/criteria"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/runner"
	"smartexp3/internal/sim"
)

// testConfig is a small but fully featured scenario: churn, mobility and
// per-slot series, so the fingerprint covers every Result field class.
func testConfig() sim.Config {
	return sim.Config{
		Topology: netmodel.FoodCourt(),
		Devices: []sim.DeviceSpec{
			{Algorithm: core.AlgSmartEXP3, Trajectory: []sim.AreaStay{
				{FromSlot: 0, Area: netmodel.AreaFoodCourt},
				{FromSlot: 30, Area: netmodel.AreaStudyArea},
			}},
			{Algorithm: core.AlgGreedy, Join: 5, Leave: 50},
			{Algorithm: core.AlgSmartEXP3},
			{Algorithm: core.AlgEXP3},
			{Algorithm: core.AlgSmartEXP3NoReset},
		},
		Slots:   60,
		Collect: sim.CollectOptions{Distance: true, Probabilities: true},
	}
}

func testJob(t *testing.T, runs int) JobSpec {
	t.Helper()
	job, err := NewJob(runner.Replications{Runs: runs, Seed: 11, Stream: []int64{3}}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// fingerprint folds a merged batch into a hex transcript: run order and
// every float bit pattern matter, so any reordering, dropped run, double
// merge or numeric drift changes it.
func fingerprint() (merge func(run int, res *sim.Result) error, out *strings.Builder) {
	var sb strings.Builder
	return func(run int, res *sim.Result) error {
		fmt.Fprintf(&sb, "%d:", run)
		for d := range res.Devices {
			fmt.Fprintf(&sb, "%x,%x,%d;", res.Devices[d].DownloadMb, res.Devices[d].DelaySeconds, res.Devices[d].Switches)
		}
		var distSum float64
		for _, v := range res.Distance {
			distSum += v
		}
		fmt.Fprintf(&sb, "%x,%x,%x|", res.FracAtNE, res.FracAtEps, distSum)
		return nil
	}, &sb
}

// startWorkers launches n in-process worker daemons on loopback listeners
// and returns their addresses.
func startWorkers(t *testing.T, n int, opts WorkerOptions) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go Serve(ln, opts)
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

// TestRunDeterministicAcrossShardCounts is the subsystem's acceptance
// criterion: for a fixed root seed the merged aggregate is byte-identical
// whether the batch runs in-process or over 1, 2 or 4 shards, at several
// chunk sizes.
func TestRunDeterministicAcrossShardCounts(t *testing.T) {
	job := testJob(t, 24)

	merge, want := fingerprint()
	if err := Run(job, nil, Options{LocalWorkers: 1}, merge); err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("in-process run produced no results")
	}

	for _, shards := range []int{1, 2, 4} {
		for _, chunk := range []int{0, 1, 5} {
			t.Run(fmt.Sprintf("shards=%d/chunk=%d", shards, chunk), func(t *testing.T) {
				addrs := startWorkers(t, shards, WorkerOptions{Workers: 2})
				merge, got := fingerprint()
				if err := Run(job, addrs, Options{ChunkSize: chunk, Logf: t.Logf}, merge); err != nil {
					t.Fatal(err)
				}
				if got.String() != want.String() {
					t.Fatal("sharded aggregate differs from the in-process aggregate")
				}
			})
		}
	}
}

// cutProxy forwards one TCP connection to backend and kills it after
// forwarding cutAfter bytes of worker→coordinator traffic — a worker dying
// mid result stream, as far as the coordinator can tell.
func cutProxy(t *testing.T, backend string, cutAfter int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			up, err := ln.Accept()
			if err != nil {
				return
			}
			down, err := net.Dial("tcp", backend)
			if err != nil {
				up.Close()
				continue
			}
			go func() {
				defer up.Close()
				defer down.Close()
				io.Copy(down, up)
			}()
			go func() {
				defer up.Close()
				defer down.Close()
				io.CopyN(up, down, int64(cutAfter)) // then both sides close: mid-stream death
			}()
		}
	}()
	return ln.Addr().String()
}

// TestRunSurvivesWorkerKilledMidBatch kills one of two workers partway
// through its result stream and asserts the aggregate still matches the
// in-process run bit for bit: the unacknowledged ranges are reassigned to
// the surviving worker.
func TestRunSurvivesWorkerKilledMidBatch(t *testing.T) {
	job := testJob(t, 24)
	merge, want := fingerprint()
	if err := Run(job, nil, Options{LocalWorkers: 1}, merge); err != nil {
		t.Fatal(err)
	}

	// Cut points from mid-handshake to deep into the result stream (the
	// flaky worker's share of the 24-run batch is ~12 KB on the persistent
	// codec, so the deepest cut still lands before its stream ends).
	for _, cutAfter := range []int{64, 2048, 6144} {
		t.Run(fmt.Sprintf("cutAfter=%d", cutAfter), func(t *testing.T) {
			addrs := startWorkers(t, 2, WorkerOptions{Workers: 1})
			flaky := cutProxy(t, addrs[0], cutAfter)
			var logMu sync.Mutex
			var logs []string
			logf := func(format string, args ...any) {
				logMu.Lock()
				logs = append(logs, fmt.Sprintf(format, args...))
				logMu.Unlock()
			}
			merge, got := fingerprint()
			err := Run(job, []string{flaky, addrs[1]}, Options{ChunkSize: 2, Logf: logf}, merge)
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != want.String() {
				t.Fatal("aggregate after worker death differs from the in-process aggregate")
			}
			logMu.Lock()
			defer logMu.Unlock()
			if len(logs) == 0 {
				t.Fatal("expected the coordinator to log the shard failure")
			}
		})
	}
}

// stallProxy forwards one TCP connection to backend but freezes the
// worker→coordinator direction after stallAfter bytes — the connection
// stays open, no FIN, no RST: a worker that hangs rather than dies.
func stallProxy(t *testing.T, backend string, stallAfter int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			up, err := ln.Accept()
			if err != nil {
				return
			}
			down, err := net.Dial("tcp", backend)
			if err != nil {
				up.Close()
				continue
			}
			t.Cleanup(func() { up.Close(); down.Close() })
			go io.Copy(down, up)
			go func() {
				io.CopyN(up, down, int64(stallAfter))
				// Then go silent forever: keep both conns open, copy nothing.
			}()
		}
	}()
	return ln.Addr().String()
}

// TestRunSurvivesStalledWorker pins the frame-timeout path: a worker that
// stops responding without closing its connection must be timed out, its
// chunk reassigned, and the aggregate left bit-identical.
func TestRunSurvivesStalledWorker(t *testing.T) {
	job := testJob(t, 16)
	merge, want := fingerprint()
	if err := Run(job, nil, Options{LocalWorkers: 1}, merge); err != nil {
		t.Fatal(err)
	}

	addrs := startWorkers(t, 2, WorkerOptions{Workers: 1})
	stalled := stallProxy(t, addrs[0], 4096)
	merge2, got := fingerprint()
	err := Run(job, []string{stalled, addrs[1]},
		Options{ChunkSize: 2, FrameTimeout: 300 * time.Millisecond, Logf: t.Logf}, merge2)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatal("aggregate after a stalled worker differs from the in-process aggregate")
	}
}

// TestRunFallsBackWhenAllWorkersDie points the coordinator at one flaky
// worker and one closed port: after both shards retire, the in-process
// rescuer must finish the batch with an unchanged aggregate.
func TestRunFallsBackWhenAllWorkersDie(t *testing.T) {
	job := testJob(t, 16)
	merge, want := fingerprint()
	if err := Run(job, nil, Options{LocalWorkers: 1}, merge); err != nil {
		t.Fatal(err)
	}

	addrs := startWorkers(t, 1, WorkerOptions{Workers: 1})
	flaky := cutProxy(t, addrs[0], 4096)
	dead := reservedClosedPort(t)
	merge2, got := fingerprint()
	err := Run(job, []string{flaky, dead}, Options{ChunkSize: 2, LocalWorkers: 2, Logf: t.Logf}, merge2)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatal("aggregate after total worker loss differs from the in-process aggregate")
	}
}

// reservedClosedPort returns an address that is guaranteed closed: bound
// once and released, so dialing it fails fast.
func reservedClosedPort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRunMatchesSimReplicate pins the cluster path against the established
// in-process API: cluster.Run with no shards must equal sim.Replicate for
// the same batch.
func TestRunMatchesSimReplicate(t *testing.T) {
	cfg := testConfig()
	batch := runner.Replications{Runs: 12, Workers: 3, Seed: 11, Stream: []int64{3}}
	mergeA, want := fingerprint()
	if err := sim.Replicate(batch, cfg, mergeA); err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(batch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mergeB, got := fingerprint()
	if err := Run(job, nil, Options{LocalWorkers: 3}, mergeB); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatal("cluster in-process run differs from sim.Replicate")
	}
}

// TestShardable enumerates the process-local fields that must refuse to
// serialize.
func TestShardable(t *testing.T) {
	base := testConfig()
	if err := Shardable(base); err != nil {
		t.Fatalf("plain config must be shardable: %v", err)
	}
	withFactory := base
	withFactory.PolicyFactory = func(_ int, available []int, rng *rand.Rand) (core.Policy, error) {
		return core.New(core.AlgEXP3, available, core.DefaultConfig(), rng)
	}
	withSampler := base
	withSampler.WiFiDelay = constSampler(0.5)
	withCore := base
	withCore.Core = core.DefaultConfig()
	// gob cannot distinguish empty from absent slices, so explicitly empty
	// DeviceGroups/NetworkCosts would silently change meaning in flight.
	withEmptyGroups := base
	withEmptyGroups.DeviceGroups = [][]int{}
	withEmptyCosts := base
	withEmptyCosts.NetworkCosts = []criteria.Costs{}
	for name, cfg := range map[string]sim.Config{
		"policy-factory":     withFactory,
		"custom-sampler":     withSampler,
		"custom-core":        withCore,
		"empty-devicegroups": withEmptyGroups,
		"empty-networkcosts": withEmptyCosts,
	} {
		if err := Shardable(cfg); err == nil {
			t.Errorf("%s: expected Shardable to refuse", name)
		}
		if _, err := NewJob(runner.Replications{Runs: 1}, cfg); err == nil {
			t.Errorf("%s: expected NewJob to refuse", name)
		}
	}
}

type constSampler float64

func (c constSampler) Sample(*rand.Rand) float64 { return float64(c) }

// TestWorkerRejectsBadJob ships a descriptor that cannot compile (zero
// slots); the coordinator must surface the rejection as a fatal error, not
// retry it around the cluster.
func TestWorkerRejectsBadJob(t *testing.T) {
	job := testJob(t, 4)
	job.Config.Slots = 0
	addrs := startWorkers(t, 1, WorkerOptions{})
	merge, _ := fingerprint()
	err := Run(job, addrs, Options{}, merge)
	if err == nil || !strings.Contains(err.Error(), "job rejected") {
		t.Fatalf("want a job rejection error, got %v", err)
	}
}

// dialRaw opens a hand-driven protocol connection with its per-connection
// codec pair (the persistent-gob framing every peer speaks).
func dialRaw(t *testing.T, addr string) (net.Conn, *FrameWriter, *FrameReader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, newFrameWriter(conn), newFrameReader(conn)
}

// TestWorkerRejectsVersionMismatch speaks a wrong protocol version and
// expects a refusal at hello.
func TestWorkerRejectsVersionMismatch(t *testing.T) {
	addrs := startWorkers(t, 1, WorkerOptions{})
	_, fw, fr := dialRaw(t, addrs[0])
	if err := fw.write(&envelope{Hello: &helloMsg{Version: protocolVersion + 1}}); err != nil {
		t.Fatal(err)
	}
	env, err := fr.read()
	if err != nil {
		t.Fatal(err)
	}
	if env.HelloAck == nil || env.HelloAck.Err == "" {
		t.Fatalf("want a version refusal, got %+v", env)
	}
}

// TestWorkerRejectsCorruptRange speaks the protocol by hand and sends a
// range whose First+Count overflows int: the worker must drop the session
// instead of executing out-of-batch run indices.
func TestWorkerRejectsCorruptRange(t *testing.T) {
	addrs := startWorkers(t, 1, WorkerOptions{})
	_, fw, fr := dialRaw(t, addrs[0])
	if err := fw.write(&envelope{Hello: &helloMsg{Version: protocolVersion}}); err != nil {
		t.Fatal(err)
	}
	if env, err := fr.read(); err != nil || env.HelloAck == nil || env.HelloAck.Err != "" {
		t.Fatalf("handshake failed: %+v, %v", env, err)
	}
	if err := fw.write(&envelope{Job: &jobMsg{ID: 1, Spec: testJob(t, 8)}}); err != nil {
		t.Fatal(err)
	}
	if env, err := fr.read(); err != nil || env.JobAck == nil || env.JobAck.ID != 1 || env.JobAck.Err != "" {
		t.Fatalf("job rejected: %+v, %v", env, err)
	}
	const maxInt = int(^uint(0) >> 1)
	if err := fw.write(&envelope{Range: &rangeMsg{Job: 1, First: maxInt, Count: 1}}); err != nil {
		t.Fatal(err)
	}
	// The worker must close the connection without emitting a result.
	if env, err := fr.read(); err == nil {
		t.Fatalf("worker answered a corrupt range with %+v", env)
	}
}

// TestWorkerRejectsUnknownJobRange sends a range for a job id the session
// never shipped: the worker must drop the connection rather than guess.
func TestWorkerRejectsUnknownJobRange(t *testing.T) {
	addrs := startWorkers(t, 1, WorkerOptions{})
	_, fw, fr := dialRaw(t, addrs[0])
	if err := fw.write(&envelope{Hello: &helloMsg{Version: protocolVersion}}); err != nil {
		t.Fatal(err)
	}
	if env, err := fr.read(); err != nil || env.HelloAck == nil || env.HelloAck.Err != "" {
		t.Fatalf("handshake failed: %+v, %v", env, err)
	}
	if err := fw.write(&envelope{Range: &rangeMsg{Job: 42, First: 0, Count: 1}}); err != nil {
		t.Fatal(err)
	}
	if env, err := fr.read(); err == nil {
		t.Fatalf("worker answered a range for an unknown job with %+v", env)
	}
}

// TestFrameLengthGuards pins the framing hygiene: an oversized or zero
// length prefix must be rejected before any allocation happens.
func TestFrameLengthGuards(t *testing.T) {
	for _, raw := range [][]byte{
		{0xff, 0xff, 0xff, 0xff}, // ~4 GiB claim
		{0x00, 0x00, 0x00, 0x00}, // zero-length frame
	} {
		if _, err := newFrameReader(strings.NewReader(string(raw))).read(); err == nil {
			t.Fatalf("frame header % x must be rejected", raw)
		}
	}
}

// TestParseShards pins the flag-value parsing both CLIs share.
func TestParseShards(t *testing.T) {
	for give, want := range map[string][]string{
		"":                       nil,
		" , ,":                   nil,
		"h1:9631":                {"h1:9631"},
		"h1:9631,h2:9631":        {"h1:9631", "h2:9631"},
		" h1:9631 , , h2:9631 ,": {"h1:9631", "h2:9631"},
	} {
		got := ParseShards(give)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("ParseShards(%q) = %v, want %v", give, got, want)
		}
	}
}

// TestRunEmptyBatch is the zero-work edge: no runs, no connections, no
// merges.
func TestRunEmptyBatch(t *testing.T) {
	job := testJob(t, 24)
	job.Runs = 0
	merge, out := fingerprint()
	if err := Run(job, []string{"127.0.0.1:1"}, Options{}, merge); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatal("empty batch must not merge anything")
	}
}
