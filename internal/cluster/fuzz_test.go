package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"smartexp3/internal/sim"
)

// encodeFrames renders a sequence of envelopes exactly as a peer would emit
// them on one connection: a single persistent encoder, so later frames omit
// the type descriptors the first frame introduced.
func encodeFrames(tb testing.TB, envs ...*envelope) []byte {
	tb.Helper()
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	for _, env := range envs {
		if err := fw.write(env); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

// fuzzSeedFrames returns the checked-in seed corpus for FuzzFrameDecode: one
// well-formed stream per message class, a multi-frame session prefix, and
// the classic framing corruptions (zero length, oversized length, truncated
// body, trailing garbage inside a frame).
func fuzzSeedFrames(tb testing.TB) [][]byte {
	tb.Helper()
	hello := &envelope{Hello: &helloMsg{Version: protocolVersion}}
	rng := &envelope{Range: &rangeMsg{Job: 1, First: 0, Count: 8}}
	res := &envelope{RunResult: &runResultMsg{Job: 1, Run: 3, Res: &sim.Result{
		Slots:    4,
		Distance: []float64{0.5, 0.25, 0.125, 0},
	}}}
	seeds := [][]byte{
		encodeFrames(tb, hello),
		encodeFrames(tb, &envelope{HelloAck: &helloAckMsg{Version: protocolVersion}}),
		encodeFrames(tb, rng),
		encodeFrames(tb, res),
		encodeFrames(tb, &envelope{RangeDone: &rangeDoneMsg{Job: 1, First: 0}}),
		encodeFrames(tb, &envelope{Ping: &pingMsg{Seq: 7}}, &envelope{Pong: &pongMsg{Seq: 7}}),
		encodeFrames(tb, &envelope{JobRelease: &jobReleaseMsg{ID: 1}}),
		// A realistic session prefix: several frames sharing one gob stream.
		encodeFrames(tb, hello, rng, res, res),
		// Framing corruptions.
		{0, 0, 0, 0, 0, 0, 0, 0},                         // zero-length frame
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},             // length far beyond maxFrameBytes
		{0, 0, 0, 5, 0, 0, 0, 0, 1, 2},                   // body shorter than its prefix
		{0, 0, 0, 4, 0, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef}, // checksum mismatch
	}
	truncated := encodeFrames(tb, hello)
	seeds = append(seeds, truncated[:len(truncated)-3])
	flipped := encodeFrames(tb, hello)
	flipped[len(flipped)-1] ^= 0x01 // payload damaged in flight: CRC must catch it
	seeds = append(seeds, flipped)
	padded := encodeFrames(tb, hello)
	padded = append(padded, 0xde, 0xad)
	padded[3] += 2 // trailing bytes inside the declared frame
	binary.BigEndian.PutUint32(padded[4:8], crc32.Checksum(padded[frameHeaderSize:], castagnoli))
	seeds = append(seeds, padded)
	return seeds
}

// FuzzFrameDecode throws arbitrary byte streams at the frame reader. The
// invariant under test is that a hostile or corrupt peer can produce only an
// error: no panic, no unbounded allocation (the length prefix is checked
// before any buffer is sized), and once a stream errors it keeps erroring
// rather than resynchronizing on garbage.
func FuzzFrameDecode(f *testing.F) {
	for _, seed := range fuzzSeedFrames(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := newFrameReader(bytes.NewReader(data))
		sawErr := false
		for i := 0; i < 64; i++ {
			_, err := fr.read()
			if err != nil {
				if sawErr {
					return // stream stays dead once it errors — done
				}
				sawErr = true
				continue // one more read to confirm the stream stays dead
			}
			if sawErr {
				t.Fatal("frame reader resynchronized after an error")
			}
		}
	})
}

// FuzzFrameRoundTrip checks the codec against itself: any envelope we can
// encode must decode back to equal field values, frame by frame, through the
// persistent per-connection codec pair.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), 0, 8, int64(42))
	f.Add(uint64(1<<63), -1, 0, int64(-1))
	f.Fuzz(func(t *testing.T, job uint64, first, count int, seq int64) {
		in := []*envelope{
			{Range: &rangeMsg{Job: job, First: first, Count: count}},
			{Ping: &pingMsg{Seq: uint64(seq)}},
			{RangeDone: &rangeDoneMsg{Job: job, First: first, Err: fmt.Sprint(seq)}},
		}
		fr := newFrameReader(bytes.NewReader(encodeFrames(t, in...)))
		for i, want := range in {
			got, err := fr.read()
			if err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			switch {
			case want.Range != nil:
				if got.Range == nil || *got.Range != *want.Range {
					t.Fatalf("frame %d: got %+v want %+v", i, got.Range, want.Range)
				}
			case want.Ping != nil:
				if got.Ping == nil || *got.Ping != *want.Ping {
					t.Fatalf("frame %d: got %+v want %+v", i, got.Ping, want.Ping)
				}
			case want.RangeDone != nil:
				if got.RangeDone == nil || *got.RangeDone != *want.RangeDone {
					t.Fatalf("frame %d: got %+v want %+v", i, got.RangeDone, want.RangeDone)
				}
			}
		}
	})
}

// TestWriteFuzzFrameDecodeCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzFrameDecode when UPDATE_FUZZ_CORPUS=1. The files are the
// native go-fuzz corpus encoding, so `go test -fuzz` and plain `go test`
// both replay them.
func TestWriteFuzzFrameDecodeCorpus(t *testing.T) {
	if os.Getenv("UPDATE_FUZZ_CORPUS") == "" {
		t.Skip("set UPDATE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzFrameDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeedFrames(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
