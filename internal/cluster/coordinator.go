package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"smartexp3/internal/sim"
)

// Options configures a coordinator run.
type Options struct {
	// ChunkSize is the number of runs per dispatched range; 0 picks a size
	// that gives every shard several ranges (dynamic load balancing and a
	// small reassignment unit on failure).
	ChunkSize int
	// DialTimeout bounds each worker dial; 0 means 5 seconds.
	DialTimeout time.Duration
	// FrameTimeout bounds how long a worker may go without producing the
	// next protocol frame (handshake reply, result, range ack); 0 means 2
	// minutes. It is a progress timeout, not a whole-chunk budget: a chunk
	// may take arbitrarily long as long as results keep flowing. A worker
	// that stalls without closing its connection (SIGSTOP, half-open
	// partition) trips it and is retired exactly like a dead one, so its
	// chunk is reassigned instead of hanging the batch.
	FrameTimeout time.Duration
	// LocalWorkers bounds the parallelism of in-process execution — the
	// shards-free fallback and the all-workers-dead rescue path; 0 or less
	// means GOMAXPROCS.
	LocalWorkers int
	// Logf, when non-nil, receives shard-failure and reassignment lines.
	// Failures are expected operational events (that is what reassignment
	// is for), so they are reported here rather than as errors.
	Logf func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return o.DialTimeout
}

func (o Options) frameTimeout() time.Duration {
	if o.FrameTimeout <= 0 {
		return 2 * time.Minute
	}
	return o.FrameTimeout
}

// Run executes the job's replications across the given shard addresses and
// folds every result through merge in ascending global run order, from a
// single goroutine. With no shards it runs the whole batch in-process —
// byte-identical to the sharded paths, which is the property the cluster
// tests pin.
//
// Worker failure (dial error, handshake refusal, connection loss) is not
// fatal: ranges not yet fully received are reassigned to surviving workers,
// and if every worker is gone the remaining ranges run in-process. Only two
// things abort a run: a merge error, and a deterministic simulation error
// reported by a worker (which would fail identically everywhere).
func Run(job JobSpec, shards []string, opts Options, merge func(run int, res *sim.Result) error) error {
	if job.Runs <= 0 {
		return nil
	}
	if len(shards) == 0 {
		exec, err := newRangeExec(job, opts.LocalWorkers)
		if err != nil {
			return err
		}
		return exec.run(0, job.Runs, merge)
	}

	c := &coordinator{
		job:   job,
		opts:  opts,
		chunk: chunkSize(opts.ChunkSize, job.Runs, len(shards)),
		resCh: make(chan chunkResult, len(shards)),
	}
	c.nChunks = (job.Runs + c.chunk - 1) / c.chunk
	// The claim window bounds how many chunks may be in flight beyond the
	// merge frontier, capping the reorder buffer at O(shards) chunks even
	// when one early chunk is slow (the same memory argument as
	// runner.MergeOrdered's window).
	c.window = 4 * len(shards)
	c.cond = sync.NewCond(&c.mu)
	c.live = len(shards)

	var wg sync.WaitGroup
	for _, addr := range shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.runShard(addr)
			c.shardExited(&wg)
		}()
	}
	go func() {
		wg.Wait()
		close(c.resCh)
	}()

	// Single-goroutine ordered merger: chunks are folded in ascending chunk
	// index, runs in ascending order within each chunk — the exact order a
	// serial loop would produce.
	pending := make(map[int][]*sim.Result, c.window)
	mergeNext := 0
	for cr := range c.resCh {
		if c.failedNow() {
			continue // drain so senders never block
		}
		pending[cr.idx] = cr.results
		for {
			results, ok := pending[mergeNext]
			if !ok {
				break
			}
			delete(pending, mergeNext)
			first := mergeNext * c.chunk
			for i, res := range results {
				if err := merge(first+i, res); err != nil {
					c.fail(fmt.Errorf("cluster: merge run %d: %w", first+i, err))
					break
				}
			}
			if c.failedNow() {
				break
			}
			mergeNext++
			c.advance()
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.firstErr
}

// chunkSize picks the dispatch granularity: roughly four ranges per shard,
// so the fastest worker can steal work from the slowest and a failure only
// forfeits a fraction of a shard's share.
func chunkSize(requested, runs, shards int) int {
	if requested > 0 {
		return requested
	}
	chunk := runs / (4 * shards)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// chunkResult carries one fully received chunk to the merger.
type chunkResult struct {
	idx     int
	results []*sim.Result
}

// coordinator is the shared state of one Run.
type coordinator struct {
	job   JobSpec
	opts  Options
	chunk int

	nChunks int
	window  int
	resCh   chan chunkResult

	mu       sync.Mutex
	cond     *sync.Cond
	retry    []int // failed chunk indices, dispatched before fresh ones
	next     int   // next fresh chunk index
	frontier int   // chunks fully merged
	live     int   // shard goroutines still running
	failed   bool
	firstErr error
}

// claim hands out the next chunk index: reassigned chunks first, then fresh
// ones while the merge frontier is within the window. It blocks while all
// eligible work is in flight and returns false once the batch is merged (or
// failed).
func (c *coordinator) claim() (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.failed {
			return 0, false
		}
		if n := len(c.retry); n > 0 {
			idx := c.retry[n-1]
			c.retry = c.retry[:n-1]
			return idx, true
		}
		if c.next < c.nChunks && c.next-c.frontier < c.window {
			idx := c.next
			c.next++
			return idx, true
		}
		if c.frontier >= c.nChunks {
			return 0, false
		}
		c.cond.Wait()
	}
}

// requeue returns a chunk whose worker failed before acknowledging it.
func (c *coordinator) requeue(idx int) {
	c.mu.Lock()
	c.retry = append(c.retry, idx)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// advance moves the merge frontier (called by the merger only).
func (c *coordinator) advance() {
	c.mu.Lock()
	c.frontier++
	c.cond.Broadcast()
	c.mu.Unlock()
}

// fail records the first fatal error and wakes everything up.
func (c *coordinator) fail(err error) {
	c.mu.Lock()
	if !c.failed {
		c.failed = true
		c.firstErr = err
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *coordinator) failedNow() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// shardExited accounts for a shard goroutine ending. When the last one goes
// while unmerged work remains, an in-process rescuer takes over the queue so
// the batch always completes: losing every worker degrades throughput, not
// correctness. wg still counts the exiting goroutine, so adding the rescuer
// here cannot race wg.Wait.
func (c *coordinator) shardExited(wg *sync.WaitGroup) {
	c.mu.Lock()
	c.live--
	spawnLocal := c.live == 0 && !c.failed && c.frontier < c.nChunks
	c.mu.Unlock()
	if !spawnLocal {
		return
	}
	c.opts.logf("cluster: all shards gone, finishing the remaining runs in-process")
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.runLocal()
	}()
}

// runLocal drains the chunk queue in-process (the all-workers-dead rescue).
func (c *coordinator) runLocal() {
	exec, err := newRangeExec(c.job, c.opts.LocalWorkers)
	if err != nil {
		c.fail(err)
		return
	}
	for {
		idx, ok := c.claim()
		if !ok {
			return
		}
		first, count := c.chunkBounds(idx)
		results := make([]*sim.Result, 0, count)
		err := exec.run(first, count, func(run int, res *sim.Result) error {
			results = append(results, res)
			return nil
		})
		if err != nil {
			c.fail(err)
			return
		}
		c.resCh <- chunkResult{idx: idx, results: results}
	}
}

func (c *coordinator) chunkBounds(idx int) (first, count int) {
	first = idx * c.chunk
	count = c.chunk
	if first+count > c.job.Runs {
		count = c.job.Runs - first
	}
	return first, count
}

// shardConn is one coordinator→worker session with per-frame progress
// deadlines: every read and write must complete within the frame timeout,
// so a stalled-but-open connection (suspended worker, half-open partition)
// surfaces as an ordinary transport error and takes the reassignment path
// instead of hanging the batch.
type shardConn struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	timeout time.Duration
}

func (s *shardConn) read() (*envelope, error) {
	if err := s.conn.SetReadDeadline(time.Now().Add(s.timeout)); err != nil {
		return nil, err
	}
	return readFrame(s.br)
}

func (s *shardConn) write(env *envelope) error {
	if err := s.conn.SetWriteDeadline(time.Now().Add(s.timeout)); err != nil {
		return err
	}
	if err := writeFrame(s.bw, env); err != nil {
		return err
	}
	return s.bw.Flush()
}

// runShard owns one worker connection: dial, handshake, ship the job, then
// claim and execute chunks until the batch is done or the connection fails.
// Any transport failure — including a frame-timeout stall — requeues the
// in-flight chunk and retires the shard.
func (c *coordinator) runShard(addr string) {
	conn, err := net.DialTimeout("tcp", addr, c.opts.dialTimeout())
	if err != nil {
		c.opts.logf("cluster: shard %s: dial: %v", addr, err)
		return
	}
	defer conn.Close()
	s := &shardConn{
		conn:    conn,
		br:      bufio.NewReader(conn),
		bw:      bufio.NewWriter(conn),
		timeout: c.opts.frameTimeout(),
	}

	fatal, err := handshake(s, c.job)
	if err != nil {
		if fatal {
			c.fail(fmt.Errorf("cluster: shard %s: %w", addr, err))
		} else {
			c.opts.logf("cluster: shard %s: handshake: %v", addr, err)
		}
		return
	}

	for {
		idx, ok := c.claim()
		if !ok {
			return
		}
		results, jobErr, err := c.requestChunk(s, idx)
		if err != nil {
			// Transport failure: the chunk was not acknowledged, another
			// shard (or the local rescuer) will re-run it.
			c.opts.logf("cluster: shard %s: chunk %d requeued: %v", addr, idx, err)
			c.requeue(idx)
			return
		}
		if jobErr != nil {
			// The simulation itself failed — deterministic, so retrying
			// elsewhere cannot help.
			c.fail(fmt.Errorf("cluster: shard %s: %w", addr, jobErr))
			return
		}
		c.resCh <- chunkResult{idx: idx, results: results}
	}
}

// handshake performs hello and job exchange. fatal marks errors that no
// other worker would answer differently (a job the cluster cannot compile).
func handshake(s *shardConn, job JobSpec) (fatal bool, err error) {
	if err := s.write(&envelope{Hello: &helloMsg{Version: protocolVersion}}); err != nil {
		return false, err
	}
	env, err := s.read()
	if err != nil {
		return false, err
	}
	if env.HelloAck == nil {
		return false, fmt.Errorf("protocol: expected hello ack")
	}
	if env.HelloAck.Err != "" {
		return false, fmt.Errorf("rejected: %s", env.HelloAck.Err)
	}
	if err := s.write(&envelope{Job: &jobMsg{Spec: job}}); err != nil {
		return false, err
	}
	env, err = s.read()
	if err != nil {
		return false, err
	}
	if env.JobAck == nil {
		return false, fmt.Errorf("protocol: expected job ack")
	}
	if env.JobAck.Err != "" {
		// The worker validated the same descriptor every other worker will
		// see; its rejection is a property of the job, not the worker.
		return true, fmt.Errorf("job rejected: %s", env.JobAck.Err)
	}
	return false, nil
}

// requestChunk dispatches one range and reads its full result stream. err
// reports transport/protocol failures (retryable elsewhere); jobErr reports
// a deterministic simulation failure the worker completed the range with.
func (c *coordinator) requestChunk(s *shardConn, idx int) (results []*sim.Result, jobErr, err error) {
	first, count := c.chunkBounds(idx)
	if err := s.write(&envelope{Range: &rangeMsg{First: first, Count: count}}); err != nil {
		return nil, nil, err
	}
	results = make([]*sim.Result, 0, count)
	for {
		env, err := s.read()
		if err != nil {
			return nil, nil, err
		}
		switch {
		case env.RunResult != nil:
			want := first + len(results)
			if env.RunResult.Run != want || env.RunResult.Res == nil || len(results) >= count {
				return nil, nil, fmt.Errorf("protocol: unexpected result for run %d (want %d of %d)",
					env.RunResult.Run, want, count)
			}
			results = append(results, env.RunResult.Res)
		case env.RangeDone != nil:
			if env.RangeDone.Err != "" {
				return nil, fmt.Errorf("run range [%d,%d): %s", first, first+count, env.RangeDone.Err), nil
			}
			if env.RangeDone.First != first || len(results) != count {
				return nil, nil, fmt.Errorf("protocol: range done for %d with %d/%d results",
					env.RangeDone.First, len(results), count)
			}
			return results, nil, nil
		default:
			return nil, nil, fmt.Errorf("protocol: unexpected frame in range stream")
		}
	}
}
