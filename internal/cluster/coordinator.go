package cluster

import (
	"time"

	"smartexp3/internal/sim"
)

// Options configures a coordinator — the one-shot Run and the persistent
// Session alike.
type Options struct {
	// ChunkSize is the number of runs per dispatched range; 0 picks a size
	// that gives every shard several ranges (dynamic load balancing and a
	// small reassignment unit on failure).
	ChunkSize int
	// DialTimeout bounds each worker dial; 0 means 5 seconds.
	DialTimeout time.Duration
	// FrameTimeout bounds how long a worker may go without producing the
	// next protocol frame while one is owed (handshake reply, result, range
	// ack, keepalive pong); 0 means 2 minutes. It is a progress timeout, not
	// a whole-chunk budget: a chunk may take arbitrarily long as long as
	// results keep flowing. A worker that stalls without closing its
	// connection (SIGSTOP, half-open partition) trips it and takes the
	// reassignment path instead of hanging the batch. While nothing is owed
	// — a session idling between batches — no deadline is armed at all, so
	// an idle gap of any length never counts as a stall.
	FrameTimeout time.Duration
	// Keepalive is how often an idle session connection is pinged; 0 means
	// a quarter of the frame timeout. Pings elicit pongs under FrameTimeout,
	// so a silently dead worker is noticed between batches. Pings are
	// suppressed while ranges are in flight (results are the liveness
	// signal there).
	Keepalive time.Duration
	// LocalWorkers bounds the parallelism of in-process execution — the
	// shards-free fallback and the all-workers-dead rescue path; 0 or less
	// means GOMAXPROCS.
	LocalWorkers int
	// Logf, when non-nil, receives shard-failure, reconnect and
	// reassignment lines. Failures are expected operational events (that is
	// what reassignment is for), so they are reported here rather than as
	// errors.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, counts session activity (jobs, chunks,
	// reconnects, dispatch latency) — a NewSessionMetrics set registered
	// on an obsv.Registry. Observation-only: instrumentation never changes
	// a seed, a chunk boundary or a merge order.
	Metrics *SessionMetrics
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return o.DialTimeout
}

func (o Options) frameTimeout() time.Duration {
	if o.FrameTimeout <= 0 {
		return 2 * time.Minute
	}
	return o.FrameTimeout
}

func (o Options) keepalive() time.Duration {
	if o.Keepalive > 0 {
		return o.Keepalive
	}
	return o.frameTimeout() / 4
}

// Run executes the job's replications across the given shard addresses and
// folds every result through merge in ascending global run order, from a
// single goroutine. With no shards it runs the whole batch in-process —
// byte-identical to the sharded paths, which is the property the cluster
// tests pin.
//
// Run is the one-shot convenience over Session: it dials, runs the single
// job and tears the session down. Callers with many batches (the experiment
// suite) should hold a Session instead and pay the dial and handshake once.
//
// Worker failure (dial error, handshake refusal, connection loss) is not
// fatal: ranges not yet fully received are reassigned — to the same worker
// after a reconnect, to surviving workers, or in-process when every worker
// is gone. Only two things abort a run: a merge error, and a deterministic
// job error reported by a worker (a spec that cannot compile, a simulation
// failure — both would fail identically everywhere).
func Run(job JobSpec, shards []string, opts Options, merge func(run int, res *sim.Result) error) error {
	if job.Runs <= 0 {
		return nil
	}
	if len(shards) == 0 {
		exec, err := newRangeExec(job, opts.LocalWorkers, nil)
		if err != nil {
			return err
		}
		return exec.run(0, job.Runs, merge)
	}
	s := NewSession(shards, opts)
	defer s.Close()
	return s.Run(job, merge)
}

// chunkSize picks the dispatch granularity: roughly four ranges per shard,
// so the fastest worker can steal work from the slowest and a failure only
// forfeits a fraction of a shard's share.
func chunkSize(requested, runs, shards int) int {
	if requested > 0 {
		return requested
	}
	chunk := runs / (4 * shards)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// chunkResult carries one fully received chunk to its job's merger.
type chunkResult struct {
	idx     int
	results []*sim.Result
}
