package cluster

import (
	"errors"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// TestCoordinatorWriteDeadlineUnsticksStalledWorker is the mirror image of
// TestWorkerWriteDeadlineUnsticksStalledCoordinator: a worker that stops
// draining its connection without closing it must not park the session's
// shard writer forever on a full send buffer. The stalled worker is played
// by a synchronous pipe that answers the handshake and then never reads
// again — the coordinator's job dispatch can only complete via its write
// deadline. Pongs keep flowing the other way so the read path stays
// healthy and the deadline that fires is provably the write-side one.
func TestCoordinatorWriteDeadlineUnsticksStalledWorker(t *testing.T) {
	coord, worker := net.Pipe()
	defer coord.Close()
	defer worker.Close()

	// A session shell around one hand-fed connection: runConn is driven
	// directly so the pipe can stand in for the TCP dial.
	s := &Session{opts: Options{FrameTimeout: 250 * time.Millisecond, ChunkSize: 2}, live: 1}
	s.cond = sync.NewCond(&s.mu)
	sh := &shard{addr: "pipe", index: 0}
	s.shards = []*shard{sh}

	connErr := make(chan error, 1)
	go func() {
		_, _, err := s.runConn(sh, coord)
		connErr <- err
	}()

	fw := newFrameWriter(worker)
	fr := newFrameReader(worker)
	if env, err := fr.read(); err != nil || env.Hello == nil {
		t.Fatalf("want the coordinator hello, got %+v, %v", env, err)
	}
	if err := fw.write(&envelope{HelloAck: &helloAckMsg{Version: protocolVersion}}); err != nil {
		t.Fatal(err)
	}

	// The stall: from here the worker reads nothing, but pongs keep the
	// coordinator's read deadline refreshed so only a write can time out.
	stop := make(chan struct{})
	var pongs sync.WaitGroup
	pongs.Add(1)
	go func() {
		defer pongs.Done()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for seq := uint64(1); ; seq++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			if err := fw.write(&envelope{Pong: &pongMsg{Seq: seq}}); err != nil {
				return
			}
		}
	}()

	// Submitting a job makes the shard writer claim a chunk and dispatch
	// it; the pipe has no buffer, so that write parks immediately.
	job := testJob(t, 8)
	runErr := make(chan error, 1)
	go func() {
		merge, _ := fingerprint()
		runErr <- s.Run(job, merge)
	}()

	start := time.Now()
	select {
	case err := <-connErr:
		if err == nil {
			t.Fatal("runConn returned nil against a stalled worker")
		}
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("want a deadline error, got %v", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("coordinator took %v to notice the stalled worker", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shard writer is still parked on the stalled connection")
	}

	close(stop)
	pongs.Wait()
	s.Close() // fail the parked job so its Run returns
	if err := <-runErr; err == nil {
		t.Fatal("job survived losing its only shard mid-dispatch with no rescuer")
	}
}
