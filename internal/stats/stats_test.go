package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "single", give: []float64{5}, want: 5},
		{name: "mixed", give: []float64{1, 2, 3, 4}, want: 2.5},
		{name: "negative", give: []float64{-2, 2}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); got != tt.want {
				t.Fatalf("Mean(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "odd", give: []float64{3, 1, 2}, want: 2},
		{name: "even", give: []float64{4, 1, 3, 2}, want: 2.5},
		{name: "unsorted input unchanged", give: []float64{9, 1}, want: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Median(tt.give); got != tt.want {
				t.Fatalf("Median(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Fatalf("StdDev of constants = %v, want 0", got)
	}
	got := StdDev([]float64{1, 3})
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("StdDev([1,3]) = %v, want 1 (population)", got)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{5, 1, 9}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v, want min", got)
	}
	if got := Quantile(xs, 1); got != 9 {
		t.Fatalf("q1 = %v, want max", got)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.25); got != 2.5 {
		t.Fatalf("q0.25 = %v, want 2.5", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Mod(math.Abs(qa), 1)
		b := math.Mod(math.Abs(qb), 1)
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedianMatchesSortBasedOracle(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		var want float64
		n := len(sorted)
		if n%2 == 1 {
			want = sorted[n/2]
		} else {
			want = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		got := Median(xs)
		return math.Abs(got-want) <= 1e-9*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	if got := Min([]float64{3, -1, 2}); got != -1 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max([]float64{3, -1, 2}); got != 3 {
		t.Fatalf("Max = %v", got)
	}
	if got := Min(nil); !math.IsInf(got, 1) {
		t.Fatalf("Min(nil) = %v, want +Inf", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Median != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Fatalf("Summarize(nil).N = %d", got.N)
	}
}

func TestSeriesMean(t *testing.T) {
	s := NewSeries(3)
	s.AddRun([]float64{1, 2, 3})
	s.AddRun([]float64{3, 4, 5})
	got := s.Mean()
	want := []float64{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Mean()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSeriesUnequalRunLengths(t *testing.T) {
	s := NewSeries(3)
	s.AddRun([]float64{1, 1, 1})
	s.AddRun([]float64{3}) // shorter run contributes only slot 0
	got := s.Mean()
	if got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("unexpected mean %v", got)
	}
}

func TestSeriesIgnoresOutOfRange(t *testing.T) {
	s := NewSeries(2)
	s.Add(-1, 9)
	s.Add(2, 9)
	s.Add(0, 5)
	got := s.Mean()
	if got[0] != 5 || got[1] != 0 {
		t.Fatalf("unexpected mean %v", got)
	}
}

func TestDownsample(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	got := Downsample(xs, 2)
	want := []float64{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("Downsample = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Downsample = %v, want %v", got, want)
		}
	}
	whole := Downsample(xs, 1)
	if len(whole) != len(xs) {
		t.Fatalf("step=1 should copy: %v", whole)
	}
	whole[0] = 99
	if xs[0] == 99 {
		t.Fatal("Downsample(step=1) must copy, not alias")
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{1, 5, 10}
	if got := FractionBelow(xs, 5); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("FractionBelow = %v", got)
	}
	if got := FractionBelow(nil, 5); got != 0 {
		t.Fatalf("FractionBelow(nil) = %v", got)
	}
}
