// Package stats provides the descriptive statistics used throughout the
// evaluation: medians and quantiles (Tables IV–VII), standard deviations
// (Figures 2, 5), and mean time series with per-slot aggregation across runs
// (Figures 4, 7–9, 11, 13–15).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// StdDev returns the population standard deviation of xs (the paper's
// fairness metric is the spread of per-device downloads within one run, a
// full population, not a sample).
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Median returns the median of xs without modifying it, or 0 for an empty
// slice.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile of xs (0 ≤ q ≤ 1) using linear
// interpolation between order statistics. It copies xs, leaving the input
// unmodified, and returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	minVal := math.Inf(1)
	for _, x := range xs {
		if x < minVal {
			minVal = x
		}
	}
	return minVal
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	maxVal := math.Inf(-1)
	for _, x := range xs {
		if x > maxVal {
			maxVal = x
		}
	}
	return maxVal
}

// Summary holds the aggregate statistics reported in the paper's tables.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Median float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Median: Median(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

// Series accumulates per-slot values across runs and yields the per-slot
// mean: the quantity plotted in the paper's distance-to-NE figures.
type Series struct {
	sums   []float64
	counts []int
}

// NewSeries creates a Series with capacity for slots entries.
func NewSeries(slots int) *Series {
	return &Series{
		sums:   make([]float64, slots),
		counts: make([]int, slots),
	}
}

// Add accumulates value v for slot t. Out-of-range slots are ignored so that
// runs of differing lengths can share a Series.
func (s *Series) Add(t int, v float64) {
	if t < 0 || t >= len(s.sums) {
		return
	}
	s.sums[t] += v
	s.counts[t]++
}

// AddRun accumulates one run's per-slot values.
func (s *Series) AddRun(values []float64) {
	for t, v := range values {
		s.Add(t, v)
	}
}

// Len returns the number of slots the series covers.
func (s *Series) Len() int { return len(s.sums) }

// Mean returns the per-slot mean across everything accumulated. Slots that
// received no values are 0.
func (s *Series) Mean() []float64 {
	out := make([]float64, len(s.sums))
	for t, sum := range s.sums {
		if s.counts[t] > 0 {
			out[t] = sum / float64(s.counts[t])
		}
	}
	return out
}

// Downsample returns every step-th element of xs (always including the first
// element), which is how long per-slot series are rendered as compact tables.
func Downsample(xs []float64, step int) []float64 {
	if step <= 1 {
		out := make([]float64, len(xs))
		copy(out, xs)
		return out
	}
	var out []float64
	for i := 0; i < len(xs); i += step {
		out = append(out, xs[i])
	}
	return out
}

// FractionBelow returns the fraction of xs that is ≤ threshold; used to
// report time spent at (or within ε of) Nash equilibrium.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var n int
	for _, x := range xs {
		if x <= threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
