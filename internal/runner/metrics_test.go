package runner

import (
	"encoding/json"
	"strings"
	"testing"

	"smartexp3/internal/obsv"
)

// TestInstrumentCountsPoolWork pins the pool's counters: every task lands
// in runner_runs_total exactly once whatever the worker count, batches are
// counted per pool entry, and the active-worker gauge returns to zero when
// the pool is quiescent.
func TestInstrumentCountsPoolWork(t *testing.T) {
	reg := obsv.NewRegistry()
	Instrument(reg)
	defer metrics.Store(nil) // leave the package uninstrumented for other tests

	read := func() map[string]any {
		t.Helper()
		var b strings.Builder
		if err := reg.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		out := make(map[string]any)
		if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	const n = 50
	var runs, batches float64
	for _, workers := range []int{1, 4} {
		if err := ForEach(workers, n, func(i int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		runs += n
		batches++
		m := read()
		if got := m["runner_runs_total"].(float64); got != runs {
			t.Fatalf("workers=%d: runner_runs_total = %v, want %v", workers, got, runs)
		}
		if got := m["runner_batches_total"].(float64); got != batches {
			t.Fatalf("workers=%d: runner_batches_total = %v, want %v", workers, got, batches)
		}
		if got := m["runner_workers_active"].(float64); got != 0 {
			t.Fatalf("workers=%d: %v workers still active after the batch", workers, got)
		}
	}
}
