package runner

import (
	"sync/atomic"

	"smartexp3/internal/obsv"
)

// poolMetrics is the package's process-wide instrumentation. The runner's
// entry points are free functions, not a constructed object, so the hook
// is a package-level atomic pointer: nil (the default) keeps every batch
// on the uninstrumented path for the cost of one pointer load, and a
// daemon that wants pool visibility installs a set once at boot via
// Instrument.
type poolMetrics struct {
	runs    *obsv.Counter
	batches *obsv.Counter
	active  *obsv.Gauge
}

var metrics atomic.Pointer[poolMetrics]

// Instrument registers the runner pool's metrics on reg and enables
// process-wide counting: runner_runs_total (tasks executed by the pool —
// replications, grid cells), runner_batches_total (MergeOrderedPooled-level
// batches), runner_workers_active (pool goroutines currently executing).
// Call it before batches start; a later call (a test booting a second
// in-process daemon, say) re-points counting at the new registry's
// counters.
func Instrument(reg *obsv.Registry) {
	metrics.Store(&poolMetrics{
		runs:    reg.Counter("runner_runs_total", "Tasks executed by the pool (replications, grid cells)"),
		batches: reg.Counter("runner_batches_total", "Batches dispatched through the pool"),
		active:  reg.Gauge("runner_workers_active", "Pool worker goroutines currently executing a batch"),
	})
}
