// Package runner is the Monte Carlo execution engine of the reproduction:
// it fans replications and whole scenario grids across a bounded pool of
// goroutines while keeping every aggregate bit-for-bit independent of the
// worker count.
//
// # Determinism contract
//
// Parallel replication is only trustworthy if the aggregated output is a
// pure function of the seed. Two mechanisms guarantee that here:
//
//   - Each replication draws from its own RNG stream, derived with
//     rngutil.ChildSeed from (base seed, stream ids..., run index). Workers
//     never share generators, so the schedule cannot leak into the samples.
//   - Results are merged in ascending run order by a single merger
//     goroutine (MergeOrdered), never in completion order. Aggregates that
//     append to slices or fold non-commutatively therefore see runs in the
//     same order a serial loop would.
//
// Workers claim run indices from a shared counter and stall once they run
// a bounded window ahead of the merge frontier, so the reorder buffer holds
// O(workers) results even when one early run is much slower than the rest:
// memory stays O(workers), not O(runs).
//
// # Per-worker state
//
// The pooled variants (MergeOrderedPooled, MergePooled) hand every worker
// one private state object for its whole batch. This is how simulation
// batches run allocation-free: each worker owns one sim.Workspace, reused
// across all replications it executes, with no sync.Pool churn and no
// cross-goroutine sharing. Pooling does not weaken the determinism
// contract, because run results must not depend on which worker's state
// executed them — sim's Engine guarantees exactly that for workspaces.
package runner

import (
	"fmt"
	"runtime"
	"sync"

	"smartexp3/internal/rngutil"
)

// Workers normalizes a worker-count option: values below 1 mean GOMAXPROCS.
func Workers(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// ForEach runs fn(0..n-1) on up to workers goroutines and returns the first
// error. Remaining indices are not started after an error.
func ForEach(workers, n int, fn func(i int) error) error {
	return MergeOrdered(workers, n,
		func(i int) (struct{}, error) { var z struct{}; return z, fn(i) },
		func(int, struct{}) error { return nil })
}

// Collect runs do(0..n-1) on up to workers goroutines and returns the
// results indexed by i — the same slice a serial loop would build.
func Collect[T any](workers, n int, do func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := MergeOrdered(workers, n, do, func(i int, v T) error {
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// indexed carries one replication's result to the merger.
type indexed[T any] struct {
	i   int
	v   T
	err error
}

// MergeOrdered runs do(0..n-1) on up to workers goroutines and applies
// merge(i, result) strictly in ascending i, from a single goroutine (merge
// needs no locking). It returns the first error from do or merge; after an
// error no further work is started and no further merges run.
func MergeOrdered[T any](workers, n int, do func(i int) (T, error), merge func(i int, v T) error) error {
	return MergeOrderedPooled(workers, n,
		func() struct{} { var z struct{}; return z },
		func(_ struct{}, i int) (T, error) { return do(i) },
		merge)
}

// MergeOrderedPooled is MergeOrdered with per-worker state: every worker
// goroutine calls newState exactly once and hands the state to each of its
// runs. This is the pooling primitive behind cheap Monte Carlo batches —
// a worker owns one simulation Workspace for its whole batch, so
// replications reuse buffers instead of allocating, with no sync.Pool
// churn and no cross-goroutine sharing. The determinism contract is
// unchanged: run i's result must not depend on which worker (and thus
// which state) executed it, which sim's Engine guarantees for workspaces.
func MergeOrderedPooled[S, T any](workers, n int, newState func() S, do func(s S, i int) (T, error), merge func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	m := metrics.Load()
	if m != nil {
		m.batches.Inc()
	}
	if workers == 1 {
		if m != nil {
			m.active.Add(1)
			defer m.active.Add(-1)
		}
		s := newState()
		for i := 0; i < n; i++ {
			v, err := do(s, i)
			if err != nil {
				return fmt.Errorf("runner: run %d: %w", i, err)
			}
			if m != nil {
				m.runs.Inc()
			}
			if err := merge(i, v); err != nil {
				return fmt.Errorf("runner: merge %d: %w", i, err)
			}
		}
		return nil
	}

	// window bounds how far workers may run ahead of the merge frontier,
	// which caps the reorder buffer at O(workers) results even when run
	// times are wildly heterogeneous (one slow early run must not let the
	// rest of the batch pile up in memory).
	window := 4 * workers
	var (
		next     int
		frontier int
		failed   bool
		mu       sync.Mutex
		wg       sync.WaitGroup
		results  = make(chan indexed[T], workers)
	)
	cond := sync.NewCond(&mu)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		for {
			if failed || next >= n {
				return 0, false
			}
			if next-frontier < window {
				i := next
				next++
				return i, true
			}
			cond.Wait()
		}
	}
	fail := func() {
		mu.Lock()
		failed = true
		cond.Broadcast()
		mu.Unlock()
	}
	advance := func() {
		mu.Lock()
		frontier++
		cond.Broadcast()
		mu.Unlock()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if m != nil {
				m.active.Add(1)
				defer m.active.Add(-1)
			}
			s := newState()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				v, err := do(s, i)
				if err != nil {
					fail()
				} else if m != nil {
					m.runs.Inc()
				}
				results <- indexed[T]{i: i, v: v, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Single-goroutine merger: apply results in ascending run order via a
	// reorder buffer (bounded by window, see above).
	var (
		firstErr  error
		mergeNext int
		pending   = make(map[int]T, window)
	)
	for res := range results {
		if res.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("runner: run %d: %w", res.i, res.err)
			}
			continue
		}
		if firstErr != nil {
			continue
		}
		pending[res.i] = res.v
		for {
			v, ok := pending[mergeNext]
			if !ok {
				break
			}
			delete(pending, mergeNext)
			if err := merge(mergeNext, v); err != nil {
				firstErr = fmt.Errorf("runner: merge %d: %w", mergeNext, err)
				fail()
				break
			}
			mergeNext++
			advance()
		}
	}
	return firstErr
}

// Replications describes one batch of seeded Monte Carlo replications: Runs
// repetitions of the same scenario, each on its own RNG stream derived from
// Seed and the optional Stream namespace ids.
type Replications struct {
	// Runs is the number of replications.
	Runs int
	// Workers bounds parallelism; 0 or less means GOMAXPROCS.
	Workers int
	// Seed is the batch's base seed.
	Seed int64
	// Stream namespaces the batch (for example setting and algorithm ids)
	// so distinct batches under one base seed never share streams.
	Stream []int64
}

// SeedFor returns the independent child seed of the given replication.
func (r Replications) SeedFor(run int) int64 {
	ids := make([]int64, 0, len(r.Stream)+1)
	ids = append(ids, r.Stream...)
	ids = append(ids, int64(run))
	return rngutil.ChildSeed(r.Seed, ids...)
}

// Each runs do once per replication, in parallel, handing each run its
// child seed.
func (r Replications) Each(do func(run int, seed int64) error) error {
	return ForEach(r.Workers, r.Runs, func(run int) error {
		return do(run, r.SeedFor(run))
	})
}

// Merge runs do once per replication in parallel and folds the results into
// merge in ascending run order (see MergeOrdered).
func Merge[T any](r Replications, do func(run int, seed int64) (T, error), merge func(run int, v T) error) error {
	return MergeOrdered(r.Workers, r.Runs,
		func(run int) (T, error) { return do(run, r.SeedFor(run)) },
		merge)
}

// MergePooled is Merge with per-worker state (see MergeOrderedPooled): the
// standard shape for running a batch of simulation replications through one
// compiled sim Engine, with each worker owning one reusable Workspace.
func MergePooled[S, T any](r Replications, newState func() S, do func(s S, run int, seed int64) (T, error), merge func(run int, v T) error) error {
	return MergeOrderedPooled(r.Workers, r.Runs, newState,
		func(s S, run int) (T, error) { return do(s, run, r.SeedFor(run)) },
		merge)
}

// Grid fans a rows×cols scenario grid (for example settings × algorithms)
// across the pool, row-major. Cell work should itself be serial — nest
// replications inside cells only via workers=1, or the pool oversubscribes.
func Grid(workers, rows, cols int, do func(row, col int) error) error {
	return ForEach(workers, rows*cols, func(i int) error {
		return do(i/cols, i%cols)
	})
}

// Group deduplicates concurrent identical computations and caches their
// results for the life of the process — the experiment suite's scenario
// caches. Unlike a plain mutex-guarded map, concurrent callers of the same
// key block on one in-flight computation instead of racing to repeat it.
type Group[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*groupEntry[V]
}

type groupEntry[V any] struct {
	done chan struct{}
	v    V
	err  error
}

// Do returns the cached value for key, computing it with compute if
// necessary. Exactly one caller computes; the others wait. A failed
// computation is not cached, so a later caller retries.
func (g *Group[K, V]) Do(key K, compute func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[K]*groupEntry[V])
	}
	if e, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-e.done
		return e.v, e.err
	}
	e := &groupEntry[V]{done: make(chan struct{})}
	g.m[key] = e
	g.mu.Unlock()

	e.v, e.err = compute()
	if e.err != nil {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
	}
	close(e.done)
	return e.v, e.err
}
