package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"smartexp3/internal/rngutil"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 4, 32} {
		hit := make([]int32, 100)
		err := ForEach(workers, len(hit), func(i int) error {
			atomic.AddInt32(&hit[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachStopsAfterError(t *testing.T) {
	boom := errors.New("boom")
	var ran int32
	err := ForEach(4, 1000, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want wrapped boom", err)
	}
	if n := atomic.LoadInt32(&ran); n >= 1000 {
		t.Fatalf("ran %d tasks after failure, want early stop", n)
	}
}

func TestCollectOrdersResults(t *testing.T) {
	out, err := Collect(8, 50, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMergeOrderedIsSequential: merge must see results in ascending run
// order, from one goroutine, for every worker count.
func TestMergeOrderedIsSequential(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var seen []int
		err := MergeOrdered(workers, 200,
			func(i int) (int, error) { return i, nil },
			func(i, v int) error {
				if i != v {
					t.Fatalf("merge(%d, %d): index/value mismatch", i, v)
				}
				seen = append(seen, i)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range seen {
			if i != v {
				t.Fatalf("workers=%d: merge order %v... not ascending", workers, seen[:i+1])
			}
		}
	}
}

func TestMergeErrorPropagates(t *testing.T) {
	err := MergeOrdered(4, 10,
		func(i int) (int, error) { return i, nil },
		func(i, v int) error {
			if i == 5 {
				return fmt.Errorf("merge exploded")
			}
			return nil
		})
	if err == nil || !strings.Contains(err.Error(), "merge exploded") {
		t.Fatalf("error %v, want merge failure", err)
	}
}

func TestReplicationsSeedsMatchChildSeeds(t *testing.T) {
	r := Replications{Runs: 4, Seed: 99, Stream: []int64{1, 2}}
	for run := 0; run < r.Runs; run++ {
		want := rngutil.ChildSeed(99, 1, 2, int64(run))
		if got := r.SeedFor(run); got != want {
			t.Fatalf("SeedFor(%d) = %d, want %d", run, got, want)
		}
	}
}

// replicatedAggregate is a miniature Monte Carlo experiment whose aggregate
// folds non-commutatively (string concatenation), so any deviation from
// serial run order is visible in the output bytes.
func replicatedAggregate(workers int) (string, error) {
	batch := Replications{Runs: 64, Workers: workers, Seed: 7, Stream: []int64{5}}
	var sb strings.Builder
	err := Merge(batch,
		func(run int, seed int64) (float64, error) {
			rng := rngutil.New(seed)
			var sum float64
			for i := 0; i < 1000; i++ {
				sum += rng.Float64()
			}
			return sum, nil
		},
		func(run int, v float64) error {
			fmt.Fprintf(&sb, "%d:%.12f;", run, v)
			return nil
		})
	return sb.String(), err
}

// TestParallelAggregateDeterminism is the runner's core guarantee: the same
// seed produces byte-identical aggregates at every worker count (run this
// package with `go test -race -cpu 1,8` to exercise both schedules).
func TestParallelAggregateDeterminism(t *testing.T) {
	base, err := replicatedAggregate(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 0} {
		got, err := replicatedAggregate(workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Fatalf("workers=%d aggregate differs from serial:\n%s\nvs\n%s", workers, got, base)
		}
	}
}

// TestMergeOrderedPooledStatePerWorker: every worker creates exactly one
// state, every run receives a state, and results still merge in ascending
// order.
func TestMergeOrderedPooledStatePerWorker(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var states int32
		var mergeNext int
		err := MergeOrderedPooled(workers, 64,
			func() *int32 {
				atomic.AddInt32(&states, 1)
				n := new(int32)
				return n
			},
			func(s *int32, i int) (int, error) {
				if s == nil {
					t.Error("run executed without worker state")
				}
				atomic.AddInt32(s, 1)
				return i, nil
			},
			func(i, v int) error {
				if i != mergeNext {
					t.Fatalf("merge out of order: %d, want %d", i, mergeNext)
				}
				mergeNext++
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if n := atomic.LoadInt32(&states); int(n) > workers {
			t.Fatalf("workers=%d created %d states, want at most one per worker", workers, n)
		}
	}
}

// TestMergePooledDeterministicAcrossWorkers: a pooled aggregate (each worker
// reusing one accumulator state) is byte-identical for every worker count,
// mirroring how pooled simulation workspaces are used.
func TestMergePooledDeterministicAcrossWorkers(t *testing.T) {
	pooledAggregate := func(workers int) (string, error) {
		batch := Replications{Runs: 48, Workers: workers, Seed: 13, Stream: []int64{3}}
		var sb strings.Builder
		err := MergePooled(batch,
			func() []float64 { return make([]float64, 0, 64) }, // reused scratch
			func(scratch []float64, run int, seed int64) (float64, error) {
				rng := rngutil.New(seed)
				scratch = scratch[:0]
				for i := 0; i < 50; i++ {
					scratch = append(scratch, rng.Float64())
				}
				var sum float64
				for _, v := range scratch {
					sum += v
				}
				return sum, nil
			},
			func(run int, v float64) error {
				fmt.Fprintf(&sb, "%d:%.12f;", run, v)
				return nil
			})
		return sb.String(), err
	}
	base, err := pooledAggregate(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 0} {
		got, err := pooledAggregate(workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Fatalf("workers=%d pooled aggregate differs from serial", workers)
		}
	}
}

func TestGridCoversAllCells(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[[2]int]bool)
	err := Grid(4, 3, 5, func(r, c int) error {
		mu.Lock()
		seen[[2]int{r, c}] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 15 {
		t.Fatalf("covered %d cells, want 15", len(seen))
	}
}

// TestGroupComputesOnce: concurrent callers of the same key share one
// computation; a second key computes independently.
func TestGroupComputesOnce(t *testing.T) {
	var g Group[string, int]
	var calls int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := g.Do("a", func() (int, error) {
				atomic.AddInt32(&calls, 1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = (%d, %v), want (42, nil)", v, err)
			}
		}()
	}
	wg.Wait()
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
}

// TestGroupRetriesAfterError: failures are not cached.
func TestGroupRetriesAfterError(t *testing.T) {
	var g Group[int, int]
	if _, err := g.Do(1, func() (int, error) {
		return 0, errors.New("transient")
	}); err == nil {
		t.Fatal("want first call to fail")
	}
	v, err := g.Do(1, func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry = (%d, %v), want (7, nil)", v, err)
	}
}
