package fleet

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"smartexp3/internal/cluster"
	"smartexp3/internal/obsv"
)

// controlConn is one synchronous fleet-control session: dial, hello,
// then strict request/response round trips with per-frame deadlines.
type controlConn struct {
	conn    net.Conn
	bw      *bufio.Writer
	fw      *cluster.FrameWriter
	fr      *cluster.FrameReader
	timeout time.Duration
	peer    PeerInfo
	// epoch is what the peer's hello advertised — its installed table's
	// epoch at connect time.
	epoch uint64
}

// dialControl opens a control session to peer. frames/bytes, when
// non-nil, instrument the connection's reader and writer (the
// coordinator points these at its migrated-bytes counter).
func dialControl(peer PeerInfo, from string, dialTimeout, frameTimeout time.Duration, frames, bytes *obsv.Counter) (*controlConn, error) {
	conn, err := net.DialTimeout("tcp", peer.Control, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("fleet: dial control %s: %w", peer.Control, err)
	}
	cc := &controlConn{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		fr:      cluster.NewFrameReader(bufio.NewReaderSize(conn, 64<<10)),
		timeout: frameTimeout,
		peer:    peer,
	}
	cc.fw = cluster.NewFrameWriter(cc.bw)
	if frames != nil && bytes != nil {
		cc.fr.Instrument(frames, bytes)
		cc.fw.Instrument(frames, bytes)
	}
	if err := cc.send(&fleetEnvelope{Hello: &fleetHelloMsg{Version: fleetProtocolVersion, From: from}}); err != nil {
		conn.Close()
		return nil, err
	}
	var env fleetEnvelope
	if err := cc.recv(&env); err != nil {
		conn.Close()
		return nil, err
	}
	ack := env.HelloAck
	switch {
	case ack == nil:
		conn.Close()
		return nil, fmt.Errorf("fleet: %s answered the hello with a non-hello frame", peer.Control)
	case ack.Err != "":
		conn.Close()
		return nil, fmt.Errorf("fleet: %s refused the hello: %s", peer.Control, ack.Err)
	case peer.ID != "" && ack.ID != peer.ID:
		conn.Close()
		return nil, fmt.Errorf("fleet: %s identifies as %q, roster says %q", peer.Control, ack.ID, peer.ID)
	}
	if peer.ID == "" {
		cc.peer.ID = ack.ID
	}
	cc.epoch = ack.Epoch
	return cc, nil
}

func (cc *controlConn) send(env *fleetEnvelope) error {
	if cc.timeout > 0 {
		if err := cc.conn.SetWriteDeadline(time.Now().Add(cc.timeout)); err != nil {
			return err
		}
	}
	if err := cc.fw.Encode(env); err != nil {
		return err
	}
	return cc.bw.Flush()
}

func (cc *controlConn) recv(env *fleetEnvelope) error {
	if cc.timeout > 0 {
		if err := cc.conn.SetReadDeadline(time.Now().Add(cc.timeout)); err != nil {
			return err
		}
	}
	return cc.fr.Decode(env)
}

func (cc *controlConn) roundTrip(req *fleetEnvelope) (*fleetEnvelope, error) {
	if err := cc.send(req); err != nil {
		return nil, err
	}
	var env fleetEnvelope
	if err := cc.recv(&env); err != nil {
		return nil, err
	}
	return &env, nil
}

func (cc *controlConn) close() { cc.conn.Close() }

// FetchTable asks the peer at controlAddr for its installed partition
// table (nil when it has none yet). This is how a booting peer joins a
// running fleet, how a client bootstraps its routing, and how a draining
// peer's resolver probes a gaining peer's fate.
func FetchTable(controlAddr, from string, timeout time.Duration) (*Table, error) {
	cc, err := dialControl(PeerInfo{Control: controlAddr}, from, timeout, timeout, nil, nil)
	if err != nil {
		return nil, err
	}
	defer cc.close()
	env, err := cc.roundTrip(&fleetEnvelope{TableGet: &tableGetMsg{}})
	if err != nil {
		return nil, err
	}
	if env.TableRes == nil {
		return nil, fmt.Errorf("fleet: %s answered TableGet with a non-table frame", controlAddr)
	}
	return env.TableRes.Table, nil
}

// Checkpoint asks the peer at controlAddr to save its store snapshot to
// its configured snapshot path — the operator's pre-kill flush.
func Checkpoint(controlAddr, from string, timeout time.Duration) error {
	cc, err := dialControl(PeerInfo{Control: controlAddr}, from, timeout, timeout, nil, nil)
	if err != nil {
		return err
	}
	defer cc.close()
	env, err := cc.roundTrip(&fleetEnvelope{Checkpoint: &checkpointMsg{}})
	if err != nil {
		return err
	}
	if env.Done == nil {
		return fmt.Errorf("fleet: %s answered Checkpoint with a non-done frame", controlAddr)
	}
	if env.Done.Err != "" {
		return fmt.Errorf("fleet: checkpoint on %s: %s", controlAddr, env.Done.Err)
	}
	return nil
}

// Coordinator drives rebalances. It is stateless between calls — every
// Rebalance probes the roster fresh, adopts the highest installed epoch
// as the truth, and proposes the successor table — so any process
// (typically one elected fleetd, but an operator tool works too) can
// coordinate, serially.
type Coordinator struct {
	// Self names this coordinator in hellos (diagnostics only).
	Self string
	// DialTimeout bounds each control dial; zero means 5s.
	DialTimeout time.Duration
	// FrameTimeout bounds each control frame; zero means 2 minutes
	// (snapshot frames for a big stripe take real time).
	FrameTimeout time.Duration
	// Metrics, when set, receives the coordinator-side migration
	// counters. Nil means a private unregistered set.
	Metrics *Metrics
}

func (c *Coordinator) dialTimeout() time.Duration {
	if c.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return c.DialTimeout
}

func (c *Coordinator) frameTimeout() time.Duration {
	if c.FrameTimeout <= 0 {
		return 2 * time.Minute
	}
	return c.FrameTimeout
}

func (c *Coordinator) metrics() *Metrics {
	if c.Metrics == nil {
		c.Metrics = newMetrics()
	}
	return c.Metrics
}

// move is one stripe's in-flight migration on the coordinator's side.
type move struct {
	stripe   int
	lo, hi   uint64
	from, to *controlConn
}

// Rebalance converges the fleet onto the live subset of roster: probe
// every rostered peer, adopt the highest installed table as current
// truth, propose its successor over the peers that answered, drain and
// stage every stripe the successor moves, and commit gaining-first. It
// returns the committed table — or the current one when the live peer
// set already matches (a no-op probe, no epoch burned).
//
// Failure is all-or-nothing up to the first commit: any refused cut,
// failed stage, or unreachable old owner aborts every peer and leaves
// ownership exactly where it was. After the first commit the migration
// IS committed — a peer the commit fan-out then fails to reach heals
// through its drain resolver or its next table fetch.
func (c *Coordinator) Rebalance(roster []PeerInfo) (*Table, error) {
	if len(roster) == 0 {
		return nil, fmt.Errorf("fleet: rebalance over an empty roster")
	}
	m := c.metrics()

	// Probe: connect to every rostered peer; the ones that answer are
	// the fleet we converge onto.
	conns := make(map[string]*controlConn)
	defer func() {
		for _, cc := range conns {
			cc.close()
		}
	}()
	var live []PeerInfo
	frames := new(obsv.Counter) // frame counts stay private; bytes feed the exported counter
	for _, p := range roster {
		cc, err := dialControl(p, c.Self, c.dialTimeout(), c.frameTimeout(), frames, m.MigratedBytes)
		if err != nil {
			continue
		}
		conns[p.ID] = cc
		live = append(live, p)
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("fleet: no rostered peer reachable")
	}

	// Adopt the highest installed epoch as the current truth.
	var cur *Table
	for _, cc := range conns {
		env, err := cc.roundTrip(&fleetEnvelope{TableGet: &tableGetMsg{}})
		if err != nil {
			return nil, fmt.Errorf("fleet: table fetch from %s: %w", cc.peer.ID, err)
		}
		if env.TableRes == nil {
			return nil, fmt.Errorf("fleet: %s answered TableGet with a non-table frame", cc.peer.ID)
		}
		if t := env.TableRes.Table; t != nil && (cur == nil || t.Epoch > cur.Epoch) {
			cur = t
		}
	}
	if cur == nil {
		return nil, fmt.Errorf("fleet: no reachable peer has a table (bootstrap one peer first)")
	}

	// Propose the successor over the live set; no-op when nothing moves.
	desired, err := NewTable(cur.StripeBits, live)
	if err != nil {
		return nil, err
	}
	desired.Epoch = cur.Epoch + 1
	var moves []move
	for s := 0; s < cur.Stripes(); s++ {
		oldID := cur.Peers[cur.OwnerOf(s)].ID
		newID := desired.Peers[desired.OwnerOf(s)].ID
		if oldID == newID {
			continue
		}
		from, ok := conns[oldID]
		if !ok {
			return nil, fmt.Errorf("fleet: stripe %d must move off %s, which is unreachable — its sessions cannot be drained losslessly (restore it from its snapshot first)", s, oldID)
		}
		lo, hi := desired.StripeRange(s)
		moves = append(moves, move{stripe: s, lo: lo, hi: hi, from: from, to: conns[newID]})
	}
	if len(moves) == 0 && samePeers(cur, desired) {
		// Converged already; push the current table to any peer whose
		// hello trailed it (a rejoiner holding an old epoch).
		for _, cc := range conns {
			if cc.epoch < cur.Epoch {
				if _, err := cc.roundTrip(&fleetEnvelope{Commit: &commitMsg{Table: cur}}); err != nil {
					return nil, err
				}
			}
		}
		return cur, nil
	}

	// Drain and stage every moving stripe. Any failure aborts everyone.
	abort := func() {
		for _, cc := range conns {
			_, _ = cc.roundTrip(&fleetEnvelope{Abort: &abortMsg{}})
		}
	}
	for _, mv := range moves {
		start := time.Now()
		env, err := mv.from.roundTrip(&fleetEnvelope{Cut: &cutMsg{
			Stripe: mv.stripe, Lo: mv.lo, Hi: mv.hi,
			To: mv.to.peer.Addr, ToControl: mv.to.peer.Control,
			NewEpoch: desired.Epoch,
		}})
		if err != nil {
			abort()
			return nil, fmt.Errorf("fleet: cut stripe %d on %s: %w", mv.stripe, mv.from.peer.ID, err)
		}
		if env.State == nil || env.State.Err != "" {
			abort()
			return nil, fmt.Errorf("fleet: cut stripe %d on %s refused: %s", mv.stripe, mv.from.peer.ID, stateErr(env.State))
		}
		env2, err := mv.to.roundTrip(&fleetEnvelope{Offer: &offerMsg{
			Stripe: mv.stripe, Lo: mv.lo, Hi: mv.hi,
			NewEpoch: desired.Epoch, Snap: env.State.Snap,
		}})
		if err != nil {
			abort()
			return nil, fmt.Errorf("fleet: stage stripe %d on %s: %w", mv.stripe, mv.to.peer.ID, err)
		}
		if env2.OfferAck == nil || env2.OfferAck.Err != "" {
			abort()
			return nil, fmt.Errorf("fleet: stage stripe %d on %s refused: %s", mv.stripe, mv.to.peer.ID, ackErr(env2.OfferAck))
		}
		m.MigrationLatency.Observe(time.Since(start).Nanoseconds())
		if env.State.Snap != nil {
			m.MigratedDevices.Add(uint64(len(env.State.Snap.Devices)))
		}
	}

	// Commit: gaining peers first (their staged state must be owned the
	// instant the table says so), draining second, bystanders last. The
	// first successful commit makes the migration fact; later failures
	// are left to the peers' own healing.
	gaining := make(map[string]bool)
	draining := make(map[string]bool)
	for _, mv := range moves {
		gaining[mv.to.peer.ID] = true
		draining[mv.from.peer.ID] = true
	}
	order := make([]*controlConn, 0, len(conns))
	for _, p := range desired.Peers {
		if gaining[p.ID] {
			order = append(order, conns[p.ID])
		}
	}
	for _, cc := range conns {
		if draining[cc.peer.ID] && !gaining[cc.peer.ID] {
			order = append(order, cc)
		}
	}
	for _, cc := range conns {
		if !gaining[cc.peer.ID] && !draining[cc.peer.ID] {
			order = append(order, cc)
		}
	}
	committed := false
	for _, cc := range order {
		env, err := cc.roundTrip(&fleetEnvelope{Commit: &commitMsg{Table: desired}})
		if err == nil && env.Done != nil && env.Done.Err != "" {
			err = fmt.Errorf("%s", env.Done.Err)
		}
		if err != nil {
			if !committed {
				abort()
				return nil, fmt.Errorf("fleet: commit on %s: %w", cc.peer.ID, err)
			}
			continue // committed fact; this peer heals itself
		}
		committed = true
	}
	m.Migrations.Add(uint64(len(moves)))
	m.TableEpoch.Set(int64(desired.Epoch))
	return desired, nil
}

// samePeers reports whether two tables name the same peers (ids and
// addresses) with the same geometry.
func samePeers(a, b *Table) bool {
	if a.StripeBits != b.StripeBits || len(a.Peers) != len(b.Peers) {
		return false
	}
	for i := range a.Peers {
		if a.Peers[i] != b.Peers[i] {
			return false
		}
	}
	return true
}

func stateErr(st *stateMsg) string {
	if st == nil {
		return "non-state reply"
	}
	return st.Err
}

func ackErr(ack *offerAckMsg) string {
	if ack == nil {
		return "non-ack reply"
	}
	return ack.Err
}
