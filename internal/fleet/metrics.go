package fleet

import "smartexp3/internal/obsv"

// Metrics is the fleet layer's counter set. One set serves both roles a
// fleetd process can hold: the peer side moves Redirects and TableEpoch,
// the coordinator side moves the migration counters — a peer that never
// coordinates simply exports zeros for those. As everywhere in this
// codebase, metrics are observation-only: instrumented runs are
// byte-identical to bare ones, and the hot-path contribution (the
// redirect counter) is a single atomic increment on the cold not-owned
// branch.
type Metrics struct {
	// Redirects counts requests refused with a NotOwner redirect or a
	// feedback bounce — the stale-table signal.
	Redirects *obsv.Counter
	// TableEpoch is the installed partition-table epoch (0 before any).
	TableEpoch *obsv.Gauge
	// Migrations counts committed stripe migrations.
	Migrations *obsv.Counter
	// MigratedDevices counts device sessions moved by committed
	// migrations.
	MigratedDevices *obsv.Counter
	// MigratedBytes counts migration-stream wire bytes: everything the
	// coordinator's control connections carry, snapshot frames dominant.
	MigratedBytes *obsv.Counter
	// MigrationLatency observes per-stripe handoff time in nanoseconds,
	// cut request to stage acknowledgement.
	MigrationLatency *obsv.Histogram
}

// newMetrics returns an unregistered set — the default when no registry
// is wired, keeping every record site and accessor valid at zero cost.
func newMetrics() *Metrics {
	return &Metrics{
		Redirects:        new(obsv.Counter),
		TableEpoch:       new(obsv.Gauge),
		Migrations:       new(obsv.Counter),
		MigratedDevices:  new(obsv.Counter),
		MigratedBytes:    new(obsv.Counter),
		MigrationLatency: new(obsv.Histogram),
	}
}

// NewMetrics registers the fleet counter set on reg.
func NewMetrics(reg *obsv.Registry) *Metrics {
	return &Metrics{
		Redirects:        reg.Counter("fleet_redirects_total", "Requests refused with a NotOwner redirect or feedback bounce (stale routing)"),
		TableEpoch:       reg.Gauge("fleet_table_epoch", "Installed partition-table epoch (0 before any table)"),
		Migrations:       reg.Counter("fleet_migrations_total", "Stripe migrations committed"),
		MigratedDevices:  reg.Counter("fleet_migrated_devices_total", "Device sessions moved by committed migrations"),
		MigratedBytes:    reg.Counter("fleet_migrated_bytes_total", "Migration-stream wire bytes over coordinator control connections"),
		MigrationLatency: reg.Histogram("fleet_migration_latency_ns", "Per-stripe handoff time, cut request to stage acknowledgement"),
	}
}
