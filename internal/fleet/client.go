package fleet

import (
	"errors"
	"fmt"
	"time"

	"smartexp3/internal/serve"
)

// ClientOptions configures a fleet client.
type ClientOptions struct {
	// Controls lists control addresses to bootstrap and refresh the
	// partition table from; any one reachable peer suffices. Optional
	// when Table is set (the installed table's peers are probed too).
	Controls []string
	// Table seeds the routing table directly (tests, or a caller that
	// already fetched one). Nil fetches from Controls.
	Table *Table
	// MaxRedirects bounds how many NotOwner hops one Select follows
	// before giving up; zero means 3.
	MaxRedirects int

	// Per-peer serve.Client knobs, passed through.
	DialTimeout   time.Duration
	FrameTimeout  time.Duration
	FeedbackBatch int
	MaxAttempts   int
	BackoffBase   time.Duration
	BackoffMax    time.Duration
}

func (o ClientOptions) maxRedirects() int {
	if o.MaxRedirects <= 0 {
		return 3
	}
	return o.MaxRedirects
}

func (o ClientOptions) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return o.DialTimeout
}

// Client routes a serve workload across a fleet. It resolves each
// device's owner locally from its partition table, keeps one serve.Client
// per peer, and self-heals stale routing from the fleet's two signals:
// NotOwner redirects on Select (followed immediately, table refreshed to
// the quoted epoch) and Rejected feedback bounces (re-queued and
// re-delivered to the new owner, where the selection-slot dedup makes the
// replay at-most-once). Like serve.Client, it is synchronous and not
// goroutine-safe: one goroutine per Client.
type Client struct {
	opts  ClientOptions
	table *Table
	peers map[string]*serve.Client // keyed by data address
	slots map[uint64]uint64        // device -> slot of its last selection
	last  map[uint64]string        // device -> data address that served its last Select
	// requeue holds feedback items bounced by a no-longer-owning peer,
	// awaiting re-delivery; wantEpoch is the highest epoch a bounce or
	// redirect quoted, the "refresh at least this far" signal.
	requeue   []serve.FeedbackItem
	wantEpoch uint64
	redirects uint64
	closed    bool
}

// NewClient builds a fleet client, fetching the initial table from
// Controls unless one is supplied.
func NewClient(opts ClientOptions) (*Client, error) {
	c := &Client{
		opts:  opts,
		table: opts.Table.Clone(),
		peers: make(map[string]*serve.Client),
		slots: make(map[uint64]uint64),
		last:  make(map[uint64]string),
	}
	if c.table == nil {
		c.refreshTable()
	}
	if c.table == nil {
		return nil, fmt.Errorf("fleet: no table: none supplied and no control peer reachable")
	}
	if err := c.table.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Table returns a copy of the client's current routing table.
func (c *Client) Table() *Table { return c.table.Clone() }

// Redirects returns how many NotOwner redirects this client followed —
// each one a request that raced a migration and healed.
func (c *Client) Redirects() uint64 { return c.redirects }

// controlAddrs is every control address worth asking for a table: the
// current table's peers first (freshest roster), then the bootstrap
// list.
func (c *Client) controlAddrs() []string {
	var addrs []string
	seen := make(map[string]bool)
	if c.table != nil {
		for _, p := range c.table.Peers {
			if !seen[p.Control] {
				seen[p.Control] = true
				addrs = append(addrs, p.Control)
			}
		}
	}
	for _, a := range c.opts.Controls {
		if !seen[a] {
			seen[a] = true
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// refreshTable adopts the highest-epoch table any reachable control peer
// holds, stopping early once the wanted epoch is reached.
func (c *Client) refreshTable() {
	best := c.table
	for _, addr := range c.controlAddrs() {
		tab, err := FetchTable(addr, "fleet-client", c.opts.dialTimeout())
		if err != nil || tab == nil {
			continue
		}
		if best == nil || tab.Epoch > best.Epoch {
			best = tab
		}
		if c.wantEpoch != 0 && best != nil && best.Epoch >= c.wantEpoch {
			break
		}
	}
	c.table = best
	c.wantEpoch = 0
}

// peer returns (dialing on first use) the serve client for a data
// address.
func (c *Client) peer(addr string) (*serve.Client, error) {
	if sc, ok := c.peers[addr]; ok {
		return sc, nil
	}
	sc, err := serve.Dial(addr, serve.ClientOptions{
		DialTimeout:   c.opts.DialTimeout,
		FrameTimeout:  c.opts.FrameTimeout,
		FeedbackBatch: c.opts.FeedbackBatch,
		MaxAttempts:   c.opts.MaxAttempts,
		BackoffBase:   c.opts.BackoffBase,
		BackoffMax:    c.opts.BackoffMax,
		// Bounced items re-queue for re-delivery to the new owner. The
		// callback runs synchronously inside this client's own call
		// stack (one goroutine per Client), so plain appends are safe;
		// the append copies the items out of the loan.
		OnRejected: func(epoch uint64, items []serve.FeedbackItem) {
			c.requeue = append(c.requeue, items...)
			if epoch > c.wantEpoch {
				c.wantEpoch = epoch
			}
		},
	})
	if err != nil {
		return nil, err
	}
	c.peers[addr] = sc
	return sc, nil
}

// ownerAddr resolves a device to its owner's data address.
func (c *Client) ownerAddr(device uint64) string {
	return c.table.Owner(device).Addr
}

// dispatchRequeued re-delivers bounced feedback to the devices' current
// owners. One pass per call: an item that bounces again (the table raced
// another migration) re-queues through OnRejected and rides the next
// call.
func (c *Client) dispatchRequeued() error {
	if len(c.requeue) == 0 {
		return nil
	}
	if c.wantEpoch > c.table.Epoch {
		c.refreshTable()
	}
	items := c.requeue
	c.requeue = nil
	groups := make(map[string][]serve.FeedbackItem)
	for _, it := range items {
		addr := c.ownerAddr(it.Device)
		groups[addr] = append(groups[addr], it)
	}
	for addr, g := range groups {
		sc, err := c.peer(addr)
		if err == nil {
			err = sc.EnqueueFeedback(g)
		}
		if err != nil {
			c.requeue = append(c.requeue, g...)
			return err
		}
	}
	return nil
}

// syncPeer makes one peer's client quiescent: flush its buffer and ping
// it, so every report it held has been consumed — or bounced into the
// requeue — before the caller moves on.
func (c *Client) syncPeer(addr string) error {
	sc, ok := c.peers[addr]
	if !ok {
		return nil
	}
	if err := sc.Flush(); err != nil {
		return err
	}
	return sc.Ping()
}

// Select picks an arm for device, following NotOwner redirects across
// migrations: each hop goes where the refusing peer pointed (or, with no
// hint, where a refreshed table points) until a peer answers or the hop
// budget runs out.
//
// Ordering across a migration: when a device's route moves, its previous
// peer is synced first — buffered reports flushed, bounces collected and
// re-delivered — before the new owner is asked to select. Per-connection
// the serve client already flushes feedback ahead of every select, so
// this extends the same guarantee across peers: every report a caller
// issued for a device is applied before that device's next selection, no
// matter how many owners it crossed.
func (c *Client) Select(device uint64, arms []int) (int, error) {
	if c.closed {
		return -1, fmt.Errorf("fleet: client closed")
	}
	if err := c.dispatchRequeued(); err != nil {
		return -1, err
	}
	if c.wantEpoch > c.table.Epoch {
		c.refreshTable()
	}
	addr := c.ownerAddr(device)
	for hop := 0; hop <= c.opts.maxRedirects(); hop++ {
		if prev, ok := c.last[device]; ok && prev != addr {
			if err := c.syncPeer(prev); err != nil {
				return -1, err
			}
			delete(c.last, device)
			if err := c.dispatchRequeued(); err != nil {
				return -1, err
			}
		}
		sc, err := c.peer(addr)
		if err != nil {
			return -1, err
		}
		arm, slot, err := sc.SelectSlot(device, arms)
		if err == nil {
			c.slots[device] = slot
			c.last[device] = addr
			return arm, nil
		}
		var no *serve.NotOwnerError
		if !errors.As(err, &no) {
			return -1, err
		}
		c.redirects++
		if no.Epoch > c.wantEpoch {
			c.wantEpoch = no.Epoch
		}
		if no.Owner != "" && no.Owner != addr {
			addr = no.Owner
			continue
		}
		c.refreshTable()
		addr = c.ownerAddr(device)
	}
	return -1, fmt.Errorf("fleet: device %d still redirecting after %d hops", device, c.opts.maxRedirects())
}

// Feedback reports the reward for device's most recent Select through
// this client. Delivery targets the device's current owner; a peer that
// lost the device mid-flight bounces the item back and it re-delivers on
// the next call (the slot dedup makes any double delivery harmless).
func (c *Client) Feedback(device uint64, arm int, reward float64) error {
	if c.closed {
		return fmt.Errorf("fleet: client closed")
	}
	slot, ok := c.slots[device]
	if !ok {
		return fmt.Errorf("fleet: no selection recorded for device %d", device)
	}
	sc, err := c.peer(c.ownerAddr(device))
	if err != nil {
		return err
	}
	return sc.FeedbackSlot(device, arm, slot, reward)
}

// Flush is the fleet-wide delivery barrier: every peer is flushed and
// pinged (the pong proves it consumed — or bounced — every report), and
// any bounces are re-delivered and re-flushed, until a full quiet round.
// A successful Flush means every report this client accepted has been
// applied by some owning peer.
func (c *Client) Flush() error {
	if c.closed {
		return fmt.Errorf("fleet: client closed")
	}
	for round := 0; ; round++ {
		for _, sc := range c.peers {
			if err := sc.Flush(); err != nil {
				return err
			}
		}
		for _, sc := range c.peers {
			if err := sc.Ping(); err != nil {
				return err
			}
		}
		if len(c.requeue) == 0 {
			return nil
		}
		if round >= c.opts.maxRedirects()+1 {
			return fmt.Errorf("fleet: %d feedback items still bouncing after %d flush rounds", len(c.requeue), round+1)
		}
		if err := c.dispatchRequeued(); err != nil {
			return err
		}
	}
}

// Release ends devices' sessions on their owning peers and forgets their
// slots.
func (c *Client) Release(devices ...uint64) error {
	if c.closed {
		return fmt.Errorf("fleet: client closed")
	}
	for _, d := range devices {
		sc, err := c.peer(c.ownerAddr(d))
		if err != nil {
			return err
		}
		if err := sc.Release(d); err != nil {
			return err
		}
		delete(c.slots, d)
	}
	return nil
}

// Close flushes what it can and closes every peer connection; the first
// error wins but every peer is closed regardless.
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	var first error
	for _, sc := range c.peers {
		if err := sc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
