package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"net"
	"runtime"
	"testing"
	"time"

	"smartexp3/internal/chaos"
	"smartexp3/internal/serve"
)

// testPeer is one in-process fleet member: a store, its serve data
// server, and its fleet control server, with explicit teardown so leak
// checks can run before the test ends.
type testPeer struct {
	info  PeerInfo
	store *serve.Store
	peer  *Peer
	srv   *serve.Server

	dataLn, ctrlLn net.Listener
	dataDone       chan struct{}
	ctrlDone       chan struct{}
	closed         bool
}

func startTestPeer(t *testing.T, id string, cfg serve.Config, popts PeerOptions) *testPeer {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	store, err := serve.NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	popts.ID = id
	if popts.FrameTimeout == 0 {
		popts.FrameTimeout = 30 * time.Second
	}
	if popts.ResolveDelay == 0 {
		popts.ResolveDelay = 50 * time.Millisecond
	}
	p, err := NewPeer(store, popts)
	if err != nil {
		t.Fatal(err)
	}
	dataLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctrlLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tp := &testPeer{
		info:     PeerInfo{ID: id, Addr: dataLn.Addr().String(), Control: ctrlLn.Addr().String()},
		store:    store,
		peer:     p,
		srv:      serve.NewServer(store, serve.ServerOptions{FrameTimeout: 30 * time.Second}),
		dataLn:   dataLn,
		ctrlLn:   ctrlLn,
		dataDone: make(chan struct{}),
		ctrlDone: make(chan struct{}),
	}
	go func() { defer close(tp.dataDone); _ = tp.srv.Serve(dataLn) }()
	go func() { defer close(tp.ctrlDone); _ = tp.peer.ServeControl(ctrlLn) }()
	t.Cleanup(func() { tp.close() })
	return tp
}

func (tp *testPeer) close() {
	if tp.closed {
		return
	}
	tp.closed = true
	tp.dataLn.Close()
	tp.ctrlLn.Close()
	tp.srv.Close()
	tp.peer.Close()
	<-tp.dataDone
	<-tp.ctrlDone
}

// learnedBytes encodes a snapshot with Dropped zeroed: migrations and
// resends legitimately drop slot-duplicates (the dedup working), so the
// determinism claim is about the learned state itself.
func learnedBytes(t *testing.T, sn *serve.Snapshot) []byte {
	t.Helper()
	sn.Dropped = 0
	var buf bytes.Buffer
	if err := sn.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// reward is the deterministic environment shared with the clean store.
func reward(device uint64, arm, slot int) float64 {
	return math.Abs(math.Sin(float64(device)*7.3 + float64(arm)*1.7 + float64(slot)*0.13))
}

// waitGoroutines polls until the goroutine count returns to the baseline,
// dumping stacks if it never does.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("%d goroutines alive, want %d; stacks:\n%s",
		runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
}

// TestFleetRebalanceAndChaosKillIsDecisionIdentical is the tentpole's
// acceptance property: a workload driven through a fleet — two peers at
// first, a third joining via a live mid-run rebalance, and every
// connection to one peer chaos-killed mid-run — must make byte-for-byte
// the same decisions as the same script against a single in-process
// store, and the peers' merged final snapshot must equal the single
// store's. No goroutine may outlive the session.
func TestFleetRebalanceAndChaosKillIsDecisionIdentical(t *testing.T) {
	const devices = 16
	const slots = 180
	const rebalanceAt = 60
	const killAt = 120
	arms := []int{10, 20, 30}
	for _, seed := range []int64{5, 91} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			a := startTestPeer(t, "a", serve.Config{}, PeerOptions{})
			b := startTestPeer(t, "b", serve.Config{}, PeerOptions{})
			c := startTestPeer(t, "c", serve.Config{}, PeerOptions{})

			// Peer a's data plane goes through a chaos proxy carrying a
			// seeded fault schedule; the table advertises the proxy.
			proxy, err := chaos.NewProxy(a.info.Addr, chaos.Faults{
				Seed:   seed,
				MinGap: 1024, MaxGap: 4096,
				Delay: 3, Corrupt: 2, Cut: 1,
				MaxDelay: time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			aInfo := a.info
			aInfo.Addr = proxy.Addr()

			tab, err := NewTable(DefaultStripeBits, []PeerInfo{aInfo, b.info})
			if err != nil {
				t.Fatal(err)
			}
			for _, tp := range []*testPeer{a, b} {
				if err := tp.peer.InstallTable(tab); err != nil {
					t.Fatal(err)
				}
			}

			fc, err := NewClient(ClientOptions{
				Table:        tab,
				FrameTimeout: 2 * time.Second,
				BackoffBase:  time.Millisecond,
				BackoffMax:   20 * time.Millisecond,
				MaxAttempts:  20,
			})
			if err != nil {
				t.Fatal(err)
			}

			clean, err := serve.NewStore(serve.Config{Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			coord := &Coordinator{Self: "test-coordinator"}
			roster := []PeerInfo{aInfo, b.info, c.info}

			for slot := 0; slot < slots; slot++ {
				if slot == rebalanceAt {
					tab2, err := coord.Rebalance(roster)
					if err != nil {
						t.Fatalf("rebalance: %v", err)
					}
					if tab2.Epoch != tab.Epoch+1 || len(tab2.Peers) != 3 {
						t.Fatalf("rebalance produced epoch %d over %d peers", tab2.Epoch, len(tab2.Peers))
					}
				}
				if slot == killAt {
					proxy.CutAll()
				}
				for dev := uint64(1); dev <= devices; dev++ {
					got, err := fc.Select(dev, arms)
					if err != nil {
						t.Fatalf("slot %d device %d: %v", slot, dev, err)
					}
					want, sl, err := clean.Select(dev, arms)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("slot %d device %d: fleet selected %d, single store %d (after %d redirects)",
							slot, dev, got, want, fc.Redirects())
					}
					r := reward(dev, got, slot)
					if err := fc.Feedback(dev, got, r); err != nil {
						t.Fatal(err)
					}
					clean.Feedback(dev, want, sl, r)
				}
			}
			if err := fc.Flush(); err != nil {
				t.Fatal(err)
			}
			if fc.Redirects() == 0 {
				t.Fatal("the rebalance never redirected a request; the race this test exists for did not happen")
			}
			if got := fc.Table().Epoch; got != tab.Epoch+1 {
				t.Fatalf("client table at epoch %d after the rebalance, want %d", got, tab.Epoch+1)
			}
			if c.store.Devices() == 0 {
				t.Fatal("the joining peer owns no sessions after the rebalance")
			}

			merged, err := MergeSnapshots(a.store.Snapshot(), b.store.Snapshot(), c.store.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(learnedBytes(t, merged), learnedBytes(t, clean.Snapshot())) {
				t.Fatalf("fleet state diverged from the single store after the rebalance and %d redirects", fc.Redirects())
			}

			if err := fc.Close(); err != nil {
				t.Fatal(err)
			}
			if err := proxy.Close(); err != nil {
				t.Fatal(err)
			}
			a.close()
			b.close()
			c.close()
			waitGoroutines(t, baseline)
		})
	}
}

// TestStaleClientFeedbackIsBouncedAndNeverDoubleApplied is the epoch
// race the redirect surface exists for: a client routing with a
// pre-migration table keeps sending selections and feedback to the old
// owner. The old owner must reject both (NotOwner on Select, a Rejected
// bounce for feedback), the client must re-deliver to the new owner, and
// the re-delivered reports must apply exactly once.
func TestStaleClientFeedbackIsBouncedAndNeverDoubleApplied(t *testing.T) {
	const devices = 12
	const slots = 40
	arms := []int{1, 2, 3}
	a := startTestPeer(t, "a", serve.Config{}, PeerOptions{})
	b := startTestPeer(t, "b", serve.Config{}, PeerOptions{})
	c := startTestPeer(t, "c", serve.Config{}, PeerOptions{})

	tab, err := NewTable(DefaultStripeBits, []PeerInfo{a.info, b.info})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.peer.InstallTable(tab); err != nil {
		t.Fatal(err)
	}
	if err := b.peer.InstallTable(tab); err != nil {
		t.Fatal(err)
	}

	fc, err := NewClient(ClientOptions{Table: tab, FrameTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	clean, err := serve.NewStore(serve.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	drive := func(from, to int) {
		t.Helper()
		for slot := from; slot < to; slot++ {
			for dev := uint64(1); dev <= devices; dev++ {
				got, err := fc.Select(dev, arms)
				if err != nil {
					t.Fatalf("slot %d device %d: %v", slot, dev, err)
				}
				want, sl, err := clean.Select(dev, arms)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("slot %d device %d: fleet selected %d, single store %d", slot, dev, got, want)
				}
				r := reward(dev, got, slot)
				if err := fc.Feedback(dev, got, r); err != nil {
					t.Fatal(err)
				}
				clean.Feedback(dev, want, sl, r)
			}
		}
	}

	drive(0, slots/2)
	// Rebalance c in behind the client's back; the client's table stays
	// at epoch 1.
	coord := &Coordinator{Self: "test-coordinator"}
	tab2, err := coord.Rebalance([]PeerInfo{a.info, b.info, c.info})
	if err != nil {
		t.Fatal(err)
	}
	if tab2.Epoch != 2 {
		t.Fatalf("rebalance committed epoch %d, want 2", tab2.Epoch)
	}
	drive(slots/2, slots)

	if err := fc.Flush(); err != nil {
		t.Fatal(err)
	}
	if fc.Redirects() == 0 {
		t.Fatal("stale client was never redirected")
	}
	if got := fc.Table().Epoch; got != 2 {
		t.Fatalf("client healed to epoch %d, want 2", got)
	}
	redirected := a.peer.m.Redirects.Value() + b.peer.m.Redirects.Value()
	if redirected == 0 {
		t.Fatal("no peer counted a redirect; the stale requests never hit an old owner")
	}

	merged, err := MergeSnapshots(a.store.Snapshot(), b.store.Snapshot(), c.store.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(learnedBytes(t, merged), learnedBytes(t, clean.Snapshot())) {
		t.Fatal("re-delivered feedback was lost or double-applied: fleet state diverged from the single store")
	}
}

// fakeCoordinator drives the control protocol by hand so tests can die
// at a chosen point in the handoff.
type fakeCoordinator struct {
	t     *testing.T
	conns map[string]*controlConn
}

func newFakeCoordinator(t *testing.T, peers ...PeerInfo) *fakeCoordinator {
	t.Helper()
	fc := &fakeCoordinator{t: t, conns: make(map[string]*controlConn)}
	for _, p := range peers {
		cc, err := dialControl(p, "fake-coordinator", 5*time.Second, 5*time.Second, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		fc.conns[p.ID] = cc
	}
	t.Cleanup(fc.close)
	return fc
}

func (fc *fakeCoordinator) close() {
	for id, cc := range fc.conns {
		cc.close()
		delete(fc.conns, id)
	}
}

func (fc *fakeCoordinator) roundTrip(id string, env *fleetEnvelope) *fleetEnvelope {
	fc.t.Helper()
	resp, err := fc.conns[id].roundTrip(env)
	if err != nil {
		fc.t.Fatalf("round trip to %s: %v", id, err)
	}
	return resp
}

// movedStripeAndDevice finds a stripe that moves from old's owner to
// peer gain under tab2, and a device id routed into that stripe.
func movedStripeAndDevice(t *testing.T, tab1, tab2 *Table, gain string) (int, uint64) {
	t.Helper()
	for s := 0; s < tab2.Stripes(); s++ {
		if tab2.Peers[tab2.OwnerOf(s)].ID != gain || tab1.Peers[tab1.OwnerOf(s)].ID == gain {
			continue
		}
		for dev := uint64(1); dev < 100000; dev++ {
			if tab2.StripeOf(serve.RouteKey(dev)) == s {
				return s, dev
			}
		}
	}
	t.Fatalf("no stripe moves to %s between the tables", gain)
	return 0, 0
}

// TestCoordinatorDeathMidHandoff pins the drain resolver's two verdicts.
// Die after Cut but before Commit anywhere: the migration never became
// fact, so the drain aborts and the range stays on the old owner, every
// session intact. Die after committing the gaining peer but before the
// draining peer heard: the migration IS fact, so the drained peer
// resolves by adopting the gaining peer's table and dropping the range —
// one owner per device either way, no device lost.
func TestCoordinatorDeathMidHandoff(t *testing.T) {
	arms := []int{1, 2, 3}
	setup := func(t *testing.T) (a, b *testPeer, tab1, tab2 *Table, stripe int, dev uint64) {
		a = startTestPeer(t, "a", serve.Config{}, PeerOptions{})
		b = startTestPeer(t, "b", serve.Config{}, PeerOptions{})
		var err error
		tab1, err = NewTable(DefaultStripeBits, []PeerInfo{a.info})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.peer.InstallTable(tab1); err != nil {
			t.Fatal(err)
		}
		tab2, err = NewTable(DefaultStripeBits, []PeerInfo{a.info, b.info})
		if err != nil {
			t.Fatal(err)
		}
		tab2.Epoch = 2
		stripe, dev = movedStripeAndDevice(t, tab1, tab2, "b")
		// Seed some learned state for the moving device on a.
		for slot := 0; slot < 10; slot++ {
			arm, sl, err := a.store.Select(dev, arms)
			if err != nil {
				t.Fatal(err)
			}
			a.store.Feedback(dev, arm, sl, reward(dev, arm, slot))
		}
		return a, b, tab1, tab2, stripe, dev
	}
	cut := func(t *testing.T, fc *fakeCoordinator, tab2 *Table, stripe int) *stateMsg {
		t.Helper()
		lo, hi := tab2.StripeRange(stripe)
		resp := fc.roundTrip("a", &fleetEnvelope{Cut: &cutMsg{
			Stripe: stripe, Lo: lo, Hi: hi,
			To: tab2.Peers[tab2.PeerIndex("b")].Addr, ToControl: tab2.Peers[tab2.PeerIndex("b")].Control,
			NewEpoch: tab2.Epoch,
		}})
		if resp.State == nil || resp.State.Err != "" {
			t.Fatalf("cut refused: %+v", resp.State)
		}
		return resp.State
	}
	waitResolved := func(t *testing.T, probe func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if probe() {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatal("drain never resolved")
	}

	t.Run("before any commit: drain aborts, range stays", func(t *testing.T) {
		a, b, _, tab2, stripe, dev := setup(t)
		fc := newFakeCoordinator(t, a.info, b.info)
		state := cut(t, fc, tab2, stripe)
		if len(state.Snap.Devices) == 0 {
			t.Fatal("cut snapshot carries no devices; the test device never landed in the stripe")
		}
		// Mid-drain the device is refused with the migration's epoch.
		if _, _, err := a.store.Select(dev, arms); err == nil {
			t.Fatal("draining stripe still answering selects")
		}
		fc.close() // the coordinator dies; nothing was committed
		waitResolved(t, func() bool {
			_, _, err := a.store.Select(dev, arms)
			return err == nil
		})
		if got := a.peer.Epoch(); got != 1 {
			t.Fatalf("aborted drain left peer a at epoch %d, want 1", got)
		}
		if b.store.Devices() != 0 {
			t.Fatalf("peer b holds %d sessions after an aborted handoff", b.store.Devices())
		}
	})

	t.Run("after the gaining peer committed: drain completes", func(t *testing.T) {
		a, b, _, tab2, stripe, dev := setup(t)
		fc := newFakeCoordinator(t, a.info, b.info)
		state := cut(t, fc, tab2, stripe)
		lo, hi := tab2.StripeRange(stripe)
		if resp := fc.roundTrip("b", &fleetEnvelope{Offer: &offerMsg{
			Stripe: stripe, Lo: lo, Hi: hi, NewEpoch: tab2.Epoch, Snap: state.Snap,
		}}); resp.OfferAck == nil || resp.OfferAck.Err != "" {
			t.Fatalf("offer refused: %+v", resp.OfferAck)
		}
		if resp := fc.roundTrip("b", &fleetEnvelope{Commit: &commitMsg{Table: tab2}}); resp.Done == nil || resp.Done.Err != "" {
			t.Fatalf("commit on b refused: %+v", resp.Done)
		}
		fc.close() // the coordinator dies before telling a
		waitResolved(t, func() bool { return a.peer.Epoch() == tab2.Epoch })
		var no *serve.NotOwnerError
		if _, _, err := a.store.Select(dev, arms); !errors.As(err, &no) {
			t.Fatalf("old owner still answers for the migrated device (err %v)", err)
		} else if no.Owner != b.info.Addr {
			t.Fatalf("old owner redirects to %q, want %q", no.Owner, b.info.Addr)
		}
		if a.store.Devices() != 0 {
			t.Fatalf("old owner still holds %d sessions after resolving the commit", a.store.Devices())
		}
		// The gaining peer serves the device with its learned state: its
		// next selections match a clean store driven through the same
		// script.
		clean, err := serve.NewStore(serve.Config{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for slot := 0; slot < 10; slot++ {
			arm, sl, err := clean.Select(dev, arms)
			if err != nil {
				t.Fatal(err)
			}
			clean.Feedback(dev, arm, sl, reward(dev, arm, slot))
		}
		for slot := 10; slot < 30; slot++ {
			got, gsl, err := b.store.Select(dev, arms)
			if err != nil {
				t.Fatalf("gaining peer refuses the migrated device: %v", err)
			}
			want, sl, err := clean.Select(dev, arms)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("slot %d: migrated session selected %d, clean store %d — state did not survive the handoff", slot, got, want)
			}
			r := reward(dev, got, slot)
			b.store.Feedback(dev, got, gsl, r)
			clean.Feedback(dev, want, sl, r)
		}
	})
}
