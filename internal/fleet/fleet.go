// Package fleet scales the serve layer past one process: it partitions
// the device-id space across N served-style peers, routes requests in
// the client, and rebalances with live snapshot handoff — without losing
// a decision.
//
// Routing contract: the unit of placement is a stripe, a contiguous
// range of the routing-key space (serve.RouteKey of the device id — the
// SplitMix64-mixed id, so sequential ids spread uniformly and every
// stripe carries a statistically even share of devices). A Table names
// the peer set and an epoch; each stripe's owner is chosen by rendezvous
// hashing over the peers, so adding or removing one peer moves only the
// stripes it gains or loses. Tables are totally ordered by epoch: every
// redirect and rejection quotes the epoch that moved the device, and a
// client holding a stale table self-heals by refreshing to at least that
// epoch (or by following the redirect's owner address directly).
//
// Epoch contract: a peer serves a device if and only if its installed
// view says so — the check is an atomic pointer load plus two array
// reads, re-read under the store's shard lock on every request
// (serve.SetOwnership), which is what makes migration cuts exact. A
// request refused because ownership moved is answered with
// NotOwner{epoch, owner} (Select) or bounced back whole in a Rejected
// frame (feedback); the selection-slot dedup from the serve layer makes
// the client's replay against the new owner at-most-once even when both
// the bounce path and the unconfirmed-resend path deliver the same item.
//
// Migration contract: a coordinator moves a stripe by draining it on the
// old owner — install a rejecting view (barring writes to the range),
// cut a per-range snapshot (consistent because the view is re-read under
// each shard lock), ship it over the framed-gob/CRC wire, stage it on
// the new owner — and then committing the bumped table to every peer:
// gaining peers first (restore staged ranges, then own them), draining
// peers second (disown, then drop the moved sessions), bystanders last.
// A coordinator that dies mid-handoff costs nothing: staged state is
// discarded when its connection drops, and a draining peer resolves an
// undecided drain by asking the would-be owner whether it committed —
// if not, the drain aborts and the range stays where it was, every
// session intact.
//
// The acceptance property is the same one every layer below already
// obeys: a workload served by a fleet through rebalances and peer kills
// is decision- and final-snapshot-identical to a single serve.Store run.
package fleet

import (
	"fmt"
	"sort"

	"smartexp3/internal/serve"
)

// PeerInfo names one fleet member: a stable id, the data address its
// serve protocol listens on (what clients dial and redirects quote), and
// the control address its fleet protocol listens on (what coordinators
// and table fetches dial).
type PeerInfo struct {
	ID      string
	Addr    string
	Control string
}

// DefaultStripeBits sizes the partition at 64 stripes — coarse enough
// that a table is a few hundred bytes, fine enough that rebalancing
// across a handful of peers moves load in ~1.6% steps.
const DefaultStripeBits = 6

// maxStripeBits bounds the table size; 16 bits is 65536 stripes, far
// past any sane fleet.
const maxStripeBits = 16

// Table is the versioned partition map: an epoch-numbered peer set plus
// the stripe geometry. Ownership is pure — OwnerOf is a function of
// (Peers, stripe) only — so every process that holds the same table
// routes identically without coordination.
type Table struct {
	Epoch      uint64
	StripeBits uint8
	Peers      []PeerInfo // sorted by ID, unique
}

// NewTable builds a validated epoch-1 bootstrap table over peers.
func NewTable(stripeBits uint8, peers []PeerInfo) (*Table, error) {
	t := &Table{Epoch: 1, StripeBits: stripeBits, Peers: append([]PeerInfo(nil), peers...)}
	sort.Slice(t.Peers, func(i, j int) bool { return t.Peers[i].ID < t.Peers[j].ID })
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Validate rejects malformed tables loudly — a bad table mis-routes
// every request it touches.
func (t *Table) Validate() error {
	if t.Epoch == 0 {
		return fmt.Errorf("fleet: table epoch 0 (0 is the no-table sentinel)")
	}
	if t.StripeBits < 1 || t.StripeBits > maxStripeBits {
		return fmt.Errorf("fleet: stripe bits %d outside [1, %d]", t.StripeBits, maxStripeBits)
	}
	if len(t.Peers) == 0 {
		return fmt.Errorf("fleet: table has no peers")
	}
	for i, p := range t.Peers {
		if p.ID == "" || p.Addr == "" || p.Control == "" {
			return fmt.Errorf("fleet: peer %d (%q) missing id, data address, or control address", i, p.ID)
		}
		if i > 0 && t.Peers[i-1].ID >= p.ID {
			return fmt.Errorf("fleet: peers not strictly sorted by id at %q", p.ID)
		}
	}
	return nil
}

// Stripes returns the stripe count, 1<<StripeBits.
func (t *Table) Stripes() int { return 1 << t.StripeBits }

// shift is the key-to-stripe shift: stripes cut the HIGH bits of the
// routing key, so each stripe is one contiguous key range (the shape
// SnapshotRange moves), while the store's shard routing uses the low
// bits — the two partitions are independent.
func (t *Table) shift() uint { return 64 - uint(t.StripeBits) }

// StripeOf maps a routing key (serve.RouteKey of a device id) to its
// stripe.
func (t *Table) StripeOf(key uint64) int { return int(key >> t.shift()) }

// StripeRange returns stripe s's key range, inclusive on both ends —
// the [lo, hi] arguments serve.Store.SnapshotRange and RemoveRange take.
func (t *Table) StripeRange(s int) (lo, hi uint64) {
	lo = uint64(s) << t.shift()
	return lo, lo | (^uint64(0) >> t.StripeBits)
}

// OwnerOf returns the index into Peers of stripe s's owner, by highest
// rendezvous score. Ties break to the lower index; scores depend only on
// peer ids and the stripe number, so ownership is a pure function of the
// table and moves minimally when the peer set changes.
func (t *Table) OwnerOf(s int) int {
	best, bestScore := 0, uint64(0)
	sm := mix64(uint64(s) + 1)
	for i := range t.Peers {
		score := mix64(fnv64(t.Peers[i].ID) ^ sm)
		if i == 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// Owner resolves a device id straight to its owning peer.
func (t *Table) Owner(deviceID uint64) PeerInfo {
	return t.Peers[t.OwnerOf(t.StripeOf(serve.RouteKey(deviceID)))]
}

// PeerIndex returns the index of the peer with the given id, or -1.
func (t *Table) PeerIndex(id string) int {
	for i := range t.Peers {
		if t.Peers[i].ID == id {
			return i
		}
	}
	return -1
}

// Clone deep-copies the table so a holder can mutate its copy freely.
func (t *Table) Clone() *Table {
	if t == nil {
		return nil
	}
	return &Table{Epoch: t.Epoch, StripeBits: t.StripeBits, Peers: append([]PeerInfo(nil), t.Peers...)}
}

// mix64 is SplitMix64's output function — the same bit mixer the serve
// layer routes shards with, reused here to score rendezvous candidates.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 is FNV-1a over the peer id, the string-to-seed half of the
// rendezvous score.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// MergeSnapshots folds per-peer range snapshots into one store-shaped
// snapshot: devices concatenated and sorted, Dropped summed. Every input
// must agree on version, algorithm, and seed, and no device may appear
// twice — a duplicate means two peers both claim a session, the exact
// split-brain the epoch protocol exists to prevent, so it is an error
// here rather than a silent overwrite.
func MergeSnapshots(snaps ...*serve.Snapshot) (*serve.Snapshot, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("fleet: no snapshots to merge")
	}
	out := &serve.Snapshot{
		Version:   snaps[0].Version,
		Algorithm: snaps[0].Algorithm,
		Seed:      snaps[0].Seed,
	}
	for _, sn := range snaps {
		if sn.Version != out.Version || sn.Algorithm != out.Algorithm || sn.Seed != out.Seed {
			return nil, fmt.Errorf("fleet: snapshots disagree on version/algorithm/seed")
		}
		out.Dropped += sn.Dropped
		out.Devices = append(out.Devices, sn.Devices...)
	}
	sort.Slice(out.Devices, func(i, j int) bool { return out.Devices[i].Device < out.Devices[j].Device })
	for i := 1; i < len(out.Devices); i++ {
		if out.Devices[i-1].Device == out.Devices[i].Device {
			return nil, fmt.Errorf("fleet: device %d appears in two snapshots (split ownership)", out.Devices[i].Device)
		}
	}
	return out, nil
}
