package fleet

// ownView is a peer's compiled answer to "do I own this key?" — the
// fleet's contribution to the warm Select/Feedback path. It is immutable
// once published: table installs, drains, and aborts each compile a
// fresh view and swap one atomic pointer, and the serve store re-reads
// that pointer under each shard lock, so a flipped view is a write
// barrier for the stripes it disowns.
type ownView struct {
	epoch uint64
	shift uint
	// self marks the stripes this peer serves; a draining stripe is not
	// self even while its sessions are still resident.
	self []bool
	// owner is, per stripe, the data address to redirect to ("" for
	// stripes in self, and for the no-table boot state). A draining
	// stripe redirects to the gaining peer before the table says so —
	// clients following the redirect land where the state is going.
	owner []string
	// rejEpoch is, per stripe, the epoch a rejection quotes: the table's
	// epoch normally, the migration's target epoch for a draining stripe
	// (telling stale clients how far to refresh).
	rejEpoch []uint64
}

// check answers one ownership query. A nil view is the boot state: no
// table yet, own nothing, redirect nowhere.
//
//repolint:allocfree via TestOwnershipCheckDoesNotAllocate
func (v *ownView) check(key uint64) (owned bool, epoch uint64, owner string) {
	if v == nil {
		return false, 0, ""
	}
	s := key >> v.shift
	if v.self[s] {
		return true, v.epoch, ""
	}
	return false, v.rejEpoch[s], v.owner[s]
}

// drain is one stripe mid-migration on the draining side: writes barred,
// redirects aimed at the gaining peer, fate (commit or abort) pending.
type drain struct {
	stripe    int
	lo, hi    uint64
	to        string // gaining peer's data address (redirect target)
	toControl string // gaining peer's control address (resolver target)
	newEpoch  uint64 // the table epoch this migration will commit as
}

// compileView builds the immutable view for a table (nil for the boot
// state) as seen by peer self, with the given in-flight drains layered
// on top.
func compileView(tab *Table, self string, drains map[int]*drain) *ownView {
	if tab == nil && len(drains) == 0 {
		return nil
	}
	var v *ownView
	if tab == nil {
		// Drains without a table cannot happen (a drain is cut from an
		// owned stripe, and owning needs a table); guard anyway.
		return nil
	}
	n := tab.Stripes()
	v = &ownView{
		epoch:    tab.Epoch,
		shift:    tab.shift(),
		self:     make([]bool, n),
		owner:    make([]string, n),
		rejEpoch: make([]uint64, n),
	}
	for s := 0; s < n; s++ {
		p := tab.Peers[tab.OwnerOf(s)]
		if p.ID == self {
			v.self[s] = true
		} else {
			v.owner[s] = p.Addr
		}
		v.rejEpoch[s] = tab.Epoch
	}
	for _, d := range drains {
		v.self[d.stripe] = false
		v.owner[d.stripe] = d.to
		v.rejEpoch[d.stripe] = d.newEpoch
	}
	return v
}
