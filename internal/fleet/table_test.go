package fleet

import (
	"testing"
	"time"

	"smartexp3/internal/serve"
)

func testPeers(ids ...string) []PeerInfo {
	ps := make([]PeerInfo, len(ids))
	for i, id := range ids {
		ps[i] = PeerInfo{ID: id, Addr: id + ":data", Control: id + ":ctrl"}
	}
	return ps
}

func mustTable(t *testing.T, bits uint8, ids ...string) *Table {
	t.Helper()
	tab, err := NewTable(bits, testPeers(ids...))
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestTableValidateRejectsMalformedTables(t *testing.T) {
	good := mustTable(t, DefaultStripeBits, "a", "b")
	cases := []struct {
		name string
		mut  func(*Table)
	}{
		{"epoch zero", func(tb *Table) { tb.Epoch = 0 }},
		{"bits zero", func(tb *Table) { tb.StripeBits = 0 }},
		{"bits too big", func(tb *Table) { tb.StripeBits = maxStripeBits + 1 }},
		{"no peers", func(tb *Table) { tb.Peers = nil }},
		{"missing id", func(tb *Table) { tb.Peers[0].ID = "" }},
		{"missing data addr", func(tb *Table) { tb.Peers[1].Addr = "" }},
		{"missing control addr", func(tb *Table) { tb.Peers[1].Control = "" }},
		{"unsorted", func(tb *Table) { tb.Peers[0], tb.Peers[1] = tb.Peers[1], tb.Peers[0] }},
		{"duplicate id", func(tb *Table) { tb.Peers[1].ID = tb.Peers[0].ID }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab := good.Clone()
			tc.mut(tab)
			if err := tab.Validate(); err == nil {
				t.Fatalf("Validate accepted a table with %s", tc.name)
			}
		})
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate rejected a good table: %v", err)
	}
}

// TestStripeRangesTileTheKeySpace pins the stripe geometry: the ranges
// are contiguous, disjoint, inclusive on both ends, and cover every key,
// and StripeOf agrees with them at both edges.
func TestStripeRangesTileTheKeySpace(t *testing.T) {
	for _, bits := range []uint8{1, 3, DefaultStripeBits, 10} {
		tab := mustTable(t, bits, "a", "b", "c")
		if got := tab.Stripes(); got != 1<<bits {
			t.Fatalf("bits %d: Stripes() = %d", bits, got)
		}
		var next uint64
		for s := 0; s < tab.Stripes(); s++ {
			lo, hi := tab.StripeRange(s)
			if lo != next {
				t.Fatalf("bits %d stripe %d: lo %#x, want %#x (a gap or overlap)", bits, s, lo, next)
			}
			if hi < lo {
				t.Fatalf("bits %d stripe %d: hi %#x below lo %#x", bits, s, hi, lo)
			}
			if tab.StripeOf(lo) != s || tab.StripeOf(hi) != s {
				t.Fatalf("bits %d stripe %d: StripeOf disagrees at the range edges", bits, s)
			}
			next = hi + 1 // wraps to 0 after the last stripe
		}
		if next != 0 {
			t.Fatalf("bits %d: ranges stop at %#x instead of covering the key space", bits, next)
		}
	}
}

// TestRendezvousOwnershipIsDeterministicAndMinimal pins the two
// rendezvous properties everything rests on: ownership is a pure
// function of the table (same table, same owners, regardless of input
// order), and changing the peer set only moves the stripes that involve
// the changed peer.
func TestRendezvousOwnershipIsDeterministicAndMinimal(t *testing.T) {
	tab := mustTable(t, DefaultStripeBits, "a", "b", "c")
	shuffled, err := NewTable(DefaultStripeBits, []PeerInfo{
		{ID: "c", Addr: "c:data", Control: "c:ctrl"},
		{ID: "a", Addr: "a:data", Control: "a:ctrl"},
		{ID: "b", Addr: "b:data", Control: "b:ctrl"},
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for s := 0; s < tab.Stripes(); s++ {
		if tab.OwnerOf(s) != shuffled.OwnerOf(s) {
			t.Fatalf("stripe %d: owner depends on peer input order", s)
		}
		counts[tab.Peers[tab.OwnerOf(s)].ID]++
	}
	for _, id := range []string{"a", "b", "c"} {
		if counts[id] == 0 {
			t.Fatalf("peer %s owns no stripes out of %d; rendezvous distribution is broken (got %v)", id, tab.Stripes(), counts)
		}
	}

	grown := mustTable(t, DefaultStripeBits, "a", "b", "c", "d")
	moved := 0
	for s := 0; s < tab.Stripes(); s++ {
		oldID := tab.Peers[tab.OwnerOf(s)].ID
		newID := grown.Peers[grown.OwnerOf(s)].ID
		if oldID != newID {
			if newID != "d" {
				t.Fatalf("stripe %d moved %s -> %s when only d joined; rendezvous moved a stripe between survivors", s, oldID, newID)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("adding a peer moved no stripes; the new peer would idle forever")
	}

	shrunk := mustTable(t, DefaultStripeBits, "a", "b")
	for s := 0; s < tab.Stripes(); s++ {
		oldID := tab.Peers[tab.OwnerOf(s)].ID
		newID := shrunk.Peers[shrunk.OwnerOf(s)].ID
		if oldID != "c" && oldID != newID {
			t.Fatalf("stripe %d moved %s -> %s when only c left", s, oldID, newID)
		}
	}
}

// TestOwnerResolvesThroughRouteKey pins the device-to-peer path: Owner
// must agree with the StripeOf/OwnerOf composition over serve.RouteKey,
// and devices must spread across peers even with sequential ids.
func TestOwnerResolvesThroughRouteKey(t *testing.T) {
	tab := mustTable(t, DefaultStripeBits, "a", "b", "c")
	counts := make(map[string]int)
	for dev := uint64(0); dev < 3000; dev++ {
		p := tab.Owner(dev)
		want := tab.Peers[tab.OwnerOf(tab.StripeOf(serve.RouteKey(dev)))]
		if p != want {
			t.Fatalf("device %d: Owner says %q, composition says %q", dev, p.ID, want.ID)
		}
		counts[p.ID]++
	}
	for _, id := range []string{"a", "b", "c"} {
		if counts[id] < 300 {
			t.Fatalf("peer %s owns only %d of 3000 sequential devices; routing-key mixing failed (got %v)", id, counts[id], counts)
		}
	}
}

func TestMergeSnapshots(t *testing.T) {
	sn := func(seed int64, devs ...uint64) *serve.Snapshot {
		out := &serve.Snapshot{Version: 1, Algorithm: 0, Seed: seed, Dropped: 1}
		for _, d := range devs {
			out.Devices = append(out.Devices, serve.DeviceSnapshot{Device: d})
		}
		return out
	}
	merged, err := MergeSnapshots(sn(42, 5, 1), sn(42, 3), sn(42))
	if err != nil {
		t.Fatal(err)
	}
	if merged.Dropped != 3 {
		t.Fatalf("Dropped = %d, want the inputs' sum 3", merged.Dropped)
	}
	for i, want := range []uint64{1, 3, 5} {
		if merged.Devices[i].Device != want {
			t.Fatalf("merged devices not sorted: %v", merged.Devices)
		}
	}
	if _, err := MergeSnapshots(sn(42, 7), sn(42, 7)); err == nil {
		t.Fatal("merge accepted a device present in two snapshots (split ownership)")
	}
	if _, err := MergeSnapshots(sn(42, 1), sn(43, 2)); err == nil {
		t.Fatal("merge accepted snapshots with different seeds")
	}
	if _, err := MergeSnapshots(); err == nil {
		t.Fatal("merge accepted zero snapshots")
	}
}

// TestCompileViewLayersDrains pins the view semantics: a table compiles
// to self/redirect per stripe at the table's epoch, and a drain overlay
// disowns its stripe, redirecting to the gaining peer at the migration's
// target epoch. A nil table compiles to the own-nothing boot view.
func TestCompileViewLayersDrains(t *testing.T) {
	tab := mustTable(t, 2, "a", "b")
	v := compileView(tab, "a", nil)
	for s := 0; s < tab.Stripes(); s++ {
		lo, _ := tab.StripeRange(s)
		owned, epoch, owner := v.check(lo)
		wantSelf := tab.Peers[tab.OwnerOf(s)].ID == "a"
		if owned != wantSelf {
			t.Fatalf("stripe %d: owned=%v, table says %v", s, owned, wantSelf)
		}
		if epoch != tab.Epoch {
			t.Fatalf("stripe %d: epoch %d, want %d", s, epoch, tab.Epoch)
		}
		if owned && owner != "" {
			t.Fatalf("stripe %d: owned but redirecting to %q", s, owner)
		}
		if !owned && owner != "b:data" {
			t.Fatalf("stripe %d: redirect %q, want b:data", s, owner)
		}
	}

	// Drain the first self-owned stripe and the view must disown it.
	self := -1
	for s := 0; s < tab.Stripes(); s++ {
		if tab.Peers[tab.OwnerOf(s)].ID == "a" {
			self = s
			break
		}
	}
	if self < 0 {
		t.Fatal("peer a owns nothing in a 2-peer 4-stripe table")
	}
	lo, hi := tab.StripeRange(self)
	dv := compileView(tab, "a", map[int]*drain{self: {
		stripe: self, lo: lo, hi: hi, to: "b:data", toControl: "b:ctrl", newEpoch: tab.Epoch + 1,
	}})
	owned, epoch, owner := dv.check(lo)
	if owned {
		t.Fatal("draining stripe still owned")
	}
	if epoch != tab.Epoch+1 || owner != "b:data" {
		t.Fatalf("draining stripe redirects to %q at epoch %d, want b:data at %d", owner, epoch, tab.Epoch+1)
	}

	var nilView *ownView = compileView(nil, "a", nil)
	owned, epoch, owner = nilView.check(123)
	if owned || epoch != 0 || owner != "" {
		t.Fatalf("boot view check = (%v, %d, %q), want own nothing", owned, epoch, owner)
	}
}

// TestOwnershipCheckDoesNotAllocate is the alloc gate behind ownView's
// allocfree marker: the check sits inside the store's warm Select and
// Feedback paths, so it must not allocate.
func TestOwnershipCheckDoesNotAllocate(t *testing.T) {
	tab := mustTable(t, DefaultStripeBits, "a", "b", "c")
	v := compileView(tab, "a", nil)
	var sink bool
	if n := testing.AllocsPerRun(200, func() {
		for key := uint64(0); key < 64; key++ {
			owned, _, _ := v.check(key << 58)
			sink = owned
		}
	}); n != 0 {
		t.Fatalf("ownership check allocates %.1f times per run", n)
	}
	_ = sink
}

func TestFetchTableErrorsWithoutAPeer(t *testing.T) {
	if _, err := FetchTable("127.0.0.1:1", "test", time.Second); err == nil {
		t.Fatal("FetchTable to a dead address returned no error")
	}
}
