package fleet

import "smartexp3/internal/serve"

// The fleet control protocol rides internal/cluster's frame codec (CRC'd
// length-prefixed gob), like the serve and cluster wires. One
// synchronous caller drives one connection: a coordinator holds one
// control connection per peer for the lifetime of a rebalance, and
// everything staged over a connection dies with it — which is what makes
// a dead coordinator free (see the package doc's migration contract).

// fleetProtocolVersion is bumped whenever the control message set
// changes incompatibly; the handshake refuses mismatches.
const fleetProtocolVersion = 1

// fleetEnvelope is the one-of union every control frame carries.
type fleetEnvelope struct {
	Hello      *fleetHelloMsg
	HelloAck   *fleetHelloAckMsg
	TableGet   *tableGetMsg
	TableRes   *tableResMsg
	Cut        *cutMsg
	State      *stateMsg
	Offer      *offerMsg
	OfferAck   *offerAckMsg
	Commit     *commitMsg
	Abort      *abortMsg
	Checkpoint *checkpointMsg
	Done       *doneMsg
	Ping       *fleetPingMsg
	Pong       *fleetPongMsg
}

// fleetHelloMsg opens a control session. From is informational (log
// lines and diagnostics), not authenticated — like the serve and shardd
// wires, the control plane trusts its network.
type fleetHelloMsg struct {
	Version int
	From    string
}

// fleetHelloAckMsg accepts or rejects the session, naming the answering
// peer and the epoch of its installed table (0 when it has none).
type fleetHelloAckMsg struct {
	Version int
	ID      string
	Epoch   uint64
	Err     string
}

// tableGetMsg asks for the peer's installed table. It doubles as the
// drain resolver's commit probe: a gaining peer that committed answers
// with the new epoch.
type tableGetMsg struct{}

// tableResMsg answers a tableGetMsg; Table is nil when the peer has
// none.
type tableResMsg struct {
	Table *Table
}

// cutMsg tells the old owner to drain one stripe: bar writes to
// [Lo, Hi], cut a consistent range snapshot, and redirect the stripe's
// traffic to To (data address) quoting NewEpoch until the migration
// commits or aborts. ToControl is where the drain resolver asks about
// the gaining peer's fate if the coordinator dies before deciding.
type cutMsg struct {
	Stripe    int
	Lo, Hi    uint64
	To        string
	ToControl string
	NewEpoch  uint64
}

// stateMsg answers a cutMsg with the drained range's snapshot. A
// non-empty Err refuses the cut (stripe not owned, bad range) without
// poisoning the session.
type stateMsg struct {
	Stripe int
	Snap   *serve.Snapshot
	Err    string
}

// offerMsg stages one drained stripe on its new owner. The state is NOT
// applied yet: it is held against this connection and restored only by a
// commitMsg, or discarded by an abortMsg or the connection closing.
type offerMsg struct {
	Stripe   int
	Lo, Hi   uint64
	NewEpoch uint64
	Snap     *serve.Snapshot
}

// offerAckMsg confirms a stage. A non-empty Err refuses it.
type offerAckMsg struct {
	Stripe int
	Err    string
}

// commitMsg finishes the rebalance on one peer: restore every stripe
// staged on this connection, install Table, and drop every range this
// connection drained. The coordinator sends it gaining-first,
// draining-second, bystanders-last, so at every instant each device has
// at most one owner.
type commitMsg struct {
	Table *Table
}

// abortMsg cancels the rebalance on one peer: staged state is discarded
// and drains are lifted, the stripes staying with their old owners.
type abortMsg struct{}

// checkpointMsg asks the peer to save its store snapshot to its
// configured snapshot path — the operator's pre-kill flush, and the
// smoke test's way of making a SIGKILL lossless.
type checkpointMsg struct{}

// doneMsg acknowledges a commit, abort, or checkpoint; Err reports
// failure without closing the session.
type doneMsg struct {
	Err string
}

// fleetPingMsg keeps an idle control connection alive under the frame
// timeout.
type fleetPingMsg struct {
	Seq uint64
}

// fleetPongMsg answers a ping.
type fleetPongMsg struct {
	Seq uint64
}
