package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"smartexp3/internal/cluster"
	"smartexp3/internal/serve"
)

// PeerOptions configures one fleet member's control plane.
type PeerOptions struct {
	// ID is the peer's stable name — the rendezvous-hash identity, so it
	// must match the id the tables carry for this peer.
	ID string
	// SnapshotPath is where a Checkpoint request saves the store; empty
	// refuses checkpoints.
	SnapshotPath string
	// FrameTimeout bounds each control frame read and write; zero means
	// 2 minutes, negative disables (synchronous pipes in tests).
	FrameTimeout time.Duration
	// ResolveAttempts and ResolveDelay shape the drain resolver: how
	// many times, and how far apart, an orphaned drain probes the
	// gaining peer before concluding the migration died un-committed.
	// Zero means 3 attempts, 200ms apart.
	ResolveAttempts int
	ResolveDelay    time.Duration
	// Metrics, when set, receives the peer-side fleet counters
	// (Redirects, TableEpoch). Nil means a private unregistered set.
	Metrics *Metrics
}

func (o PeerOptions) frameTimeout() time.Duration {
	switch {
	case o.FrameTimeout < 0:
		return 0
	case o.FrameTimeout == 0:
		return 2 * time.Minute
	default:
		return o.FrameTimeout
	}
}

func (o PeerOptions) resolveAttempts() int {
	if o.ResolveAttempts <= 0 {
		return 3
	}
	return o.ResolveAttempts
}

func (o PeerOptions) resolveDelay() time.Duration {
	if o.ResolveDelay <= 0 {
		return 200 * time.Millisecond
	}
	return o.ResolveDelay
}

// Peer is one fleet member's control plane wrapped around its
// serve.Store: it owns the partition view the store's hot path consults,
// answers the fleet control protocol (table fetch, drain, stage, commit,
// abort, checkpoint), and resolves drains orphaned by a dead
// coordinator. The data plane — the serve protocol itself — stays a
// plain serve.Server on the same store; the fleet layer only decides
// which devices that server may touch.
type Peer struct {
	store *serve.Store
	opts  PeerOptions
	m     *Metrics

	view atomic.Pointer[ownView]

	mu     sync.Mutex
	table  *Table
	drains map[int]*drain

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// NewPeer wires a fleet view onto store: from here on the store answers
// only for stripes the installed table assigns to opts.ID, redirecting
// everything else. With no table installed yet the peer owns nothing —
// install a bootstrap table (InstallTable) or fetch one from a running
// peer (FetchTable) before serving traffic.
func NewPeer(store *serve.Store, opts PeerOptions) (*Peer, error) {
	if opts.ID == "" {
		return nil, fmt.Errorf("fleet: peer needs an id")
	}
	p := &Peer{
		store:  store,
		opts:   opts,
		m:      opts.Metrics,
		drains: make(map[int]*drain),
		conns:  make(map[net.Conn]struct{}),
	}
	if p.m == nil {
		p.m = newMetrics()
	}
	store.SetOwnership(p.ownership)
	return p, nil
}

// ownership is the store's hot-path hook: one atomic view load, two
// array reads, and — only on the cold not-owned branch — one counter
// increment.
func (p *Peer) ownership(key uint64) (bool, uint64, string) {
	owned, epoch, owner := p.view.Load().check(key)
	if !owned {
		p.m.Redirects.Inc()
	}
	return owned, epoch, owner
}

// Store returns the wrapped serve store.
func (p *Peer) Store() *serve.Store { return p.store }

// ID returns the peer's stable name.
func (p *Peer) ID() string { return p.opts.ID }

// Table returns a copy of the installed partition table, nil before any.
func (p *Peer) Table() *Table {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.table.Clone()
}

// Epoch returns the installed table's epoch, 0 before any.
func (p *Peer) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.table == nil {
		return 0
	}
	return p.table.Epoch
}

// InstallTable adopts tab if it is newer than the installed table (or
// the first). Stale tables are ignored without error — epochs are the
// total order, and the newest table always wins.
func (p *Peer) InstallTable(tab *Table) error {
	if err := tab.Validate(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.table != nil && tab.Epoch <= p.table.Epoch {
		return nil
	}
	p.installLocked(tab.Clone())
	return nil
}

// installLocked publishes tab and recompiles the view. Caller holds
// p.mu.
func (p *Peer) installLocked(tab *Table) {
	p.table = tab
	p.view.Store(compileView(tab, p.opts.ID, p.drains))
	p.m.TableEpoch.Set(int64(tab.Epoch))
}

// ServeControl accepts control connections until the listener closes,
// then drains the connection goroutines, mirroring serve.Server.Serve.
func (p *Peer) ServeControl(ln net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.track(conn, true)
			defer p.track(conn, false)
			defer conn.Close()
			_ = p.serveControl(conn)
		}()
	}
}

// Close tears down every live control connection; pair with closing the
// listener.
func (p *Peer) Close() {
	p.connMu.Lock()
	defer p.connMu.Unlock()
	for conn := range p.conns {
		conn.Close()
	}
}

func (p *Peer) track(conn net.Conn, add bool) {
	p.connMu.Lock()
	defer p.connMu.Unlock()
	if add {
		p.conns[conn] = struct{}{}
	} else {
		delete(p.conns, conn)
	}
}

// connState is what one control connection has in flight: stripes staged
// onto this peer and stripes drained off it. Both die with the
// connection — staged state is discarded outright, drains go through the
// resolver — which is what bounds the blast radius of a dead
// coordinator to "nothing happened".
type connState struct {
	staged map[int]*offerMsg
	drains map[int]*drain
}

// serveControl runs one control connection's request loop.
func (p *Peer) serveControl(conn net.Conn) error {
	wt := p.opts.frameTimeout()
	fr := cluster.NewFrameReader(bufio.NewReaderSize(conn, 64<<10))
	bw := bufio.NewWriterSize(conn, 64<<10)
	fw := cluster.NewFrameWriter(bw)
	send := func(env *fleetEnvelope) error {
		if wt > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(wt)); err != nil {
				return err
			}
		}
		if err := fw.Encode(env); err != nil {
			return err
		}
		return bw.Flush()
	}
	recv := func(env *fleetEnvelope) error {
		if wt > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(wt)); err != nil {
				return err
			}
		}
		return fr.Decode(env)
	}

	var env fleetEnvelope
	if err := recv(&env); err != nil {
		return err
	}
	if env.Hello == nil {
		return fmt.Errorf("fleet: first control frame is not a hello")
	}
	if env.Hello.Version != fleetProtocolVersion {
		_ = send(&fleetEnvelope{HelloAck: &fleetHelloAckMsg{
			Version: fleetProtocolVersion, ID: p.opts.ID,
			Err: fmt.Sprintf("fleet protocol version %d, want %d", env.Hello.Version, fleetProtocolVersion),
		}})
		return fmt.Errorf("fleet: control peer speaks protocol %d, want %d", env.Hello.Version, fleetProtocolVersion)
	}
	if err := send(&fleetEnvelope{HelloAck: &fleetHelloAckMsg{
		Version: fleetProtocolVersion, ID: p.opts.ID, Epoch: p.Epoch(),
	}}); err != nil {
		return err
	}

	st := &connState{staged: make(map[int]*offerMsg), drains: make(map[int]*drain)}
	defer p.connClosed(st)
	for {
		env = fleetEnvelope{}
		if err := recv(&env); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch {
		case env.TableGet != nil:
			if err := send(&fleetEnvelope{TableRes: &tableResMsg{Table: p.Table()}}); err != nil {
				return err
			}
		case env.Cut != nil:
			if err := send(&fleetEnvelope{State: p.handleCut(st, env.Cut)}); err != nil {
				return err
			}
		case env.Offer != nil:
			if err := send(&fleetEnvelope{OfferAck: p.handleOffer(st, env.Offer)}); err != nil {
				return err
			}
		case env.Commit != nil:
			if err := send(&fleetEnvelope{Done: p.handleCommit(st, env.Commit.Table)}); err != nil {
				return err
			}
		case env.Abort != nil:
			p.handleAbort(st)
			if err := send(&fleetEnvelope{Done: &doneMsg{}}); err != nil {
				return err
			}
		case env.Checkpoint != nil:
			if err := send(&fleetEnvelope{Done: p.handleCheckpoint()}); err != nil {
				return err
			}
		case env.Ping != nil:
			if err := send(&fleetEnvelope{Pong: &fleetPongMsg{Seq: env.Ping.Seq}}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fleet: unexpected control frame")
		}
	}
}

// handleCut drains one stripe: record the drain, publish the rejecting
// view (barring writes to the range), then cut the range snapshot — in
// that order, which is what makes the cut exact (see
// serve.Store.SetOwnership).
func (p *Peer) handleCut(st *connState, cut *cutMsg) *stateMsg {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.table == nil {
		return &stateMsg{Stripe: cut.Stripe, Err: "no table installed"}
	}
	if cut.Stripe < 0 || cut.Stripe >= p.table.Stripes() {
		return &stateMsg{Stripe: cut.Stripe, Err: fmt.Sprintf("stripe %d outside the table's %d stripes", cut.Stripe, p.table.Stripes())}
	}
	if lo, hi := p.table.StripeRange(cut.Stripe); lo != cut.Lo || hi != cut.Hi {
		return &stateMsg{Stripe: cut.Stripe, Err: "cut range disagrees with the stripe geometry (stripe-bits mismatch?)"}
	}
	if p.table.Peers[p.table.OwnerOf(cut.Stripe)].ID != p.opts.ID {
		return &stateMsg{Stripe: cut.Stripe, Err: "not the stripe's owner"}
	}
	if _, busy := p.drains[cut.Stripe]; busy {
		return &stateMsg{Stripe: cut.Stripe, Err: "stripe already draining"}
	}
	if cut.NewEpoch <= p.table.Epoch {
		return &stateMsg{Stripe: cut.Stripe, Err: fmt.Sprintf("migration epoch %d not newer than installed %d", cut.NewEpoch, p.table.Epoch)}
	}
	d := &drain{stripe: cut.Stripe, lo: cut.Lo, hi: cut.Hi, to: cut.To, toControl: cut.ToControl, newEpoch: cut.NewEpoch}
	p.drains[cut.Stripe] = d
	st.drains[cut.Stripe] = d
	p.view.Store(compileView(p.table, p.opts.ID, p.drains))
	return &stateMsg{Stripe: cut.Stripe, Snap: p.store.SnapshotRange(cut.Lo, cut.Hi)}
}

// handleOffer stages one incoming stripe against this connection. The
// snapshot is validated now — version, algorithm, seed, per-device state
// — so commit, which must not half-fail, applies a vetted payload.
func (p *Peer) handleOffer(st *connState, off *offerMsg) *offerAckMsg {
	if off.Snap == nil {
		return &offerAckMsg{Stripe: off.Stripe, Err: "offer carries no snapshot"}
	}
	if off.Snap.Version != serve.SnapshotVersion {
		return &offerAckMsg{Stripe: off.Stripe, Err: fmt.Sprintf("snapshot version %d, want %d", off.Snap.Version, serve.SnapshotVersion)}
	}
	cfg := p.store.Config()
	if off.Snap.Algorithm != cfg.Algorithm || off.Snap.Seed != cfg.Seed {
		return &offerAckMsg{Stripe: off.Stripe, Err: "snapshot algorithm/seed does not match this store"}
	}
	for i := range off.Snap.Devices {
		ds := &off.Snap.Devices[i]
		if k := serve.RouteKey(ds.Device); k < off.Lo || k > off.Hi {
			return &offerAckMsg{Stripe: off.Stripe, Err: fmt.Sprintf("device %d outside the offered range", ds.Device)}
		}
		if err := ds.State.Validate(); err != nil {
			return &offerAckMsg{Stripe: off.Stripe, Err: err.Error()}
		}
	}
	p.mu.Lock()
	st.staged[off.Stripe] = off
	p.mu.Unlock()
	return &offerAckMsg{Stripe: off.Stripe}
}

// handleCommit finishes a rebalance on this peer: restore the stripes
// staged on this connection, then install the new table (flipping the
// view, so restored stripes become servable only after their state is
// in place), then drop the ranges this connection drained (invisible
// since the view flip).
func (p *Peer) handleCommit(st *connState, tab *Table) *doneMsg {
	if tab == nil {
		return &doneMsg{Err: "commit carries no table"}
	}
	if err := tab.Validate(); err != nil {
		return &doneMsg{Err: err.Error()}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, off := range st.staged {
		if err := p.store.RestoreRange(off.Snap); err != nil {
			return &doneMsg{Err: err.Error()}
		}
	}
	for s, d := range st.drains {
		if p.drains[s] == d {
			delete(p.drains, s)
		}
	}
	if p.table == nil || tab.Epoch > p.table.Epoch {
		p.installLocked(tab.Clone())
	} else {
		p.view.Store(compileView(p.table, p.opts.ID, p.drains))
	}
	for _, d := range st.drains {
		p.store.RemoveRange(d.lo, d.hi)
	}
	st.staged = make(map[int]*offerMsg)
	st.drains = make(map[int]*drain)
	return &doneMsg{}
}

// handleAbort cancels the connection's in-flight rebalance: staged state
// is discarded, drains are lifted, and the stripes stay where they were.
func (p *Peer) handleAbort(st *connState) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for s, d := range st.drains {
		if p.drains[s] == d {
			delete(p.drains, s)
		}
	}
	st.staged = make(map[int]*offerMsg)
	st.drains = make(map[int]*drain)
	p.view.Store(compileView(p.table, p.opts.ID, p.drains))
}

// handleCheckpoint saves the store snapshot to the configured path.
func (p *Peer) handleCheckpoint() *doneMsg {
	if p.opts.SnapshotPath == "" {
		return &doneMsg{Err: "peer has no snapshot path"}
	}
	if err := p.store.SaveFile(p.opts.SnapshotPath); err != nil {
		return &doneMsg{Err: err.Error()}
	}
	return &doneMsg{}
}

// connClosed runs when a control connection dies: its staged state is
// discarded (commit can only arrive on the connection that staged it),
// and each drain it left undecided is resolved against the gaining
// peer's fate.
func (p *Peer) connClosed(st *connState) {
	p.mu.Lock()
	drains := st.drains
	st.staged = make(map[int]*offerMsg)
	st.drains = make(map[int]*drain)
	p.mu.Unlock()
	for _, d := range drains {
		p.resolveDrain(d)
	}
}

// resolveDrain decides an orphaned drain the way the coordinator no
// longer can: ask the gaining peer whether the migration's epoch ever
// committed. If it did, this peer is the only one that missed the memo —
// commit locally (adopt the gaining peer's table, drop the range). If
// the gaining peer answers with an older epoch, or never answers, the
// migration died un-committed: lift the drain and keep serving the
// range, every session intact. The window where the gaining peer is
// still processing its own commit is covered by the retry spacing.
func (p *Peer) resolveDrain(d *drain) {
	attempts, delay := p.opts.resolveAttempts(), p.opts.resolveDelay()
	timeout := p.opts.frameTimeout()
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	for try := 0; try < attempts; try++ {
		if try > 0 {
			time.Sleep(delay)
		}
		tab, err := FetchTable(d.toControl, p.opts.ID, timeout)
		if err != nil {
			continue
		}
		if tab != nil && tab.Epoch >= d.newEpoch {
			p.mu.Lock()
			if p.drains[d.stripe] == d {
				delete(p.drains, d.stripe)
			}
			if p.table == nil || tab.Epoch > p.table.Epoch {
				p.installLocked(tab)
			} else {
				p.view.Store(compileView(p.table, p.opts.ID, p.drains))
			}
			p.store.RemoveRange(d.lo, d.hi)
			p.mu.Unlock()
			return
		}
		break // a definite answer below the migration epoch: not committed
	}
	p.mu.Lock()
	if p.drains[d.stripe] == d {
		delete(p.drains, d.stripe)
		p.view.Store(compileView(p.table, p.opts.ID, p.drains))
	}
	p.mu.Unlock()
}
