package fleet

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"smartexp3/internal/cluster"
	"smartexp3/internal/serve"
)

// fuzzConn replays a fixed byte stream as a net.Conn: reads come from
// the fuzz input, writes vanish, deadlines are accepted and ignored —
// the same trick the serve layer's fuzz target uses to drive a full
// connection loop without sockets.
type fuzzConn struct {
	r io.Reader
}

func (c *fuzzConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c *fuzzConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *fuzzConn) Close() error                     { return nil }
func (c *fuzzConn) LocalAddr() net.Addr              { return fuzzAddr{} }
func (c *fuzzConn) RemoteAddr() net.Addr             { return fuzzAddr{} }
func (c *fuzzConn) SetDeadline(time.Time) error      { return nil }
func (c *fuzzConn) SetReadDeadline(time.Time) error  { return nil }
func (c *fuzzConn) SetWriteDeadline(time.Time) error { return nil }

type fuzzAddr struct{}

func (fuzzAddr) Network() string { return "fuzz" }
func (fuzzAddr) String() string  { return "fuzz" }

// encodeFleetFrames renders a control request sequence exactly as a real
// coordinator would: one persistent encoder per connection.
func encodeFleetFrames(tb testing.TB, envs ...*fleetEnvelope) []byte {
	tb.Helper()
	var buf bytes.Buffer
	fw := cluster.NewFrameWriter(&buf)
	for _, env := range envs {
		if err := fw.Encode(env); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

// fuzzFleetSeeds is the checked-in seed corpus for FuzzFleetWire: a full
// well-formed migration session, each frame class alone, refusals the
// handlers must answer rather than die on, and framing corruption.
func fuzzFleetSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	hello := &fleetEnvelope{Hello: &fleetHelloMsg{Version: fleetProtocolVersion, From: "fuzz"}}
	tab, err := NewTable(2, []PeerInfo{
		{ID: "fz", Addr: "fz:1", Control: "fz:2"},
		{ID: "other", Addr: "other:1", Control: "other:2"},
	})
	if err != nil {
		tb.Fatal(err)
	}
	tab2 := tab.Clone()
	tab2.Epoch = 2
	// A stripe the fuzz peer owns, so the cut is accepted and the
	// session walks the full drain path.
	ownStripe := -1
	for s := 0; s < tab.Stripes(); s++ {
		if tab.Peers[tab.OwnerOf(s)].ID == "fz" {
			ownStripe = s
			break
		}
	}
	lo, hi := tab.StripeRange(ownStripe)
	// An empty range cut of a real store stamps version/algorithm/seed
	// the way a genuine migration payload would.
	seedStore, err := serve.NewStore(serve.Config{Seed: 42})
	if err != nil {
		tb.Fatal(err)
	}
	snap := seedStore.SnapshotRange(1, 0)
	// The drain's resolver target must refuse connections instantly, not
	// hang a fuzz iteration in name resolution.
	cut := &fleetEnvelope{Cut: &cutMsg{Stripe: ownStripe, Lo: lo, Hi: hi, To: "127.0.0.1:1", ToControl: "127.0.0.1:1", NewEpoch: 2}}
	seeds := [][]byte{
		encodeFleetFrames(tb, hello),
		encodeFleetFrames(tb, hello, &fleetEnvelope{TableGet: &tableGetMsg{}}),
		// The full migration session: cut an owned stripe, stage a
		// stripe, commit the bumped table, checkpoint, ping.
		encodeFleetFrames(tb, hello,
			cut,
			&fleetEnvelope{Offer: &offerMsg{Stripe: 0, Lo: 0, Hi: ^uint64(0) >> 2, NewEpoch: 2, Snap: snap}},
			&fleetEnvelope{Commit: &commitMsg{Table: tab2}},
			&fleetEnvelope{Checkpoint: &checkpointMsg{}},
			&fleetEnvelope{Ping: &fleetPingMsg{Seq: 9}}),
		// Cut then abort: the drain must lift.
		encodeFleetFrames(tb, hello, cut, &fleetEnvelope{Abort: &abortMsg{}}),
		// Refusals a conforming codec can still deliver.
		encodeFleetFrames(tb, &fleetEnvelope{Hello: &fleetHelloMsg{Version: 99}}),
		encodeFleetFrames(tb, &fleetEnvelope{Ping: &fleetPingMsg{Seq: 1}}), // ping before hello
		encodeFleetFrames(tb, hello, &fleetEnvelope{}),                     // empty union
		encodeFleetFrames(tb, hello, &fleetEnvelope{Cut: &cutMsg{Stripe: 999, NewEpoch: 2}}),
		encodeFleetFrames(tb, hello, &fleetEnvelope{Cut: &cutMsg{Stripe: ownStripe, Lo: lo + 1, Hi: hi, NewEpoch: 2}}),
		encodeFleetFrames(tb, hello, &fleetEnvelope{Offer: &offerMsg{Stripe: 0, Snap: &serve.Snapshot{Version: 99}}}),
		encodeFleetFrames(tb, hello, &fleetEnvelope{Offer: &offerMsg{Stripe: 0}}), // no snapshot
		encodeFleetFrames(tb, hello, &fleetEnvelope{Commit: &commitMsg{}}),        // no table
		encodeFleetFrames(tb, hello, &fleetEnvelope{Commit: &commitMsg{Table: &Table{Epoch: 0}}}),
		encodeFleetFrames(tb, hello, &fleetEnvelope{Pong: &fleetPongMsg{Seq: 1}}),
		// Framing corruptions.
		{0, 0, 0, 0},
		{0xff, 0xff, 0xff, 0xff, 0},
	}
	trunc := encodeFleetFrames(tb, hello, cut)
	seeds = append(seeds, trunc[:len(trunc)-4])
	return seeds
}

// fuzzPeerTable is the table every FuzzFleetWire iteration starts from.
func fuzzPeerTable(tb testing.TB) *Table {
	tb.Helper()
	tab, err := NewTable(2, []PeerInfo{
		{ID: "fz", Addr: "fz:1", Control: "fz:2"},
		{ID: "other", Addr: "other:1", Control: "other:2"},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return tab
}

// FuzzFleetWire throws arbitrary byte streams at a live control
// connection loop. The invariants: no panic, the loop terminates, any
// drains the stream left behind resolve when the connection dies (the
// resolver's abort path — the gaining address is garbage), and the peer
// stays coherent: its installed table still validates and its store
// still snapshots.
func FuzzFleetWire(f *testing.F) {
	for _, seed := range fuzzFleetSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// A fresh peer per iteration: fuzzed commits install arbitrary
		// valid tables, and epochs only move forward, so reuse would let
		// one iteration shadow the next's fixture.
		store, err := serve.NewStore(serve.Config{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPeer(store, PeerOptions{
			ID:           "fz",
			FrameTimeout: -1,
			// A fuzzed cut leaves a drain pointing at a garbage address;
			// the resolver must fail fast, not retry for real-world
			// intervals.
			ResolveAttempts: 1,
			ResolveDelay:    time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.InstallTable(fuzzPeerTable(t)); err != nil {
			t.Fatal(err)
		}
		_ = p.serveControl(&fuzzConn{r: bytes.NewReader(data)})
		if tab := p.Table(); tab != nil {
			if err := tab.Validate(); err != nil {
				t.Fatalf("fuzzed connection installed an invalid table: %v", err)
			}
		}
		if sn := store.SnapshotRange(0, ^uint64(0)); sn == nil {
			t.Fatal("store cannot snapshot after fuzzed connection")
		}
	})
}

// TestWriteFuzzFleetWireCorpus regenerates the checked-in seed corpus
// under testdata/fuzz/FuzzFleetWire when UPDATE_FUZZ_CORPUS=1.
func TestWriteFuzzFleetWireCorpus(t *testing.T) {
	if os.Getenv("UPDATE_FUZZ_CORPUS") == "" {
		t.Skip("set UPDATE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzFleetWire")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzFleetSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
