package fleet

import (
	"bytes"
	"strings"
	"testing"

	"smartexp3/internal/obsv"
)

// TestMetricsExposition pins the fleet counter set's Prometheus surface:
// every metric registers, moves, and renders as parseable exposition
// text under its documented name — the same text a fleetd peer serves on
// /metrics.
func TestMetricsExposition(t *testing.T) {
	reg := obsv.NewRegistry()
	m := NewMetrics(reg)
	m.Redirects.Inc()
	m.TableEpoch.Set(3)
	m.Migrations.Add(2)
	m.MigratedDevices.Add(5)
	m.MigratedBytes.Add(1024)
	m.MigrationLatency.Observe(1_000_000)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := obsv.CheckPrometheusText(strings.NewReader(text)); err != nil {
		t.Fatalf("fleet metrics are not parseable Prometheus text: %v\n%s", err, text)
	}
	for _, want := range []string{
		"fleet_redirects_total 1",
		"fleet_table_epoch 3",
		"fleet_migrations_total 2",
		"fleet_migrated_devices_total 5",
		"fleet_migrated_bytes_total 1024",
		"fleet_migration_latency_ns_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestUnregisteredMetricsAreInert proves the no-registry default every
// Peer and Coordinator falls back to: all record sites valid, nothing
// exported, nothing shared.
func TestUnregisteredMetricsAreInert(t *testing.T) {
	m := newMetrics()
	m.Redirects.Inc()
	m.TableEpoch.Set(9)
	m.MigrationLatency.Observe(1)
	if m.Redirects.Value() != 1 || m.TableEpoch.Value() != 9 {
		t.Fatal("unregistered counters must still record")
	}
	if other := newMetrics(); other.Redirects.Value() != 0 {
		t.Fatal("unregistered sets must not share state")
	}
}
