// Package determinism_clean is a pure-path package that derives all
// randomness from explicit seeds and waives its one map iteration with a
// written reason; the golden file for it is empty.
package determinism_clean

import (
	"sort"

	"smartexp3/internal/rngutil"
)

// Draw derives a value from an explicit seed through rngutil.
func Draw(seed int64) float64 { return rngutil.New(seed).Float64() }

// Keys extracts map keys and sorts them before anything order-sensitive
// can happen.
func Keys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	//repolint:ignore determinism order cannot reach results: the keys are sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
