// Package seedpurity_clean derives every generator from rngutil's child
// seeds and sources; the golden file for it is empty.
package seedpurity_clean

import (
	"math/rand"

	"smartexp3/internal/rngutil"
)

// Derived builds RNG state only through the sanctioned package.
func Derived(seed, id int64) *rand.Rand {
	return rand.New(rngutil.NewSource(rngutil.ChildSeed(seed, id)))
}
