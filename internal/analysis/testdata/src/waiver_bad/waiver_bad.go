// Package waiver_bad misspells, under-specifies, and misplaces repolint
// directives; every one of them must surface as a waiver diagnostic.
package waiver_bad

//repolint:ignores determinism the verb has a typo
func A() {}

//repolint:ignore determinsim the check name has a typo
func B() {}

//repolint:ignore determinism
func C() {}

//repolint:ignore
func D() {}

//repolint:allocfree
var counter int

//repolint:allocfree via Too Many Words
func E() {}

// F carries a well-formed waiver so the fixture also proves the parser
// accepts what it should; nothing fires on F, so nothing is masked.
//
//repolint:ignore determinism order cannot reach results: nothing here iterates at all
func F() { counter++ }
