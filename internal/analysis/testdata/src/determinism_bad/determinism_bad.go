// Package determinism_bad trips every rule of the determinism check; it
// is analyzed as a pure-path package by the golden tests.
package determinism_bad

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock on the pure path.
func Stamp() int64 { return time.Now().UnixNano() }

// Age measures elapsed wall time.
func Age(t0 time.Time) time.Duration { return time.Since(t0) }

// Draw consumes ambient process-global RNG state.
func Draw() float64 { return rand.Float64() }

// Fresh constructs an RNG source outside the sanctioned RNG package.
func Fresh(seed int64) rand.Source { return rand.NewSource(seed) }

// Sum folds over a map in iteration order with no waiver.
func Sum(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
