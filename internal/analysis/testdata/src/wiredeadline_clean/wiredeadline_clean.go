// Package wiredeadline_clean arms a write deadline before every write —
// or waives the one codec that delegates arming to its callers; the
// golden file for it is empty.
package wiredeadline_clean

import (
	"net"
	"time"
)

// Send arms a deadline, then writes.
func Send(c net.Conn, p []byte) error {
	if err := c.SetWriteDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := c.Write(p)
	return err
}

// Relay arms both deadlines at once via SetDeadline.
func Relay(c net.Conn, p []byte) error {
	if err := c.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := c.Write(p)
	return err
}

// Raw is a transport-agnostic helper whose callers arm the deadline.
func Raw(c net.Conn, p []byte) error {
	//repolint:ignore wiredeadline codec helper: both exported callers in this fixture arm a deadline first
	_, err := c.Write(p)
	return err
}
