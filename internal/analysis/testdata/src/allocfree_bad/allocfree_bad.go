// Package allocfree_bad marks one function allocfree and then commits
// every allocation the check knows how to spot.
package allocfree_bad

import "fmt"

type point struct{ x, y float64 }

// sink exists so Push can box an argument into an interface parameter.
func sink(v any) { _ = v }

type ring struct {
	buf []float64
	sum float64
}

// Push is marked allocfree but trips every allocation source.
//
//repolint:allocfree
func (r *ring) Push(v float64, name string) error {
	r.buf = append(r.buf, v)
	scratch := make([]float64, 4)
	scratch[0] = v
	p := new(float64)
	*p = v
	pt := point{x: v, y: v}
	read := func() float64 { return r.sum }
	r.sum += read()
	label := name + "!"
	boxed := any(pt)
	sink(v)
	_, _, _ = scratch, label, boxed
	return fmt.Errorf("ring rejected %s", name)
}
