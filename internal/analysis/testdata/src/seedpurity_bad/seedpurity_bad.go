// Package seedpurity_bad constructs RNG state from ad hoc sources
// instead of rngutil's replicable ones.
package seedpurity_bad

import "math/rand"

// Fresh builds both a raw source and a generator over it.
func Fresh(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
