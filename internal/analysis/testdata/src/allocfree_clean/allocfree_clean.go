// Package allocfree_clean marks a function that sticks to arithmetic,
// indexing, and one justified capacity-guarded append; the golden file
// for it is empty.
package allocfree_clean

type acc struct {
	buf []float64
	sum float64
}

// Add is marked allocfree and stays within retained capacity.
//
//repolint:allocfree
func (a *acc) Add(v float64) {
	a.sum += v
	if len(a.buf) < cap(a.buf) {
		//repolint:ignore allocfree append into a buffer the constructor pre-sized; the length guard keeps it within capacity
		a.buf = append(a.buf, v)
		return
	}
	if n := len(a.buf); n > 0 {
		a.buf[n-1] = v
	}
}

// Mean is unmarked, so its allocations are nobody's business.
func (a *acc) Mean() float64 {
	tmp := make([]float64, len(a.buf))
	copy(tmp, a.buf)
	var s float64
	for _, v := range tmp {
		s += v
	}
	if len(tmp) == 0 {
		return 0
	}
	return s / float64(len(tmp))
}
