// Package wiredeadline_bad writes to connections and frame writers
// without ever arming a write deadline; it is analyzed as a wire package
// by the golden tests.
package wiredeadline_bad

import (
	"net"

	"smartexp3/internal/cluster"
)

// Send writes a frame with no deadline anywhere in the function.
func Send(c net.Conn, p []byte) error {
	_, err := c.Write(p)
	return err
}

// Broadcast spawns writer goroutines; each closure is its own unit and
// arms nothing.
func Broadcast(conns []net.Conn, p []byte) {
	for _, c := range conns {
		go func(c net.Conn) {
			c.Write(p)
		}(c)
	}
}

// Flush pushes an envelope through the cluster frame writer, again with
// no deadline.
func Flush(fw *cluster.FrameWriter) error {
	return fw.Encode(nil)
}
