package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive comments understood by the suite. Anything else spelled
// "//repolint:..." is reported as a diagnostic rather than ignored, so a
// typo ("//repolint:ignores") cannot silently disable enforcement.
const (
	directivePrefix  = "//repolint:"
	ignoreDirective  = "ignore"
	markerDirective  = "allocfree"
	markerViaKeyword = "via"
)

// AllocMarker is one //repolint:allocfree marker bound to a function
// declaration.
type AllocMarker struct {
	Decl *ast.FuncDecl
	Name string // "Func" or "Type.Method" (pointer receivers stripped)
	Via  string // covering AllocsPerRun test for indirect gates, or ""
	Pos  token.Position
}

// waiverKey identifies one waived (line, check) pair within a file.
type waiverKey struct {
	file  string
	line  int
	check string
}

// directives holds one package's parsed repolint comments.
type directives struct {
	waivers map[waiverKey]bool
	markers []AllocMarker
	diags   []Diagnostic
}

// waived reports whether check diagnostics at pos are suppressed.
func (d *directives) waived(check string, pos token.Position) bool {
	return d.waivers[waiverKey{pos.Filename, pos.Line, check}]
}

// parseDirectives scans every comment in the package for repolint
// directives: waivers, allocfree markers, and malformed variants of
// either (which become diagnostics).
func parseDirectives(p *Package) *directives {
	d := &directives{waivers: make(map[waiverKey]bool)}
	for _, f := range p.Files {
		markerGroups := make(map[*ast.CommentGroup]bool)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			markerGroups[fd.Doc] = true
			for _, c := range fd.Doc.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d.parseOne(p, c, fd)
			}
		}
		for _, cg := range f.Comments {
			if markerGroups[cg] {
				continue
			}
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d.parseOne(p, c, nil)
			}
		}
	}
	return d
}

// parseOne parses a single "//repolint:..." comment. fd is the function
// declaration whose doc comment contains it, or nil for free-standing
// comments (where an allocfree marker is an error).
func (d *directives) parseOne(p *Package, c *ast.Comment, fd *ast.FuncDecl) {
	pos := p.Fset.Position(c.Pos())
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	fields := strings.Fields(rest)
	verb := ""
	if len(fields) > 0 {
		verb = fields[0]
	}
	switch verb {
	case ignoreDirective:
		d.parseIgnore(p, c, pos, fields[1:])
	case markerDirective:
		d.parseMarker(p, pos, fields[1:], fd)
	default:
		// "//repolint:ignores", "//repolint:" and the like: a
		// directive-shaped prefix with an unknown verb.
		d.diags = append(d.diags, Diagnostic{
			Pos:     pos,
			Check:   CheckWaiver,
			Message: "unknown repolint directive " + strings.TrimSpace(c.Text) + " (want //repolint:ignore or //repolint:allocfree)",
		})
	}
}

func (d *directives) parseIgnore(p *Package, c *ast.Comment, pos token.Position, args []string) {
	if len(args) == 0 {
		d.diags = append(d.diags, Diagnostic{
			Pos:     pos,
			Check:   CheckWaiver,
			Message: "waiver names no check: want //repolint:ignore <check> <reason>",
		})
		return
	}
	check := args[0]
	if !knownCheck(check) {
		d.diags = append(d.diags, Diagnostic{
			Pos:     pos,
			Check:   CheckWaiver,
			Message: "waiver names unknown check " + check + " (have " + checkNames(Checks()) + ")",
		})
		return
	}
	if len(args) == 1 {
		d.diags = append(d.diags, Diagnostic{
			Pos:     pos,
			Check:   CheckWaiver,
			Message: "waiver for " + check + " carries no reason: every waiver must say why the finding does not apply",
		})
		return
	}
	d.waivers[waiverKey{pos.Filename, pos.Line, check}] = true
	if d.ownLine(p, c) {
		d.waivers[waiverKey{pos.Filename, pos.Line + 1, check}] = true
	}
}

func (d *directives) parseMarker(p *Package, pos token.Position, args []string, fd *ast.FuncDecl) {
	if fd == nil {
		d.diags = append(d.diags, Diagnostic{
			Pos:     pos,
			Check:   CheckWaiver,
			Message: "orphaned //repolint:allocfree marker: markers must sit in a function declaration's doc comment",
		})
		return
	}
	via := ""
	switch {
	case len(args) == 0:
	case len(args) == 2 && args[0] == markerViaKeyword:
		via = args[1]
	default:
		d.diags = append(d.diags, Diagnostic{
			Pos:     pos,
			Check:   CheckWaiver,
			Message: "malformed allocfree marker: want //repolint:allocfree or //repolint:allocfree via TestName",
		})
		return
	}
	d.markers = append(d.markers, AllocMarker{
		Decl: fd,
		Name: funcName(fd),
		Via:  via,
		Pos:  pos,
	})
}

// ownLine reports whether comment c is the only thing on its source
// line, in which case its waiver also covers the following line.
func (d *directives) ownLine(p *Package, c *ast.Comment) bool {
	pos := p.Fset.Position(c.Pos())
	src, ok := p.Src[pos.Filename]
	if !ok {
		return false
	}
	// Scan from the start of the line to the comment: whitespace only
	// means the comment stands alone.
	off := pos.Offset
	for i := off - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true // first line of the file
}

// funcName renders a declaration's name as "Func" or "Type.Method".
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers ("weightSet[T]") index the base identifier.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// MarkersInFile returns the allocfree markers declared in one parsed
// file, without needing type information. The reconciliation test uses
// this to treat markers as the single source of truth for the
// zero-alloc set.
func MarkersInFile(fset *token.FileSet, f *ast.File) []AllocMarker {
	var out []AllocMarker
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix+markerDirective)
			if !ok {
				continue
			}
			args := strings.Fields(rest)
			via := ""
			if len(args) == 2 && args[0] == markerViaKeyword {
				via = args[1]
			} else if len(args) != 0 {
				continue // malformed; parseDirectives reports it
			}
			out = append(out, AllocMarker{
				Decl: fd,
				Name: funcName(fd),
				Via:  via,
				Pos:  fset.Position(c.Pos()),
			})
		}
	}
	return out
}
