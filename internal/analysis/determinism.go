package analysis

import (
	"go/ast"
	"go/types"
)

// globalRandFuncs are the math/rand top-level functions that draw from
// the package-global source — ambient state no seed controls.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

// globalRandV2Funcs is the same set for math/rand/v2.
var globalRandV2Funcs = map[string]bool{
	"Int": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "N": true,
}

// runDeterminism enforces the Section II determinism contract in the
// pure-path packages: no wall clocks, no ambient RNG state, no map
// iteration order reaching results (waivable when the fold is provably
// order-independent).
func runDeterminism(p *Package, cfg *Config) []Diagnostic {
	if !containsPath(cfg.PurePackages, p.Path) {
		return nil
	}
	var out []Diagnostic
	diag := func(n ast.Node, msg string) {
		out = append(out, Diagnostic{Pos: p.Fset.Position(n.Pos()), Check: CheckDeterminism, Message: msg})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				pkg, name, ok := pkgFuncOf(p, n.Fun)
				if !ok {
					return true
				}
				switch pkg {
				case "time":
					if name == "Now" || name == "Since" {
						diag(n, "time."+name+" reads the wall clock; pure-path results must be a function of seeds only")
					}
				case "math/rand":
					switch {
					case globalRandFuncs[name]:
						diag(n, "rand."+name+" draws from the global math/rand source; use the run's rngutil stream")
					case name == "NewSource" && p.Path != cfg.RNGPackage:
						diag(n, "rand.NewSource outside "+cfg.RNGPackage+"; derive streams with rngutil.ChildSeed + rngutil.NewSource")
					}
				case "math/rand/v2":
					switch {
					case globalRandV2Funcs[name]:
						diag(n, "rand/v2."+name+" draws from the global math/rand/v2 source; use the run's rngutil stream")
					case (name == "NewPCG" || name == "NewChaCha8") && p.Path != cfg.RNGPackage:
						diag(n, "rand/v2."+name+" outside "+cfg.RNGPackage+"; derive streams with rngutil.ChildSeed + rngutil.NewSource")
					}
				}
			case *ast.RangeStmt:
				if tv, ok := p.Info.Types[n.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						diag(n, "range over map: iteration order is runtime-randomized; waive only with a reason stating order cannot reach results")
					}
				}
			}
			return true
		})
	}
	return out
}
