package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"smartexp3/internal/analysis"
)

// allocGate is one test function that calls testing.AllocsPerRun, with
// its body source retained for name matching.
type allocGate struct {
	name string
	body string
}

// dirTests collects one package directory's parse results.
type dirTests struct {
	markers []analysis.AllocMarker
	gates   []allocGate
}

// TestAllocfreeMarkersAreGated is the reconciliation satellite: the
// //repolint:allocfree markers are the single source of truth for the
// zero-alloc contract, so every marked function must be pinned by an
// AllocsPerRun gate. A marker written "via TestName" requires that exact
// test to exist in the same package and call testing.AllocsPerRun; a
// bare marker requires some AllocsPerRun-calling test in the package to
// invoke the function by name. A marker that fails here is a contract
// with no enforcement — add the gate or name the covering test.
func TestAllocfreeMarkersAreGated(t *testing.T) {
	fset := token.NewFileSet()
	perDir := make(map[string]*dirTests)
	root := filepath.Join("..", "..")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		dir := filepath.Dir(path)
		dt := perDir[dir]
		if dt == nil {
			dt = &dirTests{}
			perDir[dir] = dt
		}
		if strings.HasSuffix(path, "_test.go") {
			dt.gates = append(dt.gates, gatesInFile(fset, f)...)
			return nil
		}
		dt.markers = append(dt.markers, analysis.MarkersInFile(fset, f)...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	total := 0
	for dir, dt := range perDir {
		for _, m := range dt.markers {
			total++
			if m.Via != "" {
				g := findGate(dt.gates, m.Via)
				if g == nil {
					t.Errorf("%s: %s is marked allocfree via %s, but no test of that name in %s calls testing.AllocsPerRun",
						m.Pos, m.Name, m.Via, dir)
				}
				continue
			}
			if !anyGateMentions(dt.gates, m.Name) {
				t.Errorf("%s: %s is marked allocfree, but no AllocsPerRun test in %s calls it; add a gate or point the marker at one with `via TestName`",
					m.Pos, m.Name, dir)
			}
		}
	}
	if total == 0 {
		t.Fatal("found no //repolint:allocfree markers anywhere in the repository — the walk is broken")
	}
}

func findGate(gates []allocGate, name string) *allocGate {
	for i := range gates {
		if gates[i].name == name {
			return &gates[i]
		}
	}
	return nil
}

// anyGateMentions reports whether an AllocsPerRun test invokes the
// marked function: "Type.Method" matches any ".Method(" call, a plain
// function matches "Name(".
func anyGateMentions(gates []allocGate, marker string) bool {
	call := marker
	if i := strings.LastIndex(marker, "."); i >= 0 {
		call = "." + marker[i+1:]
	}
	call += "("
	for _, g := range gates {
		if strings.Contains(g.body, call) {
			return true
		}
	}
	return false
}

// gatesInFile extracts the test functions that call
// testing.AllocsPerRun, keeping each body's source rendering for the
// name matching above.
func gatesInFile(fset *token.FileSet, f *ast.File) []allocGate {
	var out []allocGate
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "Test") {
			continue
		}
		calls := false
		var body strings.Builder
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if id, ok := n.X.(*ast.Ident); ok {
					if id.Name == "testing" && n.Sel.Name == "AllocsPerRun" {
						calls = true
					}
					body.WriteString(id.Name + "." + n.Sel.Name + "(")
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok {
					body.WriteString(id.Name + "(")
				}
			}
			return true
		})
		if calls {
			out = append(out, allocGate{name: fd.Name.Name, body: body.String()})
		}
	}
	return out
}
