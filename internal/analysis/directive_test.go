package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc builds a Package with syntax and retained source only — the
// directive parser never consults type information.
func parseSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture source: %v", err)
	}
	return &Package{
		Path:  "fixture/inline",
		Fset:  fset,
		Files: []*ast.File{f},
		Src:   map[string][]byte{"fix.go": []byte(src)},
	}
}

// TestWaiverParserDiagnostics feeds the parser every malformed directive
// shape and asserts each one surfaces as a waiver diagnostic — a typo
// must never silently disable enforcement.
func TestWaiverParserDiagnostics(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantMsg string
	}{
		{
			name:    "unknown verb",
			src:     "package x\n\n//repolint:ignores determinism some reason\nfunc A() {}\n",
			wantMsg: "unknown repolint directive",
		},
		{
			name:    "bare prefix",
			src:     "package x\n\n//repolint:\nfunc A() {}\n",
			wantMsg: "unknown repolint directive",
		},
		{
			name:    "unknown check",
			src:     "package x\n\n//repolint:ignore determinsim some reason\nfunc A() {}\n",
			wantMsg: "unknown check determinsim",
		},
		{
			name:    "missing reason",
			src:     "package x\n\n//repolint:ignore determinism\nfunc A() {}\n",
			wantMsg: "carries no reason",
		},
		{
			name:    "missing check",
			src:     "package x\n\n//repolint:ignore\nfunc A() {}\n",
			wantMsg: "names no check",
		},
		{
			name:    "orphaned marker",
			src:     "package x\n\n//repolint:allocfree\nvar n int\n",
			wantMsg: "orphaned //repolint:allocfree marker",
		},
		{
			name:    "malformed via",
			src:     "package x\n\n//repolint:allocfree via Too Many Words\nfunc A() {}\n",
			wantMsg: "malformed allocfree marker",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := parseDirectives(parseSrc(t, tc.src))
			if len(d.diags) != 1 {
				t.Fatalf("got %d diagnostics %v, want exactly 1", len(d.diags), d.diags)
			}
			got := d.diags[0]
			if got.Check != CheckWaiver {
				t.Errorf("diagnostic filed under %q, want %q", got.Check, CheckWaiver)
			}
			if !strings.Contains(got.Message, tc.wantMsg) {
				t.Errorf("message %q does not mention %q", got.Message, tc.wantMsg)
			}
			if len(d.waivers) != 0 {
				t.Errorf("malformed directive registered waivers %v", d.waivers)
			}
		})
	}
}

// TestWaiverLineCoverage pins the suppression geometry: a waiver on its
// own line covers that line and the next; a trailing waiver covers only
// its own line.
func TestWaiverLineCoverage(t *testing.T) {
	src := `package x

func A(m map[int]int) int {
	var s int
	//repolint:ignore determinism order cannot reach results: sum is commutative
	for _, v := range m {
		s += v
	}
	for k := range m { //repolint:ignore determinism order cannot reach results: delete is order-free
		delete(m, k)
	}
	return s
}
`
	d := parseDirectives(parseSrc(t, src))
	if len(d.diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", d.diags)
	}
	at := func(line int) bool {
		return d.waived(CheckDeterminism, token.Position{Filename: "fix.go", Line: line})
	}
	// Own-line waiver on line 5 covers lines 5 and 6.
	if !at(5) || !at(6) {
		t.Error("own-line waiver does not cover the following line")
	}
	// Trailing waiver on line 9 covers line 9 only.
	if !at(9) {
		t.Error("trailing waiver does not cover its own line")
	}
	if at(10) {
		t.Error("trailing waiver leaked onto the following line")
	}
	// A waiver never crosses checks.
	if d.waived(CheckAllocFree, token.Position{Filename: "fix.go", Line: 5}) {
		t.Error("waiver for determinism suppressed allocfree")
	}
}

// TestMarkerParsing pins the marker side of the parser: bare markers,
// via-markers, and receiver naming.
func TestMarkerParsing(t *testing.T) {
	src := `package x

type ring struct{ n int }

//repolint:allocfree
func (r *ring) Push() { r.n++ }

// Pop is documented prose followed by a marker.
//
//repolint:allocfree via TestPopAllocs
func (r ring) Pop() int { return r.n }

//repolint:allocfree
func Reset() {}
`
	d := parseDirectives(parseSrc(t, src))
	if len(d.diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", d.diags)
	}
	if len(d.markers) != 3 {
		t.Fatalf("got %d markers, want 3", len(d.markers))
	}
	byName := make(map[string]AllocMarker)
	for _, m := range d.markers {
		byName[m.Name] = m
	}
	if m, ok := byName["ring.Push"]; !ok || m.Via != "" {
		t.Errorf("ring.Push marker missing or has via %q", m.Via)
	}
	if m, ok := byName["ring.Pop"]; !ok || m.Via != "TestPopAllocs" {
		t.Errorf("ring.Pop marker missing or via %q, want TestPopAllocs", m.Via)
	}
	if _, ok := byName["Reset"]; !ok {
		t.Error("plain function marker missing")
	}

	// MarkersInFile (the syntax-only view the reconciliation test uses)
	// must agree with the full parse.
	p := parseSrc(t, src)
	mif := MarkersInFile(p.Fset, p.Files[0])
	if len(mif) != 3 {
		t.Fatalf("MarkersInFile found %d markers, want 3", len(mif))
	}
}
