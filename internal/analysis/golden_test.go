package analysis_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"smartexp3/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// sharedImporter builds one go-list dependency closure for the whole test
// binary: listing is by far the slowest step, and every fixture package
// type-checks against the same closure.
var sharedImporter = sync.OnceValues(func() (*analysis.Importer, error) {
	return analysis.NewImporter("../..", "./...")
})

// fixtureConfig scopes the checks the way DefaultConfig scopes them for
// the real tree: determinism applies to the determinism fixtures,
// wiredeadline to the wiredeadline fixtures, and rngutil stays the
// sanctioned RNG package so the clean fixtures can use it.
func fixtureConfig() analysis.Config {
	return analysis.Config{
		PurePackages: []string{"fixture/determinism_bad", "fixture/determinism_clean"},
		WirePackages: []string{"fixture/wiredeadline_bad", "fixture/wiredeadline_clean"},
		RNGPackage:   "smartexp3/internal/rngutil",
		FrameWriters: []string{"smartexp3/internal/cluster.FrameWriter"},
	}
}

// TestGolden runs the full check suite over every fixture package under
// testdata/src and compares the rendered diagnostics with the golden
// file of the same name. Each check has a _bad fixture (firing) and a
// _clean fixture (empty golden); waiver_bad covers the directive parser's
// own diagnostics. Run with -update to rewrite the goldens.
func TestGolden(t *testing.T) {
	im, err := sharedImporter()
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fixtureConfig()
	checks := analysis.Checks()
	for _, ent := range entries {
		name := ent.Name()
		t.Run(name, func(t *testing.T) {
			files, err := filepath.Glob(filepath.Join("testdata", "src", name, "*.go"))
			if err != nil || len(files) == 0 {
				t.Fatalf("fixture %s has no Go files (%v)", name, err)
			}
			pkg, err := im.Check("fixture/"+name, files...)
			if err != nil {
				t.Fatalf("type-checking fixture: %v", err)
			}
			var b strings.Builder
			for _, d := range analysis.Analyze([]*analysis.Package{pkg}, &cfg, checks) {
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
			got := b.String()
			goldenPath := filepath.Join("testdata", "golden", name+".txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics diverge from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestGoldenCoversEveryCheck guards the corpus itself: every registered
// check must appear in at least one golden file (a firing case) and
// every check must also have a fixture whose golden is empty (a clean
// case), so a future check cannot land without both.
func TestGoldenCoversEveryCheck(t *testing.T) {
	fired := make(map[string]bool)
	clean := make(map[string]bool)
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join("testdata", "golden", ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		base := strings.TrimSuffix(ent.Name(), ".txt")
		if len(data) == 0 {
			for _, c := range analysis.Checks() {
				if strings.HasPrefix(base, c.Name+"_") {
					clean[c.Name] = true
				}
			}
			continue
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			open := strings.Index(line, "[")
			close := strings.Index(line, "]")
			if open >= 0 && close > open {
				fired[line[open+1:close]] = true
			}
		}
	}
	for _, c := range analysis.Checks() {
		if !fired[c.Name] {
			t.Errorf("check %s has no firing golden case", c.Name)
		}
		if !clean[c.Name] {
			t.Errorf("check %s has no clean (empty-golden) fixture", c.Name)
		}
	}
	if !fired[analysis.CheckWaiver] {
		t.Error("the waiver pseudo-check has no firing golden case")
	}
}

// TestSelectChecks pins the -checks flag surface: valid subsets resolve
// in registry order, unknown names error.
func TestSelectChecks(t *testing.T) {
	cs, err := analysis.SelectChecks("seedpurity, determinism")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].Name != analysis.CheckSeedPurity || cs[1].Name != analysis.CheckDeterminism {
		t.Fatalf("SelectChecks returned %v", cs)
	}
	if _, err := analysis.SelectChecks("determinism,nosuchcheck"); err == nil {
		t.Fatal("unknown check name did not error")
	}
}
