// Package analysis is repolint's analyzer suite: a stdlib-only static
// pass (go/parser, go/ast, go/types — no golang.org/x/tools) that
// enforces, at the source level, the two contracts the whole stack rests
// on and that runtime tests can only catch after the fact:
//
//   - the determinism contract: aggregates are a pure function of seeds
//     (doc.go, ROADMAP), so the pure-path packages must not read wall
//     clocks, draw from ambient RNG state, or let map iteration order
//     reach results;
//   - the zero-allocation contract: the warm Select/draw paths allocate
//     nothing, gated dynamically by testing.AllocsPerRun and benchguard,
//     and statically here by flagging allocation constructs in marked
//     functions.
//
// # Checks
//
// determinism — in the pure-path packages (Config.PurePackages; by
// default core, sim, game, dist, stats, rngutil and netmodel) flags
// calls to time.Now/time.Since, calls to the global-source math/rand
// (and math/rand/v2) top-level functions, rand.NewSource outside the
// sanctioned RNG package, and `for range` statements over maps. Map
// ranges whose order provably cannot reach results (commutative folds:
// max, sum, set membership) are waived with a written reason.
//
// allocfree — functions carrying a `//repolint:allocfree` marker in
// their doc comment are scanned for AST-level allocation sources: the
// new/make/append builtins, composite literals, closures capturing
// variables, string concatenation, string↔[]byte conversions, interface
// conversions of non-pointer concrete values (explicit conversions and
// arguments passed to interface-typed parameters), and any call into
// fmt or errors. The check is deliberately conservative — append into a
// retained buffer or a composite literal on a cold error path may well
// be allocation-free or irrelevant in practice — so real hot paths
// carry waivers with the justification written next to the construct,
// and the dynamic AllocsPerRun gates stay the ground truth (the
// reconciliation test in this package binds every marker to one).
//
// A marker is either `//repolint:allocfree` or
// `//repolint:allocfree via TestName`, where TestName names the
// AllocsPerRun-calling test that covers the function indirectly (for
// helpers gated through a caller's test, e.g. the sim warm path gated
// by TestWorkspaceSteadyStateAllocs). Markers are only valid on
// function declarations; an orphaned marker is itself a diagnostic.
//
// wiredeadline — in the wire packages (Config.WirePackages; by default
// cluster, serve and fleet) flags any connection or frame write occurring in a
// function that never arms a write deadline. A "connection write" is a
// Write call on a value whose type also has SetWriteDeadline (net.Conn
// and friends); a "frame write" is a call to a FrameWriter write method
// (Config.FrameWriters). Arming means calling SetWriteDeadline or
// SetDeadline anywhere in the same function (function literals are
// separate functions). Transport-agnostic helpers whose callers arm the
// deadline carry waivers saying so.
//
// seedpurity — everywhere outside the sanctioned RNG package
// (Config.RNGPackage, by default rngutil), flags construction of RNG
// state that does not flow through rngutil: rand.NewSource,
// math/rand/v2 generator constructors, and rand.New whose argument is
// not a *rngutil.Source. Seeds are meant to be derived with
// rngutil.ChildSeed and turned into streams with rngutil.NewSource, so
// every stream is a pure function of the run's base seed.
//
// Test files are exempt from all checks: the loader analyzes only the
// non-test compilation of each package, which is where the contracts
// live (tests are free to use wall clocks, ad-hoc RNGs and map order).
//
// # Waivers
//
// A diagnostic is suppressed by a waiver comment:
//
//	//repolint:ignore <check> <reason>
//
// placed either at the end of the offending line or alone on the line
// directly above it. The check name must be one of the registered
// checks and the reason must be non-empty; a malformed waiver (unknown
// check, missing reason) is itself a diagnostic, so a typo cannot
// silently disable enforcement. Each waiver suppresses only the named
// check on its target line — two different checks firing on one line
// need two waivers.
//
// # Loading strategy
//
// The suite stays dependency-free by borrowing the go command's own
// build graph instead of reimplementing (or vendoring) a package
// loader: NewImporter shells out once to
//
//	go list -deps -export -json=ImportPath,Dir,GoFiles,Export,Standard,Module <patterns>
//
// which yields, for every package in the dependency closure, its file
// set and the path of its compiled export data in the build cache
// (compiling anything stale as a side effect). Packages of the main
// module are then parsed with go/parser (comments retained, sources
// kept for directive parsing) and type-checked with go/types against an
// importer.ForCompiler("gc", lookup) whose lookup serves dependency
// export data straight from that listing. Dependencies are never
// re-type-checked from source, imports resolve exactly as the compiler
// resolved them, and the only external requirement is the go toolchain
// the build already needs. The same importer also type-checks the
// fixture corpus under testdata against the real module's packages.
package analysis
