package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the check that fired, and a
// message. Rendered as "file:line: [check] message".
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Check, d.Message)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	Path   string // import path
	Module string // module path ("" for fixtures)
	Fset   *token.FileSet
	Files  []*ast.File
	Src    map[string][]byte // file name (as in Fset) → source, for directive parsing
	Types  *types.Package
	Info   *types.Info
}

// Config scopes the checks to the tree under analysis.
type Config struct {
	// PurePackages are the import paths where the determinism check
	// applies: packages whose results must be a pure function of seeds.
	PurePackages []string
	// WirePackages are the import paths where the wiredeadline check
	// applies.
	WirePackages []string
	// RNGPackage is the sanctioned RNG package: exempt from seedpurity
	// (and from determinism's NewSource rule), and the home of the
	// Source type whose values are legal rand.New arguments elsewhere.
	RNGPackage string
	// FrameWriters lists fully qualified type names
	// ("path/to/pkg.Type") whose write methods count as wire writes for
	// the wiredeadline check.
	FrameWriters []string
}

// DefaultConfig returns the configuration for this repository's tree,
// given its module path.
func DefaultConfig(module string) Config {
	pure := []string{"core", "sim", "game", "dist", "stats", "rngutil", "netmodel"}
	cfg := Config{
		RNGPackage:   module + "/internal/rngutil",
		WirePackages: []string{module + "/internal/cluster", module + "/internal/serve", module + "/internal/fleet"},
		FrameWriters: []string{module + "/internal/cluster.FrameWriter"},
	}
	for _, p := range pure {
		cfg.PurePackages = append(cfg.PurePackages, module+"/internal/"+p)
	}
	return cfg
}

// Check is one registered analyzer.
type Check struct {
	Name string
	Doc  string
	Run  func(*Package, *Config) []Diagnostic
}

// Checks returns the full registry in stable order.
func Checks() []Check {
	return []Check{
		{
			Name: CheckDeterminism,
			Doc:  "pure-path packages must not read clocks, ambient RNG state, or map order",
			Run:  runDeterminism,
		},
		{
			Name: CheckAllocFree,
			Doc:  "functions marked //repolint:allocfree must avoid allocation constructs",
			Run:  runAllocFree,
		},
		{
			Name: CheckWireDeadline,
			Doc:  "wire packages must arm a write deadline in every function that writes",
			Run:  runWireDeadline,
		},
		{
			Name: CheckSeedPurity,
			Doc:  "RNG state must be constructed from rngutil seeds and sources",
			Run:  runSeedPurity,
		},
	}
}

// Registered check names. CheckWaiver is the pseudo-check that reports
// malformed directives; it cannot be waived.
const (
	CheckDeterminism  = "determinism"
	CheckAllocFree    = "allocfree"
	CheckWireDeadline = "wiredeadline"
	CheckSeedPurity   = "seedpurity"
	CheckWaiver       = "waiver"
)

// knownCheck reports whether name may appear in a waiver.
func knownCheck(name string) bool {
	for _, c := range Checks() {
		if c.Name == name {
			return true
		}
	}
	return false
}

// SelectChecks resolves a comma-separated check list ("" means all).
func SelectChecks(list string) ([]Check, error) {
	all := Checks()
	if list == "" {
		return all, nil
	}
	var out []Check
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, c := range all {
			if c.Name == name {
				out = append(out, c)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown check %q (have %s)", name, checkNames(all))
		}
	}
	return out, nil
}

func checkNames(cs []Check) string {
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return strings.Join(names, ", ")
}

// Analyze runs the given checks over the packages, applies waivers, and
// returns the surviving diagnostics in deterministic order. Malformed
// directives are reported under the "waiver" pseudo-check and cannot be
// waived away.
func Analyze(pkgs []*Package, cfg *Config, checks []Check) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		dirs := parseDirectives(p)
		out = append(out, dirs.diags...)
		for _, c := range checks {
			for _, d := range c.Run(p, cfg) {
				if !dirs.waived(d.Check, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return out
}

func containsPath(paths []string, path string) bool {
	for _, p := range paths {
		if p == path {
			return true
		}
	}
	return false
}

// pkgFuncOf resolves a selector expression to (imported package path,
// selected name) when its operand names an imported package.
func pkgFuncOf(p *Package, e ast.Expr) (string, string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// namedTypeString returns the fully qualified "pkgpath.Name" of t after
// stripping pointers, or "" if t is not a named type.
func namedTypeString(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
