package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runAllocFree scans every //repolint:allocfree-marked function for
// AST-level allocation sources. The check is conservative by design:
// some flagged constructs (append into retained capacity, composite
// literals that never escape) are allocation-free at runtime — those
// carry waivers whose reasons document why, and the AllocsPerRun gates
// bound to each marker (see the reconciliation test) remain the
// dynamic ground truth.
func runAllocFree(p *Package, cfg *Config) []Diagnostic {
	dirs := parseDirectives(p)
	var out []Diagnostic
	for _, m := range dirs.markers {
		if m.Decl.Body == nil {
			continue
		}
		out = append(out, allocSources(p, m)...)
	}
	return out
}

func allocSources(p *Package, m AllocMarker) []Diagnostic {
	var out []Diagnostic
	diag := func(n ast.Node, msg string) {
		out = append(out, Diagnostic{
			Pos:     p.Fset.Position(n.Pos()),
			Check:   CheckAllocFree,
			Message: m.Name + " is marked allocfree but " + msg,
		})
	}
	ast.Inspect(m.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkAllocCall(p, n, diag)
		case *ast.CompositeLit:
			diag(n, "builds a composite literal (may escape to the heap)")
		case *ast.FuncLit:
			if captured := capturedVar(p, m.Decl, n); captured != "" {
				diag(n, "creates a closure capturing "+captured+" (closure + captures escape to the heap)")
			}
		case *ast.BinaryExpr:
			// Constant folds ("a"+"b") materialize at compile time.
			if n.Op == token.ADD && isStringType(p, n) {
				if tv, ok := p.Info.Types[n]; ok && tv.Value == nil {
					diag(n, "concatenates strings (allocates the result)")
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(p, n.Lhs[0]) {
				diag(n, "concatenates strings with += (allocates the result)")
			}
		}
		return true
	})
	return out
}

// checkAllocCall flags allocation-source call expressions: the
// new/make/append builtins, fmt/errors calls, allocating conversions,
// and non-pointer concrete arguments passed to interface parameters.
func checkAllocCall(p *Package, call *ast.CallExpr, diag func(ast.Node, string)) {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new", "make", "append":
				diag(call, "calls "+b.Name()+" (allocates unless capacity is retained)")
			}
			return
		}
	}
	if pkg, name, ok := pkgFuncOf(p, fun); ok && (pkg == "fmt" || pkg == "errors") {
		diag(call, "calls "+pkg+"."+name+" (formats and allocates)")
		return
	}
	tv, ok := p.Info.Types[fun]
	if !ok {
		return
	}
	if tv.IsType() {
		checkConversion(p, call, tv.Type, diag)
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	checkInterfaceArgs(p, call, sig, diag)
}

// checkConversion flags explicit conversions that allocate: concrete
// non-pointer values into interfaces, and string↔[]byte/[]rune copies.
func checkConversion(p *Package, call *ast.CallExpr, target types.Type, diag func(ast.Node, string)) {
	if len(call.Args) != 1 {
		return
	}
	at, ok := p.Info.Types[call.Args[0]]
	if !ok || at.Type == nil {
		return
	}
	if types.IsInterface(target.Underlying()) && allocatesAsInterface(at) {
		diag(call, "converts a non-pointer concrete value into an interface (boxes on the heap)")
		return
	}
	tu, au := target.Underlying(), at.Type.Underlying()
	if isStringOrByteRuneSlice(tu) && isStringOrByteRuneSlice(au) && isString(tu) != isString(au) {
		diag(call, "converts between string and byte/rune slice (copies into a fresh allocation)")
	}
}

// checkInterfaceArgs flags call arguments whose value must be boxed
// into an interface parameter.
func checkInterfaceArgs(p *Package, call *ast.CallExpr, sig *types.Signature, diag func(ast.Node, string)) {
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if call.Ellipsis != token.NoPos && i == params.Len()-1 {
				pt = last // pass-through slice, no boxing
			} else if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		if at, ok := p.Info.Types[arg]; ok && allocatesAsInterface(at) {
			diag(arg, "passes a non-pointer concrete value to an interface parameter (boxes on the heap)")
		}
	}
}

// allocatesAsInterface reports whether storing the value in an
// interface requires a heap allocation: a non-constant, non-pointer-
// shaped concrete value.
func allocatesAsInterface(tv types.TypeAndValue) bool {
	if tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return false // constants and nil are materialized statically
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Interface:
		return false // already boxed
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: the data word holds the value
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	default:
		return true // structs, arrays, slices, strings box
	}
}

// capturedVar returns the name of a variable the closure captures from
// its enclosing function, or "" when the closure is capture-free (a
// static func value, which does not allocate).
func capturedVar(p *Package, encl *ast.FuncDecl, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == p.Types.Scope() || v.Parent() == types.Universe {
			return true // package-level or universe: not captured
		}
		// Declared inside the enclosing declaration but outside the
		// literal → captured.
		if v.Pos() >= encl.Pos() && v.Pos() < encl.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}

func isStringType(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Type != nil && isString(tv.Type.Underlying())
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringOrByteRuneSlice(t types.Type) bool {
	if isString(t) {
		return true
	}
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
