package analysis

import (
	"go/ast"
	"strings"
)

// runSeedPurity flags RNG state constructed from anything but the
// sanctioned rngutil primitives, everywhere outside the RNG package
// itself. The contract (doc.go): per-run and per-device seeds are
// rngutil.ChildSeed(base, stream...) — a pure function of the global
// run index — and streams are rngutil.NewSource / rngutil.New. A
// rand.NewSource or a rand.New over anything but a *rngutil.Source
// creates a stream no seed accounting controls, which silently breaks
// byte-identical replay.
func runSeedPurity(p *Package, cfg *Config) []Diagnostic {
	if p.Path == cfg.RNGPackage {
		return nil
	}
	var out []Diagnostic
	diag := func(n ast.Node, msg string) {
		out = append(out, Diagnostic{Pos: p.Fset.Position(n.Pos()), Check: CheckSeedPurity, Message: msg})
	}
	rngSource := cfg.RNGPackage + ".Source"
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pkgFuncOf(p, call.Fun)
			if !ok {
				return true
			}
			switch {
			case pkg == "math/rand" && name == "NewSource":
				diag(call, "rand.NewSource constructs RNG state outside "+shortPkg(cfg.RNGPackage)+"; derive the seed with rngutil.ChildSeed and build the stream with rngutil.NewSource")
			case pkg == "math/rand/v2" && (name == "NewPCG" || name == "NewChaCha8"):
				diag(call, "rand/v2."+name+" constructs RNG state outside "+shortPkg(cfg.RNGPackage)+"; derive the seed with rngutil.ChildSeed and build the stream with rngutil.NewSource")
			case (pkg == "math/rand" || pkg == "math/rand/v2") && name == "New":
				if len(call.Args) == 1 {
					if tv, ok := p.Info.Types[call.Args[0]]; ok && namedTypeString(tv.Type) == rngSource {
						return true // rand.New over a rngutil.Source: the sanctioned construction
					}
				}
				diag(call, "rand.New over a non-rngutil source constructs RNG state outside "+shortPkg(cfg.RNGPackage)+"; wrap a rngutil.NewSource(rngutil.ChildSeed(...)) stream instead")
			}
			return true
		})
	}
	return out
}

func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
