package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listedPackage is the slice of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct {
		Path string
		Main bool
	}
}

// Importer owns one `go list -deps -export` run: the export-data map
// for every package in the dependency closure, and the main-module
// package listing. It can load those packages (Load) or type-check
// arbitrary extra files against the same dependency graph (Check, used
// by the fixture tests). See the package doc's "Loading strategy".
type Importer struct {
	dir     string
	fset    *token.FileSet
	exports map[string]string // import path → export data file
	imp     types.Importer
	listed  []listedPackage // main-module packages, listing order
	module  string
}

// NewImporter lists patterns (typically "./...") rooted at dir,
// compiling stale dependencies as a side effect so that export data
// exists for the whole closure.
func NewImporter(dir string, patterns ...string) (*Importer, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	im := &Importer{
		dir:     dir,
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			im.exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.Main && !p.Standard {
			im.listed = append(im.listed, p)
			im.module = p.Module.Path
		}
	}
	im.imp = importer.ForCompiler(im.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := im.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not in the listed dependency closure)", path)
		}
		return os.Open(f)
	})
	return im, nil
}

// Module returns the main module's path.
func (im *Importer) Module() string { return im.module }

// Fset returns the file set all loaded packages share.
func (im *Importer) Fset() *token.FileSet { return im.fset }

// Load parses and type-checks every main-module package from the
// listing, in deterministic (import path) order.
func (im *Importer) Load() ([]*Package, error) {
	listed := make([]listedPackage, len(im.listed))
	copy(listed, im.listed)
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })
	pkgs := make([]*Package, 0, len(listed))
	for _, lp := range listed {
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		p, err := im.Check(lp.ImportPath, files...)
		if err != nil {
			return nil, err
		}
		p.Module = im.module
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Check parses and type-checks one package from explicit file paths,
// resolving imports through the listing's export data. Every import
// must be inside the listed dependency closure.
func (im *Importer) Check(importPath string, filenames ...string) (*Package, error) {
	p := &Package{
		Path: importPath,
		Fset: im.fset,
		Src:  make(map[string][]byte, len(filenames)),
	}
	for _, name := range filenames {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(im.fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		p.Src[im.fset.Position(f.Pos()).Filename] = src
		p.Files = append(p.Files, f)
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: im.imp, FakeImportC: true}
	tp, err := conf.Check(importPath, im.fset, p.Files, p.Info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	p.Types = tp
	return p, nil
}

// Load is the one-call loader cmd/repolint uses: list, parse and
// type-check the main-module packages matched by patterns under dir.
func Load(dir string, patterns ...string) ([]*Package, *Importer, error) {
	im, err := NewImporter(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	pkgs, err := im.Load()
	if err != nil {
		return nil, nil, err
	}
	return pkgs, im, nil
}
