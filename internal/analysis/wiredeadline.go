package analysis

import (
	"go/ast"
	"go/types"
)

// runWireDeadline flags, in the wire packages, any connection or frame
// write inside a function that never arms a write deadline. The repo's
// discipline (cluster epoch.write, the worker's flush closure, the
// serve client/server writeFrame paths) is per-frame deadlines in the
// same function as the write; a helper that deliberately leaves arming
// to its callers carries a waiver saying which caller arms.
func runWireDeadline(p *Package, cfg *Config) []Diagnostic {
	if !containsPath(cfg.WirePackages, p.Path) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, fn := range functionBodies(f) {
			out = append(out, wireWritesWithoutDeadline(p, cfg, fn)...)
		}
	}
	return out
}

// functionBody is one analysis unit: a FuncDecl or FuncLit body.
// Function literals are separate units — a closure that writes must arm
// its own deadline (the worker's flush closure is the model).
type functionBody struct {
	node ast.Node // the FuncDecl or FuncLit
	body *ast.BlockStmt
}

func functionBodies(f *ast.File) []functionBody {
	var out []functionBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, functionBody{n, n.Body})
			}
		case *ast.FuncLit:
			out = append(out, functionBody{n, n.Body})
		}
		return true
	})
	return out
}

// inspectShallow walks body without descending into nested function
// literals, which are their own analysis units.
func inspectShallow(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

func wireWritesWithoutDeadline(p *Package, cfg *Config, fn functionBody) []Diagnostic {
	type event struct {
		node ast.Node
		what string
	}
	var events []event
	armed := false
	inspectShallow(fn.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name == "SetWriteDeadline" || name == "SetDeadline" {
			armed = true
			return true
		}
		recv, ok := p.Info.Types[sel.X]
		if !ok || recv.Type == nil {
			return true
		}
		switch {
		case name == "Write" && isDeadlineWriter(p, recv.Type):
			events = append(events, event{call, "connection write (" + recv.Type.String() + ".Write)"})
		case isFrameWriterMethod(cfg, recv.Type, name):
			events = append(events, event{call, "frame write (" + namedTypeString(recv.Type) + "." + name + ")"})
		}
		return true
	})
	if armed || len(events) == 0 {
		return nil
	}
	var out []Diagnostic
	for _, e := range events {
		out = append(out, Diagnostic{
			Pos:     p.Fset.Position(e.node.Pos()),
			Check:   CheckWireDeadline,
			Message: e.what + " in a function that never arms a write deadline: a stalled peer parks this goroutine on a full TCP buffer forever",
		})
	}
	return out
}

// isDeadlineWriter reports whether t is conn-like: it has both Write
// and SetWriteDeadline (net.Conn, *net.TCPConn, chaos.Conn, ...).
// Plain io.Writers (bufio, files, buffers) are not flagged — the frame
// codec's own Write into its buffered writer is covered by flagging
// the codec's callers instead.
func isDeadlineWriter(p *Package, t types.Type) bool {
	return hasMethod(p, t, "SetWriteDeadline") && hasMethod(p, t, "Write")
}

func hasMethod(p *Package, t types.Type, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, p.Types, name)
	_, ok := obj.(*types.Func)
	return ok
}

// isFrameWriterMethod reports whether calling name on a value of type t
// is a frame write: t is one of the configured frame-writer types and
// name is one of its encoding entry points.
func isFrameWriterMethod(cfg *Config, t types.Type, name string) bool {
	if name != "Encode" && name != "write" && name != "WriteFrame" {
		return false
	}
	full := namedTypeString(t)
	for _, fw := range cfg.FrameWriters {
		if full == fw {
			return true
		}
	}
	return false
}
