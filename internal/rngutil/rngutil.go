// Package rngutil provides seeded, splittable pseudo-random number helpers.
//
// Every stochastic component of the reproduction (policies, delay samplers,
// trace generators, simulated noise) draws from a *rand.Rand handed to it
// explicitly, so that a run is a pure function of its seed. rngutil
// centralizes how child seeds are derived so that adding a device to a
// simulation does not perturb the random streams of the existing devices.
package rngutil

import (
	"math/rand"
)

// splitMix64 advances a SplitMix64 state and returns the next output.
// SplitMix64 is the standard seed-expansion function (Steele et al., 2014):
// it maps correlated inputs (seed, 0), (seed, 1), ... to statistically
// independent outputs.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ChildSeed deterministically derives an independent seed for the sub-stream
// identified by ids (for example run index, then device index).
func ChildSeed(seed int64, ids ...int64) int64 {
	x := uint64(seed)
	for _, id := range ids {
		x = splitMix64(x ^ splitMix64(uint64(id)))
	}
	return int64(x)
}

// New returns a new deterministic generator for the given seed. It is
// backed by this package's Source, whose stream is bit-identical to
// rand.NewSource's (see source.go), so results are unchanged from a
// stdlib-backed generator.
func New(seed int64) *rand.Rand {
	return rand.New(NewSource(seed))
}

// NewChild returns a generator seeded from ChildSeed(seed, ids...).
func NewChild(seed int64, ids ...int64) *rand.Rand {
	return New(ChildSeed(seed, ids...))
}

// Perm returns a random permutation of n ints using rng.
func Perm(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}

// Shuffle shuffles xs in place using rng.
func Shuffle[T any](rng *rand.Rand, xs []T) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Pick returns a uniformly random element of xs. It panics only if xs is
// empty, which indicates a programming error at the call site.
func Pick[T any](rng *rand.Rand, xs []T) T {
	return xs[rng.Intn(len(xs))]
}

// Coin returns true with probability p.
func Coin(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// Categorical draws an index from the (not necessarily normalized)
// non-negative weight vector ws. If the total weight is zero it falls back to
// a uniform draw.
func Categorical(rng *rand.Rand, ws []float64) int {
	var total float64
	for _, w := range ws {
		total += w
	}
	if total <= 0 {
		return rng.Intn(len(ws))
	}
	u := rng.Float64() * total
	var acc float64
	for i, w := range ws {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(ws) - 1
}
