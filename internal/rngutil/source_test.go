package rngutil

import (
	"math/rand"
	"testing"
)

// The entire value of Source is stream identity with math/rand: every test
// here compares against rand.NewSource draw-for-draw.

func sourceSeeds() []int64 {
	return []int64{0, 1, -1, 42, 89482311, int32max, int32max + 1,
		-9137432789, 1 << 40, -(1 << 52), 7, 1_000_003}
}

func TestSourceMatchesStdlibUint64(t *testing.T) {
	for _, seed := range sourceSeeds() {
		std := rand.NewSource(seed).(rand.Source64)
		fast := NewSource(seed)
		for i := 0; i < 3000; i++ {
			if got, want := fast.Uint64(), std.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: Uint64 %d, stdlib %d", seed, i, got, want)
			}
		}
	}
}

func TestSourceMatchesStdlibInt63(t *testing.T) {
	for _, seed := range sourceSeeds() {
		std := rand.NewSource(seed)
		fast := NewSource(seed)
		for i := 0; i < 2000; i++ {
			if got, want := fast.Int63(), std.Int63(); got != want {
				t.Fatalf("seed %d draw %d: Int63 %d, stdlib %d", seed, i, got, want)
			}
		}
	}
}

func TestSourceReseedMatchesStdlib(t *testing.T) {
	std := rand.NewSource(1)
	fast := NewSource(1)
	for _, seed := range sourceSeeds() {
		std.Seed(seed)
		fast.Seed(seed)
		for i := 0; i < 700; i++ { // past one full table wrap
			if got, want := fast.Int63(), std.Int63(); got != want {
				t.Fatalf("reseed %d draw %d: %d, stdlib %d", seed, i, got, want)
			}
		}
	}
}

// TestRandMethodsMatchStdlib drives the full rand.Rand surface the
// simulator uses (Float64, NormFloat64, ExpFloat64, Intn, Perm, Shuffle)
// through both sources.
func TestRandMethodsMatchStdlib(t *testing.T) {
	for _, seed := range sourceSeeds() {
		std := rand.New(rand.NewSource(seed))
		fast := rand.New(NewSource(seed))
		for i := 0; i < 500; i++ {
			if g, w := fast.Float64(), std.Float64(); g != w {
				t.Fatalf("seed %d: Float64 %v vs %v", seed, g, w)
			}
			if g, w := fast.NormFloat64(), std.NormFloat64(); g != w {
				t.Fatalf("seed %d: NormFloat64 %v vs %v", seed, g, w)
			}
			if g, w := fast.ExpFloat64(), std.ExpFloat64(); g != w {
				t.Fatalf("seed %d: ExpFloat64 %v vs %v", seed, g, w)
			}
			if g, w := fast.Intn(97), std.Intn(97); g != w {
				t.Fatalf("seed %d: Intn %d vs %d", seed, g, w)
			}
		}
		gp, wp := fast.Perm(23), std.Perm(23)
		for i := range gp {
			if gp[i] != wp[i] {
				t.Fatalf("seed %d: Perm diverges at %d", seed, i)
			}
		}
	}
}

func TestSeedAllMatchesIndividualSeed(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 5, 8, 11} {
		batch := make([]*Source, n)
		single := make([]*Source, n)
		seeds := make([]int64, n)
		for i := range batch {
			batch[i] = NewSource(999) // dirty state first
			for j := 0; j < i; j++ {
				batch[i].Uint64()
			}
			single[i] = &Source{}
			seeds[i] = ChildSeed(77, int64(i))
			single[i].Seed(seeds[i])
		}
		SeedAll(batch, seeds)
		for i := range batch {
			for k := 0; k < 1000; k++ {
				if g, w := batch[i].Uint64(), single[i].Uint64(); g != w {
					t.Fatalf("n=%d source %d draw %d: SeedAll %d, Seed %d", n, i, k, g, w)
				}
			}
		}
	}
}

func TestSeedAllLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SeedAll with mismatched lengths must panic")
		}
	}()
	SeedAll(make([]*Source, 2), make([]int64, 3))
}
