package rngutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChildSeedDeterministic(t *testing.T) {
	a := ChildSeed(42, 1, 2, 3)
	b := ChildSeed(42, 1, 2, 3)
	if a != b {
		t.Fatalf("ChildSeed not deterministic: %d != %d", a, b)
	}
}

func TestChildSeedDistinct(t *testing.T) {
	seen := make(map[int64]bool)
	for i := int64(0); i < 1000; i++ {
		s := ChildSeed(7, i)
		if seen[s] {
			t.Fatalf("ChildSeed(7,%d) collides", i)
		}
		seen[s] = true
	}
	if ChildSeed(1, 2) == ChildSeed(2, 1) {
		t.Fatal("ChildSeed must distinguish (seed=1,id=2) from (seed=2,id=1)")
	}
}

func TestChildSeedOrderSensitive(t *testing.T) {
	if ChildSeed(9, 1, 2) == ChildSeed(9, 2, 1) {
		t.Fatal("ChildSeed must be order-sensitive in its ids")
	}
}

func TestNewDeterministicStreams(t *testing.T) {
	r1 := New(123)
	r2 := New(123)
	for i := 0; i < 100; i++ {
		if r1.Float64() != r2.Float64() {
			t.Fatalf("streams diverge at draw %d", i)
		}
	}
}

func TestNewChildIndependence(t *testing.T) {
	// Streams from adjacent device ids must not be correlated copies.
	a := NewChild(5, 0)
	b := NewChild(5, 1)
	equal := 0
	const draws = 1000
	for i := 0; i < draws; i++ {
		if a.Intn(10) == b.Intn(10) {
			equal++
		}
	}
	// Expected ≈ 100 matches; flag gross correlation only.
	if equal > draws/2 {
		t.Fatalf("child streams look correlated: %d/%d equal draws", equal, draws)
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	rng := New(1)
	weights := []float64{0, 0, 1, 0}
	for i := 0; i < 100; i++ {
		if got := Categorical(rng, weights); got != 2 {
			t.Fatalf("Categorical chose %d for one-hot weight vector", got)
		}
	}
}

func TestCategoricalZeroTotalFallsBackToUniform(t *testing.T) {
	rng := New(2)
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[Categorical(rng, []float64{0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("uniform fallback skewed: index %d chosen %d/3000", i, c)
		}
	}
}

func TestCategoricalProportions(t *testing.T) {
	rng := New(3)
	weights := []float64{1, 3}
	counts := make([]int, 2)
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[Categorical(rng, weights)]++
	}
	frac := float64(counts[1]) / draws
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("weight-3 arm drawn %.3f of the time, want ≈0.75", frac)
	}
}

func TestCategoricalInRangeProperty(t *testing.T) {
	rng := New(4)
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		ws := make([]float64, len(raw))
		for i, w := range raw {
			ws[i] = math.Abs(w)
			if math.IsNaN(ws[i]) || math.IsInf(ws[i], 0) {
				ws[i] = 1
			}
		}
		idx := Categorical(rng, ws)
		return idx >= 0 && idx < len(ws)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoinProbability(t *testing.T) {
	rng := New(5)
	heads := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if Coin(rng, 0.25) {
			heads++
		}
	}
	frac := float64(heads) / draws
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("Coin(0.25) landed heads %.3f of the time", frac)
	}
}

func TestShuffleAndPickPreserveElements(t *testing.T) {
	rng := New(6)
	xs := []int{1, 2, 3, 4, 5}
	Shuffle(rng, xs)
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 15 {
		t.Fatalf("Shuffle lost elements: %v", xs)
	}
	got := Pick(rng, xs)
	found := false
	for _, x := range xs {
		if x == got {
			found = true
		}
	}
	if !found {
		t.Fatalf("Pick returned %d, not an element of %v", got, xs)
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := New(7)
	p := Perm(rng, 10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
