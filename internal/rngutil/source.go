package rngutil

import "math/rand"

// This file reimplements math/rand's default generator — the additive
// lagged-Fibonacci source behind rand.NewSource — with one capability the
// standard library lacks: seeding many sources at once. Seeding is the
// dominant cost of a short Monte Carlo replication (each Seed walks a
// ~1800-step sequential Lehmer chain, ~10µs), and a simulation needs one
// independent stream per device per replication. The chains of different
// streams are independent, so seeding k sources in lockstep lets the CPU
// overlap k dependency chains and retires several seeds in the time one
// takes (see SeedAll).
//
// The streams are bit-identical to math/rand's: Source reproduces the
// generator state exactly, which the test suite verifies draw-for-draw
// against rand.NewSource across seeds, reseeds and every consuming method.
// The stdlib's baked-in additive table is not copied here; it is recovered
// once at process start by running a stdlib source and inverting its
// additive mixing (see recoverAdditiveTable), so this stays correct by
// construction against the installed standard library.

const (
	rngLen   = 607
	rngTap   = 273
	rngMask  = 1<<63 - 1
	int32max = 1<<31 - 1
)

// seedrand is the Lehmer step x ← 48271·x mod 2³¹−1 in Schrage form, the
// seed-expansion recurrence of the stdlib generator.
func seedrand(x int32) int32 {
	hi := x / 44488
	lo := x % 44488
	x = 48271*lo - 3399*hi
	if x < 0 {
		x += int32max
	}
	return x
}

// seedInit conditions a 64-bit seed into the Lehmer state domain exactly as
// the stdlib does.
func seedInit(seed int64) int32 {
	seed %= int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}
	return int32(seed)
}

// additiveTab is the stdlib generator's per-slot additive constant table,
// recovered from math/rand itself at process start.
var additiveTab = recoverAdditiveTable()

// recoverAdditiveTable derives the stdlib's cooked table. A freshly seeded
// rngSource holds vec[i] = chain(seed)[i] ^ tab[i], and its first 607
// Uint64 outputs are sums of vec slots that can be inverted back to vec
// (each slot is written exactly once in the first pass, and every tap it is
// summed with is either still pristine or equal to an earlier output). With
// vec recovered and chain(seed) recomputable from seedrand, the table
// follows by XOR.
func recoverAdditiveTable() [rngLen]uint64 {
	const probe = 0x5eed5eed
	src := rand.NewSource(probe).(rand.Source64)
	var out [rngLen]uint64
	for k := range out {
		out[k] = src.Uint64()
	}

	// Output k (1-based) adds vec[feedₖ] and vec[tapₖ] with feed starting
	// at rngLen−rngTap and tap at 0, both stepping downward mod rngLen.
	var vec [rngLen]uint64
	for k := rngTap + 1; k <= rngLen-rngTap; k++ {
		// tap slot was rewritten rngTap outputs ago: vec = oₖ − oₖ₋₂₇₃.
		vec[rngLen-rngTap-k] = out[k-1] - out[k-rngTap-1]
	}
	for k := rngLen - rngTap + 1; k <= rngLen; k++ {
		// feed has wrapped; the written slot is in the upper region.
		vec[2*rngLen-rngTap-k] = out[k-1] - out[k-rngTap-1]
	}
	for k := 1; k <= rngTap; k++ {
		// Both operands were pristine; the upper one is now known.
		vec[rngLen-rngTap-k] = out[k-1] - vec[rngLen-k]
	}

	x := seedInit(probe)
	for i := -20; i < 0; i++ {
		x = seedrand(x)
	}
	var tab [rngLen]uint64
	for i := 0; i < rngLen; i++ {
		x1 := seedrand(x)
		x2 := seedrand(x1)
		x3 := seedrand(x2)
		x = x3
		chain := uint64(x1)<<40 ^ uint64(x2)<<20 ^ uint64(x3)
		tab[i] = vec[i] ^ chain
	}
	return tab
}

// Source is a drop-in, stream-identical replacement for rand.NewSource
// that additionally supports batched reseeding (SeedAll). It implements
// rand.Source64. Like the stdlib source, it is not safe for concurrent use.
type Source struct {
	vec       [rngLen]int64
	tap, feed int
}

var _ rand.Source64 = (*Source)(nil)

// NewSource returns a source whose stream is bit-identical to
// rand.NewSource(seed).
func NewSource(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed implements rand.Source.
func (s *Source) Seed(seed int64) {
	s.tap = 0
	s.feed = rngLen - rngTap
	x := seedInit(seed)
	for i := -20; i < 0; i++ {
		x = seedrand(x)
	}
	for i := 0; i < rngLen; i++ {
		x1 := seedrand(x)
		x2 := seedrand(x1)
		x3 := seedrand(x2)
		x = x3
		s.vec[i] = int64(uint64(x1)<<40 ^ uint64(x2)<<20 ^ uint64(x3) ^ additiveTab[i])
	}
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() & rngMask)
}

// SeedAll reseeds srcs[i] with seeds[i], running four seed chains in
// lockstep. Each chain is a strictly sequential integer recurrence, so a
// single Seed is latency-bound; interleaving independent chains keeps the
// CPU's ALUs fed and retires a batch of seeds in a fraction of the serial
// time. The per-source state is identical to calling Seed individually.
func SeedAll(srcs []*Source, seeds []int64) {
	if len(srcs) != len(seeds) {
		panic("rngutil: SeedAll length mismatch")
	}
	i := 0
	for ; i+4 <= len(srcs); i += 4 {
		seed4(srcs[i:i+4:i+4], seeds[i:i+4:i+4])
	}
	for ; i < len(srcs); i++ {
		srcs[i].Seed(seeds[i])
	}
}

// seed4 seeds four sources in lockstep (see SeedAll).
func seed4(srcs []*Source, seeds []int64) {
	var x [4]int32
	for j, s := range srcs {
		s.tap = 0
		s.feed = rngLen - rngTap
		x[j] = seedInit(seeds[j])
	}
	for i := -20; i < 0; i++ {
		x[0] = seedrand(x[0])
		x[1] = seedrand(x[1])
		x[2] = seedrand(x[2])
		x[3] = seedrand(x[3])
	}
	s0, s1, s2, s3 := srcs[0], srcs[1], srcs[2], srcs[3]
	for i := 0; i < rngLen; i++ {
		tab := additiveTab[i]
		a1 := seedrand(x[0])
		b1 := seedrand(x[1])
		c1 := seedrand(x[2])
		d1 := seedrand(x[3])
		a2 := seedrand(a1)
		b2 := seedrand(b1)
		c2 := seedrand(c1)
		d2 := seedrand(d1)
		a3 := seedrand(a2)
		b3 := seedrand(b2)
		c3 := seedrand(c2)
		d3 := seedrand(d2)
		x[0], x[1], x[2], x[3] = a3, b3, c3, d3
		s0.vec[i] = int64(uint64(a1)<<40 ^ uint64(a2)<<20 ^ uint64(a3) ^ tab)
		s1.vec[i] = int64(uint64(b1)<<40 ^ uint64(b2)<<20 ^ uint64(b3) ^ tab)
		s2.vec[i] = int64(uint64(c1)<<40 ^ uint64(c2)<<20 ^ uint64(c3) ^ tab)
		s3.vec[i] = int64(uint64(d1)<<40 ^ uint64(d2)<<20 ^ uint64(d3) ^ tab)
	}
}
