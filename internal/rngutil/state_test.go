package rngutil

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

func TestSourceStateResumesBitIdentically(t *testing.T) {
	for _, seed := range []int64{0, 1, -7, 424242} {
		src := NewSource(seed)
		// Advance past a ring wrap so the cursors are mid-stream.
		for i := 0; i < 1000; i++ {
			src.Uint64()
		}
		st := src.State()
		restored := &Source{}
		restored.SetState(st)
		for i := 0; i < 2000; i++ {
			if a, b := src.Uint64(), restored.Uint64(); a != b {
				t.Fatalf("seed %d: restored stream diverges at draw %d: %d != %d", seed, i, a, b)
			}
		}
	}
}

func TestSourceStateCapturesRandRandStreams(t *testing.T) {
	// The serve layer wraps Source in rand.Rand; rand.Rand keeps no state of
	// its own for the methods the policies use, so restoring the Source must
	// restore the whole derived stream.
	src := NewSource(99)
	rng := rand.New(src)
	for i := 0; i < 137; i++ {
		rng.Float64()
		rng.Intn(17)
	}
	st := src.State()

	restoredSrc := &Source{}
	restoredSrc.SetState(st)
	restoredRng := rand.New(restoredSrc)
	for i := 0; i < 500; i++ {
		if a, b := rng.Float64(), restoredRng.Float64(); a != b {
			t.Fatalf("Float64 diverges at %d: %v != %v", i, a, b)
		}
		if a, b := rng.Intn(1000), restoredRng.Intn(1000); a != b {
			t.Fatalf("Intn diverges at %d: %d != %d", i, a, b)
		}
	}
}

func TestSourceStateGobRoundTrip(t *testing.T) {
	src := NewSource(5)
	for i := 0; i < 31; i++ {
		src.Uint64()
	}
	st := src.State()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	var back SourceState
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	restored := &Source{}
	restored.SetState(back)
	for i := 0; i < 100; i++ {
		if a, b := src.Uint64(), restored.Uint64(); a != b {
			t.Fatalf("gob round trip diverges at draw %d", i)
		}
	}
}

func TestSetStateClampsCorruptCursors(t *testing.T) {
	st := NewSource(1).State()
	st.Tap = -3
	st.Feed = rngLen*5 + 2
	s := &Source{}
	s.SetState(st)
	// Must not panic; cursors are back in range.
	for i := 0; i < 2*rngLen; i++ {
		s.Uint64()
	}
}
