package rngutil

// SourceState is the complete generator state of a Source, in exported form
// so it can cross serialization boundaries (gob, snapshots). Capturing and
// restoring it resumes the stream bit-for-bit: a restored source produces
// exactly the outputs the original would have produced next. The serve
// layer's snapshot/restore determinism contract rests on this — per-device
// policy randomness must survive a daemon restart unchanged.
type SourceState struct {
	Vec       [rngLen]int64
	Tap, Feed int
}

// State returns a copy of the source's current generator state.
func (s *Source) State() SourceState {
	return SourceState{Vec: s.vec, Tap: s.tap, Feed: s.feed}
}

// SetState overwrites the source's generator state with a previously
// captured one. The next outputs are bit-identical to what the captured
// source would have produced. States whose cursors fall outside the
// generator's ring are rejected by normalizing them modulo the ring length,
// so a corrupt snapshot cannot index out of bounds.
func (s *Source) SetState(st SourceState) {
	s.vec = st.Vec
	s.tap = clampCursor(st.Tap)
	s.feed = clampCursor(st.Feed)
}

// clampCursor maps an arbitrary int into [0, rngLen), the generator ring's
// valid cursor range.
func clampCursor(c int) int {
	c %= rngLen
	if c < 0 {
		c += rngLen
	}
	return c
}
