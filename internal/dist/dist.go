// Package dist models the switching-delay distributions of Section II-B.
//
// The paper measures the delay a device incurs when it changes network and
// fits the measurements per technology: switching to WiFi follows a
// Johnson's S_U distribution and switching to cellular a (very heavy-tailed)
// Student's t distribution. Both are truncated into [0, SlotSeconds]: a
// negative fitted sample is not a physical delay, and a delay longer than
// one 15 s time slot simply costs the whole slot.
//
// Every sampler draws from an explicit *rand.Rand, so simulations remain a
// pure function of their seed (see internal/rngutil).
package dist

import (
	"math"
	"math/rand"
)

// SlotSeconds is the paper's time-slot length (15 s); delays are capped at
// one slot because a switch never costs more than the slot it happens in.
const SlotSeconds = 15

// Sampler draws one value (a delay in seconds) from a distribution.
type Sampler interface {
	// Sample returns one draw using rng as the only source of randomness.
	Sample(rng *rand.Rand) float64
}

// Meaner is implemented by samplers whose expected value is analytic; it
// feeds the tolerance checks of the sampler test suite.
type Meaner interface {
	// Mean returns the distribution's expected value.
	Mean() float64
}

// Constant always returns Value (delay-free runs use Constant{Value: 0}).
type Constant struct {
	Value float64
}

// Sample implements Sampler.
func (c Constant) Sample(*rand.Rand) float64 { return c.Value }

// Mean implements Meaner.
func (c Constant) Mean() float64 { return c.Value }

// Uniform draws uniformly from [Low, High).
type Uniform struct {
	Low, High float64
}

// Sample implements Sampler.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Low + (u.High-u.Low)*rng.Float64()
}

// Mean implements Meaner.
func (u Uniform) Mean() float64 { return (u.Low + u.High) / 2 }

// Exponential draws from an exponential distribution with the given mean.
type Exponential struct {
	MeanValue float64
}

// Sample implements Sampler.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return e.MeanValue * rng.ExpFloat64()
}

// Mean implements Meaner.
func (e Exponential) Mean() float64 { return e.MeanValue }

// Normal draws from a Gaussian.
type Normal struct {
	Mu, Sigma float64
}

// Sample implements Sampler.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// Mean implements Meaner.
func (n Normal) Mean() float64 { return n.Mu }

// JohnsonSU is Johnson's S_U distribution with shape parameters Gamma and
// Delta and linear parameters Loc and Scale: if Z is standard normal,
// X = Loc + Scale·sinh((Z−Gamma)/Delta).
type JohnsonSU struct {
	Gamma, Delta float64
	Loc, Scale   float64
}

// Sample implements Sampler.
func (j JohnsonSU) Sample(rng *rand.Rand) float64 {
	z := rng.NormFloat64()
	return j.Loc + j.Scale*math.Sinh((z-j.Gamma)/j.Delta)
}

// Mean implements Meaner (the S_U mean is analytic:
// Loc − Scale·exp(Delta⁻²/2)·sinh(Gamma/Delta)).
func (j JohnsonSU) Mean() float64 {
	return j.Loc - j.Scale*math.Exp(1/(2*j.Delta*j.Delta))*math.Sinh(j.Gamma/j.Delta)
}

// StudentT is a location-scale Student's t distribution. With DF below 1
// (the paper's cellular fit) the raw distribution has no mean; it is only
// usable truncated.
type StudentT struct {
	DF         float64
	Loc, Scale float64
}

// Sample implements Sampler using Bailey's polar method (1994), which needs
// no gamma sampling and works for fractional degrees of freedom.
func (t StudentT) Sample(rng *rand.Rand) float64 {
	for {
		u := 2*rng.Float64() - 1
		v := 2*rng.Float64() - 1
		w := u*u + v*v
		if w > 1 || w == 0 {
			continue
		}
		return t.Loc + t.Scale*u*math.Sqrt(t.DF*(math.Pow(w, -2/t.DF)-1)/w)
	}
}

// Truncated restricts S to [Low, High] by rejection, falling back to
// clamping after maxTruncAttempts draws so a pathological underlying
// distribution cannot stall a simulation.
type Truncated struct {
	S         Sampler
	Low, High float64
}

const maxTruncAttempts = 64

// Sample implements Sampler.
func (t Truncated) Sample(rng *rand.Rand) float64 {
	return truncated(t.S.Sample, t.Low, t.High, rng)
}

// truncated is the rejection loop of Truncated over an explicit draw
// function, shared between the interface path and the devirtualized batch
// path so both produce identical streams.
func truncated(draw func(*rand.Rand) float64, low, high float64, rng *rand.Rand) float64 {
	var x float64
	for i := 0; i < maxTruncAttempts; i++ {
		x = draw(rng)
		if x >= low && x <= high {
			return x
		}
	}
	return math.Min(math.Max(x, low), high)
}

// SampleInto fills dst[i] with one draw from s using rngs[i], i.e. one
// independent sample per device stream. The simulator batches all switching
// devices of one technology into a single SampleInto call per slot, so the
// slot loop pays one dynamic dispatch per technology rather than one per
// switch; the known concrete samplers are devirtualized below and their
// draw loops inline. Each draw consumes exactly what s.Sample(rngs[i])
// would, so per-device random streams are unchanged by batching.
func SampleInto(s Sampler, rngs []*rand.Rand, dst []float64) {
	switch c := s.(type) {
	case Truncated:
		// The default delay models are Truncated{JohnsonSU} and
		// Truncated{StudentT}; specializing the inner sampler removes the
		// second dispatch layer from the rejection loop.
		switch inner := c.S.(type) {
		case JohnsonSU:
			for i, rng := range rngs {
				dst[i] = truncated(inner.Sample, c.Low, c.High, rng)
			}
		case StudentT:
			for i, rng := range rngs {
				dst[i] = truncated(inner.Sample, c.Low, c.High, rng)
			}
		default:
			for i, rng := range rngs {
				dst[i] = c.Sample(rng)
			}
		}
	case Constant:
		for i := range rngs {
			dst[i] = c.Value
		}
	case Uniform:
		for i, rng := range rngs {
			dst[i] = c.Sample(rng)
		}
	case Normal:
		for i, rng := range rngs {
			dst[i] = c.Sample(rng)
		}
	case Exponential:
		for i, rng := range rngs {
			dst[i] = c.Sample(rng)
		}
	default:
		for i, rng := range rngs {
			dst[i] = s.Sample(rng)
		}
	}
}

// DefaultWiFiDelay returns the Section II-B switching-to-WiFi delay model:
// a fitted Johnson's S_U truncated into one slot. Its mode sits near half a
// second with a tail of a few seconds, matching the paper's measurements.
func DefaultWiFiDelay() Sampler {
	return Truncated{
		S:    JohnsonSU{Gamma: 0.2982, Delta: 1.0639, Loc: 0.2054, Scale: 0.5479},
		Low:  0,
		High: SlotSeconds,
	}
}

// DefaultCellularDelay returns the Section II-B switching-to-cellular delay
// model: a fitted Student's t (df < 1, hence extremely heavy-tailed)
// truncated into one slot.
func DefaultCellularDelay() Sampler {
	return Truncated{
		S:    StudentT{DF: 0.4393, Loc: 0.4957, Scale: 0.0598},
		Low:  0,
		High: SlotSeconds,
	}
}
