package dist

import (
	"math"
	"testing"

	"smartexp3/internal/rngutil"
)

// samplerCases enumerates every sampler the package exports, including the
// Section II-B default delay models.
func samplerCases() []struct {
	name string
	s    Sampler
} {
	return []struct {
		name string
		s    Sampler
	}{
		{"constant", Constant{Value: 1.5}},
		{"uniform", Uniform{Low: 0.5, High: 2.5}},
		{"exponential", Exponential{MeanValue: 2}},
		{"normal", Normal{Mu: 3, Sigma: 0.5}},
		{"johnson-su", JohnsonSU{Gamma: 0.2982, Delta: 1.0639, Loc: 0.2054, Scale: 0.5479}},
		{"student-t", StudentT{DF: 0.4393, Loc: 0.4957, Scale: 0.0598}},
		{"truncated", Truncated{S: Normal{Mu: 1, Sigma: 2}, Low: 0, High: SlotSeconds}},
		{"default-wifi", DefaultWiFiDelay()},
		{"default-cellular", DefaultCellularDelay()},
	}
}

// TestSamplersSeededDeterminism: every sampler is a pure function of its
// rng, so one seed must reproduce the identical sample sequence.
func TestSamplersSeededDeterminism(t *testing.T) {
	for _, tc := range samplerCases() {
		t.Run(tc.name, func(t *testing.T) {
			a, b := rngutil.New(42), rngutil.New(42)
			for i := 0; i < 1000; i++ {
				x, y := tc.s.Sample(a), tc.s.Sample(b)
				if x != y {
					t.Fatalf("sample %d diverged: %v vs %v", i, x, y)
				}
			}
		})
	}
}

// TestDelayModelsBounded: the delay models must produce physical delays —
// non-negative and never longer than the 15 s slot.
func TestDelayModelsBounded(t *testing.T) {
	bounded := []struct {
		name string
		s    Sampler
	}{
		{"constant-zero", Constant{Value: 0}},
		{"truncated", Truncated{S: Normal{Mu: 1, Sigma: 2}, Low: 0, High: SlotSeconds}},
		{"default-wifi", DefaultWiFiDelay()},
		{"default-cellular", DefaultCellularDelay()},
	}
	for _, tc := range bounded {
		t.Run(tc.name, func(t *testing.T) {
			rng := rngutil.New(7)
			for i := 0; i < 20000; i++ {
				x := tc.s.Sample(rng)
				if x < 0 || x > SlotSeconds {
					t.Fatalf("sample %d out of [0,%d]: %v", i, SlotSeconds, x)
				}
			}
		})
	}
}

// TestSampleMeansMatchConfiguredMeans: for every sampler with an analytic
// expectation, the large-sample mean must sit within tolerance of Mean().
func TestSampleMeansMatchConfiguredMeans(t *testing.T) {
	const n = 200000
	for _, tc := range samplerCases() {
		m, ok := tc.s.(Meaner)
		if !ok {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			rng := rngutil.New(11)
			var sum float64
			for i := 0; i < n; i++ {
				sum += tc.s.Sample(rng)
			}
			got, want := sum/n, m.Mean()
			tol := 0.02 * math.Max(1, math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Fatalf("sample mean %v, configured mean %v (tolerance %v)", got, want, tol)
			}
		})
	}
}

// TestDefaultDelayMeansPlausible pins the Section II-B shapes: WiFi
// switching costs a couple of seconds on average, cellular under a second
// at the median mass (its heavy tail is clipped by the slot).
func TestDefaultDelayMeansPlausible(t *testing.T) {
	mean := func(s Sampler, seed int64) float64 {
		rng := rngutil.New(seed)
		var sum float64
		const n = 100000
		for i := 0; i < n; i++ {
			sum += s.Sample(rng)
		}
		return sum / n
	}
	if m := mean(DefaultWiFiDelay(), 3); m < 0.1 || m > 5 {
		t.Fatalf("WiFi delay mean %v s, want within (0.1, 5)", m)
	}
	if m := mean(DefaultCellularDelay(), 4); m < 0.1 || m > 5 {
		t.Fatalf("cellular delay mean %v s, want within (0.1, 5)", m)
	}
}

// TestTruncatedClampFallback: an underlying distribution that never lands
// inside the bounds must clamp instead of stalling.
func TestTruncatedClampFallback(t *testing.T) {
	rng := rngutil.New(1)
	if x := (Truncated{S: Constant{Value: 40}, Low: 0, High: 15}).Sample(rng); x != 15 {
		t.Fatalf("clamped high sample = %v, want 15", x)
	}
	if x := (Truncated{S: Constant{Value: -3}, Low: 0, High: 15}).Sample(rng); x != 0 {
		t.Fatalf("clamped low sample = %v, want 0", x)
	}
}

// TestJohnsonSUAnalyticMean cross-checks the closed form against a
// numerically independent shape (symmetric: Gamma=0 gives mean = Loc).
func TestJohnsonSUAnalyticMean(t *testing.T) {
	j := JohnsonSU{Gamma: 0, Delta: 2, Loc: 1.25, Scale: 3}
	if got := j.Mean(); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("symmetric Johnson S_U mean = %v, want Loc = 1.25", got)
	}
}
