package criteria

import (
	"math"
	"testing"
	"testing/quick"

	"smartexp3/internal/netmodel"
)

func TestThroughputOnlyIsIdentity(t *testing.T) {
	p := ThroughputOnly()
	costs := Costs{Energy: 1, PricePerData: 1}
	for _, g := range []float64{0, 0.25, 0.5, 1} {
		if got := p.Utility(g, costs); got != g {
			t.Fatalf("Utility(%v) = %v, want identity", g, got)
		}
	}
}

func TestUtilityPenalizesCostlyNetworks(t *testing.T) {
	p := Balanced()
	free := Costs{Energy: 0.2, PricePerData: 0}
	metered := Costs{Energy: 0.6, PricePerData: 0.5}
	g := 0.8
	if p.Utility(g, metered) >= p.Utility(g, free) {
		t.Fatal("metered, power-hungry network must have lower utility at equal throughput")
	}
}

func TestUtilityMonotoneInGain(t *testing.T) {
	p := Balanced()
	costs := DefaultCosts(netmodel.Cellular)
	prev := -1.0
	for g := 0.0; g <= 1.0; g += 0.05 {
		u := p.Utility(g, costs)
		if u < prev {
			t.Fatalf("utility not monotone at gain %v: %v < %v", g, u, prev)
		}
		prev = u
	}
}

func TestUtilityBoundedProperty(t *testing.T) {
	f := func(rawG, rawE, rawP, w1, w2, w3 float64) bool {
		g := math.Mod(math.Abs(rawG), 1)
		costs := Costs{
			Energy:       math.Mod(math.Abs(rawE), 1),
			PricePerData: math.Mod(math.Abs(rawP), 1),
		}
		p := Profile{
			Throughput: math.Mod(math.Abs(w1), 5),
			Energy:     math.Mod(math.Abs(w2), 5),
			Money:      math.Mod(math.Abs(w3), 5),
		}
		if math.IsNaN(g) || math.IsNaN(costs.Energy) || math.IsNaN(costs.PricePerData) ||
			math.IsNaN(p.Throughput) || math.IsNaN(p.Energy) || math.IsNaN(p.Money) {
			return true
		}
		u := p.Utility(g, costs)
		return u >= 0 && u <= 1 && !math.IsNaN(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUtilityOutOfRangeGainClamped(t *testing.T) {
	p := ThroughputOnly()
	if got := p.Utility(5, Costs{}); got != 1 {
		t.Fatalf("Utility(5) = %v, want clamp to 1", got)
	}
	if got := p.Utility(-1, Costs{}); got != 0 {
		t.Fatalf("Utility(-1) = %v, want clamp to 0", got)
	}
}

func TestDefaultCosts(t *testing.T) {
	wifi := DefaultCosts(netmodel.WiFi)
	cell := DefaultCosts(netmodel.Cellular)
	if wifi.PricePerData != 0 {
		t.Fatal("WiFi data must be free by default")
	}
	if cell.Energy <= wifi.Energy || cell.PricePerData <= wifi.PricePerData {
		t.Fatal("cellular must cost more energy and money than WiFi by default")
	}
	if err := wifi.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := cell.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	if err := (Profile{}).Validate(); err == nil {
		t.Fatal("zero profile must be invalid")
	}
	if err := (Profile{Throughput: -1, Energy: 2}).Validate(); err == nil {
		t.Fatal("negative weights must be invalid")
	}
	if err := Balanced().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Costs{Energy: 2}).Validate(); err == nil {
		t.Fatal("out-of-range energy must be invalid")
	}
	if err := (Costs{PricePerData: -0.1}).Validate(); err == nil {
		t.Fatal("negative price must be invalid")
	}
}
