// Package criteria implements the paper's first future-work direction:
// selection criteria beyond raw throughput. The conclusion names
// "application requirements, energy constraints and monetary cost"; this
// package folds those into the gain a policy observes, so the unchanged
// Smart EXP3 machinery optimizes a composite utility instead of bit rate
// alone (e.g. preferring a slightly slower free WLAN over a fast but
// metered, battery-hungry cellular link).
package criteria

import (
	"fmt"

	"smartexp3/internal/netmodel"
)

// Costs describes the non-throughput characteristics of one network, each
// normalized into [0,1].
type Costs struct {
	// Energy is the relative radio energy draw of using the network for one
	// slot (1 = worst radio considered).
	Energy float64
	// PricePerData is the relative monetary price per unit of data
	// (1 = most expensive plan considered; 0 = free).
	PricePerData float64
}

// Validate reports whether the costs are normalized.
func (c Costs) Validate() error {
	if c.Energy < 0 || c.Energy > 1 {
		return fmt.Errorf("criteria: energy %v outside [0,1]", c.Energy)
	}
	if c.PricePerData < 0 || c.PricePerData > 1 {
		return fmt.Errorf("criteria: price %v outside [0,1]", c.PricePerData)
	}
	return nil
}

// DefaultCosts returns plausible per-technology costs: WiFi radios are
// cheaper to run and WiFi data is free, while cellular drains more battery
// and is metered.
func DefaultCosts(t netmodel.Type) Costs {
	if t == netmodel.Cellular {
		return Costs{Energy: 0.6, PricePerData: 0.5}
	}
	return Costs{Energy: 0.25, PricePerData: 0}
}

// Profile weighs the three criteria. Weights are relative; at least one must
// be positive. The zero value is unusable — start from ThroughputOnly or
// Balanced.
type Profile struct {
	Throughput float64
	Energy     float64
	Money      float64
}

// ThroughputOnly reproduces the paper's main setting: utility is bit rate.
func ThroughputOnly() Profile { return Profile{Throughput: 1} }

// Balanced weighs throughput against energy and price the way a
// battery-conscious user on a metered plan might.
func Balanced() Profile { return Profile{Throughput: 1, Energy: 0.5, Money: 0.5} }

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	if p.Throughput < 0 || p.Energy < 0 || p.Money < 0 {
		return fmt.Errorf("criteria: negative weights in %+v", p)
	}
	if p.Throughput+p.Energy+p.Money <= 0 {
		return fmt.Errorf("criteria: at least one weight must be positive")
	}
	return nil
}

// Utility folds a throughput gain (bit rate scaled to [0,1]) and a network's
// costs into a composite gain in [0,1]: the weighted mean of the throughput
// gain, the energy utility (1 − energy), and the monetary utility
// (1 − price·gain, since spending scales with data actually moved).
func (p Profile) Utility(gain float64, costs Costs) float64 {
	if gain < 0 {
		gain = 0
	}
	if gain > 1 {
		gain = 1
	}
	total := p.Throughput + p.Energy + p.Money
	if total <= 0 {
		return gain
	}
	u := (p.Throughput*gain +
		p.Energy*(1-costs.Energy) +
		p.Money*(1-costs.PricePerData*gain)) / total
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}
