// Package game formulates wireless network selection as the singleton
// congestion game of Section II-B and implements the evaluation machinery
// built on it: Nash equilibria, ε-equilibria, the distance-to-Nash metric
// (Definition 3), stable-state detection (Definition 2), and the
// distance-from-average-bit-rate metric of Definition 4.
//
// The game: n devices each pick one network from their availability set; a
// network with bandwidth b shared by m devices gives each of them gain b/m.
// This is a singleton congestion game, hence a potential game: best-response
// dynamics terminate at a pure Nash equilibrium.
package game

import (
	"fmt"
	"math"
	"sort"
)

// Share returns the gain a single device obtains from a network with the
// given bandwidth when count devices (including itself) share it.
func Share(bandwidth float64, count int) float64 {
	if count <= 0 {
		return 0
	}
	return bandwidth / float64(count)
}

// NashCounts computes a pure Nash equilibrium allocation of devices devices
// over networks with the given bandwidths, assuming every device can access
// every network. It water-fills: each device in turn joins the network
// offering the highest marginal share. For equal-share singleton congestion
// games this greedy process yields a Nash equilibrium.
func NashCounts(bandwidths []float64, devices int) []int {
	counts := make([]int, len(bandwidths))
	for d := 0; d < devices; d++ {
		best, bestShare := -1, math.Inf(-1)
		for i, b := range bandwidths {
			s := Share(b, counts[i]+1)
			if s > bestShare {
				best, bestShare = i, s
			}
		}
		if best >= 0 {
			counts[best]++
		}
	}
	return counts
}

// IsNash reports whether the allocation counts is a pure Nash equilibrium:
// no device on any occupied network can strictly improve by moving.
func IsNash(bandwidths []float64, counts []int) bool {
	return isNashEps(bandwidths, counts, 1e-12)
}

// IsEpsilonNash reports whether counts is an ε-equilibrium in absolute gain:
// no device can improve its gain by more than eps by unilaterally moving.
func IsEpsilonNash(bandwidths []float64, counts []int, eps float64) bool {
	return isNashEps(bandwidths, counts, eps)
}

func isNashEps(bandwidths []float64, counts []int, eps float64) bool {
	for i, ci := range counts {
		if ci == 0 {
			continue
		}
		cur := Share(bandwidths[i], ci)
		for j, bj := range bandwidths {
			if j == i {
				continue
			}
			if Share(bj, counts[j]+1) > cur+eps {
				return false
			}
		}
	}
	return true
}

// NashShares returns the sorted (ascending) multiset of per-device gains at
// the Nash allocation counts: the i-th occupied slot of network j contributes
// bandwidths[j]/counts[j].
func NashShares(bandwidths []float64, counts []int) []float64 {
	var shares []float64
	for i, c := range counts {
		s := Share(bandwidths[i], c)
		for m := 0; m < c; m++ {
			shares = append(shares, s)
		}
	}
	sort.Float64s(shares)
	return shares
}

// DistanceToNash implements Definition 3 for devices with identical
// availability sets: the maximum percentage by which any device's gain would
// rise were the system at Nash equilibrium. Devices are interchangeable, so
// we rank-match: current gains and NE shares are sorted ascending and
// compared position-wise, which makes the distance exactly zero at any NE
// allocation and reproduces the paper's worked example
// ({1,1,4} vs NE {2,2,2} → 100%).
//
// currentGains and neShares must have equal length. Zero or negative current
// gains are floored at a small epsilon to keep the percentage finite, and the
// result is capped at maxDistance.
func DistanceToNash(currentGains, neShares []float64) float64 {
	if len(currentGains) != len(neShares) {
		panic(fmt.Sprintf("game: gains (%d) and NE shares (%d) differ in length",
			len(currentGains), len(neShares)))
	}
	cur := make([]float64, len(currentGains))
	copy(cur, currentGains)
	sort.Float64s(cur)
	ne := make([]float64, len(neShares))
	copy(ne, neShares)
	sort.Float64s(ne)

	var worst float64
	for i := range cur {
		worst = math.Max(worst, percentGainIncrease(cur[i], ne[i]))
	}
	return worst
}

// maxDistance caps the distance-to-NE percentage so that a device that
// momentarily observes (near-)zero gain does not produce an unbounded or
// infinite distance. The paper's figures plot distances up to 250%.
const maxDistance = 1000

func percentGainIncrease(cur, target float64) float64 {
	if target <= cur {
		return 0
	}
	const minGain = 1e-9
	if cur < minGain {
		cur = minGain
	}
	d := (target - cur) / cur * 100
	return math.Min(d, maxDistance)
}

// Device describes one player in a heterogeneous-availability game: the
// indices of the networks it can reach.
type Device struct {
	Available []int
}

// Instance is a singleton congestion game with per-device availability.
type Instance struct {
	Bandwidths []float64
	Devices    []Device
}

// Validate reports whether the instance is well-formed: every device has a
// non-empty availability set referencing valid networks.
func (in Instance) Validate() error {
	for d, dev := range in.Devices {
		if len(dev.Available) == 0 {
			return fmt.Errorf("game: device %d has no available network", d)
		}
		for _, i := range dev.Available {
			if i < 0 || i >= len(in.Bandwidths) {
				return fmt.Errorf("game: device %d references network %d out of %d",
					d, i, len(in.Bandwidths))
			}
		}
	}
	return nil
}

// NashAssignment computes a pure Nash equilibrium assignment (device index →
// network index) by greedy seeding followed by best-response dynamics. The
// finite improvement property of congestion games guarantees termination.
func (in Instance) NashAssignment() []int {
	return in.NashAssignmentFrom(nil)
}

// NashAssignmentFrom computes a pure Nash equilibrium starting best-response
// dynamics from the given seed assignment (device → network). Devices whose
// seed is -1 or not in their availability set are seeded greedily. A nil
// seed seeds every device greedily. The Centralized baseline uses this to
// carry assignments across environment changes with minimal churn.
func (in Instance) NashAssignmentFrom(seed []int) []int {
	var s AssignScratch
	return in.NashAssignmentFromScratch(seed, &s)
}

// AssignScratch holds the reusable buffers of repeated NashAssignmentFrom
// solves. The zero value is ready to use; buffers grow on demand and are
// kept across calls, so an epoch-heavy simulation solves every refresh
// without allocating. A scratch must not be shared between goroutines.
type AssignScratch struct {
	assign []int
	counts []int
}

// NashAssignmentFromScratch is NashAssignmentFrom evaluated through reusable
// scratch buffers. The returned assignment aliases the scratch and is only
// valid until the next call with the same scratch; callers that need to keep
// it must copy it out.
func (in Instance) NashAssignmentFromScratch(seed []int, s *AssignScratch) []int {
	s.counts = growInts(s.counts, len(in.Bandwidths))
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.assign = growInts(s.assign, len(in.Devices))
	counts, assign := s.counts, s.assign

	// Seed: keep requested placements when valid, otherwise join the best
	// marginal-share network.
	for d, dev := range in.Devices {
		if seed != nil && seed[d] >= 0 && contains(dev.Available, seed[d]) {
			assign[d] = seed[d]
			counts[seed[d]]++
			continue
		}
		best, bestShare := dev.Available[0], math.Inf(-1)
		for _, i := range dev.Available {
			if s := Share(in.Bandwidths[i], counts[i]+1); s > bestShare {
				best, bestShare = i, s
			}
		}
		assign[d] = best
		counts[best]++
	}

	// Best-response dynamics until no device can strictly improve. The
	// potential function strictly decreases on every improving move, so this
	// terminates; the iteration cap is a defensive bound against float
	// pathologies.
	const eps = 1e-12
	maxIters := 4 * len(in.Devices) * len(in.Bandwidths) * (len(in.Devices) + 1)
	for iter := 0; iter < maxIters; iter++ {
		improved := false
		for d, dev := range in.Devices {
			cur := assign[d]
			curShare := Share(in.Bandwidths[cur], counts[cur])
			best, bestShare := cur, curShare
			for _, i := range dev.Available {
				if i == cur {
					continue
				}
				if s := Share(in.Bandwidths[i], counts[i]+1); s > bestShare+eps {
					best, bestShare = i, s
				}
			}
			if best != cur {
				counts[cur]--
				counts[best]++
				assign[d] = best
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return assign
}

// SharesOf returns the per-device gain under the given assignment.
func (in Instance) SharesOf(assign []int) []float64 {
	counts := make([]int, len(in.Bandwidths))
	for _, i := range assign {
		counts[i]++
	}
	shares := make([]float64, len(assign))
	for d, i := range assign {
		shares[d] = Share(in.Bandwidths[i], counts[i])
	}
	return shares
}

// IsNashAssignment reports whether assign is a pure Nash equilibrium of the
// instance.
func (in Instance) IsNashAssignment(assign []int) bool {
	counts := make([]int, len(in.Bandwidths))
	for _, i := range assign {
		counts[i]++
	}
	return in.IsNashAssignmentWithCounts(assign, counts)
}

// IsNashAssignmentWithCounts is IsNashAssignment with the per-network
// occupancy counts supplied by the caller (counts[i] devices on network i
// under assign). The simulator's slot loop already maintains these counts,
// so handing them in avoids an allocation per slot.
func (in Instance) IsNashAssignmentWithCounts(assign, counts []int) bool {
	const eps = 1e-12
	for d, dev := range in.Devices {
		cur := assign[d]
		curShare := Share(in.Bandwidths[cur], counts[cur])
		for _, i := range dev.Available {
			if i == cur {
				continue
			}
			if Share(in.Bandwidths[i], counts[i]+1) > curShare+eps {
				return false
			}
		}
	}
	return true
}

// DistanceToNashGrouped implements Definition 3 for heterogeneous
// availability: devices are grouped by availability signature, each group's
// current gains are rank-matched against the group's NE shares, and the
// worst percentage shortfall across all devices is returned. groupOf may be
// nil, in which case all devices form one group (requiring identical
// availability for the metric to be meaningful).
func (in Instance) DistanceToNashGrouped(currentGains []float64) float64 {
	assign := in.NashAssignment()
	neShares := in.SharesOf(assign)

	groups := make(map[string][]int)
	for d, dev := range in.Devices {
		groups[signature(dev.Available)] = append(groups[signature(dev.Available)], d)
	}
	var worst float64
	//repolint:ignore determinism order cannot reach results: math.Max is a commutative fold and each group's distance is computed independently
	for _, members := range groups {
		cur := make([]float64, 0, len(members))
		ne := make([]float64, 0, len(members))
		for _, d := range members {
			cur = append(cur, currentGains[d])
			ne = append(ne, neShares[d])
		}
		worst = math.Max(worst, DistanceToNash(cur, ne))
	}
	return worst
}

// growInts returns a slice of length n reusing s's backing array when
// possible. Contents are unspecified; callers overwrite every element.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growFloats is growInts for float64 slices.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func signature(avail []int) string {
	sorted := make([]int, len(avail))
	copy(sorted, avail)
	sort.Ints(sorted)
	sig := make([]byte, 0, 3*len(sorted))
	for _, i := range sorted {
		sig = append(sig, byte(i), byte(i>>8), ',')
	}
	return string(sig)
}
