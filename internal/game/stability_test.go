package game

import (
	"math"
	"testing"
)

func TestStableFrom(t *testing.T) {
	tests := []struct {
		name   string
		argmax []int
		prob   []float64
		want   int
	}{
		{
			name:   "stable from slot 2",
			argmax: []int{0, 1, 1, 1},
			prob:   []float64{0.9, 0.5, 0.8, 0.9},
			want:   2,
		},
		{
			name:   "stable whole run",
			argmax: []int{2, 2, 2},
			prob:   []float64{0.8, 0.8, 0.8},
			want:   0,
		},
		{
			name:   "never stable: low final probability",
			argmax: []int{1, 1, 1},
			prob:   []float64{0.9, 0.9, 0.5},
			want:   -1,
		},
		{
			name:   "network change breaks the suffix",
			argmax: []int{0, 1, 0, 0},
			prob:   []float64{0.9, 0.9, 0.9, 0.9},
			want:   2,
		},
		{name: "empty", argmax: nil, prob: nil, want: -1},
		{
			name:   "mismatched lengths",
			argmax: []int{0, 0},
			prob:   []float64{0.9},
			want:   -1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := StableFrom(tt.argmax, tt.prob); got != tt.want {
				t.Fatalf("StableFrom = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestDetectStabilityAtNash(t *testing.T) {
	// Two devices, two 10 Mbps networks; each stable on its own network —
	// the (1,1) allocation is the NE.
	bws := []float64{10, 10}
	argmax := [][]int{{0, 0, 0}, {1, 1, 1}}
	prob := [][]float64{{0.8, 0.9, 0.9}, {0.8, 0.9, 0.9}}
	res := DetectStability(bws, argmax, prob)
	if !res.Stable || !res.AtNash {
		t.Fatalf("want stable at NE, got %+v", res)
	}
	if res.Slot != 0 {
		t.Fatalf("stable slot = %d, want 0", res.Slot)
	}
}

func TestDetectStabilityNotAtNash(t *testing.T) {
	// Both devices stable on the same network while the other sits idle:
	// stable but not an equilibrium.
	bws := []float64{10, 10}
	argmax := [][]int{{0, 0}, {0, 0}}
	prob := [][]float64{{0.9, 0.9}, {0.9, 0.9}}
	res := DetectStability(bws, argmax, prob)
	if !res.Stable || res.AtNash {
		t.Fatalf("want stable at non-NE, got %+v", res)
	}
}

func TestDetectStabilityUnstableDevice(t *testing.T) {
	bws := []float64{10, 10}
	argmax := [][]int{{0, 0}, {0, 1}}
	prob := [][]float64{{0.9, 0.9}, {0.9, 0.5}}
	res := DetectStability(bws, argmax, prob)
	if res.Stable {
		t.Fatalf("want unstable, got %+v", res)
	}
}

func TestDetectStabilityLastDeviceDefinesSlot(t *testing.T) {
	bws := []float64{10, 10}
	argmax := [][]int{{0, 0, 0, 0}, {0, 0, 1, 1}}
	prob := [][]float64{{0.9, 0.9, 0.9, 0.9}, {0.9, 0.9, 0.9, 0.9}}
	res := DetectStability(bws, argmax, prob)
	if !res.Stable || res.Slot != 2 {
		t.Fatalf("want stable at slot 2, got %+v", res)
	}
}

func TestDistanceFromAverageBitRate(t *testing.T) {
	// Fair share of 33 Mbps over 3 devices is 11; observations 11,11,5.5
	// put one device 50% below → mean distance 50/3.
	got := DistanceFromAverageBitRate(33, []float64{11, 11, 5.5})
	want := 50.0 / 3
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("distance = %v, want %v", got, want)
	}
}

func TestDistanceFromAverageBitRateAboveFairShareIsZero(t *testing.T) {
	if got := DistanceFromAverageBitRate(30, []float64{20, 20, 20}); got != 0 {
		t.Fatalf("distance = %v, want 0 when everyone beats the fair share", got)
	}
}

func TestDistanceFromAverageBitRateDegenerate(t *testing.T) {
	if got := DistanceFromAverageBitRate(0, []float64{1}); got != 0 {
		t.Fatalf("zero aggregate should yield 0, got %v", got)
	}
	if got := DistanceFromAverageBitRate(10, nil); got != 0 {
		t.Fatalf("no devices should yield 0, got %v", got)
	}
}

func TestDistanceBelowFairRateSubgroup(t *testing.T) {
	// Subgroup measured against the whole population's fair share.
	got := DistanceBelowFairRate(2, []float64{1, 2})
	if math.Abs(got-25) > 1e-9 {
		t.Fatalf("subgroup distance = %v, want 25", got)
	}
}

func TestOptimalDistanceFromAverage(t *testing.T) {
	// Uniform networks: the NE gives everyone exactly the fair share.
	if got := OptimalDistanceFromAverage([]float64{11, 11, 11}, 21); got != 0 {
		t.Fatalf("uniform optimal distance = %v, want 0", got)
	}
	// Heterogeneous networks: even the NE leaves some devices below
	// average, so the floor is positive.
	got := OptimalDistanceFromAverage([]float64{4, 7, 22}, 14)
	if got <= 0 || got >= 100 {
		t.Fatalf("setting-1 optimal distance = %v, want small positive", got)
	}
}
