package game

import (
	"math"
	"testing"
	"testing/quick"

	"smartexp3/internal/rngutil"
)

func TestShare(t *testing.T) {
	tests := []struct {
		name  string
		bw    float64
		count int
		want  float64
	}{
		{name: "single device", bw: 22, count: 1, want: 22},
		{name: "shared", bw: 22, count: 2, want: 11},
		{name: "empty network", bw: 22, count: 0, want: 0},
		{name: "negative guarded", bw: 22, count: -1, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Share(tt.bw, tt.count); got != tt.want {
				t.Fatalf("Share(%v,%d) = %v, want %v", tt.bw, tt.count, got, tt.want)
			}
		})
	}
}

func TestNashCountsSetting1(t *testing.T) {
	// Setting 1 of the paper: 20 devices, rates 4/7/22 — the unique NE is
	// (2, 4, 14) with shares (2, 1.75, ~1.571).
	counts := NashCounts([]float64{4, 7, 22}, 20)
	if counts[0] != 2 || counts[1] != 4 || counts[2] != 14 {
		t.Fatalf("NashCounts = %v, want [2 4 14]", counts)
	}
	if !IsNash([]float64{4, 7, 22}, counts) {
		t.Fatal("computed allocation is not a Nash equilibrium")
	}
}

func TestNashCountsSetting2(t *testing.T) {
	counts := NashCounts([]float64{11, 11, 11}, 21)
	for i, c := range counts {
		if c != 7 {
			t.Fatalf("uniform setting should split evenly, got counts[%d]=%d", i, c)
		}
	}
}

func TestNashCountsTotalDevices(t *testing.T) {
	counts := NashCounts([]float64{5, 9}, 13)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 13 {
		t.Fatalf("allocation places %d devices, want 13", total)
	}
}

func TestNashCountsNoImprovingDeviationProperty(t *testing.T) {
	rng := rngutil.New(1)
	f := func() bool {
		k := 2 + rng.Intn(5)
		n := 1 + rng.Intn(40)
		bws := make([]float64, k)
		for i := range bws {
			bws[i] = 1 + 30*rng.Float64()
		}
		return IsNash(bws, NashCounts(bws, n))
	}
	for i := 0; i < 200; i++ {
		if !f() {
			t.Fatalf("water-filling produced a non-equilibrium allocation (iteration %d)", i)
		}
	}
}

func TestIsNashDetectsDeviation(t *testing.T) {
	// All 20 devices on the 4 Mbps network: moving to 22 Mbps wins.
	if IsNash([]float64{4, 7, 22}, []int{20, 0, 0}) {
		t.Fatal("grossly unbalanced allocation accepted as NE")
	}
}

func TestIsEpsilonNash(t *testing.T) {
	bws := []float64{10, 10}
	counts := []int{6, 4} // shares 1.67 vs 2.5; moving 6→5 gives 2.0, +0.33
	if IsNash(bws, counts) {
		t.Fatal("unbalanced split accepted as exact NE")
	}
	if !IsEpsilonNash(bws, counts, 0.5) {
		t.Fatal("allocation should be a 0.5-equilibrium")
	}
	if IsEpsilonNash(bws, counts, 0.1) {
		t.Fatal("allocation should not be a 0.1-equilibrium")
	}
}

func TestNashSharesSortedAndComplete(t *testing.T) {
	shares := NashShares([]float64{4, 7, 22}, []int{2, 4, 14})
	if len(shares) != 20 {
		t.Fatalf("want 20 shares, got %d", len(shares))
	}
	for i := 1; i < len(shares); i++ {
		if shares[i] < shares[i-1] {
			t.Fatalf("shares not sorted: %v", shares)
		}
	}
	if shares[len(shares)-1] != 2 {
		t.Fatalf("max share %v, want 2 (4 Mbps / 2 devices)", shares[len(shares)-1])
	}
}

func TestDistanceToNashPaperExample(t *testing.T) {
	// The paper's worked example: gains {1,1,4} vs NE shares {2,2,2} → 100%.
	got := DistanceToNash([]float64{1, 1, 4}, []float64{2, 2, 2})
	if math.Abs(got-100) > 1e-9 {
		t.Fatalf("distance = %v, want 100", got)
	}
}

func TestDistanceToNashZeroAtEquilibrium(t *testing.T) {
	bws := []float64{4, 7, 22}
	counts := NashCounts(bws, 20)
	shares := NashShares(bws, counts)
	if got := DistanceToNash(shares, shares); got != 0 {
		t.Fatalf("distance at NE = %v, want 0", got)
	}
}

func TestDistanceToNashZeroAtEquilibriumProperty(t *testing.T) {
	rng := rngutil.New(2)
	for i := 0; i < 100; i++ {
		k := 2 + rng.Intn(4)
		n := 1 + rng.Intn(30)
		bws := make([]float64, k)
		for j := range bws {
			bws[j] = 1 + 20*rng.Float64()
		}
		shares := NashShares(bws, NashCounts(bws, n))
		if d := DistanceToNash(shares, shares); d != 0 {
			t.Fatalf("iteration %d: distance %v at equilibrium", i, d)
		}
	}
}

func TestDistanceToNashNonNegativeProperty(t *testing.T) {
	f := func(rawCur, rawNE []float64) bool {
		n := len(rawCur)
		if len(rawNE) < n {
			n = len(rawNE)
		}
		if n == 0 {
			return true
		}
		cur := make([]float64, n)
		ne := make([]float64, n)
		for i := 0; i < n; i++ {
			cur[i] = math.Abs(rawCur[i])
			ne[i] = math.Abs(rawNE[i])
			if math.IsNaN(cur[i]) || math.IsInf(cur[i], 0) {
				cur[i] = 1
			}
			if math.IsNaN(ne[i]) || math.IsInf(ne[i], 0) {
				ne[i] = 1
			}
		}
		d := DistanceToNash(cur, ne)
		return d >= 0 && d <= maxDistance
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceToNashMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for mismatched lengths")
		}
	}()
	DistanceToNash([]float64{1}, []float64{1, 2})
}

func TestDistanceCapsAtMax(t *testing.T) {
	got := DistanceToNash([]float64{0}, []float64{10})
	if got != maxDistance {
		t.Fatalf("distance with zero gain = %v, want cap %v", got, maxDistance)
	}
}

func TestInstanceValidate(t *testing.T) {
	in := Instance{Bandwidths: []float64{1, 2}}
	in.Devices = []Device{{Available: nil}}
	if err := in.Validate(); err == nil {
		t.Fatal("want error for empty availability")
	}
	in.Devices = []Device{{Available: []int{5}}}
	if err := in.Validate(); err == nil {
		t.Fatal("want error for out-of-range network")
	}
	in.Devices = []Device{{Available: []int{0, 1}}}
	if err := in.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestNashAssignmentHomogeneousMatchesCounts(t *testing.T) {
	bws := []float64{4, 7, 22}
	in := Instance{Bandwidths: bws}
	for d := 0; d < 20; d++ {
		in.Devices = append(in.Devices, Device{Available: []int{0, 1, 2}})
	}
	assign := in.NashAssignment()
	counts := make([]int, 3)
	for _, i := range assign {
		counts[i]++
	}
	want := NashCounts(bws, 20)
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("assignment counts %v, want %v", counts, want)
		}
	}
	if !in.IsNashAssignment(assign) {
		t.Fatal("assignment is not an equilibrium")
	}
}

func TestNashAssignmentHeterogeneousProperty(t *testing.T) {
	rng := rngutil.New(3)
	for i := 0; i < 100; i++ {
		k := 2 + rng.Intn(4)
		bws := make([]float64, k)
		for j := range bws {
			bws[j] = 1 + 20*rng.Float64()
		}
		in := Instance{Bandwidths: bws}
		n := 1 + rng.Intn(25)
		for d := 0; d < n; d++ {
			var avail []int
			for j := 0; j < k; j++ {
				if rng.Float64() < 0.6 {
					avail = append(avail, j)
				}
			}
			if len(avail) == 0 {
				avail = []int{rng.Intn(k)}
			}
			in.Devices = append(in.Devices, Device{Available: avail})
		}
		assign := in.NashAssignment()
		if !in.IsNashAssignment(assign) {
			t.Fatalf("iteration %d: best-response dynamics did not reach NE", i)
		}
	}
}

func TestNashAssignmentFromKeepsValidSeeds(t *testing.T) {
	// When the seed already is an equilibrium, it must be returned as-is.
	bws := []float64{4, 7, 22}
	in := Instance{Bandwidths: bws}
	for d := 0; d < 20; d++ {
		in.Devices = append(in.Devices, Device{Available: []int{0, 1, 2}})
	}
	seed := in.NashAssignment()
	again := in.NashAssignmentFrom(seed)
	for d := range seed {
		if seed[d] != again[d] {
			t.Fatalf("equilibrium seed perturbed at device %d", d)
		}
	}
}

func TestDistanceToNashGrouped(t *testing.T) {
	in := Instance{
		Bandwidths: []float64{10, 10},
		Devices: []Device{
			{Available: []int{0, 1}},
			{Available: []int{0, 1}},
		},
	}
	assign := in.NashAssignment()
	shares := in.SharesOf(assign)
	if d := in.DistanceToNashGrouped(shares); d != 0 {
		t.Fatalf("grouped distance at NE = %v", d)
	}
	// One device starved: distance must be positive.
	if d := in.DistanceToNashGrouped([]float64{shares[0], shares[1] / 2}); d <= 0 {
		t.Fatalf("grouped distance = %v, want > 0", d)
	}
}

func TestPreparedNEDistanceMatchesDirect(t *testing.T) {
	in := Instance{Bandwidths: []float64{4, 7, 22}}
	for d := 0; d < 12; d++ {
		in.Devices = append(in.Devices, Device{Available: []int{0, 1, 2}})
	}
	prep, err := Prepare(in)
	if err != nil {
		t.Fatal(err)
	}
	gains := make([]float64, 12)
	for d := range gains {
		gains[d] = float64(d + 1)
	}
	direct := in.DistanceToNashGrouped(gains)
	cached := prep.Distance(gains, nil)
	if math.Abs(direct-cached) > 1e-9 {
		t.Fatalf("prepared distance %v != direct %v", cached, direct)
	}
}

func TestPreparedNESubsetDistance(t *testing.T) {
	in := Instance{Bandwidths: []float64{10, 10}}
	for d := 0; d < 4; d++ {
		in.Devices = append(in.Devices, Device{Available: []int{0, 1}})
	}
	prep, err := Prepare(in)
	if err != nil {
		t.Fatal(err)
	}
	gains := []float64{5, 5, 0.5, 0.5}
	all := prep.Distance(gains, nil)
	richOnly := prep.Distance(gains, []int{0, 1})
	if richOnly != 0 {
		t.Fatalf("well-served subset distance = %v, want 0", richOnly)
	}
	if all <= 0 {
		t.Fatalf("overall distance = %v, want > 0", all)
	}
}

func TestPrepareRejectsInvalidInstance(t *testing.T) {
	if _, err := Prepare(Instance{Bandwidths: []float64{1}, Devices: []Device{{}}}); err == nil {
		t.Fatal("want validation error")
	}
}

// TestPrepareGroupsRespectMultiplicity: availability sets are multisets —
// [0,0,1] and [0,1,2] have equal lengths and overlapping members but must
// land in distinct Definition 3 groups.
func TestPrepareGroupsRespectMultiplicity(t *testing.T) {
	in := Instance{
		Bandwidths: []float64{10, 10, 10},
		Devices: []Device{
			{Available: []int{0, 0, 1}},
			{Available: []int{0, 1, 2}},
			{Available: []int{1, 0, 2}}, // same set as device 1, reordered
		},
	}
	p, err := Prepare(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.nGroups != 2 {
		t.Fatalf("nGroups = %d, want 2 (duplicate-id set must stay separate)", p.nGroups)
	}
	if p.groupOf[0] == p.groupOf[1] {
		t.Fatal("[0,0,1] grouped with [0,1,2]")
	}
	if p.groupOf[1] != p.groupOf[2] {
		t.Fatal("order-insensitive grouping broken: [0,1,2] vs [1,0,2]")
	}
}
