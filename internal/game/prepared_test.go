package game

import (
	"math"
	"math/rand"
	"testing"
)

// heterogeneousInstance builds a game with several availability groups and
// enough devices to make rank-matching non-trivial.
func heterogeneousInstance(devices int, rng *rand.Rand) Instance {
	avail := [][]int{{0, 1, 2}, {0, 3}, {0, 4}, {1, 2, 3, 4}}
	in := Instance{Bandwidths: []float64{16, 14, 22, 7, 4}}
	for d := 0; d < devices; d++ {
		in.Devices = append(in.Devices, Device{Available: avail[rng.Intn(len(avail))]})
	}
	return in
}

// TestPrepareIntoMatchesFresh pins the pooling contract: re-solving many
// different instances through one reused PreparedNE must give the same
// assignment, shares, grouping and distances as a fresh Prepare of each.
func TestPrepareIntoMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pooled PreparedNE
	for trial := 0; trial < 40; trial++ {
		in := heterogeneousInstance(3+rng.Intn(12), rng)
		if err := pooled.PrepareInto(in); err != nil {
			t.Fatal(err)
		}
		fresh, err := Prepare(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(pooled.Assignment()) != len(fresh.Assignment()) {
			t.Fatalf("trial %d: assignment lengths differ", trial)
		}
		gains := make([]float64, len(in.Devices))
		for d := range gains {
			if pooled.Assignment()[d] != fresh.Assignment()[d] {
				t.Fatalf("trial %d: device %d assigned %d (pooled) vs %d (fresh)",
					trial, d, pooled.Assignment()[d], fresh.Assignment()[d])
			}
			if pooled.ShareOf(d) != fresh.ShareOf(d) {
				t.Fatalf("trial %d: device %d share %v (pooled) vs %v (fresh)",
					trial, d, pooled.ShareOf(d), fresh.ShareOf(d))
			}
			gains[d] = rng.Float64() * 22
		}
		if got, want := pooled.Distance(gains, nil), fresh.Distance(gains, nil); got != want {
			t.Fatalf("trial %d: distance %v (pooled) vs %v (fresh)", trial, got, want)
		}
	}
}

// TestPrepareIntoWarmAllocations asserts the pooling pay-off: once a
// PreparedNE has solved an instance of a given size, re-solving the same
// shape allocates nothing.
func TestPrepareIntoWarmAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := heterogeneousInstance(20, rng)
	var p PreparedNE
	if err := p.PrepareInto(in); err != nil { // warm-up
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := p.PrepareInto(in); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm PrepareInto allocates %.1f objects, want 0", avg)
	}
}

// TestNashAssignmentFromScratchMatches pins the scratch solver against the
// allocating entry point, including seeded (minimal-churn) solves.
func TestNashAssignmentFromScratchMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var scratch AssignScratch
	for trial := 0; trial < 40; trial++ {
		in := heterogeneousInstance(2+rng.Intn(10), rng)
		var seed []int
		if trial%2 == 1 {
			seed = make([]int, len(in.Devices))
			for d := range seed {
				seed[d] = rng.Intn(len(in.Bandwidths)+1) - 1 // -1 means unseeded
			}
		}
		want := in.NashAssignmentFrom(seed)
		got := in.NashAssignmentFromScratch(seed, &scratch)
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("trial %d: device %d assigned %d (scratch) vs %d (alloc)",
					trial, d, got[d], want[d])
			}
		}
		if !in.IsNashAssignment(got) {
			t.Fatalf("trial %d: scratch assignment is not a Nash equilibrium", trial)
		}
	}
}

// TestDistanceEvalWarmAllocations is the AllocsPerRun gate behind the
// //repolint:allocfree marker on DistanceEval.Distance: once the per-group
// scratch has grown to the instance's group sizes, evaluating Definition 3 —
// over all devices or a member subset — allocates nothing.
func TestDistanceEvalWarmAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := heterogeneousInstance(24, rng)
	var p PreparedNE
	if err := p.PrepareInto(in); err != nil {
		t.Fatal(err)
	}
	e := p.NewEval()
	gains := make([]float64, len(in.Devices))
	for d := range gains {
		gains[d] = rng.Float64() * 5
	}
	members := []int{0, 3, 5, 7, 11, 13}
	e.Distance(gains, nil) // warm: scratch reaches full group sizes
	avg := testing.AllocsPerRun(100, func() {
		e.Distance(gains, nil)
		e.Distance(gains, members)
	})
	if avg != 0 {
		t.Fatalf("warm Distance allocates %.1f objects, want 0", avg)
	}
}

// TestDistanceToNashGroupedIsOrderIndependent is the regression test for the
// determinism waiver in DistanceToNashGrouped: the metric folds math.Max over
// a map of availability groups, so its result must not depend on map
// iteration order. Repeated calls hit different orders; all must agree, and
// all must match the deterministic PreparedNE evaluation of the same
// instance.
func TestDistanceToNashGroupedIsOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := heterogeneousInstance(24, rng)
	gains := make([]float64, len(in.Devices))
	for d := range gains {
		gains[d] = rng.Float64() * 5
	}
	want := in.DistanceToNashGrouped(gains)
	for i := 0; i < 50; i++ {
		if got := in.DistanceToNashGrouped(gains); got != want {
			t.Fatalf("call %d: distance %v, previous calls %v — map order leaked into the result", i, got, want)
		}
	}
	var p PreparedNE
	if err := p.PrepareInto(in); err != nil {
		t.Fatal(err)
	}
	if got := p.Distance(gains, nil); math.Abs(got-want) > 1e-9 {
		t.Fatalf("prepared Distance %v, grouped %v", got, want)
	}
}
