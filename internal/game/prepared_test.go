package game

import (
	"math/rand"
	"testing"
)

// heterogeneousInstance builds a game with several availability groups and
// enough devices to make rank-matching non-trivial.
func heterogeneousInstance(devices int, rng *rand.Rand) Instance {
	avail := [][]int{{0, 1, 2}, {0, 3}, {0, 4}, {1, 2, 3, 4}}
	in := Instance{Bandwidths: []float64{16, 14, 22, 7, 4}}
	for d := 0; d < devices; d++ {
		in.Devices = append(in.Devices, Device{Available: avail[rng.Intn(len(avail))]})
	}
	return in
}

// TestPrepareIntoMatchesFresh pins the pooling contract: re-solving many
// different instances through one reused PreparedNE must give the same
// assignment, shares, grouping and distances as a fresh Prepare of each.
func TestPrepareIntoMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pooled PreparedNE
	for trial := 0; trial < 40; trial++ {
		in := heterogeneousInstance(3+rng.Intn(12), rng)
		if err := pooled.PrepareInto(in); err != nil {
			t.Fatal(err)
		}
		fresh, err := Prepare(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(pooled.Assignment()) != len(fresh.Assignment()) {
			t.Fatalf("trial %d: assignment lengths differ", trial)
		}
		gains := make([]float64, len(in.Devices))
		for d := range gains {
			if pooled.Assignment()[d] != fresh.Assignment()[d] {
				t.Fatalf("trial %d: device %d assigned %d (pooled) vs %d (fresh)",
					trial, d, pooled.Assignment()[d], fresh.Assignment()[d])
			}
			if pooled.ShareOf(d) != fresh.ShareOf(d) {
				t.Fatalf("trial %d: device %d share %v (pooled) vs %v (fresh)",
					trial, d, pooled.ShareOf(d), fresh.ShareOf(d))
			}
			gains[d] = rng.Float64() * 22
		}
		if got, want := pooled.Distance(gains, nil), fresh.Distance(gains, nil); got != want {
			t.Fatalf("trial %d: distance %v (pooled) vs %v (fresh)", trial, got, want)
		}
	}
}

// TestPrepareIntoWarmAllocations asserts the pooling pay-off: once a
// PreparedNE has solved an instance of a given size, re-solving the same
// shape allocates nothing.
func TestPrepareIntoWarmAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := heterogeneousInstance(20, rng)
	var p PreparedNE
	if err := p.PrepareInto(in); err != nil { // warm-up
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := p.PrepareInto(in); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm PrepareInto allocates %.1f objects, want 0", avg)
	}
}

// TestNashAssignmentFromScratchMatches pins the scratch solver against the
// allocating entry point, including seeded (minimal-churn) solves.
func TestNashAssignmentFromScratchMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var scratch AssignScratch
	for trial := 0; trial < 40; trial++ {
		in := heterogeneousInstance(2+rng.Intn(10), rng)
		var seed []int
		if trial%2 == 1 {
			seed = make([]int, len(in.Devices))
			for d := range seed {
				seed[d] = rng.Intn(len(in.Bandwidths)+1) - 1 // -1 means unseeded
			}
		}
		want := in.NashAssignmentFrom(seed)
		got := in.NashAssignmentFromScratch(seed, &scratch)
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("trial %d: device %d assigned %d (scratch) vs %d (alloc)",
					trial, d, got[d], want[d])
			}
		}
		if !in.IsNashAssignment(got) {
			t.Fatalf("trial %d: scratch assignment is not a Nash equilibrium", trial)
		}
	}
}
