package game

import (
	"math"
	"slices"
)

// PreparedNE caches the Nash-equilibrium solution of an Instance so that the
// per-slot distance-to-NE metric can be evaluated cheaply: the simulator
// recomputes the NE only when the set of active devices or an availability
// set changes (an "epoch"), and evaluates Distance every slot.
type PreparedNE struct {
	shares  []float64 // per-device gain at the cached NE assignment
	groupOf []int     // availability-group id per device (first-occurrence order)
	nGroups int
	assign  []int         // the cached NE assignment
	solver  AssignScratch // NE solve buffers, reused across epochs
	reps    [][]int       // one representative availability set per group
}

// Prepare solves the instance once and returns the cached solution. Devices
// are partitioned into availability groups (identical availability sets) in
// first-occurrence order; Definition 3 rank-matches gains within each group.
//
// Callers that re-solve on every epoch (the simulator's workspace) should
// keep one PreparedNE and call PrepareInto instead, which reuses its buffers.
func Prepare(in Instance) (*PreparedNE, error) {
	p := &PreparedNE{}
	if err := p.PrepareInto(in); err != nil {
		return nil, err
	}
	return p, nil
}

// PrepareInto re-solves the instance into p in place, reusing every buffer a
// previous solve left behind: after the first epoch of a replication,
// refreshing the NE cache allocates nothing. The cached solution is
// overwritten, so slices previously obtained from Assignment are invalidated.
// The result is identical to a fresh Prepare of the same instance.
func (p *PreparedNE) PrepareInto(in Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	assign := in.NashAssignmentFromScratch(nil, &p.solver)
	p.assign = growInts(p.assign, len(assign))
	copy(p.assign, assign)
	// The solver's counts are the occupancy of the final assignment, so the
	// NE shares follow without a recount.
	p.shares = growFloats(p.shares, len(in.Devices))
	for d, i := range p.assign {
		p.shares[d] = Share(in.Bandwidths[i], p.solver.counts[i])
	}
	// Group devices by availability set. The scan is quadratic in the number
	// of distinct groups, which is small (a topology has few areas); it
	// avoids the per-device string signatures the previous implementation
	// allocated.
	p.groupOf = growInts(p.groupOf, len(in.Devices))
	p.reps = p.reps[:0]
	for d, dev := range in.Devices {
		g := -1
		for i, rep := range p.reps {
			if sameAvailability(rep, dev.Available) {
				g = i
				break
			}
		}
		if g < 0 {
			g = len(p.reps)
			p.reps = append(p.reps, dev.Available)
		}
		p.groupOf[d] = g
	}
	p.nGroups = len(p.reps)
	return nil
}

// sameAvailability reports whether two availability sets contain the same
// networks with the same multiplicities (topology validation does not
// forbid duplicate ids within an area). The quadratic count-compare avoids
// allocating; availability sets are small.
func sameAvailability(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		ca, cb := 0, 0
		for _, y := range a {
			if y == x {
				ca++
			}
		}
		for _, y := range b {
			if y == x {
				cb++
			}
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Assignment returns the cached NE assignment (device → network).
// Callers must not modify it.
func (p *PreparedNE) Assignment() []int { return p.assign }

// ShareOf returns device d's gain at the cached NE.
func (p *PreparedNE) ShareOf(d int) float64 { return p.shares[d] }

// Distance evaluates Definition 3 over the given member devices (nil means
// all devices): members are partitioned by availability group, each
// partition's current gains are rank-matched against the partition's NE
// shares, and the worst percentage shortfall is returned. currentGains is
// indexed like the instance's devices.
//
// Distance allocates scratch per call; the simulator's per-slot loop uses a
// reusable DistanceEval instead.
func (p *PreparedNE) Distance(currentGains []float64, members []int) float64 {
	e := p.NewEval()
	return e.Distance(currentGains, members)
}

// DistanceEval evaluates Definition 3 against one PreparedNE without
// allocating per call: the per-group gain buffers are owned by the
// evaluator and reused across slots. An evaluator must not be shared
// between goroutines.
type DistanceEval struct {
	p       *PreparedNE
	cur, ne [][]float64 // per-group scratch, truncated to zero each call
}

// NewEval returns a reusable Definition 3 evaluator for the prepared NE.
func (p *PreparedNE) NewEval() *DistanceEval {
	e := &DistanceEval{}
	e.Reset(p)
	return e
}

// Reset retargets the evaluator at another prepared NE (a new epoch),
// keeping its scratch buffers. The simulator carries one evaluator per
// workspace across every epoch and replication.
func (e *DistanceEval) Reset(p *PreparedNE) {
	e.p = p
	for len(e.cur) < p.nGroups {
		e.cur = append(e.cur, nil)
		e.ne = append(e.ne, nil)
	}
}

// Distance is PreparedNE.Distance evaluated through the reusable scratch.
// It returns bit-identical results to the allocating form: members bucket
// into groups in the same order, and each group's gains are sorted and
// rank-matched identically.
//
//repolint:allocfree via TestDistanceEvalWarmAllocations
func (e *DistanceEval) Distance(currentGains []float64, members []int) float64 {
	p := e.p
	for g := 0; g < p.nGroups; g++ {
		e.cur[g] = e.cur[g][:0]
		e.ne[g] = e.ne[g][:0]
	}
	if members == nil {
		for d := range p.shares {
			g := p.groupOf[d]
			//repolint:ignore allocfree append into per-group scratch whose capacity Prepare sized to the full group and which is retained across calls
			e.cur[g] = append(e.cur[g], currentGains[d])
			//repolint:ignore allocfree append into per-group scratch whose capacity Prepare sized to the full group and which is retained across calls
			e.ne[g] = append(e.ne[g], p.shares[d])
		}
	} else {
		for _, d := range members {
			g := p.groupOf[d]
			//repolint:ignore allocfree append into per-group scratch whose capacity Prepare sized to the full group and which is retained across calls
			e.cur[g] = append(e.cur[g], currentGains[d])
			//repolint:ignore allocfree append into per-group scratch whose capacity Prepare sized to the full group and which is retained across calls
			e.ne[g] = append(e.ne[g], p.shares[d])
		}
	}
	var worst float64
	for g := 0; g < p.nGroups; g++ {
		if len(e.cur[g]) == 0 {
			continue
		}
		slices.Sort(e.cur[g])
		slices.Sort(e.ne[g])
		for i := range e.cur[g] {
			worst = math.Max(worst, percentGainIncrease(e.cur[g][i], e.ne[g][i]))
		}
	}
	return worst
}
