package game

import (
	"math"
	"sort"
)

// PreparedNE caches the Nash-equilibrium solution of an Instance so that the
// per-slot distance-to-NE metric can be evaluated cheaply: the simulator
// recomputes the NE only when the set of active devices or an availability
// set changes (an "epoch"), and evaluates Distance every slot.
type PreparedNE struct {
	shares []float64 // per-device gain at the cached NE assignment
	sigs   []string  // availability signature per device
	assign []int     // the cached NE assignment
}

// Prepare solves the instance once and returns the cached solution.
func Prepare(in Instance) (*PreparedNE, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	assign := in.NashAssignment()
	p := &PreparedNE{
		shares: in.SharesOf(assign),
		sigs:   make([]string, len(in.Devices)),
		assign: assign,
	}
	for d, dev := range in.Devices {
		p.sigs[d] = signature(dev.Available)
	}
	return p, nil
}

// Assignment returns the cached NE assignment (device → network).
// Callers must not modify it.
func (p *PreparedNE) Assignment() []int { return p.assign }

// ShareOf returns device d's gain at the cached NE.
func (p *PreparedNE) ShareOf(d int) float64 { return p.shares[d] }

// Distance evaluates Definition 3 over the given member devices (nil means
// all devices): members are partitioned by availability signature, each
// partition's current gains are rank-matched against the partition's NE
// shares, and the worst percentage shortfall is returned. currentGains is
// indexed like the instance's devices.
func (p *PreparedNE) Distance(currentGains []float64, members []int) float64 {
	if members == nil {
		members = make([]int, len(p.shares))
		for d := range members {
			members[d] = d
		}
	}
	groups := make(map[string][]int)
	for _, d := range members {
		groups[p.sigs[d]] = append(groups[p.sigs[d]], d)
	}
	var worst float64
	for _, ds := range groups {
		cur := make([]float64, 0, len(ds))
		ne := make([]float64, 0, len(ds))
		for _, d := range ds {
			cur = append(cur, currentGains[d])
			ne = append(ne, p.shares[d])
		}
		sort.Float64s(cur)
		sort.Float64s(ne)
		for i := range cur {
			worst = math.Max(worst, percentGainIncrease(cur[i], ne[i]))
		}
	}
	return worst
}
