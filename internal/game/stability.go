package game

// This file implements stable-state detection (Definition 2) and the
// distance-from-average-bit-rate metric used in the controlled experiments
// (Definition 4).

// StableProbability is the selection-probability threshold of Definition 2:
// an algorithm instance is stable on a network once it selects that network
// with probability at least 0.75 and keeps doing so until the end of the run.
const StableProbability = 0.75

// StableFrom returns the earliest slot t0 such that from t0 through the end
// of the run the device's most-probable network is constant and its
// probability is at least StableProbability, or -1 if the device never
// stabilizes. argmax[t] is the index of the most probable network at slot t
// and prob[t] its probability.
func StableFrom(argmax []int, prob []float64) int {
	if len(argmax) == 0 || len(argmax) != len(prob) {
		return -1
	}
	last := len(argmax) - 1
	if prob[last] < StableProbability {
		return -1
	}
	net := argmax[last]
	t0 := last
	for t := last; t >= 0; t-- {
		if argmax[t] != net || prob[t] < StableProbability {
			break
		}
		t0 = t
	}
	return t0
}

// RunStability summarizes Definition 2 for one run.
type RunStability struct {
	// Stable is true when every device stabilized.
	Stable bool
	// Slot is the slot at which the last device stabilized (the run's time
	// to stable state); meaningful only when Stable.
	Slot int
	// AtNash is true when the run is stable and the allocation implied by
	// each device's stable network is a pure Nash equilibrium; meaningful
	// only when Stable.
	AtNash bool
}

// DetectStability applies Definition 2 to a run. argmax[d][t] and prob[d][t]
// are per-device per-slot snapshots of the most probable network;
// bandwidths are the network bandwidths (used to classify the stable state
// as Nash or not).
func DetectStability(bandwidths []float64, argmax [][]int, prob [][]float64) RunStability {
	var res RunStability
	counts := make([]int, len(bandwidths))
	for d := range argmax {
		t0 := StableFrom(argmax[d], prob[d])
		if t0 < 0 {
			return RunStability{}
		}
		if t0 > res.Slot {
			res.Slot = t0
		}
		last := len(argmax[d]) - 1
		counts[argmax[d][last]]++
	}
	res.Stable = true
	res.AtNash = IsNash(bandwidths, counts)
	return res
}

// DistanceFromAverageBitRate implements Definition 4: estimate the fair
// average bit rate g = (aggregate bandwidth)/(number of devices) and return
// the mean percentage by which observed bit rates fall below g, i.e.
// mean over devices of max(g - g_j, 0) * 100 / g.
func DistanceFromAverageBitRate(aggregateBandwidth float64, observed []float64) float64 {
	if len(observed) == 0 || aggregateBandwidth <= 0 {
		return 0
	}
	return DistanceBelowFairRate(aggregateBandwidth/float64(len(observed)), observed)
}

// DistanceBelowFairRate is Definition 4 with an explicit fair rate g: the
// mean percentage by which the observed bit rates fall below g. It lets a
// subgroup of devices (for example the Smart EXP3 half of a mixed
// population) be measured against the fair share of the whole population.
func DistanceBelowFairRate(fairRate float64, observed []float64) float64 {
	if len(observed) == 0 || fairRate <= 0 {
		return 0
	}
	var total float64
	for _, gj := range observed {
		if gj < fairRate {
			total += (fairRate - gj) * 100 / fairRate
		}
	}
	return total / float64(len(observed))
}

// OptimalDistanceFromAverage returns the Definition 4 distance evaluated at
// the Nash allocation: the floor the controlled-experiment figures plot as
// "Optimal". With heterogeneous network rates even the NE leaves some
// devices below the global average, so the optimal distance is generally
// positive.
func OptimalDistanceFromAverage(bandwidths []float64, devices int) float64 {
	counts := NashCounts(bandwidths, devices)
	shares := NashShares(bandwidths, counts)
	var agg float64
	for _, b := range bandwidths {
		agg += b
	}
	return DistanceFromAverageBitRate(agg, shares)
}
