package scenario

import (
	"bytes"
	"strings"
	"testing"

	"smartexp3/internal/core"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/sim"
)

const sampleJSON = `{
  "name": "dynamic-join",
  "description": "9 devices join mid-run",
  "networks": [
    {"name": "wlan-4", "type": "wifi", "bandwidthMbps": 4},
    {"name": "wlan-7", "type": "wifi", "bandwidthMbps": 7},
    {"name": "cell-22", "type": "cellular", "bandwidthMbps": 22}
  ],
  "devices": [
    {"algorithm": "smart", "count": 11},
    {"algorithm": "smart", "count": 9, "join": 400, "leave": 800}
  ],
  "slots": 1200,
  "seed": 7
}`

func TestReadAndToConfig(t *testing.T) {
	sc, err := Read(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "dynamic-join" {
		t.Fatalf("name = %q", sc.Name)
	}
	cfg, err := sc.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Devices) != 20 {
		t.Fatalf("count expansion gave %d devices, want 20", len(cfg.Devices))
	}
	if cfg.Devices[11].Join != 400 || cfg.Devices[11].Leave != 800 {
		t.Fatalf("transient device spec wrong: %+v", cfg.Devices[11])
	}
	if cfg.Topology.Networks[2].Type != netmodel.Cellular {
		t.Fatal("cellular type not parsed")
	}
	if len(cfg.Topology.Areas) != 1 || len(cfg.Topology.Areas[0]) != 3 {
		t.Fatalf("default single area wrong: %v", cfg.Topology.Areas)
	}
}

func TestScenarioRunsEndToEnd(t *testing.T) {
	sc, err := Read(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	sc.Slots = 150
	sc.Devices[0].Count = 4
	sc.Devices[1].Count = 2
	sc.Devices[1].Join = 50
	sc.Devices[1].Leave = 100
	cfg, err := sc.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Devices) != 6 {
		t.Fatalf("got %d devices", len(res.Devices))
	}
}

func TestRoundTrip(t *testing.T) {
	cfg := sim.Config{
		Topology: netmodel.FoodCourt(),
		Devices: []sim.DeviceSpec{
			{Algorithm: core.AlgSmartEXP3, Trajectory: []sim.AreaStay{
				{FromSlot: 0, Area: 0}, {FromSlot: 100, Area: 2},
			}},
			{Algorithm: core.AlgGreedy, Join: 10},
		},
		Slots: 300,
		Seed:  3,
	}
	sc := FromConfig("roundtrip", cfg)
	var buf bytes.Buffer
	if err := Write(&buf, sc); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := back.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg2.Devices) != len(cfg.Devices) {
		t.Fatalf("device count changed: %d → %d", len(cfg.Devices), len(cfg2.Devices))
	}
	if cfg2.Devices[0].Trajectory[1].Area != 2 {
		t.Fatalf("trajectory lost: %+v", cfg2.Devices[0].Trajectory)
	}
	if cfg2.Topology.Networks[0].Type != netmodel.Cellular {
		t.Fatal("network type lost")
	}
	if cfg2.Slots != 300 || cfg2.Seed != 3 {
		t.Fatalf("scalars lost: %+v", cfg2)
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"name":"x","bogus":1}`)); err == nil {
		t.Fatal("unknown fields must be rejected")
	}
}

func TestToConfigErrors(t *testing.T) {
	tests := []struct {
		name string
		sc   Scenario
		want string
	}{
		{"no networks", Scenario{Name: "x", Slots: 10}, "network"},
		{"bad type", Scenario{
			Name:     "x",
			Networks: []Network{{Name: "n", Type: "lte", Bandwidth: 1}},
			Devices:  []Device{{Algorithm: "smart"}},
			Slots:    10,
		}, "type"},
		{"bad algorithm", Scenario{
			Name:     "x",
			Networks: []Network{{Name: "n", Type: "wifi", Bandwidth: 1}},
			Devices:  []Device{{Algorithm: "sarsa"}},
			Slots:    10,
		}, "algorithm"},
		{"invalid sim config", Scenario{
			Name:     "x",
			Networks: []Network{{Name: "n", Type: "wifi", Bandwidth: 1}},
			Devices:  []Device{{Algorithm: "smart"}},
			Slots:    0,
		}, "slots"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.sc.ToConfig()
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %v, want mention of %q", err, tt.want)
			}
		})
	}
}

func TestAlgorithmNamesComplete(t *testing.T) {
	names := AlgorithmNames()
	if len(names) != 9 {
		t.Fatalf("%d algorithm names, want 9", len(names))
	}
	seen := make(map[core.Algorithm]bool)
	for _, alg := range names {
		if seen[alg] {
			t.Fatalf("duplicate mapping for %v", alg)
		}
		seen[alg] = true
	}
}
