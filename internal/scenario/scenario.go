// Package scenario serializes simulation scenarios as JSON so that custom
// experiments can be defined declaratively (cmd/simulate -config) and shared
// alongside results. A scenario fully describes a sim.Config except for the
// collection options, which remain the caller's choice.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"smartexp3/internal/core"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/sim"
)

// Scenario is the JSON schema for a simulation run.
type Scenario struct {
	Name        string    `json:"name"`
	Description string    `json:"description,omitempty"`
	Networks    []Network `json:"networks"`
	// Areas lists, per service area, the indices of visible networks; it
	// may be omitted for a single area seeing every network.
	Areas       [][]int  `json:"areas,omitempty"`
	Devices     []Device `json:"devices"`
	Slots       int      `json:"slots"`
	SlotSeconds float64  `json:"slotSeconds,omitempty"`
	Seed        int64    `json:"seed,omitempty"`
	NoiseStdDev float64  `json:"noiseStdDev,omitempty"`
	// Groups optionally partitions devices for per-group distance series.
	Groups [][]int `json:"groups,omitempty"`
}

// Network mirrors netmodel.Network with a JSON-friendly type name.
type Network struct {
	Name      string  `json:"name"`
	Type      string  `json:"type"` // "wifi" or "cellular"
	Bandwidth float64 `json:"bandwidthMbps"`
}

// Device mirrors sim.DeviceSpec with algorithm names instead of enums.
type Device struct {
	// Algorithm is one of: exp3, block, hybrid, smartnr, smart, greedy,
	// fullinfo, fixed, centralized.
	Algorithm string `json:"algorithm"`
	// Count expands this entry into that many identical devices (default 1).
	Count int `json:"count,omitempty"`
	Join  int `json:"join,omitempty"`
	Leave int `json:"leave,omitempty"`
	// Moves lists {fromSlot, area} trajectory legs.
	Moves []Move `json:"moves,omitempty"`
}

// Move is one trajectory leg.
type Move struct {
	FromSlot int `json:"fromSlot"`
	Area     int `json:"area"`
}

// AlgorithmNames maps the JSON algorithm names to core algorithms.
func AlgorithmNames() map[string]core.Algorithm {
	return map[string]core.Algorithm{
		"exp3":        core.AlgEXP3,
		"block":       core.AlgBlockEXP3,
		"hybrid":      core.AlgHybridBlockEXP3,
		"smartnr":     core.AlgSmartEXP3NoReset,
		"smart":       core.AlgSmartEXP3,
		"greedy":      core.AlgGreedy,
		"fullinfo":    core.AlgFullInformation,
		"fixed":       core.AlgFixedRandom,
		"centralized": core.AlgCentralized,
	}
}

// Read parses a scenario from JSON.
func Read(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	return &sc, nil
}

// Write serializes the scenario as indented JSON.
func Write(w io.Writer, sc *Scenario) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sc); err != nil {
		return fmt.Errorf("scenario: encode: %w", err)
	}
	return nil
}

// ToConfig converts the scenario into a runnable simulation config.
func (sc *Scenario) ToConfig() (sim.Config, error) {
	var cfg sim.Config
	if len(sc.Networks) == 0 {
		return cfg, fmt.Errorf("scenario %q: at least one network is required", sc.Name)
	}
	top := netmodel.Topology{Areas: sc.Areas}
	for i, n := range sc.Networks {
		var typ netmodel.Type
		switch n.Type {
		case "wifi", "":
			typ = netmodel.WiFi
		case "cellular":
			typ = netmodel.Cellular
		default:
			return cfg, fmt.Errorf("scenario %q: network %d has unknown type %q", sc.Name, i, n.Type)
		}
		top.Networks = append(top.Networks, netmodel.Network{
			Name:      n.Name,
			Type:      typ,
			Bandwidth: n.Bandwidth,
		})
	}
	if len(top.Areas) == 0 {
		all := make([]int, len(top.Networks))
		for i := range all {
			all[i] = i
		}
		top.Areas = [][]int{all}
	}

	names := AlgorithmNames()
	var devices []sim.DeviceSpec
	for i, d := range sc.Devices {
		alg, ok := names[d.Algorithm]
		if !ok {
			return cfg, fmt.Errorf("scenario %q: device %d has unknown algorithm %q", sc.Name, i, d.Algorithm)
		}
		count := d.Count
		if count <= 0 {
			count = 1
		}
		spec := sim.DeviceSpec{Algorithm: alg, Join: d.Join, Leave: d.Leave}
		for _, m := range d.Moves {
			spec.Trajectory = append(spec.Trajectory, sim.AreaStay{FromSlot: m.FromSlot, Area: m.Area})
		}
		for c := 0; c < count; c++ {
			devices = append(devices, spec)
		}
	}

	cfg = sim.Config{
		Topology:     top,
		Devices:      devices,
		Slots:        sc.Slots,
		SlotSeconds:  sc.SlotSeconds,
		Seed:         sc.Seed,
		NoiseStdDev:  sc.NoiseStdDev,
		DeviceGroups: sc.Groups,
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	return cfg, nil
}

// FromConfig builds a Scenario from a simulation config (the inverse of
// ToConfig, up to device grouping by count).
func FromConfig(name string, cfg sim.Config) *Scenario {
	sc := &Scenario{
		Name:        name,
		Slots:       cfg.Slots,
		SlotSeconds: cfg.SlotSeconds,
		Seed:        cfg.Seed,
		NoiseStdDev: cfg.NoiseStdDev,
		Areas:       cfg.Topology.Areas,
		Groups:      cfg.DeviceGroups,
	}
	for _, n := range cfg.Topology.Networks {
		sc.Networks = append(sc.Networks, Network{
			Name:      n.Name,
			Type:      n.Type.String(),
			Bandwidth: n.Bandwidth,
		})
	}
	reverse := make(map[core.Algorithm]string, len(AlgorithmNames()))
	for name, alg := range AlgorithmNames() {
		reverse[alg] = name
	}
	for _, d := range cfg.Devices {
		dev := Device{
			Algorithm: reverse[d.Algorithm],
			Join:      d.Join,
			Leave:     d.Leave,
		}
		for _, leg := range d.Trajectory {
			dev.Moves = append(dev.Moves, Move{FromSlot: leg.FromSlot, Area: leg.Area})
		}
		sc.Devices = append(sc.Devices, dev)
	}
	return sc
}
