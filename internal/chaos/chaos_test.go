package chaos

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"smartexp3/internal/obsv"
)

// testPayload is a deterministic byte stream long enough to cross many
// fault gaps at the test's MinGap/MaxGap.
func testPayload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + i>>8)
	}
	return b
}

func TestMangleZeroFaultsIsIdentity(t *testing.T) {
	data := testPayload(4096)
	out, first := Mangle(data, Faults{Seed: 1})
	if !bytes.Equal(out, data) {
		t.Fatal("zero-weight faults altered the stream")
	}
	if first != len(data) {
		t.Fatalf("firstFault = %d with no faults enabled, want %d", first, len(data))
	}
}

// TestMangleIsReplayableFromSeed is the layer's charter: the same seed
// mangles the same bytes the same way, and a different seed does not.
func TestMangleIsReplayableFromSeed(t *testing.T) {
	data := testPayload(1 << 15)
	f := Faults{Seed: 7, MinGap: 64, MaxGap: 512, Corrupt: 3, Cut: 1}
	a, firstA := Mangle(data, f)
	b, firstB := Mangle(data, f)
	if !bytes.Equal(a, b) || firstA != firstB {
		t.Fatal("same seed produced different mangled streams")
	}
	if firstA == len(data) {
		t.Fatal("schedule injected nothing over 32 KiB at a 512-byte max gap")
	}
	if !bytes.Equal(a[:firstA], data[:firstA]) {
		t.Fatal("bytes before the first fault were not intact")
	}
	f.Seed = 8
	c, _ := Mangle(data, f)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical fault placement")
	}
}

func TestMangleCorruptFlipsSingleBits(t *testing.T) {
	data := testPayload(1 << 14)
	out, first := Mangle(data, Faults{Seed: 3, MinGap: 32, MaxGap: 128, Corrupt: 1})
	if len(out) != len(data) {
		t.Fatalf("corrupt-only mangle changed the length: %d -> %d", len(data), len(out))
	}
	diffs := 0
	for i := range data {
		if x := data[i] ^ out[i]; x != 0 {
			diffs++
			if x&(x-1) != 0 {
				t.Fatalf("offset %d: flip 0b%08b is more than one bit", i, x)
			}
			if i < first {
				t.Fatalf("fault at %d before reported firstFault %d", i, first)
			}
		}
	}
	if diffs == 0 {
		t.Fatal("corrupt schedule never fired")
	}
}

func TestMangleCutTruncates(t *testing.T) {
	data := testPayload(1 << 14)
	out, first := Mangle(data, Faults{Seed: 5, MinGap: 100, MaxGap: 400, Cut: 1})
	if first >= len(data) {
		t.Fatal("cut schedule never fired over 16 KiB at a 400-byte max gap")
	}
	if len(out) != first {
		t.Fatalf("cut at %d left %d bytes", first, len(out))
	}
	if !bytes.Equal(out, data[:first]) {
		t.Fatal("bytes before the cut were not intact")
	}
}

// pump writes data through a chaos.Conn over a pipe in chunks of the given
// size and returns everything the far end received.
func pump(t *testing.T, data []byte, f Faults, chunk int) []byte {
	t.Helper()
	client, server := net.Pipe()
	cc := WrapConn(client, f, 0, nil)
	var got bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = io.Copy(&got, server)
	}()
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := cc.Write(data[off:end]); err != nil {
			break // a scheduled cut severed the pipe
		}
	}
	client.Close()
	server.Close()
	wg.Wait()
	return got.Bytes()
}

// TestConnScheduleIsChunkingIndependent pins the byte-offset design: the
// same stream pushed through chaos.Conn in 1-byte, 7-byte, and single
// writes must arrive identically mangled, and identically to Mangle —
// faults land at stream offsets, not at call boundaries.
func TestConnScheduleIsChunkingIndependent(t *testing.T) {
	data := testPayload(1 << 13)
	f := Faults{Seed: 11, MinGap: 50, MaxGap: 300, Corrupt: 4, Cut: 1}
	want, first := Mangle(data, f)
	if first >= len(data) {
		t.Fatal("schedule never fired; the test proves nothing")
	}
	for _, chunk := range []int{1, 7, 256, len(data)} {
		got := pump(t, data, f, chunk)
		if !bytes.Equal(got, want) {
			t.Fatalf("chunk size %d: received %d bytes differing from Mangle's %d-byte reference",
				chunk, len(got), len(want))
		}
	}
}

// TestConnReadAppliesInboundSchedule mirrors the write test on the read
// path: bytes arriving through Conn.Read are mangled on the DirDown
// schedule regardless of how the peer chunked them.
func TestConnReadAppliesInboundSchedule(t *testing.T) {
	data := testPayload(1 << 12)
	f := Faults{Seed: 13, MinGap: 40, MaxGap: 200, Corrupt: 1}
	read := func(chunk int) []byte {
		client, server := net.Pipe()
		cc := WrapConn(client, f, 0, nil)
		go func() {
			for off := 0; off < len(data); off += chunk {
				end := off + chunk
				if end > len(data) {
					end = len(data)
				}
				if _, err := server.Write(data[off:end]); err != nil {
					return
				}
			}
			server.Close()
		}()
		var got bytes.Buffer
		_, _ = io.Copy(&got, cc)
		client.Close()
		return got.Bytes()
	}
	want := read(len(data))
	if bytes.Equal(want, data) {
		t.Fatal("inbound schedule never fired")
	}
	for _, chunk := range []int{1, 13, 509} {
		if got := read(chunk); !bytes.Equal(got, want) {
			t.Fatalf("chunk size %d: inbound mangling depended on chunking", chunk)
		}
	}
}

// startEcho serves a byte-echo on loopback for proxy tests.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				_, _ = io.Copy(conn, conn)
				conn.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

// TestProxyZeroFaultsIsTransparent pins the no-chaos baseline: a proxy
// with an empty schedule relays bytes untouched, in both directions.
func TestProxyZeroFaultsIsTransparent(t *testing.T) {
	p, err := NewProxy(startEcho(t), Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	data := testPayload(1 << 15)
	go func() {
		_, _ = conn.Write(data)
	}()
	got := make([]byte, len(data))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("transparent proxy altered the stream")
	}
	if n := p.Conns(); n != 1 {
		t.Fatalf("proxy counted %d connections, want 1", n)
	}
}

// TestProxyCutAllSeversLiveConnections pins the kill switch reconnect
// tests rely on: CutAll kills the flow mid-stream but the proxy keeps
// accepting, and each accept bumps Conns.
func TestProxyCutAllSeversLiveConnections(t *testing.T) {
	p, err := NewProxy(startEcho(t), Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Prove the path is live before cutting it.
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	p.CutAll()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection survived CutAll")
	}
	conn.Close()

	conn2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("proxy stopped accepting after CutAll: %v", err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn2, buf); err != nil {
		t.Fatalf("second connection not relayed: %v", err)
	}
	if n := p.Conns(); n != 2 {
		t.Fatalf("proxy counted %d connections, want 2", n)
	}
}

// TestProxyScheduledCutEventuallyKillsTheFlow runs real faults through the
// proxy: with cuts on the schedule, a long enough stream must die, and the
// bytes delivered before the cut must be intact.
func TestProxyScheduledCutEventuallyKillsTheFlow(t *testing.T) {
	p, err := NewProxy(startEcho(t), Faults{Seed: 17, MinGap: 512, MaxGap: 2048, Cut: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	data := testPayload(1 << 20)
	go func() {
		_, _ = conn.Write(data)
	}()
	var got bytes.Buffer
	_, err = io.Copy(&got, conn)
	if got.Len() >= len(data) && err == nil {
		t.Fatal("megabyte stream survived a 2 KiB max cut gap")
	}
	if !bytes.Equal(got.Bytes(), data[:got.Len()]) {
		t.Fatal("bytes delivered before the cut were not intact")
	}
}

// faultCounts pumps data through a chaos.Conn with f instrumented on a
// fresh registry and returns the received bytes plus the scraped
// chaos_faults_total values by kind (validated Prometheus text on the way).
func faultCounts(t *testing.T, data []byte, f Faults) ([]byte, map[string]float64) {
	t.Helper()
	reg := obsv.NewRegistry()
	f.Metrics = NewMetrics(reg)
	got := pump(t, data, f, 256)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := obsv.CheckPrometheusText(strings.NewReader(b.String())); err != nil {
		t.Fatalf("malformed metrics: %v\n%s", err, b.String())
	}
	var m map[string]any
	b.Reset()
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b.String()), &m); err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]float64)
	for _, kind := range []string{"delay", "corrupt", "cut", "stall"} {
		counts[kind] = m[`chaos_faults_total{kind="`+kind+`"}`].(float64)
	}
	return got, counts
}

// TestMetricsCountFaultsWithoutChangingSchedule instruments fault streams
// and checks two things: every fired fault lands in
// chaos_faults_total{kind=...}, and the mangled bytes are identical to a
// bare run of the same seed — Metrics is observation-only, outside the
// schedule's identity.
func TestMetricsCountFaultsWithoutChangingSchedule(t *testing.T) {
	data := testPayload(1 << 13)

	// Corrupt-only: the whole stream survives and the count must equal
	// the number of byte positions the bare run flipped.
	f := Faults{Seed: 3, MinGap: 32, MaxGap: 128, Corrupt: 1}
	want := pump(t, data, f, 256)
	got, counts := faultCounts(t, data, f)
	if !bytes.Equal(got, want) {
		t.Fatal("instrumented run mangled the stream differently from the bare run")
	}
	flips := 0
	for i := range data {
		if data[i] != want[i] {
			flips++
		}
	}
	if flips == 0 {
		t.Fatal("corrupt schedule never fired; the test proves nothing")
	}
	if counts["corrupt"] != float64(flips) {
		t.Fatalf("corrupt faults counted = %v, stream has %d flipped bytes", counts["corrupt"], flips)
	}
	for _, kind := range []string{"delay", "cut", "stall"} {
		if counts[kind] != 0 {
			t.Fatalf("%s faults counted = %v with weight 0", kind, counts[kind])
		}
	}

	// Cut-enabled: exactly one cut fires (a cut ends the stream) and the
	// received prefix is correspondingly short.
	got, counts = faultCounts(t, data, Faults{Seed: 11, MinGap: 50, MaxGap: 300, Corrupt: 4, Cut: 1})
	if counts["cut"] != 1 {
		t.Fatalf("cut faults counted = %v, want exactly 1", counts["cut"])
	}
	if len(got) >= len(data) {
		t.Fatal("cut counted but the full stream arrived")
	}
}
