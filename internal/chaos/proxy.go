package chaos

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Proxy is an in-process TCP proxy that threads every accepted connection
// through a chaos.Conn on the way to a fixed target. Tests put it between
// a client and a real server to subject the wire protocol to a replayable
// fault schedule without touching either endpoint.
//
// Connections are numbered in accept order, so the i-th dial through the
// proxy always draws the same schedule: a client that reconnects after a
// cut gets connection i+1's schedule, deterministically. Zero Faults make
// the proxy a transparent relay — useful on its own for kill tests that
// sever connections by hand via CutAll.
type Proxy struct {
	target string
	faults Faults
	ln     net.Listener

	next  atomic.Int64 // accept-order connection index
	conns atomic.Int64 // total connections accepted

	mu     sync.Mutex
	active map[*Conn]struct{}
	closed bool
	stop   chan struct{}
	done   sync.WaitGroup
}

// NewProxy listens on an ephemeral loopback port and relays every accepted
// connection to target through f's fault schedules. Close releases it.
func NewProxy(target string, f Faults) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target: target,
		faults: f,
		ln:     ln,
		active: make(map[*Conn]struct{}),
		stop:   make(chan struct{}),
	}
	p.done.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's dialable address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Conns reports how many connections the proxy has accepted — a test's
// proof that a client really did reconnect rather than ride one lucky
// connection through the whole run.
func (p *Proxy) Conns() int64 { return p.conns.Load() }

func (p *Proxy) acceptLoop() {
	defer p.done.Done()
	for {
		downstream, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		index := p.next.Add(1) - 1
		p.conns.Add(1)
		p.done.Add(1)
		go p.relay(downstream, index)
	}
}

// relay dials the target, wraps the upstream side in the connection's
// fault schedules, and pumps bytes both ways until either side dies.
func (p *Proxy) relay(downstream net.Conn, index int64) {
	defer p.done.Done()
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		downstream.Close()
		return
	}
	cc := WrapConn(upstream, p.faults, index, p.stop)

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		cc.sever()
		downstream.Close()
		return
	}
	p.active[cc] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.active, cc)
		p.mu.Unlock()
	}()

	// Both pumps funnel into the chaos conn, so client→server traffic is
	// mangled on cc's write schedule and server→client on its read
	// schedule. Either pump failing kills both halves: a half-open proxy
	// would mask cuts the schedule intended to be total.
	var pumps sync.WaitGroup
	pumps.Add(2)
	go func() {
		defer pumps.Done()
		_, _ = io.Copy(cc, downstream)
		cc.sever()
		downstream.Close()
	}()
	go func() {
		defer pumps.Done()
		_, _ = io.Copy(downstream, cc)
		cc.sever()
		downstream.Close()
	}()
	pumps.Wait()
}

// CutAll severs every live proxied connection, leaving the proxy itself
// accepting — the "pull the switch's power, plug it back in" move for
// reconnect tests that want a cut at a moment of their choosing rather
// than the schedule's.
func (p *Proxy) CutAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for cc := range p.active {
		cc.sever()
	}
}

// Close stops accepting, severs every live connection, interrupts any
// in-progress stalls, and waits for the relay goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.done.Wait()
		return nil
	}
	p.closed = true
	close(p.stop)
	for cc := range p.active {
		cc.sever()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.done.Wait()
	return err
}
