// Package chaos is a deterministic, seeded fault-injection layer for the
// repo's TCP protocols: a net.Conn wrapper and an in-process proxy that
// inject latency, byte corruption, mid-frame cuts, and stalls into a byte
// stream according to a schedule derived from rngutil.ChildSeed — so every
// failure sequence is replayable from a seed, and a test that survives
// chaos seed 7 today survives exactly the same chaos seed 7 forever.
//
// Faults are scheduled by *byte offset*, not by packet or call: the gap to
// the next fault is drawn as a renewal process over the stream's bytes,
// which makes the schedule independent of how the kernel or bufio happens
// to chunk reads and writes. Each (connection index, direction) pair gets
// its own child-seeded schedule, so the client→server and server→client
// halves of connection 3 fault identically across runs regardless of
// goroutine interleaving.
//
// The layer never violates a transport's failure model: corruption and
// truncation surface to the victim as what real networks produce (checksum
// mismatches, unexpected EOFs, resets, deadline timeouts). What a protocol
// does next — reconnect, resend, recover — is exactly what the chaos tests
// exist to observe.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"smartexp3/internal/obsv"
	"smartexp3/internal/rngutil"
)

// Fault kinds, in the order their weights appear in Faults.
const (
	kindDelay = iota
	kindCorrupt
	kindCut
	kindStall
	kindCount
)

// Faults configures a fault schedule. The zero value injects nothing;
// enable a fault kind by giving it a positive weight. Two schedules built
// from equal Faults and the same (connection, direction) indices are
// identical.
type Faults struct {
	// Seed roots every schedule. Connection i's direction d draws from
	// rngutil.ChildSeed(Seed, i, d).
	Seed int64

	// MinGap/MaxGap bound the clean-byte run between consecutive faults.
	// Zero means 256 and 8192 respectively.
	MinGap, MaxGap int

	// Delay, Corrupt, Cut and Stall weight the fault kinds against each
	// other (a categorical draw at each scheduled offset). A weight of
	// zero disables that kind.
	//
	//   Delay   pauses the stream briefly (up to MaxDelay) — latency.
	//   Corrupt flips one bit of one byte in flight — the CRC firewall's
	//           reason to exist.
	//   Cut     severs the connection mid-stream (a reset when the
	//           transport supports it), leaving a partial frame behind.
	//   Stall   pauses the stream for StallFor — long enough, by
	//           configuration, to trip the victim's frame timeout.
	Delay, Corrupt, Cut, Stall int

	// MaxDelay bounds an injected latency pause; zero means 2ms.
	MaxDelay time.Duration
	// StallFor is how long a stall holds the stream; zero means 150ms.
	// Point it just past the victim's FrameTimeout to exercise deadline
	// recovery rather than mere slowness.
	StallFor time.Duration

	// Metrics, when non-nil, counts every fault a Conn fires, by kind
	// (see NewMetrics). Observation-only: the pointer is not part of the
	// schedule's identity, so instrumented and bare runs of the same Seed
	// fault identically. Mangle (the clockless fuzz path) never counts.
	Metrics *Metrics
}

func (f Faults) minGap() int {
	if f.MinGap <= 0 {
		return 256
	}
	return f.MinGap
}

func (f Faults) maxGap() int {
	if g := f.maxGapRaw(); g < f.minGap() {
		return f.minGap()
	} else {
		return g
	}
}

func (f Faults) maxGapRaw() int {
	if f.MaxGap <= 0 {
		return 8192
	}
	return f.MaxGap
}

func (f Faults) maxDelay() time.Duration {
	if f.MaxDelay <= 0 {
		return 2 * time.Millisecond
	}
	return f.MaxDelay
}

func (f Faults) stallFor() time.Duration {
	if f.StallFor <= 0 {
		return 150 * time.Millisecond
	}
	return f.StallFor
}

// Directions index the two halves of a connection in ChildSeed space.
const (
	DirUp   = 0 // client → server
	DirDown = 1 // server → client
)

// schedule is one direction's deterministic fault stream: the absolute
// byte offset and kind of the next fault, advanced as bytes pass.
type schedule struct {
	f       Faults
	rng     *rand.Rand
	weights [kindCount]int
	total   int
	offset  int64 // bytes passed so far
	next    int64 // absolute offset of the next fault
	kind    int
	dead    bool // a cut landed; no more bytes pass
}

// newSchedule derives connection conn's schedule for direction dir.
func newSchedule(f Faults, conn, dir int64) *schedule {
	s := &schedule{
		f:       f,
		rng:     rngutil.NewChild(f.Seed, conn, dir),
		weights: [kindCount]int{kindDelay: f.Delay, kindCorrupt: f.Corrupt, kindCut: f.Cut, kindStall: f.Stall},
	}
	for _, w := range s.weights {
		s.total += w
	}
	s.advance()
	return s
}

// advance draws the gap to the next fault and its kind.
func (s *schedule) advance() {
	if s.total <= 0 {
		s.next = int64(^uint64(0) >> 1) // no faults, ever
		return
	}
	gap := s.f.minGap()
	if spread := s.f.maxGap() - s.f.minGap(); spread > 0 {
		gap += s.rng.Intn(spread + 1)
	}
	s.next = s.offset + int64(gap)
	u := s.rng.Intn(s.total)
	for k, w := range s.weights {
		if u < w {
			s.kind = k
			return
		}
		u -= w
	}
}

// Metrics counts injected faults by kind.
type Metrics struct {
	faults [kindCount]*obsv.Counter
}

// NewMetrics registers the fault counters on reg, one
// chaos_faults_total{kind=...} series per kind.
func NewMetrics(reg *obsv.Registry) *Metrics {
	m := &Metrics{}
	for kind, name := range map[int]string{
		kindDelay: "delay", kindCorrupt: "corrupt", kindCut: "cut", kindStall: "stall",
	} {
		m.faults[kind] = reg.Counter(
			fmt.Sprintf(`chaos_faults_total{kind="%s"}`, name),
			"Faults injected by the chaos layer, by kind")
	}
	return m
}

// note records one fired fault. Nil-safe so Conn.apply can call it
// unconditionally on the schedule's (possibly absent) Metrics.
func (m *Metrics) note(kind int) {
	if m == nil {
		return
	}
	m.faults[kind].Inc()
}

// Mangle applies f's schedule for connection index 0, direction DirUp, to
// data and returns the mangled copy plus the offset of the first fault
// that landed (len(data) when none did). Time-based faults (delay, stall)
// are skipped — there is no clock in a fuzz harness — so only corruption
// and cuts alter the bytes: a corrupt flips one bit, a cut truncates the
// stream there. Fuzz targets use this to derive the "bytes before the
// first fault are intact" invariant.
func Mangle(data []byte, f Faults) (out []byte, firstFault int) {
	sc := newSchedule(f, 0, DirUp)
	out = append([]byte(nil), data...)
	firstFault = len(data)
	for sc.next < int64(len(out)) {
		at := int(sc.next)
		switch sc.kind {
		case kindCorrupt:
			if at < firstFault {
				firstFault = at
			}
			out[at] ^= 1 << uint(sc.rng.Intn(8))
		case kindCut:
			if at < firstFault {
				firstFault = at
			}
			return out[:at], firstFault
		}
		sc.offset = sc.next
		sc.advance()
	}
	return out, firstFault
}

// Conn wraps a net.Conn with fault injection in both directions. It is
// what the proxy threads traffic through, and tests can also wrap raw
// connections directly. Reads and writes each consult their own schedule;
// a cut closes the underlying connection (with a best-effort TCP reset) so
// both halves die, as a real mid-stream failure would.
type Conn struct {
	net.Conn
	rd, wr *schedule

	mu   sync.Mutex
	cut  bool
	stop <-chan struct{} // optional: interrupts delay/stall sleeps
}

// WrapConn wraps conn with the fault schedules of connection index and
// both directions of f. stop, when non-nil, interrupts in-progress
// delay/stall sleeps (a test tearing down should not wait out a stall).
func WrapConn(conn net.Conn, f Faults, index int64, stop <-chan struct{}) *Conn {
	return &Conn{
		Conn: conn,
		rd:   newSchedule(f, index, DirDown),
		wr:   newSchedule(f, index, DirUp),
		stop: stop,
	}
}

// sleep pauses for d or until the stop channel fires.
func (c *Conn) sleep(d time.Duration) {
	if c.stop == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.stop:
	}
}

// sever closes the underlying connection mid-stream. For TCP, linger 0
// turns the close into a reset: the peer sees ECONNRESET instead of a tidy
// EOF, the harshest honest version of a cut.
func (c *Conn) sever() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cut {
		return
	}
	c.cut = true
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Conn.Close()
}

// apply walks n freshly-passed bytes of p against sc, mutating them for
// byte faults and sleeping for time faults. It returns how many of the n
// bytes survive (shorter only when a cut landed inside the window) and
// whether a cut fired. It never severs the connection itself: Write must
// flush the surviving prefix before the cut lands, so the caller severs
// at the right moment for its direction.
func (c *Conn) apply(sc *schedule, p []byte, n int) (int, bool) {
	if sc.dead {
		return 0, true
	}
	start := sc.offset // sc.offset advances per fault; p indexes from here
	end := start + int64(n)
	for sc.next < end {
		at := int(sc.next - start)
		sc.f.Metrics.note(sc.kind)
		switch sc.kind {
		case kindDelay:
			c.sleep(time.Duration(sc.rng.Int63n(int64(sc.f.maxDelay()) + 1)))
		case kindStall:
			c.sleep(sc.f.stallFor())
		case kindCorrupt:
			p[at] ^= 1 << uint(sc.rng.Intn(8))
		case kindCut:
			sc.dead = true
			sc.offset = sc.next
			return at, true
		}
		sc.offset = sc.next
		sc.advance()
	}
	sc.offset = end
	return n, false
}

// Read reads from the underlying connection and applies the inbound
// schedule to the bytes delivered. A cut inside the window delivers the
// bytes before it, severs, and lets the next Read surface the error.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		kept, severed := c.apply(c.rd, p[:n], n)
		if severed {
			c.sever()
		}
		if kept < n {
			return kept, nil // the cut error surfaces on the next call
		}
	}
	return n, err
}

// Write applies the outbound schedule, flushes the surviving prefix, and
// only then severs on a cut — the bytes scheduled to arrive before the
// cut must actually arrive, whatever the caller's chunking.
func (c *Conn) Write(p []byte) (int, error) {
	// Faults mutate bytes in place; never the caller's buffer.
	buf := append([]byte(nil), p...)
	kept, severed := c.apply(c.wr, buf, len(buf))
	n, err := c.Conn.Write(buf[:kept])
	if severed {
		c.sever()
		if err == nil {
			err = net.ErrClosed
		}
	}
	if n > len(p) {
		n = len(p)
	}
	return n, err
}
