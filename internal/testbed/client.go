package testbed

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// client is one device's data path: a TCP connection to the current access
// point and a reader goroutine that counts received bytes. Switching access
// points tears the connection down, waits out the (scaled) switching delay,
// and dials the new AP — the same close-and-reconnect procedure the paper's
// testbed used.
type client struct {
	bytes atomic.Int64 // received since last harvest

	mu      sync.Mutex
	conn    net.Conn
	gen     int // invalidates readers of stale connections
	closed  bool
	pending sync.WaitGroup // in-flight switch goroutines
	readers sync.WaitGroup
}

// harvest returns and resets the byte counter.
func (c *client) harvest() int64 { return c.bytes.Swap(0) }

// switchTo asynchronously moves the client to addr after the given delay.
// Any current connection closes immediately (the device has left its old
// network); data flows again once the new connection is up.
func (c *client) switchTo(addr string, delay time.Duration) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.gen++
	gen := c.gen
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.pending.Add(1)
	c.mu.Unlock()

	go func() {
		defer c.pending.Done()
		if delay > 0 {
			time.Sleep(delay)
		}
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			return // AP gone or experiment over; device stays offline
		}
		c.mu.Lock()
		if c.closed || c.gen != gen {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.conn = conn
		c.readers.Add(1)
		c.mu.Unlock()
		go c.readLoop(conn, gen)
	}()
}

func (c *client) readLoop(conn net.Conn, gen int) {
	defer c.readers.Done()
	buf := make([]byte, 16384)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
			return
		}
		n, err := conn.Read(buf)
		if n > 0 {
			c.mu.Lock()
			current := c.gen == gen && !c.closed
			c.mu.Unlock()
			if current {
				c.bytes.Add(int64(n))
			}
		}
		if err != nil {
			return
		}
	}
}

// close disconnects the client and waits for its goroutines to finish.
func (c *client) close() {
	c.mu.Lock()
	c.closed = true
	c.gen++
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.mu.Unlock()
	c.pending.Wait()
	c.readers.Wait()
}
