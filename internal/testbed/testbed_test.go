package testbed

import (
	"strings"
	"sync"
	"testing"
	"time"

	"smartexp3/internal/core"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/rngutil"
)

func smallConfig(devices int, alg core.Algorithm) Config {
	specs := make([]DeviceSpec, devices)
	for d := range specs {
		specs[d] = DeviceSpec{Algorithm: alg}
	}
	return Config{
		APs: []netmodel.Network{
			{Name: "ap-a", Type: netmodel.WiFi, Bandwidth: 4},
			{Name: "ap-b", Type: netmodel.WiFi, Bandwidth: 12},
		},
		Devices:      specs,
		Slots:        20,
		SlotDuration: 40 * time.Millisecond,
		Seed:         1,
	}
}

func TestTokenBucketApproximatesRate(t *testing.T) {
	const rate = 200000.0 // bytes/sec
	b := newTokenBucket(rate)
	stop := make(chan struct{})
	defer close(stop)
	start := time.Now()
	var taken float64
	for time.Since(start) < 300*time.Millisecond {
		if !b.take(4096, stop) {
			t.Fatal("take aborted unexpectedly")
		}
		taken += 4096
	}
	elapsed := time.Since(start).Seconds()
	got := taken / elapsed
	if got > rate*1.5 || got < rate*0.5 {
		t.Fatalf("bucket delivered %.0f B/s, configured %.0f B/s", got, rate)
	}
}

func TestTokenBucketStops(t *testing.T) {
	b := newTokenBucket(1) // hopelessly slow
	stop := make(chan struct{})
	done := make(chan bool, 1)
	go func() { done <- b.take(1e9, stop) }()
	close(stop)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("take succeeded after stop")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("take did not honor stop")
	}
}

func TestAccessPointServesSharedRate(t *testing.T) {
	ap, err := startAccessPoint("test", 100000, 0, rngutil.New(1))
	if err != nil {
		t.Fatal(err)
	}
	defer ap.close()

	// Two clients share the AP: together they should receive roughly the
	// configured rate over a short window.
	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		c := &client{}
		c.switchTo(ap.addr(), 0)
		wg.Add(1)
		go func(c *client) {
			defer wg.Done()
			time.Sleep(400 * time.Millisecond)
			n := c.harvest()
			c.close()
			mu.Lock()
			total += n
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	// 100 kB/s for 0.4 s ≈ 40 kB (+ burst); accept a generous band to stay
	// robust on loaded CI machines.
	if total < 10000 || total > 120000 {
		t.Fatalf("two clients received %d bytes in 0.4 s at 100 kB/s shared", total)
	}
}

func TestClientSwitchDelaysData(t *testing.T) {
	ap, err := startAccessPoint("test", 200000, 0, rngutil.New(2))
	if err != nil {
		t.Fatal(err)
	}
	defer ap.close()
	c := &client{}
	defer c.close()
	c.switchTo(ap.addr(), 150*time.Millisecond)
	time.Sleep(75 * time.Millisecond)
	if n := c.harvest(); n != 0 {
		t.Fatalf("received %d bytes during the switching delay", n)
	}
	time.Sleep(300 * time.Millisecond)
	if n := c.harvest(); n == 0 {
		t.Fatal("received nothing after the switching delay elapsed")
	}
}

func TestRunSmoke(t *testing.T) {
	res, err := Run(smallConfig(4, core.AlgSmartEXP3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Devices) != 4 {
		t.Fatalf("got %d device results", len(res.Devices))
	}
	var total int64
	for d := range res.Devices {
		total += res.Devices[d].DownloadBytes
		if res.Devices[d].DownloadPct < 0 || res.Devices[d].DownloadPct > 100 {
			t.Fatalf("device %d download pct %v", d, res.Devices[d].DownloadPct)
		}
		if len(res.Devices[d].BitrateMbps) != 20 {
			t.Fatalf("device %d bitrate series length %d", d, len(res.Devices[d].BitrateMbps))
		}
	}
	if total == 0 {
		t.Fatal("no data moved through the testbed")
	}
	if len(res.Distance) != 20 {
		t.Fatalf("distance series length %d", len(res.Distance))
	}
	if res.OptimalDistance < 0 {
		t.Fatalf("optimal distance %v", res.OptimalDistance)
	}
}

func TestRunDeviceLeaves(t *testing.T) {
	cfg := smallConfig(3, core.AlgGreedy)
	cfg.Devices[2].Leave = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 10; tt < cfg.Slots; tt++ {
		if res.Devices[2].BitrateMbps[tt] >= 0 {
			t.Fatalf("left device has bitrate at slot %d", tt)
		}
	}
	if res.Devices[2].DownloadBytes == 0 {
		t.Fatal("device downloaded nothing before leaving")
	}
}

func TestRunValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"no aps", func(c *Config) { c.APs = nil }, "access point"},
		{"zero bandwidth", func(c *Config) { c.APs[0].Bandwidth = 0 }, "bandwidth"},
		{"no devices", func(c *Config) { c.Devices = nil }, "device"},
		{"no slots", func(c *Config) { c.Slots = 0 }, "slots"},
		{"centralized", func(c *Config) { c.Devices[0].Algorithm = core.AlgCentralized }, "centralized"},
		{"bad leave", func(c *Config) { c.Devices[0].Leave = -1 }, "leave"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig(2, core.AlgGreedy)
			tt.mutate(&cfg)
			if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %v, want mention of %q", err, tt.want)
			}
		})
	}
}
