package testbed

import (
	"testing"

	"smartexp3/internal/rngutil"
)

// TestAccessPointDriftStreamDerivesFromParent is the regression test for the
// seedpurity fix in startAccessPoint: the scheduler's drift RNG must be
// constructed through rngutil from the parent RNG's stream, so a testbed run
// is a pure function of its root seed. Reintroducing an ad-hoc or
// time-seeded source breaks the replicated stream below.
func TestAccessPointDriftStreamDerivesFromParent(t *testing.T) {
	ap, err := startAccessPoint("ap-test", 1e6, 0, rngutil.New(42))
	if err != nil {
		t.Fatal(err)
	}
	defer ap.close()
	// Replay the construction: the drift seed is the first Int63 the parent
	// stream yields, and the drift stream is rngutil's stream over it.
	want := rngutil.New(rngutil.New(42).Int63())
	for i := 0; i < 64; i++ {
		if g, w := ap.driftRng.Float64(), want.Float64(); g != w {
			t.Fatalf("drift sample %d: ap stream %v, replicated stream %v", i, g, w)
		}
	}
}
