// Package testbed reproduces the controlled experiments of Section VII-A
// with real TCP sockets on localhost. The paper's setup — three WiFi access
// points with total bandwidths 4, 7 and 22 Mbps, servers continuously
// sending data over TCP, and 14 client devices that switch networks by
// closing and re-establishing connections — maps onto:
//
//   - accessPoint: a TCP listener whose connections share a token-bucket
//     rate limit (the AP's bandwidth), with per-connection link-quality
//     noise;
//   - client: a device-side connection whose reader goroutine counts
//     received bytes, and whose network switch is a close + delayed re-dial;
//   - Run: a slot-synchronized loop that drives each device's policy and
//     harvests per-slot byte counts.
//
// Real time is scaled: a slot lasts Config.SlotDuration of wall-clock time
// but represents VirtualSlotSeconds (15 s) of paper time, and switching
// delays are scaled accordingly. Bandwidths are virtual Mbps mapped to real
// bytes/s via BytesPerVirtualMbps.
package testbed

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"smartexp3/internal/core"
	"smartexp3/internal/dist"
	"smartexp3/internal/game"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/rngutil"
)

// DeviceSpec describes one testbed device.
type DeviceSpec struct {
	Algorithm core.Algorithm
	// Leave is the first slot in which the device is gone (0 = stays).
	Leave int
}

// Config parameterizes one controlled experiment.
type Config struct {
	// APs lists the access points (virtual Mbps bandwidths). The paper uses
	// 4, 7 and 22.
	APs []netmodel.Network
	// Devices lists the client devices (the paper uses 14).
	Devices []DeviceSpec
	// Slots is the horizon (the paper uses 480 slots = 2 hours).
	Slots int
	// SlotDuration is the real time each slot lasts. Defaults to 150 ms.
	SlotDuration time.Duration
	// VirtualSlotSeconds is the paper time a slot represents (default 15 s);
	// switching delays sampled in paper seconds are scaled by
	// SlotDuration/VirtualSlotSeconds.
	VirtualSlotSeconds float64
	// BytesPerVirtualMbps converts virtual Mbps into real bytes/s
	// (default 60000, i.e. the 33-Mbps aggregate becomes ≈2 MB/s), chosen
	// so that even a 4-Mbps AP delivers several chunks per 50 ms slot.
	BytesPerVirtualMbps float64
	// NoiseStdDev is the per-connection link-quality spread (default 0.1).
	NoiseStdDev float64
	Seed        int64
	// Core configures EXP3-family policies; zero value = core.DefaultConfig.
	Core core.Config
	// WiFiDelay samples switching delay in paper seconds; nil = default.
	WiFiDelay dist.Sampler
}

// DeviceResult aggregates one device's experiment.
type DeviceResult struct {
	Algorithm core.Algorithm
	Switches  int
	Resets    int
	// DownloadBytes is the real bytes received.
	DownloadBytes int64
	// DownloadPct is the download as a percentage of the estimated total
	// possible over the device's lifetime (Table VII's unit).
	DownloadPct float64
	// BitrateMbps is the observed virtual bit rate per slot (-1 once left).
	BitrateMbps []float64
}

// Result is the outcome of one controlled experiment.
type Result struct {
	Devices []DeviceResult
	// Distance is the per-slot Definition 4 distance from the average bit
	// rate available, over devices still present.
	Distance []float64
	// OptimalDistance is the Definition 4 floor at the Nash allocation.
	OptimalDistance float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.SlotDuration <= 0 {
		out.SlotDuration = 150 * time.Millisecond
	}
	if out.VirtualSlotSeconds <= 0 {
		out.VirtualSlotSeconds = 15
	}
	if out.BytesPerVirtualMbps <= 0 {
		out.BytesPerVirtualMbps = 60000
	}
	if out.NoiseStdDev == 0 {
		out.NoiseStdDev = 0.1
	}
	if out.Core.Gamma == nil {
		out.Core = core.DefaultConfig()
	}
	if out.WiFiDelay == nil {
		out.WiFiDelay = dist.DefaultWiFiDelay()
	}
	return out
}

// Validate reports whether the configuration is runnable.
func (c *Config) Validate() error {
	if len(c.APs) == 0 {
		return errors.New("testbed: at least one access point is required")
	}
	for i, ap := range c.APs {
		if ap.Bandwidth <= 0 {
			return fmt.Errorf("testbed: AP %d must have positive bandwidth", i)
		}
	}
	if len(c.Devices) == 0 {
		return errors.New("testbed: at least one device is required")
	}
	if c.Slots <= 0 {
		return fmt.Errorf("testbed: slots must be positive, got %d", c.Slots)
	}
	for d, spec := range c.Devices {
		if spec.Algorithm == core.AlgCentralized {
			return errors.New("testbed: centralized allocation is not available in the testbed")
		}
		if spec.Leave < 0 || spec.Leave > c.Slots {
			return fmt.Errorf("testbed: device %d has leave slot %d outside [0,%d]", d, spec.Leave, c.Slots)
		}
	}
	return nil
}

// Run executes one controlled experiment over real TCP connections.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	e, err := newExperiment(cfg)
	if err != nil {
		return nil, err
	}
	defer e.close()
	return e.run()
}

type experiment struct {
	cfg      Config
	aps      []*accessPoint
	clients  []*client
	policies []core.Policy
	rngs     []*rand.Rand
	lastNet  []int
	scale    float64 // virtual Mbps gain scale
	res      *Result
}

func newExperiment(cfg Config) (*experiment, error) {
	e := &experiment{
		cfg:      cfg,
		clients:  make([]*client, len(cfg.Devices)),
		policies: make([]core.Policy, len(cfg.Devices)),
		rngs:     make([]*rand.Rand, len(cfg.Devices)),
		lastNet:  make([]int, len(cfg.Devices)),
		res: &Result{
			Devices:  make([]DeviceResult, len(cfg.Devices)),
			Distance: make([]float64, cfg.Slots),
		},
	}
	bandwidths := make([]float64, len(cfg.APs))
	available := make([]int, len(cfg.APs))
	for i, spec := range cfg.APs {
		bandwidths[i] = spec.Bandwidth
		available[i] = i
		if spec.Bandwidth > e.scale {
			e.scale = spec.Bandwidth
		}
		ap, err := startAccessPoint(
			spec.Name,
			spec.Bandwidth*cfg.BytesPerVirtualMbps,
			cfg.NoiseStdDev,
			rngutil.NewChild(cfg.Seed, -1, int64(i)),
		)
		if err != nil {
			e.close()
			return nil, fmt.Errorf("testbed: start AP %d: %w", i, err)
		}
		e.aps = append(e.aps, ap)
	}
	e.res.OptimalDistance = game.OptimalDistanceFromAverage(bandwidths, len(cfg.Devices))

	for d, spec := range cfg.Devices {
		e.rngs[d] = rngutil.NewChild(cfg.Seed, int64(d))
		pol, err := core.New(spec.Algorithm, available, cfg.Core, e.rngs[d])
		if err != nil {
			e.close()
			return nil, fmt.Errorf("testbed: device %d: %w", d, err)
		}
		e.policies[d] = pol
		e.clients[d] = &client{}
		e.lastNet[d] = -1
		e.res.Devices[d] = DeviceResult{
			Algorithm:   spec.Algorithm,
			BitrateMbps: make([]float64, cfg.Slots),
		}
	}
	return e, nil
}

func (e *experiment) close() {
	for _, c := range e.clients {
		if c != nil {
			c.close()
		}
	}
	for _, ap := range e.aps {
		ap.close()
	}
}

func (e *experiment) present(d, t int) bool {
	leave := e.cfg.Devices[d].Leave
	return leave == 0 || t < leave
}

func (e *experiment) run() (*Result, error) {
	timeScale := float64(e.cfg.SlotDuration) / e.cfg.VirtualSlotSeconds // ns of real time per paper second
	slotSec := e.cfg.SlotDuration.Seconds()

	for t := 0; t < e.cfg.Slots; t++ {
		// Phase 1: policies pick networks; devices that switch re-dial
		// after their scaled switching delay.
		for d := range e.cfg.Devices {
			if !e.present(d, t) {
				if e.present(d, t-1) {
					e.captureResets(d)
					e.clients[d].close()
				}
				continue
			}
			choice := e.policies[d].Select()
			if choice != e.lastNet[d] {
				var delay time.Duration
				if e.lastNet[d] >= 0 {
					e.res.Devices[d].Switches++
					virtual := e.cfg.WiFiDelay.Sample(e.rngs[d])
					if virtual < 0 {
						virtual = 0
					}
					if virtual > e.cfg.VirtualSlotSeconds {
						virtual = e.cfg.VirtualSlotSeconds
					}
					delay = time.Duration(virtual * timeScale)
				}
				e.clients[d].switchTo(e.aps[choice].addr(), delay)
				e.lastNet[d] = choice
			}
		}

		// Phase 2: let the slot elapse in real time.
		time.Sleep(e.cfg.SlotDuration)

		// Phase 3: harvest byte counts, feed policies, record metrics.
		var rates []float64
		for d := range e.cfg.Devices {
			if !e.present(d, t) {
				e.res.Devices[d].BitrateMbps[t] = -1
				continue
			}
			bytes := e.clients[d].harvest()
			e.res.Devices[d].DownloadBytes += bytes
			virtualMbps := float64(bytes) / slotSec / e.cfg.BytesPerVirtualMbps
			e.res.Devices[d].BitrateMbps[t] = virtualMbps
			rates = append(rates, virtualMbps)
			gain := virtualMbps / e.scale
			if gain > 1 {
				gain = 1
			}
			e.policies[d].Observe(gain)
		}

		var agg float64
		for _, ap := range e.cfg.APs {
			agg += ap.Bandwidth
		}
		e.res.Distance[t] = game.DistanceFromAverageBitRate(agg, rates)
	}

	e.finish()
	return e.res, nil
}

func (e *experiment) captureResets(d int) {
	if p, ok := e.policies[d].(core.ResetReporter); ok {
		e.res.Devices[d].Resets = p.Resets()
	}
}

// finish computes download percentages against the estimated total capacity
// over each device's lifetime.
func (e *experiment) finish() {
	var aggBytesPerSlot float64
	for _, ap := range e.cfg.APs {
		aggBytesPerSlot += ap.Bandwidth * e.cfg.BytesPerVirtualMbps * e.cfg.SlotDuration.Seconds()
	}
	for d := range e.cfg.Devices {
		e.captureResets(d)
		slots := e.cfg.Slots
		if e.cfg.Devices[d].Leave > 0 {
			slots = e.cfg.Devices[d].Leave
		}
		total := aggBytesPerSlot * float64(slots)
		if total > 0 {
			e.res.Devices[d].DownloadPct = float64(e.res.Devices[d].DownloadBytes) / total * 100
		}
	}
}
