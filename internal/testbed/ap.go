package testbed

import (
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"smartexp3/internal/rngutil"
)

// tokenBucket is a shared rate limiter: the access point's scheduler draws
// from it before every chunk it sends, so the AP's aggregate capacity is
// fixed regardless of how many clients are connected.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64 // bucket capacity in bytes
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64) *tokenBucket {
	return &tokenBucket{
		rate:   rate,
		burst:  rate / 25, // at most 40 ms of burst, well under one slot
		tokens: 0,
		last:   time.Now(),
	}
}

// take blocks until n bytes of budget are available or stop is closed; it
// reports whether the budget was obtained.
func (b *tokenBucket) take(n float64, stop <-chan struct{}) bool {
	for {
		b.mu.Lock()
		now := time.Now()
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
		if b.tokens >= n {
			b.tokens -= n
			b.mu.Unlock()
			return true
		}
		wait := time.Duration((n - b.tokens) / b.rate * float64(time.Second))
		b.mu.Unlock()
		if wait < 500*time.Microsecond {
			wait = 500 * time.Microsecond
		}
		select {
		case <-stop:
			return false
		case <-time.After(wait):
		}
	}
}

// apConn is one client association: its connection plus the link-quality
// factor that scales how many bytes each scheduling turn delivers. The
// factor drifts slowly over the experiment (interference, multipath, people
// walking by), which is exactly the real-world behavior Section VII-A
// observes: "the bit rates observed by some of the devices go down for some
// reason and [Greedy] fails to adapt".
type apConn struct {
	conn      net.Conn
	factor    float64
	lastDrift time.Time
}

// drift advances the link-quality factor with a slow mean-reverting walk
// whose time constant spans many slots.
func (c *apConn) drift(rng *rand.Rand, now time.Time) {
	dt := now.Sub(c.lastDrift).Seconds()
	if dt < 0.02 {
		return
	}
	c.lastDrift = now
	const (
		revert = 0.02 // per second: degradations persist for many slots
		sigma  = 0.10 // per √second
	)
	c.factor += revert*(1-c.factor)*dt + sigma*math.Sqrt(dt)*rng.NormFloat64()
	if c.factor < 0.25 {
		c.factor = 0.25
	}
	if c.factor > 1.75 {
		c.factor = 1.75
	}
}

// accessPoint is one rate-limited "wireless network": a TCP listener whose
// accepted connections are served by a single round-robin scheduler —
// per-station airtime fairness, as real APs approximate. The shared token
// bucket caps aggregate throughput (the paper's APs with total bandwidths
// 4, 7 and 22 Mbps); per-connection link-quality factors model the
// measurement noise real devices observe.
type accessPoint struct {
	name     string
	ln       net.Listener
	bucket   *tokenBucket
	noise    float64
	rng      *rand.Rand // accept-loop use only (initial factors)
	driftRng *rand.Rand // scheduler use only (factor drift)

	mu    sync.Mutex
	conns []*apConn

	stop chan struct{}
	wg   sync.WaitGroup
}

// startAccessPoint listens on an ephemeral localhost port and serves data at
// the given rate (bytes per second).
func startAccessPoint(name string, rate, noise float64, rng *rand.Rand) (*accessPoint, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ap := &accessPoint{
		name:     name,
		ln:       ln,
		bucket:   newTokenBucket(rate),
		noise:    noise,
		rng:      rng,
		driftRng: rngutil.New(rng.Int63()),
		stop:     make(chan struct{}),
	}
	ap.wg.Add(2)
	go ap.acceptLoop()
	go ap.schedule()
	return ap, nil
}

func (ap *accessPoint) addr() string { return ap.ln.Addr().String() }

func (ap *accessPoint) acceptLoop() {
	defer ap.wg.Done()
	for {
		conn, err := ap.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := &apConn{conn: conn, factor: 1, lastDrift: time.Now()}
		if ap.noise > 0 {
			c.factor = 1 + ap.noise*ap.rng.NormFloat64()
			if c.factor < 0.3 {
				c.factor = 0.3
			}
			if c.factor > 1.7 {
				c.factor = 1.7
			}
		}
		ap.mu.Lock()
		ap.conns = append(ap.conns, c)
		ap.mu.Unlock()
	}
}

// schedule is the airtime scheduler: it hands out budgeted chunks to the
// associated clients in round-robin order, so every client of an AP gets an
// equal share of its capacity (scaled by link quality), mirroring
// per-station fairness of real access points.
func (ap *accessPoint) schedule() {
	defer ap.wg.Done()
	const chunk = 1024
	payload := make([]byte, 2*chunk)
	turn := 0
	for {
		select {
		case <-ap.stop:
			ap.closeConns()
			return
		default:
		}

		ap.mu.Lock()
		n := len(ap.conns)
		var c *apConn
		if n > 0 {
			c = ap.conns[turn%n]
		}
		ap.mu.Unlock()
		if c == nil {
			select {
			case <-ap.stop:
				ap.closeConns()
				return
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		turn++

		if !ap.bucket.take(chunk, ap.stop) {
			ap.closeConns()
			return
		}
		// The scheduler is apConn's single writer after registration, so
		// drifting the factor here is race-free.
		if ap.noise > 0 {
			c.drift(ap.driftRng, time.Now())
		}
		// A poor link (factor < 1) delivers fewer bytes per airtime unit.
		size := int(chunk * c.factor)
		if size < 1 {
			size = 1
		}
		if err := c.conn.SetWriteDeadline(time.Now().Add(200 * time.Millisecond)); err != nil {
			ap.drop(c)
			continue
		}
		if _, err := c.conn.Write(payload[:size]); err != nil {
			ap.drop(c)
		}
	}
}

// drop removes a dead connection from the association list.
func (ap *accessPoint) drop(dead *apConn) {
	dead.conn.Close()
	ap.mu.Lock()
	for i, c := range ap.conns {
		if c == dead {
			ap.conns = append(ap.conns[:i], ap.conns[i+1:]...)
			break
		}
	}
	ap.mu.Unlock()
}

func (ap *accessPoint) closeConns() {
	ap.mu.Lock()
	for _, c := range ap.conns {
		c.conn.Close()
	}
	ap.conns = nil
	ap.mu.Unlock()
}

// close shuts the AP down and waits for its goroutines to exit.
func (ap *accessPoint) close() {
	close(ap.stop)
	ap.ln.Close()
	ap.wg.Wait()
}
