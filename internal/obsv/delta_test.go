package obsv

import (
	"log/slog"
	"strings"
	"sync"
	"testing"
)

type lockedBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestDeltaLoggerEmitsChangesOnly(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("dl_ops_total", "ops")
	g := reg.Gauge("dl_active", "active")
	h := reg.Histogram("dl_latency_ns", "latency")

	var buf lockedBuf
	d := NewDeltaLogger(reg, slog.New(slog.NewTextHandler(&buf, nil)))

	c.Add(5)
	g.Set(3)
	h.Observe(100)
	h.Observe(200)
	d.Log()
	out := buf.String()
	for _, want := range []string{"dl_ops_total_delta=5", "dl_active=3", "dl_latency_ns_delta=2", "dl_latency_ns_p99="} {
		if !strings.Contains(out, want) {
			t.Fatalf("first emission missing %q:\n%s", want, out)
		}
	}

	// Nothing moved: no record at all.
	before := buf.String()
	d.Log()
	if buf.String() != before {
		t.Fatalf("quiet interval still emitted a record:\n%s", buf.String())
	}

	// Only the counter moves; the delta is relative to the last emission.
	c.Add(2)
	d.Log()
	tail := strings.TrimPrefix(buf.String(), before)
	if !strings.Contains(tail, "dl_ops_total_delta=2") {
		t.Fatalf("second emission missing counter delta:\n%s", tail)
	}
	if strings.Contains(tail, "dl_active=") {
		t.Fatalf("unchanged gauge re-emitted:\n%s", tail)
	}
}
