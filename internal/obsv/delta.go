package obsv

import (
	"log/slog"
	"time"
)

// DeltaLogger periodically emits one structured slog record summarising
// what changed in a registry since the previous emission — the trace a
// headless run leaves behind when nobody is scraping /metrics. Counters
// report their delta, gauges their current value, histograms their sample
// delta plus current p99. Quiet intervals (no counter or histogram
// movement, no gauge change) emit nothing, so an idle daemon stays silent
// in its logs.
type DeltaLogger struct {
	reg  *Registry
	log  *slog.Logger
	prev map[string]float64
}

// NewDeltaLogger returns a delta logger over reg writing to log.
func NewDeltaLogger(reg *Registry, log *slog.Logger) *DeltaLogger {
	return &DeltaLogger{reg: reg, log: log, prev: make(map[string]float64)}
}

// Log emits one "metrics" record with an attribute per changed metric,
// and updates the baseline. Safe to call concurrently with metric writers;
// not safe to call concurrently with itself.
func (d *DeltaLogger) Log() {
	attrs := make([]any, 0, 16)
	for _, m := range d.reg.sorted() {
		if m.kind == kindHistogram {
			count := float64(m.hist.Count())
			if delta := count - d.prev[m.name]; delta > 0 {
				attrs = append(attrs,
					slog.Float64(m.name+"_delta", delta),
					slog.Int64(m.name+"_p99", m.hist.Quantile(0.99)))
			}
			d.prev[m.name] = count
			continue
		}
		v := m.value()
		switch m.kind {
		case kindCounter:
			if delta := v - d.prev[m.name]; delta != 0 {
				attrs = append(attrs, slog.Float64(m.name+"_delta", delta))
			}
		case kindGauge:
			if _, seen := d.prev[m.name]; !seen || v != d.prev[m.name] {
				attrs = append(attrs, slog.Float64(m.name, v))
			}
		}
		d.prev[m.name] = v
	}
	if len(attrs) == 0 {
		return
	}
	d.log.Info("metrics", attrs...)
}

// Run emits deltas every interval until stop is closed, then emits one
// final record so the tail of a run is never lost.
func (d *DeltaLogger) Run(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			d.Log()
		case <-stop:
			d.Log()
			return
		}
	}
}
