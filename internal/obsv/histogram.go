package obsv

import (
	"math/bits"
	"sync/atomic"
)

const (
	// histSubBits is the log2 of the sub-bucket count per octave. 8
	// sub-buckets per power of two bound the relative bucket width at
	// 1/8 = 12.5%, which is what makes a bucket-boundary quantile answer
	// "within one bucket width" of the exact sample.
	histSubBits = 3
	histSub     = 1 << histSubBits
	// histBuckets covers the full non-negative int64 range: values below
	// 2^histSubBits map exactly (one value per bucket), every octave above
	// contributes histSub buckets.
	histBuckets = ((64 - histSubBits) << histSubBits) + histSub
)

// bucketIndex maps a sample to its bucket. Negative samples clamp to 0 —
// histograms here measure durations and sizes, where a negative value is a
// clock anomaly, not information.
//
//repolint:allocfree via TestHistogramObserveDoesNotAllocate
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	exp := bits.Len64(u)
	if exp <= histSubBits {
		return int(u) // exact small values: one bucket per integer
	}
	shift := uint(exp - histSubBits - 1)
	sub := int((u >> shift) & (histSub - 1))
	return ((exp - histSubBits) << histSubBits) | sub
}

// bucketBounds returns bucket i's inclusive [lo, hi] value range.
func bucketBounds(i int) (lo, hi int64) {
	if i < histSub {
		return int64(i), int64(i)
	}
	octave := i >> histSubBits
	sub := int64(i & (histSub - 1))
	width := int64(1) << uint(octave-1)
	lo = (int64(histSub) + sub) * width
	return lo, lo + width - 1
}

// Histogram is a fixed-size, lock-free, log-linear histogram: 8 sub-buckets
// per power of two (≤ 12.5% relative width), covering all non-negative
// int64 values. Observe is three uncontended atomic adds and 0 allocs/op,
// safe under any number of concurrent writers; snapshots and quantile
// queries run concurrently with writers and see a consistent-enough view
// (each bucket individually exact, the set advancing monotonically).
//
// The zero value is ready to use. A Histogram is ~4 KB; embed or allocate
// one per metric, not per request.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one sample.
//
//repolint:allocfree
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Merge adds src's samples into h — the reduction for per-shard or
// per-worker histograms. Both histograms may be concurrently written;
// the merge folds in whatever src held at the moment each bucket was read.
func (h *Histogram) Merge(src *Histogram) {
	for i := range src.buckets {
		if n := src.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
}

// Count returns how many samples were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1) of the
// observed samples: the inclusive upper edge of the bucket holding the
// rank-⌈q·n⌉ sample. The answer is within one bucket width (≤ 12.5%
// relative) of the exact order statistic. With no samples it returns 0.
func (h *Histogram) Quantile(q float64) int64 { s := h.Snapshot(); return s.Quantile(q) }

// HistogramSnapshot is a point-in-time copy of a histogram, used by the
// registry's renderers and by tests that compare histograms exactly.
type HistogramSnapshot struct {
	Counts [histBuckets]uint64
	Sum    int64
}

// Snapshot copies the bucket counts. Taken concurrently with writers, the
// copy is a valid histogram of a subset/superset of the samples near the
// instant of the call; its total is the sum of its buckets, so cumulative
// renderings are internally consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.Sum = h.sum.Load()
	return s
}

// Total returns the snapshot's sample count (the sum of its buckets).
func (s *HistogramSnapshot) Total() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Quantile is Histogram.Quantile over the frozen snapshot.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) || rank == 0 {
		rank++ // ceil, and at least the first sample
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			_, hi := bucketBounds(i)
			return hi
		}
	}
	_, hi := bucketBounds(histBuckets - 1)
	return hi
}
