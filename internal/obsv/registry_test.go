package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("test_ops_total", "operations handled").Add(3)
	reg.Gauge("test_active", "active things").Set(2)
	reg.Counter(`test_faults_total{kind="cut"}`, "faults by kind").Inc()
	reg.Counter(`test_faults_total{kind="delay"}`, "faults by kind").Add(2)
	h := reg.Histogram("test_latency_ns", "latency in nanoseconds")
	for _, v := range []int64{1, 1, 5, 100} {
		h.Observe(v)
	}
	return reg
}

// The exposition must be byte-stable: families sorted, HELP/TYPE once,
// cumulative le buckets. Scrape diffing and the golden below both depend
// on that ordering.
func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_active active things
# TYPE test_active gauge
test_active 2
# HELP test_faults_total faults by kind
# TYPE test_faults_total counter
test_faults_total{kind="cut"} 1
test_faults_total{kind="delay"} 2
# HELP test_latency_ns latency in nanoseconds
# TYPE test_latency_ns histogram
test_latency_ns_bucket{le="1"} 2
test_latency_ns_bucket{le="5"} 3
test_latency_ns_bucket{le="103"} 4
test_latency_ns_bucket{le="+Inf"} 4
test_latency_ns_sum 107
test_latency_ns_count 4
# HELP test_ops_total operations handled
# TYPE test_ops_total counter
test_ops_total 3
`
	if got := b.String(); got != want {
		t.Fatalf("rendering mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := CheckPrometheusText(strings.NewReader(b.String())); err != nil {
		t.Fatalf("golden output fails validator: %v", err)
	}
}

func TestWriteJSONVarz(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("varz is not JSON: %v", err)
	}
	if out["test_ops_total"] != 3.0 {
		t.Fatalf("test_ops_total = %v, want 3", out["test_ops_total"])
	}
	hist, ok := out["test_latency_ns"].(map[string]any)
	if !ok {
		t.Fatalf("test_latency_ns = %T, want object", out["test_latency_ns"])
	}
	if hist["count"] != 4.0 || hist["sum"] != 107.0 {
		t.Fatalf("histogram count/sum = %v/%v, want 4/107", hist["count"], hist["sum"])
	}
	if hist["p50"] != 1.0 || hist["max"] != 103.0 {
		t.Fatalf("histogram p50/max = %v/%v, want 1/103", hist["p50"], hist["max"])
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"duplicate", func(r *Registry) { r.Counter("a_total", "x"); r.Counter("a_total", "x") }},
		{"invalid name", func(r *Registry) { r.Counter("9bad", "x") }},
		{"bad labels", func(r *Registry) { r.Counter(`a_total{kind=}`, "x") }},
		{"kind mismatch", func(r *Registry) {
			r.Counter(`a_total{k="1"}`, "x")
			r.Gauge(`a_total{k="2"}`, "x")
		}},
		{"help mismatch", func(r *Registry) {
			r.Counter(`a_total{k="1"}`, "x")
			r.Counter(`a_total{k="2"}`, "y")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("registration did not panic")
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestRegistryFuncMetrics(t *testing.T) {
	reg := NewRegistry()
	n := 41.0
	reg.CounterFunc("fn_total", "from fn", func() float64 { n++; return n })
	reg.GaugeFunc("fn_gauge", "from fn", func() float64 { return 7 })
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "fn_total 42\n") || !strings.Contains(b.String(), "fn_gauge 7\n") {
		t.Fatalf("func metrics missing from:\n%s", b.String())
	}
}

// Scrapes racing metric writers must always yield parseable output.
func TestConcurrentScrapeWhileWriting(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("race_ops_total", "ops")
	h := reg.Histogram("race_latency_ns", "latency")
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(int64(g*1000 + i))
				}
			}
		}(g)
	}
	for scrape := 0; scrape < 25; scrape++ {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		err = CheckPrometheusText(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("scrape %d: malformed exposition: %v", scrape, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := goldenRegistry()
	d, err := ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, path := range []string{"/metrics", "/varz", "/debug/pprof/", "/"} {
		resp, err := http.Get("http://" + d.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
	}
	resp, err := http.Get("http://" + d.Addr() + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope: status %d, want 404", resp.StatusCode)
	}
}

func TestCheckPrometheusTextRejectsMalformed(t *testing.T) {
	cases := []struct{ name, text string }{
		{"empty", ""},
		{"bad value", "a_total one\n"},
		{"bad name", "9a_total 1\n"},
		{"bad comment", "# NOPE a_total x\n"},
		{"interleaved families", "a_total 1\nb_total 1\na_total 2\n"},
		{"le not increasing", fmt.Sprintf("# TYPE h histogram\n%s\n%s\n",
			`h_bucket{le="5"} 1`, `h_bucket{le="3"} 2`)},
		{"cumulative decreasing", fmt.Sprintf("# TYPE h histogram\n%s\n%s\n",
			`h_bucket{le="3"} 5`, `h_bucket{le="8"} 2`)},
		{"duplicate TYPE", "# TYPE a counter\n# TYPE a counter\na 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := CheckPrometheusText(strings.NewReader(tc.text)); err == nil {
				t.Fatalf("validator accepted malformed input:\n%s", tc.text)
			}
		})
	}
}
