// Package obsv is the repo's stdlib-only instrumentation layer: atomic
// counters and gauges, log-bucketed latency histograms, and a registry that
// exports everything as Prometheus text (/metrics), JSON (/varz) and
// net/http/pprof on an opt-in debug listener.
//
// The layer exists because the daemons this repo grows (cmd/served,
// cmd/shardd) make claims about rates and latencies under load — decision
// throughput, switching cost, recovery after faults — that were only ever
// visible from tests. obsv makes them visible from a running process
// without bending the properties the tests pin:
//
//   - Hot-path records are a few atomic operations and 0 allocs/op
//     (Counter.Add, Gauge.Set, Histogram.Observe), safe under concurrent
//     writers. The serve store's warm Select+Feedback path stays
//     0 allocs/op with instrumentation enabled, and CI gates that.
//   - Metrics are observation-only. Nothing in this package feeds back
//     into a decision, a seed, or a schedule, so the determinism contract
//     (aggregates byte-identical across worker/shard counts, stores a pure
//     function of their request history) is untouched.
//   - Zero cost when disabled: every instrumented component guards its
//     records behind a nil check on an optional metrics struct, so a
//     process that never wires a Registry pays a predictable branch, not
//     an atomic, per operation.
//
// Histograms are log-linear: 8 sub-buckets per power of two (≤ 12.5%
// relative bucket width), fixed-size arrays with no locks, mergeable
// across shards, with p50/p99/p999 queries. They are meant for nanosecond
// latencies but accept any non-negative int64.
package obsv

import "sync/atomic"

// Counter is a monotonically increasing metric. The zero value is ready to
// use; Add/Inc are one atomic op and never allocate.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
//
//repolint:allocfree
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//repolint:allocfree
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (occupancy, active workers).
// The zero value is ready to use; Set/Add are one atomic op and never
// allocate.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
//
//repolint:allocfree
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative to decrease).
//
//repolint:allocfree
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
