package obsv

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestBucketIndexBoundsContainValue(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	check := func(v int64) {
		i := bucketIndex(v)
		lo, hi := bucketBounds(i)
		if v < lo || v > hi {
			t.Fatalf("value %d mapped to bucket %d = [%d, %d]", v, i, lo, hi)
		}
	}
	for v := int64(0); v < 4096; v++ {
		check(v)
	}
	for n := 0; n < 10000; n++ {
		check(rng.Int63())
	}
	check(1<<63 - 1)
}

func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<16; v++ {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, i, prev)
		}
		prev = i
	}
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("negative sample: got bucket %d, want 0", got)
	}
}

func TestBucketRelativeWidth(t *testing.T) {
	for i := histSub; i < histBuckets; i++ {
		lo, hi := bucketBounds(i)
		if hi < lo {
			continue // overflow at the top octave's edge
		}
		width := float64(hi-lo) + 1
		if width/float64(lo) > 0.125+1e-9 {
			t.Fatalf("bucket %d = [%d, %d]: relative width %.4f > 12.5%%", i, lo, hi, width/float64(lo))
		}
	}
}

// Merged per-shard histograms must equal a single-writer histogram over the
// same samples — the property the per-shard design rests on.
func TestHistogramMergeEqualsSingleWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		shards := make([]*Histogram, 1+rng.Intn(8))
		for i := range shards {
			shards[i] = new(Histogram)
		}
		single := new(Histogram)
		n := 1 + rng.Intn(5000)
		for j := 0; j < n; j++ {
			v := rng.Int63n(1 << uint(1+rng.Intn(40)))
			single.Observe(v)
			shards[rng.Intn(len(shards))].Observe(v)
		}
		merged := new(Histogram)
		for _, sh := range shards {
			merged.Merge(sh)
		}
		a, b := merged.Snapshot(), single.Snapshot()
		if a != b {
			t.Fatalf("trial %d: merged snapshot differs from single-writer snapshot", trial)
		}
		if merged.Count() != single.Count() || merged.Sum() != single.Sum() {
			t.Fatalf("trial %d: count/sum mismatch: %d/%d vs %d/%d",
				trial, merged.Count(), merged.Sum(), single.Count(), single.Sum())
		}
	}
}

// Quantile answers must land in the same bucket as the exact order
// statistic — i.e. within one bucket width (≤ 12.5% relative).
func TestHistogramQuantileBracketsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(3000)
		samples := make([]int64, n)
		h := new(Histogram)
		for i := range samples {
			samples[i] = rng.Int63n(1 << uint(2+rng.Intn(30)))
			h.Observe(samples[i])
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 0.999, 1.0} {
			rank := int(q * float64(n))
			if float64(rank) < q*float64(n) || rank == 0 {
				rank++
			}
			if rank > n {
				rank = n
			}
			exact := samples[rank-1]
			got := h.Quantile(q)
			if bucketIndex(got) != bucketIndex(exact) {
				t.Fatalf("trial %d n=%d q=%g: Quantile=%d (bucket %d), exact=%d (bucket %d)",
					trial, n, q, got, bucketIndex(got), exact, bucketIndex(exact))
			}
			lo, hi := bucketBounds(bucketIndex(exact))
			if got < lo || got > hi {
				t.Fatalf("quantile %d outside exact sample's bucket [%d, %d]", got, lo, hi)
			}
		}
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram Quantile = %d, want 0", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	const goroutines, per = 8, 20000
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	snap := h.Snapshot()
	if snap.Total() != goroutines*per {
		t.Fatalf("bucket total = %d, want %d", snap.Total(), goroutines*per)
	}
	const n = int64(goroutines * per)
	if want := n * (n - 1) / 2; h.Sum() != want {
		t.Fatalf("sum = %d, want %d", h.Sum(), want)
	}
}

func TestHistogramObserveDoesNotAllocate(t *testing.T) {
	var h Histogram
	v := int64(0)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(v); v += 37 }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f objects/op, want 0", n)
	}
}

func TestCounterAddDoesNotAllocate(t *testing.T) {
	var c Counter
	if n := testing.AllocsPerRun(1000, func() { c.Add(3); c.Inc() }); n != 0 {
		t.Fatalf("Counter.Add allocates %.1f objects/op, want 0", n)
	}
}

func TestGaugeSetDoesNotAllocate(t *testing.T) {
	var g Gauge
	v := int64(0)
	if n := testing.AllocsPerRun(1000, func() { g.Set(v); g.Add(1); v++ }); n != 0 {
		t.Fatalf("Gauge.Set allocates %.1f objects/op, want 0", n)
	}
}
