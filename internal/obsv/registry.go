package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered series: a family name, an optional fixed label
// set, and exactly one value source.
type metric struct {
	name   string // full registered name, labels included
	family string
	labels string // "" or `{k="v",...}`
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // CounterFunc/GaugeFunc source
}

func (m *metric) value() float64 {
	switch {
	case m.fn != nil:
		return m.fn()
	case m.counter != nil:
		return float64(m.counter.Value())
	default:
		return float64(m.gauge.Value())
	}
}

var (
	familyRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelsRe = regexp.MustCompile(`^\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\}$`)
)

// Registry holds named metrics and renders them. Registration is expected
// at startup (it locks and validates); reads of registered metrics are the
// lock-free atomics of the metric types themselves. Methods panic on
// invalid or duplicate names — misregistration is a programming error, and
// a daemon must fail at boot, not serve a silently incomplete /metrics.
//
// A name may carry a fixed label suffix, e.g. `chaos_faults_total{kind="cut"}`:
// series sharing a family are grouped and must agree on kind and help.
type Registry struct {
	mu       sync.Mutex
	metrics  []*metric
	byName   map[string]bool
	families map[string]*metric // first-registered series of each family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool), families: make(map[string]*metric)}
}

func (r *Registry) register(m *metric) {
	family, labels, err := splitName(m.name)
	if err != nil {
		panic(fmt.Sprintf("obsv: %v", err))
	}
	m.family, m.labels = family, labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[m.name] {
		panic(fmt.Sprintf("obsv: metric %q registered twice", m.name))
	}
	if first := r.families[family]; first != nil {
		if first.kind != m.kind {
			panic(fmt.Sprintf("obsv: family %q registered as both %v and %v", family, first.kind, m.kind))
		}
		if first.help != m.help {
			panic(fmt.Sprintf("obsv: family %q registered with two help strings", family))
		}
	} else {
		r.families[family] = m
	}
	r.byName[m.name] = true
	r.metrics = append(r.metrics, m)
}

func splitName(name string) (family, labels string, err error) {
	family = name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		family, labels = name[:i], name[i:]
		if !labelsRe.MatchString(labels) {
			return "", "", fmt.Errorf("metric %q: malformed label suffix", name)
		}
	}
	if !familyRe.MatchString(family) {
		return "", "", fmt.Errorf("metric %q: invalid name", name)
	}
	return family, labels, nil
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := new(Counter)
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at render
// time — the bridge for components that already keep their own counts
// (under a lock, say) and only need them exported.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindCounter, fn: fn})
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := new(Gauge)
	r.register(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge read from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, fn: fn})
}

// Histogram registers and returns a new histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := new(Histogram)
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// sorted returns the metrics ordered by (family, labels) — the stable
// rendering order both exporters share.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	ms := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].family != ms[j].family {
			return ms[i].family < ms[j].family
		}
		return ms[i].labels < ms[j].labels
	})
	return ms
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withLabel merges one extra label pair into a (possibly empty) fixed label
// block.
func withLabel(labels, pair string) string {
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, families sorted by name, each family's HELP/TYPE emitted once.
// Histograms render cumulative le buckets (non-empty buckets plus +Inf)
// with _sum and _count, internally consistent with the bucket total.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, m := range r.sorted() {
		if m.family != lastFamily {
			fmt.Fprintf(bw, "# HELP %s %s\n", m.family, m.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.family, m.kind)
			lastFamily = m.family
		}
		if m.kind != kindHistogram {
			fmt.Fprintf(bw, "%s%s %s\n", m.family, m.labels, formatValue(m.value()))
			continue
		}
		snap := m.hist.Snapshot()
		var cum uint64
		for i, c := range snap.Counts {
			if c == 0 {
				continue
			}
			cum += c
			_, hi := bucketBounds(i)
			fmt.Fprintf(bw, "%s_bucket%s %d\n", m.family, withLabel(m.labels, fmt.Sprintf(`le="%d"`, hi)), cum)
		}
		fmt.Fprintf(bw, "%s_bucket%s %d\n", m.family, withLabel(m.labels, `le="+Inf"`), cum)
		fmt.Fprintf(bw, "%s_sum%s %d\n", m.family, m.labels, snap.Sum)
		fmt.Fprintf(bw, "%s_count%s %d\n", m.family, m.labels, cum)
	}
	return bw.Flush()
}

// WriteJSON renders every metric as one JSON object keyed by full metric
// name (/varz). Histograms render as {count, sum, p50, p99, p999, max}.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]any)
	for _, m := range r.sorted() {
		if m.kind != kindHistogram {
			out[m.name] = m.value()
			continue
		}
		snap := m.hist.Snapshot()
		var max int64
		for i := histBuckets - 1; i >= 0; i-- {
			if snap.Counts[i] > 0 {
				_, max = bucketBounds(i)
				break
			}
		}
		out[m.name] = map[string]any{
			"count": snap.Total(),
			"sum":   snap.Sum,
			"p50":   snap.Quantile(0.50),
			"p99":   snap.Quantile(0.99),
			"p999":  snap.Quantile(0.999),
			"max":   max,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out) // map keys marshal sorted: stable output
}

// Handler returns the debug mux: /metrics (Prometheus text), /varz (JSON)
// and the net/http/pprof endpoints under /debug/pprof/. pprof is wired
// explicitly onto this private mux — importing net/http/pprof for its
// DefaultServeMux side effect would leak profiling onto any server the
// process happens to run.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/varz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "/metrics /varz /debug/pprof/\n")
	})
	return mux
}

// DebugServer is the opt-in observability listener a daemon starts for its
// registry (the -debug-addr flag). It serves in the background until Close.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ListenAndServe binds addr (pass host:0 for an ephemeral port) and serves
// reg's Handler on it in a background goroutine.
func ListenAndServe(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsv: debug listener: %w", err)
	}
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: reg.Handler()}}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Addr returns the listener's bound address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (d *DebugServer) Close() error { return d.srv.Close() }

// CheckPrometheusText validates a Prometheus text exposition: well-formed
// HELP/TYPE comments, parseable sample lines, families contiguous (no
// interleaving), and within each histogram's bucket run, strictly
// increasing le bounds with non-decreasing cumulative counts. It is the
// "fail on malformed output" gate the soak and daemon tests scrape through.
func CheckPrometheusText(rd io.Reader) error {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	types := make(map[string]string)
	done := make(map[string]bool) // families already closed out
	curFamily := ""
	lastLe := math.Inf(-1)
	lastCum := -1.0
	lineNo := 0
	samples := 0
	startFamily := func(f string) error {
		if f == curFamily {
			return nil
		}
		if curFamily != "" {
			done[curFamily] = true
		}
		if done[f] {
			return fmt.Errorf("family %q reappears after other families (interleaved output)", f)
		}
		curFamily = f
		lastLe, lastCum = math.Inf(-1), -1
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			fam := fields[2]
			if !familyRe.MatchString(fam) {
				return fmt.Errorf("line %d: invalid family name %q", lineNo, fam)
			}
			if fields[1] == "TYPE" {
				if len(fields) < 4 {
					return fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				switch t := fields[3]; t {
				case "counter", "gauge", "histogram", "summary", "untyped":
					if _, dup := types[fam]; dup {
						return fmt.Errorf("line %d: duplicate TYPE for family %q", lineNo, fam)
					}
					types[fam] = t
				default:
					return fmt.Errorf("line %d: unknown TYPE %q", lineNo, fields[3])
				}
			}
			if err := startFamily(fam); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, valueStr, err := splitSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			return fmt.Errorf("line %d: unparseable value %q", lineNo, valueStr)
		}
		fam := name
		isBucket := false
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				fam = base
				isBucket = suffix == "_bucket"
				break
			}
		}
		if err := startFamily(fam); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if isBucket {
			le, ok := leBound(labels)
			if !ok {
				return fmt.Errorf("line %d: histogram bucket without an le label", lineNo)
			}
			if le <= lastLe {
				return fmt.Errorf("line %d: bucket le %g not above previous %g", lineNo, le, lastLe)
			}
			if value < lastCum {
				return fmt.Errorf("line %d: cumulative bucket count %g below previous %g", lineNo, value, lastCum)
			}
			lastLe, lastCum = le, value
		} else {
			lastLe, lastCum = math.Inf(-1), -1 // a _sum/_count/plain line ends the bucket run
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	return nil
}

// splitSample breaks "name{labels} value" (labels optional) apart.
func splitSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced braces in %q", line)
		}
		name, labels, rest = line[:i], line[i:j+1], strings.TrimSpace(line[j+1:])
		if !labelsRe.MatchString(labels) {
			return "", "", "", fmt.Errorf("malformed labels in %q", line)
		}
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", "", "", fmt.Errorf("sample %q has no value", line)
		}
		name, rest = fields[0], fields[1]
	}
	if !familyRe.MatchString(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", "", fmt.Errorf("sample %q has no value", line)
	}
	return name, labels, fields[0], nil
}

// leBound extracts the numeric le bound from a label block.
func leBound(labels string) (float64, bool) {
	const key = `le="`
	i := strings.Index(labels, key)
	if i < 0 {
		return 0, false
	}
	rest := labels[i+len(key):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(rest[:j], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
