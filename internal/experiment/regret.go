package experiment

import (
	"fmt"

	"smartexp3/internal/core"
	"smartexp3/internal/report"
	"smartexp3/internal/rngutil"
	"smartexp3/internal/runner"
	"smartexp3/internal/stats"
	"smartexp3/internal/trace"
)

// runTheorem3 checks Hannan consistency empirically (Theorem 3 /
// Definition 1). Weak regret is the gap between the cumulative goodput of
// always using the best network in hindsight and Smart EXP3's cumulative
// goodput (switching cost included).
//
// Two environments are measured across growing horizons:
//
//   - a static pair (stationary rates, one network always best): regret is
//     positive — the price of exploration and switching — and the per-slot
//     regret must shrink as T grows, which is the R(T)/T → 0 statement;
//   - the crossover pair (no always-best network): the regret against the
//     best *fixed* network is typically negative, because an adaptive
//     learner outruns every fixed choice — the practical upside the paper's
//     trace study demonstrates.
func runTheorem3(o Options) (*report.Report, error) {
	horizons := []int{100, 200, 400, 800}
	runs := o.TraceRuns / 4
	if runs < 4 {
		runs = 4
	}

	rep := &report.Report{
		ID:    "thm3",
		Title: "Theorem 3: weak regret vs best fixed network in hindsight",
	}

	staticPerSlot, err := regretTable(rep, "Static environment (regret = exploration + switching cost)",
		staticPair, horizons, runs, o)
	if err != nil {
		return nil, err
	}
	crossPerSlot, err := regretTable(rep, "Crossover environment (no always-best network)",
		stitchedCrossoverPair, horizons, runs, o)
	if err != nil {
		return nil, err
	}

	last := len(horizons) - 1
	if staticPerSlot[last] < staticPerSlot[0] && staticPerSlot[last] >= 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"Static per-slot regret falls from %.3f MB (T=%d) to %.3f MB (T=%d) — consistent with R(T)/T → 0.",
			staticPerSlot[0], horizons[0], staticPerSlot[last], horizons[last]))
	} else {
		rep.Notes = append(rep.Notes,
			"WARNING: static per-slot regret did not shrink with the horizon — investigate.")
	}
	if crossPerSlot[last] < 0 {
		rep.Notes = append(rep.Notes,
			"Crossover regret is negative: Smart EXP3 outruns every fixed network when none is always best.")
	}
	return rep, nil
}

// regretTable appends one environment's regret table to the report and
// returns the per-slot regrets by horizon.
func regretTable(rep *report.Report, title string, mkPair func(slots int, seed int64) trace.Pair,
	horizons []int, runs int, o Options) ([]float64, error) {
	tbl := report.Table{
		Title:   title,
		Columns: []string{"T slots", "Gmax (MB)", "Smart EXP3 (MB)", "Mean regret (MB)", "Regret per slot (MB)"},
	}
	perSlot := make([]float64, 0, len(horizons))
	for _, T := range horizons {
		pair := mkPair(T, o.Seed)
		var wifiTotal, cellTotal float64
		for t := 0; t < T; t++ {
			wifiTotal += pair.WiFi.Rates[t] * 15 / 8
			cellTotal += pair.Cellular.Rates[t] * 15 / 8
		}
		gmax := wifiTotal
		if cellTotal > gmax {
			gmax = cellTotal
		}

		regrets := make([]float64, runs)
		downloads := make([]float64, runs)
		err := runner.Merge(o.replications(runs, 1700, int64(T)),
			func(run int, seed int64) (*trace.RunResult, error) {
				return trace.Run(trace.RunConfig{
					Pair:      pair,
					Algorithm: core.AlgSmartEXP3,
					Seed:      seed,
				})
			},
			func(run int, res *trace.RunResult) error {
				downloads[run] = res.DownloadMB
				regrets[run] = gmax - res.DownloadMB
				return nil
			})
		if err != nil {
			return nil, err
		}
		meanRegret := stats.Mean(regrets)
		perSlot = append(perSlot, meanRegret/float64(T))
		tbl.AddRow(
			report.F(float64(T), 0),
			report.F(gmax, 1),
			report.F(stats.Mean(downloads), 1),
			report.F(meanRegret, 1),
			report.F(meanRegret/float64(T), 3),
		)
	}
	rep.Tables = append(rep.Tables, tbl)
	return perSlot, nil
}

// staticPair builds a stationary environment: cellular steadily better than
// WiFi, both with mild measurement noise, so the best fixed network is the
// true optimum and all regret comes from exploration and switching.
func staticPair(slots int, seed int64) trace.Pair {
	rng := rngutil.NewChild(seed, 1702, int64(slots))
	out := trace.Pair{Name: fmt.Sprintf("static-%d", slots)}
	out.WiFi.SlotSeconds = 15
	out.Cellular.SlotSeconds = 15
	for t := 0; t < slots; t++ {
		out.WiFi.Rates = append(out.WiFi.Rates, clampRate(3.0+0.25*rng.NormFloat64()))
		out.Cellular.Rates = append(out.Cellular.Rates, clampRate(4.5+0.25*rng.NormFloat64()))
	}
	return out
}

func clampRate(r float64) float64 {
	if r < 0.2 {
		return 0.2
	}
	if r > 6 {
		return 6
	}
	return r
}

// stitchedCrossoverPair builds a T-slot pair by tiling independently
// generated crossover segments, so longer horizons keep the same regime
// statistics.
func stitchedCrossoverPair(slots int, seed int64) trace.Pair {
	const segment = 100
	out := trace.Pair{Name: fmt.Sprintf("stitched-crossover-%d", slots)}
	out.WiFi.SlotSeconds = 15
	out.Cellular.SlotSeconds = 15
	for len(out.WiFi.Rates) < slots {
		part := trace.Generate(trace.StyleCrossover, segment, rngutil.ChildSeed(seed, 1701, int64(len(out.WiFi.Rates))))
		out.WiFi.Rates = append(out.WiFi.Rates, part.WiFi.Rates...)
		out.Cellular.Rates = append(out.Cellular.Rates, part.Cellular.Rates...)
	}
	out.WiFi.Rates = out.WiFi.Rates[:slots]
	out.Cellular.Rates = out.Cellular.Rates[:slots]
	return out
}
