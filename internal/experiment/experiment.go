// Package experiment defines one runnable experiment per table and figure of
// the paper's evaluation (Sections VI and VII) plus the Theorem 2 bound
// check and a feature-ablation study. Each experiment aggregates many
// simulation runs into the same rows/series the paper reports and returns a
// report.Report.
//
// Experiments that share underlying simulations (the static-setting figures,
// the dynamic scenarios, the testbed figures) share per-process caches so
// that regenerating all artifacts does not recompute the same 500-run sweeps
// repeatedly.
package experiment

import (
	"fmt"
	"os"
	"sort"
	"time"

	"smartexp3/internal/cluster"
	"smartexp3/internal/report"
	"smartexp3/internal/runner"
	"smartexp3/internal/sim"
)

// Options scales every experiment. The zero value is unusable; start from
// Default or Quick.
type Options struct {
	// Runs is the number of replications for the synthetic-simulation
	// experiments (the paper uses 500).
	Runs int
	// Slots is the synthetic-simulation horizon (the paper uses 1200 slots
	// of 15 s = 5 hours).
	Slots int
	// Devices is the population size of the standard settings (paper: 20).
	Devices int
	// Seed makes the whole suite reproducible.
	Seed int64
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// Cluster lists shardd worker addresses; when set, replication batches
	// whose configuration is serializable run across the cluster layer
	// (internal/cluster) instead of the in-process pool. Results are
	// byte-identical either way; configurations that cannot cross the wire
	// (the ablation's PolicyFactory) silently stay in-process.
	Cluster []string
	// Session, when non-nil, carries Cluster batches over a persistent
	// worker session instead of dialing per batch: the experiment suite is
	// hundreds of small batches, and a warm session turns each one into a
	// couple of frames on an open stream. cmd/reproduce opens one session
	// for the whole run. Cluster must still list the addresses (it gates
	// the shardable check and the fallback).
	Session *cluster.Session
	// ClusterAffinity tags this experiment's batches with a 1-based
	// placement hint: a session offers chunks of experiment a to shard
	// (a-1) mod nShards first, so concurrently running experiments
	// (-parexp) each stream to "their" worker instead of interleaving
	// everywhere. Zero means no preference; results are byte-identical
	// regardless.
	ClusterAffinity int

	// ScaleRuns and ScaleSlots control the Figure 6 scalability sweep
	// (paper: 500 runs of 8640 slots).
	ScaleRuns  int
	ScaleSlots int

	// TraceRuns controls Table VI / Figure 12 (paper: 500).
	TraceRuns int

	// TestbedRuns, TestbedSlots and TestbedSlotDuration control the
	// real-TCP controlled experiments (paper: 10 runs of 480 slots of 15 s;
	// here each slot lasts TestbedSlotDuration of wall time).
	TestbedRuns         int
	TestbedSlots        int
	TestbedSlotDuration time.Duration

	// WildRuns controls the in-the-wild emulation (paper: 12 runs each).
	WildRuns int
}

// Default returns full-harness options sized for cmd/reproduce: paper-shaped
// horizons with a replication count that completes in minutes on a small
// machine. Pass -runs=500 to match the paper exactly.
func Default() Options {
	return Options{
		Runs:                150,
		Slots:               1200,
		Devices:             20,
		Seed:                1,
		ScaleRuns:           40,
		ScaleSlots:          8640,
		TraceRuns:           300,
		TestbedRuns:         3,
		TestbedSlots:        480,
		TestbedSlotDuration: 50 * time.Millisecond,
		WildRuns:            12,
	}
}

// Quick returns options small enough for unit tests and testing.B
// benchmarks; shapes remain observable but confidence intervals are wide.
func Quick() Options {
	return Options{
		Runs:                8,
		Slots:               400,
		Devices:             20,
		Seed:                1,
		ScaleRuns:           4,
		ScaleSlots:          1600,
		TraceRuns:           24,
		TestbedRuns:         1,
		TestbedSlots:        30,
		TestbedSlotDuration: 30 * time.Millisecond,
		WildRuns:            4,
	}
}

func (o Options) workers() int {
	return runner.Workers(o.Workers)
}

// replications builds the runner batch for n seeded replications of one
// scenario cell, namespaced by stream so no two cells share RNG streams.
func (o Options) replications(n int, stream ...int64) runner.Replications {
	return runner.Replications{
		Runs:    n,
		Workers: o.Workers,
		Seed:    o.Seed,
		Stream:  stream,
	}
}

// replicate runs one replication batch: across the configured cluster when
// possible, in-process otherwise. Every experiment's simulation sweeps go
// through here, so `reproduce -cluster host:port,...` shards the whole
// suite without any per-experiment wiring. The merge order — ascending run
// index from a single goroutine — is identical on both paths, which keeps
// the emitted artifacts byte-identical with and without a cluster.
func (o Options) replicate(batch runner.Replications, cfg sim.Config, merge func(run int, res *sim.Result) error) error {
	if len(o.Cluster) > 0 && cluster.Shardable(cfg) == nil {
		job, err := cluster.NewJob(batch, cfg)
		if err != nil {
			return err
		}
		job.Affinity = o.ClusterAffinity
		if o.Session != nil {
			// The persistent session: no dial, no handshake — the job's
			// descriptor and ranges pipeline onto the already-open worker
			// streams.
			return o.Session.Run(job, merge)
		}
		opts := cluster.Options{
			LocalWorkers: batch.Workers,
			// Shard failures and the all-workers-dead in-process rescue are
			// survivable by design, but never silent: a typo'd -cluster
			// address must not masquerade as a distributed run.
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "reproduce: "+format+"\n", args...)
			},
		}
		return cluster.Run(job, o.Cluster, opts, merge)
	}
	// No cluster, or a config that cannot cross the wire (custom
	// factory/sampler): run in-process.
	return sim.Replicate(batch, cfg, merge)
}

// Definition describes one runnable experiment.
type Definition struct {
	// ID is the experiment identifier (fig2, tab5, wild, ...).
	ID string
	// Title summarizes what is reproduced.
	Title string
	// Paper states the headline result the paper reports for this artifact.
	Paper string
	// Run executes the experiment.
	Run func(Options) (*report.Report, error)
}

// All returns every experiment in paper order.
func All() []Definition {
	return []Definition{
		{ID: "fig2", Title: "Average number of network switches (Settings 1 & 2)",
			Paper: "EXP3 ≈641/751 switches; block-based ≈30–66; Greedy ≈3–11", Run: runFig2},
		{ID: "fig3", Title: "Percentage of runs reaching a stable state, by type",
			Paper: "Smart EXP3 w/o Reset stable at NE in 99.4%/100% of runs", Run: runFig3},
		{ID: "tab4", Title: "Table IV: median time slots to reach a stable state",
			Paper: "Block 1026/810, Hybrid 583.5/366, Smart w/o Reset 359/244.5", Run: runTable4},
		{ID: "fig4", Title: "Average distance to Nash equilibrium over time (static)",
			Paper: "Smart EXP3 near 0 (ε=7.5) most of the time; EXP3/Full Info ≈40%", Run: runFig4},
		{ID: "tab5", Title: "Table V: mean per-run median cumulative download (GB)",
			Paper: "block-based ≈3.5; EXP3 2.89/2.73; Centralized 3.54", Run: runTable5},
		{ID: "unutil", Title: "Unutilized resources (Greedy's tragedy of the commons)",
			Paper: "Greedy loses ≈8 GB in Setting 1, none in Setting 2", Run: runUnutilized},
		{ID: "fig5", Title: "Fairness: per-run stddev of device downloads (MB)",
			Paper: "Smart EXP3 ≈80%/55% lower stddev than Greedy", Run: runFig5},
		{ID: "fig6", Title: "Scalability: time to stabilize vs networks and devices",
			Paper: "linear in networks, sub-linear in devices; ~100% stable at NE", Run: runFig6},
		{ID: "fig7", Title: "Adaptability: 9 devices join at t=401, leave after t=800",
			Paper: "only Smart EXP3 (w/ and w/o reset) re-converges", Run: runFig7},
		{ID: "fig8", Title: "Adaptability: 16 devices leave after t=600",
			Paper: "only Smart EXP3 discovers the freed resources", Run: runFig8},
		{ID: "fig9", Title: "Mobility across service areas (Figure 1 topology)",
			Paper: "Smart EXP3 best for every device group; reaches ε=7.5", Run: runFig9},
		{ID: "fig10", Title: "Smart EXP3 switches across static and dynamic settings",
			Paper: "comparable across settings (≈64–68); moving devices ≈102", Run: runFig10},
		{ID: "fig11", Title: "Robustness against greedy devices (3 population mixes)",
			Paper: "Smart EXP3 performs well in all mixes; Greedy collapses in mix 3", Run: runFig11},
		{ID: "tab6", Title: "Table VI: trace-driven download and switching cost (MB)",
			Paper: "Smart wins traces 1/3/4 (764 vs 671, 658 vs 428, 811 vs 758); ties trace 2", Run: runTable6},
		{ID: "fig12", Title: "Trace-driven selection time series (traces 1 and 3)",
			Paper: "Smart EXP3 tracks whichever network is currently better", Run: runFig12},
		{ID: "tab7", Title: "Table VII: testbed median download % and stddev",
			Paper: "Smart 6.89% (σ 1.55) vs Greedy 6.29% (σ 2.87)", Run: runTable7},
		{ID: "fig13", Title: "Testbed: distance from average available bit rate (static)",
			Paper: "Smart EXP3's distance drops over time; Greedy's grows", Run: runFig13},
		{ID: "fig14", Title: "Testbed: 9 of 14 devices leave mid-run",
			Paper: "Smart EXP3 discovers freed resources; Greedy does not", Run: runFig14},
		{ID: "fig15", Title: "Testbed: 7 Smart EXP3 vs 7 Greedy devices",
			Paper: "Smart EXP3 devices observe lower distance on average", Run: runFig15},
		{ID: "wild", Title: "In-the-wild 500 MB download completion time",
			Paper: "Smart EXP3 ≈1.2× faster (12.90 vs 15.67 minutes)", Run: runWild},
		{ID: "thm2", Title: "Theorem 2: empirical switches vs analytic bound",
			Paper: "E[S(T)] < 3k·log(T+1)/log(1+β)", Run: runTheorem2},
		{ID: "thm3", Title: "Theorem 3: weak regret per slot shrinks with the horizon",
			Paper: "Smart EXP3 is Hannan-consistent (weak regret → 0)", Run: runTheorem3},
		{ID: "ablate", Title: "Ablation of Smart EXP3's mechanisms",
			Paper: "each mechanism motivated in Section III", Run: runAblation},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Definition, bool) {
	for _, d := range All() {
		if d.ID == id {
			return d, true
		}
	}
	return Definition{}, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	defs := All()
	ids := make([]string, len(defs))
	for i, d := range defs {
		ids[i] = d.ID
	}
	return ids
}

// forEach runs fn(0..n-1) on up to workers goroutines and returns the first
// error. It delegates to the shared Monte Carlo pool (internal/runner).
func forEach(workers, n int, fn func(i int) error) error {
	return runner.ForEach(workers, n, fn)
}

// medianOf returns the median of xs (convenience wrapper keeping the
// experiment files terse).
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}
