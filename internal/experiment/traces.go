package experiment

import (
	"fmt"
	"math"

	"smartexp3/internal/core"
	"smartexp3/internal/report"
	"smartexp3/internal/runner"
	"smartexp3/internal/trace"
)

// traceOutcomes runs the trace-driven simulation many times for one pair and
// algorithm, returning per-run downloads and switching costs (MB).
func traceOutcomes(o Options, pair trace.Pair, alg core.Algorithm, tag int64) (downloads, costs []float64, results []*trace.RunResult, err error) {
	downloads = make([]float64, o.TraceRuns)
	costs = make([]float64, o.TraceRuns)
	results = make([]*trace.RunResult, o.TraceRuns)
	err = runner.Merge(o.replications(o.TraceRuns, 1200, tag, int64(alg)),
		func(run int, seed int64) (*trace.RunResult, error) {
			return trace.Run(trace.RunConfig{Pair: pair, Algorithm: alg, Seed: seed})
		},
		func(run int, res *trace.RunResult) error {
			downloads[run] = res.DownloadMB
			costs[run] = res.SwitchCostMB
			results[run] = res
			return nil
		})
	return downloads, costs, results, err
}

// runTable6 reproduces Table VI: median cumulative download and switching
// cost for Smart EXP3 and Greedy on the four trace pairs.
func runTable6(o Options) (*report.Report, error) {
	tbl := report.Table{
		Title: "Median cumulative download (MB) and total switching cost (MB)",
		Columns: []string{
			"Trace pair", "Smart download", "Smart cost", "Greedy download", "Greedy cost",
		},
	}
	pairs := trace.PaperPairs(o.Seed)
	for pi, pair := range pairs {
		row := []string{fmt.Sprintf("Trace %d (%s)", pi+1, pair.Name)}
		for _, alg := range []core.Algorithm{core.AlgSmartEXP3, core.AlgGreedy} {
			downloads, costs, _, err := traceOutcomes(o, pair, alg, int64(pi))
			if err != nil {
				return nil, err
			}
			row = append(row, report.F(medianOf(downloads), 2), report.F(medianOf(costs), 2))
		}
		tbl.AddRow(row...)
	}
	return &report.Report{
		ID:     "tab6",
		Title:  "Table VI: trace-driven simulation",
		Tables: []report.Table{tbl},
		Notes: []string{
			"Traces are synthetic equivalents of the paper's measured pairs (DESIGN.md §4): pair 2 keeps cellular strictly better throughout; the others have no always-best network.",
		},
	}, nil
}

// runFig12 reproduces Figure 12: for traces 1 and 3, the per-slot WiFi and
// cellular bit rates together with the bit rate observed by a median-download
// Smart EXP3 run.
func runFig12(o Options) (*report.Report, error) {
	rep := &report.Report{
		ID:    "fig12",
		Title: "Figure 12: Smart EXP3 selection on traces 1 and 3",
	}
	pairs := trace.PaperPairs(o.Seed)
	for _, pi := range []int{0, 2} {
		pair := pairs[pi]
		downloads, _, results, err := traceOutcomes(o, pair, core.AlgSmartEXP3, int64(pi))
		if err != nil {
			return nil, err
		}
		med := medianOf(downloads)
		best, bestGap := 0, math.Inf(1)
		for i, dl := range downloads {
			if gap := math.Abs(dl - med); gap < bestGap {
				best, bestGap = i, gap
			}
		}
		chart := report.Chart{
			Title:  fmt.Sprintf("Trace %d: bit rates and Smart EXP3's selection (Mbps)", pi+1),
			XLabel: "slot",
		}
		chart.Add("WiFi", pair.WiFi.Rates)
		chart.Add("Cellular", pair.Cellular.Rates)
		chart.Add("Smart EXP3", results[best].RateMbps)
		rep.Charts = append(rep.Charts, chart)
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("Trace %d: plotted run downloaded %.1f MB (median %.1f MB) with %d switches.",
				pi+1, downloads[best], med, results[best].Switches))
	}
	return rep, nil
}
