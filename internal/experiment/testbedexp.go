package experiment

import (
	"fmt"

	"smartexp3/internal/core"
	"smartexp3/internal/game"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/report"
	"smartexp3/internal/rngutil"
	"smartexp3/internal/runner"
	"smartexp3/internal/stats"
	"smartexp3/internal/testbed"
)

// Testbed scenarios (Section VII-A). The paper's hardware — three APs with
// bandwidths 4, 7 and 22 Mbps and 14 Raspberry Pi clients — is reproduced
// over real TCP connections on localhost (internal/testbed).
const (
	testbedStatic  = 1 // tab7 + fig13
	testbedDynamic = 2 // fig14: 9 of 14 devices leave mid-run
	testbedMixed   = 3 // fig15: 7 Smart EXP3 + 7 Greedy
)

func testbedAPs() []netmodel.Network {
	return []netmodel.Network{
		{Name: "ap-4", Type: netmodel.WiFi, Bandwidth: 4},
		{Name: "ap-7", Type: netmodel.WiFi, Bandwidth: 7},
		{Name: "ap-22", Type: netmodel.WiFi, Bandwidth: 22},
	}
}

func testbedDevices(scenario int, alg core.Algorithm, slots int) []testbed.DeviceSpec {
	const n = 14
	devices := make([]testbed.DeviceSpec, n)
	for d := range devices {
		devices[d] = testbed.DeviceSpec{Algorithm: alg}
		switch scenario {
		case testbedDynamic:
			if d >= n-9 {
				devices[d].Leave = slots / 2
			}
		case testbedMixed:
			if d >= n/2 {
				devices[d].Algorithm = core.AlgGreedy
			}
		}
	}
	return devices
}

// testbedAgg aggregates TestbedRuns runs of one (scenario, algorithm) cell.
type testbedAgg struct {
	Distance *stats.Series
	// SmartDistance/GreedyDistance split Definition 4 by sub-population in
	// the mixed scenario.
	SmartDistance  *stats.Series
	GreedyDistance *stats.Series
	// MedianPct and SDPct hold, per run, the median and stddev over devices
	// of the download percentage (Table VII's cells).
	MedianPct []float64
	SDPct     []float64
	Switches  []float64
	Optimal   float64
}

type testbedKey struct {
	scenario int
	alg      core.Algorithm
	runs     int
	slots    int
	seed     int64
}

var testbedCache runner.Group[testbedKey, *testbedAgg]

// testbedAggFor runs the cell (serially — the testbed is wall-clock-bound
// and contends for real sockets and CPU, so runs must not overlap). The
// runner.Group still deduplicates concurrent callers of the same cell.
func testbedAggFor(o Options, scenario int, alg core.Algorithm) (*testbedAgg, error) {
	key := testbedKey{scenario, alg, o.TestbedRuns, o.TestbedSlots, o.Seed}
	return testbedCache.Do(key, func() (*testbedAgg, error) {
		agg := &testbedAgg{
			Distance:       stats.NewSeries(o.TestbedSlots),
			SmartDistance:  stats.NewSeries(o.TestbedSlots),
			GreedyDistance: stats.NewSeries(o.TestbedSlots),
		}
		for run := 0; run < o.TestbedRuns; run++ {
			cfg := testbed.Config{
				APs:          testbedAPs(),
				Devices:      testbedDevices(scenario, alg, o.TestbedSlots),
				Slots:        o.TestbedSlots,
				SlotDuration: o.TestbedSlotDuration,
				Seed:         rngutil.ChildSeed(o.Seed, 1300, int64(scenario), int64(alg), int64(run)),
			}
			res, err := testbed.Run(cfg)
			if err != nil {
				return nil, err
			}
			agg.Optimal = res.OptimalDistance
			agg.Distance.AddRun(res.Distance)
			mergeTestbedRun(agg, cfg, res)
		}
		return agg, nil
	})
}

func mergeTestbedRun(agg *testbedAgg, cfg testbed.Config, res *testbed.Result) {
	var pcts []float64
	var aggBW float64
	for _, ap := range cfg.APs {
		aggBW += ap.Bandwidth
	}
	for d := range res.Devices {
		pcts = append(pcts, res.Devices[d].DownloadPct)
		agg.Switches = append(agg.Switches, float64(res.Devices[d].Switches))
	}
	agg.MedianPct = append(agg.MedianPct, medianOf(pcts))
	agg.SDPct = append(agg.SDPct, stats.StdDev(pcts))

	// Sub-population Definition 4 distances (fig15): measure each group
	// against the fair share of the full population.
	fair := aggBW / float64(len(res.Devices))
	for t := 0; t < len(res.Distance); t++ {
		var smartRates, greedyRates []float64
		for d := range res.Devices {
			r := res.Devices[d].BitrateMbps[t]
			if r < 0 {
				continue
			}
			if res.Devices[d].Algorithm == core.AlgGreedy {
				greedyRates = append(greedyRates, r)
			} else {
				smartRates = append(smartRates, r)
			}
		}
		if len(smartRates) > 0 {
			agg.SmartDistance.Add(t, game.DistanceBelowFairRate(fair, smartRates))
		}
		if len(greedyRates) > 0 {
			agg.GreedyDistance.Add(t, game.DistanceBelowFairRate(fair, greedyRates))
		}
	}
}

func runTable7(o Options) (*report.Report, error) {
	tbl := report.Table{
		Title:   "Per-run median cumulative download (% of estimated total possible)",
		Columns: []string{"Algorithm", "(Average) median %", "(Average) stddev", "Median switches/device"},
	}
	for _, alg := range []core.Algorithm{core.AlgSmartEXP3, core.AlgGreedy} {
		agg, err := testbedAggFor(o, testbedStatic, alg)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(alg.String(),
			report.F(stats.Mean(agg.MedianPct), 2),
			report.F(stats.Mean(agg.SDPct), 2),
			report.F(medianOf(agg.Switches), 1))
	}
	return &report.Report{
		ID:     "tab7",
		Title:  "Table VII: controlled-experiment downloads",
		Tables: []report.Table{tbl},
		Notes: []string{
			"Real TCP over localhost through token-bucket-limited APs (DESIGN.md §4); the fair share for 14 devices is 100/14 ≈ 7.14%.",
		},
	}, nil
}

func testbedDistanceReport(o Options, id, title string, scenario int, note string) (*report.Report, error) {
	chart := report.Chart{Title: title, XLabel: "slot"}
	var optimal float64
	for _, alg := range []core.Algorithm{core.AlgSmartEXP3, core.AlgGreedy} {
		agg, err := testbedAggFor(o, scenario, alg)
		if err != nil {
			return nil, err
		}
		optimal = agg.Optimal
		chart.Add(alg.String(), agg.Distance.Mean())
	}
	flat := make([]float64, o.TestbedSlots)
	for i := range flat {
		flat[i] = optimal
	}
	chart.Add("Optimal", flat)
	return &report.Report{
		ID:     id,
		Title:  title,
		Charts: []report.Chart{chart},
		Notes:  []string{note},
	}, nil
}

func runFig13(o Options) (*report.Report, error) {
	return testbedDistanceReport(o, "fig13",
		"Figure 13: mean distance from average bit rate available (static testbed)",
		testbedStatic,
		"Distance per Definition 4; 'Optimal' is the Nash-allocation floor.")
}

func runFig14(o Options) (*report.Report, error) {
	return testbedDistanceReport(o, "fig14",
		"Figure 14: distance from average bit rate, 9 of 14 devices leave mid-run",
		testbedDynamic,
		fmt.Sprintf("9 devices leave after slot %d, freeing resources.", o.TestbedSlots/2))
}

func runFig15(o Options) (*report.Report, error) {
	agg, err := testbedAggFor(o, testbedMixed, core.AlgSmartEXP3)
	if err != nil {
		return nil, err
	}
	chart := report.Chart{
		Title:  "Figure 15: 7 Smart EXP3 vs 7 Greedy devices — distance from fair share",
		XLabel: "slot",
	}
	chart.Add("Smart EXP3 devices", agg.SmartDistance.Mean())
	chart.Add("Greedy devices", agg.GreedyDistance.Mean())
	flat := make([]float64, o.TestbedSlots)
	for i := range flat {
		flat[i] = agg.Optimal
	}
	chart.Add("Optimal", flat)
	return &report.Report{
		ID:     "fig15",
		Title:  "Figure 15: mixed population on the testbed",
		Charts: []report.Chart{chart},
	}, nil
}
