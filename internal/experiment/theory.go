package experiment

import (
	"math"

	"smartexp3/internal/core"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/report"
	"smartexp3/internal/sim"
	"smartexp3/internal/stats"
)

// SwitchBound evaluates Theorem 2's upper bound on the expected number of
// network switches: E[S(T)] < (T/τ)·3k·log(τ/td + 1)/log(1+β). With no reset
// (τ = T, td = 1 slot) it reduces to 3k·log(T+1)/log(1+β).
func SwitchBound(k int, slotsPerReset float64, resetPeriods float64, beta float64) float64 {
	return resetPeriods * 3 * float64(k) * math.Log(slotsPerReset+1) / math.Log(1+beta)
}

// runTheorem2 measures per-device switch counts of Smart EXP3 w/o Reset
// (τ = T) across horizons and network counts and compares them with the
// analytic bound.
func runTheorem2(o Options) (*report.Report, error) {
	beta := core.DefaultConfig().Beta
	tbl := report.Table{
		Title:   "Empirical switches vs Theorem 2 bound (Smart EXP3 w/o Reset, τ=T)",
		Columns: []string{"k networks", "T slots", "Mean switches", "Max switches", "Bound", "Within bound"},
	}
	horizons := []int{o.Slots / 2, o.Slots}
	allWithin := true
	for _, k := range []int{3, 5, 7} {
		for _, T := range horizons {
			var switches []float64
			runs := o.Runs / 4
			if runs < 4 {
				runs = 4
			}
			err := o.replicate(o.replications(runs, 1500, int64(k), int64(T)),
				sim.Config{
					Topology: netmodel.Uniform(k, 11),
					Devices:  sim.UniformDevices(o.Devices, core.AlgSmartEXP3NoReset),
					Slots:    T,
				},
				func(_ int, res *sim.Result) error {
					for d := range res.Devices {
						switches = append(switches, float64(res.Devices[d].Switches))
					}
					return nil
				})
			if err != nil {
				return nil, err
			}
			bound := SwitchBound(k, float64(T), 1, beta)
			within := stats.Max(switches) < bound
			if !within {
				allWithin = false
			}
			tbl.AddRow(
				report.F(float64(k), 0), report.F(float64(T), 0),
				report.F(stats.Mean(switches), 1), report.F(stats.Max(switches), 0),
				report.F(bound, 1), boolMark(within))
		}
	}
	rep := &report.Report{
		ID:     "thm2",
		Title:  "Theorem 2: bound on the number of network switches",
		Tables: []report.Table{tbl},
	}
	if allWithin {
		rep.Notes = append(rep.Notes, "Every observed per-device switch count respects the bound.")
	} else {
		rep.Notes = append(rep.Notes, "WARNING: some switch counts exceed the bound — investigate.")
	}
	return rep, nil
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
