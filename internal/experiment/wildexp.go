package experiment

import (
	"fmt"

	"smartexp3/internal/core"
	"smartexp3/internal/report"
	"smartexp3/internal/runner"
	"smartexp3/internal/stats"
	"smartexp3/internal/wild"
)

// runWild reproduces the Section VII-B experiment: download a 500 MB file in
// a nonstationary two-network environment, WildRuns times per algorithm, and
// compare mean completion times. The paper reports Smart EXP3 at 12.90
// minutes vs Greedy at 15.67 (≈1.2× faster).
func runWild(o Options) (*report.Report, error) {
	tbl := report.Table{
		Title:   "500 MB download completion time (minutes)",
		Columns: []string{"Algorithm", "Mean", "StdDev", "Min", "Max", "Mean switches"},
	}
	means := make(map[core.Algorithm]float64, 2)
	for _, alg := range []core.Algorithm{core.AlgSmartEXP3, core.AlgGreedy} {
		minutes := make([]float64, o.WildRuns)
		switches := make([]float64, o.WildRuns)
		err := runner.Merge(o.replications(o.WildRuns, 1400, int64(alg)),
			func(run int, seed int64) (*wild.Result, error) {
				return wild.Run(wild.Config{FileMB: 500, Algorithm: alg, Seed: seed})
			},
			func(run int, res *wild.Result) error {
				minutes[run] = res.Minutes
				switches[run] = float64(res.Switches)
				return nil
			})
		if err != nil {
			return nil, err
		}
		s := stats.Summarize(minutes)
		means[alg] = s.Mean
		tbl.AddRow(alg.String(), report.F(s.Mean, 2), report.F(s.StdDev, 2),
			report.F(s.Min, 2), report.F(s.Max, 2), report.F(stats.Mean(switches), 1))
	}
	speedup := means[core.AlgGreedy] / means[core.AlgSmartEXP3]
	return &report.Report{
		ID:     "wild",
		Title:  "In-the-wild download (Section VII-B)",
		Tables: []report.Table{tbl},
		Notes: []string{
			fmt.Sprintf("Smart EXP3 download speedup over Greedy: %.2fx (paper: ≈1.2x).", speedup),
		},
	}, nil
}
