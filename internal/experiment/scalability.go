package experiment

import (
	"fmt"

	"smartexp3/internal/core"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/report"
	"smartexp3/internal/sim"
)

// runFig6 reproduces the scalability sweep: Smart EXP3 w/o Reset over 8640
// slots with {3,5,7} networks at 20 devices, and {20,40,80} devices at 3
// networks. Reported: median slots to reach a stable state and the share of
// runs stable at a Nash equilibrium.
func runFig6(o Options) (*report.Report, error) {
	type config struct {
		label    string
		networks int
		devices  int
	}
	var cases []config
	for _, k := range []int{3, 5, 7} {
		cases = append(cases, config{
			label:    fmt.Sprintf("%d networks, 20 devices", k),
			networks: k,
			devices:  20,
		})
	}
	for _, n := range []int{20, 40, 80} {
		cases = append(cases, config{
			label:    fmt.Sprintf("3 networks, %d devices", n),
			networks: 3,
			devices:  n,
		})
	}

	tbl := report.Table{
		Title:   "Smart EXP3 w/o Reset: time to stable state vs scale",
		Columns: []string{"Configuration", "Median slots to stable", "% runs stable", "% stable at NE"},
	}
	for ci, c := range cases {
		var (
			toStable []float64
			stable   int
			atNE     int
		)
		err := o.replicate(o.replications(o.ScaleRuns, 600, int64(ci)),
			sim.Config{
				Topology: netmodel.Uniform(c.networks, 11),
				Devices:  sim.UniformDevices(c.devices, core.AlgSmartEXP3NoReset),
				Slots:    o.ScaleSlots,
				Collect:  sim.CollectOptions{Probabilities: true},
			},
			func(_ int, res *sim.Result) error {
				if res.StabilityValid && res.Stability.Stable {
					stable++
					toStable = append(toStable, float64(res.Stability.Slot))
					if res.Stability.AtNash {
						atNE++
					}
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
		med := "never"
		if len(toStable) > 0 {
			med = report.F(medianOf(toStable), 0)
		}
		tbl.AddRow(c.label, med,
			report.F(100*float64(stable)/float64(o.ScaleRuns), 1),
			report.F(100*float64(atNE)/float64(o.ScaleRuns), 1))
	}
	return &report.Report{
		ID:     "fig6",
		Title:  "Figure 6: scalability of Smart EXP3 w/o Reset",
		Tables: []report.Table{tbl},
		Notes: []string{
			"The paper observes linear growth in the number of networks and sub-linear growth in the number of devices.",
		},
	}, nil
}
