package experiment

import (
	"sync"
	"testing"

	"smartexp3/internal/core"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/rngutil"
	"smartexp3/internal/sim"
	"smartexp3/internal/stats"
)

// These tests pin the paper's qualitative claims at reduced scale so that a
// regression in any mechanism shows up as a failed claim, not just a drifted
// number. Each uses a handful of runs; thresholds are deliberately loose.

// claimRuns executes n Setting-1 runs of an algorithm and returns pooled
// per-device switch counts and the mean late-run distance to NE.
func claimRuns(t *testing.T, alg core.Algorithm, n, slots int) (switches []float64, lateDist float64) {
	t.Helper()
	var mu sync.Mutex
	late := stats.NewSeries(slots)
	err := forEach(2, n, func(run int) error {
		res, err := sim.Run(sim.Config{
			Topology: netmodel.Setting1(),
			Devices:  sim.UniformDevices(20, alg),
			Slots:    slots,
			Seed:     rngutil.ChildSeed(999, int64(alg), int64(run)),
			Collect:  sim.CollectOptions{Distance: true},
		})
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		for d := range res.Devices {
			switches = append(switches, float64(res.Devices[d].Switches))
		}
		late.AddRun(res.Distance)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mean := late.Mean()
	return switches, stats.Mean(mean[slots*3/4:])
}

// Claim (Section VI-A / Figure 2): block-based algorithms cut EXP3's
// switching by around 80%.
func TestClaimBlockingSlashesSwitching(t *testing.T) {
	exp3, _ := claimRuns(t, core.AlgEXP3, 3, 600)
	smart, _ := claimRuns(t, core.AlgSmartEXP3, 3, 600)
	if stats.Mean(smart) > 0.4*stats.Mean(exp3) {
		t.Fatalf("Smart EXP3 switches %.1f not ≪ EXP3's %.1f",
			stats.Mean(smart), stats.Mean(exp3))
	}
}

// Claim (Figure 4a): Smart EXP3 converges near NE while EXP3, Greedy and
// Fixed Random do not.
func TestClaimSmartConvergesOthersDoNot(t *testing.T) {
	_, smart := claimRuns(t, core.AlgSmartEXP3, 4, 800)
	_, exp3 := claimRuns(t, core.AlgEXP3, 4, 800)
	_, greedy := claimRuns(t, core.AlgGreedy, 4, 800)
	if smart > 15 {
		t.Fatalf("Smart EXP3 late distance %.1f%%, want near equilibrium", smart)
	}
	if exp3 < 2*smart {
		t.Fatalf("EXP3 late distance %.1f%% should far exceed Smart's %.1f%%", exp3, smart)
	}
	if greedy < 2*smart {
		t.Fatalf("Greedy late distance %.1f%% should far exceed Smart's %.1f%%", greedy, smart)
	}
}

// Claim (Table IV): the greedy coin makes Hybrid stabilize populations
// faster than plain Block EXP3, and switch-back makes Smart w/o Reset
// faster still.
func TestClaimStabilizationOrdering(t *testing.T) {
	medianStable := func(alg core.Algorithm) float64 {
		var times []float64
		var mu sync.Mutex
		err := forEach(2, 8, func(run int) error {
			res, err := sim.Run(sim.Config{
				Topology: netmodel.Setting2(),
				Devices:  sim.UniformDevices(20, alg),
				Slots:    1200,
				Seed:     rngutil.ChildSeed(777, int64(alg), int64(run)),
				Collect:  sim.CollectOptions{Probabilities: true},
			})
			if err != nil {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			if res.StabilityValid && res.Stability.Stable {
				times = append(times, float64(res.Stability.Slot))
			} else {
				times = append(times, 1200) // censored at the horizon
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return medianOf(times)
	}
	block := medianStable(core.AlgBlockEXP3)
	smartNR := medianStable(core.AlgSmartEXP3NoReset)
	if smartNR >= block {
		t.Fatalf("Smart w/o Reset stabilizes at %.0f, not faster than Block EXP3's %.0f",
			smartNR, block)
	}
}

// Claim (Figure 8): after devices leave, only the reset-equipped variant
// rediscovers the freed resources.
func TestClaimOnlyResetDiscoversFreedResources(t *testing.T) {
	lateAfterLeave := func(alg core.Algorithm) float64 {
		late := stats.NewSeries(900)
		var mu sync.Mutex
		err := forEach(2, 4, func(run int) error {
			devices := sim.UniformDevices(20, alg)
			for d := 4; d < 20; d++ {
				devices[d].Leave = 450
			}
			res, err := sim.Run(sim.Config{
				Topology: netmodel.Setting1(),
				Devices:  devices,
				Slots:    900,
				Seed:     rngutil.ChildSeed(555, int64(alg), int64(run)),
				Collect:  sim.CollectOptions{Distance: true},
			})
			if err != nil {
				return err
			}
			mu.Lock()
			late.AddRun(res.Distance)
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		mean := late.Mean()
		return stats.Mean(mean[800:])
	}
	withReset := lateAfterLeave(core.AlgSmartEXP3)
	withoutReset := lateAfterLeave(core.AlgSmartEXP3NoReset)
	if withReset >= withoutReset {
		t.Fatalf("reset variant (%.1f%%) should beat no-reset (%.1f%%) after mass leave",
			withReset, withoutReset)
	}
}

// Claim (Theorem 2, empirically): per-device switching respects the bound.
func TestClaimSwitchBoundHolds(t *testing.T) {
	switches, _ := claimRuns(t, core.AlgSmartEXP3NoReset, 4, 1200)
	bound := SwitchBound(3, 1200, 1, core.DefaultConfig().Beta)
	if got := stats.Max(switches); got >= bound {
		t.Fatalf("max switches %.0f exceed the Theorem 2 bound %.0f", got, bound)
	}
}

// Claim (Figure 5): Smart EXP3 allocates downloads more fairly than Greedy.
func TestClaimSmartFairerThanGreedy(t *testing.T) {
	fairness := func(alg core.Algorithm) float64 {
		var sds []float64
		var mu sync.Mutex
		err := forEach(2, 5, func(run int) error {
			res, err := sim.Run(sim.Config{
				Topology: netmodel.Setting1(),
				Devices:  sim.UniformDevices(20, alg),
				Slots:    800,
				Seed:     rngutil.ChildSeed(333, int64(alg), int64(run)),
			})
			if err != nil {
				return err
			}
			var downloads []float64
			for d := range res.Devices {
				downloads = append(downloads, res.Devices[d].DownloadMb)
			}
			mu.Lock()
			sds = append(sds, stats.StdDev(downloads))
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(sds)
	}
	if smart, greedy := fairness(core.AlgSmartEXP3), fairness(core.AlgGreedy); smart >= greedy {
		t.Fatalf("Smart EXP3 fairness sd %.0f not below Greedy's %.0f", smart, greedy)
	}
}
