package experiment

import (
	"math/rand"

	"smartexp3/internal/core"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/report"
	"smartexp3/internal/sim"
	"smartexp3/internal/stats"
)

// ablationVariant is full Smart EXP3 with one mechanism removed.
type ablationVariant struct {
	name string
	feat core.Features
}

func ablationVariants() []ablationVariant {
	full := core.FeaturesFor(core.AlgSmartEXP3)
	variants := []ablationVariant{{name: "Smart EXP3 (full)", feat: full}}

	v := full
	v.Blocking = false
	variants = append(variants, ablationVariant{name: "without blocking", feat: v})

	v = full
	v.ExploreFirst = false
	v.Greedy = false
	variants = append(variants, ablationVariant{name: "without exploration+greedy", feat: v})

	v = full
	v.Greedy = false
	variants = append(variants, ablationVariant{name: "without greedy coin", feat: v})

	v = full
	v.SwitchBack = false
	variants = append(variants, ablationVariant{name: "without switch-back", feat: v})

	v = full
	v.Reset = false
	variants = append(variants, ablationVariant{name: "without reset", feat: v})

	return variants
}

// runAblation quantifies each Smart EXP3 mechanism's contribution on static
// Setting 1: switches, download, fairness, and late-run distance to NE.
func runAblation(o Options) (*report.Report, error) {
	tbl := report.Table{
		Title: "Smart EXP3 feature ablation (static Setting 1)",
		Columns: []string{
			"Variant", "Mean switches", "Median download (GB)",
			"Fairness sd (MB)", "Late distance to NE (%)",
		},
	}
	for vi, variant := range ablationVariants() {
		feat := variant.feat
		var (
			switches []float64
			download []float64
			fairness []float64
			lateDist []float64
		)
		err := o.replicate(o.replications(o.Runs, 1600, int64(vi)),
			sim.Config{
				Topology: netmodel.Setting1(),
				Devices:  sim.UniformDevices(o.Devices, core.AlgSmartEXP3),
				Slots:    o.Slots,
				Collect:  sim.CollectOptions{Distance: true},
				PolicyFactory: func(_ int, available []int, rng *rand.Rand) (core.Policy, error) {
					return core.NewSmartEXP3(variant.name, feat, available, core.DefaultConfig(), rng), nil
				},
			},
			func(_ int, res *sim.Result) error {
				var dls []float64
				for d := range res.Devices {
					dls = append(dls, res.Devices[d].DownloadMb)
					switches = append(switches, float64(res.Devices[d].Switches))
				}
				late := res.Distance[len(res.Distance)*3/4:]
				download = append(download, sim.MbToGB(stats.Median(dls)))
				fairness = append(fairness, sim.MbToMB(stats.StdDev(dls)))
				lateDist = append(lateDist, stats.Mean(late))
				return nil
			})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(variant.name,
			report.F(stats.Mean(switches), 1),
			report.F(stats.Mean(download), 2),
			report.F(stats.Mean(fairness), 0),
			report.F(stats.Mean(lateDist), 2))
	}
	return &report.Report{
		ID:     "ablate",
		Title:  "Ablation of Smart EXP3's mechanisms",
		Tables: []report.Table{tbl},
		Notes: []string{
			"'Late distance' averages the distance-to-NE over the final quarter of the run.",
		},
	}, nil
}
