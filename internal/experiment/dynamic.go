package experiment

import (
	"fmt"

	"smartexp3/internal/core"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/report"
	"smartexp3/internal/runner"
	"smartexp3/internal/sim"
	"smartexp3/internal/stats"
)

// The dynamic scenarios of Section VI-A. Event slots follow the paper at the
// default 1200-slot horizon and scale proportionally otherwise.
const (
	scenarioJoinLeave = 1 // fig7: 9 devices join at t=401, leave after t=800
	scenarioMassLeave = 2 // fig8: 16 devices leave after t=600
	scenarioMobility  = 3 // fig9: Figure 1 map, 8 devices move between areas
)

// dynamicAlgorithms are the four policies compared in the dynamic settings.
func dynamicAlgorithms() []core.Algorithm {
	return []core.Algorithm{
		core.AlgEXP3, core.AlgSmartEXP3NoReset, core.AlgSmartEXP3, core.AlgGreedy,
	}
}

// dynamicConfig builds the simulation config of one scenario.
func dynamicConfig(scenario int, o Options, alg core.Algorithm, seed int64) sim.Config {
	third := o.Slots / 3
	switch scenario {
	case scenarioJoinLeave:
		devices := sim.UniformDevices(o.Devices, alg)
		transient := 9 * o.Devices / 20
		for d := 0; d < transient; d++ {
			devices[len(devices)-1-d].Join = third
			devices[len(devices)-1-d].Leave = 2 * third
		}
		return sim.Config{
			Topology: netmodel.Setting1(),
			Devices:  devices,
			Slots:    o.Slots,
			Seed:     seed,
			Collect:  sim.CollectOptions{Distance: true},
		}
	case scenarioMassLeave:
		devices := sim.UniformDevices(o.Devices, alg)
		leaving := 16 * o.Devices / 20
		for d := 0; d < leaving; d++ {
			devices[len(devices)-1-d].Leave = o.Slots / 2
		}
		return sim.Config{
			Topology: netmodel.Setting1(),
			Devices:  devices,
			Slots:    o.Slots,
			Seed:     seed,
			Collect:  sim.CollectOptions{Distance: true},
		}
	case scenarioMobility:
		devices := make([]sim.DeviceSpec, 20)
		groups := make([][]int, 4)
		for d := 0; d < 20; d++ {
			devices[d] = sim.DeviceSpec{Algorithm: alg}
			switch {
			case d < 8: // moving: food court → study area → bus stop
				devices[d].Trajectory = []sim.AreaStay{
					{FromSlot: 0, Area: netmodel.AreaFoodCourt},
					{FromSlot: third, Area: netmodel.AreaStudyArea},
					{FromSlot: 2 * third, Area: netmodel.AreaBusStop},
				}
				groups[0] = append(groups[0], d)
			case d < 10: // stay at the food court
				devices[d].Trajectory = []sim.AreaStay{{Area: netmodel.AreaFoodCourt}}
				groups[1] = append(groups[1], d)
			case d < 15: // study area
				devices[d].Trajectory = []sim.AreaStay{{Area: netmodel.AreaStudyArea}}
				groups[2] = append(groups[2], d)
			default: // bus stop
				devices[d].Trajectory = []sim.AreaStay{{Area: netmodel.AreaBusStop}}
				groups[3] = append(groups[3], d)
			}
		}
		return sim.Config{
			Topology:     netmodel.FoodCourt(),
			Devices:      devices,
			Slots:        o.Slots,
			Seed:         seed,
			DeviceGroups: groups,
			Collect:      sim.CollectOptions{Distance: true},
		}
	default:
		panic(fmt.Sprintf("experiment: unknown dynamic scenario %d", scenario))
	}
}

// mobilityGroupNames label the Figure 9 panels.
func mobilityGroupNames() []string {
	return []string{
		"devices 1-8 (moving)",
		"devices 9-10 (food court)",
		"devices 11-15 (study area)",
		"devices 16-20 (bus stop)",
	}
}

// dynamicAgg aggregates one (scenario, algorithm) sweep.
type dynamicAgg struct {
	Distance      *stats.Series
	GroupDistance []*stats.Series
	// SwitchesPresent pools switch counts of devices present throughout.
	SwitchesPresent []float64
	// SwitchesMoving pools switch counts of the moving group (mobility
	// scenario only).
	SwitchesMoving []float64
	ResetsPresent  []float64
}

type dynamicKey struct {
	scenario int
	alg      core.Algorithm
	runs     int
	slots    int
	devices  int
	seed     int64
}

var dynamicCache runner.Group[dynamicKey, *dynamicAgg]

func dynamicAggFor(o Options, scenario int, alg core.Algorithm) (*dynamicAgg, error) {
	key := dynamicKey{scenario, alg, o.Runs, o.Slots, o.Devices, o.Seed}
	return dynamicCache.Do(key, func() (*dynamicAgg, error) {
		agg := &dynamicAgg{Distance: stats.NewSeries(o.Slots)}
		if scenario == scenarioMobility {
			agg.GroupDistance = make([]*stats.Series, 4)
			for g := range agg.GroupDistance {
				agg.GroupDistance[g] = stats.NewSeries(o.Slots)
			}
		}
		err := o.replicate(o.replications(o.Runs, 700, int64(scenario), int64(alg)),
			dynamicConfig(scenario, o, alg, 0),
			func(_ int, res *sim.Result) error {
				agg.Distance.AddRun(res.Distance)
				for g := range agg.GroupDistance {
					if g < len(res.GroupDistance) {
						agg.GroupDistance[g].AddRun(res.GroupDistance[g])
					}
				}
				for d := range res.Devices {
					dev := &res.Devices[d]
					if dev.PresentThroughout {
						if scenario == scenarioMobility && d < 8 {
							agg.SwitchesMoving = append(agg.SwitchesMoving, float64(dev.Switches))
						} else {
							agg.SwitchesPresent = append(agg.SwitchesPresent, float64(dev.Switches))
							agg.ResetsPresent = append(agg.ResetsPresent, float64(dev.Resets))
						}
					}
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
		return agg, nil
	})
}

func runDynamicFigure(o Options, id, title string, scenario int, eventNote string) (*report.Report, error) {
	chart := report.Chart{
		Title:  title,
		XLabel: "slot",
	}
	for _, alg := range dynamicAlgorithms() {
		agg, err := dynamicAggFor(o, scenario, alg)
		if err != nil {
			return nil, err
		}
		chart.Add(alg.String(), agg.Distance.Mean())
	}
	return &report.Report{
		ID:     id,
		Title:  title,
		Charts: []report.Chart{chart},
		Notes:  []string{eventNote},
	}, nil
}

func runFig7(o Options) (*report.Report, error) {
	third := o.Slots / 3
	return runDynamicFigure(o, "fig7",
		"Figure 7: distance to NE with devices joining and leaving",
		scenarioJoinLeave,
		fmt.Sprintf("9 of 20 devices join at slot %d and leave after slot %d.", third, 2*third))
}

func runFig8(o Options) (*report.Report, error) {
	return runDynamicFigure(o, "fig8",
		"Figure 8: distance to NE after 16 devices free their resources",
		scenarioMassLeave,
		fmt.Sprintf("16 of 20 devices leave after slot %d; only resets rediscover the freed capacity.", o.Slots/2))
}

func runFig9(o Options) (*report.Report, error) {
	rep := &report.Report{
		ID:    "fig9",
		Title: "Figure 9: mobility across the Figure 1 service areas",
		Notes: []string{
			fmt.Sprintf("Devices 1-8 move food court → study area (slot %d) → bus stop (slot %d).",
				o.Slots/3, 2*o.Slots/3),
		},
	}
	names := mobilityGroupNames()
	for g := range names {
		chart := report.Chart{Title: "Distance to NE: " + names[g], XLabel: "slot"}
		for _, alg := range dynamicAlgorithms() {
			agg, err := dynamicAggFor(o, scenarioMobility, alg)
			if err != nil {
				return nil, err
			}
			chart.Add(alg.String(), agg.GroupDistance[g].Mean())
		}
		rep.Charts = append(rep.Charts, chart)
	}
	return rep, nil
}

// runFig10 reports Smart EXP3's switch counts across static and dynamic
// settings for devices that stay for the whole run.
func runFig10(o Options) (*report.Report, error) {
	tbl := report.Table{
		Title:   "Smart EXP3: switches of devices present throughout",
		Columns: []string{"Setting", "Mean switches", "StdDev", "Mean resets"},
	}
	for setting := 1; setting <= 2; setting++ {
		agg, err := staticAggFor(o, setting, core.AlgSmartEXP3)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("Static setting %d", setting),
			report.F(stats.Mean(agg.SwitchesPerDevice), 1),
			report.F(stats.StdDev(agg.SwitchesPerDevice), 1),
			report.F(stats.Mean(agg.ResetsPerDevice), 1))
	}
	type row struct {
		label    string
		scenario int
		moving   bool
	}
	for _, rw := range []row{
		{"Dynamic setting 1 (11 devices)", scenarioJoinLeave, false},
		{"Dynamic setting 2 (4 devices)", scenarioMassLeave, false},
		{"Setting 3 (8 moving devices)", scenarioMobility, true},
		{"Setting 3 (other 12 devices)", scenarioMobility, false},
	} {
		agg, err := dynamicAggFor(o, rw.scenario, core.AlgSmartEXP3)
		if err != nil {
			return nil, err
		}
		xs := agg.SwitchesPresent
		if rw.moving {
			xs = agg.SwitchesMoving
		}
		tbl.AddRow(rw.label,
			report.F(stats.Mean(xs), 1),
			report.F(stats.StdDev(xs), 1),
			report.F(stats.Mean(agg.ResetsPresent), 1))
	}
	return &report.Report{
		ID:     "fig10",
		Title:  "Figure 10: Smart EXP3 switches in static vs dynamic settings",
		Tables: []report.Table{tbl},
		Notes: []string{
			"The paper reports comparable counts across settings (≈64-68) with moving devices higher (≈102) due to reset-on-discovery.",
		},
	}, nil
}

// runFig11 reproduces the robustness study: populations mixing Smart EXP3
// and Greedy devices in Setting 1's network environment.
func runFig11(o Options) (*report.Report, error) {
	scenarios := []struct {
		name  string
		smart int
	}{
		{"Scenario 1: 1 Greedy among 19 Smart EXP3", 19},
		{"Scenario 2: 10 Smart EXP3, 10 Greedy", 10},
		{"Scenario 3: 1 Smart EXP3 among 19 Greedy", 1},
	}
	rep := &report.Report{
		ID:    "fig11",
		Title: "Figure 11: robustness against greedy devices",
	}
	for si, sc := range scenarios {
		devices := make([]sim.DeviceSpec, o.Devices)
		var smartGroup, greedyGroup []int
		smartCount := sc.smart * o.Devices / 20
		if smartCount < 1 {
			smartCount = 1
		}
		for d := range devices {
			if d < smartCount {
				devices[d] = sim.DeviceSpec{Algorithm: core.AlgSmartEXP3}
				smartGroup = append(smartGroup, d)
			} else {
				devices[d] = sim.DeviceSpec{Algorithm: core.AlgGreedy}
				greedyGroup = append(greedyGroup, d)
			}
		}
		smartSeries := stats.NewSeries(o.Slots)
		greedySeries := stats.NewSeries(o.Slots)
		err := o.replicate(o.replications(o.Runs, 1100, int64(si)),
			sim.Config{
				Topology:     netmodel.Setting1(),
				Devices:      devices,
				Slots:        o.Slots,
				DeviceGroups: [][]int{smartGroup, greedyGroup},
				Collect:      sim.CollectOptions{Distance: true},
			},
			func(_ int, res *sim.Result) error {
				smartSeries.AddRun(res.GroupDistance[0])
				greedySeries.AddRun(res.GroupDistance[1])
				return nil
			})
		if err != nil {
			return nil, err
		}
		chart := report.Chart{Title: sc.name + " — distance to NE", XLabel: "slot"}
		chart.Add("Smart EXP3", smartSeries.Mean())
		chart.Add("Greedy", greedySeries.Mean())
		rep.Charts = append(rep.Charts, chart)
	}
	return rep, nil
}
