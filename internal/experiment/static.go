package experiment

import (
	"smartexp3/internal/core"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/report"
	"smartexp3/internal/runner"
	"smartexp3/internal/sim"
	"smartexp3/internal/stats"
)

// staticAgg aggregates Options.Runs replications of one (setting, algorithm)
// static simulation — the shared substrate of Figures 2–5 and Tables IV–V.
type staticAgg struct {
	Alg     core.Algorithm
	Runs    int
	Slots   int
	Devices int

	SwitchesPerDevice []float64 // pooled over devices and runs
	ResetsPerDevice   []float64

	StableRuns    int
	StableAtNE    int
	SlotsToStable []float64 // stable runs only

	Distance *stats.Series // per-slot mean over runs

	MedianDownloadGB []float64 // per run: median over devices
	SDDownloadMB     []float64 // per run: stddev over devices
	UnusedGB         []float64 // per run
	FracAtNE         []float64 // per run
	FracAtEps        []float64 // per run
}

type staticKey struct {
	setting int
	alg     core.Algorithm
	runs    int
	slots   int
	devices int
	seed    int64
}

var staticCache runner.Group[staticKey, *staticAgg]

func settingTopology(setting int) netmodel.Topology {
	if setting == 2 {
		return netmodel.Setting2()
	}
	return netmodel.Setting1()
}

// staticAggFor runs (or returns the cached aggregation of) the static
// simulation suite for one setting and algorithm. Replications fan out over
// the runner pool and merge in run order, so the aggregate is identical for
// every worker count; concurrent callers of the same cell share one
// computation.
func staticAggFor(o Options, setting int, alg core.Algorithm) (*staticAgg, error) {
	key := staticKey{setting, alg, o.Runs, o.Slots, o.Devices, o.Seed}
	return staticCache.Do(key, func() (*staticAgg, error) {
		agg := &staticAgg{
			Alg:      alg,
			Runs:     o.Runs,
			Slots:    o.Slots,
			Devices:  o.Devices,
			Distance: stats.NewSeries(o.Slots),
		}
		err := o.replicate(o.replications(o.Runs, int64(setting), int64(alg)),
			sim.Config{
				Topology: settingTopology(setting),
				Devices:  sim.UniformDevices(o.Devices, alg),
				Slots:    o.Slots,
				Collect:  sim.CollectOptions{Distance: true, Probabilities: true},
			},
			func(_ int, res *sim.Result) error {
				mergeStatic(agg, res)
				return nil
			})
		if err != nil {
			return nil, err
		}
		return agg, nil
	})
}

func mergeStatic(agg *staticAgg, res *sim.Result) {
	var downloads []float64
	for d := range res.Devices {
		agg.SwitchesPerDevice = append(agg.SwitchesPerDevice, float64(res.Devices[d].Switches))
		agg.ResetsPerDevice = append(agg.ResetsPerDevice, float64(res.Devices[d].Resets))
		downloads = append(downloads, res.Devices[d].DownloadMb)
	}
	agg.MedianDownloadGB = append(agg.MedianDownloadGB, sim.MbToGB(stats.Median(downloads)))
	agg.SDDownloadMB = append(agg.SDDownloadMB, sim.MbToMB(stats.StdDev(downloads)))
	agg.UnusedGB = append(agg.UnusedGB, sim.MbToGB(res.UnusedMb))
	agg.FracAtNE = append(agg.FracAtNE, res.FracAtNE)
	agg.FracAtEps = append(agg.FracAtEps, res.FracAtEps)
	agg.Distance.AddRun(res.Distance)
	if res.StabilityValid && res.Stability.Stable {
		agg.StableRuns++
		if res.Stability.AtNash {
			agg.StableAtNE++
		}
		agg.SlotsToStable = append(agg.SlotsToStable, float64(res.Stability.Slot))
	}
}

// fig2Algorithms are the seven algorithms of Figure 2 (Centralized and Fixed
// Random incur no switches and are omitted, as in the paper).
func fig2Algorithms() []core.Algorithm {
	return []core.Algorithm{
		core.AlgFullInformation, core.AlgGreedy, core.AlgSmartEXP3,
		core.AlgSmartEXP3NoReset, core.AlgHybridBlockEXP3, core.AlgBlockEXP3,
		core.AlgEXP3,
	}
}

// stabilityAlgorithms are the block-based variants Figure 3 and Table IV
// evaluate (EXP3 and Full Information never stabilize; Smart EXP3 resets).
func stabilityAlgorithms() []core.Algorithm {
	return []core.Algorithm{
		core.AlgSmartEXP3NoReset, core.AlgHybridBlockEXP3, core.AlgBlockEXP3,
	}
}

func runFig2(o Options) (*report.Report, error) {
	tbl := report.Table{
		Title:   "Average number of network switches per device (error = stddev)",
		Columns: []string{"Algorithm", "Setting 1 mean", "Setting 1 sd", "Setting 2 mean", "Setting 2 sd"},
	}
	for _, alg := range fig2Algorithms() {
		row := []string{alg.String()}
		for _, setting := range []int{1, 2} {
			agg, err := staticAggFor(o, setting, alg)
			if err != nil {
				return nil, err
			}
			row = append(row,
				report.F(stats.Mean(agg.SwitchesPerDevice), 1),
				report.F(stats.StdDev(agg.SwitchesPerDevice), 1))
		}
		tbl.AddRow(row...)
	}
	return &report.Report{
		ID:     "fig2",
		Title:  "Figure 2: network switches by algorithm",
		Tables: []report.Table{tbl},
		Notes: []string{
			"Centralized and Fixed Random never switch and are omitted, as in the paper.",
		},
	}, nil
}

func runFig3(o Options) (*report.Report, error) {
	tbl := report.Table{
		Title:   "Percentage of runs reaching a stable state (Definition 2)",
		Columns: []string{"Algorithm", "S1 %stable@NE", "S1 %stable other", "S2 %stable@NE", "S2 %stable other"},
	}
	for _, alg := range stabilityAlgorithms() {
		row := []string{alg.String()}
		for _, setting := range []int{1, 2} {
			agg, err := staticAggFor(o, setting, alg)
			if err != nil {
				return nil, err
			}
			atNE := 100 * float64(agg.StableAtNE) / float64(agg.Runs)
			other := 100 * float64(agg.StableRuns-agg.StableAtNE) / float64(agg.Runs)
			row = append(row, report.F(atNE, 1), report.F(other, 1))
		}
		tbl.AddRow(row...)
	}
	return &report.Report{
		ID:     "fig3",
		Title:  "Figure 3: stable runs and type of stable state",
		Tables: []report.Table{tbl},
	}, nil
}

func runTable4(o Options) (*report.Report, error) {
	tbl := report.Table{
		Title:   "Median number of time slots to reach a stable state (stable runs)",
		Columns: []string{"Algorithm", "Setting 1", "Setting 2"},
	}
	for _, alg := range []core.Algorithm{
		core.AlgBlockEXP3, core.AlgHybridBlockEXP3, core.AlgSmartEXP3NoReset,
	} {
		row := []string{alg.String()}
		for _, setting := range []int{1, 2} {
			agg, err := staticAggFor(o, setting, alg)
			if err != nil {
				return nil, err
			}
			if len(agg.SlotsToStable) == 0 {
				row = append(row, "never")
				continue
			}
			row = append(row, report.F(medianOf(agg.SlotsToStable), 1))
		}
		tbl.AddRow(row...)
	}
	return &report.Report{
		ID:     "tab4",
		Title:  "Table IV: time to stable state",
		Tables: []report.Table{tbl},
	}, nil
}

func runFig4(o Options) (*report.Report, error) {
	rep := &report.Report{
		ID:    "fig4",
		Title: "Figure 4: average distance to Nash equilibrium (static settings)",
	}
	summary := report.Table{
		Title: "Time at equilibrium (Smart EXP3 rows match the paper's 62.77%/74.30% claim)",
		Columns: []string{
			"Algorithm", "S1 %slots at NE", "S1 %slots ≤ε", "S2 %slots at NE", "S2 %slots ≤ε",
		},
	}
	for _, setting := range []int{1, 2} {
		chart := report.Chart{
			Title:  "Setting " + report.F(float64(setting), 0) + ": mean % higher gain a device could observe at NE",
			XLabel: "slot",
		}
		for _, alg := range core.Algorithms() {
			agg, err := staticAggFor(o, setting, alg)
			if err != nil {
				return nil, err
			}
			chart.Add(alg.String(), agg.Distance.Mean())
		}
		rep.Charts = append(rep.Charts, chart)
	}
	for _, alg := range core.Algorithms() {
		row := []string{alg.String()}
		for _, setting := range []int{1, 2} {
			agg, err := staticAggFor(o, setting, alg)
			if err != nil {
				return nil, err
			}
			row = append(row,
				report.F(100*stats.Mean(agg.FracAtNE), 2),
				report.F(100*stats.Mean(agg.FracAtEps), 2))
		}
		summary.AddRow(row...)
	}
	rep.Tables = append(rep.Tables, summary)
	return rep, nil
}

func runTable5(o Options) (*report.Report, error) {
	tbl := report.Table{
		Title:   "(Mean) per-run median cumulative download (GB)",
		Columns: []string{"Algorithm", "Setting 1", "Setting 2"},
	}
	for _, alg := range core.Algorithms() {
		row := []string{alg.String()}
		for _, setting := range []int{1, 2} {
			agg, err := staticAggFor(o, setting, alg)
			if err != nil {
				return nil, err
			}
			row = append(row, report.F(stats.Mean(agg.MedianDownloadGB), 2))
		}
		tbl.AddRow(row...)
	}
	return &report.Report{
		ID:     "tab5",
		Title:  "Table V: cumulative download",
		Tables: []report.Table{tbl},
	}, nil
}

func runUnutilized(o Options) (*report.Report, error) {
	tbl := report.Table{
		Title:   "Mean unutilized resources (GB) over the run",
		Columns: []string{"Algorithm", "Setting 1", "Setting 2"},
	}
	for _, alg := range core.Algorithms() {
		row := []string{alg.String()}
		for _, setting := range []int{1, 2} {
			agg, err := staticAggFor(o, setting, alg)
			if err != nil {
				return nil, err
			}
			row = append(row, report.F(stats.Mean(agg.UnusedGB), 2))
		}
		tbl.AddRow(row...)
	}
	return &report.Report{
		ID:     "unutil",
		Title:  "Unutilized resources (Section VI-A)",
		Tables: []report.Table{tbl},
		Notes: []string{
			"The paper reports Greedy losing ≈8 GB in Setting 1 (devices rate the 4 Mbps network unusable) and none in Setting 2.",
		},
	}, nil
}

func runFig5(o Options) (*report.Report, error) {
	tbl := report.Table{
		Title:   "Average per-run stddev of device cumulative downloads (MB); lower = fairer",
		Columns: []string{"Algorithm", "Setting 1", "Setting 2"},
	}
	for _, alg := range core.Algorithms() {
		row := []string{alg.String()}
		for _, setting := range []int{1, 2} {
			agg, err := staticAggFor(o, setting, alg)
			if err != nil {
				return nil, err
			}
			row = append(row, report.F(stats.Mean(agg.SDDownloadMB), 0))
		}
		tbl.AddRow(row...)
	}
	return &report.Report{
		ID:     "fig5",
		Title:  "Figure 5: fairness of cumulative downloads",
		Tables: []report.Table{tbl},
	}, nil
}
