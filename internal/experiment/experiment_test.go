package experiment

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"smartexp3/internal/cluster"
	"smartexp3/internal/core"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/sim"
)

func TestRegistryIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, d := range All() {
		if d.ID == "" || d.Title == "" || d.Run == nil {
			t.Fatalf("incomplete definition %+v", d)
		}
		if seen[d.ID] {
			t.Fatalf("duplicate experiment id %q", d.ID)
		}
		seen[d.ID] = true
	}
}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	// Every table and figure of the evaluation must have an experiment.
	want := []string{
		"fig2", "fig3", "tab4", "fig4", "tab5", "unutil", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "tab6", "fig12", "tab7",
		"fig13", "fig14", "fig15", "wild", "thm2", "thm3", "ablate",
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("experiment %d is %q, want %q", i, ids[i], id)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig2"); !ok {
		t.Fatal("fig2 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id found")
	}
}

func TestOptionsDefaults(t *testing.T) {
	d := Default()
	if d.Runs <= 0 || d.Slots != 1200 || d.Devices != 20 {
		t.Fatalf("suspicious defaults %+v", d)
	}
	q := Quick()
	if q.Runs >= d.Runs || q.TestbedSlots >= d.TestbedSlots {
		t.Fatalf("Quick() not smaller than Default(): %+v", q)
	}
	if d.workers() < 1 {
		t.Fatal("workers must be at least 1")
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	hit := make([]bool, 37)
	done := make(chan int, len(hit))
	err := forEach(4, len(hit), func(i int) error {
		done <- i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	close(done)
	for i := range done {
		hit[i] = true
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("index %d never ran", i)
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	err := forEach(3, 10, func(i int) error {
		if i == 5 {
			return strconv.ErrRange
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "run 5") {
		t.Fatalf("error = %v", err)
	}
}

func TestMedianOf(t *testing.T) {
	if got := medianOf([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("medianOf odd = %v", got)
	}
	if got := medianOf([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("medianOf even = %v", got)
	}
	if got := medianOf(nil); got != 0 {
		t.Fatalf("medianOf nil = %v", got)
	}
}

// tinyOptions returns the smallest options that still exercise the
// aggregation paths.
func tinyOptions() Options {
	return Options{
		Runs:                3,
		Slots:               120,
		Devices:             8,
		Seed:                1,
		Workers:             2,
		ScaleRuns:           2,
		ScaleSlots:          300,
		TraceRuns:           6,
		TestbedRuns:         1,
		TestbedSlots:        12,
		TestbedSlotDuration: 25 * time.Millisecond,
		WildRuns:            2,
	}
}

func TestStaticAggregationSmoke(t *testing.T) {
	o := tinyOptions()
	agg, err := staticAggFor(o, 1, core.AlgSmartEXP3)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.SwitchesPerDevice) != o.Runs*o.Devices {
		t.Fatalf("pooled %d switch samples, want %d", len(agg.SwitchesPerDevice), o.Runs*o.Devices)
	}
	if len(agg.MedianDownloadGB) != o.Runs {
		t.Fatalf("got %d per-run downloads, want %d", len(agg.MedianDownloadGB), o.Runs)
	}
	if agg.Distance.Len() != o.Slots {
		t.Fatalf("distance series %d slots, want %d", agg.Distance.Len(), o.Slots)
	}
}

func TestStaticAggregationCached(t *testing.T) {
	o := tinyOptions()
	a, err := staticAggFor(o, 1, core.AlgGreedy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := staticAggFor(o, 1, core.AlgGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second call must return the cached aggregate")
	}
}

func TestSyntheticExperimentsSmoke(t *testing.T) {
	// Run every synthetic-simulation experiment end-to-end at tiny scale;
	// testbed and wild experiments have dedicated tests.
	o := tinyOptions()
	for _, id := range []string{
		"fig2", "fig3", "tab4", "fig4", "tab5", "unutil", "fig5",
		"fig7", "fig8", "fig9", "fig10", "fig11", "tab6", "fig12",
		"thm2", "thm3",
	} {
		def, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		rep, err := def.Run(o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rep.ID != id {
			t.Fatalf("report id %q for experiment %q", rep.ID, id)
		}
		if len(rep.Tables) == 0 && len(rep.Charts) == 0 {
			t.Fatalf("%s produced no output", id)
		}
		if out := rep.String(); len(out) < 40 {
			t.Fatalf("%s rendered suspiciously little: %q", id, out)
		}
	}
}

func TestScalabilityExperimentSmoke(t *testing.T) {
	o := tinyOptions()
	rep, err := runFig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 6 {
		t.Fatalf("fig6 table shape wrong: %+v", rep.Tables)
	}
}

// TestReplicateClusterMatchesInProcess pins the experiment suite's cluster
// hook: o.replicate with shardd workers configured must merge the exact
// result stream the in-process path merges. (Experiment-level caches key on
// scenario parameters, not on Cluster, precisely because the two paths are
// interchangeable.)
func TestReplicateClusterMatchesInProcess(t *testing.T) {
	cfg := sim.Config{
		Topology: netmodel.Setting1(),
		Devices:  sim.UniformDevices(5, core.AlgSmartEXP3),
		Slots:    50,
		Collect:  sim.CollectOptions{Distance: true, Probabilities: true},
	}
	o := tinyOptions()
	fp := func(o Options) string {
		var sb strings.Builder
		err := o.replicate(o.replications(10, 77), cfg, func(run int, res *sim.Result) error {
			fmt.Fprintf(&sb, "%d:", run)
			for d := range res.Devices {
				fmt.Fprintf(&sb, "%x;", res.Devices[d].DownloadMb)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	want := fp(o)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go cluster.Serve(ln, cluster.WorkerOptions{})
	o.Cluster = []string{ln.Addr().String()}
	if got := fp(o); got != want {
		t.Fatal("cluster replicate stream differs from in-process")
	}
}

// TestReplicateSessionMatchesInProcess pins the persistent-session hook:
// o.replicate with a Session configured must merge the exact result stream
// the in-process path merges, across several back-to-back batches on
// distinct streams — the experiment suite's shape — over one session.
func TestReplicateSessionMatchesInProcess(t *testing.T) {
	cfg := sim.Config{
		Topology: netmodel.Setting1(),
		Devices:  sim.UniformDevices(5, core.AlgSmartEXP3),
		Slots:    50,
		Collect:  sim.CollectOptions{Distance: true, Probabilities: true},
	}
	o := tinyOptions()
	fp := func(o Options, stream int64) string {
		var sb strings.Builder
		err := o.replicate(o.replications(8, 9000, stream), cfg, func(run int, res *sim.Result) error {
			fmt.Fprintf(&sb, "%d:", run)
			for d := range res.Devices {
				fmt.Fprintf(&sb, "%x;", res.Devices[d].DownloadMb)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	wants := []string{fp(o, 1), fp(o, 2), fp(o, 3)}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go cluster.Serve(ln, cluster.WorkerOptions{})
	o.Cluster = []string{ln.Addr().String()}
	sess := cluster.NewSession(o.Cluster, cluster.Options{})
	defer sess.Close()
	o.Session = sess
	o.ClusterAffinity = 1
	for i, want := range wants {
		if got := fp(o, int64(i+1)); got != want {
			t.Fatalf("session batch %d differs from the in-process stream", i+1)
		}
	}
}

// TestAblationRunsWithClusterConfigured pins the fallback: the ablation's
// PolicyFactory cannot cross the wire, so a configured cluster must not
// break it — it silently runs in-process.
func TestAblationRunsWithClusterConfigured(t *testing.T) {
	o := tinyOptions()
	o.Runs = 2
	o.Seed = 424242                     // unique cell: never cached by other tests
	o.Cluster = []string{"127.0.0.1:1"} // nothing listens here; must not matter
	if _, err := runAblation(o); err != nil {
		t.Fatal(err)
	}
}

func TestAblationSmoke(t *testing.T) {
	o := tinyOptions()
	o.Runs = 2
	rep, err := runAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != len(ablationVariants()) {
		t.Fatalf("ablation rows %d, want %d", len(rep.Tables[0].Rows), len(ablationVariants()))
	}
}

func TestWildExperimentSmoke(t *testing.T) {
	o := tinyOptions()
	rep, err := runWild(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 2 {
		t.Fatalf("wild table rows %d, want 2", len(rep.Tables[0].Rows))
	}
}

func TestTestbedExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed experiment uses wall-clock time")
	}
	o := tinyOptions()
	rep, err := runTable7(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 2 {
		t.Fatalf("tab7 rows %d, want 2", len(rep.Tables[0].Rows))
	}
	// fig13 reuses the cached static-testbed sweep, so it is cheap now.
	rep13, err := runFig13(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep13.Charts) != 1 {
		t.Fatalf("fig13 charts %d, want 1", len(rep13.Charts))
	}
}

func TestSwitchBoundFormula(t *testing.T) {
	// Theorem 2 with no reset: 3k log(T+1)/log(1+β).
	got := SwitchBound(3, 1200, 1, 0.1)
	if got < 600 || got > 700 {
		t.Fatalf("bound = %v, want ≈670", got)
	}
	// More reset periods multiply the bound.
	double := SwitchBound(3, 1200, 2, 0.1)
	if double != 2*got {
		t.Fatalf("bound not linear in reset periods: %v vs %v", double, got)
	}
}
