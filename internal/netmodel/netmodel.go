// Package netmodel describes the wireless environments of Section II: sets
// of heterogeneous networks (WiFi access points and cellular), service areas
// delimiting their coverage, and the standard topologies the evaluation uses
// (Settings 1 and 2, and the Figure 1 food-court/study-area/bus-stop map).
package netmodel

import (
	"errors"
	"fmt"
)

// Type distinguishes network technologies; switching delay is modeled per
// technology (Johnson's S_U for WiFi, Student's t for cellular).
type Type int

// Supported network technologies.
const (
	WiFi Type = iota + 1
	Cellular
)

// String returns the technology name.
func (t Type) String() string {
	switch t {
	case WiFi:
		return "wifi"
	case Cellular:
		return "cellular"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Network is one selectable wireless network.
type Network struct {
	Name      string
	Type      Type
	Bandwidth float64 // achievable aggregate data rate in Mbps
}

// Topology is a set of networks plus the service areas that scope their
// visibility. Areas[a] lists the indices (into Networks) visible from area a.
// A topology with a single area models the homogeneous-availability settings.
type Topology struct {
	Networks []Network
	Areas    [][]int
}

// Validate reports whether the topology is well-formed.
func (tp Topology) Validate() error {
	if len(tp.Networks) == 0 {
		return errors.New("netmodel: topology needs at least one network")
	}
	for i, n := range tp.Networks {
		if n.Bandwidth <= 0 {
			return fmt.Errorf("netmodel: network %d (%s) must have positive bandwidth", i, n.Name)
		}
		if n.Type != WiFi && n.Type != Cellular {
			return fmt.Errorf("netmodel: network %d (%s) has unknown type", i, n.Name)
		}
	}
	if len(tp.Areas) == 0 {
		return errors.New("netmodel: topology needs at least one area")
	}
	for a, nets := range tp.Areas {
		if len(nets) == 0 {
			return fmt.Errorf("netmodel: area %d has no visible network", a)
		}
		for _, i := range nets {
			if i < 0 || i >= len(tp.Networks) {
				return fmt.Errorf("netmodel: area %d references network %d out of %d",
					a, i, len(tp.Networks))
			}
		}
	}
	return nil
}

// Bandwidths returns the per-network bandwidths in index order.
func (tp Topology) Bandwidths() []float64 {
	out := make([]float64, len(tp.Networks))
	for i, n := range tp.Networks {
		out[i] = n.Bandwidth
	}
	return out
}

// AggregateBandwidth returns the total bandwidth over all networks in Mbps.
func (tp Topology) AggregateBandwidth() float64 {
	var total float64
	for _, n := range tp.Networks {
		total += n.Bandwidth
	}
	return total
}

// MaxBandwidth returns the largest single-network bandwidth, the default
// scale that maps observed bit rates into the [0,1] gain range.
func (tp Topology) MaxBandwidth() float64 {
	var maxBW float64
	for _, n := range tp.Networks {
		if n.Bandwidth > maxBW {
			maxBW = n.Bandwidth
		}
	}
	return maxBW
}

// SingleArea builds a topology in which every device sees every network.
func SingleArea(networks ...Network) Topology {
	all := make([]int, len(networks))
	for i := range networks {
		all[i] = i
	}
	return Topology{Networks: networks, Areas: [][]int{all}}
}

// Setting1 is the paper's static Setting 1: three networks with non-uniform
// data rates 4, 7 and 22 Mbps (33 Mbps aggregate), yielding a unique Nash
// equilibrium for 20 devices.
func Setting1() Topology {
	return SingleArea(
		Network{Name: "wlan-4", Type: WiFi, Bandwidth: 4},
		Network{Name: "wlan-7", Type: WiFi, Bandwidth: 7},
		Network{Name: "cell-22", Type: Cellular, Bandwidth: 22},
	)
}

// Setting2 is the paper's static Setting 2: three networks with a uniform
// 11 Mbps data rate (33 Mbps aggregate), yielding multiple equivalent Nash
// equilibria.
func Setting2() Topology {
	return SingleArea(
		Network{Name: "wlan-a", Type: WiFi, Bandwidth: 11},
		Network{Name: "wlan-b", Type: WiFi, Bandwidth: 11},
		Network{Name: "wlan-c", Type: WiFi, Bandwidth: 11},
	)
}

// Uniform builds a single-area topology of k identical WiFi networks, used
// by the scalability sweeps (Figure 6).
func Uniform(k int, bandwidth float64) Topology {
	nets := make([]Network, k)
	for i := range nets {
		nets[i] = Network{
			Name:      fmt.Sprintf("wlan-%d", i+1),
			Type:      WiFi,
			Bandwidth: bandwidth,
		}
	}
	return SingleArea(nets...)
}

// GenSpec parameterizes Generate's synthetic metropolitan topologies: Areas
// service areas, each with APsPerArea private WiFi access points, Cells
// cellular networks visible from every area, and Overlap access points per
// area additionally visible from the previous area (contiguous coverage at
// area boundaries). The construction is deterministic — bandwidths cycle
// through fixed per-technology rate ladders — so a spec always names the
// same topology.
type GenSpec struct {
	Areas      int
	APsPerArea int
	Cells      int
	Overlap    int
}

// Validate reports whether the spec describes a generatable topology.
func (s GenSpec) Validate() error {
	if s.Areas < 1 {
		return fmt.Errorf("netmodel: generate needs at least one area, got %d", s.Areas)
	}
	if s.APsPerArea < 0 || s.Cells < 0 {
		return errors.New("netmodel: negative network counts")
	}
	if s.APsPerArea+s.Cells < 1 {
		return errors.New("netmodel: every area would be empty")
	}
	if s.Overlap < 0 || s.Overlap > s.APsPerArea {
		return fmt.Errorf("netmodel: overlap %d outside [0,%d]", s.Overlap, s.APsPerArea)
	}
	return nil
}

// Per-technology bandwidth ladders for generated topologies, in Mbps. The
// WiFi rungs match the rates the paper's settings use; the cellular rungs
// span typical macro-cell capacities.
var (
	genWiFiMbps = []float64{4, 7, 11, 14, 22}
	genCellMbps = []float64{16, 22, 28}
)

// Generate builds the spec's topology: cells numbered first (visible
// everywhere), then each area's access points. Area a sees every cell, its
// own APs, and the first Overlap APs of area (a+1) mod Areas. It panics on
// an invalid spec — generators parameterize benchmarks and presets, so a
// bad spec is a programming error.
func Generate(spec GenSpec) Topology {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	var top Topology
	for c := 0; c < spec.Cells; c++ {
		top.Networks = append(top.Networks, Network{
			Name:      fmt.Sprintf("cell-%d", c+1),
			Type:      Cellular,
			Bandwidth: genCellMbps[c%len(genCellMbps)],
		})
	}
	apStart := make([]int, spec.Areas)
	for a := 0; a < spec.Areas; a++ {
		apStart[a] = len(top.Networks)
		for i := 0; i < spec.APsPerArea; i++ {
			top.Networks = append(top.Networks, Network{
				Name:      fmt.Sprintf("wlan-%d-%d", a+1, i+1),
				Type:      WiFi,
				Bandwidth: genWiFiMbps[(a*spec.APsPerArea+i)%len(genWiFiMbps)],
			})
		}
	}
	top.Areas = make([][]int, spec.Areas)
	for a := 0; a < spec.Areas; a++ {
		nets := make([]int, 0, spec.Cells+spec.APsPerArea+spec.Overlap)
		for c := 0; c < spec.Cells; c++ {
			nets = append(nets, c)
		}
		for i := 0; i < spec.APsPerArea; i++ {
			nets = append(nets, apStart[a]+i)
		}
		if spec.Areas > 1 {
			next := (a + 1) % spec.Areas
			for i := 0; i < spec.Overlap; i++ {
				nets = append(nets, apStart[next]+i)
			}
		}
		top.Areas[a] = nets
	}
	return top
}

// LargeSpec is the standard large-topology preset: 40 service areas with 5
// access points each plus 4 city-wide cellular networks (204 networks), one
// AP shared across each area boundary. It backs `simulate -topology large`
// and the large-scale replication benchmarks.
func LargeSpec() GenSpec {
	return GenSpec{Areas: 40, APsPerArea: 5, Cells: 4, Overlap: 1}
}

// Large returns the LargeSpec topology.
func Large() Topology { return Generate(LargeSpec()) }

// Names of the Figure 1 service areas (see FoodCourt).
const (
	AreaFoodCourt = 0
	AreaStudyArea = 1
	AreaBusStop   = 2
)

// FoodCourt is the Figure 1 topology used by the mobility experiment
// (Setting 3 of Section VI-A): five networks with bandwidths 16, 14, 22, 7
// and 4 Mbps and three service areas. Network 1 is the cellular network
// visible everywhere; the food court additionally sees WLANs 2 and 3, the
// study area WLAN 4, and the bus stop WLAN 5.
func FoodCourt() Topology {
	return Topology{
		Networks: []Network{
			{Name: "cell-1", Type: Cellular, Bandwidth: 16},
			{Name: "wlan-2", Type: WiFi, Bandwidth: 14},
			{Name: "wlan-3", Type: WiFi, Bandwidth: 22},
			{Name: "wlan-4", Type: WiFi, Bandwidth: 7},
			{Name: "wlan-5", Type: WiFi, Bandwidth: 4},
		},
		Areas: [][]int{
			AreaFoodCourt: {0, 1, 2},
			AreaStudyArea: {0, 3},
			AreaBusStop:   {0, 4},
		},
	}
}
