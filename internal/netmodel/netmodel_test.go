package netmodel

import (
	"strings"
	"testing"
)

func TestStandardTopologiesValid(t *testing.T) {
	for name, tp := range map[string]Topology{
		"setting1":  Setting1(),
		"setting2":  Setting2(),
		"foodcourt": FoodCourt(),
		"uniform":   Uniform(5, 11),
	} {
		if err := tp.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
}

func TestSetting1Shape(t *testing.T) {
	tp := Setting1()
	if got := tp.AggregateBandwidth(); got != 33 {
		t.Fatalf("aggregate bandwidth %v, want 33", got)
	}
	if got := tp.MaxBandwidth(); got != 22 {
		t.Fatalf("max bandwidth %v, want 22", got)
	}
	bws := tp.Bandwidths()
	if bws[0] != 4 || bws[1] != 7 || bws[2] != 22 {
		t.Fatalf("bandwidths %v, want [4 7 22]", bws)
	}
	if len(tp.Areas) != 1 || len(tp.Areas[0]) != 3 {
		t.Fatalf("setting 1 must be single-area with all networks: %v", tp.Areas)
	}
}

func TestSetting2Uniform(t *testing.T) {
	tp := Setting2()
	for i, n := range tp.Networks {
		if n.Bandwidth != 11 {
			t.Fatalf("network %d bandwidth %v, want 11", i, n.Bandwidth)
		}
	}
	if got := tp.AggregateBandwidth(); got != 33 {
		t.Fatalf("aggregate %v, want 33", got)
	}
}

func TestFoodCourtTopology(t *testing.T) {
	tp := FoodCourt()
	if len(tp.Networks) != 5 {
		t.Fatalf("food court has %d networks, want 5", len(tp.Networks))
	}
	want := []float64{16, 14, 22, 7, 4}
	for i, bw := range tp.Bandwidths() {
		if bw != want[i] {
			t.Fatalf("network %d bandwidth %v, want %v", i, bw, want[i])
		}
	}
	// The cellular network (index 0) is visible from every area.
	for a, nets := range tp.Areas {
		found := false
		for _, id := range nets {
			if id == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("area %d cannot see the cellular network", a)
		}
	}
	if tp.Networks[0].Type != Cellular {
		t.Fatal("network 1 must be cellular")
	}
}

func TestUniform(t *testing.T) {
	tp := Uniform(7, 11)
	if len(tp.Networks) != 7 {
		t.Fatalf("got %d networks", len(tp.Networks))
	}
	if got := tp.AggregateBandwidth(); got != 77 {
		t.Fatalf("aggregate %v", got)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		tp   Topology
		want string
	}{
		{"no networks", Topology{Areas: [][]int{{0}}}, "network"},
		{"zero bandwidth", Topology{
			Networks: []Network{{Name: "x", Type: WiFi}},
			Areas:    [][]int{{0}},
		}, "bandwidth"},
		{"bad type", Topology{
			Networks: []Network{{Name: "x", Bandwidth: 1}},
			Areas:    [][]int{{0}},
		}, "type"},
		{"no areas", Topology{
			Networks: []Network{{Name: "x", Type: WiFi, Bandwidth: 1}},
		}, "area"},
		{"empty area", Topology{
			Networks: []Network{{Name: "x", Type: WiFi, Bandwidth: 1}},
			Areas:    [][]int{{}},
		}, "area"},
		{"dangling reference", Topology{
			Networks: []Network{{Name: "x", Type: WiFi, Bandwidth: 1}},
			Areas:    [][]int{{3}},
		}, "references"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.tp.Validate()
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %v, want mention of %q", err, tt.want)
			}
		})
	}
}

func TestTypeString(t *testing.T) {
	if WiFi.String() != "wifi" || Cellular.String() != "cellular" {
		t.Fatal("unexpected type names")
	}
	if !strings.Contains(Type(9).String(), "9") {
		t.Fatal("unknown type should include its value")
	}
}

func TestGenerateLargeIsValidAndSized(t *testing.T) {
	top := Large()
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	spec := LargeSpec()
	wantNets := spec.Cells + spec.Areas*spec.APsPerArea
	if len(top.Networks) != wantNets {
		t.Fatalf("%d networks, want %d", len(top.Networks), wantNets)
	}
	if len(top.Areas) != spec.Areas {
		t.Fatalf("%d areas, want %d", len(top.Areas), spec.Areas)
	}
	for a, nets := range top.Areas {
		if len(nets) != spec.Cells+spec.APsPerArea+spec.Overlap {
			t.Fatalf("area %d sees %d networks", a, len(nets))
		}
		for c := 0; c < spec.Cells; c++ {
			if top.Networks[nets[c]].Type != Cellular {
				t.Fatalf("area %d: network %d should be cellular", a, nets[c])
			}
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	spec := GenSpec{Areas: 7, APsPerArea: 3, Cells: 2, Overlap: 1}
	a, b := Generate(spec), Generate(spec)
	if len(a.Networks) != len(b.Networks) {
		t.Fatal("same spec generated different topologies")
	}
	for i := range a.Networks {
		if a.Networks[i] != b.Networks[i] {
			t.Fatalf("network %d differs across generations", i)
		}
	}
}

func TestGenerateOverlapSharesAPs(t *testing.T) {
	top := Generate(GenSpec{Areas: 3, APsPerArea: 2, Cells: 1, Overlap: 1})
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	// Area 0 must see the first AP of area 1.
	area1FirstAP := 1 + 2 // one cell, then area 0's two APs
	found := false
	for _, n := range top.Areas[0] {
		if n == area1FirstAP {
			found = true
		}
	}
	if !found {
		t.Fatalf("area 0 (%v) does not overlap with area 1's first AP %d", top.Areas[0], area1FirstAP)
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	for _, spec := range []GenSpec{
		{Areas: 0, APsPerArea: 1},              // no areas
		{Areas: -3, APsPerArea: 1},             // negative areas
		{Areas: 1, APsPerArea: -1},             // negative AP count
		{Areas: 1, APsPerArea: 1, Cells: -1},   // negative cell count
		{Areas: 2},                             // every area empty
		{Areas: 2, APsPerArea: 1, Overlap: 2},  // overlap exceeds APs
		{Areas: 2, APsPerArea: 1, Overlap: -1}, // negative overlap
	} {
		if err := spec.Validate(); err == nil {
			t.Fatalf("spec %+v should be invalid", spec)
		}
	}
}

// TestGenerateAcceptsBoundarySpecs pins the edges of the valid region:
// cells-only topologies, a single area, and overlap equal to the per-area
// AP count are all generatable.
func TestGenerateAcceptsBoundarySpecs(t *testing.T) {
	for _, spec := range []GenSpec{
		{Areas: 1, Cells: 2},                            // no APs at all
		{Areas: 1, APsPerArea: 3},                       // no cells
		{Areas: 3, APsPerArea: 2, Overlap: 2},           // full overlap
		{Areas: 1, APsPerArea: 2, Cells: 1, Overlap: 2}, // single area ignores overlap
	} {
		if err := spec.Validate(); err != nil {
			t.Fatalf("spec %+v should be valid: %v", spec, err)
		}
		top := Generate(spec)
		if err := top.Validate(); err != nil {
			t.Fatalf("spec %+v generated an invalid topology: %v", spec, err)
		}
		if len(top.Areas) != spec.Areas {
			t.Fatalf("spec %+v generated %d areas", spec, len(top.Areas))
		}
	}
}

// TestGeneratePanicsOnInvalidSpec pins the documented contract: Generate is
// for pre-validated specs (presets, benchmarks); the error path for user
// input is Validate, which callers like cmd/simulate's metro parser run
// first.
func TestGeneratePanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate must panic on an invalid spec")
		}
	}()
	Generate(GenSpec{Areas: 0})
}
