package core

import (
	"math"
	"math/rand"
)

// SmartEXP3 is the engine behind the EXP3 family (Algorithm 1 plus the
// Section V mechanisms). Which mechanisms are active is controlled by
// Features, so the same engine implements EXP3, Block EXP3, Hybrid Block
// EXP3, Smart EXP3 w/o Reset, and full Smart EXP3.
//
// Weights are kept in log space under a lazily refreshed shift (see
// weightSet), which keeps the multiplicative-update rule w ← w·exp(γĝ/k)
// exact and immune to float64 overflow over long horizons while making the
// per-block weight update and the selection draw O(log k) instead of O(k)
// — the Fast EXP3 hot-path structure.
type SmartEXP3 struct {
	name string
	feat Features
	cfg  Config
	rng  *rand.Rand

	available  []int       // global network ids, ascending
	availSpare []int       // retired availability slice, recycled as the next SetAvailable sort buffer
	index      map[int]int // global id → local index
	k          int

	w     weightSet // arm weights with O(log k) update and draw
	probs []float64 // selection distribution, filled lazily (ensureProbs)
	// probsValid records whether probs reflects the current (weights, γ);
	// the full O(k) fill only happens when something reads the whole
	// distribution, so policies without reset/greedy features (classic
	// EXP3) never pay it on the draw path. The fill also records the
	// distribution's argmax (first index), max and min, which the periodic
	// reset and greedy-eligibility checks consult every block start.
	probsValid bool
	iPlus      int     // argmax of probs (lowest index on ties)
	maxP, minP float64 // max and min of probs
	explore    []int   // local indices pending initial exploration

	// Current block.
	blockIdx  int     // b, counts blocks started (1-based)
	gamma     float64 // γ(b)
	cur       int     // local index of the block's network; -1 before first block
	selProb   float64 // p(b), the probability the block's network was chosen with
	blockLen  int
	slotIn    int // slots observed so far in this block
	blockGain float64
	window    []float64 // trailing ≤SwitchBackWindow slot gains of this block
	curIsSB   bool      // this block is a switch-back block
	needBlock bool

	// Previous block (for switch-back).
	prevNet    int // local index, -1 if none
	prevWindow []float64
	prevWasSB  bool
	pendingSB  int // local index to switch back to next block, -1 if none

	// Per-network learning state (local indices).
	x       []int     // number of blocks in which the network was chosen
	sumGain []float64 // Σ slot gains (greedy statistics)
	cntGain []int     // number of slot observations
	slotsOn []int     // slots spent connected (identifies i_max)

	// Greedy eligibility state.
	condAFailed bool
	yThreshold  int
	// greedyWasEligible records whether the current block was chosen while
	// the greedy coin was available (determines p(b) = p_i/2 vs p_i).
	greedyWasEligible bool

	// Quality-drop reset state.
	dropRef   float64
	dropCount int

	// blockLens memoizes BlockLength(cfg.Beta, x) by x: the schedule is a
	// pure function of β, consulted several times per block (start, greedy
	// eligibility, periodic reset), and math.Pow is the hot loop's most
	// expensive call. It survives Reinit.
	blockLens []int

	// Counters.
	resets      int
	switches    int
	switchBacks int
	lastGlobal  int // global id used in the previous slot, -1 initially
	totalSlots  int
}

var (
	_ Policy              = (*SmartEXP3)(nil)
	_ ProbabilityReporter = (*SmartEXP3)(nil)
	_ ResetReporter       = (*SmartEXP3)(nil)
	_ SwitchReporter      = (*SmartEXP3)(nil)
	_ Reinitializer       = (*SmartEXP3)(nil)
)

// NewSmartEXP3 constructs the engine with an explicit feature set. Most
// callers should use New with one of the named algorithms instead; this
// constructor exists for ablation studies.
func NewSmartEXP3(name string, feat Features, available []int, cfg Config, rng *rand.Rand) *SmartEXP3 {
	p := &SmartEXP3{name: name, feat: feat, cfg: cfg}
	p.Reinit(available, rng)
	return p
}

// Reinit implements Reinitializer: every field except the identity (name,
// features, config) is returned to its constructor state and the per-network
// state is rebuilt over the given availability set, reusing all buffers.
func (p *SmartEXP3) Reinit(available []int, rng *rand.Rand) {
	p.rng = rng
	p.cur, p.prevNet, p.pendingSB, p.lastGlobal = -1, -1, -1, -1
	p.needBlock = true
	p.blockIdx, p.blockLen, p.slotIn = 0, 0, 0
	p.gamma, p.selProb, p.blockGain = 0, 0, 0
	// Pre-size the trailing windows and the block-length memo so pooled
	// reuse reaches its steady state immediately instead of growing
	// capacity whenever one run's randomness explores a new maximum.
	if cap(p.window) < p.cfg.SwitchBackWindow {
		p.window = make([]float64, 0, p.cfg.SwitchBackWindow)
		p.prevWindow = make([]float64, 0, p.cfg.SwitchBackWindow)
	}
	p.blockLength(64)
	p.window = p.window[:0]
	p.prevWindow = p.prevWindow[:0]
	p.curIsSB, p.prevWasSB = false, false
	p.explore = p.explore[:0]
	p.condAFailed, p.greedyWasEligible = false, false
	p.yThreshold = 0
	p.dropRef, p.dropCount = 0, 0
	p.resets, p.switches, p.switchBacks, p.totalSlots = 0, 0, 0, 0
	p.rebuild(sortedInto(p.available, available), nil)
}

// Name implements Policy.
func (p *SmartEXP3) Name() string { return p.name }

// Available implements Policy.
func (p *SmartEXP3) Available() []int { return p.available }

// Probabilities implements ProbabilityReporter. It returns the selection
// distribution under the current weights (uniform before the first block).
func (p *SmartEXP3) Probabilities() []float64 {
	p.ensureProbs()
	return p.probs
}

// ensureProbs refreshes the cached distribution — and its argmax/extrema —
// if weights or γ moved since it was last computed.
//
//repolint:allocfree via TestSmartEXP3WarmPathAllocs
func (p *SmartEXP3) ensureProbs() {
	if p.probsValid {
		return
	}
	p.w.fill(p.probs, p.gamma)
	p.iPlus, p.maxP, p.minP = 0, p.probs[0], p.probs[0]
	for li := 1; li < p.k; li++ {
		if p.probs[li] > p.maxP {
			p.maxP, p.iPlus = p.probs[li], li
		}
		if p.probs[li] < p.minP {
			p.minP = p.probs[li]
		}
	}
	p.probsValid = true
}

// armProb returns the selection probability of one arm in O(1), without
// materializing the whole distribution.
//
//repolint:allocfree via TestSmartEXP3WarmPathAllocs
func (p *SmartEXP3) armProb(li int) float64 {
	if p.probsValid {
		return p.probs[li]
	}
	return p.w.prob(li, p.gamma)
}

// Resets implements ResetReporter.
func (p *SmartEXP3) Resets() int { return p.resets }

// Switches implements SwitchReporter.
func (p *SmartEXP3) Switches() int { return p.switches }

// SwitchBacks returns how many switch-back blocks the policy has executed.
func (p *SmartEXP3) SwitchBacks() int { return p.switchBacks }

// Select implements Policy.
//
//repolint:allocfree via TestSmartEXP3WarmPathAllocs
func (p *SmartEXP3) Select() int {
	if p.needBlock {
		p.startBlock()
	}
	chosen := p.available[p.cur]
	if p.lastGlobal >= 0 && chosen != p.lastGlobal {
		p.switches++
	}
	p.lastGlobal = chosen
	return chosen
}

// Observe implements Policy.
//
//repolint:allocfree via TestSmartEXP3WarmPathAllocs
func (p *SmartEXP3) Observe(gain float64) {
	gain = clamp01(gain)
	p.totalSlots++
	p.slotsOn[p.cur]++
	p.sumGain[p.cur] += gain
	p.cntGain[p.cur]++
	p.blockGain += gain
	// Trailing-window update by copy-shift: reslicing the head off would
	// erode the buffer's capacity and force a reallocation every few blocks.
	if len(p.window) < p.cfg.SwitchBackWindow {
		//repolint:ignore allocfree append is bounded by SwitchBackWindow into a buffer Reinit pre-sizes to that capacity, so it never grows the backing array
		p.window = append(p.window, gain)
	} else {
		copy(p.window, p.window[1:])
		p.window[len(p.window)-1] = gain
	}
	p.slotIn++

	if p.feat.Reset && p.checkQualityDrop(gain) {
		p.endBlock()
		p.performReset()
		return
	}

	// Switch-back is evaluated after the first slot of a block: if the new
	// network performed worse than the previous block's network, abandon the
	// block (it lasted a single slot) and spend the next block back on the
	// previous network.
	if p.feat.SwitchBack && p.slotIn == 1 && p.switchBackTriggers(gain) {
		p.pendingSB = p.prevNet
		p.endBlock()
		return
	}

	if p.slotIn >= p.blockLen {
		p.endBlock()
	}
}

// SetAvailable implements Policy.
func (p *SmartEXP3) SetAvailable(networks []int) {
	// Sort into the retired availability buffer instead of allocating: a
	// device that changes service area every slot (mobility churn) calls
	// this on every area change, and the two buffers simply ping-pong.
	next := sortedInto(p.availSpare, networks)
	p.availSpare = next
	if len(next) == 0 || equalInts(next, p.available) {
		return
	}

	removed := make(map[int]bool)
	for _, id := range p.available {
		removed[id] = true
	}
	added := false
	for _, id := range next {
		if removed[id] {
			delete(removed, id)
		} else {
			added = true
		}
	}

	// Does a high-probability network disappear? (Smart EXP3 resets then.)
	p.ensureProbs()
	highProbRemoved := false
	//repolint:ignore determinism order cannot reach results: the loop folds a commutative boolean OR over the removed set
	for id := range removed {
		if li, ok := p.index[id]; ok && li < len(p.probs) &&
			p.probs[li] >= p.cfg.ResetProbability {
			highProbRemoved = true
		}
	}
	curGone := p.cur >= 0 && removed[p.available[p.cur]]
	needReset := p.feat.NetworkChange && (added || highProbRemoved)

	// Close the running block before re-indexing when it cannot continue:
	// either its network vanished ("Smart EXP3 resets the block") or a
	// reset will force exploration at the next slot. Closing first also
	// lets the weight update land before new networks are seeded with the
	// maximum weight.
	if !p.needBlock && p.cur >= 0 && (curGone || needReset) {
		if p.slotIn > 0 {
			p.endBlock()
		} else {
			p.needBlock = true
		}
	}

	spare := p.available
	p.rebuild(next, p.snapshot())
	p.availSpare = spare

	if needReset {
		p.needBlock = true
		p.performReset()
	}
}

// netState carries per-network learning state across availability changes.
type netState struct {
	logW    float64
	x       int
	sumGain float64
	cntGain int
	slotsOn int
}

func (p *SmartEXP3) snapshot() map[int]netState {
	states := make(map[int]netState, p.k)
	for li, id := range p.available {
		states[id] = netState{
			logW:    p.w.logW[li],
			x:       p.x[li],
			sumGain: p.sumGain[li],
			cntGain: p.cntGain[li],
			slotsOn: p.slotsOn[li],
		}
	}
	return states
}

// rebuild re-indexes all per-network state for a new availability set. prior
// is nil on construction. Newly discovered networks are seeded with the
// maximum retained weight (weight 1, i.e. log 0, if nothing is retained), as
// Section III prescribes, so they are likely to be explored.
func (p *SmartEXP3) rebuild(next []int, prior map[int]netState) {
	// Remember identities that must survive re-indexing.
	curID, prevID, pendID := -1, -1, -1
	if p.cur >= 0 && p.cur < len(p.available) {
		curID = p.available[p.cur]
	}
	if p.prevNet >= 0 && p.prevNet < len(p.available) {
		prevID = p.available[p.prevNet]
	}
	if p.pendingSB >= 0 && p.pendingSB < len(p.available) {
		pendID = p.available[p.pendingSB]
	}
	explorePending := make(map[int]bool)
	for _, li := range p.explore {
		if li < len(p.available) {
			explorePending[p.available[li]] = true
		}
	}

	maxRetained := math.Inf(-1)
	for _, id := range next {
		if s, ok := prior[id]; ok && s.logW > maxRetained {
			maxRetained = s.logW
		}
	}
	if math.IsInf(maxRetained, -1) {
		maxRetained = 0 // all networks are new: weight 1
	}

	k := len(next)
	p.available = next
	p.k = k
	if p.index == nil {
		p.index = make(map[int]int, k)
	} else {
		clear(p.index)
	}
	logW := p.w.reset(k)
	p.probs = resizeFloats(p.probs, k)
	p.x = resizeInts(p.x, k)
	p.sumGain = resizeFloats(p.sumGain, k)
	p.cntGain = resizeInts(p.cntGain, k)
	p.slotsOn = resizeInts(p.slotsOn, k)
	p.explore = p.explore[:0]

	for li, id := range next {
		p.index[id] = li
		p.probs[li] = 1 / float64(k)
		if s, ok := prior[id]; ok {
			logW[li] = s.logW
			p.x[li] = s.x
			p.sumGain[li] = s.sumGain
			p.cntGain[li] = s.cntGain
			p.slotsOn[li] = s.slotsOn
		} else {
			logW[li] = maxRetained
			if p.feat.ExploreFirst && prior != nil {
				// New network after construction: schedule it for
				// exploration (before construction the explore list below
				// covers everything).
				explorePending[id] = true
			}
		}
	}
	p.w.reshift()
	// probs holds the uniform placeholder until the next block start.
	p.iPlus, p.maxP, p.minP = 0, 1/float64(k), 1/float64(k)
	p.probsValid = true

	if p.feat.ExploreFirst {
		if prior == nil {
			for li := range next {
				p.explore = append(p.explore, li)
			}
		} else {
			for li, id := range next {
				if explorePending[id] {
					p.explore = append(p.explore, li)
				}
			}
		}
	}

	remap := func(id int) int {
		if id < 0 {
			return -1
		}
		if li, ok := p.index[id]; ok {
			return li
		}
		return -1
	}
	p.cur = remap(curID)
	p.prevNet = remap(prevID)
	p.pendingSB = remap(pendID)
	if p.cur < 0 {
		p.needBlock = true
	}
}

// startBlock begins block b: update the distribution, apply the periodic
// reset check, and choose the block's network (lines 2–9 of Algorithm 1 plus
// switch-back scheduling).
func (p *SmartEXP3) startBlock() {
	p.blockIdx++
	p.gamma = clampGamma(p.cfg.Gamma(p.blockIdx))
	p.probsValid = false // γ moved; refill only if something reads probs

	if p.feat.Reset && p.periodicResetDue() {
		p.performReset()
	}

	switch {
	case p.pendingSB >= 0:
		// Switch-back block: deterministically return to the previous
		// network; p(b) = 1.
		p.cur = p.pendingSB
		p.selProb = 1
		p.curIsSB = true
		p.switchBacks++
	case p.feat.ExploreFirst && len(p.explore) > 0:
		// Initial exploration: visit unexplored networks in random order;
		// p(b) = 1/|explore_network|.
		i := p.rng.Intn(len(p.explore))
		p.cur = p.explore[i]
		p.explore[i] = p.explore[len(p.explore)-1]
		p.explore = p.explore[:len(p.explore)-1]
		p.selProb = 1 / float64(len(p.explore)+1)
		p.curIsSB = false
	default:
		p.chooseMainBlock()
	}
	p.pendingSB = -1

	p.blockLen = 1
	if p.feat.Blocking {
		p.blockLen = p.blockLength(p.x[p.cur])
	}
	p.x[p.cur]++
	p.blockGain = 0
	p.slotIn = 0
	p.window = p.window[:0]
	p.needBlock = false
}

// chooseMainBlock performs the greedy-or-random choice of lines 6–8.
func (p *SmartEXP3) chooseMainBlock() {
	p.curIsSB = false
	greedyPhase := p.feat.Greedy && p.greedyEligible()
	p.greedyWasEligible = greedyPhase
	if greedyPhase && p.rng.Float64() < 0.5 {
		p.cur = p.bestAverageGain()
		p.selProb = 0.5
		return
	}
	p.cur = p.sampleProbs()
	if greedyPhase {
		// Random choice while the greedy coin was available: p(b) = p_i(b)/2.
		p.selProb = p.armProb(p.cur) / 2
	} else {
		p.selProb = p.armProb(p.cur)
	}
}

// greedyEligible evaluates the Section V conditions: (a) the distribution is
// still near-uniform, max(p) − min(p) ≤ 1/(k−1); or (b) the most probable
// network's block length has not yet regrown past y, where y is l_{i+} at
// the moment condition (a) first failed. Condition (b) re-enables greedy
// after a reset shrinks block lengths.
func (p *SmartEXP3) greedyEligible() bool {
	if p.k < 2 {
		return false
	}
	p.ensureProbs()
	lenPlus := p.blockLength(p.x[p.iPlus])
	condA := p.maxP-p.minP <= 1/float64(p.k-1)
	if !condA && !p.condAFailed {
		p.condAFailed = true
		p.yThreshold = lenPlus
	}
	if condA {
		return true
	}
	return p.condAFailed && lenPlus < p.yThreshold
}

// bestAverageGain returns the network with the highest observed per-slot
// average gain, breaking ties uniformly at random. Unobserved networks rank
// lowest.
func (p *SmartEXP3) bestAverageGain() int {
	best := -1
	bestAvg := math.Inf(-1)
	ties := 1
	for li := 0; li < p.k; li++ {
		avg := math.Inf(-1)
		if p.cntGain[li] > 0 {
			avg = p.sumGain[li] / float64(p.cntGain[li])
		}
		switch {
		case best < 0 || avg > bestAvg:
			best, bestAvg, ties = li, avg, 1
		case avg == bestAvg:
			ties++
			if p.rng.Intn(ties) == 0 {
				best = li
			}
		}
	}
	return best
}

// switchBackTriggers applies the Section V rule after the first slot of a
// block: switch back if the new network's gain is worse than the previous
// block's average or last-slot gain, or if more than half the (trailing ≤8)
// slots of the previous block beat it — unless the previous block was itself
// a switch-back (no ping-pong) or this block already is one.
func (p *SmartEXP3) switchBackTriggers(gain float64) bool {
	if p.curIsSB || p.prevWasSB || p.pendingSB >= 0 {
		return false
	}
	if p.prevNet < 0 || p.prevNet == p.cur || len(p.prevWindow) == 0 {
		return false
	}
	var sum float64
	higher := 0
	for _, g := range p.prevWindow {
		sum += g
		if g > gain {
			higher++
		}
	}
	avg := sum / float64(len(p.prevWindow))
	last := p.prevWindow[len(p.prevWindow)-1]
	return gain < avg || gain < last || higher*2 > len(p.prevWindow)
}

// checkQualityDrop implements the drop-based reset trigger: the device is on
// its most-selected network and observes gains at least DropFraction below
// that network's historical average for more than DropSlots consecutive
// slots. The reference average is frozen when the drop starts so that the
// drop itself cannot mask the decline.
func (p *SmartEXP3) checkQualityDrop(gain float64) bool {
	// Cheap observation-count guards run before the O(k) i_max scan; the
	// disjunction is side-effect free, so the order only affects cost.
	if p.cntGain[p.cur] < 2 || p.cntGain[p.cur] <= p.cfg.MinDropObservations ||
		p.cur != p.iMax() {
		p.dropCount = 0
		return false
	}
	if p.dropCount == 0 {
		n := float64(p.cntGain[p.cur] - 1)
		p.dropRef = (p.sumGain[p.cur] - gain) / n
	}
	if p.dropRef > 0 && gain < (1-p.cfg.DropFraction)*p.dropRef {
		p.dropCount++
		if p.dropCount > p.cfg.DropSlots {
			p.dropCount = 0
			return true
		}
		return false
	}
	p.dropCount = 0
	return false
}

// blockLength memoizes BlockLength over the block counter x, which only
// grows by one per block per network.
func (p *SmartEXP3) blockLength(x int) int {
	for len(p.blockLens) <= x {
		p.blockLens = append(p.blockLens, BlockLength(p.cfg.Beta, len(p.blockLens)))
	}
	return p.blockLens[x]
}

// iMax returns the network the device has been connected to for the most
// slots (i_max in Section V).
func (p *SmartEXP3) iMax() int {
	best, bestSlots := 0, p.slotsOn[0]
	for li := 1; li < p.k; li++ {
		if p.slotsOn[li] > bestSlots {
			best, bestSlots = li, p.slotsOn[li]
		}
	}
	return best
}

// periodicResetDue reports whether the periodic reset condition holds:
// p_{i+} ≥ ResetProbability and l_{i+} ≥ ResetBlockLength.
func (p *SmartEXP3) periodicResetDue() bool {
	p.ensureProbs()
	return p.maxP >= p.cfg.ResetProbability &&
		p.blockLength(p.x[p.iPlus]) >= p.cfg.ResetBlockLength
}

// performReset applies the minimal reset: block lengths and the statistics
// behind greedy selection are cleared and exploration is forced, but the
// learned weights are kept.
func (p *SmartEXP3) performReset() {
	p.resets++
	for li := 0; li < p.k; li++ {
		p.x[li] = 0
		p.sumGain[li] = 0
		p.cntGain[li] = 0
		p.slotsOn[li] = 0
	}
	p.dropCount = 0
	p.pendingSB = -1
	p.prevNet = -1
	p.prevWindow = p.prevWindow[:0]
	p.prevWasSB = false
	if p.feat.ExploreFirst {
		p.explore = p.explore[:0]
		for li := 0; li < p.k; li++ {
			p.explore = append(p.explore, li)
		}
	}
}

// endBlock closes the current block: estimated-gain weight update (lines
// 10–12 of Algorithm 1) and bookkeeping for switch-back. The update touches
// one arm, so it costs O(log k) — no full renormalization (see weightSet).
func (p *SmartEXP3) endBlock() {
	if p.selProb > 0 {
		ghat := p.blockGain / p.selProb
		p.w.bump(p.cur, p.gamma*ghat/float64(p.k))
		p.probsValid = false
	}
	p.prevNet = p.cur
	p.prevWindow = append(p.prevWindow[:0], p.window...)
	p.prevWasSB = p.curIsSB
	p.curIsSB = false
	p.needBlock = true
}

// sampleProbs draws a local index from the block-start distribution by
// mixture decomposition (Fast EXP3): with probability γ an O(1) uniform
// exploration draw, otherwise an O(log k) weight-proportional draw.
func (p *SmartEXP3) sampleProbs() int {
	if p.rng.Float64() < p.gamma {
		return p.rng.Intn(p.k)
	}
	return p.w.sample(p.rng)
}

func clampGamma(g float64) float64 {
	if g <= 0 || math.IsNaN(g) {
		return 1e-9
	}
	if g > 1 {
		return 1
	}
	return g
}
