// Package core implements the paper's contribution — Smart EXP3 — together
// with every selection policy the evaluation compares against: EXP3, Block
// EXP3, Hybrid Block EXP3, Smart EXP3 w/o Reset (Table III), and Greedy,
// Full Information, and Fixed Random (Table II). The Centralized baseline
// needs global knowledge and therefore lives in the simulator
// (internal/sim), not here.
//
// # Contract
//
// A Policy runs on one device. Time is slotted: each slot the caller invokes
// Select to learn which network the device uses, then Observe with the gain
// (the device's observed bit rate scaled to [0,1]) obtained during that slot.
// SetAvailable may be called between slots when the device's set of visible
// networks changes (mobility, networks appearing or disappearing).
//
// Policies are deterministic functions of their inputs and the *rand.Rand
// they are constructed with, which makes whole simulations reproducible from
// a single seed.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Policy is a per-device network-selection strategy.
type Policy interface {
	// Name identifies the algorithm (for reports).
	Name() string
	// Select returns the global id of the network to use for the upcoming
	// slot. Callers must follow every Select with exactly one Observe.
	Select() int
	// Observe reports the gain, scaled to [0,1], obtained during the slot
	// from the network returned by the preceding Select.
	Observe(gain float64)
	// SetAvailable replaces the set of networks visible to the device.
	// Implementations retain learned state for networks that remain.
	SetAvailable(networks []int)
	// Available returns the ids of the networks the policy currently
	// selects from, in ascending order. Callers must not modify it.
	Available() []int
}

// Reinitializer is implemented by policies that can be returned, in place,
// to the state their constructor would produce over a (possibly different)
// availability set, reusing every internal buffer. The simulation engine's
// pooled workspaces call Reinit instead of constructing fresh policies, so
// replications run without per-replication allocation.
//
// Reinit must be behaviorally indistinguishable from constructing a new
// policy with the same arguments: given the same availability set and an
// identically seeded rng, the reinitialized policy must produce the same
// Select/Observe trajectory bit for bit. All policies in this package
// implement it.
type Reinitializer interface {
	Policy
	// Reinit resets the policy to its freshly constructed state over the
	// given networks, drawing all future randomness from rng.
	Reinit(available []int, rng *rand.Rand)
}

// ProbabilityReporter is implemented by policies that maintain an explicit
// selection distribution (the EXP3 family and Full Information). It feeds
// stable-state detection (Definition 2).
type ProbabilityReporter interface {
	// Probabilities returns the current selection distribution aligned with
	// Available(). Callers must not modify the returned slice.
	Probabilities() []float64
}

// ResetReporter is implemented by policies with a reset mechanism.
type ResetReporter interface {
	// Resets returns the number of resets performed so far.
	Resets() int
}

// SwitchReporter is implemented by policies that count their own network
// switches (a switch is a change of network between consecutive slots).
type SwitchReporter interface {
	// Switches returns the number of network switches so far.
	Switches() int
}

// FullFeedbackPolicy is implemented by policies that consume counterfactual
// feedback: the gain the device would have obtained from every available
// network, not only the selected one. The simulator calls ObserveAll after
// Observe each slot.
type FullFeedbackPolicy interface {
	Policy
	// ObserveAll reports the gain the device would have observed on each
	// available network this slot, aligned with Available().
	ObserveAll(gains []float64)
}

// Algorithm enumerates the selection policies of Tables II and III plus the
// Centralized baseline.
type Algorithm int

// The algorithms evaluated in the paper.
const (
	AlgEXP3 Algorithm = iota + 1
	AlgBlockEXP3
	AlgHybridBlockEXP3
	AlgSmartEXP3NoReset
	AlgSmartEXP3
	AlgGreedy
	AlgFullInformation
	AlgFixedRandom
	AlgCentralized
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgEXP3:
		return "EXP3"
	case AlgBlockEXP3:
		return "Block EXP3"
	case AlgHybridBlockEXP3:
		return "Hybrid Block EXP3"
	case AlgSmartEXP3NoReset:
		return "Smart EXP3 w/o Reset"
	case AlgSmartEXP3:
		return "Smart EXP3"
	case AlgGreedy:
		return "Greedy"
	case AlgFullInformation:
		return "Full Information"
	case AlgFixedRandom:
		return "Fixed Random"
	case AlgCentralized:
		return "Centralized"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms lists every algorithm in presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgEXP3, AlgBlockEXP3, AlgHybridBlockEXP3, AlgSmartEXP3NoReset,
		AlgSmartEXP3, AlgGreedy, AlgFullInformation, AlgFixedRandom,
		AlgCentralized,
	}
}

// Features selects which of Smart EXP3's mechanisms are enabled; the named
// variants of Table III are feature subsets, which doubles as the ablation
// surface.
type Features struct {
	// Blocking enables adaptive blocking (block length ⌈(1+β)^x⌉). When
	// false every block is a single slot, giving classic EXP3.
	Blocking bool
	// ExploreFirst enables the initial (and post-reset) round-robin
	// exploration of every network in random order.
	ExploreFirst bool
	// Greedy enables the coin-flip greedy policy.
	Greedy bool
	// SwitchBack enables the switch-back mechanism.
	SwitchBack bool
	// Reset enables the minimal reset mechanism (periodic and on quality
	// drops).
	Reset bool
	// NetworkChange enables Smart EXP3's handling of availability changes
	// (max-weight seeding of new networks plus reset).
	NetworkChange bool
}

// FeaturesFor returns the feature set of the named algorithm. It panics for
// algorithms that are not members of the Smart EXP3 family.
func FeaturesFor(a Algorithm) Features {
	switch a {
	case AlgEXP3:
		return Features{}
	case AlgBlockEXP3:
		return Features{Blocking: true}
	case AlgHybridBlockEXP3:
		return Features{Blocking: true, ExploreFirst: true, Greedy: true}
	case AlgSmartEXP3NoReset:
		return Features{Blocking: true, ExploreFirst: true, Greedy: true, SwitchBack: true}
	case AlgSmartEXP3:
		return Features{
			Blocking: true, ExploreFirst: true, Greedy: true,
			SwitchBack: true, Reset: true, NetworkChange: true,
		}
	default:
		panic(fmt.Sprintf("core: %v is not an EXP3-family algorithm", a))
	}
}

// Config carries the tunables of Section V. The zero value is not usable;
// call DefaultConfig.
type Config struct {
	// Beta is the block growth factor β ∈ (0,1]; blocks have length
	// ⌈(1+β)^x⌉. The paper uses 0.1.
	Beta float64
	// Gamma returns the exploration rate γ ∈ (0,1] for block index b
	// (1-based). The paper uses γ = b^{-1/3}, which tends to zero as
	// required for convergence.
	Gamma func(block int) float64
	// ResetProbability and ResetBlockLength gate the periodic reset: reset
	// when the most probable network has probability ≥ ResetProbability and
	// current block length ≥ ResetBlockLength. The paper uses 0.75 and 40.
	ResetProbability float64
	ResetBlockLength int
	// DropFraction and DropSlots gate the quality-drop reset: reset when the
	// gain of the most-selected, currently connected network sits at least
	// DropFraction below its historical average for more than DropSlots
	// consecutive slots. The paper uses 0.15 and 4.
	DropFraction float64
	DropSlots    int
	// SwitchBackWindow is the number of trailing slots of the previous block
	// consulted by the switch-back rule. The paper uses 8.
	SwitchBackWindow int
	// MinDropObservations is the minimum number of observations of a network
	// before the drop detector trusts its historical average.
	MinDropObservations int
}

// DefaultConfig returns the parameter values of Section V.
func DefaultConfig() Config {
	return Config{
		Beta:                0.1,
		Gamma:               DecayingGamma,
		ResetProbability:    0.75,
		ResetBlockLength:    40,
		DropFraction:        0.15,
		DropSlots:           4,
		SwitchBackWindow:    8,
		MinDropObservations: 8,
	}
}

// DecayingGamma is the paper's exploration schedule γ(b) = b^{-1/3}.
// Every policy evaluates it once per block, so the low block indices —
// where short blocks make starts frequent — are served from a table
// precomputed with the same math.Pow call.
func DecayingGamma(block int) float64 {
	if block < 1 {
		block = 1
	}
	if block < len(decayingGammaTab) {
		return decayingGammaTab[block]
	}
	return math.Pow(float64(block), -1.0/3.0)
}

var decayingGammaTab = func() [512]float64 {
	var tab [512]float64
	for b := 1; b < len(tab); b++ {
		tab[b] = math.Pow(float64(b), -1.0/3.0)
	}
	return tab
}()

// FixedGamma returns a constant exploration schedule, used by the theoretical
// analysis (Theorems 1–3 assume fixed γ) and by ablation benchmarks.
func FixedGamma(gamma float64) func(int) float64 {
	return func(int) float64 { return gamma }
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Beta <= 0 || c.Beta > 1 {
		return fmt.Errorf("core: beta must be in (0,1], got %v", c.Beta)
	}
	if c.Gamma == nil {
		return fmt.Errorf("core: gamma schedule must be set")
	}
	if c.ResetProbability <= 0 || c.ResetProbability > 1 {
		return fmt.Errorf("core: reset probability must be in (0,1], got %v", c.ResetProbability)
	}
	if c.SwitchBackWindow < 1 {
		return fmt.Errorf("core: switch-back window must be ≥ 1, got %d", c.SwitchBackWindow)
	}
	return nil
}

// New constructs the policy for the given algorithm over the available
// networks (global ids). It returns an error for AlgCentralized, which
// cannot run as a per-device policy.
func New(a Algorithm, available []int, cfg Config, rng *rand.Rand) (Policy, error) {
	if len(available) == 0 {
		return nil, fmt.Errorf("core: %v requires at least one available network", a)
	}
	if rng == nil {
		return nil, fmt.Errorf("core: %v requires a random source", a)
	}
	switch a {
	case AlgEXP3, AlgBlockEXP3, AlgHybridBlockEXP3, AlgSmartEXP3NoReset, AlgSmartEXP3:
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return NewSmartEXP3(a.String(), FeaturesFor(a), available, cfg, rng), nil
	case AlgGreedy:
		return NewGreedy(available, rng), nil
	case AlgFullInformation:
		return NewFullInformation(available, rng), nil
	case AlgFixedRandom:
		return NewFixedRandom(available, rng), nil
	case AlgCentralized:
		return nil, fmt.Errorf("core: centralized allocation is a coordinator, not a per-device policy")
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", a)
	}
}

// BlockLength returns ⌈(1+β)^x⌉, the adaptive block length after a network
// has been selected in x previous blocks.
func BlockLength(beta float64, x int) int {
	return int(math.Ceil(math.Pow(1+beta, float64(x))))
}

func clamp01(g float64) float64 {
	if g < 0 {
		return 0
	}
	if g > 1 {
		return 1
	}
	return g
}

// sortedInto copies xs into dst's backing array (growing it as needed) and
// sorts the result ascending. Reinit and SetAvailable paths use it to avoid
// allocating a fresh sorted copy; xs may alias dst.
func sortedInto(dst, xs []int) []int {
	dst = append(dst[:0], xs...)
	sort.Ints(dst)
	return dst
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
