package core

import (
	"fmt"
	"math/rand"
)

// PolicyState is the complete dynamic state of a SmartEXP3 policy in
// exported, serialization-friendly form (every field is plain data, so it
// crosses gob unchanged — float64 bits exactly). It separates what a
// long-lived decision service must persist from what the simulation engine
// owns: the policy's learned state (weights, block position, greedy and
// reset statistics) is here; the identity (name, feature set, Config) and
// the random source are reconstructed by the host from its own
// configuration.
//
// The contract is byte-identical continuation: ExportState followed by
// ImportState into a policy constructed with the same (features, config)
// and a random source resuming the same stream yields a policy whose
// subsequent Select/Observe trajectory is bit-for-bit the trajectory the
// exported policy would have produced. To honor that, the weight set's
// derived views (linear-space weights, Fenwick tree, running sum, shift)
// are captured as-is rather than recomputed on import: recomputing them
// would produce values that differ in the last ulp from the incrementally
// maintained ones, and the sampling descent compares against those bits.
type PolicyState struct {
	// Available is the availability set (global network ids, ascending).
	Available []int

	// Weight set (see weightSet): LogW is the source of truth, the rest are
	// its incrementally maintained views.
	LogW  []float64
	WExp  []float64
	Tree  []float64
	SumW  float64
	Shift float64

	// Cached selection distribution and its extrema.
	Probs      []float64
	ProbsValid bool
	IPlus      int
	MaxP, MinP float64

	// Pending initial/post-reset exploration (local indices).
	Explore []int

	// Current block.
	BlockIdx  int
	Gamma     float64
	Cur       int
	SelProb   float64
	BlockLen  int
	SlotIn    int
	BlockGain float64
	Window    []float64
	CurIsSB   bool
	NeedBlock bool

	// Previous block (switch-back state).
	PrevNet    int
	PrevWindow []float64
	PrevWasSB  bool
	PendingSB  int

	// Per-network learning state (local indices).
	X       []int
	SumGain []float64
	CntGain []int
	SlotsOn []int

	// Greedy eligibility.
	CondAFailed       bool
	YThreshold        int
	GreedyWasEligible bool

	// Quality-drop reset.
	DropRef   float64
	DropCount int

	// Counters.
	Resets      int
	Switches    int
	SwitchBacks int
	LastGlobal  int
	TotalSlots  int
}

// ExportState captures the policy's dynamic state into dst, reusing dst's
// slices where capacity allows so periodic snapshots of a warm service do
// not allocate per device.
func (p *SmartEXP3) ExportState(dst *PolicyState) {
	dst.Available = append(dst.Available[:0], p.available...)
	dst.LogW = append(dst.LogW[:0], p.w.logW...)
	dst.WExp = append(dst.WExp[:0], p.w.wExp...)
	dst.Tree = append(dst.Tree[:0], p.w.tree...)
	dst.SumW, dst.Shift = p.w.sumW, p.w.shift
	dst.Probs = append(dst.Probs[:0], p.probs...)
	dst.ProbsValid = p.probsValid
	dst.IPlus, dst.MaxP, dst.MinP = p.iPlus, p.maxP, p.minP
	dst.Explore = append(dst.Explore[:0], p.explore...)
	dst.BlockIdx, dst.Gamma = p.blockIdx, p.gamma
	dst.Cur, dst.SelProb = p.cur, p.selProb
	dst.BlockLen, dst.SlotIn, dst.BlockGain = p.blockLen, p.slotIn, p.blockGain
	dst.Window = append(dst.Window[:0], p.window...)
	dst.CurIsSB, dst.NeedBlock = p.curIsSB, p.needBlock
	dst.PrevNet = p.prevNet
	dst.PrevWindow = append(dst.PrevWindow[:0], p.prevWindow...)
	dst.PrevWasSB, dst.PendingSB = p.prevWasSB, p.pendingSB
	dst.X = append(dst.X[:0], p.x...)
	dst.SumGain = append(dst.SumGain[:0], p.sumGain...)
	dst.CntGain = append(dst.CntGain[:0], p.cntGain...)
	dst.SlotsOn = append(dst.SlotsOn[:0], p.slotsOn...)
	dst.CondAFailed, dst.YThreshold = p.condAFailed, p.yThreshold
	dst.GreedyWasEligible = p.greedyWasEligible
	dst.DropRef, dst.DropCount = p.dropRef, p.dropCount
	dst.Resets, dst.Switches, dst.SwitchBacks = p.resets, p.switches, p.switchBacks
	dst.LastGlobal, dst.TotalSlots = p.lastGlobal, p.totalSlots
}

// Validate reports whether the state is internally consistent: every
// per-network slice matches the availability set's length, local indices
// point inside it, and the availability set is strictly ascending. A state
// from a corrupt or hand-edited snapshot fails here instead of panicking
// inside the policy later.
func (s *PolicyState) Validate() error {
	k := len(s.Available)
	if k == 0 {
		return fmt.Errorf("core: policy state has no available networks")
	}
	for i := 1; i < k; i++ {
		if s.Available[i] <= s.Available[i-1] {
			return fmt.Errorf("core: policy state availability not strictly ascending at %d", i)
		}
	}
	for _, n := range []struct {
		name string
		got  int
	}{
		{"LogW", len(s.LogW)}, {"WExp", len(s.WExp)}, {"Probs", len(s.Probs)},
		{"X", len(s.X)}, {"SumGain", len(s.SumGain)},
		{"CntGain", len(s.CntGain)}, {"SlotsOn", len(s.SlotsOn)},
	} {
		if n.got != k {
			return fmt.Errorf("core: policy state %s has %d entries for %d networks", n.name, n.got, k)
		}
	}
	if len(s.Tree) != k+1 {
		return fmt.Errorf("core: policy state Tree has %d entries, want %d", len(s.Tree), k+1)
	}
	for _, idx := range []struct {
		name string
		got  int
		min  int
	}{
		{"Cur", s.Cur, -1}, {"PrevNet", s.PrevNet, -1},
		{"PendingSB", s.PendingSB, -1}, {"IPlus", s.IPlus, 0},
	} {
		if idx.got < idx.min || idx.got >= k {
			return fmt.Errorf("core: policy state %s = %d outside [%d, %d)", idx.name, idx.got, idx.min, k)
		}
	}
	for _, li := range s.Explore {
		if li < 0 || li >= k {
			return fmt.Errorf("core: policy state Explore entry %d outside [0, %d)", li, k)
		}
	}
	return nil
}

// ImportState restores a previously exported state, reusing the policy's
// buffers. The policy keeps its identity (name, features, config) and draws
// all future randomness from rng; everything else — weights, block
// position, learning statistics, counters — is overwritten. It fails
// without modifying the policy if the state does not validate.
func (p *SmartEXP3) ImportState(s *PolicyState, rng *rand.Rand) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if rng == nil {
		return fmt.Errorf("core: ImportState requires a random source")
	}
	p.rng = rng
	k := len(s.Available)
	p.available = append(p.available[:0], s.Available...)
	p.k = k
	if p.index == nil {
		p.index = make(map[int]int, k)
	} else {
		clear(p.index)
	}
	for li, id := range p.available {
		p.index[id] = li
	}

	logW := p.w.reset(k)
	copy(logW, s.LogW)
	copy(p.w.wExp, s.WExp)
	copy(p.w.tree, s.Tree)
	p.w.sumW, p.w.shift = s.SumW, s.Shift

	p.probs = resizeFloats(p.probs, k)
	copy(p.probs, s.Probs)
	p.probsValid = s.ProbsValid
	p.iPlus, p.maxP, p.minP = s.IPlus, s.MaxP, s.MinP
	p.explore = append(p.explore[:0], s.Explore...)

	p.blockIdx, p.gamma = s.BlockIdx, s.Gamma
	p.cur, p.selProb = s.Cur, s.SelProb
	p.blockLen, p.slotIn, p.blockGain = s.BlockLen, s.SlotIn, s.BlockGain
	if cap(p.window) < p.cfg.SwitchBackWindow {
		p.window = make([]float64, 0, p.cfg.SwitchBackWindow)
		p.prevWindow = make([]float64, 0, p.cfg.SwitchBackWindow)
	}
	p.window = append(p.window[:0], s.Window...)
	p.curIsSB, p.needBlock = s.CurIsSB, s.NeedBlock
	p.prevNet = s.PrevNet
	p.prevWindow = append(p.prevWindow[:0], s.PrevWindow...)
	p.prevWasSB, p.pendingSB = s.PrevWasSB, s.PendingSB

	p.x = resizeInts(p.x, k)
	copy(p.x, s.X)
	p.sumGain = resizeFloats(p.sumGain, k)
	copy(p.sumGain, s.SumGain)
	p.cntGain = resizeInts(p.cntGain, k)
	copy(p.cntGain, s.CntGain)
	p.slotsOn = resizeInts(p.slotsOn, k)
	copy(p.slotsOn, s.SlotsOn)

	p.condAFailed, p.yThreshold = s.CondAFailed, s.YThreshold
	p.greedyWasEligible = s.GreedyWasEligible
	p.dropRef, p.dropCount = s.DropRef, s.DropCount
	p.resets, p.switches, p.switchBacks = s.Resets, s.Switches, s.SwitchBacks
	p.lastGlobal, p.totalSlots = s.LastGlobal, s.TotalSlots
	return nil
}
