package core

import (
	"math"
	"math/rand"
)

// weightSet maintains the EXP3 family's arm weights with constant-time
// updates, following the structure of the "Fast EXP3" implementations of
// Sato & Ito: instead of renormalizing every weight after each block, it
// keeps
//
//   - logW, the raw log-weights (the shift-invariant source of truth);
//   - wExp[i] = exp(logW[i] − shift), linear-space weights under a lazily
//     refreshed shift;
//   - their running sum sumW and a Fenwick (binary indexed) tree over wExp
//     for weight-proportional sampling.
//
// A block's multiplicative update touches one arm, so bump costs O(log k)
// (the tree update) instead of the O(k) exp-and-renormalize of the naive
// implementation, and a draw costs O(log k) via prefix-sum descent instead
// of an O(k) cumulative scan. The shift is only recomputed — an O(k)
// reshift — when an exponent outgrows the safe range, which happens once
// per ~weightReshiftSpan of accumulated log-weight growth, so its cost is
// amortized O(1) per block. Since block lengths grow geometrically, the
// per-slot cost of all weight maintenance is amortized O(1).
type weightSet struct {
	logW  []float64
	wExp  []float64
	tree  []float64 // 1-based Fenwick tree over wExp
	sumW  float64
	shift float64
}

// weightReshiftSpan bounds logW[i]−shift before a reshift: exp(300) ≈
// 2e130, far from the float64 overflow point even summed over many arms.
const weightReshiftSpan = 300

// reset resizes the set to k arms reusing the existing buffers and returns
// the zeroed log-weight slice for the caller to fill; the caller must then
// call reshift. Pooled policies use this to re-seed weights without
// allocating.
func (w *weightSet) reset(k int) []float64 {
	w.logW = resizeFloats(w.logW, k)
	w.wExp = resizeFloats(w.wExp, k)
	w.tree = resizeFloats(w.tree, k+1)
	return w.logW
}

// resizeFloats returns a zeroed float slice of length n, reusing s's backing
// array when it is large enough.
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// resizeInts is resizeFloats for int slices.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// reshift renormalizes the linear-space view around the current maximum
// log-weight and rebuilds the sampling tree. O(k).
func (w *weightSet) reshift() {
	w.shift = math.Inf(-1)
	for _, lw := range w.logW {
		if lw > w.shift {
			w.shift = lw
		}
	}
	w.sumW = 0
	for i := range w.tree {
		w.tree[i] = 0
	}
	for i, lw := range w.logW {
		w.wExp[i] = math.Exp(lw - w.shift)
		w.sumW += w.wExp[i]
		w.treeAdd(i, w.wExp[i])
	}
}

// bump applies the multiplicative update w_i ← w_i·exp(delta), delta ≥ 0.
// O(log k) amortized.
//
//repolint:allocfree via TestSmartEXP3WarmPathAllocs
func (w *weightSet) bump(i int, delta float64) {
	w.logW[i] += delta
	if w.logW[i]-w.shift > weightReshiftSpan {
		w.reshift()
		return
	}
	next := math.Exp(w.logW[i] - w.shift)
	diff := next - w.wExp[i]
	w.wExp[i] = next
	w.sumW += diff
	w.treeAdd(i, diff)
}

// fill writes the selection distribution p_i = (1−γ)·w_i/Σw + γ/k into dst
// (line 2 of Algorithm 1).
//
//repolint:allocfree via TestSmartEXP3WarmPathAllocs
func (w *weightSet) fill(dst []float64, gamma float64) {
	k := float64(len(w.logW))
	for i, we := range w.wExp {
		dst[i] = (1-gamma)*we/w.sumW + gamma/k
	}
}

// prob returns one arm's selection probability in O(1).
//
//repolint:allocfree via TestSmartEXP3WarmPathAllocs
func (w *weightSet) prob(i int, gamma float64) float64 {
	return (1-gamma)*w.wExp[i]/w.sumW + gamma/float64(len(w.logW))
}

// sample draws an arm with probability proportional to its weight via an
// O(log k) prefix-sum descent of the Fenwick tree. Callers mix in the γ/k
// exploration term by decomposition (see SmartEXP3.sampleProbs).
//
//repolint:allocfree via TestSmartEXP3WarmPathAllocs
func (w *weightSet) sample(rng *rand.Rand) int {
	v := rng.Float64() * w.sumW
	return w.search(v)
}

// treeAdd adds diff to element i (0-based) of the Fenwick tree.
//
//repolint:allocfree via TestSmartEXP3WarmPathAllocs
func (w *weightSet) treeAdd(i int, diff float64) {
	for j := i + 1; j < len(w.tree); j += j & (-j) {
		w.tree[j] += diff
	}
}

// search returns the smallest 0-based index whose prefix sum exceeds v.
// Floating-point drift in sumW is absorbed by clamping to the last arm.
//
//repolint:allocfree via TestSmartEXP3WarmPathAllocs
func (w *weightSet) search(v float64) int {
	n := len(w.tree) - 1
	bit := 1
	for bit<<1 <= n {
		bit <<= 1
	}
	idx := 0
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next <= n && w.tree[next] <= v {
			idx = next
			v -= w.tree[next]
		}
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}
