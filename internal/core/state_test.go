package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"smartexp3/internal/rngutil"
)

// envGain is a deterministic environment: the gain of an arm at a slot is a
// pure function of both, so two policies making identical selections observe
// identical gains.
func envGain(arm, slot int) float64 {
	x := math.Sin(float64(arm*31+slot)*0.7)*0.4 + 0.5
	return math.Min(math.Max(x, 0), 1)
}

// driveSlots runs the policy n slots against envGain starting at slot base,
// returning the selection sequence.
func driveSlots(p *SmartEXP3, base, n int) []int {
	out := make([]int, n)
	for t := 0; t < n; t++ {
		arm := p.Select()
		out[t] = arm
		p.Observe(envGain(arm, base+t))
	}
	return out
}

func TestExportImportContinuesBitIdentically(t *testing.T) {
	for _, alg := range []Algorithm{AlgEXP3, AlgHybridBlockEXP3, AlgSmartEXP3} {
		t.Run(alg.String(), func(t *testing.T) {
			const warm, tail = 400, 400
			avail := []int{2, 5, 9, 11}

			src := rngutil.NewSource(1234)
			p := NewSmartEXP3(alg.String(), FeaturesFor(alg), avail, DefaultConfig(), rand.New(src))
			driveSlots(p, 0, warm)

			// Capture (policy state, rng state) at the cut point.
			var st PolicyState
			p.ExportState(&st)
			rngSt := src.State()

			want := driveSlots(p, warm, tail)

			// Restore into a fresh policy over a different initial set — the
			// import must fully overwrite it.
			src2 := &rngutil.Source{}
			src2.SetState(rngSt)
			rng2 := rand.New(src2)
			q := NewSmartEXP3(alg.String(), FeaturesFor(alg), []int{1, 3}, DefaultConfig(), rand.New(rngutil.NewSource(9)))
			if err := q.ImportState(&st, rng2); err != nil {
				t.Fatal(err)
			}
			got := driveSlots(q, warm, tail)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("selection diverges at slot %d: got %d want %d", i, got[i], want[i])
				}
			}
			if p.Resets() != q.Resets() || p.Switches() != q.Switches() {
				t.Fatalf("counters diverge: resets %d/%d switches %d/%d",
					p.Resets(), q.Resets(), p.Switches(), q.Switches())
			}
		})
	}
}

func TestExportImportSurvivesAvailabilityChurn(t *testing.T) {
	sets := [][]int{{1, 2, 3}, {2, 3, 7}, {1, 2, 3, 7}, {3, 7}}
	src := rngutil.NewSource(77)
	p := NewSmartEXP3("Smart EXP3", FeaturesFor(AlgSmartEXP3), sets[0], DefaultConfig(), rand.New(src))
	slot := 0
	for i := 0; i < 8; i++ {
		p.SetAvailable(sets[i%len(sets)])
		driveSlots(p, slot, 50)
		slot += 50
	}

	var st PolicyState
	p.ExportState(&st)
	rngSt := src.State()
	want := driveSlots(p, slot, 200)

	src2 := &rngutil.Source{}
	src2.SetState(rngSt)
	q := NewSmartEXP3("Smart EXP3", FeaturesFor(AlgSmartEXP3), []int{0}, DefaultConfig(), rand.New(rngutil.NewSource(1)))
	if err := q.ImportState(&st, rand.New(src2)); err != nil {
		t.Fatal(err)
	}
	got := driveSlots(q, slot, 200)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-churn continuation diverges")
	}
}

func TestExportImportExportIsLossless(t *testing.T) {
	src := rngutil.NewSource(5)
	p := NewSmartEXP3("Smart EXP3", FeaturesFor(AlgSmartEXP3), []int{0, 1, 2}, DefaultConfig(), rand.New(src))
	driveSlots(p, 0, 300)

	var a PolicyState
	p.ExportState(&a)
	q := NewSmartEXP3("Smart EXP3", FeaturesFor(AlgSmartEXP3), []int{0, 1}, DefaultConfig(), rand.New(rngutil.NewSource(2)))
	if err := q.ImportState(&a, rand.New(rngutil.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	var b PolicyState
	q.ExportState(&b)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("export → import → export is not the identity")
	}
}

func TestExportStateReusesBuffers(t *testing.T) {
	p := NewSmartEXP3("Smart EXP3", FeaturesFor(AlgSmartEXP3), []int{0, 1, 2}, DefaultConfig(), rand.New(rngutil.NewSource(8)))
	driveSlots(p, 0, 100)
	var st PolicyState
	p.ExportState(&st) // size the buffers once
	allocs := testing.AllocsPerRun(50, func() {
		p.ExportState(&st)
	})
	if allocs > 0 {
		t.Fatalf("warm ExportState allocates %.0f objects per call", allocs)
	}
}

func TestPolicyStateValidateRejectsCorruptStates(t *testing.T) {
	mk := func() *PolicyState {
		p := NewSmartEXP3("Smart EXP3", FeaturesFor(AlgSmartEXP3), []int{0, 1, 2}, DefaultConfig(), rand.New(rngutil.NewSource(4)))
		driveSlots(p, 0, 50)
		var st PolicyState
		p.ExportState(&st)
		return &st
	}
	tests := []struct {
		name   string
		mutate func(*PolicyState)
	}{
		{"empty availability", func(s *PolicyState) { s.Available = nil }},
		{"unsorted availability", func(s *PolicyState) { s.Available[0], s.Available[1] = s.Available[1], s.Available[0] }},
		{"duplicate availability", func(s *PolicyState) { s.Available[1] = s.Available[0] }},
		{"short LogW", func(s *PolicyState) { s.LogW = s.LogW[:1] }},
		{"short Tree", func(s *PolicyState) { s.Tree = s.Tree[:2] }},
		{"Cur out of range", func(s *PolicyState) { s.Cur = 99 }},
		{"PendingSB below -1", func(s *PolicyState) { s.PendingSB = -2 }},
		{"IPlus negative", func(s *PolicyState) { s.IPlus = -1 }},
		{"Explore out of range", func(s *PolicyState) { s.Explore = append(s.Explore, 42) }},
		{"short SlotsOn", func(s *PolicyState) { s.SlotsOn = nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			st := mk()
			if err := st.Validate(); err != nil {
				t.Fatalf("baseline state invalid: %v", err)
			}
			tt.mutate(st)
			if err := st.Validate(); err == nil {
				t.Fatal("corrupt state validated")
			}
			q := NewSmartEXP3("Smart EXP3", FeaturesFor(AlgSmartEXP3), []int{0, 1, 2}, DefaultConfig(), rand.New(rngutil.NewSource(6)))
			before := q.Select()
			if err := q.ImportState(st, rand.New(rngutil.NewSource(7))); err == nil {
				t.Fatal("corrupt state imported")
			}
			// The failed import must not have touched the policy.
			if got := q.Select(); got != before {
				t.Fatalf("failed import perturbed the policy: %d != %d", got, before)
			}
		})
	}
}
