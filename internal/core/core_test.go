package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"smartexp3/internal/rngutil"
)

func TestAlgorithmString(t *testing.T) {
	tests := []struct {
		give Algorithm
		want string
	}{
		{AlgEXP3, "EXP3"},
		{AlgBlockEXP3, "Block EXP3"},
		{AlgHybridBlockEXP3, "Hybrid Block EXP3"},
		{AlgSmartEXP3NoReset, "Smart EXP3 w/o Reset"},
		{AlgSmartEXP3, "Smart EXP3"},
		{AlgGreedy, "Greedy"},
		{AlgFullInformation, "Full Information"},
		{AlgFixedRandom, "Fixed Random"},
		{AlgCentralized, "Centralized"},
		{Algorithm(99), "Algorithm(99)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}

func TestAlgorithmsComplete(t *testing.T) {
	if len(Algorithms()) != 9 {
		t.Fatalf("Algorithms() lists %d entries, want 9", len(Algorithms()))
	}
}

func TestFeaturesFor(t *testing.T) {
	if f := FeaturesFor(AlgEXP3); f != (Features{}) {
		t.Fatalf("EXP3 features = %+v, want all off", f)
	}
	if f := FeaturesFor(AlgBlockEXP3); !f.Blocking || f.Greedy {
		t.Fatalf("Block EXP3 features = %+v", f)
	}
	full := FeaturesFor(AlgSmartEXP3)
	if !(full.Blocking && full.ExploreFirst && full.Greedy && full.SwitchBack &&
		full.Reset && full.NetworkChange) {
		t.Fatalf("Smart EXP3 features = %+v, want all on", full)
	}
	noReset := FeaturesFor(AlgSmartEXP3NoReset)
	if noReset.Reset {
		t.Fatal("Smart EXP3 w/o Reset must not reset")
	}
}

func TestFeaturesForPanicsOnNonFamily(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for Greedy")
		}
	}()
	FeaturesFor(AlgGreedy)
}

func TestDecayingGamma(t *testing.T) {
	if got := DecayingGamma(1); got != 1 {
		t.Fatalf("gamma(1) = %v, want 1", got)
	}
	if got := DecayingGamma(8); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("gamma(8) = %v, want 0.5", got)
	}
	if got := DecayingGamma(0); got != 1 {
		t.Fatalf("gamma(0) = %v, want clamped to 1", got)
	}
	prev := 2.0
	for b := 1; b < 100; b++ {
		g := DecayingGamma(b)
		if g <= 0 || g > 1 || g >= prev && b > 1 {
			t.Fatalf("gamma(%d) = %v not strictly decreasing in (0,1]", b, g)
		}
		prev = g
	}
}

func TestBlockLengthFormula(t *testing.T) {
	tests := []struct {
		beta float64
		x    int
		want int
	}{
		{0.1, 0, 1},
		{0.1, 1, 2}, // ceil(1.1)
		{0.1, 2, 2}, // ceil(1.21)
		{0.1, 8, 3}, // ceil(2.14...)
		{0.1, 39, 42 /* ceil(1.1^39)=41.14→42 */},
		{1.0, 3, 8},
	}
	for _, tt := range tests {
		if got := BlockLength(tt.beta, tt.x); got != tt.want {
			t.Errorf("BlockLength(%v,%d) = %d, want %d", tt.beta, tt.x, got, tt.want)
		}
	}
}

func TestBlockLengthMonotoneProperty(t *testing.T) {
	f := func(xRaw uint8) bool {
		x := int(xRaw % 80)
		return BlockLength(0.1, x+1) >= BlockLength(0.1, x) && BlockLength(0.1, x) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{name: "default valid", mutate: func(*Config) {}},
		{name: "beta zero", mutate: func(c *Config) { c.Beta = 0 }, wantErr: "beta"},
		{name: "beta too big", mutate: func(c *Config) { c.Beta = 1.5 }, wantErr: "beta"},
		{name: "nil gamma", mutate: func(c *Config) { c.Gamma = nil }, wantErr: "gamma"},
		{name: "bad reset prob", mutate: func(c *Config) { c.ResetProbability = 0 }, wantErr: "reset"},
		{name: "bad window", mutate: func(c *Config) { c.SwitchBackWindow = 0 }, wantErr: "window"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("error %v, want mention of %q", err, tt.wantErr)
			}
		})
	}
}

func TestNewConstructsEveryPerDeviceAlgorithm(t *testing.T) {
	for _, alg := range Algorithms() {
		if alg == AlgCentralized {
			continue
		}
		pol, err := New(alg, []int{0, 1, 2}, DefaultConfig(), rngutil.New(1))
		if err != nil {
			t.Fatalf("New(%v) error: %v", alg, err)
		}
		if pol.Name() != alg.String() {
			t.Fatalf("New(%v).Name() = %q", alg, pol.Name())
		}
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	if _, err := New(AlgCentralized, []int{0}, DefaultConfig(), rngutil.New(1)); err == nil {
		t.Fatal("centralized must not build a per-device policy")
	}
	if _, err := New(AlgSmartEXP3, nil, DefaultConfig(), rngutil.New(1)); err == nil {
		t.Fatal("want error for empty availability")
	}
	if _, err := New(AlgSmartEXP3, []int{0}, DefaultConfig(), nil); err == nil {
		t.Fatal("want error for nil rng")
	}
	if _, err := New(AlgSmartEXP3, []int{0}, Config{}, rngutil.New(1)); err == nil {
		t.Fatal("want error for zero config")
	}
	if _, err := New(Algorithm(42), []int{0}, DefaultConfig(), rngutil.New(1)); err == nil {
		t.Fatal("want error for unknown algorithm")
	}
}

// driveConstGains runs a policy for the given number of slots with
// per-network constant gains and returns the per-network selection counts.
func driveConstGains(t *testing.T, pol Policy, gains map[int]float64, slots int) map[int]int {
	t.Helper()
	counts := make(map[int]int)
	for i := 0; i < slots; i++ {
		net := pol.Select()
		g, ok := gains[net]
		if !ok {
			t.Fatalf("policy selected unavailable network %d", net)
		}
		counts[net]++
		pol.Observe(g)
	}
	return counts
}
