package core

import (
	"math"
	"testing"

	"smartexp3/internal/rngutil"
)

func newSmart(t *testing.T, alg Algorithm, available []int, seed int64) *SmartEXP3 {
	t.Helper()
	pol, err := New(alg, available, DefaultConfig(), rngutil.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	smart, ok := pol.(*SmartEXP3)
	if !ok {
		t.Fatalf("New(%v) returned %T", alg, pol)
	}
	return smart
}

func TestSmartExploresEveryNetworkFirst(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3, []int{3, 7, 9}, 1)
	seen := make(map[int]bool)
	for i := 0; i < 3; i++ {
		net := p.Select()
		if seen[net] {
			t.Fatalf("network %d explored twice in the initial phase", net)
		}
		seen[net] = true
		p.Observe(0.5)
	}
	if len(seen) != 3 {
		t.Fatalf("initial exploration covered %d networks, want 3", len(seen))
	}
}

func TestEXP3HasNoExplorationPhase(t *testing.T) {
	// Classic EXP3 starts with the uniform mixture; with k=3 and γ=1 the
	// first three selections are i.i.d. uniform, so repeats are likely.
	// Verify structurally: the exploration queue is empty.
	p := newSmart(t, AlgEXP3, []int{0, 1, 2}, 1)
	if len(p.explore) != 0 {
		t.Fatal("EXP3 must not carry an exploration queue")
	}
	if p.feat.Blocking {
		t.Fatal("EXP3 must not block")
	}
}

func TestEXP3BlocksAreSingleSlots(t *testing.T) {
	p := newSmart(t, AlgEXP3, []int{0, 1}, 2)
	for i := 0; i < 50; i++ {
		p.Select()
		if p.blockLen != 1 {
			t.Fatalf("EXP3 block length %d at slot %d, want 1", p.blockLen, i)
		}
		p.Observe(0.5)
	}
}

func TestSmartConvergesToBestNetwork(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3NoReset, []int{0, 1, 2}, 3)
	counts := driveConstGains(t, p,
		map[int]float64{0: 0.1, 1: 0.2, 2: 0.9}, 600)
	if counts[2] < 400 {
		t.Fatalf("best network selected only %d/600 slots: %v", counts[2], counts)
	}
}

func TestEXP3ConvergesToBestNetwork(t *testing.T) {
	p := newSmart(t, AlgEXP3, []int{0, 1}, 4)
	counts := driveConstGains(t, p, map[int]float64{0: 0.05, 1: 0.95}, 2000)
	if counts[1] < counts[0] {
		t.Fatalf("EXP3 prefers the worse arm: %v", counts)
	}
}

func TestProbabilitiesFormDistribution(t *testing.T) {
	for _, alg := range []Algorithm{AlgEXP3, AlgBlockEXP3, AlgHybridBlockEXP3, AlgSmartEXP3NoReset, AlgSmartEXP3} {
		p := newSmart(t, alg, []int{0, 1, 2, 3}, 5)
		rng := rngutil.New(99)
		for i := 0; i < 500; i++ {
			p.Select()
			probs := p.Probabilities()
			var sum float64
			for _, pr := range probs {
				if pr < 0 || pr > 1 || math.IsNaN(pr) {
					t.Fatalf("%v: invalid probability %v at slot %d", alg, pr, i)
				}
				sum += pr
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%v: probabilities sum to %v at slot %d", alg, sum, i)
			}
			p.Observe(rng.Float64())
		}
	}
}

func TestWeightsStayFiniteOverLongHorizons(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3NoReset, []int{0, 1, 2}, 6)
	driveConstGains(t, p, map[int]float64{0: 1, 1: 1, 2: 1}, 10000)
	for i, lw := range p.w.logW {
		if math.IsNaN(lw) || math.IsInf(lw, 0) {
			t.Fatalf("log-weight %d is %v after 10k slots", i, lw)
		}
	}
	// The lazy shift must keep every exponent within the safe span (the
	// incremental-normalization invariant) and the linear-space view finite.
	if span := maxOf(p.w.logW) - p.w.shift; span < 0 || span > weightReshiftSpan {
		t.Fatalf("log-weights drifted outside the reshift span: %v", span)
	}
	if math.IsNaN(p.w.sumW) || math.IsInf(p.w.sumW, 0) || p.w.sumW <= 0 {
		t.Fatalf("weight sum degenerate: %v", p.w.sumW)
	}
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestBlockLengthsGrowOverTime(t *testing.T) {
	p := newSmart(t, AlgBlockEXP3, []int{0, 1}, 7)
	maxLen := 0
	for i := 0; i < 2000; i++ {
		p.Select()
		if p.blockLen > maxLen {
			maxLen = p.blockLen
		}
		p.Observe(0.8)
	}
	if maxLen < 10 {
		t.Fatalf("block length never grew past %d over 2000 slots", maxLen)
	}
}

func TestNoConsecutiveSwitchBackBlocks(t *testing.T) {
	// Adversarial gains: every network looks worse right after a switch,
	// maximizing switch-back pressure. The no-ping-pong rule must hold.
	p := newSmart(t, AlgSmartEXP3NoReset, []int{0, 1, 2}, 8)
	rng := rngutil.New(123)
	prevWasSB := false
	for i := 0; i < 5000; i++ {
		p.Select()
		if p.curIsSB && prevWasSB && p.slotIn == 0 {
			t.Fatalf("two consecutive switch-back blocks at slot %d", i)
		}
		if p.slotIn == 0 {
			prevWasSB = p.curIsSB
		}
		p.Observe(rng.Float64())
	}
	if p.SwitchBacks() == 0 {
		t.Fatal("adversarial noise never triggered a switch-back; the mechanism looks dead")
	}
}

func TestSwitchBackReturnsToPreviousNetwork(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3NoReset, []int{0, 1}, 9)
	// Network 0 is great, network 1 terrible: whenever the sampler tries 1,
	// the first slot should reveal it and switch back to 0.
	gains := map[int]float64{0: 0.9, 1: 0.05}
	last := -1
	sbSeen := false
	for i := 0; i < 3000; i++ {
		net := p.Select()
		if p.curIsSB && p.slotIn == 0 {
			sbSeen = true
			if net != 0 {
				t.Fatalf("switch-back block went to network %d, want 0", net)
			}
			if last != 1 {
				t.Fatalf("switch-back without visiting the bad network (last=%d)", last)
			}
		}
		last = net
		p.Observe(gains[net])
	}
	if !sbSeen {
		t.Fatal("no switch-back observed in 3000 slots of a 0.9-vs-0.05 environment")
	}
}

func TestPeriodicResetFires(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3, []int{0, 1, 2}, 10)
	driveConstGains(t, p, map[int]float64{0: 0.05, 1: 0.1, 2: 0.95}, 3000)
	if p.Resets() == 0 {
		t.Fatal("periodic reset never fired over 3000 slots of a stable optimum")
	}
}

func TestResetClearsBlockLengthsAndGreedyStats(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3, []int{0, 1}, 11)
	driveConstGains(t, p, map[int]float64{0: 0.9, 1: 0.1}, 200)
	p.performReset()
	for i := range p.x {
		if p.x[i] != 0 || p.sumGain[i] != 0 || p.cntGain[i] != 0 || p.slotsOn[i] != 0 {
			t.Fatalf("reset left learning state: x=%v sum=%v cnt=%v slots=%v",
				p.x, p.sumGain, p.cntGain, p.slotsOn)
		}
	}
	if len(p.explore) != p.k {
		t.Fatalf("reset queued %d networks for exploration, want %d", len(p.explore), p.k)
	}
}

func TestResetKeepsWeights(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3, []int{0, 1}, 12)
	driveConstGains(t, p, map[int]float64{0: 0.9, 1: 0.1}, 300)
	before := append([]float64(nil), p.w.logW...)
	p.performReset()
	for i := range before {
		if p.w.logW[i] != before[i] {
			t.Fatal("minimal reset must keep the learned weights")
		}
	}
}

func TestQualityDropTriggersReset(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3, []int{0, 1}, 13)
	// Learn that network 0 is good...
	driveConstGains(t, p, map[int]float64{0: 0.9, 1: 0.05}, 300)
	resetsBefore := p.Resets()
	// ...then crash its quality. The drop detector must reset within a
	// couple of blocks.
	fired := false
	for i := 0; i < 120; i++ {
		net := p.Select()
		g := 0.05
		if net == 0 {
			g = 0.3 // 67% below the ≈0.9 historical average
		}
		p.Observe(g)
		if p.Resets() > resetsBefore {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("quality-drop reset never fired after the preferred network degraded")
	}
}

func TestNoResetVariantNeverResets(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3NoReset, []int{0, 1, 2}, 14)
	driveConstGains(t, p, map[int]float64{0: 0.05, 1: 0.1, 2: 0.95}, 4000)
	if p.Resets() != 0 {
		t.Fatalf("no-reset variant reset %d times", p.Resets())
	}
}

func TestSetAvailableAddsNetworkWithMaxWeightAndResets(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3, []int{0, 1}, 15)
	driveConstGains(t, p, map[int]float64{0: 0.9, 1: 0.1}, 200)
	resetsBefore := p.Resets()
	p.SetAvailable([]int{0, 1, 2})
	if p.Resets() != resetsBefore+1 {
		t.Fatalf("discovering a network must reset (resets %d → %d)", resetsBefore, p.Resets())
	}
	li, ok := p.index[2]
	if !ok {
		t.Fatal("new network missing from index")
	}
	if p.w.logW[li] != maxOf(p.w.logW) {
		t.Fatalf("new network weight %v, want the max %v", p.w.logW[li], maxOf(p.w.logW))
	}
	// The forced exploration must cover the new network.
	seen := make(map[int]bool)
	for i := 0; i < 3; i++ {
		seen[p.Select()] = true
		p.Observe(0.5)
	}
	if !seen[2] {
		t.Fatal("new network was not explored after discovery")
	}
}

func TestSetAvailableRemovingCurrentNetwork(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3, []int{0, 1, 2}, 16)
	driveConstGains(t, p, map[int]float64{0: 0.9, 1: 0.1, 2: 0.1}, 300)
	// Remove whatever the device currently uses.
	cur := p.Select()
	p.Observe(0.9)
	remaining := make([]int, 0, 2)
	for _, id := range []int{0, 1, 2} {
		if id != cur {
			remaining = append(remaining, id)
		}
	}
	p.SetAvailable(remaining)
	for i := 0; i < 20; i++ {
		net := p.Select()
		if net == cur {
			t.Fatalf("policy selected the removed network %d", net)
		}
		p.Observe(0.5)
	}
}

func TestSetAvailableNoChangeIsNoOp(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3, []int{0, 1, 2}, 17)
	driveConstGains(t, p, map[int]float64{0: 0.3, 1: 0.3, 2: 0.3}, 50)
	resets := p.Resets()
	p.SetAvailable([]int{2, 1, 0}) // same set, different order
	if p.Resets() != resets {
		t.Fatal("re-announcing the same availability must not reset")
	}
}

func TestSetAvailableEmptyIgnored(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3, []int{0, 1}, 18)
	p.SetAvailable(nil)
	if len(p.Available()) != 2 {
		t.Fatal("empty availability update must be ignored")
	}
}

func TestGreedyEligibilityStartsTrue(t *testing.T) {
	// The distribution starts uniform, so condition (a) of Section V —
	// max(p)−min(p) ≤ 1/(k−1) — holds and greedy is eligible.
	p := newSmart(t, AlgHybridBlockEXP3, []int{0, 1, 2}, 100)
	p.Select()
	p.Observe(0.5)
	if !p.greedyEligible() {
		t.Fatal("greedy must be eligible under the uniform distribution")
	}
}

func TestGreedyEligibilityExpiresAndCapturesY(t *testing.T) {
	p := newSmart(t, AlgHybridBlockEXP3, []int{0, 1, 2}, 101)
	driveConstGains(t, p, map[int]float64{0: 0.05, 1: 0.1, 2: 0.95}, 1500)
	if !p.condAFailed {
		t.Fatal("condition (a) never failed despite a dominant network")
	}
	if p.yThreshold < 1 {
		t.Fatalf("y threshold %d, want ≥ 1", p.yThreshold)
	}
	// With a concentrated distribution and regrown block lengths, greedy
	// must no longer be eligible.
	p.Select()
	iPlus := 0
	for li := 1; li < p.k; li++ {
		if p.probs[li] > p.probs[iPlus] {
			iPlus = li
		}
	}
	if BlockLength(p.cfg.Beta, p.x[iPlus]) >= p.yThreshold && p.greedyEligible() {
		t.Fatal("greedy still eligible after block lengths regrew past y")
	}
}

func TestBestAverageGainPicksArgmax(t *testing.T) {
	p := newSmart(t, AlgHybridBlockEXP3, []int{0, 1, 2}, 102)
	p.sumGain = []float64{5, 20, 1}
	p.cntGain = []int{10, 25, 10} // averages 0.5, 0.8, 0.1
	if got := p.bestAverageGain(); got != 1 {
		t.Fatalf("bestAverageGain = %d, want 1", got)
	}
}

func TestGreedySelectionUsesHalfProbability(t *testing.T) {
	// While greedy is eligible, block-start selection probabilities must be
	// 1/2 (greedy pick) or p_i/2 (random pick) — never the bare p_i.
	p := newSmart(t, AlgHybridBlockEXP3, []int{0, 1, 2}, 103)
	// Drain the exploration phase first.
	for len(p.explore) > 0 || p.slotIn < p.blockLen-1 {
		p.Select()
		p.Observe(0.5)
	}
	for i := 0; i < 200; i++ {
		p.Select()
		if p.slotIn == 0 && len(p.explore) == 0 && !p.curIsSB && p.greedyWasEligible {
			half := p.selProb == 0.5
			halfRandom := math.Abs(p.selProb-p.probs[p.cur]/2) < 1e-12
			if !half && !halfRandom {
				t.Fatalf("greedy-phase selection probability %v, want 1/2 or p_i/2", p.selProb)
			}
		}
		p.Observe(0.5)
	}
}

func TestSwitchCounter(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3NoReset, []int{0, 1, 2}, 19)
	last := -1
	want := 0
	for i := 0; i < 500; i++ {
		net := p.Select()
		if last >= 0 && net != last {
			want++
		}
		last = net
		p.Observe(0.5)
	}
	if got := p.Switches(); got != want {
		t.Fatalf("Switches() = %d, counted %d", got, want)
	}
}

func TestSingleNetworkDegenerate(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3, []int{4}, 20)
	for i := 0; i < 200; i++ {
		if net := p.Select(); net != 4 {
			t.Fatalf("selected %d with a single network", net)
		}
		p.Observe(0.7)
	}
	if p.Switches() != 0 {
		t.Fatal("switches with one network")
	}
}

func TestZeroGainEnvironment(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3, []int{0, 1}, 21)
	for i := 0; i < 400; i++ {
		p.Select()
		p.Observe(0)
		probs := p.Probabilities()
		var sum float64
		for _, pr := range probs {
			sum += pr
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("distribution degenerated under zero gains at slot %d", i)
		}
	}
}

func TestGainClamping(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3NoReset, []int{0, 1}, 22)
	for i := 0; i < 200; i++ {
		p.Select()
		p.Observe(5) // out-of-range gains must be clamped, not explode
	}
	for _, lw := range p.w.logW {
		if math.IsNaN(lw) || math.IsInf(lw, 0) {
			t.Fatal("weights exploded under out-of-range gains")
		}
	}
}

func TestDeterminismAcrossIdenticalRuns(t *testing.T) {
	run := func() []int {
		p := newSmart(t, AlgSmartEXP3, []int{0, 1, 2}, 42)
		rng := rngutil.New(7)
		out := make([]int, 600)
		for i := range out {
			out[i] = p.Select()
			p.Observe(rng.Float64())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at slot %d", i)
		}
	}
}

func TestSelectionProbabilityBookkeeping(t *testing.T) {
	// p(b) must always be in (0,1]: it divides the gain estimate.
	p := newSmart(t, AlgSmartEXP3, []int{0, 1, 2}, 23)
	rng := rngutil.New(17)
	for i := 0; i < 2000; i++ {
		p.Select()
		if p.selProb <= 0 || p.selProb > 1 {
			t.Fatalf("selection probability %v out of (0,1] at slot %d", p.selProb, i)
		}
		p.Observe(rng.Float64())
	}
}

// TestSmartEXP3WarmPathAllocs is the AllocsPerRun gate behind the
// //repolint:allocfree markers on the engine's slot loop: Select, Observe,
// ensureProbs, armProb and every weightSet primitive they drive (bump, fill,
// prob, sample, treeAdd, search) must not allocate once the policy is past
// its initial exploration and the window/memo buffers have reached capacity.
func TestSmartEXP3WarmPathAllocs(t *testing.T) {
	p := newSmart(t, AlgSmartEXP3, []int{0, 1, 2, 3}, 17)
	slot := 0
	step := func() {
		net := p.Select()
		p.Observe(float64(net%3) * 0.3 * (0.8 + 0.01*float64(slot%20)))
		slot++
	}
	for i := 0; i < 2000; i++ { // warm: exploration done, buffers at capacity
		step()
	}
	allocs := testing.AllocsPerRun(500, func() {
		step()
		p.Probabilities() // forces ensureProbs on the filled cache
		_ = p.armProb(1)
	})
	if allocs > 0 {
		t.Fatalf("warm Select/Observe/ensureProbs path allocates %.2f objects per slot, want 0", allocs)
	}
}
