package core

import (
	"math"
	"testing"

	"smartexp3/internal/rngutil"
)

func TestGreedyExploresEachNetworkOnce(t *testing.T) {
	g := NewGreedy([]int{2, 5, 8}, rngutil.New(1))
	seen := make(map[int]int)
	for i := 0; i < 3; i++ {
		seen[g.Select()]++
		g.Observe(0.5)
	}
	for _, id := range []int{2, 5, 8} {
		if seen[id] != 1 {
			t.Fatalf("exploration visits %v, want each network once", seen)
		}
	}
}

func TestGreedyLocksOntoBestAverage(t *testing.T) {
	g := NewGreedy([]int{0, 1, 2}, rngutil.New(2))
	gains := map[int]float64{0: 0.2, 1: 0.9, 2: 0.4}
	for i := 0; i < 100; i++ {
		net := g.Select()
		g.Observe(gains[net])
	}
	for i := 0; i < 20; i++ {
		if net := g.Select(); net != 1 {
			t.Fatalf("greedy selected %d, want the best network 1", net)
		}
		g.Observe(gains[1])
	}
}

func TestGreedyGetsStuckOnDegradedNetwork(t *testing.T) {
	// The failure mode the paper exploits: after the preferred network
	// degrades below another's historical average... greedy eventually
	// moves, but only when the running average crosses — not on fresh
	// evidence. With a long history it stays for a long time.
	g := NewGreedy([]int{0, 1}, rngutil.New(3))
	for i := 0; i < 200; i++ {
		net := g.Select()
		gain := 0.3
		if net == 0 {
			gain = 0.9
		}
		g.Observe(gain)
	}
	// Network 0 collapses to 0.1; for many slots greedy keeps choosing it.
	stuck := 0
	for i := 0; i < 50; i++ {
		net := g.Select()
		gain := 0.3
		if net == 0 {
			gain = 0.1
			stuck++
		}
		g.Observe(gain)
	}
	if stuck < 40 {
		t.Fatalf("greedy re-adapted suspiciously fast (%d/50 slots on the stale best)", stuck)
	}
}

func TestGreedySetAvailableExploresNewNetwork(t *testing.T) {
	g := NewGreedy([]int{0, 1}, rngutil.New(4))
	for i := 0; i < 20; i++ {
		g.Observe(map[int]float64{0: 0.8, 1: 0.2}[g.Select()])
	}
	g.SetAvailable([]int{0, 1, 5})
	seen5 := false
	for i := 0; i < 3; i++ {
		if g.Select() == 5 {
			seen5 = true
		}
		g.Observe(0.1)
	}
	if !seen5 {
		t.Fatal("greedy never explored the newly available network")
	}
}

func TestGreedySetAvailableKeepsAverages(t *testing.T) {
	g := NewGreedy([]int{0, 1}, rngutil.New(5))
	for i := 0; i < 30; i++ {
		g.Observe(map[int]float64{0: 0.9, 1: 0.1}[g.Select()])
	}
	g.SetAvailable([]int{0, 1, 2})
	// After the forced exploration of 2 (bad), greedy must still remember
	// that 0 was best.
	for i := 0; i < 5; i++ {
		net := g.Select()
		g.Observe(map[int]float64{0: 0.9, 1: 0.1, 2: 0.1}[net])
	}
	for i := 0; i < 10; i++ {
		if net := g.Select(); net != 0 {
			t.Fatalf("greedy forgot its statistics: selected %d", net)
		}
		g.Observe(0.9)
	}
}

func TestGreedySwitchCounter(t *testing.T) {
	g := NewGreedy([]int{0, 1, 2}, rngutil.New(6))
	last, want := -1, 0
	for i := 0; i < 100; i++ {
		net := g.Select()
		if last >= 0 && net != last {
			want++
		}
		last = net
		g.Observe(0.5)
	}
	if got := g.Switches(); got != want {
		t.Fatalf("Switches() = %d, want %d", got, want)
	}
}

func TestFixedRandomNeverSwitches(t *testing.T) {
	r := NewFixedRandom([]int{0, 1, 2}, rngutil.New(7))
	first := r.Select()
	r.Observe(0.1)
	for i := 0; i < 100; i++ {
		if got := r.Select(); got != first {
			t.Fatalf("fixed random moved from %d to %d", first, got)
		}
		r.Observe(0.9) // high gains elsewhere must not tempt it
	}
}

func TestFixedRandomRepicksWhenNetworkVanishes(t *testing.T) {
	r := NewFixedRandom([]int{0, 1}, rngutil.New(8))
	first := r.Select()
	r.Observe(0.5)
	other := 1 - first
	r.SetAvailable([]int{other})
	if got := r.Select(); got != other {
		t.Fatalf("after removal, selected %d, want %d", got, other)
	}
}

func TestFixedRandomUniformOverSeeds(t *testing.T) {
	counts := make(map[int]int)
	for s := int64(0); s < 300; s++ {
		r := NewFixedRandom([]int{0, 1, 2}, rngutil.New(s))
		counts[r.Select()]++
	}
	for id, c := range counts {
		if c < 60 || c > 140 {
			t.Fatalf("network %d picked %d/300 times; want ≈100", id, c)
		}
	}
}

func TestFullInformationShiftsToLowLossArm(t *testing.T) {
	f := NewFullInformation([]int{0, 1}, rngutil.New(9))
	for i := 0; i < 300; i++ {
		f.Select()
		f.Observe(0)
		f.ObserveAll([]float64{0.1, 0.9})
	}
	probs := f.Probabilities()
	if probs[1] < 0.9 {
		t.Fatalf("full information did not concentrate on the better arm: %v", probs)
	}
}

func TestFullInformationProbabilitiesValid(t *testing.T) {
	f := NewFullInformation([]int{0, 1, 2}, rngutil.New(10))
	rng := rngutil.New(77)
	for i := 0; i < 500; i++ {
		f.Select()
		f.Observe(rng.Float64())
		f.ObserveAll([]float64{rng.Float64(), rng.Float64(), rng.Float64()})
		var sum float64
		for _, pr := range f.Probabilities() {
			if pr < 0 || math.IsNaN(pr) {
				t.Fatalf("invalid probability %v", pr)
			}
			sum += pr
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestFullInformationKeepsSwitchingForever(t *testing.T) {
	// With near-equal arms, weight-proportional per-slot sampling keeps
	// switching — the behavior behind its huge Figure 2 switch counts.
	f := NewFullInformation([]int{0, 1, 2}, rngutil.New(11))
	for i := 0; i < 1000; i++ {
		f.Select()
		f.Observe(0.5)
		f.ObserveAll([]float64{0.5, 0.5, 0.5})
	}
	if f.Switches() < 300 {
		t.Fatalf("full information switched only %d times over 1000 equal-arm slots", f.Switches())
	}
}

func TestFullInformationSetAvailable(t *testing.T) {
	f := NewFullInformation([]int{0, 1}, rngutil.New(12))
	for i := 0; i < 100; i++ {
		f.Select()
		f.Observe(0)
		f.ObserveAll([]float64{0.9, 0.1})
	}
	f.SetAvailable([]int{0, 2})
	for i := 0; i < 10; i++ {
		net := f.Select()
		if net != 0 && net != 2 {
			t.Fatalf("selected unavailable network %d", net)
		}
		f.Observe(0)
		f.ObserveAll([]float64{0.5, 0.5})
	}
}

func TestFullInformationIgnoresMalformedFeedback(t *testing.T) {
	f := NewFullInformation([]int{0, 1}, rngutil.New(13))
	f.Select()
	f.Observe(0.5)
	f.ObserveAll([]float64{0.5}) // wrong length: must be ignored, not panic
	var sum float64
	for _, pr := range f.Probabilities() {
		sum += pr
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v after malformed feedback", sum)
	}
}
