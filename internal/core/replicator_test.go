package core

import (
	"math"
	"testing"

	"smartexp3/internal/rngutil"
)

// TestReplicatorDynamicsDirection verifies the analytic heart of Theorem 1
// (Appendix A): for small γ, the expected per-block probability change of
// the EXP3 weight update follows the replicator equation
//
//	E[Δp_i] ∝ (p_i/k) · Σ_j p_j (g_i − g_j),
//
// so probability mass flows toward networks whose gain exceeds the
// distribution's average and away from the others, with magnitude scaled by
// p_i. The test Monte-Carlo-estimates E[Δp_i] of a bare EXP3 step (blocking
// and the other Smart mechanisms disabled, fixed tiny γ) and checks sign and
// relative ordering against the replicator prediction.
func TestReplicatorDynamicsDirection(t *testing.T) {
	gains := []float64{0.2, 0.5, 0.9}
	const (
		gamma  = 0.05
		trials = 300000
	)

	cfg := DefaultConfig()
	cfg.Gamma = FixedGamma(gamma)

	// Expected Δp by Monte Carlo over the policy's own randomization: start
	// from the uniform state each trial, run exactly one block (= one slot),
	// and record the next block's distribution.
	k := len(gains)
	deltas := make([]float64, k)
	rng := rngutil.New(42)
	for trial := 0; trial < trials; trial++ {
		p := NewSmartEXP3("exp3", Features{}, []int{0, 1, 2}, cfg, rng)
		net := p.Select()
		before := append([]float64(nil), p.Probabilities()...)
		p.Observe(gains[net])
		p.Select() // start the next block, refreshing the distribution
		after := p.Probabilities()
		for i := 0; i < k; i++ {
			deltas[i] += after[i] - before[i]
		}
	}
	for i := range deltas {
		deltas[i] /= trials
	}

	// Replicator prediction from the uniform state p = (1/3,1/3,1/3):
	// direction_i = (p_i/k)·Σ_j p_j (g_i − g_j).
	var avgGain float64
	for _, g := range gains {
		avgGain += g / float64(k)
	}
	pred := make([]float64, k)
	for i, g := range gains {
		pred[i] = (1.0 / float64(k) / float64(k)) * (g - avgGain)
	}

	// Signs must match: mass flows to above-average arms.
	for i := range pred {
		if pred[i] > 0 && deltas[i] <= 0 {
			t.Fatalf("arm %d (gain %.1f > avg %.2f): predicted growth, measured Δp=%.2e",
				i, gains[i], avgGain, deltas[i])
		}
		if pred[i] < 0 && deltas[i] >= 0 {
			t.Fatalf("arm %d (gain %.1f < avg %.2f): predicted decay, measured Δp=%.2e",
				i, gains[i], avgGain, deltas[i])
		}
	}

	// The best arm must gain the most; the worst must lose the most.
	if !(deltas[2] > deltas[1] && deltas[1] > deltas[0]) {
		t.Fatalf("Δp ordering %v does not follow gain ordering", deltas)
	}

	// Magnitude ratio check (coarse): Δp_2/|Δp_0| should match the
	// replicator ratio within Monte Carlo noise.
	wantRatio := pred[2] / -pred[0]
	gotRatio := deltas[2] / -deltas[0]
	if math.Abs(gotRatio-wantRatio) > 0.5*wantRatio {
		t.Fatalf("Δp ratio %.2f deviates from replicator prediction %.2f", gotRatio, wantRatio)
	}
}

// TestReplicatorFixedPointAtPureStrategy verifies that a near-pure
// distribution barely moves when its favorite arm keeps paying: pure Nash
// profiles are fixed points of the dynamics (the convergence targets of
// Theorem 1).
func TestReplicatorFixedPointAtPureStrategy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Gamma = FixedGamma(0.01)
	rng := rngutil.New(7)
	p := NewSmartEXP3("exp3", Features{}, []int{0, 1}, cfg, rng)

	// Push the distribution close to pure on arm 1.
	for i := 0; i < 3000; i++ {
		net := p.Select()
		g := 0.05
		if net == 1 {
			g = 0.95
		}
		p.Observe(g)
	}
	p.Select()
	before := append([]float64(nil), p.Probabilities()...)
	if before[1] < 0.9 {
		t.Fatalf("distribution did not concentrate: %v", before)
	}
	// One more favorable block must not move the near-pure state much.
	p.Observe(0.95)
	p.Select()
	after := p.Probabilities()
	if math.Abs(after[1]-before[1]) > 0.02 {
		t.Fatalf("near-pure state moved from %.4f to %.4f on one block", before[1], after[1])
	}
}
