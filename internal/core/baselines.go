package core

import (
	"math"
	"math/rand"
)

// Greedy is the Table II baseline: explore each available network once in
// random order, then always select the network with the highest observed
// average gain (updating that network's average as it goes).
type Greedy struct {
	rng        *rand.Rand
	available  []int
	availSpare []int // retired availability slice, recycled by SetAvailable
	index      map[int]int
	explore    []int // local indices pending exploration
	sumGain    []float64
	cntGain    []int
	cur        int
	switches   int
	last       int
}

var (
	_ Policy         = (*Greedy)(nil)
	_ SwitchReporter = (*Greedy)(nil)
	_ Reinitializer  = (*Greedy)(nil)
)

// NewGreedy constructs a Greedy policy over the given global network ids.
func NewGreedy(available []int, rng *rand.Rand) *Greedy {
	g := &Greedy{}
	g.Reinit(available, rng)
	return g
}

// Reinit implements Reinitializer.
func (g *Greedy) Reinit(available []int, rng *rand.Rand) {
	g.rng = rng
	g.cur, g.last = -1, -1
	g.switches = 0
	g.explore = g.explore[:0]
	g.rebuild(sortedInto(g.available, available), nil, nil)
}

// Name implements Policy.
func (g *Greedy) Name() string { return AlgGreedy.String() }

// Available implements Policy.
func (g *Greedy) Available() []int { return g.available }

// Switches implements SwitchReporter.
func (g *Greedy) Switches() int { return g.switches }

// Select implements Policy.
func (g *Greedy) Select() int {
	if len(g.explore) > 0 {
		i := g.rng.Intn(len(g.explore))
		g.cur = g.explore[i]
		g.explore[i] = g.explore[len(g.explore)-1]
		g.explore = g.explore[:len(g.explore)-1]
	} else {
		g.cur = g.bestAverage()
	}
	chosen := g.available[g.cur]
	if g.last >= 0 && chosen != g.last {
		g.switches++
	}
	g.last = chosen
	return chosen
}

// Observe implements Policy.
func (g *Greedy) Observe(gain float64) {
	gain = clamp01(gain)
	g.sumGain[g.cur] += gain
	g.cntGain[g.cur]++
}

// SetAvailable implements Policy. Gain statistics of retained networks are
// kept; newly visible networks are queued for one exploration slot each.
func (g *Greedy) SetAvailable(networks []int) {
	next := sortedInto(g.availSpare, networks)
	g.availSpare = next
	if len(next) == 0 || equalInts(next, g.available) {
		return
	}
	sums := make(map[int]float64, len(g.available))
	cnts := make(map[int]int, len(g.available))
	for li, id := range g.available {
		sums[id] = g.sumGain[li]
		cnts[id] = g.cntGain[li]
	}
	spare := g.available
	g.rebuild(next, sums, cnts)
	g.availSpare = spare
}

func (g *Greedy) rebuild(next []int, sums map[int]float64, cnts map[int]int) {
	pending := make(map[int]bool)
	for _, li := range g.explore {
		if li < len(g.available) {
			pending[g.available[li]] = true
		}
	}
	g.available = next
	if g.index == nil {
		g.index = make(map[int]int, len(next))
	} else {
		clear(g.index)
	}
	g.sumGain = resizeFloats(g.sumGain, len(next))
	g.cntGain = resizeInts(g.cntGain, len(next))
	g.explore = g.explore[:0]
	for li, id := range next {
		g.index[id] = li
		if c, ok := cnts[id]; ok {
			g.sumGain[li] = sums[id]
			g.cntGain[li] = c
			if pending[id] {
				g.explore = append(g.explore, li)
			}
		} else {
			// Unseen network: explore it once.
			g.explore = append(g.explore, li)
		}
	}
	g.cur = -1
}

func (g *Greedy) bestAverage() int {
	best, bestAvg, ties := 0, math.Inf(-1), 1
	for li := range g.available {
		avg := math.Inf(-1)
		if g.cntGain[li] > 0 {
			avg = g.sumGain[li] / float64(g.cntGain[li])
		}
		switch {
		case li == 0 || avg > bestAvg:
			best, bestAvg, ties = li, avg, 1
		case avg == bestAvg:
			ties++
			if g.rng.Intn(ties) == 0 {
				best = li
			}
		}
	}
	return best
}

// FullInformation is the Table II baseline with full (counterfactual)
// feedback: every slot the device learns the gain it could have obtained
// from each network and applies a multiplicative-weights update on losses
// (György & Ottucsák-style adaptive routing); it then selects a network at
// random according to the weights.
type FullInformation struct {
	rng        *rand.Rand
	available  []int
	availSpare []int // retired availability slice, recycled by SetAvailable
	index      map[int]int
	logW       []float64
	probs      []float64
	slot       int
	cur        int
	switches   int
	last       int
}

var (
	_ Policy              = (*FullInformation)(nil)
	_ FullFeedbackPolicy  = (*FullInformation)(nil)
	_ ProbabilityReporter = (*FullInformation)(nil)
	_ SwitchReporter      = (*FullInformation)(nil)
	_ Reinitializer       = (*FullInformation)(nil)
)

// NewFullInformation constructs the full-feedback baseline.
func NewFullInformation(available []int, rng *rand.Rand) *FullInformation {
	f := &FullInformation{}
	f.Reinit(available, rng)
	return f
}

// Reinit implements Reinitializer.
func (f *FullInformation) Reinit(available []int, rng *rand.Rand) {
	f.rng = rng
	f.cur, f.last = -1, -1
	f.slot, f.switches = 0, 0
	f.rebuildFull(sortedInto(f.available, available), nil)
}

// Name implements Policy.
func (f *FullInformation) Name() string { return AlgFullInformation.String() }

// Available implements Policy.
func (f *FullInformation) Available() []int { return f.available }

// Probabilities implements ProbabilityReporter.
func (f *FullInformation) Probabilities() []float64 { return f.probs }

// Switches implements SwitchReporter.
func (f *FullInformation) Switches() int { return f.switches }

// Select implements Policy.
func (f *FullInformation) Select() int {
	f.computeProbs()
	u := f.rng.Float64()
	var acc float64
	f.cur = len(f.available) - 1
	for li, pr := range f.probs {
		acc += pr
		if u < acc {
			f.cur = li
			break
		}
	}
	chosen := f.available[f.cur]
	if f.last >= 0 && chosen != f.last {
		f.switches++
	}
	f.last = chosen
	return chosen
}

// Observe implements Policy. The weight update happens in ObserveAll; this
// only advances the clock.
func (f *FullInformation) Observe(float64) { f.slot++ }

// ObserveAll implements FullFeedbackPolicy: each network's weight is updated
// multiplicatively from its loss 1−gain, with learning rate η(t) = t^{-1/3}.
func (f *FullInformation) ObserveAll(gains []float64) {
	if len(gains) != len(f.available) {
		return
	}
	eta := DecayingGamma(f.slot)
	for li, g := range gains {
		loss := 1 - clamp01(g)
		f.logW[li] -= eta * loss
	}
	maxLog := f.logW[0]
	for _, lw := range f.logW[1:] {
		if lw > maxLog {
			maxLog = lw
		}
	}
	for li := range f.logW {
		f.logW[li] -= maxLog
	}
}

// SetAvailable implements Policy.
func (f *FullInformation) SetAvailable(networks []int) {
	next := sortedInto(f.availSpare, networks)
	f.availSpare = next
	if len(next) == 0 || equalInts(next, f.available) {
		return
	}
	prior := make(map[int]float64, len(f.available))
	for li, id := range f.available {
		prior[id] = f.logW[li]
	}
	spare := f.available
	f.rebuildFull(next, prior)
	f.availSpare = spare
}

func (f *FullInformation) rebuildFull(next []int, prior map[int]float64) {
	f.available = next
	if f.index == nil {
		f.index = make(map[int]int, len(next))
	} else {
		clear(f.index)
	}
	f.logW = resizeFloats(f.logW, len(next))
	f.probs = resizeFloats(f.probs, len(next))
	for li, id := range next {
		f.index[id] = li
		if lw, ok := prior[id]; ok {
			f.logW[li] = lw
		}
		f.probs[li] = 1 / float64(len(next))
	}
	f.cur = -1
}

func (f *FullInformation) computeProbs() {
	maxLog := f.logW[0]
	for _, lw := range f.logW[1:] {
		if lw > maxLog {
			maxLog = lw
		}
	}
	var total float64
	for li, lw := range f.logW {
		f.probs[li] = math.Exp(lw - maxLog)
		total += f.probs[li]
	}
	for li := range f.probs {
		f.probs[li] /= total
	}
}

// FixedRandom is the Table II baseline that picks one network uniformly at
// random and never leaves it (unless the network disappears, in which case
// it picks again among the remaining networks).
type FixedRandom struct {
	rng        *rand.Rand
	available  []int
	availSpare []int // retired availability slice, recycled by SetAvailable
	choice     int   // global id, -1 until first Select
}

var (
	_ Policy        = (*FixedRandom)(nil)
	_ Reinitializer = (*FixedRandom)(nil)
)

// NewFixedRandom constructs the fixed-random baseline.
func NewFixedRandom(available []int, rng *rand.Rand) *FixedRandom {
	r := &FixedRandom{}
	r.Reinit(available, rng)
	return r
}

// Reinit implements Reinitializer.
func (r *FixedRandom) Reinit(available []int, rng *rand.Rand) {
	r.rng = rng
	r.available = sortedInto(r.available, available)
	r.choice = -1
}

// Name implements Policy.
func (r *FixedRandom) Name() string { return AlgFixedRandom.String() }

// Available implements Policy.
func (r *FixedRandom) Available() []int { return r.available }

// Select implements Policy.
func (r *FixedRandom) Select() int {
	if r.choice < 0 {
		r.choice = r.available[r.rng.Intn(len(r.available))]
	}
	return r.choice
}

// Observe implements Policy.
func (r *FixedRandom) Observe(float64) {}

// SetAvailable implements Policy.
func (r *FixedRandom) SetAvailable(networks []int) {
	next := sortedInto(r.availSpare, networks)
	r.availSpare = next
	if len(next) == 0 {
		return
	}
	r.availSpare = r.available
	r.available = next
	if r.choice < 0 {
		return
	}
	for _, id := range next {
		if id == r.choice {
			return
		}
	}
	r.choice = next[r.rng.Intn(len(next))]
}
