package sim

import (
	"errors"
	"slices"

	"smartexp3/internal/core"
	"smartexp3/internal/criteria"
	"smartexp3/internal/netmodel"
)

// Engine is the compiled, immutable form of a Config: the configuration is
// validated once, defaulted, deep-copied (so later caller mutations of the
// original Config cannot corrupt a run), and augmented with everything the
// slot loop wants precomputed — per-network technology and cost tables, the
// gain scale, the bandwidth vector, each device's resolved leave slot, and
// the epoch schedule (the set of slots at which any device can join, leave
// or change area, which lets the hot loop skip presence scans on all other
// slots).
//
// An Engine is safe for concurrent use: all of its state is read-only after
// construction. Each concurrent run needs its own Workspace (see
// NewWorkspace); the configured delay Samplers, Gamma schedule and
// PolicyFactory are shared across workspaces and must therefore be
// stateless, as all implementations in this module are.
type Engine struct {
	cfg         Config // defaulted and isolated; never mutated after compile
	centralized bool
	nDevices    int
	nNetworks   int
	bandwidths  []float64
	gainScale   float64
	leaves      []int            // resolved leave slot per device (Slots when absent)
	changeSlot  []bool           // per slot: some device may join, leave, or move
	isCellular  []bool           // per network
	costs       []criteria.Costs // per network; nil when cfg.Criteria is nil
}

// NewEngine validates and compiles a configuration. The returned engine
// holds a deep copy of cfg (topology, device specs and trajectories, device
// groups, network costs), so the caller may freely reuse or mutate cfg
// afterwards without affecting runs in flight.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:         isolateConfig(cfg.withDefaults()),
		centralized: cfg.Devices[0].Algorithm == core.AlgCentralized,
		nDevices:    len(cfg.Devices),
		nNetworks:   len(cfg.Topology.Networks),
	}
	c := &e.cfg
	e.bandwidths = c.Topology.Bandwidths()
	e.gainScale = c.GainScale
	e.isCellular = make([]bool, e.nNetworks)
	for i, n := range c.Topology.Networks {
		e.isCellular[i] = n.Type == netmodel.Cellular
	}
	if c.Criteria != nil {
		e.costs = make([]criteria.Costs, e.nNetworks)
		for i, n := range c.Topology.Networks {
			if c.NetworkCosts != nil {
				e.costs[i] = c.NetworkCosts[i]
			} else {
				e.costs[i] = criteria.DefaultCosts(n.Type)
			}
		}
	}
	e.leaves = make([]int, e.nDevices)
	e.changeSlot = make([]bool, c.Slots)
	e.changeSlot[0] = true
	for d, spec := range c.Devices {
		leave := spec.Leave
		if leave == 0 {
			leave = c.Slots
		}
		e.leaves[d] = leave
		if spec.Join < c.Slots {
			e.changeSlot[spec.Join] = true
		}
		if leave < c.Slots {
			e.changeSlot[leave] = true
		}
		for _, stay := range spec.Trajectory {
			if stay.FromSlot >= 0 && stay.FromSlot < c.Slots {
				e.changeSlot[stay.FromSlot] = true
			}
		}
	}
	return e, nil
}

// isolateConfig deep-copies every slice a caller could mutate after handing
// the Config to NewEngine: the topology, device specs (with trajectories),
// device groups and network costs. Samplers, the Gamma schedule and the
// PolicyFactory are immutable or stateless by contract and are shared.
func isolateConfig(c Config) Config {
	c.Topology = netmodel.Topology{
		Networks: slices.Clone(c.Topology.Networks),
		Areas:    cloneNested(c.Topology.Areas),
	}
	c.Devices = slices.Clone(c.Devices)
	for d := range c.Devices {
		c.Devices[d].Trajectory = slices.Clone(c.Devices[d].Trajectory)
	}
	c.DeviceGroups = cloneNested(c.DeviceGroups)
	c.NetworkCosts = slices.Clone(c.NetworkCosts)
	return c
}

func cloneNested[T any](xs [][]T) [][]T {
	if xs == nil {
		return nil
	}
	out := make([][]T, len(xs))
	for i := range xs {
		out[i] = slices.Clone(xs[i])
	}
	return out
}

// Config returns the engine's compiled configuration (defaults applied).
// Callers must not modify it.
func (e *Engine) Config() *Config { return &e.cfg }

// Run executes one replication seeded with seed, using ws for every piece
// of mutable state. A nil ws runs on a freshly allocated workspace. The
// result is independent of the workspace's history: Run(ws, s) returns a
// byte-identical Result for every workspace of this engine, reused or
// fresh — that is the engine's determinism contract, and the property that
// makes per-worker workspace pooling safe.
func (e *Engine) Run(ws *Workspace, seed int64) (*Result, error) {
	if ws == nil {
		ws = e.NewWorkspace()
	}
	if ws.eng != e {
		return nil, errors.New("sim: workspace was created by a different engine")
	}
	ws.reset(seed)
	for t := 0; t < e.cfg.Slots; t++ {
		if err := ws.beginSlot(t); err != nil {
			return nil, err
		}
		ws.selectAll(t)
		ws.computeShares()
		ws.settleSlot(t)
	}
	ws.finish()
	return ws.takeResult(), nil
}
