package sim

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"smartexp3/internal/core"
	"smartexp3/internal/criteria"
	"smartexp3/internal/netmodel"
)

// The golden tests pin the simulator's exact numeric output: every refactor
// of the engine hot path must reproduce the recorded fingerprints bit for
// bit (floats are compared by their hex representation). Regenerate with
//
//	go test ./internal/sim -run TestGolden -update
//
// only when a behavior change is intended and understood.
var updateGolden = flag.Bool("update", false, "rewrite the golden fingerprint file")

// goldenConfigs enumerates scenarios chosen to cover every hot path of the
// engine: static single-area runs, mobility (SetAvailable mid-run), device
// churn (join/leave epochs), measurement noise, full-information
// counterfactual feedback, the centralized coordinator, multi-criteria
// utilities, and every CollectOptions field.
func goldenConfigs() []struct {
	name string
	cfg  Config
} {
	foodcourt := netmodel.FoodCourt()
	mixed := []DeviceSpec{
		{Algorithm: core.AlgSmartEXP3, Trajectory: []AreaStay{
			{FromSlot: 0, Area: netmodel.AreaFoodCourt},
			{FromSlot: 60, Area: netmodel.AreaBusStop},
		}},
		{Algorithm: core.AlgGreedy, Join: 20},
		{Algorithm: core.AlgEXP3, Leave: 80},
		{Algorithm: core.AlgFullInformation},
		{Algorithm: core.AlgFixedRandom, Trajectory: []AreaStay{
			{FromSlot: 30, Area: netmodel.AreaStudyArea},
		}},
		{Algorithm: core.AlgSmartEXP3NoReset},
	}
	central := UniformDevices(12, core.AlgCentralized)
	for d := 4; d < 8; d++ {
		central[d].Leave = 40
	}
	central[10].Join = 30

	costTop := netmodel.Topology{
		Networks: []netmodel.Network{
			{Name: "wlan", Type: netmodel.WiFi, Bandwidth: 8},
			{Name: "cell", Type: netmodel.Cellular, Bandwidth: 22},
		},
		Areas: [][]int{{0, 1}},
	}
	balanced := criteria.Balanced()

	return []struct {
		name string
		cfg  Config
	}{
		{"static-smart-setting1", Config{
			Topology: netmodel.Setting1(),
			Devices:  UniformDevices(6, core.AlgSmartEXP3),
			Slots:    200,
			Seed:     11,
			Collect: CollectOptions{
				Distance: true, Probabilities: true, Selections: true, Bitrates: true,
			},
			DeviceGroups: [][]int{{0, 1, 2}, {3, 4, 5}},
		}},
		{"mixed-foodcourt-dynamic", Config{
			Topology:    foodcourt,
			Devices:     mixed,
			Slots:       150,
			Seed:        7,
			NoiseStdDev: 0.1,
			Collect:     CollectOptions{Distance: true, Selections: true},
		}},
		{"centralized-churn", Config{
			Topology: netmodel.Setting1(),
			Devices:  central,
			Slots:    100,
			Seed:     5,
			Collect:  CollectOptions{Distance: true},
		}},
		{"setting2-noreset-stability", Config{
			Topology: netmodel.Setting2(),
			Devices:  UniformDevices(9, core.AlgSmartEXP3NoReset),
			Slots:    400,
			Seed:     6,
			Collect:  CollectOptions{Probabilities: true},
		}},
		{"criteria-hybrid", Config{
			Topology:     costTop,
			Devices:      UniformDevices(3, core.AlgHybridBlockEXP3),
			Slots:        150,
			Seed:         9,
			Criteria:     &balanced,
			NetworkCosts: []criteria.Costs{{Energy: 0.2}, {Energy: 0.6, PricePerData: 1}},
			Collect:      CollectOptions{Bitrates: true},
		}},
	}
}

func hexf(x float64) string { return strconv.FormatFloat(x, 'x', -1, 64) }

// fingerprint renders every numeric field of a Result with bit-exact float
// formatting so the golden file detects any behavioral drift.
func fingerprint(res *Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "slots=%d slotSeconds=%s\n", res.Slots, hexf(res.SlotSeconds))
	for d := range res.Devices {
		dev := &res.Devices[d]
		fmt.Fprintf(&sb, "device %d alg=%v join=%d leave=%d switches=%d resets=%d stableFrom=%d download=%s delay=%s\n",
			d, dev.Algorithm, dev.Join, dev.Leave, dev.Switches, dev.Resets,
			dev.StableFrom, hexf(dev.DownloadMb), hexf(dev.DelaySeconds))
		if dev.Selections != nil {
			sum := 0
			for t, s := range dev.Selections {
				sum += (t + 1) * (s + 2)
			}
			fmt.Fprintf(&sb, "device %d selhash=%d\n", d, sum)
		}
		if dev.BitrateMbps != nil {
			var sum float64
			for t, b := range dev.BitrateMbps {
				sum += float64(t+1) * b
			}
			fmt.Fprintf(&sb, "device %d bitratesum=%s\n", d, hexf(sum))
		}
	}
	fmt.Fprintf(&sb, "fracAtNE=%s fracAtEps=%s unused=%s total=%s\n",
		hexf(res.FracAtNE), hexf(res.FracAtEps), hexf(res.UnusedMb), hexf(res.TotalMb))
	if res.Distance != nil {
		var sum float64
		for t, d := range res.Distance {
			sum += float64(t+1) * d
		}
		fmt.Fprintf(&sb, "distsum=%s\n", hexf(sum))
	}
	for g := range res.GroupDistance {
		var sum float64
		for t, d := range res.GroupDistance[g] {
			sum += float64(t+1) * d
		}
		fmt.Fprintf(&sb, "groupdistsum %d=%s\n", g, hexf(sum))
	}
	fmt.Fprintf(&sb, "stability valid=%v stable=%v slot=%d atNash=%v\n",
		res.StabilityValid, res.Stability.Stable, res.Stability.Slot, res.Stability.AtNash)
	return sb.String()
}

func TestGoldenFingerprints(t *testing.T) {
	var sb strings.Builder
	for _, gc := range goldenConfigs() {
		res, err := Run(gc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", gc.name, err)
		}
		fmt.Fprintf(&sb, "=== %s\n%s", gc.name, fingerprint(res))
	}
	got := sb.String()

	path := filepath.Join("testdata", "golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Fatalf("simulation output drifted from the recorded golden values.\n"+
			"If this change is intentional, regenerate with: go test ./internal/sim -run TestGolden -update\n%s",
			firstDiff(got, string(want)))
	}
}

// firstDiff locates the first differing line for a readable failure message.
func firstDiff(got, want string) string {
	g := strings.Split(got, "\n")
	w := strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("first difference at line %d:\n  got:  %s\n  want: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("outputs differ in length: got %d lines, want %d", len(g), len(w))
}
