package sim

import (
	"fmt"
	"math"
	"math/rand"

	"smartexp3/internal/core"
	"smartexp3/internal/criteria"
	"smartexp3/internal/game"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/rngutil"
)

// runner holds the mutable state of one simulation run.
type runner struct {
	cfg         Config
	centralized bool

	policies []core.Policy
	rngs     []*rand.Rand // per-device stream (policy + delay + noise)
	areas    []int        // current area per device
	active   []bool
	choices  []int // current slot's network per device (-1 inactive)
	lastNet  []int // previous slot's network per device (-1 none)

	// Epoch-scoped NE cache.
	activeList []int // device ids active this epoch, ascending
	instance   game.Instance
	prepared   *game.PreparedNE
	coordNets  []int // centralized coordinator's assignment (per device id)

	// Per-slot scratch.
	counts   []int
	bitrates []float64

	// Stability recording.
	argmaxRec [][]int
	probRec   [][]float64

	res        *Result
	atNESlots  int
	atEpsSlots int
	distSlots  int
}

func newRunner(cfg Config) *runner {
	n := len(cfg.Devices)
	r := &runner{
		cfg:         cfg,
		centralized: cfg.Devices[0].Algorithm == core.AlgCentralized,
		policies:    make([]core.Policy, n),
		rngs:        make([]*rand.Rand, n),
		areas:       make([]int, n),
		active:      make([]bool, n),
		choices:     make([]int, n),
		lastNet:     make([]int, n),
		coordNets:   make([]int, n),
		counts:      make([]int, len(cfg.Topology.Networks)),
		bitrates:    make([]float64, n),
	}
	for d := range r.lastNet {
		r.lastNet[d] = -1
		r.choices[d] = -1
		r.coordNets[d] = -1
		r.areas[d] = -1
		r.rngs[d] = rngutil.NewChild(cfg.Seed, int64(d))
	}
	r.res = &Result{
		Slots:       cfg.Slots,
		SlotSeconds: cfg.SlotSeconds,
		Devices:     make([]DeviceResult, n),
	}
	for d, spec := range cfg.Devices {
		leave := spec.Leave
		if leave == 0 {
			leave = cfg.Slots
		}
		r.res.Devices[d] = DeviceResult{
			Algorithm:         spec.Algorithm,
			Join:              spec.Join,
			Leave:             leave,
			PresentThroughout: spec.Join == 0 && leave >= cfg.Slots,
			StableFrom:        -1,
		}
		if cfg.Collect.Selections {
			r.res.Devices[d].Selections = filledInts(cfg.Slots, -1)
		}
		if cfg.Collect.Bitrates {
			r.res.Devices[d].BitrateMbps = filledFloats(cfg.Slots, -1)
		}
	}
	if cfg.Collect.Distance {
		r.res.Distance = make([]float64, cfg.Slots)
		r.res.GroupDistance = make([][]float64, len(cfg.DeviceGroups))
		for g := range r.res.GroupDistance {
			r.res.GroupDistance[g] = make([]float64, cfg.Slots)
		}
	}
	if cfg.Collect.Probabilities {
		r.argmaxRec = make([][]int, n)
		r.probRec = make([][]float64, n)
		for d := range r.argmaxRec {
			r.argmaxRec[d] = make([]int, 0, cfg.Slots)
			r.probRec[d] = make([]float64, 0, cfg.Slots)
		}
	}
	return r
}

func (r *runner) run() (*Result, error) {
	for t := 0; t < r.cfg.Slots; t++ {
		if err := r.beginSlot(t); err != nil {
			return nil, err
		}
		r.selectAll(t)
		r.computeShares()
		r.settleSlot(t)
	}
	r.finish()
	return r.res, nil
}

// beginSlot updates device presence and availability, (re)creates policies
// for devices that just joined, and refreshes the NE cache on epoch changes.
func (r *runner) beginSlot(t int) error {
	changed := false
	for d, spec := range r.cfg.Devices {
		nowActive := r.deviceActive(d, t)
		area := r.areaAt(d, t)
		if nowActive != r.active[d] {
			changed = true
		}
		if nowActive && area != r.areas[d] {
			changed = true
		}
		switch {
		case nowActive && !r.active[d]:
			avail := r.cfg.Topology.Areas[area]
			if !r.centralized {
				var (
					pol core.Policy
					err error
				)
				if r.cfg.PolicyFactory != nil {
					pol, err = r.cfg.PolicyFactory(d, avail, r.rngs[d])
				} else {
					pol, err = core.New(spec.Algorithm, avail, r.cfg.Core, r.rngs[d])
				}
				if err != nil {
					return fmt.Errorf("sim: device %d: %w", d, err)
				}
				r.policies[d] = pol
			}
			r.lastNet[d] = -1
		case nowActive && area != r.areas[d] && r.areas[d] >= 0:
			if !r.centralized {
				r.policies[d].SetAvailable(r.cfg.Topology.Areas[area])
			}
		case !nowActive && r.active[d]:
			// Capture policy-side counters before releasing the policy.
			if p, ok := r.policies[d].(core.ResetReporter); ok {
				r.res.Devices[d].Resets = p.Resets()
			}
			r.policies[d] = nil
			r.lastNet[d] = -1
		}
		r.active[d] = nowActive
		if nowActive {
			r.areas[d] = area
		}
	}
	if changed || r.prepared == nil {
		return r.refreshEpoch()
	}
	return nil
}

// refreshEpoch rebuilds the cached NE for the current active set and, for
// the Centralized baseline, recomputes the coordinator's assignment with
// minimal churn (best-response dynamics seeded from the previous one).
func (r *runner) refreshEpoch() error {
	r.activeList = r.activeList[:0]
	for d := range r.cfg.Devices {
		if r.active[d] {
			r.activeList = append(r.activeList, d)
		}
	}
	if len(r.activeList) == 0 {
		r.prepared = nil
		return nil
	}
	r.instance = game.Instance{
		Bandwidths: r.cfg.Topology.Bandwidths(),
		Devices:    make([]game.Device, len(r.activeList)),
	}
	for i, d := range r.activeList {
		r.instance.Devices[i] = game.Device{Available: r.cfg.Topology.Areas[r.areas[d]]}
	}
	prep, err := game.Prepare(r.instance)
	if err != nil {
		return err
	}
	r.prepared = prep

	if r.centralized {
		seed := make([]int, len(r.activeList))
		for i, d := range r.activeList {
			seed[i] = r.coordNets[d]
		}
		assign := r.instance.NashAssignmentFrom(seed)
		for i, d := range r.activeList {
			r.coordNets[d] = assign[i]
		}
	}
	return nil
}

// selectAll asks every active device for its network choice this slot.
func (r *runner) selectAll(t int) {
	for d := range r.cfg.Devices {
		if !r.active[d] {
			r.choices[d] = -1
			continue
		}
		if r.centralized {
			r.choices[d] = r.coordNets[d]
		} else {
			r.choices[d] = r.policies[d].Select()
		}
		if r.cfg.Collect.Selections {
			r.res.Devices[d].Selections[t] = r.choices[d]
		}
	}
	if r.cfg.Collect.Probabilities {
		r.recordProbabilities()
	}
}

// computeShares derives each active device's observed bit rate: the equal
// share of its network's bandwidth, optionally perturbed by measurement
// noise.
func (r *runner) computeShares() {
	for i := range r.counts {
		r.counts[i] = 0
	}
	for d := range r.cfg.Devices {
		if r.choices[d] >= 0 {
			r.counts[r.choices[d]]++
		}
	}
	for d := range r.cfg.Devices {
		if r.choices[d] < 0 {
			r.bitrates[d] = 0
			continue
		}
		share := game.Share(r.cfg.Topology.Networks[r.choices[d]].Bandwidth, r.counts[r.choices[d]])
		if r.cfg.NoiseStdDev > 0 {
			factor := 1 + r.cfg.NoiseStdDev*r.rngs[d].NormFloat64()
			share *= math.Min(math.Max(factor, 0), 2)
		}
		r.bitrates[d] = share
	}
}

// settleSlot applies switching delays, accumulates goodput, feeds policies
// their feedback, and records the slot's metrics.
func (r *runner) settleSlot(t int) {
	for d := range r.cfg.Devices {
		if r.choices[d] < 0 {
			continue
		}
		dev := &r.res.Devices[d]
		var delay float64
		if r.lastNet[d] >= 0 && r.choices[d] != r.lastNet[d] {
			dev.Switches++
			delay = math.Min(r.sampleDelay(d, r.choices[d]), r.cfg.SlotSeconds)
			dev.DelaySeconds += delay
		}
		dev.DownloadMb += r.bitrates[d] * (r.cfg.SlotSeconds - delay)
		if r.cfg.Collect.Bitrates {
			dev.BitrateMbps[t] = r.bitrates[d]
		}

		if !r.centralized {
			gain := r.gainOf(r.bitrates[d], r.choices[d])
			pol := r.policies[d]
			pol.Observe(gain)
			if full, ok := pol.(core.FullFeedbackPolicy); ok {
				full.ObserveAll(r.counterfactualGains(d))
			}
		}
		r.lastNet[d] = r.choices[d]
	}

	// Unutilized resources: bandwidth-time of idle networks.
	for i, c := range r.counts {
		bwTime := r.cfg.Topology.Networks[i].Bandwidth * r.cfg.SlotSeconds
		r.res.TotalMb += bwTime
		if c == 0 {
			r.res.UnusedMb += bwTime
		}
	}

	r.recordDistance(t)
}

// counterfactualGains computes, for a FullFeedbackPolicy device, the gain it
// would have observed on each of its available networks this slot: its own
// share where it is, and bandwidth/(count+1) elsewhere.
func (r *runner) counterfactualGains(d int) []float64 {
	avail := r.policies[d].Available()
	gains := make([]float64, len(avail))
	for i, net := range avail {
		var share float64
		if net == r.choices[d] {
			share = r.bitrates[d]
		} else {
			share = game.Share(r.cfg.Topology.Networks[net].Bandwidth, r.counts[net]+1)
		}
		gains[i] = r.gainOf(share, net)
	}
	return gains
}

// gainOf maps an observed bit rate into the [0,1] gain the policy sees,
// folding in the configured multi-criteria utility when present.
func (r *runner) gainOf(bitrate float64, net int) float64 {
	gain := clampUnit(bitrate / r.cfg.GainScale)
	if r.cfg.Criteria == nil {
		return gain
	}
	var costs criteria.Costs
	if r.cfg.NetworkCosts != nil {
		costs = r.cfg.NetworkCosts[net]
	} else {
		costs = criteria.DefaultCosts(r.cfg.Topology.Networks[net].Type)
	}
	return r.cfg.Criteria.Utility(gain, costs)
}

func (r *runner) sampleDelay(d, net int) float64 {
	if r.cfg.Topology.Networks[net].Type == netmodel.Cellular {
		return math.Max(r.cfg.CellularDelay.Sample(r.rngs[d]), 0)
	}
	return math.Max(r.cfg.WiFiDelay.Sample(r.rngs[d]), 0)
}

// recordDistance evaluates the Definition 3 metric for the slot, overall and
// per configured device group, and the at-NE / at-ε accounting.
func (r *runner) recordDistance(t int) {
	if r.prepared == nil || len(r.activeList) == 0 {
		return
	}
	gains := make([]float64, len(r.activeList))
	indexOf := make(map[int]int, len(r.activeList))
	assign := make([]int, len(r.activeList))
	for i, d := range r.activeList {
		gains[i] = r.bitrates[d]
		indexOf[d] = i
		assign[i] = r.choices[d]
	}

	r.distSlots++
	if r.instance.IsNashAssignment(assign) {
		r.atNESlots++
	}

	if r.cfg.Collect.Distance {
		r.res.Distance[t] = r.prepared.Distance(gains, nil)
		for g, members := range r.cfg.DeviceGroups {
			var idx []int
			for _, d := range members {
				if i, ok := indexOf[d]; ok {
					idx = append(idx, i)
				}
			}
			if len(idx) > 0 {
				r.res.GroupDistance[g][t] = r.prepared.Distance(gains, idx)
			}
		}
		if r.res.Distance[t] <= r.cfg.EpsilonPercent {
			r.atEpsSlots++
		}
	} else {
		// ε accounting still needs the overall distance.
		if r.prepared.Distance(gains, nil) <= r.cfg.EpsilonPercent {
			r.atEpsSlots++
		}
	}
}

// recordProbabilities snapshots each active device's selection-distribution
// peak for stable-state detection. Devices without a probability
// distribution (Greedy, Fixed Random, Centralized) record nothing.
func (r *runner) recordProbabilities() {
	for d := range r.cfg.Devices {
		if !r.active[d] || r.policies[d] == nil {
			continue
		}
		rep, ok := r.policies[d].(core.ProbabilityReporter)
		if !ok {
			continue
		}
		probs := rep.Probabilities()
		avail := r.policies[d].Available()
		best, bestP := -1, -1.0
		for i, p := range probs {
			if p > bestP {
				best, bestP = avail[i], p
			}
		}
		r.argmaxRec[d] = append(r.argmaxRec[d], best)
		r.probRec[d] = append(r.probRec[d], bestP)
	}
}

// finish computes run-level aggregates: fraction of time at (ε-)equilibrium,
// per-device stability, and the Definition 2 run verdict.
func (r *runner) finish() {
	if r.distSlots > 0 {
		r.res.FracAtNE = float64(r.atNESlots) / float64(r.distSlots)
		r.res.FracAtEps = float64(r.atEpsSlots) / float64(r.distSlots)
	}
	for d := range r.cfg.Devices {
		if p, ok := r.policies[d].(core.ResetReporter); ok && p != nil {
			r.res.Devices[d].Resets = p.Resets()
		}
	}
	if !r.cfg.Collect.Probabilities {
		return
	}
	// Definition 2 needs every device observable for the whole horizon with
	// a probability distribution.
	allEligible := true
	for d := range r.cfg.Devices {
		if !r.res.Devices[d].PresentThroughout || len(r.argmaxRec[d]) != r.cfg.Slots {
			allEligible = false
		}
		r.res.Devices[d].StableFrom = game.StableFrom(r.argmaxRec[d], r.probRec[d])
	}
	if allEligible {
		r.res.Stability = game.DetectStability(
			r.cfg.Topology.Bandwidths(), r.argmaxRec, r.probRec)
		r.res.StabilityValid = true
	}
}

func (r *runner) deviceActive(d, t int) bool {
	spec := r.cfg.Devices[d]
	leave := spec.Leave
	if leave == 0 {
		leave = r.cfg.Slots
	}
	return t >= spec.Join && t < leave
}

func (r *runner) areaAt(d, t int) int {
	area := 0
	for _, stay := range r.cfg.Devices[d].Trajectory {
		if t >= stay.FromSlot {
			area = stay.Area
		} else {
			break
		}
	}
	return area
}

func clampUnit(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func filledInts(n, v int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func filledFloats(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
