package sim

import (
	"fmt"
	"math"
	"math/rand"

	"smartexp3/internal/core"
	"smartexp3/internal/dist"
	"smartexp3/internal/game"
	"smartexp3/internal/rngutil"
)

// Workspace holds every piece of mutable state one replication touches:
// per-device RNG streams, policies, presence and area tracking, the per-slot
// choice/occupancy/bitrate vectors, the epoch-scoped NE cache, the batched
// delay-sampling buffers, and the stability recorders. A workspace is reset
// and reused across replications — after the first run of a batch the slot
// loop performs no heap allocation beyond the Result it returns — which is
// what makes a Monte Carlo batch cheap: one workspace per worker, reused for
// the worker's whole batch.
//
// A workspace belongs to the engine that created it and must only be used by
// one goroutine at a time. Reuse never leaks state between runs: reset
// returns every field to its initial value and policies are reinitialized
// through core.Reinitializer, so engine.Run(ws, seed) is a pure function of
// (engine, seed).
type Workspace struct {
	eng *Engine

	policies []core.Policy              // active policy per device; nil while inactive
	spare    []core.Policy              // pooled policy objects reused across joins/runs
	fullPols []core.FullFeedbackPolicy  // cached assertion; nil when not full-feedback
	probPols []core.ProbabilityReporter // cached assertion; nil when not a reporter
	rngs     []*rand.Rand               // per-device stream (policy + delay + noise)
	srcs     []*rngutil.Source          // the sources behind rngs, for batched reseeding
	seeds    []int64                    // reseeding scratch
	areas    []int                      // current area per device
	trajPos  []int                      // index of the device's last applied trajectory stay
	active   []bool
	choices  []int // current slot's network per device (-1 inactive)
	lastNet  []int // previous slot's network per device (-1 none)

	// Epoch-scoped NE cache. prepared points at neCache when an epoch is
	// prepared and is nil otherwise; neCache's buffers persist across epochs
	// and replications, so refreshing the NE on churn allocates nothing
	// after the workspace's first epoch (game.PrepareInto).
	activeList []int // device ids active this epoch, ascending
	idxOf      []int // device id → index in activeList, -1 when inactive
	instance   game.Instance
	neCache    game.PreparedNE
	prepared   *game.PreparedNE
	distEval   *game.DistanceEval
	coordNets  []int              // centralized coordinator's assignment (per device id)
	seedBuf    []int              // coordinator churn seeding scratch
	coordSolve game.AssignScratch // coordinator NE solve buffers

	// Per-slot scratch.
	counts    []int
	bitrates  []float64
	delays    []float64 // sampled switching delay per device this slot
	gains     []float64 // active-device gains, activeList order
	assign    []int     // active-device choices, activeList order
	memberIdx []int     // group-distance member indices scratch
	cfGains   []float64 // counterfactual gains scratch

	// Batched switching-delay sampling: switchers are partitioned by target
	// technology and sampled with one dist.SampleInto call per technology.
	wifiDevs, cellDevs []int
	wifiRngs, cellRngs []*rand.Rand
	wifiBuf, cellBuf   []float64

	// Distance fast path: when no device switched since the previous slot
	// of the same epoch (and rates are noise-free), every bitrate — and
	// therefore the whole Definition 3 evaluation — is unchanged, so the
	// cached slot metrics are replayed instead of recomputed. Converged
	// populations hit this on almost every slot.
	distCacheOK  bool
	prevAssign   []int
	prevAtNE     bool
	prevEpsHit   bool
	prevDist     float64
	prevGroupSet []bool
	prevGroup    []float64

	// Stability recording.
	argmaxRec [][]int
	probRec   [][]float64

	res        *Result
	atNESlots  int
	atEpsSlots int
	distSlots  int
}

// NewWorkspace allocates a workspace sized for the engine's configuration.
// The first Run through a workspace performs the one-time allocations
// (policies, RNG streams, recorders); subsequent runs reuse all of them.
func (e *Engine) NewWorkspace() *Workspace {
	n := e.nDevices
	ws := &Workspace{
		eng:       e,
		policies:  make([]core.Policy, n),
		spare:     make([]core.Policy, n),
		fullPols:  make([]core.FullFeedbackPolicy, n),
		probPols:  make([]core.ProbabilityReporter, n),
		rngs:      make([]*rand.Rand, n),
		srcs:      make([]*rngutil.Source, n),
		seeds:     make([]int64, n),
		areas:     make([]int, n),
		trajPos:   make([]int, n),
		active:    make([]bool, n),
		choices:   make([]int, n),
		lastNet:   make([]int, n),
		idxOf:     make([]int, n),
		coordNets: make([]int, n),
		counts:    make([]int, e.nNetworks),
		bitrates:  make([]float64, n),
		delays:    make([]float64, n),
	}
	ws.prevGroup = make([]float64, len(e.cfg.DeviceGroups))
	ws.prevGroupSet = make([]bool, len(e.cfg.DeviceGroups))
	if e.cfg.Collect.Probabilities {
		ws.argmaxRec = make([][]int, n)
		ws.probRec = make([][]float64, n)
		for d := range ws.argmaxRec {
			ws.argmaxRec[d] = make([]int, 0, e.cfg.Slots)
			ws.probRec[d] = make([]float64, 0, e.cfg.Slots)
		}
	}
	return ws
}

// reset prepares the workspace for a fresh replication: every per-device
// stream is reseeded from (seed, device), all tracking state returns to its
// initial value, and a new Result is allocated (the Result is the one object
// a run must hand over to the caller; everything else is reused).
func (ws *Workspace) reset(seed int64) {
	e := ws.eng
	cfg := &e.cfg
	n := e.nDevices
	if ws.srcs[0] == nil {
		for d := 0; d < n; d++ {
			ws.srcs[d] = &rngutil.Source{}
			ws.rngs[d] = rand.New(ws.srcs[d])
		}
	}
	// Reseed every device stream in one batched pass: the independent seed
	// chains run in lockstep, which is ~3× faster than serial reseeding and
	// is the dominant fixed cost of a short replication.
	for d := 0; d < n; d++ {
		ws.seeds[d] = rngutil.ChildSeed(seed, int64(d))
	}
	rngutil.SeedAll(ws.srcs, ws.seeds)
	for d := 0; d < n; d++ {
		if ws.policies[d] != nil {
			ws.spare[d] = ws.policies[d]
			ws.policies[d] = nil
		}
		ws.fullPols[d] = nil
		ws.probPols[d] = nil
		ws.areas[d] = -1
		ws.trajPos[d] = -1
		ws.active[d] = false
		ws.choices[d] = -1
		ws.lastNet[d] = -1
		ws.coordNets[d] = -1
		ws.idxOf[d] = -1
	}
	ws.activeList = ws.activeList[:0]
	ws.prepared = nil // distEval is retargeted per epoch, keep its buffers
	ws.distCacheOK = false
	ws.atNESlots, ws.atEpsSlots, ws.distSlots = 0, 0, 0
	if cfg.Collect.Probabilities {
		for d := range ws.argmaxRec {
			ws.argmaxRec[d] = ws.argmaxRec[d][:0]
			ws.probRec[d] = ws.probRec[d][:0]
		}
	}

	ws.res = &Result{
		Slots:       cfg.Slots,
		SlotSeconds: cfg.SlotSeconds,
		Devices:     make([]DeviceResult, n),
	}
	for d, spec := range cfg.Devices {
		ws.res.Devices[d] = DeviceResult{
			Algorithm:         spec.Algorithm,
			Join:              spec.Join,
			Leave:             e.leaves[d],
			PresentThroughout: spec.Join == 0 && e.leaves[d] >= cfg.Slots,
			StableFrom:        -1,
		}
		if cfg.Collect.Selections {
			ws.res.Devices[d].Selections = filledInts(cfg.Slots, -1)
		}
		if cfg.Collect.Bitrates {
			ws.res.Devices[d].BitrateMbps = filledFloats(cfg.Slots, -1)
		}
	}
	if cfg.Collect.Distance {
		ws.res.Distance = make([]float64, cfg.Slots)
		ws.res.GroupDistance = make([][]float64, len(cfg.DeviceGroups))
		for g := range ws.res.GroupDistance {
			ws.res.GroupDistance[g] = make([]float64, cfg.Slots)
		}
	}
}

// takeResult detaches the finished Result from the workspace so the next
// reset cannot touch what the caller received.
func (ws *Workspace) takeResult() *Result {
	res := ws.res
	ws.res = nil
	return res
}

// beginSlot updates device presence and availability, (re)initializes
// policies for devices that just joined, and refreshes the NE cache on epoch
// changes. Slots at which no device can join, leave or move — precomputed in
// the engine's epoch schedule — skip the scan entirely.
func (ws *Workspace) beginSlot(t int) error {
	e := ws.eng
	if t > 0 && !e.changeSlot[t] {
		return nil
	}
	changed := false
	for d := range e.cfg.Devices {
		spec := &e.cfg.Devices[d]
		nowActive := t >= spec.Join && t < e.leaves[d]
		area := ws.advanceArea(d, t)
		if nowActive != ws.active[d] {
			changed = true
		}
		if nowActive && area != ws.areas[d] {
			changed = true
		}
		switch {
		case nowActive && !ws.active[d]:
			if !e.centralized {
				if err := ws.installPolicy(d, spec, e.cfg.Topology.Areas[area]); err != nil {
					return err
				}
			}
			ws.lastNet[d] = -1
		case nowActive && area != ws.areas[d] && ws.areas[d] >= 0:
			if !e.centralized {
				ws.policies[d].SetAvailable(e.cfg.Topology.Areas[area])
			}
		case !nowActive && ws.active[d]:
			// Capture policy-side counters before releasing the policy; the
			// object itself goes back to the per-device pool for reuse.
			if p, ok := ws.policies[d].(core.ResetReporter); ok {
				ws.res.Devices[d].Resets = p.Resets()
			}
			if e.cfg.PolicyFactory == nil {
				ws.spare[d] = ws.policies[d]
			}
			ws.policies[d] = nil
			ws.fullPols[d] = nil
			ws.probPols[d] = nil
			ws.lastNet[d] = -1
		}
		ws.active[d] = nowActive
		if nowActive {
			ws.areas[d] = area
		}
	}
	if changed || ws.prepared == nil {
		return ws.refreshEpoch()
	}
	return nil
}

// advanceArea returns device d's area at slot t, advancing the trajectory
// cursor. Trajectories list stays in FromSlot order, so the cursor only ever
// moves forward; the scan the old runner did per slot is amortized O(1).
func (ws *Workspace) advanceArea(d, t int) int {
	traj := ws.eng.cfg.Devices[d].Trajectory
	for ws.trajPos[d]+1 < len(traj) && traj[ws.trajPos[d]+1].FromSlot <= t {
		ws.trajPos[d]++
	}
	if ws.trajPos[d] >= 0 {
		return traj[ws.trajPos[d]].Area
	}
	return 0
}

// installPolicy places a ready-to-run policy for a joining device: the
// configured factory when set, otherwise the device's pooled policy
// reinitialized in place, otherwise a newly constructed one (first join of
// this workspace).
func (ws *Workspace) installPolicy(d int, spec *DeviceSpec, avail []int) error {
	e := ws.eng
	if e.cfg.PolicyFactory != nil {
		pol, err := e.cfg.PolicyFactory(d, avail, ws.rngs[d])
		if err != nil {
			return fmt.Errorf("sim: device %d: %w", d, err)
		}
		ws.adoptPolicy(d, pol)
		return nil
	}
	if ri, ok := ws.spare[d].(core.Reinitializer); ok {
		ri.Reinit(avail, ws.rngs[d])
		ws.adoptPolicy(d, ri)
		ws.spare[d] = nil
		return nil
	}
	pol, err := core.New(spec.Algorithm, avail, e.cfg.Core, ws.rngs[d])
	if err != nil {
		return fmt.Errorf("sim: device %d: %w", d, err)
	}
	ws.adoptPolicy(d, pol)
	return nil
}

// adoptPolicy activates a policy for device d, caching the interface
// assertions the slot loop would otherwise repeat every slot.
func (ws *Workspace) adoptPolicy(d int, pol core.Policy) {
	ws.policies[d] = pol
	ws.fullPols[d], _ = pol.(core.FullFeedbackPolicy)
	ws.probPols[d], _ = pol.(core.ProbabilityReporter)
}

// refreshEpoch rebuilds the cached NE for the current active set and, for
// the Centralized baseline, recomputes the coordinator's assignment with
// minimal churn (best-response dynamics seeded from the previous one).
func (ws *Workspace) refreshEpoch() error {
	e := ws.eng
	ws.activeList = ws.activeList[:0]
	for d := range ws.idxOf {
		ws.idxOf[d] = -1
	}
	for d := range e.cfg.Devices {
		if ws.active[d] {
			ws.idxOf[d] = len(ws.activeList)
			ws.activeList = append(ws.activeList, d)
		}
	}
	if len(ws.activeList) == 0 {
		ws.prepared = nil
		return nil
	}
	ws.instance.Bandwidths = e.bandwidths
	ws.instance.Devices = ws.instance.Devices[:0]
	for _, d := range ws.activeList {
		ws.instance.Devices = append(ws.instance.Devices,
			game.Device{Available: e.cfg.Topology.Areas[ws.areas[d]]})
	}
	if err := ws.neCache.PrepareInto(ws.instance); err != nil {
		return err
	}
	ws.prepared = &ws.neCache
	ws.distCacheOK = false
	if ws.distEval == nil {
		ws.distEval = ws.prepared.NewEval()
	} else {
		ws.distEval.Reset(ws.prepared)
	}

	if e.centralized {
		ws.seedBuf = ws.seedBuf[:0]
		for _, d := range ws.activeList {
			ws.seedBuf = append(ws.seedBuf, ws.coordNets[d])
		}
		assign := ws.instance.NashAssignmentFromScratch(ws.seedBuf, &ws.coordSolve)
		for i, d := range ws.activeList {
			ws.coordNets[d] = assign[i]
		}
	}
	return nil
}

// selectAll asks every active device for its network choice this slot.
//
//repolint:allocfree via TestWorkspaceSteadyStateAllocs
func (ws *Workspace) selectAll(t int) {
	e := ws.eng
	for d := range e.cfg.Devices {
		if !ws.active[d] {
			ws.choices[d] = -1
			continue
		}
		if e.centralized {
			ws.choices[d] = ws.coordNets[d]
		} else {
			ws.choices[d] = ws.policies[d].Select()
		}
		if e.cfg.Collect.Selections {
			ws.res.Devices[d].Selections[t] = ws.choices[d]
		}
	}
	if e.cfg.Collect.Probabilities {
		ws.recordProbabilities()
	}
}

// computeShares derives each active device's observed bit rate: the equal
// share of its network's bandwidth, optionally perturbed by measurement
// noise.
//
//repolint:allocfree via TestWorkspaceSteadyStateAllocs
func (ws *Workspace) computeShares() {
	e := ws.eng
	for i := range ws.counts {
		ws.counts[i] = 0
	}
	for d := range e.cfg.Devices {
		if ws.choices[d] >= 0 {
			ws.counts[ws.choices[d]]++
		}
	}
	for d := range e.cfg.Devices {
		if ws.choices[d] < 0 {
			ws.bitrates[d] = 0
			continue
		}
		share := game.Share(e.bandwidths[ws.choices[d]], ws.counts[ws.choices[d]])
		if e.cfg.NoiseStdDev > 0 {
			factor := 1 + e.cfg.NoiseStdDev*ws.rngs[d].NormFloat64()
			share *= math.Min(math.Max(factor, 0), 2)
		}
		ws.bitrates[d] = share
	}
}

// sampleDelays batches this slot's switching-delay draws: switchers are
// partitioned by the technology they switch to and each partition is filled
// with one dist.SampleInto call, so the loop pays one dynamic dispatch per
// technology instead of one per switching device. Each draw still comes from
// the switching device's own RNG stream, so batching leaves every stream —
// and therefore every aggregate — bit-identical to per-device sampling.
//
//repolint:allocfree via TestWorkspaceSteadyStateAllocs
func (ws *Workspace) sampleDelays() {
	e := ws.eng
	ws.wifiDevs, ws.cellDevs = ws.wifiDevs[:0], ws.cellDevs[:0]
	ws.wifiRngs, ws.cellRngs = ws.wifiRngs[:0], ws.cellRngs[:0]
	for d := range e.cfg.Devices {
		if ws.choices[d] < 0 || ws.lastNet[d] < 0 || ws.choices[d] == ws.lastNet[d] {
			continue
		}
		if e.isCellular[ws.choices[d]] {
			//repolint:ignore allocfree append into workspace scratch that reaches device-count capacity after the first slot and is retained for the run
			ws.cellDevs = append(ws.cellDevs, d)
			//repolint:ignore allocfree append into workspace scratch that reaches device-count capacity after the first slot and is retained for the run
			ws.cellRngs = append(ws.cellRngs, ws.rngs[d])
		} else {
			//repolint:ignore allocfree append into workspace scratch that reaches device-count capacity after the first slot and is retained for the run
			ws.wifiDevs = append(ws.wifiDevs, d)
			//repolint:ignore allocfree append into workspace scratch that reaches device-count capacity after the first slot and is retained for the run
			ws.wifiRngs = append(ws.wifiRngs, ws.rngs[d])
		}
	}
	if len(ws.wifiDevs) > 0 {
		ws.wifiBuf = growFloats(ws.wifiBuf, len(ws.wifiDevs))
		dist.SampleInto(e.cfg.WiFiDelay, ws.wifiRngs, ws.wifiBuf)
		for i, d := range ws.wifiDevs {
			ws.delays[d] = math.Min(math.Max(ws.wifiBuf[i], 0), e.cfg.SlotSeconds)
		}
	}
	if len(ws.cellDevs) > 0 {
		ws.cellBuf = growFloats(ws.cellBuf, len(ws.cellDevs))
		dist.SampleInto(e.cfg.CellularDelay, ws.cellRngs, ws.cellBuf)
		for i, d := range ws.cellDevs {
			ws.delays[d] = math.Min(math.Max(ws.cellBuf[i], 0), e.cfg.SlotSeconds)
		}
	}
}

// settleSlot applies switching delays, accumulates goodput, feeds policies
// their feedback, and records the slot's metrics.
//
//repolint:allocfree via TestWorkspaceSteadyStateAllocs
func (ws *Workspace) settleSlot(t int) {
	e := ws.eng
	ws.sampleDelays()
	for d := range e.cfg.Devices {
		if ws.choices[d] < 0 {
			continue
		}
		dev := &ws.res.Devices[d]
		var delay float64
		if ws.lastNet[d] >= 0 && ws.choices[d] != ws.lastNet[d] {
			dev.Switches++
			delay = ws.delays[d]
			dev.DelaySeconds += delay
		}
		dev.DownloadMb += ws.bitrates[d] * (e.cfg.SlotSeconds - delay)
		if e.cfg.Collect.Bitrates {
			dev.BitrateMbps[t] = ws.bitrates[d]
		}

		if !e.centralized {
			ws.policies[d].Observe(ws.gainOf(ws.bitrates[d], ws.choices[d]))
			if full := ws.fullPols[d]; full != nil {
				full.ObserveAll(ws.counterfactualGains(d))
			}
		}
		ws.lastNet[d] = ws.choices[d]
	}

	// Unutilized resources: bandwidth-time of idle networks.
	for i, c := range ws.counts {
		bwTime := e.bandwidths[i] * e.cfg.SlotSeconds
		ws.res.TotalMb += bwTime
		if c == 0 {
			ws.res.UnusedMb += bwTime
		}
	}

	ws.recordDistance(t)
}

// counterfactualGains computes, for a FullFeedbackPolicy device, the gain it
// would have observed on each of its available networks this slot: its own
// share where it is, and bandwidth/(count+1) elsewhere. The returned slice
// is workspace scratch, valid until the next call.
//
//repolint:allocfree via TestWorkspaceSteadyStateAllocs
func (ws *Workspace) counterfactualGains(d int) []float64 {
	e := ws.eng
	avail := ws.policies[d].Available()
	ws.cfGains = growFloats(ws.cfGains, len(avail))
	for i, net := range avail {
		var share float64
		if net == ws.choices[d] {
			share = ws.bitrates[d]
		} else {
			share = game.Share(e.bandwidths[net], ws.counts[net]+1)
		}
		ws.cfGains[i] = ws.gainOf(share, net)
	}
	return ws.cfGains
}

// gainOf maps an observed bit rate into the [0,1] gain the policy sees,
// folding in the configured multi-criteria utility when present.
//
//repolint:allocfree via TestWorkspaceSteadyStateAllocs
func (ws *Workspace) gainOf(bitrate float64, net int) float64 {
	e := ws.eng
	gain := clampUnit(bitrate / e.gainScale)
	if e.costs == nil {
		return gain
	}
	return e.cfg.Criteria.Utility(gain, e.costs[net])
}

// recordDistance evaluates the Definition 3 metric for the slot, overall and
// per configured device group, and the at-NE / at-ε accounting — all through
// workspace scratch and the epoch's reusable DistanceEval, so the per-slot
// metric costs no allocation. When the assignment is identical to the
// previous slot of the same epoch and bit rates are noise-free, every input
// of the metric is unchanged and the cached slot verdicts are replayed —
// converged populations spend most of their slots on this path.
func (ws *Workspace) recordDistance(t int) {
	e := ws.eng
	if ws.prepared == nil || len(ws.activeList) == 0 {
		return
	}
	n := len(ws.activeList)
	ws.assign = growInts(ws.assign, n)
	for i, d := range ws.activeList {
		ws.assign[i] = ws.choices[d]
	}

	ws.distSlots++
	if ws.distCacheOK && e.cfg.NoiseStdDev == 0 && intsEqual(ws.assign, ws.prevAssign[:n]) {
		if ws.prevAtNE {
			ws.atNESlots++
		}
		if ws.prevEpsHit {
			ws.atEpsSlots++
		}
		if e.cfg.Collect.Distance {
			ws.res.Distance[t] = ws.prevDist
			for g := range e.cfg.DeviceGroups {
				if ws.prevGroupSet[g] {
					ws.res.GroupDistance[g][t] = ws.prevGroup[g]
				}
			}
		}
		return
	}

	ws.gains = growFloats(ws.gains, n)
	for i, d := range ws.activeList {
		ws.gains[i] = ws.bitrates[d]
	}
	atNE := ws.instance.IsNashAssignmentWithCounts(ws.assign, ws.counts)
	if atNE {
		ws.atNESlots++
	}
	var epsHit bool
	if e.cfg.Collect.Distance {
		d := ws.distEval.Distance(ws.gains, nil)
		ws.res.Distance[t] = d
		ws.prevDist = d
		for g, members := range e.cfg.DeviceGroups {
			ws.memberIdx = ws.memberIdx[:0]
			for _, d := range members {
				if i := ws.idxOf[d]; i >= 0 {
					ws.memberIdx = append(ws.memberIdx, i)
				}
			}
			ws.prevGroupSet[g] = len(ws.memberIdx) > 0
			if ws.prevGroupSet[g] {
				gd := ws.distEval.Distance(ws.gains, ws.memberIdx)
				ws.res.GroupDistance[g][t] = gd
				ws.prevGroup[g] = gd
			}
		}
		epsHit = d <= e.cfg.EpsilonPercent
	} else {
		// ε accounting still needs the overall distance.
		epsHit = ws.distEval.Distance(ws.gains, nil) <= e.cfg.EpsilonPercent
	}
	if epsHit {
		ws.atEpsSlots++
	}
	ws.prevAtNE, ws.prevEpsHit = atNE, epsHit
	ws.prevAssign = growInts(ws.prevAssign, n)
	copy(ws.prevAssign, ws.assign)
	ws.distCacheOK = true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// recordProbabilities snapshots each active device's selection-distribution
// peak for stable-state detection. Devices without a probability
// distribution (Greedy, Fixed Random, Centralized) record nothing.
func (ws *Workspace) recordProbabilities() {
	for d := range ws.eng.cfg.Devices {
		if !ws.active[d] || ws.policies[d] == nil {
			continue
		}
		rep := ws.probPols[d]
		if rep == nil {
			continue
		}
		probs := rep.Probabilities()
		avail := ws.policies[d].Available()
		best, bestP := -1, -1.0
		for i, p := range probs {
			if p > bestP {
				best, bestP = avail[i], p
			}
		}
		ws.argmaxRec[d] = append(ws.argmaxRec[d], best)
		ws.probRec[d] = append(ws.probRec[d], bestP)
	}
}

// finish computes run-level aggregates: fraction of time at (ε-)equilibrium,
// per-device stability, and the Definition 2 run verdict.
func (ws *Workspace) finish() {
	e := ws.eng
	if ws.distSlots > 0 {
		ws.res.FracAtNE = float64(ws.atNESlots) / float64(ws.distSlots)
		ws.res.FracAtEps = float64(ws.atEpsSlots) / float64(ws.distSlots)
	}
	for d := range e.cfg.Devices {
		if p, ok := ws.policies[d].(core.ResetReporter); ok && p != nil {
			ws.res.Devices[d].Resets = p.Resets()
		}
	}
	if !e.cfg.Collect.Probabilities {
		return
	}
	// Definition 2 needs every device observable for the whole horizon with
	// a probability distribution.
	allEligible := true
	for d := range e.cfg.Devices {
		if !ws.res.Devices[d].PresentThroughout || len(ws.argmaxRec[d]) != e.cfg.Slots {
			allEligible = false
		}
		ws.res.Devices[d].StableFrom = game.StableFrom(ws.argmaxRec[d], ws.probRec[d])
	}
	if allEligible {
		ws.res.Stability = game.DetectStability(e.bandwidths, ws.argmaxRec, ws.probRec)
		ws.res.StabilityValid = true
	}
}

func clampUnit(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// growFloats returns a slice of length n reusing s's backing array when
// possible. Contents are unspecified; callers overwrite every element.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growInts is growFloats for int slices.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func filledInts(n, v int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func filledFloats(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
