// Package sim is the slotted-time simulation substrate for the wireless
// network selection game (the role SimPy plays in the paper). Time advances
// in slots of SlotSeconds; each slot every active device selects one network
// via its policy, a network's bandwidth is shared equally among the devices
// on it, and devices that switched networks pay a sampled delay that reduces
// their goodput for that slot (Section II-B item 5).
//
// The simulator supports the dynamics of Section VI-A: devices joining and
// leaving mid-run, devices moving between service areas (changing their
// availability sets), mixed policy populations, and the Centralized
// coordinator baseline — at paper scale (tens of devices, a handful of
// networks) and at the generated metropolitan scale of netmodel.Generate
// (hundreds of networks and devices).
//
// # Engine and Workspace
//
// The package is split along the immutable/mutable axis:
//
//   - An Engine (NewEngine) is the compiled form of a Config: validated,
//     defaulted, deep-copied, with the per-network tables and the epoch
//     schedule precomputed. Engines are read-only and safe to share across
//     goroutines.
//   - A Workspace (Engine.NewWorkspace) owns every piece of state one
//     replication mutates — policies, RNG streams, per-slot vectors, the NE
//     cache, recorders — and is reset and reused across replications. After
//     its first run a workspace's slot loop allocates nothing beyond the
//     Result it returns.
//
// Batches pair the two through Replicate (or runner.MergePooled directly):
// the Config compiles once and each worker owns one workspace for its whole
// batch. Run is the one-shot convenience wrapper.
//
// # Determinism contract
//
// Engine.Run(ws, seed) is a pure function of (engine, seed): every device
// draws from its own stream reseeded from (seed, device), policies are
// returned to their freshly constructed state via core.Reinitializer, and
// all scratch is reinitialized — so a reused workspace, a fresh workspace
// and the one-shot Run produce byte-identical Results, and parallel batch
// aggregates are bit-for-bit independent of the worker count. The golden
// tests in this package pin those bits across refactors.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"smartexp3/internal/core"
	"smartexp3/internal/criteria"
	"smartexp3/internal/dist"
	"smartexp3/internal/game"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/runner"
)

// DefaultSlotSeconds is the paper's 15-second slot duration.
const DefaultSlotSeconds = 15.0

// DefaultEpsilonPercent is the ε used for ε-equilibrium accounting in the
// paper's figures (shaded region, ε = 7.5).
const DefaultEpsilonPercent = 7.5

// AreaStay is one leg of a device trajectory: the device is in Area from
// slot FromSlot (inclusive) until the next stay begins.
type AreaStay struct {
	FromSlot int
	Area     int
}

// DeviceSpec describes one device.
type DeviceSpec struct {
	// Algorithm is the device's selection policy.
	Algorithm core.Algorithm
	// Join is the first slot in which the device is active.
	Join int
	// Leave is the first slot in which the device is no longer active;
	// zero means the device stays until the end of the run.
	Leave int
	// Trajectory lists area changes in FromSlot order. Empty means the
	// device stays in area 0.
	Trajectory []AreaStay
}

// CollectOptions selects which per-slot observables a run records.
type CollectOptions struct {
	// Distance records the per-slot distance to Nash equilibrium
	// (Definition 3), overall and per device group.
	Distance bool
	// Probabilities records each device's per-slot selection distribution
	// peak, enabling stable-state detection (Definition 2).
	Probabilities bool
	// Selections records each device's chosen network per slot.
	Selections bool
	// Bitrates records each device's observed bit rate (Mbps) per slot
	// (-1 while inactive).
	Bitrates bool
}

// Config parameterizes one simulation run.
//
// NewEngine (and therefore Run) snapshots the configuration: every slice —
// the topology, device specs and trajectories, DeviceGroups, NetworkCosts —
// is deep-copied at compile time, so a caller may mutate or reuse its Config
// after starting a run without corrupting replications in flight. The
// interface-valued fields (delay Samplers, Core.Gamma, PolicyFactory) are
// shared and must be stateless, as every implementation in this module is.
type Config struct {
	Topology netmodel.Topology
	Devices  []DeviceSpec
	// Slots is the horizon (the paper uses 1200 slots = 5 simulated hours).
	Slots int
	// SlotSeconds defaults to DefaultSlotSeconds.
	SlotSeconds float64
	// GainScale maps observed bit rates (Mbps) into the [0,1] gain range;
	// it defaults to the topology's maximum single-network bandwidth.
	GainScale float64
	// WiFiDelay and CellularDelay sample the switching delay in seconds;
	// they default to the models of internal/dist.
	WiFiDelay     dist.Sampler
	CellularDelay dist.Sampler
	// NoiseStdDev adds per-device multiplicative noise to observed bit
	// rates (testbed-style measurement noise); 0 disables it.
	NoiseStdDev float64
	// Seed makes the run reproducible.
	Seed int64
	// Core configures the EXP3-family policies; the zero value means
	// core.DefaultConfig.
	Core core.Config
	// DeviceGroups partitions devices for per-group distance reporting
	// (Figure 9). Nil means a single group of all devices.
	DeviceGroups [][]int
	// EpsilonPercent is the ε-equilibrium threshold for time-at-equilibrium
	// accounting; it defaults to DefaultEpsilonPercent.
	EpsilonPercent float64
	Collect        CollectOptions
	// PolicyFactory, when non-nil, overrides DeviceSpec.Algorithm when
	// constructing policies. Ablation studies use it to run Smart EXP3 with
	// custom feature sets. It must return a fresh policy per call.
	PolicyFactory func(device int, available []int, rng *rand.Rand) (core.Policy, error)
	// Criteria, when non-nil, folds energy and monetary cost into the gain
	// each policy observes (the paper's future-work criteria); download and
	// distance metrics remain throughput-based.
	Criteria *criteria.Profile
	// NetworkCosts optionally overrides the per-network cost
	// characteristics (aligned with Topology.Networks); nil means
	// criteria.DefaultCosts by technology. Ignored without Criteria.
	NetworkCosts []criteria.Costs
}

// UniformDevices builds n device specs that all run the same algorithm, stay
// for the whole run, and remain in area 0.
func UniformDevices(n int, alg core.Algorithm) []DeviceSpec {
	devs := make([]DeviceSpec, n)
	for d := range devs {
		devs[d] = DeviceSpec{Algorithm: alg}
	}
	return devs
}

// SpreadDevices builds n device specs that all run the same algorithm and
// stay for the whole run, distributed round-robin over the given number of
// service areas — the standard population for the large generated
// topologies of netmodel.Generate. With fewer devices than areas the
// trailing areas stay empty; with more, areas are filled evenly. A
// non-positive area count is treated as a single area (everyone in area 0),
// never a panic.
func SpreadDevices(n int, alg core.Algorithm, areas int) []DeviceSpec {
	if areas < 1 {
		areas = 1
	}
	devs := make([]DeviceSpec, n)
	for d := range devs {
		devs[d] = DeviceSpec{Algorithm: alg}
		if a := d % areas; a != 0 {
			devs[d].Trajectory = []AreaStay{{FromSlot: 0, Area: a}}
		}
	}
	return devs
}

// DeviceResult aggregates one device's run.
type DeviceResult struct {
	Algorithm core.Algorithm
	Join      int
	Leave     int // exclusive
	// PresentThroughout is true when the device was active for every slot.
	PresentThroughout bool
	// Switches counts network changes between consecutive active slots.
	Switches int
	// Resets counts policy resets (Smart EXP3 only; 0 otherwise).
	Resets int
	// DownloadMb is the cumulative goodput in megabits:
	// Σ bitrate·(slotSeconds − delay).
	DownloadMb float64
	// DelaySeconds is the total switching delay incurred.
	DelaySeconds float64
	// StableFrom is the slot from which the device held one network with
	// probability ≥ 0.75 to the end (-1 when never, or not applicable).
	StableFrom int
	// Selections and BitrateMbps are populated per CollectOptions
	// (-1 entries denote inactive slots).
	Selections  []int
	BitrateMbps []float64
}

// Result is the outcome of one simulation run.
type Result struct {
	Slots       int
	SlotSeconds float64
	// Devices holds one entry per device spec, in order.
	Devices []DeviceResult
	// Distance is the per-slot distance to NE over all active devices
	// (when Collect.Distance).
	Distance []float64
	// GroupDistance holds one per-slot series per configured device group.
	GroupDistance [][]float64
	// FracAtNE is the fraction of slots in which the allocation was a pure
	// NE; FracAtEps the fraction with distance ≤ EpsilonPercent.
	FracAtNE  float64
	FracAtEps float64
	// UnusedMb is the bandwidth-time product of idle networks (megabits),
	// the "unutilized resources" metric of Section VI-A.
	UnusedMb float64
	// TotalMb is the bandwidth-time product of all networks (megabits).
	TotalMb float64
	// Stability is Definition 2 applied to the run; StabilityValid reports
	// whether it was computable (all devices present throughout and
	// reporting selection probabilities).
	Stability      game.RunStability
	StabilityValid bool
}

// DownloadsMb returns the per-device cumulative downloads in megabits.
func (r *Result) DownloadsMb() []float64 {
	out := make([]float64, len(r.Devices))
	for d := range r.Devices {
		out[d] = r.Devices[d].DownloadMb
	}
	return out
}

// MbToGB converts megabits to (decimal) gigabytes, the unit of Table V.
func MbToGB(mb float64) float64 { return mb / 8 / 1000 }

// MbToMB converts megabits to (decimal) megabytes, the unit of Table VI.
func MbToMB(mb float64) float64 { return mb / 8 }

// Validate reports whether the configuration is runnable.
func (c *Config) Validate() error {
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if c.Slots <= 0 {
		return fmt.Errorf("sim: slots must be positive, got %d", c.Slots)
	}
	if len(c.Devices) == 0 {
		return errors.New("sim: at least one device is required")
	}
	centralized := 0
	for d, spec := range c.Devices {
		if spec.Join < 0 || spec.Join >= c.Slots {
			return fmt.Errorf("sim: device %d joins at slot %d outside [0,%d)", d, spec.Join, c.Slots)
		}
		if spec.Leave != 0 && spec.Leave <= spec.Join {
			return fmt.Errorf("sim: device %d leaves at %d before joining at %d", d, spec.Leave, spec.Join)
		}
		for _, stay := range spec.Trajectory {
			if stay.Area < 0 || stay.Area >= len(c.Topology.Areas) {
				return fmt.Errorf("sim: device %d visits unknown area %d", d, stay.Area)
			}
		}
		if spec.Algorithm == core.AlgCentralized {
			centralized++
		}
	}
	if centralized > 0 && centralized != len(c.Devices) {
		return errors.New("sim: centralized allocation cannot be mixed with per-device policies")
	}
	for g, members := range c.DeviceGroups {
		for _, d := range members {
			if d < 0 || d >= len(c.Devices) {
				return fmt.Errorf("sim: group %d references device %d out of %d", g, d, len(c.Devices))
			}
		}
	}
	if c.Criteria != nil {
		if err := c.Criteria.Validate(); err != nil {
			return err
		}
		if c.NetworkCosts != nil && len(c.NetworkCosts) != len(c.Topology.Networks) {
			return fmt.Errorf("sim: %d network costs for %d networks",
				len(c.NetworkCosts), len(c.Topology.Networks))
		}
		for _, costs := range c.NetworkCosts {
			if err := costs.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.SlotSeconds <= 0 {
		out.SlotSeconds = DefaultSlotSeconds
	}
	if out.GainScale <= 0 {
		out.GainScale = out.Topology.MaxBandwidth()
	}
	if out.WiFiDelay == nil {
		out.WiFiDelay = dist.DefaultWiFiDelay()
	}
	if out.CellularDelay == nil {
		out.CellularDelay = dist.DefaultCellularDelay()
	}
	if out.Core.Gamma == nil {
		out.Core = core.DefaultConfig()
	}
	if out.EpsilonPercent <= 0 {
		out.EpsilonPercent = DefaultEpsilonPercent
	}
	if out.DeviceGroups == nil {
		all := make([]int, len(out.Devices))
		for d := range all {
			all[d] = d
		}
		out.DeviceGroups = [][]int{all}
	}
	return out
}

// Run executes one simulation and returns its result. It is the one-shot
// form of the Engine/Workspace API: batch callers compile the configuration
// once with NewEngine and reuse one Workspace per worker instead.
func Run(cfg Config) (*Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return e.Run(nil, cfg.Seed)
}

// Replicate runs a batch of Monte Carlo replications of cfg across the
// runner's worker pool and folds the results into merge in ascending run
// order. The configuration is compiled once and every worker owns one
// pooled Workspace for its whole batch, so replications beyond each
// worker's first reuse all simulation state. Each replication is seeded
// with its runner.Replications child seed; cfg.Seed is ignored. Aggregates
// are bit-identical for every worker count.
func Replicate(batch runner.Replications, cfg Config, merge func(run int, res *Result) error) error {
	eng, err := NewEngine(cfg)
	if err != nil {
		return err
	}
	return runner.MergePooled(batch, eng.NewWorkspace,
		func(ws *Workspace, run int, seed int64) (*Result, error) {
			return eng.Run(ws, seed)
		},
		merge)
}
