package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"smartexp3/internal/core"
	"smartexp3/internal/criteria"
	"smartexp3/internal/dist"
	"smartexp3/internal/netmodel"
)

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func baseConfig(alg core.Algorithm) Config {
	return Config{
		Topology: netmodel.Setting1(),
		Devices:  UniformDevices(6, alg),
		Slots:    200,
		Seed:     1,
	}
}

// areaOf returns the area a SpreadDevices spec places the device in.
func areaOf(spec DeviceSpec) int {
	if len(spec.Trajectory) == 0 {
		return 0
	}
	return spec.Trajectory[0].Area
}

// TestSpreadDevicesEdgeCases covers the population builder's boundaries: an
// empty population, fewer devices than areas, wrap-around when devices
// outnumber areas, and a non-positive area count (treated as one area, not
// a divide-by-zero panic).
func TestSpreadDevicesEdgeCases(t *testing.T) {
	if devs := SpreadDevices(0, core.AlgSmartEXP3, 5); len(devs) != 0 {
		t.Fatalf("0 devices built %d specs", len(devs))
	}

	// Fewer devices than areas: devices d=0..2 land in areas 0..2, later
	// areas stay empty, and every spec is runnable (area < len(Areas)).
	few := SpreadDevices(3, core.AlgSmartEXP3, 7)
	for d, spec := range few {
		if got := areaOf(spec); got != d {
			t.Fatalf("device %d in area %d, want %d", d, got, d)
		}
	}

	// More devices than areas: round-robin wrap, evenly filled.
	many := SpreadDevices(10, core.AlgSmartEXP3, 4)
	counts := make(map[int]int)
	for d, spec := range many {
		if got, want := areaOf(spec), d%4; got != want {
			t.Fatalf("device %d in area %d, want %d", d, got, want)
		}
		counts[areaOf(spec)]++
	}
	for a := 0; a < 4; a++ {
		if counts[a] < 2 {
			t.Fatalf("area %d underfilled: %v", a, counts)
		}
	}

	// Non-positive area counts collapse to a single area instead of
	// panicking.
	for _, areas := range []int{0, -2} {
		for d, spec := range SpreadDevices(4, core.AlgGreedy, areas) {
			if got := areaOf(spec); got != 0 {
				t.Fatalf("areas=%d: device %d in area %d, want 0", areas, d, got)
			}
		}
	}

	// The specs a generated topology gets are directly runnable.
	top := netmodel.Generate(netmodel.GenSpec{Areas: 3, APsPerArea: 2, Cells: 1, Overlap: 1})
	cfg := Config{
		Topology: top,
		Devices:  SpreadDevices(7, core.AlgSmartEXP3, len(top.Areas)),
		Slots:    20,
		Seed:     2,
	}
	mustRun(t, cfg)
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"no slots", func(c *Config) { c.Slots = 0 }, "slots"},
		{"no devices", func(c *Config) { c.Devices = nil }, "device"},
		{"join out of range", func(c *Config) { c.Devices[0].Join = 999 }, "joins"},
		{"leave before join", func(c *Config) { c.Devices[0].Join = 10; c.Devices[0].Leave = 5 }, "leaves"},
		{"unknown area", func(c *Config) {
			c.Devices[0].Trajectory = []AreaStay{{Area: 7}}
		}, "area"},
		{"mixed centralized", func(c *Config) { c.Devices[0].Algorithm = core.AlgCentralized }, "centralized"},
		{"group out of range", func(c *Config) { c.DeviceGroups = [][]int{{99}} }, "group"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseConfig(core.AlgSmartEXP3)
			tt.mutate(&cfg)
			_, err := Run(cfg)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %v, want mention of %q", err, tt.want)
			}
		})
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cfg := baseConfig(core.AlgSmartEXP3)
	cfg.Collect = CollectOptions{Selections: true, Distance: true}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	for d := range a.Devices {
		if a.Devices[d].DownloadMb != b.Devices[d].DownloadMb {
			t.Fatalf("device %d download differs across identical runs", d)
		}
		for tt := range a.Devices[d].Selections {
			if a.Devices[d].Selections[tt] != b.Devices[d].Selections[tt] {
				t.Fatalf("device %d selection differs at slot %d", d, tt)
			}
		}
	}
}

func TestRunsDifferAcrossSeeds(t *testing.T) {
	cfg := baseConfig(core.AlgSmartEXP3)
	a := mustRun(t, cfg)
	cfg.Seed = 2
	b := mustRun(t, cfg)
	same := true
	for d := range a.Devices {
		if a.Devices[d].DownloadMb != b.Devices[d].DownloadMb {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical downloads")
	}
}

func TestDownloadConservation(t *testing.T) {
	// Without noise, total goodput can never exceed the bandwidth-time
	// product, and TotalMb must equal aggregate bandwidth × horizon.
	cfg := baseConfig(core.AlgSmartEXP3)
	res := mustRun(t, cfg)
	var total float64
	for d := range res.Devices {
		total += res.Devices[d].DownloadMb
	}
	capacity := cfg.Topology.AggregateBandwidth() * DefaultSlotSeconds * float64(cfg.Slots)
	if total > capacity+1e-6 {
		t.Fatalf("devices downloaded %v Mb > capacity %v Mb", total, capacity)
	}
	if math.Abs(res.TotalMb-capacity) > 1e-6 {
		t.Fatalf("TotalMb = %v, want %v", res.TotalMb, capacity)
	}
	if total+res.UnusedMb > capacity+1e-6 {
		t.Fatalf("downloads (%v) + unused (%v) exceed capacity (%v)", total, res.UnusedMb, capacity)
	}
}

func TestSwitchesMatchSelections(t *testing.T) {
	cfg := baseConfig(core.AlgSmartEXP3)
	cfg.Collect.Selections = true
	res := mustRun(t, cfg)
	for d := range res.Devices {
		sel := res.Devices[d].Selections
		want := 0
		for tt := 1; tt < len(sel); tt++ {
			if sel[tt] >= 0 && sel[tt-1] >= 0 && sel[tt] != sel[tt-1] {
				want++
			}
		}
		if got := res.Devices[d].Switches; got != want {
			t.Fatalf("device %d: Switches=%d, selections imply %d", d, got, want)
		}
	}
}

func TestSwitchingDelayReducesGoodput(t *testing.T) {
	// Same run with zero vs huge delay: the delayed run must download less.
	cfg := baseConfig(core.AlgEXP3) // EXP3 switches constantly
	cfg.WiFiDelay = dist.Constant{Value: 0}
	cfg.CellularDelay = dist.Constant{Value: 0}
	free := mustRun(t, cfg)
	cfg.WiFiDelay = dist.Constant{Value: 14}
	cfg.CellularDelay = dist.Constant{Value: 14}
	costly := mustRun(t, cfg)
	var freeTotal, costlyTotal float64
	for d := range free.Devices {
		freeTotal += free.Devices[d].DownloadMb
		costlyTotal += costly.Devices[d].DownloadMb
	}
	if costlyTotal >= freeTotal {
		t.Fatalf("delay made downloads grow: %v ≥ %v", costlyTotal, freeTotal)
	}
	if costly.Devices[0].DelaySeconds == 0 {
		t.Fatal("no delay recorded despite constant 14 s switching cost")
	}
}

func TestJoinLeaveLifecycle(t *testing.T) {
	cfg := baseConfig(core.AlgSmartEXP3)
	cfg.Devices[0].Join = 50
	cfg.Devices[1].Leave = 100
	cfg.Collect.Selections = true
	res := mustRun(t, cfg)

	d0 := res.Devices[0]
	if d0.PresentThroughout {
		t.Fatal("late joiner marked present throughout")
	}
	for tt := 0; tt < 50; tt++ {
		if d0.Selections[tt] != -1 {
			t.Fatalf("device 0 active at slot %d before joining", tt)
		}
	}
	if d0.Selections[50] == -1 {
		t.Fatal("device 0 inactive at its join slot")
	}
	d1 := res.Devices[1]
	for tt := 100; tt < cfg.Slots; tt++ {
		if d1.Selections[tt] != -1 {
			t.Fatalf("device 1 active at slot %d after leaving", tt)
		}
	}
	if d1.Selections[99] == -1 {
		t.Fatal("device 1 inactive on its last slot")
	}
}

func TestMobilityRestrictsSelections(t *testing.T) {
	top := netmodel.FoodCourt()
	cfg := Config{
		Topology: top,
		Devices: []DeviceSpec{{
			Algorithm: core.AlgSmartEXP3,
			Trajectory: []AreaStay{
				{FromSlot: 0, Area: netmodel.AreaFoodCourt},
				{FromSlot: 60, Area: netmodel.AreaBusStop},
			},
		}},
		Slots:   120,
		Seed:    3,
		Collect: CollectOptions{Selections: true},
	}
	res := mustRun(t, cfg)
	inArea := func(net int, area int) bool {
		for _, id := range top.Areas[area] {
			if id == net {
				return true
			}
		}
		return false
	}
	sel := res.Devices[0].Selections
	for tt := 0; tt < 60; tt++ {
		if !inArea(sel[tt], netmodel.AreaFoodCourt) {
			t.Fatalf("slot %d: selected %d outside the food court's networks", tt, sel[tt])
		}
	}
	for tt := 60; tt < 120; tt++ {
		if !inArea(sel[tt], netmodel.AreaBusStop) {
			t.Fatalf("slot %d: selected %d outside the bus stop's networks", tt, sel[tt])
		}
	}
}

func TestCentralizedIsOptimalAndSwitchFree(t *testing.T) {
	cfg := Config{
		Topology: netmodel.Setting1(),
		Devices:  UniformDevices(20, core.AlgCentralized),
		Slots:    100,
		Seed:     4,
		Collect:  CollectOptions{Distance: true},
	}
	res := mustRun(t, cfg)
	if res.FracAtNE != 1 {
		t.Fatalf("centralized at NE %.2f of the time, want 1.0", res.FracAtNE)
	}
	for d := range res.Devices {
		if res.Devices[d].Switches != 0 {
			t.Fatalf("centralized device %d switched %d times", d, res.Devices[d].Switches)
		}
	}
	for tt, dd := range res.Distance {
		if dd != 0 {
			t.Fatalf("centralized distance %v at slot %d", dd, tt)
		}
	}
}

func TestCentralizedAdaptsToLeave(t *testing.T) {
	cfg := Config{
		Topology: netmodel.Setting1(),
		Devices:  UniformDevices(20, core.AlgCentralized),
		Slots:    100,
		Seed:     5,
		Collect:  CollectOptions{Distance: true},
	}
	for d := 10; d < 20; d++ {
		cfg.Devices[d].Leave = 50
	}
	res := mustRun(t, cfg)
	if res.FracAtNE != 1 {
		t.Fatalf("centralized lost the NE after churn: %.2f", res.FracAtNE)
	}
}

func TestStabilityDetectionSmartNoReset(t *testing.T) {
	cfg := Config{
		Topology: netmodel.Setting2(),
		Devices:  UniformDevices(9, core.AlgSmartEXP3NoReset),
		Slots:    1200,
		Seed:     6,
		Collect:  CollectOptions{Probabilities: true},
	}
	res := mustRun(t, cfg)
	if !res.StabilityValid {
		t.Fatal("stability should be computable for an all-reporter static run")
	}
	if !res.Stability.Stable {
		t.Skip("this seed did not stabilize; acceptable but rare")
	}
	if res.Stability.Slot < 0 || res.Stability.Slot >= cfg.Slots {
		t.Fatalf("stable slot %d out of range", res.Stability.Slot)
	}
}

func TestStabilityInvalidWithNonReporters(t *testing.T) {
	cfg := baseConfig(core.AlgGreedy)
	cfg.Collect.Probabilities = true
	res := mustRun(t, cfg)
	if res.StabilityValid {
		t.Fatal("stability must be marked non-computable for Greedy")
	}
}

func TestStabilityInvalidWithChurn(t *testing.T) {
	cfg := baseConfig(core.AlgSmartEXP3NoReset)
	cfg.Collect.Probabilities = true
	cfg.Devices[0].Leave = 100
	res := mustRun(t, cfg)
	if res.StabilityValid {
		t.Fatal("stability must be non-computable when a device leaves")
	}
}

func TestDistanceSeriesBounds(t *testing.T) {
	cfg := baseConfig(core.AlgSmartEXP3)
	cfg.Collect.Distance = true
	res := mustRun(t, cfg)
	if len(res.Distance) != cfg.Slots {
		t.Fatalf("distance series has %d slots, want %d", len(res.Distance), cfg.Slots)
	}
	for tt, d := range res.Distance {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("distance %v at slot %d", d, tt)
		}
	}
	if res.FracAtEps < res.FracAtNE-1e-12 {
		t.Fatalf("ε-equilibrium time (%v) below exact-NE time (%v)", res.FracAtEps, res.FracAtNE)
	}
}

func TestDeviceGroupsDistance(t *testing.T) {
	cfg := baseConfig(core.AlgSmartEXP3)
	cfg.DeviceGroups = [][]int{{0, 1, 2}, {3, 4, 5}}
	cfg.Collect.Distance = true
	res := mustRun(t, cfg)
	if len(res.GroupDistance) != 2 {
		t.Fatalf("got %d group series, want 2", len(res.GroupDistance))
	}
	for g := range res.GroupDistance {
		if len(res.GroupDistance[g]) != cfg.Slots {
			t.Fatalf("group %d series has %d slots", g, len(res.GroupDistance[g]))
		}
	}
}

func TestNoiseChangesBitrates(t *testing.T) {
	cfg := baseConfig(core.AlgFixedRandom)
	cfg.Collect.Bitrates = true
	clean := mustRun(t, cfg)
	cfg.NoiseStdDev = 0.2
	noisy := mustRun(t, cfg)
	differs := false
	for tt := 0; tt < cfg.Slots; tt++ {
		if clean.Devices[0].BitrateMbps[tt] != noisy.Devices[0].BitrateMbps[tt] {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("noise had no effect on observed bit rates")
	}
}

func TestFullInformationRunsInSim(t *testing.T) {
	cfg := baseConfig(core.AlgFullInformation)
	res := mustRun(t, cfg)
	var total float64
	for d := range res.Devices {
		total += res.Devices[d].DownloadMb
	}
	if total <= 0 {
		t.Fatal("full information devices downloaded nothing")
	}
}

func TestPolicyFactoryOverride(t *testing.T) {
	cfg := baseConfig(core.AlgGreedy) // would be Greedy without the factory
	calls := 0
	cfg.PolicyFactory = func(_ int, available []int, rng *rand.Rand) (core.Policy, error) {
		calls++
		return core.NewSmartEXP3("custom", core.FeaturesFor(core.AlgSmartEXP3NoReset),
			available, core.DefaultConfig(), rng), nil
	}
	mustRun(t, cfg)
	if calls != len(cfg.Devices) {
		t.Fatalf("factory called %d times, want %d", calls, len(cfg.Devices))
	}
}

func TestMbConversions(t *testing.T) {
	if got := MbToGB(8000); got != 1 {
		t.Fatalf("MbToGB(8000) = %v, want 1", got)
	}
	if got := MbToMB(8); got != 1 {
		t.Fatalf("MbToMB(8) = %v, want 1", got)
	}
}

func TestUnusedResourcesGreedySettingOne(t *testing.T) {
	// The "tragedy of the commons": with Greedy in Setting 1 the 4 Mbps
	// network usually ends up abandoned, leaving measurable idle capacity.
	cfg := Config{
		Topology: netmodel.Setting1(),
		Devices:  UniformDevices(20, core.AlgGreedy),
		Slots:    600,
		Seed:     8,
	}
	res := mustRun(t, cfg)
	if res.UnusedMb <= 0 {
		t.Skip("greedy utilized everything on this seed; the aggregate claim is tested at the experiment level")
	}
}

func TestCriteriaShiftPreferences(t *testing.T) {
	// One device choosing between a fast metered cellular network and a
	// slower free WLAN. Throughput-only Smart EXP3 must prefer cellular;
	// with a cost-heavy profile it must prefer the WLAN.
	top := netmodel.Topology{
		Networks: []netmodel.Network{
			{Name: "wlan", Type: netmodel.WiFi, Bandwidth: 8},
			{Name: "cell", Type: netmodel.Cellular, Bandwidth: 22},
		},
		Areas: [][]int{{0, 1}},
	}
	prefer := func(profile *criteria.Profile) int {
		cfg := Config{
			Topology: top,
			Devices:  UniformDevices(1, core.AlgSmartEXP3NoReset),
			Slots:    600,
			Seed:     9,
			Criteria: profile,
			Collect:  CollectOptions{Selections: true},
		}
		res := mustRun(t, cfg)
		counts := make(map[int]int)
		for _, sel := range res.Devices[0].Selections[300:] {
			counts[sel]++
		}
		if counts[0] > counts[1] {
			return 0
		}
		return 1
	}
	if got := prefer(nil); got != 1 {
		t.Fatalf("throughput-only device preferred network %d, want cellular (1)", got)
	}
	costly := criteria.Profile{Throughput: 0.5, Energy: 1, Money: 2}
	if got := prefer(&costly); got != 0 {
		t.Fatalf("cost-averse device preferred network %d, want free WLAN (0)", got)
	}
}

func TestCriteriaValidation(t *testing.T) {
	cfg := baseConfig(core.AlgSmartEXP3)
	bad := criteria.Profile{}
	cfg.Criteria = &bad
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid criteria profile must be rejected")
	}
	good := criteria.Balanced()
	cfg.Criteria = &good
	cfg.NetworkCosts = []criteria.Costs{{Energy: 0.5}} // wrong length (3 networks)
	if _, err := Run(cfg); err == nil {
		t.Fatal("mismatched network costs must be rejected")
	}
}
