package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"smartexp3/internal/core"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/runner"
)

// reuseConfigs are the scenarios the workspace-reuse tests sweep: static,
// churn + mobility + noise, and centralized — the three policy-lifecycle
// shapes (never released, released and reinstalled, no policies at all).
func reuseConfigs() map[string]Config {
	churn := Config{
		Topology: netmodel.FoodCourt(),
		Devices: []DeviceSpec{
			{Algorithm: core.AlgSmartEXP3, Trajectory: []AreaStay{
				{FromSlot: 0, Area: netmodel.AreaFoodCourt},
				{FromSlot: 40, Area: netmodel.AreaStudyArea},
			}},
			{Algorithm: core.AlgGreedy, Join: 10, Leave: 60},
			{Algorithm: core.AlgFullInformation},
			{Algorithm: core.AlgFixedRandom},
			{Algorithm: core.AlgSmartEXP3NoReset, Leave: 50},
		},
		Slots:       90,
		NoiseStdDev: 0.05,
		Collect:     CollectOptions{Distance: true, Selections: true, Bitrates: true},
	}
	return map[string]Config{
		"static": {
			Topology: netmodel.Setting1(),
			Devices:  UniformDevices(6, core.AlgSmartEXP3),
			Slots:    150,
			Collect:  CollectOptions{Distance: true, Probabilities: true},
		},
		"churn": churn,
		"centralized": {
			Topology: netmodel.Setting1(),
			Devices:  UniformDevices(8, core.AlgCentralized),
			Slots:    80,
			Collect:  CollectOptions{Distance: true},
		},
	}
}

// TestWorkspaceReuseMatchesFreshEngine is the engine's determinism contract:
// running one seed through a single pooled workspace (after the workspace
// has been dirtied by other seeds) must produce a Result byte-identical to a
// fresh engine + fresh workspace run of the same seed. Run it under -race at
// -cpu 1,8 in CI to also catch any shared-state races between workspaces.
func TestWorkspaceReuseMatchesFreshEngine(t *testing.T) {
	for name, cfg := range reuseConfigs() {
		t.Run(name, func(t *testing.T) {
			eng, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ws := eng.NewWorkspace()
			// Dirty the workspace with two other seeds first.
			for _, s := range []int64{99, 7} {
				if _, err := eng.Run(ws, s); err != nil {
					t.Fatal(err)
				}
			}
			reused, err := eng.Run(ws, 42)
			if err != nil {
				t.Fatal(err)
			}
			again, err := eng.Run(ws, 42)
			if err != nil {
				t.Fatal(err)
			}

			fresh, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pristine, err := fresh.Run(fresh.NewWorkspace(), 42)
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(reused, pristine) {
				t.Fatalf("pooled workspace diverged from fresh engine:\nreused:   %+v\npristine: %+v", reused, pristine)
			}
			if !reflect.DeepEqual(reused, again) {
				t.Fatal("same seed through the same workspace twice diverged")
			}
			// And the one-shot API agrees too.
			c := cfg
			c.Seed = 42
			oneShot, err := Run(c)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(reused, oneShot) {
				t.Fatal("engine run diverged from the one-shot Run API")
			}
		})
	}
}

// TestPooledBatchDeterministicAcrossWorkers runs one replication batch
// through runner.MergePooled — one workspace per worker, exactly as the
// experiment suite does — and asserts the merged aggregate is byte-identical
// for every worker count and identical to fresh-engine one-shot runs.
func TestPooledBatchDeterministicAcrossWorkers(t *testing.T) {
	cfg := reuseConfigs()["churn"]
	aggregate := func(workers int) string {
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		batch := runner.Replications{Runs: 24, Workers: workers, Seed: 5, Stream: []int64{9}}
		var sb strings.Builder
		err = runner.MergePooled(batch,
			eng.NewWorkspace,
			func(ws *Workspace, run int, seed int64) (*Result, error) {
				return eng.Run(ws, seed)
			},
			func(run int, res *Result) error {
				fmt.Fprintf(&sb, "%d:", run)
				for d := range res.Devices {
					fmt.Fprintf(&sb, "%x,%x;", res.Devices[d].DownloadMb, res.Devices[d].DelaySeconds)
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	base := aggregate(1)
	for _, workers := range []int{2, 8, 0} {
		if got := aggregate(workers); got != base {
			t.Fatalf("workers=%d pooled batch aggregate differs from serial", workers)
		}
	}
	// One-shot runs of the same child seeds agree with the pooled batch.
	batch := runner.Replications{Runs: 24, Seed: 5, Stream: []int64{9}}
	var sb strings.Builder
	for run := 0; run < batch.Runs; run++ {
		c := cfg
		c.Seed = batch.SeedFor(run)
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "%d:", run)
		for d := range res.Devices {
			fmt.Fprintf(&sb, "%x,%x;", res.Devices[d].DownloadMb, res.Devices[d].DelaySeconds)
		}
	}
	if sb.String() != base {
		t.Fatal("pooled batch diverged from one-shot replications")
	}
}

// TestEngineIsolatesConfig pins the deep-copy fix: mutating the caller's
// Config slices after NewEngine must not affect an engine already built
// from it.
func TestEngineIsolatesConfig(t *testing.T) {
	cfg := Config{
		Topology:     netmodel.FoodCourt(),
		Devices:      UniformDevices(5, core.AlgSmartEXP3),
		Slots:        60,
		Seed:         3,
		DeviceGroups: [][]int{{0, 1}, {2, 3, 4}},
		Collect:      CollectOptions{Distance: true},
	}
	cfg.Devices[0].Trajectory = []AreaStay{{FromSlot: 20, Area: netmodel.AreaBusStop}}

	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Run(nil, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt every caller-held slice.
	cfg.Topology.Networks[0].Bandwidth = 1e9
	cfg.Topology.Areas[0][0] = 0
	cfg.Devices[1].Algorithm = core.AlgGreedy
	cfg.Devices[0].Trajectory[0].Area = netmodel.AreaFoodCourt
	cfg.DeviceGroups[0][0] = 4
	got, err := eng.Run(nil, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("mutating the caller's Config changed a compiled engine's output")
	}
}

// TestWorkspaceRejectsForeignEngine guards the workspace/engine pairing.
func TestWorkspaceRejectsForeignEngine(t *testing.T) {
	cfg := Config{
		Topology: netmodel.Setting1(),
		Devices:  UniformDevices(3, core.AlgSmartEXP3),
		Slots:    10,
	}
	a, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(b.NewWorkspace(), 1); err == nil {
		t.Fatal("running a workspace under a foreign engine must fail")
	}
}

// churnHeavyDevices builds a population whose first device changes area on
// every slot, forcing an NE-cache refresh (an "epoch") per slot — the
// worst case for game.Prepare allocation.
func churnHeavyDevices(n, slots int, alg core.Algorithm) []DeviceSpec {
	devs := UniformDevices(n, alg)
	traj := make([]AreaStay, slots)
	for t := range traj {
		traj[t] = AreaStay{FromSlot: t, Area: []int{netmodel.AreaFoodCourt, netmodel.AreaStudyArea}[t%2]}
	}
	devs[0].Trajectory = traj
	return devs
}

// TestWorkspaceSteadyStateAllocs asserts the engine's allocation budget:
// once a workspace is warm, a replication allocates only the Result it
// returns plus bounded bookkeeping — far under one allocation per slot, flat
// in the number of replications, and (since game.PrepareInto pools the NE
// cache) flat in the number of epoch refreshes too: the churn-heavy configs
// refresh the NE on every one of their 120 slots and must fit the same
// budget as the single-epoch static run.
func TestWorkspaceSteadyStateAllocs(t *testing.T) {
	cases := map[string]Config{
		"static": {
			Topology: netmodel.Setting1(),
			Devices:  UniformDevices(5, core.AlgSmartEXP3),
			Slots:    120,
		},
		"epoch-heavy": {
			Topology: netmodel.FoodCourt(),
			Devices:  churnHeavyDevices(5, 120, core.AlgSmartEXP3),
			Slots:    120,
		},
		"epoch-heavy-centralized": {
			Topology: netmodel.FoodCourt(),
			Devices:  churnHeavyDevices(5, 120, core.AlgCentralized),
			Slots:    120,
		},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			eng, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ws := eng.NewWorkspace()
			if _, err := eng.Run(ws, 1); err != nil { // warm-up
				t.Fatal(err)
			}
			seed := int64(2)
			avg := testing.AllocsPerRun(20, func() {
				if _, err := eng.Run(ws, seed); err != nil {
					t.Fatal(err)
				}
				seed++
			})
			// A warm replication allocates the Result (2) plus small fixed
			// bookkeeping; 25 leaves headroom for runtime internals while
			// still catching any per-slot or per-epoch regression (120
			// slots/epochs would blow straight past it).
			if avg > 25 {
				t.Fatalf("steady-state replication allocates %.1f objects, want ≤ 25", avg)
			}
		})
	}
}
