package report

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFiles persists a report under dir: <id>.txt (plain text), <id>.md
// (markdown), and one <id>.chartN.csv per chart with the raw series. The
// directory is created if needed.
func WriteFiles(dir string, rep *Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("report: create %s: %w", dir, err)
	}
	write := func(name, content string) error {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return fmt.Errorf("report: write %s: %w", path, err)
		}
		return nil
	}
	if err := write(rep.ID+".txt", rep.String()); err != nil {
		return err
	}
	if err := write(rep.ID+".md", rep.Markdown()); err != nil {
		return err
	}
	for i := range rep.Charts {
		name := fmt.Sprintf("%s.chart%d.csv", rep.ID, i+1)
		if err := write(name, rep.Charts[i].CSV()); err != nil {
			return err
		}
		name = fmt.Sprintf("%s.chart%d.svg", rep.ID, i+1)
		if err := write(name, rep.Charts[i].SVG()); err != nil {
			return err
		}
	}
	return nil
}
