package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleTable() Table {
	t := Table{
		Title:   "Sample",
		Columns: []string{"Algorithm", "Value"},
	}
	t.AddRow("Smart EXP3", "3.53")
	t.AddRow("Greedy", "3.12")
	return t
}

func TestTableString(t *testing.T) {
	tbl := sampleTable()
	got := tbl.String()
	for _, want := range []string{"Sample", "Algorithm", "Smart EXP3", "3.12", "---"} {
		if !strings.Contains(got, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, got)
		}
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), got)
	}
}

func TestTableColumnsAligned(t *testing.T) {
	tbl := sampleTable()
	got := tbl.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	// "Value" column starts at the same offset in header and rows.
	headerIdx := strings.Index(lines[1], "Value")
	rowIdx := strings.Index(lines[3], "3.53")
	if headerIdx != rowIdx {
		t.Fatalf("column misaligned: header at %d, row at %d\n%s", headerIdx, rowIdx, got)
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := sampleTable()
	got := tbl.Markdown()
	if !strings.Contains(got, "| Algorithm | Value |") {
		t.Fatalf("markdown missing header: %s", got)
	}
	if !strings.Contains(got, "|---|---|") {
		t.Fatalf("markdown missing separator: %s", got)
	}
	if !strings.Contains(got, "| Smart EXP3 | 3.53 |") {
		t.Fatalf("markdown missing row: %s", got)
	}
}

func TestF(t *testing.T) {
	if got := F(3.14159, 2); got != "3.14" {
		t.Fatalf("F = %q", got)
	}
	if got := F(5, 0); got != "5" {
		t.Fatalf("F = %q", got)
	}
}

func TestChartCSV(t *testing.T) {
	c := Chart{XStart: 10, XStep: 5}
	c.Add("a", []float64{1, 2})
	c.Add("b", []float64{3})
	got := c.CSV()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if lines[0] != "x,a,b" {
		t.Fatalf("csv header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "10,1.0000,3.0000") {
		t.Fatalf("csv row 1 %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "15,2.0000,") {
		t.Fatalf("csv row 2 %q (short series must leave a gap)", lines[2])
	}
}

func TestChartString(t *testing.T) {
	c := Chart{Title: "test chart", XLabel: "slot"}
	c.Add("rising", []float64{0, 1, 2, 3, 4})
	c.Add("flat", []float64{2, 2, 2, 2, 2})
	got := c.String()
	for _, want := range []string{"test chart", "rising", "flat", "*", "+", "4.00", "0.00"} {
		if !strings.Contains(got, want) {
			t.Fatalf("chart missing %q:\n%s", want, got)
		}
	}
}

func TestChartEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	if got := c.String(); !strings.Contains(got, "no data") {
		t.Fatalf("empty chart rendered %q", got)
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := Chart{}
	c.Add("const", []float64{5, 5, 5})
	got := c.String()
	if !strings.Contains(got, "const") {
		t.Fatalf("constant-series chart broke: %s", got)
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{
		ID:     "fig0",
		Title:  "demo",
		Tables: []Table{sampleTable()},
		Notes:  []string{"a note"},
	}
	got := rep.String()
	for _, want := range []string{"fig0", "demo", "Smart EXP3", "note: a note"} {
		if !strings.Contains(got, want) {
			t.Fatalf("report missing %q:\n%s", want, got)
		}
	}
}

func TestReportMarkdown(t *testing.T) {
	rep := &Report{ID: "fig0", Title: "demo", Tables: []Table{sampleTable()}}
	got := rep.Markdown()
	if !strings.Contains(got, "## fig0 — demo") {
		t.Fatalf("markdown heading missing:\n%s", got)
	}
}

func TestWriteFiles(t *testing.T) {
	dir := t.TempDir()
	chart := Chart{Title: "c"}
	chart.Add("s", []float64{1, 2, 3})
	rep := &Report{
		ID:     "figX",
		Title:  "demo",
		Tables: []Table{sampleTable()},
		Charts: []Chart{chart},
	}
	if err := WriteFiles(dir, rep); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"figX.txt", "figX.md", "figX.chart1.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

func TestWriteFilesCreatesNestedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b")
	rep := &Report{ID: "r", Title: "t"}
	if err := WriteFiles(dir, rep); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "r.txt")); err != nil {
		t.Fatal(err)
	}
}
