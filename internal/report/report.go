// Package report renders evaluation results as text: aligned tables for the
// paper's tables, ASCII line charts and CSV series for its figures. Go has
// no plotting library in the standard library, so the reproducible artifact
// for each figure is its numeric series plus a terminal rendering.
package report

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of pre-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float with the given number of decimals (the table-cell
// helper).
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// Series is one named line of a chart.
type Series struct {
	Name   string
	Values []float64
}

// Chart is a titled collection of series over a shared x axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// XStart and XStep map series indices to x values (defaults 0 and 1).
	XStart float64
	XStep  float64
	Series []Series
}

// Add appends a series.
func (c *Chart) Add(name string, values []float64) {
	c.Series = append(c.Series, Series{Name: name, Values: values})
}

// CSV renders the chart's data as "x,<name1>,<name2>,..." rows.
func (c *Chart) CSV() string {
	var b strings.Builder
	b.WriteString("x")
	maxLen := 0
	for _, s := range c.Series {
		b.WriteString("," + s.Name)
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	b.WriteByte('\n')
	step := c.XStep
	if step == 0 {
		step = 1
	}
	for i := 0; i < maxLen; i++ {
		b.WriteString(strconv.FormatFloat(c.XStart+float64(i)*step, 'f', -1, 64))
		for _, s := range c.Series {
			b.WriteByte(',')
			if i < len(s.Values) {
				b.WriteString(strconv.FormatFloat(s.Values[i], 'f', 4, 64))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// markers distinguish series in the ASCII rendering.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&', '$'}

// String renders the chart as an ASCII plot (width×height character cells)
// with a legend. Series are downsampled or stretched to the width.
func (c *Chart) String() string {
	const (
		width  = 84
		height = 18
	)
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}

	lo, hi, any := rangeOf(c.Series)
	if !any {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		n := len(s.Values)
		if n == 0 {
			continue
		}
		for col := 0; col < width; col++ {
			idx := col * (n - 1) / max(width-1, 1)
			v := s.Values[idx]
			row := int((hi - v) / (hi - lo) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = m
		}
	}

	yTop := fmt.Sprintf("%8.2f", hi)
	yBot := fmt.Sprintf("%8.2f", lo)
	for r := range grid {
		switch r {
		case 0:
			b.WriteString(yTop)
		case height - 1:
			b.WriteString(yBot)
		default:
			b.WriteString(strings.Repeat(" ", 8))
		}
		b.WriteString(" |")
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 9) + "+" + strings.Repeat("-", width) + "\n")
	step := c.XStep
	if step == 0 {
		step = 1
	}
	maxLen := 0
	for _, s := range c.Series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	xEnd := c.XStart + float64(maxLen-1)*step
	fmt.Fprintf(&b, "%10s%-20s%*s\n", "", formatX(c.XStart, c.XLabel), width-20,
		formatX(xEnd, ""))
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func formatX(v float64, label string) string {
	s := strconv.FormatFloat(v, 'f', -1, 64)
	if label != "" {
		s += " " + label
	}
	return s
}

func rangeOf(series []Series) (lo, hi float64, any bool) {
	for _, s := range series {
		for _, v := range s.Values {
			if !any {
				lo, hi, any = v, v, true
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi, any
}

// Report bundles everything one experiment produces.
type Report struct {
	ID     string
	Title  string
	Tables []Table
	Charts []Chart
	Notes  []string
}

// String renders the full report as plain text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", r.ID, r.Title)
	for i := range r.Tables {
		b.WriteString(r.Tables[i].String())
		b.WriteByte('\n')
	}
	for i := range r.Charts {
		b.WriteString(r.Charts[i].String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// Markdown renders the full report as markdown.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	for i := range r.Tables {
		b.WriteString(r.Tables[i].Markdown())
		b.WriteByte('\n')
	}
	for i := range r.Charts {
		fmt.Fprintf(&b, "**%s**\n\n```\n%s```\n\n", r.Charts[i].Title, r.Charts[i].String())
	}
	for _, n := range r.Notes {
		b.WriteString("> " + n + "\n")
	}
	return b.String()
}
