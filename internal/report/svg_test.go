package report

import (
	"encoding/xml"
	"strconv"
	"strings"
	"testing"
)

func TestSVGWellFormedXML(t *testing.T) {
	c := Chart{Title: "distance & gain <test>", XLabel: "slot"}
	c.Add("Smart EXP3", []float64{10, 5, 2, 1})
	c.Add("Greedy", []float64{10, 12, 14, 15})
	svg := c.SVG()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, svg)
		}
	}
}

func TestSVGContainsSeriesAndTitle(t *testing.T) {
	c := Chart{Title: "my title"}
	c.Add("series-a", []float64{1, 2, 3})
	svg := c.SVG()
	for _, want := range []string{"my title", "series-a", "<polyline", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

func TestSVGEmptyChart(t *testing.T) {
	var c Chart
	if svg := c.SVG(); !strings.Contains(svg, "no data") {
		t.Fatalf("empty chart SVG = %q", svg)
	}
}

func TestSVGConstantSeries(t *testing.T) {
	c := Chart{}
	c.Add("flat", []float64{3, 3, 3})
	svg := c.SVG()
	if !strings.Contains(svg, "<polyline") {
		t.Fatal("constant series produced no polyline")
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("SVG contains non-finite coordinates")
	}
}

func TestSVGEscapesNames(t *testing.T) {
	c := Chart{Title: `a<b>"c"&d`}
	c.Add("x&y", []float64{1})
	svg := c.SVG()
	if strings.Contains(svg, `a<b>`) {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "x&amp;y") {
		t.Fatal("series name not escaped")
	}
}

func TestSVGCoordinatesWithinViewport(t *testing.T) {
	c := Chart{}
	c.Add("s", []float64{-100, 0, 100})
	svg := c.SVG()
	// Every polyline point must sit inside the 840×420 viewport.
	start := strings.Index(svg, `<polyline points="`)
	if start < 0 {
		t.Fatal("no polyline")
	}
	rest := svg[start+len(`<polyline points="`):]
	end := strings.Index(rest, `"`)
	for _, pt := range strings.Fields(rest[:end]) {
		xy := strings.Split(pt, ",")
		if len(xy) != 2 {
			t.Fatalf("bad point %q", pt)
		}
		x, err := strconv.ParseFloat(xy[0], 64)
		if err != nil {
			t.Fatalf("bad x in %q: %v", pt, err)
		}
		y, err := strconv.ParseFloat(xy[1], 64)
		if err != nil {
			t.Fatalf("bad y in %q: %v", pt, err)
		}
		if x < 0 || x > 840 || y < 0 || y > 420 {
			t.Fatalf("point %q outside the viewport", pt)
		}
	}
}
