package report

import (
	"fmt"
	"strings"
)

// SVG renders the chart as a standalone SVG line plot with axes, ticks and a
// legend. Go has no plotting library in its standard ecosystem, so this
// hand-rolled renderer is how the reproduction's figures become viewable
// graphics; the numeric truth stays in CSV().
func (c *Chart) SVG() string {
	const (
		width   = 840
		height  = 420
		marginL = 70
		marginR = 180
		marginT = 40
		marginB = 50
	)
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB

	lo, hi, any := rangeOf(c.Series)
	if !any {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="200" height="40"><text x="10" y="25">no data</text></svg>`
	}
	if hi == lo {
		hi = lo + 1
	}
	// Pad the y range slightly so extreme points are not clipped by strokes.
	pad := (hi - lo) * 0.03
	lo, hi = lo-pad, hi+pad

	maxLen := 0
	for _, s := range c.Series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	step := c.XStep
	if step == 0 {
		step = 1
	}
	xLo := c.XStart
	xHi := c.XStart + float64(maxLen-1)*step
	if xHi == xLo {
		xHi = xLo + 1
	}

	toX := func(x float64) float64 {
		return marginL + (x-xLo)/(xHi-xLo)*float64(plotW)
	}
	toY := func(y float64) float64 {
		return marginT + (hi-y)/(hi-lo)*float64(plotH)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="22" font-size="14" font-weight="bold">%s</text>`+"\n",
			marginL, escapeXML(c.Title))
	}

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)

	// Ticks: 5 on each axis.
	for i := 0; i <= 4; i++ {
		yv := lo + (hi-lo)*float64(i)/4
		y := toY(yv)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`+"\n",
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%.4g</text>`+"\n",
			marginL-6, y+4, yv)

		xv := xLo + (xHi-xLo)*float64(i)/4
		x := toX(xv)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%.4g</text>`+"\n",
			x, marginT+plotH+18, xv)
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW/2, height-8, escapeXML(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%d" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
			marginT+plotH/2, marginT+plotH/2, escapeXML(c.YLabel))
	}

	for si, s := range c.Series {
		color := svgPalette[si%len(svgPalette)]
		if len(s.Values) > 0 {
			var pts strings.Builder
			for i, v := range s.Values {
				if i > 0 {
					pts.WriteByte(' ')
				}
				fmt.Fprintf(&pts, "%.1f,%.1f", toX(c.XStart+float64(i)*step), toY(v))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				pts.String(), color)
		}
		// Legend entry.
		ly := marginT + 16*si
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`+"\n",
			marginL+plotW+12, ly, marginL+plotW+34, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n",
			marginL+plotW+40, ly+4, escapeXML(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// svgPalette is a colorblind-friendly line palette.
var svgPalette = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00",
	"#56b4e9", "#f0e442", "#000000", "#999999",
}

func escapeXML(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}
