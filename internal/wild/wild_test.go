package wild

import (
	"testing"

	"smartexp3/internal/core"
	"smartexp3/internal/rngutil"
)

func TestRunCompletesDownload(t *testing.T) {
	res, err := Run(Config{FileMB: 50, Algorithm: core.AlgSmartEXP3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("download did not complete")
	}
	if res.Minutes <= 0 || res.Slots <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{FileMB: 50, Algorithm: core.AlgSmartEXP3, Seed: 7}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Minutes != b.Minutes || a.Switches != b.Switches {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{FileMB: 0, Algorithm: core.AlgGreedy}); err == nil {
		t.Fatal("want error for zero file size")
	}
	env := Environment{}
	if _, err := Run(Config{FileMB: 10, Algorithm: core.AlgGreedy, Environment: &env}); err == nil {
		t.Fatal("want error for capacity-free environment")
	}
}

func TestRunTimeAccounting(t *testing.T) {
	// Completion time can never exceed slots × slot duration, and the last
	// slot is partially charged.
	res, err := Run(Config{FileMB: 30, Algorithm: core.AlgGreedy, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	maxMinutes := float64(res.Slots) * 15 / 60
	if res.Minutes > maxMinutes+1e-9 {
		t.Fatalf("minutes %v exceed %d slots worth (%v)", res.Minutes, res.Slots, maxMinutes)
	}
}

func TestBackgroundLoadStaysInBounds(t *testing.T) {
	l := backgroundLoad{users: 2, minUsers: 1, maxUsers: 4, moveProb: 1}
	rng := rngutil.New(5)
	for i := 0; i < 1000; i++ {
		l.step(rng)
		if l.users < 1 || l.users > 4 {
			t.Fatalf("load %d escaped [1,4]", l.users)
		}
	}
}

func TestSmartFasterThanGreedyOnAverage(t *testing.T) {
	// The Section VII-B claim at reduced scale. Averaged over seeds the
	// adaptive policy must finish no slower than Greedy.
	var smart, greedy float64
	const runs = 10
	for s := int64(0); s < runs; s++ {
		rs, err := Run(Config{FileMB: 200, Algorithm: core.AlgSmartEXP3, Seed: 50 + s})
		if err != nil {
			t.Fatal(err)
		}
		rg, err := Run(Config{FileMB: 200, Algorithm: core.AlgGreedy, Seed: 50 + s})
		if err != nil {
			t.Fatal(err)
		}
		smart += rs.Minutes
		greedy += rg.Minutes
	}
	if smart > greedy*1.05 {
		t.Fatalf("smart %.1f min noticeably slower than greedy %.1f min", smart/runs, greedy/runs)
	}
}
