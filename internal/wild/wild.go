// Package wild emulates the in-the-wild experiment of Section VII-B: a
// single device in a coffee shop downloads a 500 MB file, choosing between a
// public WiFi network and a cellular network whose effective capacity is
// modulated by unobserved background users (other patrons, cross traffic).
// The metric is download completion time; the paper reports Smart EXP3
// finishing ≈1.2× faster than Greedy over 12 runs of each.
//
// The substitution (real coffee shop → hidden Markov background load) is
// documented in DESIGN.md §4: what matters for the experiment is that the
// environment is nonstationary and unobservable, so a learner that keeps
// exploring can track the momentarily better network while a one-shot
// learner cannot.
package wild

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"smartexp3/internal/core"
	"smartexp3/internal/dist"
	"smartexp3/internal/rngutil"
)

// Network indices.
const (
	WiFiIndex     = 0
	CellularIndex = 1
)

// backgroundLoad is a hidden Markov-modulated population of background users
// sharing a network: it dwells in one regime (a fixed head count) for a
// geometric number of slots, then jumps to a fresh uniformly drawn head
// count — groups of patrons arriving and leaving together.
type backgroundLoad struct {
	users    int
	minUsers int
	maxUsers int
	// moveProb is the per-slot probability that the population changes, so
	// regimes persist for ≈1/moveProb slots.
	moveProb float64
}

func (l *backgroundLoad) step(rng *rand.Rand) {
	if rng.Float64() >= l.moveProb {
		return
	}
	span := l.maxUsers - l.minUsers
	if span <= 0 {
		l.users = l.minUsers
		return
	}
	l.users = l.minUsers + rng.Intn(span+1)
}

// channel is one network of the coffee-shop environment.
type channel struct {
	capacityMbps float64
	load         backgroundLoad
	noise        float64
}

// rate returns the device's achievable bit rate this slot: an equal share of
// the capacity among the device and the background users, with lognormal-ish
// measurement noise.
func (ch *channel) rate(rng *rand.Rand) float64 {
	share := ch.capacityMbps / float64(ch.load.users+1)
	factor := math.Exp(ch.noise * rng.NormFloat64())
	return share * factor
}

// Config parameterizes one in-the-wild download.
type Config struct {
	// FileMB is the file size in megabytes (the paper downloads 500 MB).
	FileMB float64
	// Algorithm is the selection policy under test.
	Algorithm core.Algorithm
	Seed      int64
	// SlotSeconds defaults to 15.
	SlotSeconds float64
	// MaxSlots caps the run (default: enough for 16× the fair-share time).
	MaxSlots int
	// Core configures EXP3-family policies; zero value = core.DefaultConfig.
	Core core.Config
	// WiFiDelay and CellularDelay model switching cost; nil = defaults.
	WiFiDelay     dist.Sampler
	CellularDelay dist.Sampler
	// Environment overrides the default coffee-shop model when non-nil.
	Environment *Environment
}

// Environment describes the two networks and their hidden load processes.
type Environment struct {
	WiFiCapacityMbps     float64
	CellularCapacityMbps float64
	WiFiUsersMin         int
	WiFiUsersMax         int
	CellularUsersMin     int
	CellularUsersMax     int
	ChurnProbability     float64
	Noise                float64
}

// DefaultEnvironment models a busy coffee shop: a nominally fast but heavily
// contended public WiFi and a slower, steadier tethered cellular link.
// Capacities and churn are calibrated so a 500 MB download takes on the
// order of the paper's 13–16 minutes, and so that which network is better
// flips several times during a download — the regime in which continued
// exploration pays and a one-shot learner gets stuck.
func DefaultEnvironment() Environment {
	return Environment{
		WiFiCapacityMbps:     16,
		CellularCapacityMbps: 8.5,
		WiFiUsersMin:         0,
		WiFiUsersMax:         7,
		CellularUsersMin:     0,
		CellularUsersMax:     3,
		// Patrons arrive and leave on the scale of minutes, so the "better"
		// network flips a handful of times per download, persisting long
		// enough that adapting to the flip pays for the switching cost.
		ChurnProbability: 0.06,
		Noise:            0.15,
	}
}

// Result is the outcome of one download.
type Result struct {
	// Minutes is the completion time (the paper's headline metric).
	Minutes float64
	// Slots is the number of slots used.
	Slots int
	// Switches counts network changes.
	Switches int
	// Completed is false when MaxSlots elapsed before the file finished.
	Completed bool
}

// Run performs one 500 MB-style download with the given policy.
func Run(cfg Config) (*Result, error) {
	if cfg.FileMB <= 0 {
		return nil, errors.New("wild: file size must be positive")
	}
	slotSec := cfg.SlotSeconds
	if slotSec <= 0 {
		slotSec = 15
	}
	env := DefaultEnvironment()
	if cfg.Environment != nil {
		env = *cfg.Environment
	}
	coreCfg := cfg.Core
	if coreCfg.Gamma == nil {
		coreCfg = core.DefaultConfig()
	}
	wifiDelay := cfg.WiFiDelay
	if wifiDelay == nil {
		wifiDelay = dist.DefaultWiFiDelay()
	}
	cellDelay := cfg.CellularDelay
	if cellDelay == nil {
		cellDelay = dist.DefaultCellularDelay()
	}
	maxSlots := cfg.MaxSlots
	if maxSlots <= 0 {
		fairMbps := (env.WiFiCapacityMbps + env.CellularCapacityMbps) / 4
		if fairMbps <= 0 {
			return nil, errors.New("wild: environment has no capacity")
		}
		maxSlots = int(cfg.FileMB*8/fairMbps/slotSec*16) + 16
	}

	rng := rngutil.New(cfg.Seed)
	envRng := rngutil.NewChild(cfg.Seed, 1)
	policy, err := core.New(cfg.Algorithm, []int{WiFiIndex, CellularIndex}, coreCfg, rng)
	if err != nil {
		return nil, err
	}

	channels := [2]channel{
		WiFiIndex: {
			capacityMbps: env.WiFiCapacityMbps,
			noise:        env.Noise,
			load: backgroundLoad{
				users:    (env.WiFiUsersMin + env.WiFiUsersMax) / 2,
				minUsers: env.WiFiUsersMin,
				maxUsers: env.WiFiUsersMax,
				moveProb: env.ChurnProbability,
			},
		},
		CellularIndex: {
			capacityMbps: env.CellularCapacityMbps,
			noise:        env.Noise,
			load: backgroundLoad{
				users:    (env.CellularUsersMin + env.CellularUsersMax) / 2,
				minUsers: env.CellularUsersMin,
				maxUsers: env.CellularUsersMax,
				moveProb: env.ChurnProbability,
			},
		},
	}
	scale := math.Max(env.WiFiCapacityMbps, env.CellularCapacityMbps)

	res := &Result{}
	remainingMb := cfg.FileMB * 8
	last := -1
	for t := 0; t < maxSlots; t++ {
		res.Slots = t + 1
		channels[WiFiIndex].load.step(envRng)
		channels[CellularIndex].load.step(envRng)

		choice := policy.Select()
		rate := channels[choice].rate(envRng)

		var delay float64
		if last >= 0 && choice != last {
			res.Switches++
			if choice == CellularIndex {
				delay = cellDelay.Sample(rng)
			} else {
				delay = wifiDelay.Sample(rng)
			}
			delay = math.Min(math.Max(delay, 0), slotSec)
		}
		last = choice

		effective := slotSec - delay
		downloaded := rate * effective
		elapsed := slotSec
		if downloaded >= remainingMb {
			// The file finishes mid-slot; charge only the time used.
			elapsed = delay + remainingMb/rate
			remainingMb = 0
		} else {
			remainingMb -= downloaded
		}
		res.Minutes += elapsed / 60

		policy.Observe(math.Min(rate/scale, 1))
		if remainingMb <= 0 {
			res.Completed = true
			return res, nil
		}
	}
	return res, fmt.Errorf("wild: download incomplete after %d slots", maxSlots)
}
