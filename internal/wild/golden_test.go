package wild

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"smartexp3/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestRunGolden pins the in-the-wild emulation end to end: a table of
// configurations spanning the policies, file sizes and seeds, with every
// result field recorded in one golden file. Any drift in the environment
// model, the background-load walk, the delay sampling or the policy
// integration shows up as a diff here before it silently re-dates the
// Section VII-B comparison. Regenerate with
// `go test ./internal/wild -run Golden -update` and review the diff.
func TestRunGolden(t *testing.T) {
	cases := []Config{
		{FileMB: 50, Algorithm: core.AlgSmartEXP3, Seed: 1},
		{FileMB: 50, Algorithm: core.AlgSmartEXP3, Seed: 2},
		{FileMB: 50, Algorithm: core.AlgGreedy, Seed: 1},
		{FileMB: 50, Algorithm: core.AlgEXP3, Seed: 1},
		{FileMB: 50, Algorithm: core.AlgFixedRandom, Seed: 1},
		{FileMB: 200, Algorithm: core.AlgSmartEXP3, Seed: 3},
		{FileMB: 10, Algorithm: core.AlgGreedy, Seed: 4, SlotSeconds: 30},
	}
	var buf bytes.Buffer
	fmt.Fprintln(&buf, "algorithm,file_mb,seed,slot_s,minutes,slots,switches,completed")
	for _, cfg := range cases {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		slotSec := cfg.SlotSeconds
		if slotSec == 0 {
			slotSec = 15
		}
		fmt.Fprintf(&buf, "%v,%g,%d,%g,%.6f,%d,%d,%v\n",
			cfg.Algorithm, cfg.FileMB, cfg.Seed, slotSec,
			res.Minutes, res.Slots, res.Switches, res.Completed)
	}
	path := filepath.Join("testdata", "golden_runs.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatalf("wild run results drifted from %s:\nwant:\n%sgot:\n%s", path, want, buf.Bytes())
	}
}

// TestRunTable is the table-driven sweep of the config surface: every
// EXP3-family policy and the baselines complete a small download, and the
// obvious invariants hold for each.
func TestRunTable(t *testing.T) {
	algs := []core.Algorithm{
		core.AlgEXP3, core.AlgBlockEXP3, core.AlgHybridBlockEXP3,
		core.AlgSmartEXP3NoReset, core.AlgSmartEXP3,
		core.AlgGreedy, core.AlgFixedRandom,
	}
	for _, alg := range algs {
		t.Run(alg.String(), func(t *testing.T) {
			res, err := Run(Config{FileMB: 30, Algorithm: alg, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatalf("%v did not complete a 30 MB download", alg)
			}
			if res.Minutes <= 0 || res.Slots <= 0 {
				t.Fatalf("degenerate result %+v", res)
			}
			if res.Switches < 0 || res.Switches >= res.Slots {
				t.Fatalf("switch count %d out of range for %d slots", res.Switches, res.Slots)
			}
			maxMinutes := float64(res.Slots) * 15 / 60
			if res.Minutes > maxMinutes+1e-9 {
				t.Fatalf("minutes %v exceed the %d slots that produced them", res.Minutes, res.Slots)
			}
		})
	}
}

// TestEnvironmentValidationTable pins the config error surface.
func TestEnvironmentValidationTable(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero file", Config{Algorithm: core.AlgGreedy}},
		{"negative file", Config{FileMB: -1, Algorithm: core.AlgGreedy}},
		{"no capacity", Config{FileMB: 10, Algorithm: core.AlgGreedy, Environment: &Environment{}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tc.cfg); err == nil {
				t.Fatal("want a config error")
			}
		})
	}
	// A one-network environment is degenerate but legal: the device simply
	// has nowhere better to go, and the download still finishes.
	res, err := Run(Config{FileMB: 10, Algorithm: core.AlgGreedy, Seed: 5,
		Environment: &Environment{WiFiCapacityMbps: 5, WiFiUsersMax: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("WiFi-only environment did not complete the download")
	}
}
