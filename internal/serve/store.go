package serve

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"smartexp3/internal/core"
	"smartexp3/internal/rngutil"
)

// Config fixes a Store's identity. Two stores with equal Configs fed the
// same request sequence produce identical decisions — that is the unit the
// snapshot format protects (a snapshot only restores into a matching
// Config).
type Config struct {
	// Algorithm must be one of the adversarial-bandit family served by
	// core.SmartEXP3 (EXP3, Block EXP3, Hybrid Block EXP3, Smart EXP3
	// with or without reset): those are the policies whose state is
	// exportable for snapshots. Zero means core.AlgSmartEXP3.
	Algorithm core.Algorithm
	// Policy holds the algorithm parameters. The zero value means
	// core.DefaultConfig(), the paper's Section V values.
	Policy core.Config
	// Seed roots every device's generator: device d draws from
	// rngutil.ChildSeed(Seed, int64(d)).
	Seed int64
	// Shards is the device-map shard count, rounded up to a power of two.
	// Zero scales with GOMAXPROCS (4× cores) so shard mutexes stay
	// uncontended under parallel load.
	Shards int
	// MaxArms bounds a request's arm set (wire-level hostility guard).
	// Zero means 1024.
	MaxArms int
	// EvictAfter enables idle-device eviction: a device that has seen no
	// Select or applied Feedback for at least this long is retired by the
	// next EvictIdle sweep, exactly as if its client had called Release —
	// a later Select for the same id starts a fresh session from the
	// device's root seed, so replays that include the eviction still
	// agree. Zero disables eviction entirely (no idle bookkeeping, no
	// sweep work).
	EvictAfter time.Duration
	// Clock supplies the time base for idle tracking. Zero means time.Now.
	// Injected so eviction tests (and replays of them) drive a fake clock
	// deterministically instead of sleeping.
	Clock func() time.Time
	// OnEvict, when set, receives each evicted device's final state before
	// the session is retired — the snapshot-before-evict hook that lets an
	// operator archive long-idle learners instead of discarding them. It
	// is called outside the shard lock, after the device is already gone
	// from the store; calling back into the store is safe.
	OnEvict func(DeviceSnapshot)
}

const defaultMaxArms = 1024

// withDefaults resolves the zero values. Idempotent, so both NewStore and
// the daemon's flag plumbing may call it.
func (c Config) withDefaults() Config {
	if c.Algorithm == 0 {
		c.Algorithm = core.AlgSmartEXP3
	}
	if c.Policy.Beta == 0 { // β ∈ (0,1], so 0 marks an unset Config
		c.Policy = core.DefaultConfig()
	}
	if c.Shards <= 0 {
		c.Shards = 4 * runtime.GOMAXPROCS(0)
	}
	pow2 := 1
	for pow2 < c.Shards {
		pow2 <<= 1
	}
	c.Shards = pow2 // power of two so shard routing is a mask, not a modulo
	if c.MaxArms <= 0 {
		c.MaxArms = defaultMaxArms
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// shard is one lock domain of the device map. The free list pools retired
// devices: their policies are Reinitialized in place on the next acquire,
// so a device joining after another left allocates nothing.
type shard struct {
	mu      sync.Mutex
	devices map[uint64]*device
	free    []*device
	stats   shardStats // counted under mu only when the store is instrumented
}

// Store holds the per-device policy state behind the service. All methods
// are safe for concurrent use; each locks only the shards it touches.
type Store struct {
	cfg     Config
	shards  []shard
	mask    uint64
	devices atomic.Int64  // active device sessions
	dropped atomic.Uint64 // feedback/slots discarded for not matching a pending selection
	evicted atomic.Uint64 // sessions retired by idle eviction
	owner   atomic.Pointer[OwnershipFunc]
	m       *storeMetrics // nil until Instrument; set before traffic starts
}

// OwnershipFunc answers whether this store owns the device with the
// given routing key (serve.RouteKey of its id). When it does not, epoch
// and owner describe where the device lives instead: the partition-table
// epoch that moved it and the owning peer's data address ("" when the
// answerer has no table yet and owns nothing). The function must be pure
// and allocation-free — it runs inside the warm Select/Feedback paths
// under a shard lock.
type OwnershipFunc func(key uint64) (owned bool, epoch uint64, owner string)

// NotOwnerError is the redirect a store raises for a device it does not
// own: the client should refresh its partition table to at least Epoch
// and retry against Owner (a data address; empty when the rejecting peer
// cannot name one). It is a request-level error — the session remains
// usable.
type NotOwnerError struct {
	Epoch uint64
	Owner string
}

func (e *NotOwnerError) Error() string {
	return fmt.Sprintf("serve: not the owner (epoch %d, owner %q)", e.Epoch, e.Owner)
}

// notOwned is the cold redirect path, kept out of the allocfree-marked
// bodies because constructing the error allocates (by design: a redirect
// is never the warm path).
func notOwned(epoch uint64, owner string) error {
	return &NotOwnerError{Epoch: epoch, Owner: owner}
}

// SetOwnership installs (or, with nil, removes) the store's ownership
// filter. With one installed, Select for an un-owned device returns
// *NotOwnerError, Feedback/ApplyBatchOwned reject instead of applying,
// and Release/EvictIdle leave un-owned sessions untouched.
//
// Ordering contract: the pointer is re-read under each shard lock, so a
// caller that installs a rejecting filter and then locks every shard in
// turn (as a migration drain's SnapshotRange does) is guaranteed that any
// request admitted by the previous filter finished before the cut
// reached its shard — the cut captures it; everything after sees the new
// filter. That is what makes a drained range globally consistent without
// stopping the rest of the store.
func (s *Store) SetOwnership(fn OwnershipFunc) {
	if fn == nil {
		s.owner.Store(nil)
		return
	}
	s.owner.Store(&fn)
}

// NewStore builds an empty store. The algorithm is validated eagerly — a
// daemon must refuse to boot as a policy it cannot snapshot, not discover it
// on the first request.
func NewStore(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	probe, err := core.New(cfg.Algorithm, []int{0}, cfg.Policy, rngutil.New(0))
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if _, ok := probe.(*core.SmartEXP3); !ok {
		return nil, fmt.Errorf("serve: %v has no exportable policy state; serve the EXP3 family", cfg.Algorithm)
	}
	s := &Store{cfg: cfg, shards: make([]shard, cfg.Shards), mask: uint64(cfg.Shards - 1)}
	for i := range s.shards {
		s.shards[i].devices = make(map[uint64]*device)
	}
	return s, nil
}

// Config returns the resolved configuration the store was built with.
func (s *Store) Config() Config { return s.cfg }

// Devices returns the number of active device sessions.
func (s *Store) Devices() int { return int(s.devices.Load()) }

// Dropped returns how many feedback reports and abandoned selections were
// discarded for not matching an outstanding Select. A nonzero rate means
// clients are retrying across availability changes or reporting stale arms.
func (s *Store) Dropped() uint64 { return s.dropped.Load() }

func (s *Store) shardIndex(deviceID uint64) uint64 { return mix64(deviceID) & s.mask }

// Select answers "which arm now?" for one device. arms must be non-empty,
// strictly ascending and within the configured MaxArms. A new device id
// creates a session (pooled when possible); a repeated Select with the same
// arms and no intervening Feedback returns the same arm — and the same slot
// — idempotently, which is what lets a client that lost the response simply
// ask again after a reconnect.
//
// The returned slot names this selection: it advances only when the
// selection settles (Feedback applied, or abandoned by an arm-set change).
// Feedback must quote it back, so a report duplicated across a reconnect
// cannot credit a later selection that happens to pick the same arm.
//
//repolint:allocfree via TestStoreWarmSelectDoesNotAllocate
func (s *Store) Select(deviceID uint64, arms []int) (int, uint64, error) {
	if err := s.validateArms(deviceID, arms); err != nil {
		return -1, 0, err
	}
	sh := &s.shards[s.shardIndex(deviceID)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fn := s.owner.Load(); fn != nil {
		if owned, epoch, owner := (*fn)(mix64(deviceID)); !owned {
			return -1, 0, notOwned(epoch, owner)
		}
	}
	var start time.Time
	if s.m != nil {
		sh.stats.selects++
		if sh.stats.selects&selectSampleMask == 0 {
			start = time.Now()
		}
	}
	dev := sh.devices[deviceID]
	if dev == nil {
		var err error
		if dev, err = s.acquire(sh, deviceID, arms); err != nil {
			return -1, 0, err
		}
		sh.devices[deviceID] = dev
		s.devices.Add(1)
	}
	if s.cfg.EvictAfter > 0 {
		dev.lastTouch = s.cfg.Clock().UnixNano()
	}
	if dev.pending >= 0 {
		if equalArms(dev.policy.Available(), arms) {
			if s.m != nil {
				sh.stats.dedupHits++
				if !start.IsZero() {
					s.m.selectLatency.Observe(time.Since(start).Nanoseconds())
				}
			}
			return dev.pending, dev.slot, nil // lost-response retry: same slot, same arm
		}
		// The arm set moved under an unanswered selection. Settle the
		// outstanding slot as zero gain so Select/Observe stay paired,
		// then fall through to a fresh selection over the new set.
		dev.policy.Observe(0)
		dev.pending = -1
		dev.slot++
		s.dropped.Add(1)
	}
	if !equalArms(dev.policy.Available(), arms) {
		dev.policy.SetAvailable(arms)
	}
	arm := dev.policy.Select()
	dev.pending = arm
	if !start.IsZero() {
		s.m.selectLatency.Observe(time.Since(start).Nanoseconds())
	}
	return arm, dev.slot, nil
}

// validateArms rejects malformed arm sets. It is Select's cold rejection
// path, kept out of the allocfree-marked body because the formatted errors
// allocate (by design: a rejected request is never the warm path).
func (s *Store) validateArms(deviceID uint64, arms []int) error {
	if len(arms) == 0 {
		return fmt.Errorf("serve: device %d: empty arm set", deviceID)
	}
	if len(arms) > s.cfg.MaxArms {
		return fmt.Errorf("serve: device %d: %d arms exceeds the %d limit", deviceID, len(arms), s.cfg.MaxArms)
	}
	if !ascendingArms(arms) {
		return fmt.Errorf("serve: device %d: arms must be strictly ascending", deviceID)
	}
	return nil
}

// acquire produces a device session for deviceID, reusing a pooled one when
// the shard has retirees. Caller holds sh.mu.
func (s *Store) acquire(sh *shard, deviceID uint64, arms []int) (*device, error) {
	seed := rngutil.ChildSeed(s.cfg.Seed, int64(deviceID))
	if n := len(sh.free); n > 0 {
		dev := sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		dev.src.Seed(seed)
		dev.policy.Reinit(arms, dev.rng)
		dev.pending = -1
		dev.slot = 0
		dev.lastTouch = 0
		return dev, nil
	}
	src := rngutil.NewSource(seed)
	rng := rand.New(src)
	pol, err := core.New(s.cfg.Algorithm, arms, s.cfg.Policy, rng)
	if err != nil {
		return nil, fmt.Errorf("serve: device %d: %w", deviceID, err)
	}
	sp, ok := pol.(*core.SmartEXP3)
	if !ok { // NewStore guards this; defend against config mutation anyway
		return nil, fmt.Errorf("serve: %v has no exportable policy state", s.cfg.Algorithm)
	}
	return &device{policy: sp, src: src, rng: rng, pending: -1}, nil
}

// Feedback reports the reward of the outstanding selection for deviceID,
// quoting the slot that Select returned alongside the arm. It returns true
// when the report was applied; a report for an unknown device, a
// non-pending arm, or a settled slot is counted in Dropped and ignored —
// so feedback duplicated, reordered, or replayed across a reconnect cannot
// double-count a slot even when a later selection picks the same arm. A
// report for a device an installed ownership filter disowns is refused
// without touching state or the drop counter — the caller should re-route
// it (ApplyBatchOwned returns such items).
//
//repolint:allocfree via TestStoreChurnIsAllocationFreeWarm
func (s *Store) Feedback(deviceID uint64, arm int, slot uint64, reward float64) bool {
	sh := &s.shards[s.shardIndex(deviceID)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fn := s.owner.Load(); fn != nil {
		if owned, _, _ := (*fn)(mix64(deviceID)); !owned {
			return false
		}
	}
	return s.feedbackLocked(sh, deviceID, arm, slot, reward)
}

//repolint:allocfree via TestStoreChurnIsAllocationFreeWarm
func (s *Store) feedbackLocked(sh *shard, deviceID uint64, arm int, slot uint64, reward float64) bool {
	dev := sh.devices[deviceID]
	if dev == nil || dev.pending != arm || dev.slot != slot {
		s.dropped.Add(1)
		return false
	}
	if s.cfg.EvictAfter > 0 {
		dev.lastTouch = s.cfg.Clock().UnixNano()
	}
	dev.policy.Observe(reward) // core clamps to [0,1]
	dev.pending = -1
	dev.slot++
	if s.m != nil {
		sh.stats.feedbacks++
	}
	return true
}

// FeedbackItem is one buffered reward report.
type FeedbackItem struct {
	Device uint64
	Arm    int
	Slot   uint64
	Reward float64
}

// ApplyBatch applies a feedback batch, locking each shard at most once
// regardless of how the batch interleaves devices; it returns how many
// items were applied. This is the server's path for the client's buffered
// fire-and-forget feedback frames. Items for devices an installed
// ownership filter disowns are silently skipped; servers that must bounce
// them back use ApplyBatchOwned directly.
//
//repolint:allocfree via TestApplyBatchWarmDoesNotAllocate
func (s *Store) ApplyBatch(items []FeedbackItem) int {
	applied, _, _ := s.ApplyBatchOwned(items, nil)
	return applied
}

// ApplyBatchOwned is ApplyBatch plus the redirect contract: items for
// devices the store's ownership filter disowns are not applied (and not
// counted in Dropped — they are valid reports aimed at the wrong peer)
// but appended to rejected, which is returned re-sliced from its start so
// callers can retain one buffer across batches. epoch is the highest
// table epoch the filter quoted for a rejection, 0 when none; the server
// ships it with the bounced items so a stale client knows how far to
// refresh. The ownership pointer is re-read under each shard lock — see
// SetOwnership for why that makes migration cuts exact.
//
//repolint:allocfree via TestApplyBatchWarmDoesNotAllocate
func (s *Store) ApplyBatchOwned(items []FeedbackItem, rejected []FeedbackItem) (applied int, rej []FeedbackItem, epoch uint64) {
	rejected = rejected[:0]
	remaining := len(items)
	for si := range s.shards {
		if remaining == 0 {
			break
		}
		sh := &s.shards[si]
		locked := false
		var fn *OwnershipFunc
		for i := range items {
			it := &items[i]
			if s.shardIndex(it.Device) != uint64(si) {
				continue
			}
			if !locked {
				sh.mu.Lock()
				locked = true
				fn = s.owner.Load()
			}
			if fn != nil {
				if owned, ep, _ := (*fn)(mix64(it.Device)); !owned {
					if ep > epoch {
						epoch = ep
					}
					//repolint:ignore allocfree rejects occur only on the cold migration path and reuse the caller's retained buffer warm
					rejected = append(rejected, *it)
					remaining--
					continue
				}
			}
			if s.feedbackLocked(sh, it.Device, it.Arm, it.Slot, it.Reward) {
				applied++
			}
			remaining--
		}
		if locked {
			sh.mu.Unlock()
		}
	}
	return applied, rejected, epoch
}

// Release retires a device session, returning its policy state to the
// shard's pool. A later Select for the same id starts a fresh session from
// the device's root seed (release-then-return is part of the request
// history, so replays still agree). Releasing an unknown id is a no-op.
func (s *Store) Release(deviceID uint64) bool {
	sh := &s.shards[s.shardIndex(deviceID)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fn := s.owner.Load(); fn != nil {
		if owned, _, _ := (*fn)(mix64(deviceID)); !owned {
			return false // mid-migration: the cut must keep the session
		}
	}
	dev := sh.devices[deviceID]
	if dev == nil {
		return false
	}
	delete(sh.devices, deviceID)
	sh.free = append(sh.free, dev)
	s.devices.Add(-1)
	return true
}

// Evicted returns how many device sessions idle-eviction sweeps have
// retired over the store's lifetime.
func (s *Store) Evicted() uint64 { return s.evicted.Load() }

// EvictIdle retires every device whose last Select or applied Feedback is
// at least Config.EvictAfter in the past, as read from Config.Clock, and
// returns how many were evicted. Eviction is exactly a Release the client
// never sent: the session's policy state returns to the shard pool and a
// later Select for the same id starts fresh from the device's root seed —
// so a replay that includes the eviction still decides identically. With
// Config.OnEvict set, each evicted device's final state is delivered there
// first (captured under the shard lock, delivered after it), preserving
// the snapshot-before-evict contract. A zero EvictAfter makes the sweep a
// no-op, matching the disabled bookkeeping.
//
// Shards are swept one at a time, so service continues on the others; a
// device touched between the sweep's clock reading and its shard's turn is
// safe — staleness is re-checked under the shard lock.
func (s *Store) EvictIdle() int {
	if s.cfg.EvictAfter <= 0 {
		return 0
	}
	cutoff := s.cfg.Clock().Add(-s.cfg.EvictAfter).UnixNano()
	evicted := 0
	var snaps []DeviceSnapshot
	for si := range s.shards {
		sh := &s.shards[si]
		snaps = snaps[:0]
		sh.mu.Lock()
		fn := s.owner.Load()
		for id, dev := range sh.devices {
			if dev.lastTouch > cutoff {
				continue
			}
			if fn != nil {
				if owned, _, _ := (*fn)(mix64(id)); !owned {
					continue // mid-migration: the cut must keep the session
				}
			}
			if s.cfg.OnEvict != nil {
				ds := DeviceSnapshot{Device: id, Pending: dev.pending, Slot: dev.slot, Rng: dev.src.State()}
				dev.policy.ExportState(&ds.State)
				snaps = append(snaps, ds)
			}
			delete(sh.devices, id)
			sh.free = append(sh.free, dev)
			s.devices.Add(-1)
			evicted++
		}
		sh.mu.Unlock()
		for i := range snaps {
			s.cfg.OnEvict(snaps[i])
		}
	}
	if evicted > 0 {
		s.evicted.Add(uint64(evicted))
	}
	return evicted
}
