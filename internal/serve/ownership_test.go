package serve

import (
	"bytes"
	"errors"
	"sort"
	"testing"
	"time"
)

// splitAt builds an ownership function that owns keys <= pivot when low
// is true (keys > pivot otherwise), quoting the given epoch and owner
// address on rejections.
func splitAt(pivot uint64, low bool, epoch uint64, owner string) OwnershipFunc {
	return func(key uint64) (bool, uint64, string) {
		if (key <= pivot) == low {
			return true, epoch, ""
		}
		return false, epoch, owner
	}
}

func TestOwnershipRejectsSelectFeedbackAndRelease(t *testing.T) {
	s := newTestStore(t, Config{})
	arms := []int{1, 2, 3}
	const pivot = 1 << 63

	// Find one device on each side of the pivot.
	var owned, foreign uint64
	for id := uint64(1); ; id++ {
		if RouteKey(id) <= pivot {
			owned = id
		} else {
			foreign = id
		}
		if owned != 0 && foreign != 0 {
			break
		}
	}

	// Create a session for the soon-foreign device before the split, so the
	// rejection paths run against live state.
	if _, _, err := s.Select(foreign, arms); err != nil {
		t.Fatal(err)
	}
	s.SetOwnership(splitAt(pivot, true, 7, "peer-b:1234"))

	arm, slot, err := s.Select(owned, arms)
	if err != nil {
		t.Fatalf("owned device rejected: %v", err)
	}
	if !s.Feedback(owned, arm, slot, 0.5) {
		t.Fatal("owned device's feedback not applied")
	}

	_, _, err = s.Select(foreign, arms)
	var no *NotOwnerError
	if !errors.As(err, &no) {
		t.Fatalf("foreign Select returned %v, want *NotOwnerError", err)
	}
	if no.Epoch != 7 || no.Owner != "peer-b:1234" {
		t.Fatalf("redirect says epoch %d owner %q, want 7 %q", no.Epoch, no.Owner, "peer-b:1234")
	}
	before := s.Dropped()
	if s.Feedback(foreign, 1, 0, 0.5) {
		t.Fatal("foreign feedback applied")
	}
	if d := s.Dropped(); d != before {
		t.Fatalf("foreign feedback counted as dropped (%d -> %d); it should be refused silently", before, d)
	}
	if s.Release(foreign) {
		t.Fatal("foreign Release retired a mid-migration session")
	}
	if n := s.Devices(); n != 2 {
		t.Fatalf("store holds %d devices, want 2 (foreign session must survive)", n)
	}

	// Clearing the filter restores full ownership.
	s.SetOwnership(nil)
	if _, _, err := s.Select(foreign, arms); err != nil {
		t.Fatalf("Select after clearing ownership: %v", err)
	}
}

func TestApplyBatchOwnedPartitionsRejects(t *testing.T) {
	s := newTestStore(t, Config{})
	arms := []int{0, 1}
	const pivot = 1 << 63

	// Establish pending selections for a mix of owned and foreign devices.
	var items []FeedbackItem
	for id := uint64(1); id <= 12; id++ {
		arm, slot, err := s.Select(id, arms)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, FeedbackItem{Device: id, Arm: arm, Slot: slot, Reward: 0.5})
	}
	s.SetOwnership(splitAt(pivot, true, 9, "peer-b"))

	applied, rej, epoch := s.ApplyBatchOwned(items, nil)
	wantRej := 0
	for _, it := range items {
		if RouteKey(it.Device) > pivot {
			wantRej++
		}
	}
	if wantRej == 0 || wantRej == len(items) {
		t.Fatalf("test ids landed all on one side of the pivot (%d/%d rejected); pick a different pivot", wantRej, len(items))
	}
	if applied != len(items)-wantRej {
		t.Fatalf("applied %d, want %d", applied, len(items)-wantRej)
	}
	if len(rej) != wantRej {
		t.Fatalf("rejected %d items, want %d", len(rej), wantRej)
	}
	if epoch != 9 {
		t.Fatalf("rejection epoch %d, want 9", epoch)
	}
	if d := s.Dropped(); d != 0 {
		t.Fatalf("rejections counted as dropped: %d", d)
	}

	// Re-delivering the rejected items after ownership returns applies each
	// exactly once; a second delivery is slot-dropped.
	s.SetOwnership(nil)
	if n := s.ApplyBatch(rej); n != len(rej) {
		t.Fatalf("re-delivery applied %d of %d", n, len(rej))
	}
	if n := s.ApplyBatch(rej); n != 0 {
		t.Fatalf("duplicate delivery applied %d items; slots must dedup", n)
	}
}

// TestSnapshotRangeHandoffIsExact drives the full migration primitive at
// the store level: bar writes to a key range, cut it with SnapshotRange,
// restore it into a second store, remove it from the first — then finish
// the workload routed across both stores. The merged final state must be
// byte-identical to an uninterrupted single-store run.
func TestSnapshotRangeHandoffIsExact(t *testing.T) {
	cfg := Config{Seed: 77}
	single := newTestStore(t, cfg)
	a := newTestStore(t, cfg)
	b := newTestStore(t, cfg)
	arms := []int{3, 5, 9}
	devices := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	const pivot = 1 << 63

	step := func(s *Store, dev uint64, slot int) int {
		arm, sl, err := s.Select(dev, arms)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Feedback(dev, arm, sl, reward(dev, arm, slot)) {
			t.Fatalf("feedback not applied for device %d", dev)
		}
		return arm
	}

	// Phase 1: everything on store a (and the single-store control).
	for slot := 0; slot < 60; slot++ {
		for _, dev := range devices {
			if got, want := step(a, dev, slot), step(single, dev, slot); got != want {
				t.Fatalf("pre-migration slot %d device %d: fleet chose %d, single %d", slot, dev, got, want)
			}
		}
	}

	// Migrate keys > pivot from a to b: bar writes, cut, restore, drop.
	a.SetOwnership(splitAt(pivot, true, 2, "b"))
	cut := a.SnapshotRange(pivot+1, ^uint64(0))
	if len(cut.Devices) == 0 {
		t.Fatal("cut is empty; the pivot left nothing to migrate")
	}
	if err := b.RestoreRange(cut); err != nil {
		t.Fatal(err)
	}
	removed := a.RemoveRange(pivot+1, ^uint64(0))
	if removed != len(cut.Devices) {
		t.Fatalf("removed %d sessions, cut %d", removed, len(cut.Devices))
	}
	b.SetOwnership(splitAt(pivot, false, 2, "a"))

	// Phase 2: route by key.
	for slot := 60; slot < 120; slot++ {
		for _, dev := range devices {
			dst := a
			if RouteKey(dev) > pivot {
				dst = b
			}
			if got, want := step(dst, dev, slot), step(single, dev, slot); got != want {
				t.Fatalf("post-migration slot %d device %d: fleet chose %d, single %d", slot, dev, got, want)
			}
		}
	}

	// The merged fleet snapshot must equal the single-store snapshot.
	merged := a.Snapshot()
	merged.Devices = append(merged.Devices, b.Snapshot().Devices...)
	sort.Slice(merged.Devices, func(i, j int) bool { return merged.Devices[i].Device < merged.Devices[j].Device })
	want := single.Snapshot()
	merged.Dropped, want.Dropped = 0, 0
	var mb, wb bytes.Buffer
	if err := merged.Encode(&mb); err != nil {
		t.Fatal(err)
	}
	if err := want.Encode(&wb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mb.Bytes(), wb.Bytes()) {
		t.Fatal("merged post-migration snapshot differs from the single-store snapshot")
	}
}

func TestSnapshotRangePartitionsFullSnapshot(t *testing.T) {
	s := newTestStore(t, Config{})
	drive(t, s, []uint64{1, 2, 3, 4, 5, 6, 7, 8}, []int{0, 1, 2}, 40)
	full := s.Snapshot()
	const pivot = 1 << 62
	lowCut := s.SnapshotRange(0, pivot)
	highCut := s.SnapshotRange(pivot+1, ^uint64(0))
	if len(lowCut.Devices)+len(highCut.Devices) != len(full.Devices) {
		t.Fatalf("range cuts cover %d+%d devices, full snapshot %d",
			len(lowCut.Devices), len(highCut.Devices), len(full.Devices))
	}
	for _, ds := range lowCut.Devices {
		if RouteKey(ds.Device) > pivot {
			t.Fatalf("device %d (key %x) leaked into the low cut", ds.Device, RouteKey(ds.Device))
		}
	}
	for _, ds := range highCut.Devices {
		if RouteKey(ds.Device) <= pivot {
			t.Fatalf("device %d (key %x) leaked into the high cut", ds.Device, RouteKey(ds.Device))
		}
	}
	if lowCut.Dropped != 0 || highCut.Dropped != 0 {
		t.Fatal("range cuts must not carry the store-global drop counter")
	}
}

// TestEvictIdleSkipsUnownedDevices pins the drain-window guard: a device
// mid-migration (disowned but still resident) must not be retired by an
// idle sweep — the cut that was taken of it must stay the truth until
// commit removes it or abort re-owns it.
func TestEvictIdleSkipsUnownedDevices(t *testing.T) {
	now := time.Unix(1000, 0)
	s := newTestStore(t, Config{
		Shards:     2,
		EvictAfter: time.Minute,
		Clock:      func() time.Time { return now },
	})
	arms := []int{1, 2}
	drive(t, s, []uint64{10, 11}, arms, 3)
	s.SetOwnership(func(key uint64) (bool, uint64, string) {
		return key != RouteKey(10), 4, "peer-b"
	})
	now = now.Add(2 * time.Minute) // both devices idle past the TTL
	if n := s.EvictIdle(); n != 1 {
		t.Fatalf("sweep evicted %d devices, want 1 (the disowned one must survive)", n)
	}
	if n := s.Devices(); n != 1 {
		t.Fatalf("store tracks %d devices, want the disowned survivor only", n)
	}
	s.SetOwnership(nil)
	if n := s.EvictIdle(); n != 1 {
		t.Fatalf("post-abort sweep evicted %d devices, want 1", n)
	}
}

// TestWireNotOwnerRedirectAndRejectedBounce drives the v3 redirect
// surface end to end: a Select for a foreign device comes back as
// *NotOwnerError (session intact), and feedback for foreign devices
// bounces in a Rejected frame to the OnRejected callback, from where
// re-delivery to the true owner applies exactly once.
func TestWireNotOwnerRedirectAndRejectedBounce(t *testing.T) {
	store, addr := startServer(t, Config{})
	arms := []int{1, 2, 3}
	const pivot = 1 << 63

	var owned, foreign uint64
	for id := uint64(1); owned == 0 || foreign == 0; id++ {
		if RouteKey(id) <= pivot {
			owned = id
		} else {
			foreign = id
		}
	}

	var bounced []FeedbackItem
	var bouncedEpoch uint64
	c, err := Dial(addr, ClientOptions{
		FrameTimeout: 30 * time.Second,
		OnRejected: func(epoch uint64, items []FeedbackItem) {
			bouncedEpoch = epoch
			bounced = append(bounced, items...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// Take a selection for the foreign device before the split, so there is
	// a pending slot whose feedback will arrive after ownership moved.
	fArm, fSlot, err := c.SelectSlot(foreign, arms)
	if err != nil {
		t.Fatal(err)
	}
	store.SetOwnership(splitAt(pivot, true, 5, "peer-b:9"))

	if _, _, err := c.SelectSlot(owned, arms); err != nil {
		t.Fatalf("owned SelectSlot: %v", err)
	}
	_, _, err = c.SelectSlot(foreign, arms)
	var no *NotOwnerError
	if !errors.As(err, &no) {
		t.Fatalf("foreign SelectSlot returned %v, want *NotOwnerError", err)
	}
	if no.Epoch != 5 || no.Owner != "peer-b:9" {
		t.Fatalf("redirect = epoch %d owner %q, want 5 %q", no.Epoch, no.Owner, "peer-b:9")
	}
	if c.Reconnects() != 0 {
		t.Fatal("a redirect must not burn the connection")
	}

	// Feedback for the pre-split selection bounces; re-delivery applies.
	if err := c.FeedbackSlot(foreign, fArm, fSlot, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil { // flush + barrier; Rejected precedes the pong
		t.Fatal(err)
	}
	if len(bounced) != 1 || bounced[0].Device != foreign || bounced[0].Slot != fSlot {
		t.Fatalf("OnRejected saw %+v, want the foreign item back", bounced)
	}
	if bouncedEpoch != 5 {
		t.Fatalf("bounce quoted epoch %d, want 5", bouncedEpoch)
	}
	store.SetOwnership(nil) // "the owner": same store, ownership restored
	if err := c.EnqueueFeedback(bounced); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if d := store.Dropped(); d != 0 {
		t.Fatalf("re-delivered feedback dropped (%d); it should apply cleanly", d)
	}
	// A duplicate delivery is slot-deduped, not double-applied.
	if err := c.EnqueueFeedback(bounced); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if d := store.Dropped(); d != 1 {
		t.Fatalf("duplicate delivery dropped %d, want 1 (slot dedup)", d)
	}
}

func TestOwnedWarmSelectStillZeroAlloc(t *testing.T) {
	s := newTestStore(t, Config{Shards: 4})
	always := OwnershipFunc(func(key uint64) (bool, uint64, string) { return true, 3, "" })
	s.SetOwnership(always)
	arms := []int{1, 2, 3}
	dev := uint64(9)
	if _, _, err := s.Select(dev, arms); err != nil {
		t.Fatal(err)
	}
	batch := make([]FeedbackItem, 1)
	var rej []FeedbackItem
	slotNo := 0
	allocs := testing.AllocsPerRun(200, func() {
		arm, slot, err := s.Select(dev, arms)
		if err != nil {
			t.Fatal(err)
		}
		batch[0] = FeedbackItem{Device: dev, Arm: arm, Slot: slot, Reward: reward(dev, arm, slotNo)}
		var n int
		n, rej, _ = s.ApplyBatchOwned(batch, rej)
		if n != 1 || len(rej) != 0 {
			t.Fatalf("applied %d, rejected %d", n, len(rej))
		}
		slotNo++
	})
	if allocs != 0 {
		t.Fatalf("warm Select+ApplyBatchOwned with ownership installed allocates %.1f objects/op, want 0", allocs)
	}
}
