package serve

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"smartexp3/internal/core"
	"smartexp3/internal/rngutil"
)

// snapshotVersion is bumped whenever the snapshot layout changes
// incompatibly; Restore refuses mismatches loudly. Version 2 added the
// per-device selection slot (the feedback-dedup cursor): restoring it
// wrongly-zeroed would let pre-snapshot feedback replayed after a restart
// double-count, so version 1 files are refused rather than guessed at.
const snapshotVersion = 2

// SnapshotVersion is the current snapshot layout version — what Snapshot
// stamps and every restore path demands. Exported so the fleet layer can
// refuse a mismatched migration payload when it is staged instead of
// when it is committed.
const SnapshotVersion = snapshotVersion

// DeviceSnapshot is one active device session at rest: its policy state
// verbatim (core.PolicyState preserves every derived view bit for bit, see
// that type's doc) plus its generator cursor, the unanswered selection, and
// the selection slot. Exported so Config.OnEvict can hand the caller an
// evicted device's final state in the same shape snapshots use.
type DeviceSnapshot struct {
	Device  uint64
	Pending int
	Slot    uint64
	Rng     rngutil.SourceState
	State   core.PolicyState
}

// Snapshot is a Store's portable state. Devices are sorted by id, so the
// encoded bytes are a deterministic function of the store's logical state —
// independent of shard count, map iteration order, or which shard was
// visited first.
type Snapshot struct {
	Version   int
	Algorithm core.Algorithm
	Seed      int64
	Dropped   uint64
	Devices   []DeviceSnapshot
}

// Snapshot captures every active device session. Shards are locked one at a
// time, so service continues on the others while a shard is being copied;
// each device is captured atomically, but the cut is NOT globally
// consistent under live writes: a device on a later shard may absorb
// feedback after an earlier shard was copied. Quiesce the store first when
// a consistent cut is required — the daemon's shutdown path does so by
// closing the listener, but `served -snapshot-every` deliberately does
// not: its periodic snapshots are crash-recovery points, per-device exact
// yet possibly a few requests skewed across devices, which replay
// absorbs. For a consistent cut of a key range under traffic, bar writes
// to the range first (SetOwnership) and use SnapshotRange.
func (s *Store) Snapshot() *Snapshot {
	sn := &Snapshot{
		Version:   snapshotVersion,
		Algorithm: s.cfg.Algorithm,
		Seed:      s.cfg.Seed,
		Dropped:   s.dropped.Load(),
	}
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.Lock()
		for id, dev := range sh.devices {
			ds := DeviceSnapshot{Device: id, Pending: dev.pending, Slot: dev.slot, Rng: dev.src.State()}
			dev.policy.ExportState(&ds.State)
			sn.Devices = append(sn.Devices, ds)
		}
		sh.mu.Unlock()
	}
	sort.Slice(sn.Devices, func(i, j int) bool { return sn.Devices[i].Device < sn.Devices[j].Device })
	return sn
}

// SnapshotRange captures the device sessions whose routing key
// (RouteKey of the device id) lies in [lo, hi], inclusive, in the same
// sorted portable form as Snapshot. Dropped is zero — the drop counter is
// store-global and stays with the full store.
//
// The cut is globally consistent for the range if and only if writes to
// the range are barred first: install an ownership filter that disowns
// [lo, hi] (SetOwnership), then call SnapshotRange. Because Select and
// Feedback re-read the filter under each shard lock, every request the
// old filter admitted completes before this sweep reaches its shard and
// is captured; every request after sees the rejection. Without that
// barrier the per-shard locking leaves the same skew window the full
// Snapshot has.
func (s *Store) SnapshotRange(lo, hi uint64) *Snapshot {
	sn := &Snapshot{
		Version:   snapshotVersion,
		Algorithm: s.cfg.Algorithm,
		Seed:      s.cfg.Seed,
	}
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.Lock()
		for id, dev := range sh.devices {
			if k := RouteKey(id); k < lo || k > hi {
				continue
			}
			ds := DeviceSnapshot{Device: id, Pending: dev.pending, Slot: dev.slot, Rng: dev.src.State()}
			dev.policy.ExportState(&ds.State)
			sn.Devices = append(sn.Devices, ds)
		}
		sh.mu.Unlock()
	}
	sort.Slice(sn.Devices, func(i, j int) bool { return sn.Devices[i].Device < sn.Devices[j].Device })
	return sn
}

// RemoveRange retires every device session whose routing key lies in
// [lo, hi], inclusive, returning the sessions to the shard pools without
// invoking eviction hooks, and reports how many it removed. It is the
// final step of a committed migration handoff: the range's state now
// lives on the gaining peer, so the local copies are surplus, not
// evictions.
func (s *Store) RemoveRange(lo, hi uint64) int {
	removed := 0
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.Lock()
		for id, dev := range sh.devices {
			if k := RouteKey(id); k < lo || k > hi {
				continue
			}
			delete(sh.devices, id)
			sh.free = append(sh.free, dev)
			s.devices.Add(-1)
			removed++
		}
		sh.mu.Unlock()
	}
	return removed
}

// Encode writes the snapshot as a gob stream.
func (sn *Snapshot) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(sn); err != nil {
		return fmt.Errorf("serve: encode snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot decodes a snapshot and validates its header and every
// device record, so a corrupt file fails here rather than half-applying in
// Restore.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var sn Snapshot
	if err := gob.NewDecoder(r).Decode(&sn); err != nil {
		return nil, fmt.Errorf("serve: decode snapshot: %w", err)
	}
	if sn.Version != snapshotVersion {
		return nil, fmt.Errorf("serve: snapshot version %d, want %d", sn.Version, snapshotVersion)
	}
	for i := range sn.Devices {
		ds := &sn.Devices[i]
		if err := ds.State.Validate(); err != nil {
			return nil, fmt.Errorf("serve: snapshot device %d: %w", ds.Device, err)
		}
		if i > 0 && sn.Devices[i-1].Device >= ds.Device {
			return nil, fmt.Errorf("serve: snapshot devices not strictly ascending at %d", ds.Device)
		}
	}
	return &sn, nil
}

// Restore replaces the store's device sessions with the snapshot's. The
// snapshot must come from a store with the same algorithm and seed — those
// are part of the determinism contract, not per-device state. Existing
// sessions are retired to the pools; restored sessions resume bit-identical
// to never having stopped.
func (s *Store) Restore(sn *Snapshot) error {
	if sn.Version != snapshotVersion {
		return fmt.Errorf("serve: snapshot version %d, want %d", sn.Version, snapshotVersion)
	}
	if sn.Algorithm != s.cfg.Algorithm {
		return fmt.Errorf("serve: snapshot is %v state, store serves %v", sn.Algorithm, s.cfg.Algorithm)
	}
	if sn.Seed != s.cfg.Seed {
		return fmt.Errorf("serve: snapshot seed %d, store seed %d", sn.Seed, s.cfg.Seed)
	}
	restored, err := s.buildDevices(sn)
	if err != nil {
		return err
	}
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.Lock()
		for id, dev := range sh.devices {
			delete(sh.devices, id)
			sh.free = append(sh.free, dev)
			s.devices.Add(-1)
		}
		sh.mu.Unlock()
	}
	for i := range sn.Devices {
		id := sn.Devices[i].Device
		sh := &s.shards[s.shardIndex(id)]
		sh.mu.Lock()
		sh.devices[id] = restored[i]
		sh.mu.Unlock()
		s.devices.Add(1)
	}
	s.dropped.Store(sn.Dropped)
	return nil
}

// buildDevices reconstructs every session in the snapshot before any live
// state is touched, so a corrupt record cannot leave a store
// half-replaced. Shared by Restore and RestoreRange.
func (s *Store) buildDevices(sn *Snapshot) ([]*device, error) {
	restored := make([]*device, len(sn.Devices))
	for i := range sn.Devices {
		ds := &sn.Devices[i]
		if err := ds.State.Validate(); err != nil {
			return nil, fmt.Errorf("serve: snapshot device %d: %w", ds.Device, err)
		}
		src := rngutil.NewSource(0)
		rng := rand.New(src)
		pol, err := core.New(s.cfg.Algorithm, ds.State.Available, s.cfg.Policy, rng)
		// The generator cursor is restored after construction so any draw
		// the constructor makes cannot advance the resumed stream.
		src.SetState(ds.Rng)
		if err != nil {
			return nil, fmt.Errorf("serve: snapshot device %d: %w", ds.Device, err)
		}
		sp, ok := pol.(*core.SmartEXP3)
		if !ok {
			return nil, fmt.Errorf("serve: %v has no exportable policy state", s.cfg.Algorithm)
		}
		if err := sp.ImportState(&ds.State, rng); err != nil {
			return nil, fmt.Errorf("serve: snapshot device %d: %w", ds.Device, err)
		}
		restored[i] = &device{policy: sp, src: src, rng: rng, pending: ds.Pending, slot: ds.Slot}
	}
	if s.cfg.EvictAfter > 0 {
		// Idle age does not survive a restart (lastTouch is bookkeeping, not
		// snapshot state): restored sessions count as just-touched, so a
		// sweep right after boot cannot mass-evict everything we restored.
		now := s.cfg.Clock().UnixNano()
		for _, dev := range restored {
			dev.lastTouch = now
		}
	}
	return restored, nil
}

// RestoreRange merges the snapshot's device sessions into the store
// without disturbing sessions outside it — the receiving half of a
// migration handoff, where Restore's replace-everything contract would
// destroy the peer's own devices. The snapshot must match the store's
// algorithm and seed; its Dropped count is ignored (the counter stays
// with the draining store). A session that already exists for a restored
// id is retired to the pool and overwritten: the incoming copy is the
// newer truth, cut after writes to the range were barred on the old
// owner.
func (s *Store) RestoreRange(sn *Snapshot) error {
	if sn.Version != snapshotVersion {
		return fmt.Errorf("serve: snapshot version %d, want %d", sn.Version, snapshotVersion)
	}
	if sn.Algorithm != s.cfg.Algorithm {
		return fmt.Errorf("serve: snapshot is %v state, store serves %v", sn.Algorithm, s.cfg.Algorithm)
	}
	if sn.Seed != s.cfg.Seed {
		return fmt.Errorf("serve: snapshot seed %d, store seed %d", sn.Seed, s.cfg.Seed)
	}
	restored, err := s.buildDevices(sn)
	if err != nil {
		return err
	}
	for i := range sn.Devices {
		id := sn.Devices[i].Device
		sh := &s.shards[s.shardIndex(id)]
		sh.mu.Lock()
		if old := sh.devices[id]; old != nil {
			sh.free = append(sh.free, old)
			s.devices.Add(-1)
		}
		sh.devices[id] = restored[i]
		sh.mu.Unlock()
		s.devices.Add(1)
	}
	return nil
}

// SaveFile snapshots the store to path atomically: the bytes land in a
// temporary file in the same directory and are renamed over the target, so
// a crash mid-write leaves the previous snapshot intact.
func (s *Store) SaveFile(path string) error {
	sn := s.Snapshot()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: save snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if err := sn.Encode(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: save snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: save snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serve: save snapshot: %w", err)
	}
	return nil
}

// LoadFile restores the store from a snapshot file written by SaveFile.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("serve: load snapshot: %w", err)
	}
	defer f.Close()
	sn, err := ReadSnapshot(f)
	if err != nil {
		return err
	}
	return s.Restore(sn)
}
