package serve

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"smartexp3/internal/cluster"
)

// ClientOptions tunes a client connection and its recovery behavior.
type ClientOptions struct {
	// DialTimeout bounds connection establishment; zero means 5 seconds.
	DialTimeout time.Duration
	// FrameTimeout bounds each frame read and write; zero means 2
	// minutes, negative disables (synchronous in-memory pipes in tests).
	FrameTimeout time.Duration
	// FeedbackBatch is the buffered-report count that triggers an eager
	// flush; zero means 256. Feedback is also flushed before every
	// Select, Release, Ping and Close, so the buffer never outlives the
	// traffic that should observe it.
	FeedbackBatch int

	// Redial re-establishes the transport after a transient failure. Dial
	// installs a TCP redialer for its address automatically; NewClient
	// callers provide their own (or none). With Redial nil the client is
	// fail-fast: the first transport error permanently poisons the
	// session, the pre-reconnect behavior.
	Redial func() (net.Conn, error)
	// MaxAttempts bounds the transport tries (initial + redials) one
	// operation makes before giving up; zero means 8.
	MaxAttempts int
	// BackoffBase is the delay before the first redial; it doubles per
	// attempt up to BackoffMax, jittered to [d/2, d) so clients of a
	// restarting daemon do not reconnect in lockstep. Zero means 20ms.
	BackoffBase time.Duration
	// BackoffMax caps the backoff delay; zero means 2 seconds.
	BackoffMax time.Duration

	// MaxBufferedFeedback bounds the reports held while the daemon is
	// unreachable (the overload guard); beyond it the oldest are dropped
	// and counted in DroppedFeedback. Zero means 4096.
	MaxBufferedFeedback int

	// Fallback, when set, is a local Store the client degrades to when
	// the daemon stays unreachable past MaxAttempts: Select answers from
	// in-process policy state instead of erroring. While degraded, the
	// daemon is re-probed at most once per FallbackProbe; decisions made
	// locally stay local (their feedback applies to the Fallback store,
	// not the daemon), so a degraded episode is a deliberate fork of that
	// device's learning, traded for availability.
	Fallback *Store
	// FallbackProbe is how long a degraded client waits between probes of
	// the daemon; zero means 1 second.
	FallbackProbe time.Duration

	// OnRejected, when set, receives feedback items the daemon bounced in
	// a Rejected frame because it no longer owns their devices (a fleet
	// migration moved them), along with the table epoch the rejection
	// quoted. The callback runs synchronously inside the client's receive
	// loop; the items slice is valid only for the duration of the call.
	// Nil discards bounced items.
	OnRejected func(epoch uint64, items []FeedbackItem)

	// Metrics, when set, receives the client's resilience counters —
	// typically a NewClientMetrics set registered on an obsv.Registry,
	// shared across redials of one logical client. Nil means a private
	// unregistered set; the Reconnects/DroppedFeedback accessors read
	// whichever set is in use.
	Metrics *ClientMetrics
}

func (o ClientOptions) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return o.DialTimeout
}

func (o ClientOptions) frameTimeout() time.Duration {
	switch {
	case o.FrameTimeout < 0:
		return 0
	case o.FrameTimeout == 0:
		return 2 * time.Minute
	default:
		return o.FrameTimeout
	}
}

func (o ClientOptions) feedbackBatch() int {
	if o.FeedbackBatch <= 0 {
		return 256
	}
	return o.FeedbackBatch
}

func (o ClientOptions) maxAttempts() int {
	if o.MaxAttempts <= 0 {
		return 8
	}
	return o.MaxAttempts
}

func (o ClientOptions) backoffBase() time.Duration {
	if o.BackoffBase <= 0 {
		return 20 * time.Millisecond
	}
	return o.BackoffBase
}

func (o ClientOptions) backoffMax() time.Duration {
	if o.BackoffMax <= 0 {
		return 2 * time.Second
	}
	return o.BackoffMax
}

func (o ClientOptions) maxBufferedFeedback() int {
	if o.MaxBufferedFeedback <= 0 {
		return 4096
	}
	return o.MaxBufferedFeedback
}

func (o ClientOptions) fallbackProbe() time.Duration {
	if o.FallbackProbe <= 0 {
		return time.Second
	}
	return o.FallbackProbe
}

// RequestError is a request-level rejection (a malformed arm set, say):
// the daemon answered, the session remains usable, and nothing is retried.
// Every other error a client method returns is transport trouble.
type RequestError struct{ Msg string }

func (e *RequestError) Error() string { return e.Msg }

// selection is the client's record of a device's outstanding Select: the
// slot the store named for it (quoted back in feedback so resends cannot
// double-count) and whether it was answered by the local Fallback store.
type selection struct {
	slot  uint64
	local bool
}

// Client is one synchronous session against a serve daemon. It buffers
// feedback and flushes it as one frame before anything that must observe
// it, so the hot loop costs one round trip per Select and none per
// Feedback.
//
// The client self-heals: a transport failure (cut, stall past the frame
// timeout, corrupted frame) tears the connection down and the operation
// retries over a fresh one with capped exponential backoff — up to
// MaxAttempts tries. Recovery is safe because both directions are
// idempotent at the store: a re-Select after a lost response returns the
// same arm and slot, and feedback written-but-unconfirmed at the cut is
// resent carrying its slot, which the store applies at most once. A chaos
// session is therefore decision-identical to a clean one. Only handshake
// rejections (wrong protocol era, wrong daemon) poison the client
// permanently.
//
// Not safe for concurrent use — one goroutine per client, the same
// discipline as the cluster session layer.
type Client struct {
	opts      ClientOptions
	conn      net.Conn
	bw        *bufio.Writer
	fw        *cluster.FrameWriter
	fr        *cluster.FrameReader
	algorithm string

	batch []FeedbackItem // buffered reports not yet written
	sent  []FeedbackItem // written but unconfirmed by a response barrier
	slots map[uint64]selection

	seq     uint64
	pingSeq uint64

	connected bool
	closed    bool
	permErr   error // handshake-level failure; the client is dead after one

	degraded      bool      // serving from opts.Fallback
	degradedUntil time.Time // next daemon probe not before this instant

	rng *rand.Rand     // backoff jitter
	m   *ClientMetrics // never nil; from opts.Metrics or a private set
}

// Dial connects and handshakes. Unless ClientOptions.Redial is set, the
// client re-dials addr automatically after transient transport failures.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	if opts.Redial == nil {
		timeout := opts.dialTimeout()
		opts.Redial = func() (net.Conn, error) {
			conn, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
			}
			return conn, nil
		}
	}
	conn, err := opts.Redial()
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn, opts)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient handshakes over an established connection (tests hand it one
// end of a pipe). The client owns conn afterwards. Without opts.Redial the
// client cannot recover from transport failures and fails fast instead.
func NewClient(conn net.Conn, opts ClientOptions) (*Client, error) {
	c := &Client{opts: opts, slots: make(map[uint64]selection), m: opts.Metrics}
	if c.m == nil {
		c.m = newClientMetrics()
	}
	if err := c.handshake(conn); err != nil {
		return nil, err
	}
	return c, nil
}

// Algorithm names the algorithm the daemon serves, as reported at
// handshake.
func (c *Client) Algorithm() string { return c.algorithm }

// Reconnects returns how many times the client re-established its
// connection after the initial dial.
func (c *Client) Reconnects() uint64 { return c.m.Reconnects.Value() }

// DroppedFeedback returns how many buffered reports the overload guard
// discarded because the daemon stayed unreachable past the buffer bound.
func (c *Client) DroppedFeedback() uint64 { return c.m.DroppedFeedback.Value() }

// Degraded reports whether the client is currently serving selections from
// its local Fallback store instead of the daemon.
func (c *Client) Degraded() bool { return c.degraded }

// handshake installs conn as the client's transport and runs the hello
// exchange over it. Rejections are permanent: a daemon from the wrong
// protocol era will reject every future attempt too.
func (c *Client) handshake(conn net.Conn) error {
	c.conn = conn
	c.bw = bufio.NewWriterSize(conn, 32<<10)
	c.fw = cluster.NewFrameWriter(c.bw)
	c.fr = cluster.NewFrameReader(bufio.NewReaderSize(conn, 32<<10))
	c.connected = true
	if err := c.send(&serveEnvelope{Hello: &serveHelloMsg{Version: serveProtocolVersion}}); err != nil {
		c.connected = false
		return err
	}
	var env serveEnvelope
	if err := c.recv(&env); err != nil {
		c.connected = false
		return err
	}
	switch {
	case env.HelloAck == nil:
		c.connected = false
		return c.permanent(errors.New("serve: handshake reply is not a hello ack"))
	case env.HelloAck.Err != "":
		c.connected = false
		return c.permanent(fmt.Errorf("serve: handshake rejected: %s", env.HelloAck.Err))
	}
	c.algorithm = env.HelloAck.Algorithm
	return nil
}

func (c *Client) permanent(err error) error {
	if c.permErr == nil {
		c.permErr = err
	}
	return c.permErr
}

func (c *Client) send(env *serveEnvelope) error {
	if wt := c.opts.frameTimeout(); wt > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(wt)); err != nil {
			return err
		}
	}
	if err := c.fw.Encode(env); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *Client) recv(env *serveEnvelope) error {
	if wt := c.opts.frameTimeout(); wt > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(wt)); err != nil {
			return err
		}
	}
	return c.fr.Decode(env)
}

func (c *Client) usable() error {
	switch {
	case c.permErr != nil:
		return c.permErr
	case c.closed:
		return errors.New("serve: client closed")
	}
	return nil
}

// dropConn tears the connection down after a transport failure and
// requeues written-but-unconfirmed feedback ahead of the unwritten batch:
// the daemon may or may not have consumed those frames, and the slot each
// item carries makes resending the safe default. Without a redialer the
// failure is terminal, matching the historical fail-fast client.
func (c *Client) dropConn(cause error) {
	if c.conn != nil {
		c.conn.Close()
	}
	c.connected = false
	if len(c.sent) > 0 {
		c.m.FeedbackResent.Add(uint64(len(c.sent)))
		c.batch = append(c.sent, c.batch...)
		c.sent = nil
	}
	c.trimFeedback()
	if c.opts.Redial == nil {
		_ = c.permanent(fmt.Errorf("serve: session dead: %w", cause))
	}
}

// ensureConn returns with a live handshaken connection or an error for
// this attempt.
func (c *Client) ensureConn() error {
	if c.connected {
		return nil
	}
	if c.permErr != nil {
		return c.permErr
	}
	if c.opts.Redial == nil {
		return errors.New("serve: disconnected and no redialer configured")
	}
	c.m.Redials.Inc()
	conn, err := c.opts.Redial()
	if err != nil {
		return err
	}
	if err := c.handshake(conn); err != nil {
		conn.Close()
		return err
	}
	c.m.Reconnects.Inc()
	return nil
}

// backoff sleeps before redial attempt try (1-based), doubling from
// BackoffBase and capping at BackoffMax, jittered to [d/2, d).
func (c *Client) backoff(try int) {
	d := c.opts.backoffBase() << uint(try-1)
	if max := c.opts.backoffMax(); d > max || d <= 0 {
		d = max
	}
	if c.rng == nil {
		// Backoff jitter is deliberately wall-clock-seeded: it must differ
		// across client processes to de-synchronize reconnect storms, and it
		// never reaches a decision, a seed, or a snapshot.
		//repolint:ignore seedpurity intentional nondeterminism: jitter only spreads redial timing and never feeds decisions or state
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	time.Sleep(d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1)))
}

// attempt runs op against a live connection, redialing with backoff after
// transient failures, up to MaxAttempts tries. A *RequestError or
// *NotOwnerError returns immediately (the session is fine — the second is
// an answer, not a failure: ask a different peer); a permanent error
// latches; anything else tears the connection down and retries.
func (c *Client) attempt(op func() error) error {
	attempts := c.opts.maxAttempts()
	var lastErr error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			c.backoff(try)
		}
		if err := c.ensureConn(); err != nil {
			if c.permErr != nil {
				return c.permErr
			}
			lastErr = err
			continue
		}
		err := op()
		if err == nil {
			return nil
		}
		var req *RequestError
		var no *NotOwnerError
		if errors.As(err, &req) || errors.As(err, &no) {
			return err
		}
		c.dropConn(err)
		if c.permErr != nil {
			return c.permErr
		}
		lastErr = err
	}
	return fmt.Errorf("serve: daemon unreachable after %d attempts: %w", attempts, lastErr)
}

// writeFeedback moves the unwritten batch to the unconfirmed queue and
// writes it as one frame. The items stay in sent until a response barrier
// (a Selected or Pong on the same connection) proves the daemon consumed
// the stream up to them; a disconnect before that requeues them.
func (c *Client) writeFeedback() error {
	if len(c.batch) == 0 {
		return nil
	}
	n := len(c.sent)
	c.sent = append(c.sent, c.batch...)
	c.batch = c.batch[:0]
	return c.send(&serveEnvelope{Feedback: &feedbackBatchMsg{Items: c.sent[n:]}})
}

// trimFeedback enforces the overload guard: when the queued reports exceed
// the bound, the oldest unwritten ones are dropped and counted.
func (c *Client) trimFeedback() {
	over := len(c.batch) + len(c.sent) - c.opts.maxBufferedFeedback()
	if over <= 0 {
		return
	}
	if over > len(c.batch) {
		over = len(c.batch)
	}
	kept := copy(c.batch, c.batch[over:])
	c.batch = c.batch[:kept]
	c.m.DroppedFeedback.Add(uint64(over))
}

// Select flushes buffered feedback, then asks which arm device should use
// next. arms must be strictly ascending. A request-level rejection (bad
// arm set) returns a *RequestError and leaves the session usable;
// transport failures reconnect and retry transparently — the store's
// slot-idempotent Select makes the retry return the same arm — and only
// after MaxAttempts does the client give up (or degrade to the Fallback
// store when one is configured).
func (c *Client) Select(device uint64, arms []int) (int, error) {
	if err := c.usable(); err != nil {
		return -1, err
	}
	if c.degraded {
		if arm, served, err := c.fallbackSelect(device, arms); served {
			return arm, err
		}
	}
	arm, slot, err := c.doSelect(device, arms)
	if err == nil {
		c.slots[device] = selection{slot: slot}
		return arm, nil
	}
	var req *RequestError
	var no *NotOwnerError
	if errors.As(err, &req) || errors.As(err, &no) || c.permErr != nil {
		return -1, err
	}
	return c.enterFallback(device, arms, err)
}

// SelectSlot is Select for callers that route feedback themselves (the
// fleet client): it returns the slot the store named for this selection
// alongside the arm, so the reward can later be delivered explicitly —
// possibly through a different peer's connection after a migration — via
// FeedbackSlot or EnqueueFeedback. A daemon that no longer owns the
// device answers with *NotOwnerError, returned without burning transport
// retries; Fallback degradation does not apply (the fleet routes around
// a dead peer instead).
func (c *Client) SelectSlot(device uint64, arms []int) (int, uint64, error) {
	if err := c.usable(); err != nil {
		return -1, 0, err
	}
	arm, slot, err := c.doSelect(device, arms)
	if err != nil {
		return -1, 0, err
	}
	c.slots[device] = selection{slot: slot}
	return arm, slot, nil
}

// doSelect runs one Select round trip (flush, request, response) under
// the retry loop, returning the chosen arm and its slot. Shared by
// Select and SelectSlot.
func (c *Client) doSelect(device uint64, arms []int) (int, uint64, error) {
	var arm int
	var slot uint64
	err := c.attempt(func() error {
		if err := c.writeFeedback(); err != nil {
			return err
		}
		c.seq++
		if err := c.send(&serveEnvelope{Select: &selectMsg{Seq: c.seq, Device: device, Arms: arms}}); err != nil {
			return err
		}
		for {
			var env serveEnvelope
			if err := c.recv(&env); err != nil {
				return err
			}
			switch {
			case env.Selected != nil:
				if env.Selected.Seq != c.seq {
					return fmt.Errorf("response seq %d, want %d", env.Selected.Seq, c.seq)
				}
				c.sent = c.sent[:0] // barrier: the daemon consumed everything before this reply
				if no := env.Selected.NotOwner; no != nil {
					return &NotOwnerError{Epoch: no.Epoch, Owner: no.Owner}
				}
				if env.Selected.Err != "" {
					return &RequestError{Msg: "serve: " + env.Selected.Err}
				}
				arm = env.Selected.Arm
				slot = env.Selected.Slot
				return nil
			case env.Rejected != nil:
				c.handleRejected(env.Rejected)
				continue // bounced feedback; the select response follows
			case env.Pong != nil:
				continue // late keepalive answer; the select response follows
			default:
				return errors.New("unexpected frame awaiting selection")
			}
		}
	})
	return arm, slot, err
}

// handleRejected forwards a bounced-feedback frame to the OnRejected
// callback. Without one the items are discarded: the daemon applied
// nothing for them, and a plain single-store client has nowhere better
// to send them.
func (c *Client) handleRejected(msg *feedbackRejectedMsg) {
	if c.opts.OnRejected != nil {
		c.opts.OnRejected(msg.Epoch, msg.Items)
	}
}

// enterFallback switches to degraded local serving after the transport is
// exhausted, when a Fallback store is configured.
func (c *Client) enterFallback(device uint64, arms []int, cause error) (int, error) {
	if c.opts.Fallback == nil {
		return -1, cause
	}
	c.degraded = true
	c.m.FallbackActivations.Inc()
	c.degradedUntil = time.Now().Add(c.opts.fallbackProbe())
	arm, _, err := c.fallbackSelect(device, arms)
	return arm, err
}

// fallbackSelect serves one selection from the local Fallback store while
// degraded, probing the daemon at most once per FallbackProbe interval.
// served=false means a probe just revived the connection and the caller
// should use the live path instead.
func (c *Client) fallbackSelect(device uint64, arms []int) (arm int, served bool, err error) {
	if time.Now().After(c.degradedUntil) {
		if c.ensureConn() == nil {
			c.degraded = false
			return 0, false, nil
		}
		c.degradedUntil = time.Now().Add(c.opts.fallbackProbe())
	}
	a, slot, err := c.opts.Fallback.Select(device, arms)
	if err != nil {
		return -1, true, &RequestError{Msg: err.Error()}
	}
	c.slots[device] = selection{slot: slot, local: true}
	return a, true, nil
}

// Feedback buffers one reward report; the wire sees it at the next flush
// (at latest, before the next Select on this connection, which is what
// makes select-after-feedback ordering hold without a round trip per
// report). Feedback never blocks on a broken transport: reports queue
// (bounded by MaxBufferedFeedback) and resend after the reconnect. A
// report for a selection the Fallback store answered applies there
// directly.
func (c *Client) Feedback(device uint64, arm int, reward float64) error {
	if err := c.usable(); err != nil {
		return err
	}
	sel := c.slots[device]
	if sel.local {
		c.opts.Fallback.Feedback(device, arm, sel.slot, reward)
		return nil
	}
	c.batch = append(c.batch, FeedbackItem{Device: device, Arm: arm, Slot: sel.slot, Reward: reward})
	c.trimFeedback()
	return c.maybeFlushFeedback()
}

// FeedbackSlot buffers one reward report quoting an explicit slot,
// bypassing the client's per-device slot memory — the fleet client's
// path, where the selection may have been answered through another
// peer's connection than the one delivering its reward.
func (c *Client) FeedbackSlot(device uint64, arm int, slot uint64, reward float64) error {
	if err := c.usable(); err != nil {
		return err
	}
	c.batch = append(c.batch, FeedbackItem{Device: device, Arm: arm, Slot: slot, Reward: reward})
	c.trimFeedback()
	return c.maybeFlushFeedback()
}

// EnqueueFeedback buffers already-formed reports — the re-delivery path
// for items another peer bounced in a Rejected frame. The slots each item
// carries keep the hand-off at-most-once: if the bouncing peer's client
// also resends the same items through its unconfirmed queue, whichever
// copy loses the race is slot-dropped by the store.
func (c *Client) EnqueueFeedback(items []FeedbackItem) error {
	if err := c.usable(); err != nil {
		return err
	}
	c.batch = append(c.batch, items...)
	c.trimFeedback()
	return c.maybeFlushFeedback()
}

// maybeFlushFeedback is the eager batch-size flush shared by the
// feedback entry points. Best-effort: a transport failure just drops the
// connection and the reports ride along on the next operation.
func (c *Client) maybeFlushFeedback() error {
	if len(c.batch)+len(c.sent) >= c.opts.feedbackBatch() && c.connected && !c.degraded {
		if err := c.writeFeedback(); err != nil {
			c.dropConn(err)
			if c.permErr != nil {
				return c.permErr
			}
		}
	}
	return nil
}

// Flush writes buffered feedback to the daemon, reconnecting as needed.
// Delivery is confirmed only by the next response barrier (Select or
// Ping); a degraded client keeps the reports queued for the next probe.
func (c *Client) Flush() error {
	if err := c.usable(); err != nil {
		return err
	}
	if len(c.batch) == 0 || c.degraded {
		return nil
	}
	return c.attempt(c.writeFeedback)
}

// Release flushes feedback, then retires the given device sessions (on the
// Fallback store too, when one is configured). A degraded client releases
// only locally: the daemon-side sessions age out through idle eviction.
func (c *Client) Release(devices ...uint64) error {
	if err := c.usable(); err != nil {
		return err
	}
	for _, id := range devices {
		delete(c.slots, id)
		if c.opts.Fallback != nil {
			c.opts.Fallback.Release(id)
		}
	}
	if c.degraded {
		return nil
	}
	return c.attempt(func() error {
		if err := c.writeFeedback(); err != nil {
			return err
		}
		return c.send(&serveEnvelope{Release: &releaseMsg{Devices: devices}})
	})
}

// Ping flushes feedback and round-trips a keepalive, proving the daemon is
// alive and resetting its idle timer. A successful ping also ends a
// degraded episode.
func (c *Client) Ping() error {
	if err := c.usable(); err != nil {
		return err
	}
	err := c.attempt(func() error {
		if err := c.writeFeedback(); err != nil {
			return err
		}
		c.pingSeq++
		if err := c.send(&serveEnvelope{Ping: &servePingMsg{Seq: c.pingSeq}}); err != nil {
			return err
		}
		for {
			var env serveEnvelope
			if err := c.recv(&env); err != nil {
				return err
			}
			if env.Rejected != nil {
				c.handleRejected(env.Rejected)
				continue // bounced feedback; the pong follows
			}
			if env.Pong == nil || env.Pong.Seq != c.pingSeq {
				return errors.New("unexpected frame awaiting pong")
			}
			c.sent = c.sent[:0] // barrier, as for Select
			return nil
		}
	})
	if err == nil {
		c.degraded = false
	}
	return err
}

// Close makes a best-effort final feedback flush and closes the
// connection. Close is idempotent, including after a permanent failure:
// repeated calls return nil.
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	var flushErr error
	if c.permErr == nil && c.connected && !c.degraded {
		flushErr = c.writeFeedback()
	}
	var closeErr error
	if c.conn != nil {
		closeErr = c.conn.Close()
	}
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
