package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"smartexp3/internal/cluster"
)

// ClientOptions tunes a client connection.
type ClientOptions struct {
	// DialTimeout bounds connection establishment; zero means 5 seconds.
	DialTimeout time.Duration
	// FrameTimeout bounds each frame read and write; zero means 2
	// minutes, negative disables (synchronous in-memory pipes in tests).
	FrameTimeout time.Duration
	// FeedbackBatch is the buffered-report count that triggers an eager
	// flush; zero means 256. Feedback is also flushed before every
	// Select, Release, Ping and Close, so the buffer never outlives the
	// traffic that should observe it.
	FeedbackBatch int
}

func (o ClientOptions) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return o.DialTimeout
}

func (o ClientOptions) frameTimeout() time.Duration {
	switch {
	case o.FrameTimeout < 0:
		return 0
	case o.FrameTimeout == 0:
		return 2 * time.Minute
	default:
		return o.FrameTimeout
	}
}

func (o ClientOptions) feedbackBatch() int {
	if o.FeedbackBatch <= 0 {
		return 256
	}
	return o.FeedbackBatch
}

// Client is one synchronous session against a serve daemon. It buffers
// feedback and flushes it as one frame before anything that must observe
// it, so the hot loop costs one round trip per Select and none per
// Feedback. Not safe for concurrent use — one goroutine per client, the
// same discipline as the cluster session layer.
type Client struct {
	conn      net.Conn
	bw        *bufio.Writer
	fw        *cluster.FrameWriter
	fr        *cluster.FrameReader
	opts      ClientOptions
	algorithm string
	batch     []FeedbackItem
	seq       uint64
	pingSeq   uint64
	err       error // first transport error; the session is dead after one
}

// Dial connects and handshakes.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	c, err := NewClient(conn, opts)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient handshakes over an established connection (tests hand it one
// end of a pipe). The client owns conn afterwards.
func NewClient(conn net.Conn, opts ClientOptions) (*Client, error) {
	c := &Client{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 32<<10),
		fr:   cluster.NewFrameReader(bufio.NewReaderSize(conn, 32<<10)),
		opts: opts,
	}
	c.fw = cluster.NewFrameWriter(c.bw)
	if err := c.send(&serveEnvelope{Hello: &serveHelloMsg{Version: serveProtocolVersion}}); err != nil {
		return nil, err
	}
	var env serveEnvelope
	if err := c.recv(&env); err != nil {
		return nil, err
	}
	switch {
	case env.HelloAck == nil:
		return nil, errors.New("serve: handshake reply is not a hello ack")
	case env.HelloAck.Err != "":
		return nil, fmt.Errorf("serve: handshake rejected: %s", env.HelloAck.Err)
	}
	c.algorithm = env.HelloAck.Algorithm
	return c, nil
}

// Algorithm names the algorithm the daemon serves, as reported at
// handshake.
func (c *Client) Algorithm() string { return c.algorithm }

func (c *Client) send(env *serveEnvelope) error {
	if c.err != nil {
		return c.err
	}
	if wt := c.opts.frameTimeout(); wt > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(wt)); err != nil {
			return c.fail(err)
		}
	}
	if err := c.fw.Encode(env); err != nil {
		return c.fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return c.fail(err)
	}
	return nil
}

func (c *Client) recv(env *serveEnvelope) error {
	if c.err != nil {
		return c.err
	}
	if wt := c.opts.frameTimeout(); wt > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(wt)); err != nil {
			return c.fail(err)
		}
	}
	if err := c.fr.Decode(env); err != nil {
		return c.fail(err)
	}
	return nil
}

// fail latches the first transport error: a framed-gob stream has no
// resynchronization point, so the session is unusable after one.
func (c *Client) fail(err error) error {
	if c.err == nil {
		c.err = fmt.Errorf("serve: session dead: %w", err)
	}
	return c.err
}

// Select flushes buffered feedback, then asks which arm device should use
// next. arms must be strictly ascending. A request-level rejection (bad arm
// set) returns an error but leaves the session usable; transport errors
// poison the session.
func (c *Client) Select(device uint64, arms []int) (int, error) {
	if err := c.Flush(); err != nil {
		return -1, err
	}
	c.seq++
	if err := c.send(&serveEnvelope{Select: &selectMsg{Seq: c.seq, Device: device, Arms: arms}}); err != nil {
		return -1, err
	}
	for {
		var env serveEnvelope
		if err := c.recv(&env); err != nil {
			return -1, err
		}
		switch {
		case env.Selected != nil:
			if env.Selected.Seq != c.seq {
				return -1, c.fail(fmt.Errorf("response seq %d, want %d", env.Selected.Seq, c.seq))
			}
			if env.Selected.Err != "" {
				return -1, fmt.Errorf("serve: %s", env.Selected.Err)
			}
			return env.Selected.Arm, nil
		case env.Pong != nil:
			continue // late keepalive answer; the select response follows
		default:
			return -1, c.fail(errors.New("unexpected frame awaiting selection"))
		}
	}
}

// Feedback buffers one reward report; the wire sees it at the next flush
// (at latest, before the next Select on this connection, which is what
// makes select-after-feedback ordering hold without a round trip per
// report).
func (c *Client) Feedback(device uint64, arm int, reward float64) error {
	if c.err != nil {
		return c.err
	}
	c.batch = append(c.batch, FeedbackItem{Device: device, Arm: arm, Reward: reward})
	if len(c.batch) >= c.opts.feedbackBatch() {
		return c.Flush()
	}
	return nil
}

// Flush sends buffered feedback as one frame.
func (c *Client) Flush() error {
	if len(c.batch) == 0 {
		return c.err
	}
	err := c.send(&serveEnvelope{Feedback: &feedbackBatchMsg{Items: c.batch}})
	c.batch = c.batch[:0]
	return err
}

// Release flushes feedback, then retires the given device sessions.
func (c *Client) Release(devices ...uint64) error {
	if err := c.Flush(); err != nil {
		return err
	}
	return c.send(&serveEnvelope{Release: &releaseMsg{Devices: devices}})
}

// Ping flushes feedback and round-trips a keepalive, proving the daemon is
// alive and resetting its idle timer.
func (c *Client) Ping() error {
	if err := c.Flush(); err != nil {
		return err
	}
	c.pingSeq++
	if err := c.send(&serveEnvelope{Ping: &servePingMsg{Seq: c.pingSeq}}); err != nil {
		return err
	}
	var env serveEnvelope
	if err := c.recv(&env); err != nil {
		return err
	}
	if env.Pong == nil || env.Pong.Seq != c.pingSeq {
		return c.fail(errors.New("unexpected frame awaiting pong"))
	}
	return nil
}

// Close flushes buffered feedback and closes the connection.
func (c *Client) Close() error {
	flushErr := c.Flush()
	closeErr := c.conn.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
