package serve

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"smartexp3/internal/cluster"
)

// fuzzConn replays a fixed byte stream as a net.Conn: reads come from the
// fuzz input, writes vanish, deadlines are accepted and ignored. It is what
// lets the fuzzer drive serveConn's full request loop without sockets.
type fuzzConn struct {
	r io.Reader
}

func (c *fuzzConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c *fuzzConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *fuzzConn) Close() error                     { return nil }
func (c *fuzzConn) LocalAddr() net.Addr              { return fuzzAddr{} }
func (c *fuzzConn) RemoteAddr() net.Addr             { return fuzzAddr{} }
func (c *fuzzConn) SetDeadline(time.Time) error      { return nil }
func (c *fuzzConn) SetReadDeadline(time.Time) error  { return nil }
func (c *fuzzConn) SetWriteDeadline(time.Time) error { return nil }

type fuzzAddr struct{}

func (fuzzAddr) Network() string { return "fuzz" }
func (fuzzAddr) String() string  { return "fuzz" }

// encodeServeFrames renders a client request sequence exactly as a real
// client would: one persistent encoder per connection.
func encodeServeFrames(tb testing.TB, envs ...*serveEnvelope) []byte {
	tb.Helper()
	var buf bytes.Buffer
	fw := cluster.NewFrameWriter(&buf)
	for _, env := range envs {
		if err := fw.Encode(env); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

// fuzzServeSeeds is the checked-in seed corpus for FuzzServeRequest: a full
// well-formed session, each request class alone, hostile arm sets, and
// framing corruptions.
func fuzzServeSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	hello := &serveEnvelope{Hello: &serveHelloMsg{Version: serveProtocolVersion}}
	sel := &serveEnvelope{Select: &selectMsg{Seq: 1, Device: 7, Arms: []int{1, 2, 3}}}
	fb := &serveEnvelope{Feedback: &feedbackBatchMsg{Items: []FeedbackItem{
		{Device: 7, Arm: 2, Reward: 0.5},
		{Device: 9, Arm: 1, Reward: 2},
	}}}
	seeds := [][]byte{
		encodeServeFrames(tb, hello),
		encodeServeFrames(tb, hello, sel, fb,
			&serveEnvelope{Ping: &servePingMsg{Seq: 1}},
			&serveEnvelope{Release: &releaseMsg{Devices: []uint64{7}}}),
		encodeServeFrames(tb, &serveEnvelope{Hello: &serveHelloMsg{Version: 99}}),
		// Hostile requests a conforming codec can still deliver.
		encodeServeFrames(tb, hello, &serveEnvelope{Select: &selectMsg{Seq: 1, Device: 1, Arms: []int{}}}),
		encodeServeFrames(tb, hello, &serveEnvelope{Select: &selectMsg{Seq: 1, Device: 1, Arms: []int{5, 5, 1}}}),
		encodeServeFrames(tb, hello, &serveEnvelope{Select: &selectMsg{Seq: 1, Device: 1, Arms: make([]int, 5000)}}),
		encodeServeFrames(tb, hello, &serveEnvelope{}), // empty union
		encodeServeFrames(tb, hello, &serveEnvelope{Pong: &servePongMsg{Seq: 1}}),
		// Framing corruptions.
		{0, 0, 0, 0},
		{0xff, 0xff, 0xff, 0xff, 0},
	}
	trunc := encodeServeFrames(tb, hello, sel)
	seeds = append(seeds, trunc[:len(trunc)-4])
	return seeds
}

// FuzzServeRequest throws arbitrary byte streams at a live server
// connection loop. The invariants: no panic, the loop terminates (the
// input is finite, so every path must end in an error or EOF), and the
// store underneath stays consistent enough to serve a clean scripted
// session afterwards.
func FuzzServeRequest(f *testing.F) {
	for _, seed := range fuzzServeSeeds(f) {
		f.Add(seed)
	}
	store, err := NewStore(Config{Seed: 42, MaxArms: 64})
	if err != nil {
		f.Fatal(err)
	}
	srv := NewServer(store, ServerOptions{FrameTimeout: -1})
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = srv.serveConn(&fuzzConn{r: bytes.NewReader(data)})
		// The store survives whatever the connection did: a fresh device
		// must still select within its arm set.
		arms := []int{100000, 100001}
		arm, sl, err := store.Select(1<<60, arms)
		if err != nil {
			t.Fatalf("store broken after fuzzed connection: %v", err)
		}
		if arm != arms[0] && arm != arms[1] {
			t.Fatalf("store selected %d outside the arm set after fuzzed connection", arm)
		}
		store.Feedback(1<<60, arm, sl, 0.5)
		store.Release(1 << 60)
	})
}

// TestWriteFuzzServeRequestCorpus regenerates the checked-in seed corpus
// under testdata/fuzz/FuzzServeRequest when UPDATE_FUZZ_CORPUS=1.
func TestWriteFuzzServeRequestCorpus(t *testing.T) {
	if os.Getenv("UPDATE_FUZZ_CORPUS") == "" {
		t.Skip("set UPDATE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzServeRequest")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzServeSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
