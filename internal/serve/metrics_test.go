package serve

import (
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"smartexp3/internal/chaos"
	"smartexp3/internal/obsv"
)

// varz renders reg as JSON and hands back the decoded map, failing the test
// on malformed Prometheus text along the way — every scrape in this file
// doubles as a validator run.
func scrape(t *testing.T, reg *obsv.Registry) map[string]any {
	t.Helper()
	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if err := obsv.CheckPrometheusText(strings.NewReader(prom.String())); err != nil {
		t.Fatalf("malformed /metrics output: %v\n%s", err, prom.String())
	}
	return varzMap(t, reg)
}

func varzMap(t *testing.T, reg *obsv.Registry) map[string]any {
	t.Helper()
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]any)
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("varz not JSON: %v", err)
	}
	return out
}

// TestStoreInstrumentedWarmSelectDoesNotAllocate is the tentpole's perf
// contract: enabling metrics must not put an allocation back on the warm
// Select+Feedback path (the shard counters are plain increments under the
// already-held lock; the sampled latency probe is two clock reads and three
// atomic adds).
func TestStoreInstrumentedWarmSelectDoesNotAllocate(t *testing.T) {
	s := newTestStore(t, Config{Shards: 2, EvictAfter: time.Hour})
	s.Instrument(obsv.NewRegistry())
	arms := []int{1, 2, 3, 4}
	drive(t, s, []uint64{6}, arms, 300)
	slot := 1000
	allocs := testing.AllocsPerRun(200, func() {
		arm, sl, err := s.Select(6, arms)
		if err != nil {
			t.Fatal(err)
		}
		s.Feedback(6, arm, sl, reward(6, arm, slot))
		slot++
	})
	if allocs > 0 {
		t.Fatalf("instrumented warm Select+Feedback allocates %.1f times per op, want 0", allocs)
	}
}

// TestStoreMetricsViaScrape drives known traffic — selects, feedback, a
// dedup retry, a dropped report, an eviction — and checks every counter
// lands on /metrics and /varz with the right value.
func TestStoreMetricsViaScrape(t *testing.T) {
	now := time.Unix(1000, 0)
	s := newTestStore(t, Config{
		Shards:     2,
		EvictAfter: time.Minute,
		Clock:      func() time.Time { return now },
	})
	reg := obsv.NewRegistry()
	s.Instrument(reg)

	arms := []int{1, 2, 3}
	// 64 settled slots on one device: enough that the 1-in-64 latency
	// sampler fires at least once.
	var lastArm int
	var lastSlot uint64
	for i := 0; i < 64; i++ {
		arm, sl, err := s.Select(7, arms)
		if err != nil {
			t.Fatal(err)
		}
		lastArm, lastSlot = arm, sl
		if !s.Feedback(7, arm, sl, 0.5) {
			t.Fatalf("slot %d: feedback not applied", i)
		}
	}
	// A lost-response retry: two Selects, no feedback between them.
	if _, _, err := s.Select(7, arms); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Select(7, arms); err != nil {
		t.Fatal(err)
	}
	// A stale report: the settled slot from before cannot apply again.
	if s.Feedback(7, lastArm, lastSlot, 0.5) {
		t.Fatal("stale slot applied")
	}
	// Evict the idle device.
	now = now.Add(2 * time.Minute)
	if n := s.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d devices, want 1", n)
	}

	m := scrape(t, reg)
	for name, want := range map[string]float64{
		"serve_select_total":           66,
		"serve_feedback_applied_total": 64,
		"serve_select_dedup_total":     1,
		"serve_feedback_dropped_total": 1,
		"serve_devices_evicted_total":  1,
		"serve_devices":                0,
	} {
		if got := m[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	hist, ok := m["serve_select_latency_ns"].(map[string]any)
	if !ok || hist["count"].(float64) < 1 {
		t.Fatalf("serve_select_latency_ns has no samples: %v", m["serve_select_latency_ns"])
	}
	var shardSum float64
	for name, v := range m {
		if strings.HasPrefix(name, `serve_shard_devices{`) {
			shardSum += v.(float64)
		}
	}
	if shardSum != 0 {
		t.Fatalf("per-shard occupancy sums to %v after full eviction, want 0", shardSum)
	}
}

// TestServerMetricsCountTraffic runs real wire traffic against an
// instrumented server and checks connections and frames are counted.
func TestServerMetricsCountTraffic(t *testing.T) {
	reg := obsv.NewRegistry()
	store := newTestStore(t, Config{})
	store.Instrument(reg)
	sm := NewServerMetrics(reg)
	_, addr := startInstrumentedServer(t, store, sm)

	c := dialTest(t, addr)
	arms := []int{1, 2, 3}
	for i := 0; i < 10; i++ {
		arm, err := c.Select(5, arms)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Feedback(5, arm, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	m := scrape(t, reg)
	if m["serve_connections_total"].(float64) < 1 {
		t.Fatalf("serve_connections_total = %v, want >= 1", m["serve_connections_total"])
	}
	if m["serve_connections_active"].(float64) != 1 {
		t.Fatalf("serve_connections_active = %v, want 1", m["serve_connections_active"])
	}
	if m["serve_frames_read_total"].(float64) < 11 || m["serve_frames_written_total"].(float64) < 11 {
		t.Fatalf("frame counters too low: read=%v written=%v",
			m["serve_frames_read_total"], m["serve_frames_written_total"])
	}
	if m["serve_bytes_read_total"].(float64) <= 0 || m["serve_bytes_written_total"].(float64) <= 0 {
		t.Fatalf("byte counters empty: read=%v written=%v",
			m["serve_bytes_read_total"], m["serve_bytes_written_total"])
	}
	if m["serve_select_total"].(float64) != 10 {
		t.Fatalf("serve_select_total = %v, want 10", m["serve_select_total"])
	}
}

// startInstrumentedServer is startServer with a metrics set installed.
func startInstrumentedServer(t *testing.T, store *Store, sm *ServerMetrics) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, ServerOptions{FrameTimeout: 30 * time.Second, Metrics: sm})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		ln.Close()
		srv.Close()
		<-done
	})
	return srv, ln.Addr().String()
}

// TestClientMetricsSurfaceReconnects forces reconnects through a chaos
// proxy and checks the registered client counters — the satellite moving
// Reconnects/DroppedFeedback behind the registry: the accessors and the
// scraped series must read the same counter.
func TestClientMetricsSurfaceReconnects(t *testing.T) {
	_, addr := startServer(t, Config{})
	proxy, err := chaos.NewProxy(addr, chaos.Faults{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	reg := obsv.NewRegistry()
	opts := chaosClientOptions()
	opts.Metrics = NewClientMetrics(reg)
	c, err := Dial(proxy.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	arms := []int{1, 2}
	step := func() {
		arm, err := c.Select(3, arms)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Feedback(3, arm, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	step()
	proxy.CutAll()
	step()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	if c.Reconnects() == 0 {
		t.Fatal("CutAll did not force a reconnect")
	}
	m := scrape(t, reg)
	if got := m["serve_client_reconnects_total"].(float64); got != float64(c.Reconnects()) {
		t.Fatalf("registry reconnects = %v, accessor = %d", got, c.Reconnects())
	}
	if got := m["serve_client_redials_total"].(float64); got < m["serve_client_reconnects_total"].(float64) {
		t.Fatalf("redials %v below reconnects %v", got, m["serve_client_reconnects_total"])
	}
	if got := m["serve_client_feedback_dropped_total"].(float64); got != float64(c.DroppedFeedback()) {
		t.Fatalf("registry dropped = %v, accessor = %d", got, c.DroppedFeedback())
	}
}

// TestStoreMetricsScrapeDuringSoak scrapes an instrumented store while
// eight goroutines hammer it — the race test behind the CI serve soak's
// mid-soak scrape. Every scrape must validate.
func TestStoreMetricsScrapeDuringSoak(t *testing.T) {
	s := newTestStore(t, Config{Shards: 4})
	reg := obsv.NewRegistry()
	s.Instrument(reg)

	const clients = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			arms := []int{1, 2, 3}
			dev := uint64(g + 1)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				arm, sl, err := s.Select(dev, arms)
				if err != nil {
					t.Error(err)
					return
				}
				s.Feedback(dev, arm, sl, reward(dev, arm, i))
				if i%100 == 99 {
					s.Release(dev)
				}
			}
		}(g)
	}
	for i := 0; i < 30; i++ {
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if err := obsv.CheckPrometheusText(strings.NewReader(b.String())); err != nil {
			t.Fatalf("scrape %d malformed under load: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
