package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"smartexp3/internal/cluster"
)

// ServerOptions tunes the transport, not the decisions.
type ServerOptions struct {
	// FrameTimeout bounds both waiting for a client frame and writing a
	// response. A client must send something (a ping suffices) within it,
	// and a stalled reader cannot park a connection goroutine past it.
	// Zero means 2 minutes, mirroring the cluster layer; negative
	// disables deadlines (tests with synchronous pipes).
	FrameTimeout time.Duration
	// Metrics, when set, counts accepted connections and per-frame wire
	// traffic (a NewServerMetrics set registered on an obsv.Registry).
	// Nil disables connection-level instrumentation entirely.
	Metrics *ServerMetrics
}

func (o ServerOptions) frameTimeout() time.Duration {
	switch {
	case o.FrameTimeout < 0:
		return 0
	case o.FrameTimeout == 0:
		return 2 * time.Minute
	default:
		return o.FrameTimeout
	}
}

// Server answers the serve wire protocol against one Store. One goroutine
// serves each connection; all decision state lives in the Store, so
// connections share devices safely (though one device should normally stay
// with one client).
type Server struct {
	store *Store
	opts  ServerOptions

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// NewServer wraps store in a wire front end.
func NewServer(store *Store, opts ServerOptions) *Server {
	return &Server{store: store, opts: opts, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until the listener closes, then waits for the
// in-flight connection goroutines it spawned to drain. It always returns a
// non-nil error; after Close/listener close that error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.track(conn, true)
			defer s.track(conn, false)
			defer conn.Close()
			_ = s.serveConn(conn)
		}()
	}
}

// Close tears down every live connection. Pair it with closing the
// listener; Serve's drain then returns promptly instead of waiting out
// frame timeouts.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.Close()
	}
}

func (s *Server) track(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

// serveConn runs one connection's request loop: handshake, then frames
// until the peer closes, errors, or goes silent past the frame timeout.
func (s *Server) serveConn(conn net.Conn) error {
	wt := s.opts.frameTimeout()
	fr := cluster.NewFrameReader(bufio.NewReaderSize(conn, 32<<10))
	bw := bufio.NewWriterSize(conn, 32<<10)
	fw := cluster.NewFrameWriter(bw)
	if m := s.opts.Metrics; m != nil {
		m.Connections.Inc()
		m.Active.Add(1)
		defer m.Active.Add(-1)
		fr.Instrument(m.FramesRead, m.BytesRead)
		fw.Instrument(m.FramesWritten, m.BytesWritten)
	}
	send := func(env *serveEnvelope) error {
		if wt > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(wt)); err != nil {
				return err
			}
		}
		if err := fw.Encode(env); err != nil {
			return err
		}
		return bw.Flush()
	}
	recv := func(env *serveEnvelope) error {
		if wt > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(wt)); err != nil {
				return err
			}
		}
		return fr.Decode(env)
	}

	var env serveEnvelope
	if err := recv(&env); err != nil {
		return err
	}
	if env.Hello == nil {
		return fmt.Errorf("serve: first frame is not a hello")
	}
	if env.Hello.Version != serveProtocolVersion {
		_ = send(&serveEnvelope{HelloAck: &serveHelloAckMsg{
			Version: serveProtocolVersion,
			Err:     fmt.Sprintf("protocol version %d, want %d", env.Hello.Version, serveProtocolVersion),
		}})
		return fmt.Errorf("serve: client speaks protocol %d, want %d", env.Hello.Version, serveProtocolVersion)
	}
	if err := send(&serveEnvelope{HelloAck: &serveHelloAckMsg{
		Version:   serveProtocolVersion,
		Algorithm: s.store.cfg.Algorithm.String(),
	}}); err != nil {
		return err
	}

	var rejects []FeedbackItem // retained across batches; rejections are the cold migration path
	for {
		env = serveEnvelope{}
		if err := recv(&env); err != nil {
			if errors.Is(err, io.EOF) {
				return nil // clean close between frames
			}
			return err
		}
		switch {
		case env.Select != nil:
			req := env.Select
			arm, slot, err := s.store.Select(req.Device, req.Arms)
			resp := &selectedMsg{Seq: req.Seq, Arm: arm, Slot: slot}
			if err != nil {
				var no *NotOwnerError
				if errors.As(err, &no) {
					resp.NotOwner = &notOwnerMsg{Epoch: no.Epoch, Owner: no.Owner}
				} else {
					resp.Err = err.Error()
				}
			}
			if err := send(&serveEnvelope{Selected: resp}); err != nil {
				return err
			}
		case env.Feedback != nil:
			var epoch uint64
			_, rejects, epoch = s.store.ApplyBatchOwned(env.Feedback.Items, rejects)
			if len(rejects) > 0 {
				if err := send(&serveEnvelope{Rejected: &feedbackRejectedMsg{Epoch: epoch, Items: rejects}}); err != nil {
					return err
				}
			}
		case env.Release != nil:
			for _, id := range env.Release.Devices {
				s.store.Release(id)
			}
		case env.Ping != nil:
			if err := send(&serveEnvelope{Pong: &servePongMsg{Seq: env.Ping.Seq}}); err != nil {
				return err
			}
		case env.Pong != nil, env.Hello != nil, env.HelloAck != nil, env.Selected != nil, env.Rejected != nil:
			return fmt.Errorf("serve: unexpected frame from client")
		default:
			return fmt.Errorf("serve: empty frame")
		}
	}
}
