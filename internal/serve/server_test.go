package serve

import (
	"net"
	"strings"
	"testing"
	"time"

	"smartexp3/internal/cluster"
)

// startServer serves a fresh store on loopback and returns its address.
func startServer(t *testing.T, cfg Config) (*Store, string) {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	store, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, ServerOptions{FrameTimeout: 30 * time.Second})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		ln.Close()
		srv.Close()
		<-done
	})
	return store, ln.Addr().String()
}

func dialTest(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, ClientOptions{FrameTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestServerEndToEndMatchesDirectStore is the wire layer's correctness
// anchor: a script through Client/Server must decide exactly as the same
// script applied to a Store in process — the transport adds latency,
// never behavior.
func TestServerEndToEndMatchesDirectStore(t *testing.T) {
	store, addr := startServer(t, Config{})
	c := dialTest(t, addr)
	if alg := c.Algorithm(); alg != "Smart EXP3" {
		t.Fatalf("handshake reports algorithm %q", alg)
	}

	direct := newTestStore(t, Config{})
	devices := []uint64{1, 2, 3}
	arms := []int{10, 20, 30}
	for slot := 0; slot < 120; slot++ {
		for _, dev := range devices {
			got, err := c.Select(dev, arms)
			if err != nil {
				t.Fatal(err)
			}
			want, wantSlot, err := direct.Select(dev, arms)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("slot %d device %d: wire selected %d, direct store %d", slot, dev, got, want)
			}
			if err := c.Feedback(dev, got, reward(dev, got, slot)); err != nil {
				t.Fatal(err)
			}
			direct.Feedback(dev, want, wantSlot, reward(dev, want, slot))
		}
	}
	// The last batch may still be buffered client-side; a Ping flushes it.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if d := store.Dropped(); d != 0 {
		t.Fatalf("served script dropped %d reports", d)
	}
	if err := c.Release(devices...); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil { // barrier: release is fire-and-forget
		t.Fatal(err)
	}
	if n := store.Devices(); n != 0 {
		t.Fatalf("store tracks %d devices after release", n)
	}
}

// TestServerRequestErrorKeepsSessionUsable pins the error taxonomy: a bad
// request is answered, not a reason to drop the connection.
func TestServerRequestErrorKeepsSessionUsable(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dialTest(t, addr)
	if _, err := c.Select(1, []int{3, 1}); err == nil || !strings.Contains(err.Error(), "ascending") {
		t.Fatalf("unsorted arms: got %v, want an ascending-arms rejection", err)
	}
	arm, err := c.Select(1, []int{1, 3})
	if err != nil {
		t.Fatalf("session unusable after a request error: %v", err)
	}
	if arm != 1 && arm != 3 {
		t.Fatalf("selected arm %d outside the arm set", arm)
	}
}

// TestServerRejectsVersionMismatch pins the handshake: a client from the
// wrong protocol era fails loudly at dial time.
func TestServerRejectsVersionMismatch(t *testing.T) {
	_, addr := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := cluster.NewFrameWriter(conn)
	fr := cluster.NewFrameReader(conn)
	if err := fw.Encode(&serveEnvelope{Hello: &serveHelloMsg{Version: serveProtocolVersion + 1}}); err != nil {
		t.Fatal(err)
	}
	var env serveEnvelope
	if err := fr.Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.HelloAck == nil || env.HelloAck.Err == "" {
		t.Fatalf("version mismatch was not rejected: %+v", env)
	}
}

// TestServerSurvivesMalformedClient pins robustness: garbage after the
// handshake kills that connection only; the next client is served.
func TestServerSurvivesMalformedClient(t *testing.T) {
	_, addr := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x00}); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	c := dialTest(t, addr)
	if _, err := c.Select(1, []int{1, 2}); err != nil {
		t.Fatalf("server unusable after a malformed client: %v", err)
	}
}
