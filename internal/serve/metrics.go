package serve

import (
	"fmt"

	"smartexp3/internal/obsv"
)

// shardStats are one shard's request counters. They are plain integers
// mutated only under the shard mutex that the hot path already holds — a
// counted Select costs an increment, not an atomic — and summed under the
// same mutexes at scrape time, so scrapes racing traffic still read
// consistent values.
type shardStats struct {
	selects   uint64
	feedbacks uint64
	dedupHits uint64
}

// storeMetrics is the store's instrumentation, present only after
// Instrument. The hot path guards every record behind one nil check, so an
// uninstrumented store pays a predictable branch per request and nothing
// else.
type storeMetrics struct {
	selectLatency *obsv.Histogram
}

// selectSampleMask samples 1 in 64 Selects for the latency histogram: the
// two clock reads a timed Select costs (~50 ns) would be half again the
// ~104 ns warm path if taken every time, but amortized over 64 requests
// they disappear while p50/p99/p999 stay statistically sound at any
// realistic traffic rate.
const selectSampleMask = 63

// Instrument registers the store's metrics on reg and enables hot-path
// counting. Call it before the store serves traffic (metrics enablement is
// not synchronized with requests); instrumenting a store twice or on two
// registries panics via the registry's duplicate-name check.
//
// The registered names: serve_select_total, serve_feedback_applied_total,
// serve_select_dedup_total, serve_feedback_dropped_total,
// serve_devices_evicted_total, serve_devices, serve_shard_devices{shard=N},
// and the serve_select_latency_ns histogram.
func (s *Store) Instrument(reg *obsv.Registry) {
	if s.m != nil {
		panic("serve: store instrumented twice")
	}
	m := &storeMetrics{
		selectLatency: reg.Histogram("serve_select_latency_ns",
			"Sampled in-store Select service time (shard-map lookup + policy draw, lock wait excluded), 1 in 64 requests"),
	}
	sumShards := func(pick func(*shardStats) uint64) func() float64 {
		return func() float64 {
			var n uint64
			for i := range s.shards {
				sh := &s.shards[i]
				sh.mu.Lock()
				n += pick(&sh.stats)
				sh.mu.Unlock()
			}
			return float64(n)
		}
	}
	reg.CounterFunc("serve_select_total",
		"Select requests answered", sumShards(func(st *shardStats) uint64 { return st.selects }))
	reg.CounterFunc("serve_feedback_applied_total",
		"Feedback reports applied to a pending selection", sumShards(func(st *shardStats) uint64 { return st.feedbacks }))
	reg.CounterFunc("serve_select_dedup_total",
		"Selects answered idempotently from the pending slot (lost-response retries)", sumShards(func(st *shardStats) uint64 { return st.dedupHits }))
	reg.CounterFunc("serve_feedback_dropped_total",
		"Feedback reports and abandoned selections discarded for not matching a pending slot",
		func() float64 { return float64(s.Dropped()) })
	reg.CounterFunc("serve_devices_evicted_total",
		"Device sessions retired by idle-eviction sweeps",
		func() float64 { return float64(s.Evicted()) })
	reg.GaugeFunc("serve_devices", "Active device sessions",
		func() float64 { return float64(s.Devices()) })
	for i := range s.shards {
		sh := &s.shards[i]
		reg.GaugeFunc(fmt.Sprintf(`serve_shard_devices{shard="%d"}`, i),
			"Active device sessions per shard", func() float64 {
				sh.mu.Lock()
				n := len(sh.devices)
				sh.mu.Unlock()
				return float64(n)
			})
	}
	s.m = m
}

// ClientMetrics are serve.Client's resilience counters. A client always
// has a set (unregistered when the caller never wires a registry), so the
// public accessors read the same counters either way; NewClientMetrics
// makes one whose counters are exported, to share across the redials of
// one logical client.
type ClientMetrics struct {
	Reconnects          *obsv.Counter // connections established after the first
	Redials             *obsv.Counter // dial attempts after a connection was lost
	FallbackActivations *obsv.Counter // degradations to the local fallback store
	FeedbackResent      *obsv.Counter // unconfirmed feedback items queued again after a drop
	DroppedFeedback     *obsv.Counter // feedback items discarded at the buffer cap
}

// newClientMetrics returns an unregistered set — the default when
// ClientOptions.Metrics is nil, keeping accessor reads valid at zero cost.
func newClientMetrics() *ClientMetrics {
	return &ClientMetrics{
		Reconnects:          new(obsv.Counter),
		Redials:             new(obsv.Counter),
		FallbackActivations: new(obsv.Counter),
		FeedbackResent:      new(obsv.Counter),
		DroppedFeedback:     new(obsv.Counter),
	}
}

// NewClientMetrics registers the client counter set on reg.
func NewClientMetrics(reg *obsv.Registry) *ClientMetrics {
	return &ClientMetrics{
		Reconnects:          reg.Counter("serve_client_reconnects_total", "Connections established after the first"),
		Redials:             reg.Counter("serve_client_redials_total", "Dial attempts made after losing a connection"),
		FallbackActivations: reg.Counter("serve_client_fallback_activations_total", "Degradations to the local fallback store"),
		FeedbackResent:      reg.Counter("serve_client_feedback_resent_total", "Unconfirmed feedback items requeued after a connection drop"),
		DroppedFeedback:     reg.Counter("serve_client_feedback_dropped_total", "Feedback items discarded at the client buffer cap"),
	}
}

// ServerMetrics are the serve daemon's per-connection counters, shared by
// every connection the server accepts.
type ServerMetrics struct {
	Connections   *obsv.Counter
	Active        *obsv.Gauge
	FramesRead    *obsv.Counter
	FramesWritten *obsv.Counter
	BytesRead     *obsv.Counter
	BytesWritten  *obsv.Counter
}

// NewServerMetrics registers the server counter set on reg.
func NewServerMetrics(reg *obsv.Registry) *ServerMetrics {
	return &ServerMetrics{
		Connections:   reg.Counter("serve_connections_total", "Client connections accepted (reconnects appear as extra accepts)"),
		Active:        reg.Gauge("serve_connections_active", "Client connections currently open"),
		FramesRead:    reg.Counter("serve_frames_read_total", "Request frames decoded"),
		FramesWritten: reg.Counter("serve_frames_written_total", "Response frames encoded"),
		BytesRead:     reg.Counter("serve_bytes_read_total", "Wire bytes read from clients"),
		BytesWritten:  reg.Counter("serve_bytes_written_total", "Wire bytes written to clients"),
	}
}
