package serve

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStoreConcurrentSoak is the race-detector soak: many goroutines
// hammer Select/Feedback across deliberately overlapping device ids while
// another goroutine snapshots and one churns devices through the pools.
// Under -race (CI runs the package that way) this is the proof that the
// shard locking is complete; without -race it still checks the store's
// invariants under contention.
func TestStoreConcurrentSoak(t *testing.T) {
	s := newTestStore(t, Config{Shards: 4})
	arms := []int{1, 2, 3, 4, 5}
	const (
		clients = 8
		slots   = 400
		overlap = 16 // ids shared by all clients: worst-case lock contention
	)
	var wrong atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for slot := 0; slot < slots; slot++ {
				dev := uint64(slot % overlap) // all clients fight over these
				if slot%3 == g%3 {
					dev = uint64(1000 + g) // plus a private id each
				}
				arm, sl, err := s.Select(dev, arms)
				if err != nil {
					t.Error(err)
					return
				}
				ok := false
				for _, a := range arms {
					if a == arm {
						ok = true
					}
				}
				if !ok {
					wrong.Add(1)
				}
				// Overlapping ids race their feedback on purpose: another
				// client may have re-selected in between, which the store
				// must absorb as a dropped report, never a corruption.
				s.Feedback(dev, arm, sl, reward(dev, arm, slot))
				if slot%97 == 0 && dev >= 1000 {
					s.Release(dev)
				}
			}
		}(g)
	}
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for i := 0; i < 50; i++ {
			sn := s.Snapshot()
			var buf bytes.Buffer
			if err := sn.Encode(&buf); err != nil {
				t.Error(err)
				return
			}
			if _, err := ReadSnapshot(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-snapDone
	if w := wrong.Load(); w != 0 {
		t.Fatalf("%d selections returned arms outside the requested set", w)
	}
	// Post-soak sanity: the store still serves deterministically.
	a := drive(t, s, []uint64{1 << 50}, arms, 20)
	b := drive(t, newTestStore(t, Config{Shards: 4}), []uint64{1 << 50}, arms, 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d: post-soak store chose %d, fresh store %d — soak leaked state across devices", i, a[i], b[i])
		}
	}
}
