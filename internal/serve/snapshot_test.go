package serve

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"
)

// script is a deterministic request sequence with availability churn and a
// deliberately unanswered selection, exercising every snapshot-relevant
// store path. It returns all selections made.
func runScript(t *testing.T, s *Store, from, to int) []int {
	t.Helper()
	devices := []uint64{3, 8, 1 << 33}
	armSets := [][]int{
		{1, 2, 3, 4},
		{2, 3, 4},
		{1, 2, 3, 4, 9},
	}
	var out []int
	for slot := from; slot < to; slot++ {
		for _, dev := range devices {
			arms := armSets[(slot/40+int(dev))%len(armSets)]
			arm, sl, err := s.Select(dev, arms)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, arm)
			// Device 8 loses every 50th report: a pending selection
			// crosses the snapshot boundary and must survive it.
			if dev == 8 && slot%50 == 49 {
				continue
			}
			s.Feedback(dev, arm, sl, reward(dev, arm, slot))
		}
		if slot == 90 {
			s.Release(8) // churn: device 8 re-joins from its root seed
		}
	}
	return out
}

func encodeSnapshot(t *testing.T, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Snapshot().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotRestoreIsByteIdentical is the satellite's property test: run
// a seeded script, snapshot mid-way, restore into a fresh store, replay the
// remainder — every subsequent draw and the final snapshot bytes must be
// byte-identical to the uninterrupted run.
func TestSnapshotRestoreIsByteIdentical(t *testing.T) {
	// cut lands right after slot 149, where device 8's feedback was lost:
	// an unanswered selection crosses the snapshot boundary.
	const cut, end = 150, 280

	uninterrupted := newTestStore(t, Config{})
	runScript(t, uninterrupted, 0, cut)
	interrupted := newTestStore(t, Config{})
	runScript(t, interrupted, 0, cut)

	mid := encodeSnapshot(t, interrupted)
	sn, err := ReadSnapshot(bytes.NewReader(mid))
	if err != nil {
		t.Fatal(err)
	}
	// "Restart": a brand-new store, different shard count on the new box.
	restored := newTestStore(t, Config{Shards: 16})
	if err := restored.Restore(sn); err != nil {
		t.Fatal(err)
	}
	if restored.Devices() != uninterrupted.Devices() {
		t.Fatalf("restored store tracks %d devices, want %d", restored.Devices(), uninterrupted.Devices())
	}

	wantTail := runScript(t, uninterrupted, cut, end)
	gotTail := runScript(t, restored, cut, end)
	for i := range wantTail {
		if wantTail[i] != gotTail[i] {
			t.Fatalf("post-restore selection %d: restored store chose %d, uninterrupted chose %d", i, gotTail[i], wantTail[i])
		}
	}

	finalWant := encodeSnapshot(t, uninterrupted)
	finalGot := encodeSnapshot(t, restored)
	if !bytes.Equal(finalWant, finalGot) {
		t.Fatalf("final snapshots differ: %d vs %d bytes — restore is not lossless", len(finalWant), len(finalGot))
	}
	// And the mid-run snapshot itself is deterministic: a second identical
	// run encodes the same bytes.
	again := newTestStore(t, Config{Shards: 2})
	runScript(t, again, 0, cut)
	if !bytes.Equal(mid, encodeSnapshot(t, again)) {
		t.Fatal("two identical histories encoded different snapshot bytes")
	}
}

// TestSnapshotBytesIndependentOfEviction pins lastTouch out of the
// snapshot format: idle bookkeeping is operational state, and two stores
// with the same request history must encode identical bytes whether or not
// eviction is configured.
func TestSnapshotBytesIndependentOfEviction(t *testing.T) {
	plain := newTestStore(t, Config{})
	runScript(t, plain, 0, 60)
	now := time.Unix(7777, 0)
	evicting := newTestStore(t, Config{
		EvictAfter: time.Hour,
		Clock:      func() time.Time { now = now.Add(time.Second); return now },
	})
	runScript(t, evicting, 0, 60)
	if !bytes.Equal(encodeSnapshot(t, plain), encodeSnapshot(t, evicting)) {
		t.Fatal("idle bookkeeping leaked into the snapshot bytes")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")

	s := newTestStore(t, Config{})
	runScript(t, s, 0, 80)
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	want := runScript(t, s, 80, 120)

	restored := newTestStore(t, Config{})
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	got := runScript(t, restored, 80, 120)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("selection %d after file restore: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestRestoreRejectsMismatchedIdentity(t *testing.T) {
	s := newTestStore(t, Config{Seed: 42})
	runScript(t, s, 0, 10)
	sn := s.Snapshot()

	wrongSeed := newTestStore(t, Config{Seed: 43})
	if err := wrongSeed.Restore(sn); err == nil {
		t.Fatal("restore accepted a snapshot from a different seed")
	}
	badVersion := *sn
	badVersion.Version = snapshotVersion + 1
	if err := s.Restore(&badVersion); err == nil {
		t.Fatal("restore accepted a future snapshot version")
	}

	// A corrupt device record must fail ReadSnapshot before Restore can
	// half-apply it.
	corrupt := *sn
	corrupt.Devices = append([]DeviceSnapshot(nil), sn.Devices...)
	corrupt.Devices[0].State.Cur = 99
	var buf bytes.Buffer
	if err := corrupt.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(&buf); err == nil {
		t.Fatal("ReadSnapshot accepted a corrupt device record")
	}
}
