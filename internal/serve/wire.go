package serve

// The serve wire protocol rides internal/cluster's frame codec (4-byte
// big-endian length prefix, one persistent gob codec per connection
// direction) with its own envelope union. One synchronous client drives one
// connection: selects are request/response, feedback is fire-and-forget in
// batches, and the single stream's ordering makes every Select a natural
// barrier for the feedback sent before it.

// serveProtocolVersion is bumped whenever the serve message set changes
// incompatibly. Handshake refuses mismatches. Version 2 added the
// selection slot to selectedMsg and FeedbackItem — the dedup cursor that
// makes feedback resent across a reconnect safe to apply at most once.
// Version 3 added the fleet redirect surface: selectedMsg.NotOwner and
// the unsolicited Rejected frame for feedback bounced off a peer that no
// longer owns the device.
const serveProtocolVersion = 3

// serveEnvelope is the one-of union every serve frame carries.
type serveEnvelope struct {
	Hello    *serveHelloMsg
	HelloAck *serveHelloAckMsg
	Select   *selectMsg
	Selected *selectedMsg
	Feedback *feedbackBatchMsg
	Rejected *feedbackRejectedMsg
	Release  *releaseMsg
	Ping     *servePingMsg
	Pong     *servePongMsg
}

// serveHelloMsg opens a client session.
type serveHelloMsg struct {
	Version int
}

// serveHelloAckMsg accepts or rejects the session and names the algorithm
// the daemon serves, so a client pointed at the wrong daemon fails loudly
// at dial time.
type serveHelloAckMsg struct {
	Version   int
	Algorithm string
	Err       string
}

// selectMsg asks which arm device Device should use next, given its
// currently reachable arm set (strictly ascending global ids).
type selectMsg struct {
	Seq    uint64
	Device uint64
	Arms   []int
}

// selectedMsg answers a selectMsg. A non-empty Err is a property of the
// request (bad arm set), not the connection: the session continues. Slot
// is the store's id for this selection; the client quotes it back in the
// matching FeedbackItem so resent feedback cannot double-count. A non-nil
// NotOwner is the fleet redirect — also request-level: this peer no
// longer owns the device, ask the named owner (refreshing any partition
// table to at least the quoted epoch first).
type selectedMsg struct {
	Seq      uint64
	Arm      int
	Slot     uint64
	Err      string
	NotOwner *notOwnerMsg
}

// notOwnerMsg is the wire shape of serve.NotOwnerError: the partition
// epoch that moved the device and the owning peer's data address (empty
// when the rejecting peer has no table and owns nothing — a booting
// fleet member).
type notOwnerMsg struct {
	Epoch uint64
	Owner string
}

// feedbackBatchMsg carries buffered reward reports. There is no reply
// for applied (or slot-dropped) reports — which is what lets a client
// stream feedback at line rate between selects; only reports aimed at a
// peer that does not own their device bounce back in a Rejected frame.
type feedbackBatchMsg struct {
	Items []FeedbackItem
}

// feedbackRejectedMsg returns feedback items the server refused because
// it does not own their devices — valid reports aimed at the wrong peer
// after a migration. It is the protocol's one unsolicited server frame:
// clients must tolerate it ahead of any awaited response. Epoch is the
// highest table epoch quoted for the rejections; the items' slots make
// re-delivery to the right owner at-most-once even if the client also
// resends them through its unconfirmed queue.
type feedbackRejectedMsg struct {
	Epoch uint64
	Items []FeedbackItem
}

// releaseMsg retires device sessions whose devices have left.
type releaseMsg struct {
	Devices []uint64
}

// servePingMsg keeps an idle connection alive under the server's frame
// timeout, mirroring the cluster session keepalive.
type servePingMsg struct {
	Seq uint64
}

// servePongMsg answers a ping.
type servePongMsg struct {
	Seq uint64
}
