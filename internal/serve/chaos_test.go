package serve

import (
	"bytes"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"smartexp3/internal/chaos"
)

// learnedState encodes a store's snapshot with the Dropped counter zeroed:
// under chaos the served store legitimately drops resent duplicates (that
// is the slot dedup working), so the determinism claim is about everything
// else — device policy state, rng cursors, pending selections, slots.
func learnedState(t *testing.T, s *Store) []byte {
	t.Helper()
	sn := s.Snapshot()
	sn.Dropped = 0
	var buf bytes.Buffer
	if err := sn.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// chaosClientOptions tunes the self-healing client for a fault-heavy test:
// fast retries, plenty of attempts, and a frame timeout short enough that
// a stalled proxy connection turns into a reconnect instead of a hang.
func chaosClientOptions() ClientOptions {
	return ClientOptions{
		FrameTimeout: 2 * time.Second,
		BackoffBase:  time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
		MaxAttempts:  20,
	}
}

// TestClientChaosSessionIsDecisionIdentical is the tentpole's acceptance
// criterion: a client session routed through a seeded chaos proxy —
// latency, corrupted frames, mid-stream cuts — must make byte-for-byte the
// same decisions as the same script against a clean in-process store, with
// at least one forced reconnect along the way, and leave the served store
// in a state byte-identical to the clean one (every resent feedback report
// applied exactly once). No goroutine may outlive the session.
func TestClientChaosSessionIsDecisionIdentical(t *testing.T) {
	const devices = 3
	const slots = 400
	for _, seed := range []int64{23, 101} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			store, addr := startServer(t, Config{})
			baseline := runtime.NumGoroutine()
			proxy, err := chaos.NewProxy(addr, chaos.Faults{
				Seed:   seed,
				MinGap: 1024, MaxGap: 4096,
				Delay: 3, Corrupt: 2, Cut: 2,
				MaxDelay: time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			c, err := Dial(proxy.Addr(), chaosClientOptions())
			if err != nil {
				t.Fatal(err)
			}

			clean := newTestStore(t, Config{})
			arms := []int{10, 20, 30}
			for slot := 0; slot < slots; slot++ {
				for dev := uint64(1); dev <= devices; dev++ {
					got, err := c.Select(dev, arms)
					if err != nil {
						t.Fatalf("slot %d device %d: %v", slot, dev, err)
					}
					want, sl, err := clean.Select(dev, arms)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("slot %d device %d: chaos session selected %d, clean store %d (after %d reconnects)",
							slot, dev, got, want, c.Reconnects())
					}
					r := reward(dev, got, slot)
					if err := c.Feedback(dev, got, r); err != nil {
						t.Fatal(err)
					}
					clean.Feedback(dev, want, sl, r)
				}
			}
			// Barrier: the Pong proves the daemon consumed every report.
			if err := c.Ping(); err != nil {
				t.Fatal(err)
			}
			if c.Reconnects() == 0 {
				t.Fatal("chaos schedule never forced a reconnect; the test proved nothing")
			}
			if d := c.DroppedFeedback(); d != 0 {
				t.Fatalf("overload guard dropped %d reports in a session that never should have filled it", d)
			}
			// The stores must agree byte for byte: resends deduplicated by
			// slot, nothing lost, nothing double-applied.
			if !bytes.Equal(learnedState(t, store), learnedState(t, clean)) {
				t.Fatalf("served store diverged from the clean store after %d reconnects", c.Reconnects())
			}

			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			if err := proxy.Close(); err != nil {
				t.Fatal(err)
			}
			waitGoroutines(t, baseline)
		})
	}
}

// waitGoroutines polls until the goroutine count returns to the baseline
// taken before the session started, dumping stacks if it never does.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("%d goroutines alive, want %d; stacks:\n%s",
		runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
}

// TestClientSurvivesManualCut uses the proxy's kill switch instead of a
// schedule: sever every connection at a moment of the test's choosing and
// the very next Select must transparently reconnect and return the arm the
// store had already committed to.
func TestClientSurvivesManualCut(t *testing.T) {
	store, addr := startServer(t, Config{})
	proxy, err := chaos.NewProxy(addr, chaos.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	c, err := Dial(proxy.Addr(), chaosClientOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	clean := newTestStore(t, Config{})
	arms := []int{1, 2, 3}
	for slot := 0; slot < 30; slot++ {
		if slot%10 == 5 {
			proxy.CutAll()
		}
		got, err := c.Select(7, arms)
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		want, sl, err := clean.Select(7, arms)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("slot %d: selected %d after cut, clean store %d", slot, got, want)
		}
		r := reward(7, got, slot)
		if err := c.Feedback(7, got, r); err != nil {
			t.Fatal(err)
		}
		clean.Feedback(7, want, sl, r)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if c.Reconnects() < 3 {
		t.Fatalf("3 cuts forced only %d reconnects", c.Reconnects())
	}
	if !bytes.Equal(learnedState(t, store), learnedState(t, clean)) {
		t.Fatal("served store diverged from the clean store across manual cuts")
	}
}

// TestClientWithoutRedialerFailsFastAndCloseIsIdempotent pins the legacy
// error taxonomy the reconnect work must not change: with no redialer the
// first transport failure permanently poisons the session, every later
// call returns the same death, and Close stays idempotent (nil) after it.
func TestClientWithoutRedialerFailsFastAndCloseIsIdempotent(t *testing.T) {
	store, err := NewStore(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, ServerOptions{})
	clientConn, serverConn := net.Pipe()
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.serveConn(serverConn) }()
	c, err := NewClient(clientConn, ClientOptions{FrameTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Select(1, []int{1, 2}); err != nil {
		t.Fatal(err)
	}

	// Kill the transport under the client: the pipe dies, no redialer.
	serverConn.Close()
	<-done
	if _, err := c.Select(1, []int{1, 2}); err == nil {
		t.Fatal("Select succeeded over a dead pipe with no redialer")
	}
	if _, err := c.Select(1, []int{1, 2}); err == nil {
		t.Fatal("a poisoned session answered a Select")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("first Close after a session death: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("repeated Close must be nil, got %v", err)
	}
}

// TestClientDegradesToFallbackAndRecovers pins the availability escape
// hatch: with the daemon gone past MaxAttempts a client with a Fallback
// store serves selections locally (a deliberate fork of that device's
// learning), keeps doing so between probes, and rejoins the daemon when a
// probe finds it listening again.
func TestClientDegradesToFallbackAndRecovers(t *testing.T) {
	store, err := NewStore(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := NewServer(store, ServerOptions{FrameTimeout: 30 * time.Second})
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ln) }()

	fb := newTestStore(t, Config{})
	opts := chaosClientOptions()
	opts.MaxAttempts = 2
	opts.Fallback = fb
	opts.FallbackProbe = 50 * time.Millisecond
	opts.FrameTimeout = time.Second
	c, err := Dial(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	arms := []int{1, 2, 3}
	if _, err := c.Select(1, arms); err != nil {
		t.Fatal(err)
	}

	// Take the daemon down hard: listener and server both gone.
	ln.Close()
	srv.Close()
	<-done

	arm, err := c.Select(1, arms)
	if err != nil {
		t.Fatalf("Select with a fallback store configured: %v", err)
	}
	if !c.Degraded() {
		t.Fatal("client not degraded after the daemon vanished")
	}
	if arm != 1 && arm != 2 && arm != 3 {
		t.Fatalf("fallback selected arm %d outside the arm set", arm)
	}
	// Feedback for a locally-served selection must land on the fallback
	// store, observable through its snapshot changing.
	before := encodeSnapshot(t, fb)
	if err := c.Feedback(1, arm, 0.5); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(before, encodeSnapshot(t, fb)) {
		t.Fatal("feedback while degraded did not reach the fallback store")
	}

	// Resurrect the daemon on the same address; the next probe after the
	// probe interval should rejoin it.
	var ln2 net.Listener
	for i := 0; i < 100; i++ {
		if ln2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("could not rebind %s: %v", addr, err)
	}
	store2, err := NewStore(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(store2, ServerOptions{FrameTimeout: 30 * time.Second})
	done2 := make(chan struct{})
	go func() { defer close(done2); _ = srv2.Serve(ln2) }()
	defer func() {
		ln2.Close()
		srv2.Close()
		<-done2
	}()

	deadline := time.Now().Add(10 * time.Second)
	for c.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("client never rejoined the resurrected daemon")
		}
		time.Sleep(opts.FallbackProbe)
		if _, err := c.Select(1, arms); err != nil {
			t.Fatalf("Select during recovery: %v", err)
		}
	}
	if _, err := c.Select(2, arms); err != nil {
		t.Fatalf("live Select after recovery: %v", err)
	}
}
